package mallows

import (
	"math"
	"math/rand"
	"testing"

	"manirank/internal/ranking"
)

// mahonian returns the number of permutations of n elements with exactly
// 0..n(n-1)/2 inversions (the Mahonian triangle row n), computed by the
// standard DP: T(n, k) = sum_{j=0..n-1} T(n-1, k-j).
func mahonian(n int) []int64 {
	counts := []int64{1}
	for i := 2; i <= n; i++ {
		next := make([]int64, len(counts)+i-1)
		for k := range next {
			for j := 0; j < i && j <= k; j++ {
				if k-j < len(counts) {
					next[k] += counts[k-j]
				}
			}
		}
		counts = next
	}
	return counts
}

// kendallPMF returns the exact Mallows distribution of the Kendall distance:
// P(d) = M_n(d) * phi^d / Z.
func kendallPMF(n int, theta float64) []float64 {
	m := mahonian(n)
	phi := math.Exp(-theta)
	pmf := make([]float64, len(m))
	z := 0.0
	w := 1.0
	for d := range m {
		pmf[d] = float64(m[d]) * w
		z += pmf[d]
		w *= phi
	}
	for d := range pmf {
		pmf[d] /= z
	}
	return pmf
}

// chi2Quantile999 maps degrees of freedom to the 99.9th percentile of the
// chi-square distribution, the rejection threshold of the sampler tests
// (seeds are fixed, so a pass is deterministic; the quantile documents how
// surprising a failure would be under the exact distribution).
var chi2Quantile999 = map[int]float64{
	2:  13.82,
	3:  16.27,
	5:  20.52,
	6:  22.46,
	10: 29.59,
}

// TestRIMSamplerMatchesExactKendallDistribution draws from the
// zero-allocation sampler and chi-square-tests the empirical Kendall
// distance distribution against the closed-form Mallows probabilities.
func TestRIMSamplerMatchesExactKendallDistribution(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
	}{
		{3, 0.3},
		{4, 0.5},
		{4, 1.0},
		{5, 0.7},
	} {
		rng := rand.New(rand.NewSource(77))
		modal := ranking.Random(tc.n, rng)
		s := MustNew(modal, tc.theta).Sampler()
		pmf := kendallPMF(tc.n, tc.theta)
		const draws = 20000
		obs := make([]int, len(pmf))
		dst := make(ranking.Ranking, tc.n)
		for i := 0; i < draws; i++ {
			s.SampleInto(dst, rng)
			obs[ranking.KendallTau(dst, modal)]++
		}
		chi2 := 0.0
		for d, p := range pmf {
			exp := float64(draws) * p
			chi2 += (float64(obs[d]) - exp) * (float64(obs[d]) - exp) / exp
		}
		df := len(pmf) - 1
		limit, ok := chi2Quantile999[df]
		if !ok {
			t.Fatalf("no chi-square quantile tabled for df=%d", df)
		}
		if chi2 > limit {
			t.Errorf("n=%d theta=%v: chi2=%.2f exceeds the 99.9%% quantile %.2f (df=%d); obs=%v",
				tc.n, tc.theta, chi2, limit, df, obs)
		}
	}
}

// TestPlackettLuceSamplerPreservesLocationSpreadOrdering checks the
// zero-allocation PL sampler keeps the family's defining property: mean
// Kendall distance to the modal ranking strictly decreases as theta grows.
func TestPlackettLuceSamplerPreservesLocationSpreadOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	modal := ranking.Random(40, rng)
	dst := make(ranking.Ranking, 40)
	prev := math.Inf(1)
	for _, theta := range []float64{0.05, 0.2, 0.6, 1.2, 3} {
		s := MustNewPlackettLuce(modal, theta).Sampler()
		sum := 0
		const draws = 400
		for i := 0; i < draws; i++ {
			s.SampleInto(dst, rng)
			sum += ranking.KendallTau(dst, modal)
		}
		mean := float64(sum) / draws
		if mean >= prev {
			t.Fatalf("theta=%v: mean distance %.1f did not decrease from %.1f", theta, mean, prev)
		}
		prev = mean
	}
}

// TestSampleIntoMatchesSample pins the wrapper contract: Sample and
// SampleInto consume the identical RNG stream and emit identical rankings.
func TestSampleIntoMatchesSample(t *testing.T) {
	modal := ranking.Random(25, rand.New(rand.NewSource(79)))
	m := MustNew(modal, 0.5)
	a, b := rand.New(rand.NewSource(80)), rand.New(rand.NewSource(80))
	s := m.Sampler()
	dst := make(ranking.Ranking, 25)
	for i := 0; i < 20; i++ {
		want := m.Sample(a)
		s.SampleInto(dst, b)
		if !dst.Equal(want) {
			t.Fatalf("draw %d: SampleInto %v != Sample %v", i, dst, want)
		}
	}
	pl := MustNewPlackettLuce(modal, 0.5)
	ps := pl.Sampler()
	a, b = rand.New(rand.NewSource(81)), rand.New(rand.NewSource(81))
	for i := 0; i < 20; i++ {
		want := pl.Sample(a)
		ps.SampleInto(dst, b)
		if !dst.Equal(want) {
			t.Fatalf("PL draw %d: SampleInto %v != Sample %v", i, dst, want)
		}
	}
}

// TestSamplersZeroAllocsSteadyState is the allocation regression guard the
// ROADMAP's "Mallows sampling allocation churn" item asks for: after the
// first draw warms the scratch, SampleInto performs zero heap allocations.
func TestSamplersZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	m := MustNew(ranking.Random(90, rng), 0.6)
	s := m.Sampler()
	dst := make(ranking.Ranking, 90)
	s.SampleInto(dst, rng)
	if avg := testing.AllocsPerRun(200, func() { s.SampleInto(dst, rng) }); avg != 0 {
		t.Errorf("RIM SampleInto: %.2f allocs/op in steady state, want 0", avg)
	}
	pl := MustNewPlackettLuce(ranking.Random(1000, rng), 0.6)
	ps := pl.Sampler()
	pdst := make(ranking.Ranking, 1000)
	ps.SampleInto(pdst, rng)
	if avg := testing.AllocsPerRun(50, func() { ps.SampleInto(pdst, rng) }); avg != 0 {
		t.Errorf("Plackett-Luce SampleInto: %.2f allocs/op in steady state, want 0", avg)
	}
}

func TestSampleIntoPanicsOnLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := MustNew(ranking.New(5), 0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RIM SampleInto accepted a short dst")
			}
		}()
		m.Sampler().SampleInto(make(ranking.Ranking, 4), rng)
	}()
	pl := MustNewPlackettLuce(ranking.New(5), 0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PL SampleInto accepted a short dst")
			}
		}()
		pl.Sampler().SampleInto(make(ranking.Ranking, 6), rng)
	}()
}
