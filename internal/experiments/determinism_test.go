package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// runWithWorkers runs one experiment with an explicit worker count.
func runWithWorkers(t *testing.T, id string, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{Seed: 1, Out: &buf, Quick: true, Workers: workers}
	if err := Run(id, cfg); err != nil {
		t.Fatalf("%s with %d workers: %v", id, workers, err)
	}
	return buf.String()
}

// TestWorkersDeterminism checks the tentpole guarantee: a parallel experiment
// run emits exactly the bytes of the sequential (Workers: 1) run for the
// same seed.
func TestWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment tables twice")
	}
	for _, id := range []string{"fig4", "fig5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			sequential := runWithWorkers(t, id, 1)
			parallel := runWithWorkers(t, id, 4)
			if sequential != parallel {
				t.Fatalf("%s output differs between Workers:1 and Workers:4\n--- sequential ---\n%s\n--- parallel ---\n%s",
					id, sequential, parallel)
			}
		})
	}
}

// stripRuntimes canonicalises a timed table: every token parseable as a
// time.Duration (the wall-clock Runtime column, the only non-deterministic
// output) becomes "T", and tabwriter padding — which depends on the runtime
// strings' widths — collapses to single spaces.
func stripRuntimes(out string) string {
	lines := strings.Split(out, "\n")
	for li, line := range lines {
		fields := strings.Fields(line)
		for fi, f := range fields {
			if _, err := time.ParseDuration(f); err == nil {
				fields[fi] = "T"
			}
		}
		lines[li] = strings.Join(fields, " ")
	}
	return strings.Join(lines, "\n")
}

// TestWorkersDeterminismTimedTables checks fig6 — whose Runtime column is
// inherently non-deterministic — is otherwise (sizes, methods, PD losses)
// identical across worker counts.
func TestWorkersDeterminismTimedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig6 scalability table twice")
	}
	sequential := stripRuntimes(runWithWorkers(t, "fig6", 1))
	parallel := stripRuntimes(runWithWorkers(t, "fig6", 4))
	if sequential != parallel {
		t.Fatalf("fig6 output differs beyond the runtime column\n--- sequential ---\n%s\n--- parallel ---\n%s",
			sequential, parallel)
	}
}
