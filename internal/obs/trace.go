package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpans bounds a single trace's span list. A kemeny solve with many
// restarts can emit hundreds of spans; past the cap we keep the earliest
// spans (the request skeleton) and count the rest, so a pathological
// request cannot grow a trace without bound.
const maxSpans = 512

// maxSpansPerName bounds how many spans a single stage name may record in
// one trace. Solver child spans (a descent pass per local-search sweep, a
// span per restart) repeat thousands of times in a long solve; without a
// per-name cap they exhaust maxSpans before the request-level stages that
// close *after* the solve ("solve", "encode") ever record, and the trace
// loses exactly the spans /tracez exists to show.
const maxSpansPerName = 64

var traceIDs atomic.Uint64

// Span is one timed stage inside a trace. Start is the offset from the
// trace's begin time, so spans are self-contained after the trace ends.
type Span struct {
	// Name identifies the stage (e.g. "queue", "solve", "matrix_build").
	Name string
	// Start is the offset from the trace's begin time.
	Start time.Duration
	// Duration is how long the stage took.
	Duration time.Duration
}

// Trace accumulates named spans for one request. It travels in a
// context.Context (WithTrace/FromContext); every method is safe on a nil
// receiver, so library code can instrument unconditionally and pay only a
// pointer check when tracing is off. Span recording is mutex-guarded:
// solver restart workers append concurrently.
type Trace struct {
	// ID is a process-unique trace identifier.
	ID uint64
	// Name labels the trace (the aggregation method for serving traces).
	Name string
	// Detail carries a short free-form qualifier (e.g. a digest prefix).
	Detail string
	// Begin is the trace's start time.
	Begin time.Time

	mu      sync.Mutex
	spans   []Span
	perName map[string]int
	dropped int
	wall    time.Duration
}

// NewTrace starts a trace clocked from now.
func NewTrace(name, detail string) *Trace {
	return &Trace{ID: traceIDs.Add(1), Name: name, Detail: detail, Begin: time.Now()}
}

// AddSpan records a completed stage by absolute start/end times.
func (t *Trace) AddSpan(name string, start, end time.Time) {
	if t == nil {
		return
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	if t.perName == nil {
		t.perName = make(map[string]int)
	}
	if len(t.spans) >= maxSpans || t.perName[name] >= maxSpansPerName {
		t.dropped++
	} else {
		t.perName[name]++
		t.spans = append(t.spans, Span{Name: name, Start: start.Sub(t.Begin), Duration: d})
	}
	t.mu.Unlock()
}

// StartSpan starts a stage and returns the function that ends it:
//
//	defer trace.StartSpan("solve")()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Now()) }
}

// Finish stamps the trace's wall time and returns it. Later calls return
// the first stamp, so a deferred Finish is idempotent.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wall == 0 {
		t.wall = time.Since(t.Begin)
	}
	return t.wall
}

// Wall returns the finished wall time (0 until Finish).
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.wall
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// SpanSnapshot is one span in JSON form, durations in milliseconds.
type SpanSnapshot struct {
	// Name is the stage name.
	Name string `json:"name"`
	// OffsetMS is the span start as milliseconds after the trace began.
	OffsetMS float64 `json:"offset_ms"`
	// DurationMS is the span duration in milliseconds.
	DurationMS float64 `json:"duration_ms"`
}

// TraceSnapshot is a completed trace in JSON form for /tracez.
type TraceSnapshot struct {
	// ID is the trace identifier.
	ID uint64 `json:"id"`
	// Name labels the trace (the aggregation method).
	Name string `json:"name"`
	// Detail is the trace's qualifier, if any.
	Detail string `json:"detail,omitempty"`
	// Start is the trace begin time, RFC 3339.
	Start time.Time `json:"start"`
	// WallMS is the request wall time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Spans are the recorded stages in recording order.
	Spans []SpanSnapshot `json:"spans"`
	// SpansDropped counts spans discarded past the per-trace cap.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// Snapshot renders the trace for serving.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		ID:           t.ID,
		Name:         t.Name,
		Detail:       t.Detail,
		Start:        t.Begin,
		WallMS:       float64(t.wall) / float64(time.Millisecond),
		Spans:        make([]SpanSnapshot, len(t.spans)),
		SpansDropped: t.dropped,
	}
	for i, sp := range t.spans {
		s.Spans[i] = SpanSnapshot{
			Name:       sp.Name,
			OffsetMS:   float64(sp.Start) / float64(time.Millisecond),
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
		}
	}
	return s
}

type traceKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil — and nil is a valid
// receiver for every Trace method, so callers never branch.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace (no-op without one):
//
//	defer obs.StartSpan(ctx, "matrix_build")()
func StartSpan(ctx context.Context, name string) func() {
	return FromContext(ctx).StartSpan(name)
}
