package ranking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomProfile(n, m int, rng *rand.Rand) Profile {
	p := make(Profile, m)
	for i := range p {
		p[i] = Random(n, rng)
	}
	return p
}

func TestPrecedenceComplementarity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(12), 1+rng.Intn(8)
		w := MustPrecedence(randomProfile(n, m, rng))
		for a := 0; a < n; a++ {
			if w.At(a, a) != 0 {
				return false
			}
			for b := a + 1; b < n; b++ {
				if w.At(a, b)+w.At(b, a) != m {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrecedenceSingleRanking(t *testing.T) {
	r := Ranking{2, 0, 1}
	w := MustPrecedence(Profile{r})
	// W[a][b] counts rankings with b above a.
	if w.At(0, 2) != 1 { // 2 is above 0
		t.Errorf("W[0][2] = %d, want 1", w.At(0, 2))
	}
	if w.At(2, 0) != 0 {
		t.Errorf("W[2][0] = %d, want 0", w.At(2, 0))
	}
	if w.At(1, 0) != 1 { // 0 above 1
		t.Errorf("W[1][0] = %d, want 1", w.At(1, 0))
	}
}

func TestKemenyCostEqualsSumKendall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(15), 1+rng.Intn(10)
		p := randomProfile(n, m, rng)
		w := MustPrecedence(p)
		r := Random(n, rng)
		sum := 0
		for _, base := range p {
			sum += KendallTau(r, base)
		}
		return w.KemenyCost(r) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPDLossAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(15), 1+rng.Intn(10)
		p := randomProfile(n, m, rng)
		w := MustPrecedence(p)
		r := Random(n, rng)
		a, b := w.PDLoss(r), PDLoss(p, r)
		return a >= 0 && a <= 1 && abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestPDLossExtremes(t *testing.T) {
	r := New(6)
	// Identical profile: zero loss.
	p := Profile{r.Clone(), r.Clone(), r.Clone()}
	if got := PDLoss(p, r); got != 0 {
		t.Errorf("PD loss against identical profile = %v, want 0", got)
	}
	// Profile of reversals: total loss.
	rev := r.Reverse()
	if got := PDLoss(Profile{rev, rev}, r); got != 1 {
		t.Errorf("PD loss against reversed profile = %v, want 1", got)
	}
}

func TestLowerBoundIsAdmissible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(10), 1+rng.Intn(8)
		p := randomProfile(n, m, rng)
		w := MustPrecedence(p)
		lb := w.LowerBound()
		for trial := 0; trial < 5; trial++ {
			if w.KemenyCost(Random(n, rng)) < lb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCondorcetOrderUnanimousProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := Random(8, rng)
	w := MustPrecedence(Profile{r.Clone(), r.Clone(), r.Clone()})
	got, ok := w.CondorcetOrder()
	if !ok {
		t.Fatal("unanimous profile must have a Condorcet order")
	}
	if !got.Equal(r) {
		t.Fatalf("Condorcet order = %v, want %v", got, r)
	}
}

func TestCondorcetOrderCycle(t *testing.T) {
	// Classic Condorcet paradox: a>b>c, b>c>a, c>a>b.
	p := Profile{
		Ranking{0, 1, 2},
		Ranking{1, 2, 0},
		Ranking{2, 0, 1},
	}
	if _, ok := MustPrecedence(p).CondorcetOrder(); ok {
		t.Fatal("cyclic majority should have no Condorcet order")
	}
}

func TestWeightedPrecedence(t *testing.T) {
	p := Profile{Ranking{0, 1}, Ranking{1, 0}}
	w, err := NewWeightedPrecedence(p, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.At(1, 0) != 3 { // 0 above 1 in the weight-3 ranking
		t.Errorf("W[1][0] = %d, want 3", w.At(1, 0))
	}
	if w.At(0, 1) != 1 {
		t.Errorf("W[0][1] = %d, want 1", w.At(0, 1))
	}
	if w.Rankings() != 4 {
		t.Errorf("Rankings() = %d, want 4", w.Rankings())
	}
	if _, err := NewWeightedPrecedence(p, []int{1}); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := NewWeightedPrecedence(p, []int{-1, 1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestNewPrecedenceRejectsInvalidProfile(t *testing.T) {
	if _, err := NewPrecedence(Profile{Ranking{0, 0}}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestMajorityPrefers(t *testing.T) {
	p := Profile{Ranking{0, 1}, Ranking{0, 1}, Ranking{1, 0}}
	w := MustPrecedence(p)
	if !w.MajorityPrefers(0, 1) {
		t.Error("majority should prefer 0 over 1")
	}
	if w.MajorityPrefers(1, 0) {
		t.Error("majority should not prefer 1 over 0")
	}
}
