// Quickstart: build a small candidate database with two protected
// attributes, combine three committee rankings into a consensus, observe
// the bias a fairness-unaware method inherits, and remove it with the
// MANI-Rank solvers.
package main

import (
	"fmt"
	"log"

	"manirank"
)

func main() {
	// Eight candidates with Gender {M, W} and Race {A, B}.
	// Candidates 0-3 are men, 4-7 women; races alternate.
	gender := []int{0, 0, 0, 0, 1, 1, 1, 1}
	race := []int{0, 1, 0, 1, 0, 1, 0, 1}
	table, err := manirank.NewTable(8,
		manirank.MustAttribute("Gender", []string{"M", "W"}, gender),
		manirank.MustAttribute("Race", []string{"A", "B"}, race),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Three rankers, all of whom rank every man above every woman.
	profile := manirank.Profile{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{1, 0, 3, 2, 5, 4, 7, 6},
		{0, 2, 1, 3, 4, 6, 5, 7},
	}

	// A fairness-unaware Kemeny consensus faithfully reproduces the bias.
	unfair, err := manirank.Kemeny(profile, manirank.KemenyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Kemeny consensus:   ", unfair)
	fmt.Printf("  Gender ARP = %.2f (1.0 = one gender wholly on top)\n",
		manirank.ARP(unfair, table.Attr("Gender")))

	// MANI-Rank targets: every attribute and the intersection within 0.2 of
	// statistical parity.
	targets := manirank.Targets(table, 0.2)
	fair, err := manirank.FairKemeny(profile, targets, manirank.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fair-Kemeny consensus:", fair)
	fmt.Print(manirank.FormatReport(manirank.Audit(fair, table), table))

	// The price of fairness: extra pairwise disagreement with the rankers.
	fmt.Printf("PD loss: unaware %.3f -> fair %.3f (PoF %.3f)\n",
		manirank.PDLoss(profile, unfair),
		manirank.PDLoss(profile, fair),
		manirank.PriceOfFairness(profile, fair, unfair),
	)
}
