// Scholarships reproduces the paper's merit scholarship case study (Table
// IV): three base rankings of 200 students derived from math, reading and
// writing exam scores, with protected attributes Gender, Race and Lunch
// (subsidised lunch as a socioeconomic proxy). Each subject ranking carries
// a different bias profile; the fairness-unaware Kemeny consensus inherits
// them, and the MFCR solvers at Delta = 0.05 level the merit-aid playing
// field across all three attributes and their intersection at once.
package main

import (
	"context"
	"fmt"
	"log"

	"manirank"
	"manirank/internal/unfairgen"
)

func main() {
	study, err := unfairgen.NewExamStudy(200, 41)
	if err != nil {
		log.Fatal(err)
	}
	table := study.Table
	profile := manirank.Profile(study.Profile)

	row := func(name string, r manirank.Ranking) {
		rep := manirank.Audit(r, table)
		gender := manirank.FPR(r, table.Attr("Gender"))
		lunch := manirank.FPR(r, table.Attr("Lunch"))
		fmt.Printf("%-14s men=%.2f women=%.2f gender=%.2f | nosub=%.2f sub=%.2f lunch=%.2f | race=%.2f irp=%.2f\n",
			name, gender[0], gender[1], rep.ARPs[0], lunch[0], lunch[1], rep.ARPs[2], rep.ARPs[1], rep.IRP)
	}

	fmt.Println("Per-subject base rankings (FPR scores; 0.5 = parity):")
	for i, r := range profile {
		row(study.Subjects[i], r)
	}

	// One Engine aggregates the three subject rankings once; every method
	// below shares its precedence matrix.
	engine, err := manirank.NewEngine(profile, manirank.WithTable(table))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	kemenyRes, err := engine.Solve(ctx, manirank.MethodKemeny, nil)
	if err != nil {
		log.Fatal(err)
	}
	kemeny := kemenyRes.Ranking
	fmt.Println("\nFairness-unaware consensus inherits the bias:")
	row("Kemeny", kemeny)

	// Suppose the top quarter receives merit aid: compare group shares.
	aidShare := func(r manirank.Ranking) (sub, noSub int) {
		lunch := table.Attr("Lunch")
		for _, c := range r[:len(r)/4] {
			if lunch.Of[c] == 1 {
				sub++
			} else {
				noSub++
			}
		}
		return sub, noSub
	}
	s, ns := aidShare(kemeny)
	fmt.Printf("  merit aid (top 25%%): %d no-subsidy vs %d subsidised students\n", ns, s)

	targets := manirank.Targets(table, 0.05)
	fmt.Println("\nMFCR consensus rankings (Delta = 0.05):")
	for _, m := range []struct {
		name   string
		method manirank.Method
	}{
		{"Fair-Kemeny", manirank.MethodFairKemeny},
		{"Fair-Schulze", manirank.MethodFairSchulze},
		{"Fair-Borda", manirank.MethodFairBorda},
		{"Fair-Copeland", manirank.MethodFairCopeland},
	} {
		res, err := engine.Solve(ctx, m.method, targets)
		if err != nil {
			log.Fatal(err)
		}
		row(m.name, res.Ranking)
		if m.method == manirank.MethodFairKemeny {
			s, ns = aidShare(res.Ranking)
			fmt.Printf("  merit aid (top 25%%): %d no-subsidy vs %d subsidised students\n", ns, s)
		}
	}
}
