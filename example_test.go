package manirank_test

import (
	"fmt"

	"manirank"
)

// ExampleFairKemeny demonstrates removing gender bias from a consensus over
// six candidates: every ranker puts all men (0-2) above all women (3-5);
// Fair-Kemeny with Delta = 0.4 pulls the consensus toward parity.
func ExampleFairKemeny() {
	table, _ := manirank.NewTable(6,
		manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 0, 0, 1, 1, 1}),
	)
	profile := manirank.Profile{
		{0, 1, 2, 3, 4, 5},
		{1, 0, 2, 4, 3, 5},
	}
	unfair, _ := manirank.Kemeny(profile, manirank.KemenyOptions{})
	fair, _ := manirank.FairKemeny(profile, manirank.Targets(table, 0.4), manirank.Options{})
	fmt.Printf("unaware ARP %.2f, fair ARP %.2f\n",
		manirank.ARP(unfair, table.Attr("Gender")),
		manirank.ARP(fair, table.Attr("Gender")))
	// Output: unaware ARP 1.00, fair ARP 0.33
}

// ExampleAudit shows a full fairness audit of a single ranking.
func ExampleAudit() {
	table, _ := manirank.NewTable(4,
		manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 1, 0, 1}),
	)
	r := manirank.Ranking{0, 2, 1, 3} // both men above both women
	rep := manirank.Audit(r, table)
	fmt.Printf("ARP Gender = %.2f\n", rep.ARPs[0])
	fmt.Printf("satisfies Delta=0.5: %v\n", rep.Satisfies(0.5))
	// Output:
	// ARP Gender = 1.00
	// satisfies Delta=0.5: false
}

// ExampleKendallTau counts pairwise disagreements between two rankings.
func ExampleKendallTau() {
	a := manirank.Ranking{0, 1, 2, 3}
	b := manirank.Ranking{1, 0, 3, 2}
	fmt.Println(manirank.KendallTau(a, b))
	// Output: 2
}

// ExampleMakeMRFair repairs an existing ranking in place of re-aggregating.
func ExampleMakeMRFair() {
	table, _ := manirank.NewTable(4,
		manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 0, 1, 1}),
	)
	biased := manirank.Ranking{0, 1, 2, 3}
	fair, _ := manirank.MakeMRFair(biased, manirank.Targets(table, 0.5))
	fmt.Printf("ARP %.2f -> %.2f\n",
		manirank.ARP(biased, table.Attr("Gender")),
		manirank.ARP(fair, table.Attr("Gender")))
	// Output: ARP 1.00 -> 0.50
}
