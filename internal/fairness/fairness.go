// Package fairness implements the group fairness criteria of the MANI-Rank
// paper (Section II-B): the Favored Pair Representation score (FPR, paper
// Def. 4), Attribute Rank Parity (ARP, Def. 5), Intersectional Rank Parity
// (IRP, Def. 6), and the combined MANI-Rank criterion (Def. 7) that bounds
// every ARP and the IRP by a threshold Delta.
//
// All scores are computed in O(n) per attribute by a single top-to-bottom
// scan of the ranking, making fairness audits cheap even inside the repair
// loop of Make-MR-Fair.
package fairness

import (
	"fmt"
	"strings"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// MixedPairs returns omega_M(G) = |G| * (|X| - |G|), the number of mixed
// pairs a group of the given size participates in within a ranking over n
// candidates (paper Eq. 3).
func MixedPairs(groupSize, n int) int { return groupSize * (n - groupSize) }

// GroupFPRs returns the FPR score of every group of attribute a (indexed by
// attribute value) in ranking r (paper Def. 4).
//
// FPR_G = (mixed pairs in which a member of G is favored) / omega_M(G).
// FPR is 0 when the group sits entirely at the bottom, 1 entirely at the top,
// and exactly 1/2 at statistical parity. Empty groups and groups covering
// the whole database have no mixed pairs; their FPR is reported as 0.5
// (perfectly neutral) so they never drive a parity violation.
func GroupFPRs(r ranking.Ranking, a *attribute.Attribute) []float64 {
	n := len(r)
	sizes := a.GroupSizes()
	wins := make([]int, a.DomainSize())
	// seen[v] = members of group v encountered so far (above current pos).
	seen := make([]int, a.DomainSize())
	// Walking top -> bottom: the candidate c at position i wins against the
	// (n-1-i) candidates below it, of which (sizes[v]-seen[v]-1) share its
	// group v and are therefore not mixed pairs.
	for i, c := range r {
		v := a.Of[c]
		below := n - 1 - i
		sameBelow := sizes[v] - seen[v] - 1
		wins[v] += below - sameBelow
		seen[v]++
	}
	fprs := make([]float64, a.DomainSize())
	for v := range fprs {
		m := MixedPairs(sizes[v], n)
		if m == 0 {
			fprs[v] = 0.5
			continue
		}
		fprs[v] = float64(wins[v]) / float64(m)
	}
	return fprs
}

// GroupFPR returns the FPR of the single group identified by value v of
// attribute a.
func GroupFPR(r ranking.Ranking, a *attribute.Attribute, v int) float64 {
	return GroupFPRs(r, a)[v]
}

// ARP returns the Attribute Rank Parity of attribute a in ranking r (paper
// Def. 5): the maximum absolute FPR difference over all pairs of the
// attribute's groups, i.e. max FPR - min FPR. ARP is 0 at perfect statistical
// parity and 1 when one group is entirely on top and another entirely at the
// bottom.
func ARP(r ranking.Ranking, a *attribute.Attribute) float64 {
	return spread(GroupFPRs(r, a))
}

// IRP returns the Intersectional Rank Parity (paper Def. 6) of ranking r
// over the table's attribute intersection.
func IRP(r ranking.Ranking, t *attribute.Table) float64 {
	return ARP(r, t.Intersection())
}

func spread(fprs []float64) float64 {
	if len(fprs) == 0 {
		return 0
	}
	lo, hi := fprs[0], fprs[0]
	for _, f := range fprs[1:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

// Report is a full MANI-Rank fairness audit of one ranking: per-attribute
// group FPR scores and parity, plus the intersectional parity.
type Report struct {
	// ARPs[i] is the Attribute Rank Parity of table attribute i.
	ARPs []float64
	// FPRs[i][v] is the FPR score of value v's group for table attribute i.
	FPRs [][]float64
	// IRP is the Intersectional Rank Parity.
	IRP float64
	// InterFPRs holds the FPR of each occupied intersectional group.
	InterFPRs []float64
}

// Audit computes a fairness Report for ranking r over table t.
func Audit(r ranking.Ranking, t *attribute.Table) Report {
	attrs := t.Attrs()
	rep := Report{
		ARPs: make([]float64, len(attrs)),
		FPRs: make([][]float64, len(attrs)),
	}
	for i, a := range attrs {
		rep.FPRs[i] = GroupFPRs(r, a)
		rep.ARPs[i] = spread(rep.FPRs[i])
	}
	rep.InterFPRs = GroupFPRs(r, t.Intersection())
	rep.IRP = spread(rep.InterFPRs)
	return rep
}

// MaxViolation returns the largest ARP/IRP in the report; a ranking satisfies
// MANI-Rank at threshold delta iff MaxViolation() <= delta.
func (rep Report) MaxViolation() float64 {
	max := rep.IRP
	for _, v := range rep.ARPs {
		if v > max {
			max = v
		}
	}
	return max
}

// Satisfies reports whether the audited ranking meets MANI-Rank group
// fairness (paper Def. 7) at threshold delta.
func (rep Report) Satisfies(delta float64) bool { return rep.MaxViolation() <= delta+Eps }

// Eps absorbs float rounding when comparing parity scores against a fairness
// threshold Delta; all scores are ratios of small integers so 1e-12 is far
// below their resolution. Every feasibility comparison in the module —
// fairness audits, kemeny.Feasible, core's repair targets — shares this one
// constant so the feasibility band cannot drift between repair and descent.
const Eps = 1e-12

// SatisfiesMANIRank reports whether ranking r satisfies MANI-Rank group
// fairness at threshold delta over table t: ARP_pk <= delta for every
// protected attribute and IRP <= delta (paper Def. 7).
func SatisfiesMANIRank(r ranking.Ranking, t *attribute.Table, delta float64) bool {
	for _, a := range t.Attrs() {
		if ARP(r, a) > delta+Eps {
			return false
		}
	}
	return IRP(r, t) <= delta+Eps
}

// Thresholds carries per-attribute fairness targets for the customized
// MANI-Rank variant (paper Section II-B, "Customizing Group Fairness"). A
// missing entry falls back to Default.
type Thresholds struct {
	// Default applies to every attribute and the intersection unless
	// overridden.
	Default float64
	// PerAttr maps attribute name -> threshold.
	PerAttr map[string]float64
	// Inter overrides the intersection threshold when >= 0; use -1 to fall
	// back to Default.
	Inter float64
}

// Uniform returns Thresholds applying delta everywhere.
func Uniform(delta float64) Thresholds {
	return Thresholds{Default: delta, Inter: -1}
}

// ForAttr returns the threshold for the named attribute.
func (th Thresholds) ForAttr(name string) float64 {
	if v, ok := th.PerAttr[name]; ok {
		return v
	}
	return th.Default
}

// ForInter returns the threshold for the intersection.
func (th Thresholds) ForInter() float64 {
	if th.Inter >= 0 {
		return th.Inter
	}
	return th.Default
}

// SatisfiesThresholds reports whether r satisfies the per-attribute
// customized MANI-Rank criteria.
func SatisfiesThresholds(r ranking.Ranking, t *attribute.Table, th Thresholds) bool {
	for _, a := range t.Attrs() {
		if ARP(r, a) > th.ForAttr(a.Name)+Eps {
			return false
		}
	}
	return IRP(r, t) <= th.ForInter()+Eps
}

// String renders the report as a compact single-line summary, e.g.
// "ARP[Gender]=0.140 ARP[Race]=0.300 IRP=0.520". Attribute names are not
// stored in the report, so indices are used; FormatReport prints names.
func (rep Report) String() string {
	var b strings.Builder
	for i, v := range rep.ARPs {
		fmt.Fprintf(&b, "ARP[%d]=%.3f ", i, v)
	}
	fmt.Fprintf(&b, "IRP=%.3f", rep.IRP)
	return b.String()
}

// FormatReport renders a human-readable audit with attribute and group
// names, one line per attribute plus the intersection line.
func FormatReport(rep Report, t *attribute.Table) string {
	var b strings.Builder
	for i, a := range t.Attrs() {
		fmt.Fprintf(&b, "%-12s ARP=%.3f ", a.Name, rep.ARPs[i])
		for v, f := range rep.FPRs[i] {
			fmt.Fprintf(&b, " %s=%.3f", a.Values[v], f)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-12s IRP=%.3f\n", "Intersection", rep.IRP)
	return b.String()
}
