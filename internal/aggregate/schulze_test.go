package aggregate

import (
	"math/rand"
	"testing"

	"manirank/internal/mallows"
	"manirank/internal/ranking"
)

// schulzeProfile draws m rankings over n candidates from a Plackett-Luce
// model around a random modal — the same family the scalability artifacts
// (fig7) use, so the benchmark measures the workload Schulze dominates there.
func schulzeProfile(n, m int, theta float64, seed int64) ranking.Profile {
	rng := rand.New(rand.NewSource(seed))
	modal := ranking.Random(n, rng)
	return mallows.MustNewPlackettLuce(modal, theta).SampleProfile(m, rng)
}

// TestSchulzeEarlyExitMatchesDense pins the early-exit widest-path against
// the unpruned recurrence cell-for-cell, across consensus strengths from
// near-uniform (many zero-majority pairs) to strong (dense majority matrix).
func TestSchulzeEarlyExitMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		m := 1 + rng.Intn(12)
		p := make(ranking.Profile, m)
		for i := range p {
			p[i] = ranking.Random(n, rng)
		}
		w := ranking.MustPrecedence(p)
		got, want := schulzeStrongestPaths(w), schulzeDensePaths(w)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if got[a][b] != want[a][b] {
					t.Fatalf("n=%d m=%d: paths[%d][%d] = %d, dense says %d", n, m, a, b, got[a][b], want[a][b])
				}
			}
		}
		if !schulzeRankFromPaths(got).Equal(schulzeRankFromPaths(want)) {
			t.Fatalf("n=%d m=%d: rankings deviate", n, m)
		}
	}
	// Structured profiles too: weak and strong Mallows-style consensus.
	for _, theta := range []float64{0.05, 0.6} {
		w := ranking.MustPrecedence(schulzeProfile(120, 30, theta, 42))
		got, want := schulzeStrongestPaths(w), schulzeDensePaths(w)
		for a := range got {
			for b := range got[a] {
				if got[a][b] != want[a][b] {
					t.Fatalf("theta=%g: paths[%d][%d] = %d, dense says %d", theta, a, b, got[a][b], want[a][b])
				}
			}
		}
	}
}

// benchSchulzePaths times one strongest-paths computation per iteration on
// the fig7 worst-case scale (n=500).
func benchSchulzePaths(b *testing.B, f func(*ranking.Precedence) [][]int) {
	b.Helper()
	w := ranking.MustPrecedence(schulzeProfile(500, 50, 0.2, 7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(w)
	}
}

// BenchmarkSchulze500 vs BenchmarkSchulze500Dense is the ROADMAP item's
// receipt: the contested-column early exit against the unpruned recurrence
// on the n=500 workload that dominates fig7.
func BenchmarkSchulze500(b *testing.B)      { benchSchulzePaths(b, schulzeStrongestPaths) }
func BenchmarkSchulze500Dense(b *testing.B) { benchSchulzePaths(b, schulzeDensePaths) }
