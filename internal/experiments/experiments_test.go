package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Seed: 1, Out: buf, Quick: true}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && (id == "fig3" || id == "fig7" || id == "table2") {
				t.Skip("heavy even in quick mode")
			}
			var buf bytes.Buffer
			if err := Run(id, quickCfg(&buf)); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestRunRejectsUnknownID(t *testing.T) {
	if err := Run("fig99", Config{Quick: true}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestTable1ReportsThreeDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Low-Fair", "Medium-Fair", "High-Fair"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing dataset %q in output:\n%s", name, out)
		}
	}
}

func TestFig4ReportsAllMethods(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4"} {
		if !strings.Contains(out, "("+id+")") {
			t.Errorf("missing method %s in fig4 output", id)
		}
	}
}

func TestFig2ShowsFairnessContrast(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Kemeny") || !strings.Contains(out, "MANI-Rank") {
		t.Fatalf("fig2 output incomplete:\n%s", out)
	}
}

func TestTable4HasCaseStudyRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, rowName := range []string{"Math", "Reading", "Writing", "Kemeny", "Fair-Kemeny", "Fair-Borda"} {
		if !strings.Contains(out, rowName) {
			t.Errorf("missing row %q in table4 output", rowName)
		}
	}
}

func TestTable5HasYearRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Table5(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, rowName := range []string{"2000", "2020", "Kemeny", "Fair-Copeland"} {
		if !strings.Contains(out, rowName) {
			t.Errorf("missing row %q in table5 output", rowName)
		}
	}
}
