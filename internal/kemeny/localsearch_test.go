package kemeny

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

func TestLocalSearchNeverWorsens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(20), 1+rng.Intn(8)
		w := ranking.MustPrecedence(randomProfile(n, m, rng))
		start := ranking.Random(n, rng)
		before := w.KemenyCost(start)
		out := LocalSearch(w, start)
		return w.KemenyCost(out) <= before && out.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSearchReachesOptimumSmallN(t *testing.T) {
	// On tiny instances the insertion neighbourhood from a Borda seed almost
	// always reaches the optimum; verify it at least matches on unanimous
	// profiles where the optimum is obvious.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		modal := ranking.Random(n, rng)
		p := ranking.Profile{modal.Clone(), modal.Clone(), modal.Clone()}
		w := ranking.MustPrecedence(p)
		got := LocalSearch(w, ranking.Random(n, rng))
		if w.KemenyCost(got) != 0 {
			t.Fatalf("unanimous profile: cost %d, want 0", w.KemenyCost(got))
		}
	}
}

func TestHeuristicCloseToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(6)
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		res := BranchAndBound(w, nil, nil, 0)
		h := Heuristic(w, Options{Seed: int64(trial)})
		if hc := w.KemenyCost(h); hc < res.Cost {
			t.Fatalf("heuristic cost %d below proven optimum %d", hc, res.Cost)
		}
	}
}

func TestHeuristicDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := ranking.MustPrecedence(randomProfile(15, 6, rng))
	a := Heuristic(w, Options{Seed: 42})
	b := Heuristic(w, Options{Seed: 42})
	if !a.Equal(b) {
		t.Fatal("heuristic not deterministic for a fixed seed")
	}
}

func TestBordaFromPrecedenceMatchesProfileBorda(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n, m := 2+rng.Intn(15), 1+rng.Intn(8)
		p := randomProfile(n, m, rng)
		w := ranking.MustPrecedence(p)
		got := BordaFromPrecedence(w)
		// Independent Borda: points by position.
		points := make([]int, n)
		for _, r := range p {
			for i, c := range r {
				points[c] += n - 1 - i
			}
		}
		want := ranking.SortByPointsDesc(points)
		if !got.Equal(want) {
			t.Fatalf("BordaFromPrecedence = %v, want %v", got, want)
		}
	}
}

func TestConstrainedLocalSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		a := binaryAttr(n, rng)
		cons := []Constraint{{Attr: a, Delta: 0.4}}
		// Build a feasible start: perfectly alternating by group.
		start := alternating(a)
		if !Feasible(start, cons) {
			continue
		}
		before := w.KemenyCost(start)
		out := ConstrainedLocalSearch(w, cons, start)
		if !Feasible(out, cons) {
			t.Fatal("CLS output violates constraints")
		}
		if w.KemenyCost(out) > before {
			t.Fatal("CLS worsened the cost")
		}
		if !out.IsValid() {
			t.Fatal("CLS output invalid")
		}
	}
}

// alternating interleaves the two groups of a binary attribute.
func alternating(a *attribute.Attribute) ranking.Ranking {
	var g0, g1 []int
	for c, v := range a.Of {
		if v == 0 {
			g0 = append(g0, c)
		} else {
			g1 = append(g1, c)
		}
	}
	out := make(ranking.Ranking, 0, len(a.Of))
	for len(g0) > 0 || len(g1) > 0 {
		if len(g0) > 0 {
			out = append(out, g0[0])
			g0 = g0[1:]
		}
		if len(g1) > 0 {
			out = append(out, g1[0])
			g1 = g1[1:]
		}
	}
	return out
}

func TestConstrainedLocalSearchPanicsOnInfeasibleStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := ranking.MustPrecedence(randomProfile(6, 3, rng))
	a, err := attribute.NewAttribute("g", []string{"A", "B"}, []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for infeasible start")
		}
	}()
	ConstrainedLocalSearch(w, []Constraint{{Attr: a, Delta: 0.1}}, ranking.New(6))
}

func TestConstrainedLocalSearchRecoversNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := 6
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		a := binaryAttr(n, rng)
		cons := []Constraint{{Attr: a, Delta: 0.5}}
		exact := BranchAndBound(w, cons, nil, 0)
		if exact.Ranking == nil {
			continue
		}
		start := alternating(a)
		if !Feasible(start, cons) {
			continue
		}
		cls := ConstrainedLocalSearch(w, cons, start)
		if w.KemenyCost(cls) < exact.Cost {
			t.Fatalf("CLS cost %d below constrained optimum %d", w.KemenyCost(cls), exact.Cost)
		}
	}
}
