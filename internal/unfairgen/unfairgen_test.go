package unfairgen

import (
	"math"
	"math/rand"
	"testing"

	"manirank/internal/fairness"
)

func TestBalancedTable(t *testing.T) {
	tab, err := BalancedTable(90, []string{"Gender", "Race"}, [][]string{
		{"M", "NB", "W"}, {"A", "B", "C", "D", "E"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inter := tab.Intersection()
	if inter.DomainSize() != 15 {
		t.Fatalf("intersection has %d groups, want 15", inter.DomainSize())
	}
	for v, size := range inter.GroupSizes() {
		if size != 6 {
			t.Fatalf("intersection group %d size %d, want 6", v, size)
		}
	}
}

func TestBalancedTableErrors(t *testing.T) {
	if _, err := BalancedTable(10, []string{"A"}, nil); err == nil {
		t.Error("mismatched names/domains accepted")
	}
	if _, err := BalancedTable(10, []string{"A"}, [][]string{{}}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestBlockRankingIsMaximallyUnfair(t *testing.T) {
	tab, err := PaperTable(90)
	if err != nil {
		t.Fatal(err)
	}
	r := BlockRanking(tab)
	if !r.IsValid() {
		t.Fatal("block ranking invalid")
	}
	if got := fairness.IRP(r, tab); got != 1 {
		t.Fatalf("block ranking IRP = %v, want 1", got)
	}
}

func TestTableIDatasetsApproximatePaperValues(t *testing.T) {
	tab, err := PaperTable(90)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table I targets.
	want := map[string][3]float64{
		"Low-Fair":    {0.70, 0.70, 1.00},
		"Medium-Fair": {0.50, 0.50, 0.75},
		"High-Fair":   {0.30, 0.30, 0.54},
	}
	for _, spec := range TableIDatasets() {
		modal, err := TargetModal(tab, spec.Levels)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rep := fairness.Audit(modal, tab)
		w := want[spec.Name]
		// The construction stops at the first value at or below target, so
		// measured scores sit within one coarse repair step of the target.
		const tol = 0.12
		if rep.ARPs[0] > w[0]+1e-9 || rep.ARPs[0] < w[0]-tol {
			t.Errorf("%s ARP Gender = %.3f, want ~%.2f", spec.Name, rep.ARPs[0], w[0])
		}
		if rep.ARPs[1] > w[1]+1e-9 || rep.ARPs[1] < w[1]-tol {
			t.Errorf("%s ARP Race = %.3f, want ~%.2f", spec.Name, rep.ARPs[1], w[1])
		}
		if rep.IRP > w[2]+1e-9 || rep.IRP < w[2]-tol {
			t.Errorf("%s IRP = %.3f, want ~%.2f", spec.Name, rep.IRP, w[2])
		}
	}
}

func TestPaperTableRejectsBadSize(t *testing.T) {
	if _, err := PaperTable(91); err == nil {
		t.Error("n=91 accepted")
	}
}

func TestBinaryTable(t *testing.T) {
	tab, err := BinaryTable(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Intersection().DomainSize(); got != 4 {
		t.Fatalf("binary intersection groups = %d, want 4", got)
	}
	if _, err := BinaryTable(10); err == nil {
		t.Error("n=10 accepted (not divisible by 4)")
	}
}

func TestScalabilityModalLevels(t *testing.T) {
	// The Fig. 6 dataset: ARP(Race)=.15, ARP(Gender)=.7, IRP=.55 over a
	// binary table of 100 candidates.
	tab, err := BinaryTable(100)
	if err != nil {
		t.Fatal(err)
	}
	modal, err := TargetModal(tab, ParityLevels{
		ARP: map[string]float64{"Gender": 0.70, "Race": 0.15},
		IRP: 0.55,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := fairness.Audit(modal, tab)
	if rep.ARPs[0] > 0.70+1e-9 || rep.ARPs[1] > 0.15+1e-9 || rep.IRP > 0.55+1e-9 {
		t.Fatalf("levels exceeded: %v", rep.String())
	}
	if rep.ARPs[0] < 0.55 {
		t.Fatalf("Gender ARP %.3f too far below the 0.70 target", rep.ARPs[0])
	}
}

func TestExamStudyBiasDirections(t *testing.T) {
	study, err := NewExamStudy(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Profile) != 3 {
		t.Fatalf("%d base rankings, want 3", len(study.Profile))
	}
	if err := study.Profile.Validate(); err != nil {
		t.Fatal(err)
	}
	gender := study.Table.Attr("Gender")
	lunch := study.Table.Attr("Lunch")
	race := study.Table.Attr("Race")
	// Math: women favoured. Reading/writing: men favoured (paper Table IV).
	mathFPR := fairness.GroupFPRs(study.Profile[0], gender)
	if mathFPR[1] <= mathFPR[0] {
		t.Errorf("math should favour women: %v", mathFPR)
	}
	readFPR := fairness.GroupFPRs(study.Profile[1], gender)
	if readFPR[0] <= readFPR[1] {
		t.Errorf("reading should favour men: %v", readFPR)
	}
	// Subsidised-lunch students rank low in every subject.
	for s, r := range study.Profile {
		f := fairness.GroupFPRs(r, lunch)
		if f[0] <= f[1] {
			t.Errorf("subject %d should favour NoSub: %v", s, f)
		}
	}
	// NatHawaii students rank lowest among racial groups in every subject.
	for s, r := range study.Profile {
		f := fairness.GroupFPRs(r, race)
		for v := 0; v < 4; v++ {
			if f[4] >= f[v] {
				t.Errorf("subject %d: NatHawaii FPR %.3f not lowest (group %d at %.3f)", s, f[4], v, f[v])
			}
		}
	}
}

func TestCSRankingsStudyBiasDirections(t *testing.T) {
	study, err := NewCSRankingsStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Profile) != 21 {
		t.Fatalf("%d yearly rankings, want 21", len(study.Profile))
	}
	if err := study.Profile.Validate(); err != nil {
		t.Fatal(err)
	}
	loc := study.Table.Attr("Location")
	typ := study.Table.Attr("Type")
	// Every year: Northeast above South, Private above Public.
	for y, r := range study.Profile {
		lf := fairness.GroupFPRs(r, loc)
		if lf[0] <= lf[3] {
			t.Errorf("year %d: Northeast FPR %.3f not above South %.3f", study.Years[y], lf[0], lf[3])
		}
		tf := fairness.GroupFPRs(r, typ)
		if tf[0] <= tf[1] {
			t.Errorf("year %d: Private FPR %.3f not above Public %.3f", study.Years[y], tf[0], tf[1])
		}
	}
}

func TestAdmissionsStudyShape(t *testing.T) {
	study, err := NewAdmissionsStudy(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Profile) != 4 || study.Table.N() != 45 {
		t.Fatalf("unexpected shape: %d rankings over %d candidates", len(study.Profile), study.Table.N())
	}
	// r4 (index 3) is the most biased, r3 (index 2) the least.
	viol := make([]float64, 4)
	for i, r := range study.Profile {
		viol[i] = fairness.Audit(r, study.Table).MaxViolation()
	}
	if !(viol[3] > viol[2]) {
		t.Errorf("r4 violation %.3f should exceed r3 %.3f", viol[3], viol[2])
	}
}

func TestGeneratorsDeterministicForSeed(t *testing.T) {
	a, err := NewExamStudy(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExamStudy(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Profile {
		if !a.Profile[i].Equal(b.Profile[i]) {
			t.Fatal("exam study not deterministic")
		}
	}
	c, err := NewCSRankingsStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewCSRankingsStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Profile[0].Equal(d.Profile[0]) {
		t.Fatal("csrankings study not deterministic")
	}
}

func TestBiasedScoresEffectDirection(t *testing.T) {
	tab, err := BalancedTable(2000, []string{"G"}, [][]string{{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	rngScores := func(seed int64) (meanA, meanB float64) {
		scores := BiasedScores(tab, 50, 5, [][]float64{{10, -10}}, newRand(seed))
		var sa, sb float64
		var na, nb int
		for c, s := range scores {
			if tab.Attrs()[0].Of[c] == 0 {
				sa += s
				na++
			} else {
				sb += s
				nb++
			}
		}
		return sa / float64(na), sb / float64(nb)
	}
	meanA, meanB := rngScores(1)
	if diff := meanA - meanB; math.Abs(diff-20) > 2 {
		t.Fatalf("group mean difference %.2f, want ~20", diff)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestCalibratedBinaryModalHitsTargets(t *testing.T) {
	tab, err := BinaryTable(4000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	modal, err := CalibratedBinaryModal(tab, 0.70, 0.15, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep := fairness.Audit(modal, tab)
	// Closed-form calibration plus sampling noise: allow +-0.06 at n=4000.
	if math.Abs(rep.ARPs[0]-0.70) > 0.06 {
		t.Errorf("Gender ARP %.3f, want ~0.70", rep.ARPs[0])
	}
	if math.Abs(rep.ARPs[1]-0.15) > 0.06 {
		t.Errorf("Race ARP %.3f, want ~0.15", rep.ARPs[1])
	}
}

func TestCalibratedBinaryModalRejectsBadInput(t *testing.T) {
	tab, err := BinaryTable(40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := CalibratedBinaryModal(tab, 1.0, 0.1, rng); err == nil {
		t.Error("ARP = 1 accepted")
	}
	if _, err := CalibratedBinaryModal(tab, -0.1, 0.1, rng); err == nil {
		t.Error("negative ARP accepted")
	}
	three, err := BalancedTable(30, []string{"Gender", "Race"}, [][]string{{"M", "NB", "W"}, {"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibratedBinaryModal(three, 0.5, 0.1, rng); err == nil {
		t.Error("non-binary attribute accepted")
	}
	wrongNames, err := BalancedTable(30, []string{"X", "Y"}, [][]string{{"a", "b"}, {"c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CalibratedBinaryModal(wrongNames, 0.5, 0.1, rng); err == nil {
		t.Error("missing Gender/Race attributes accepted")
	}
}
