#!/usr/bin/env bash
# smoke_serve.sh — end-to-end serving smoke: build manirankd, start it, POST
# a 20-candidate profile, assert 200 + a valid ranking, assert the second
# identical request is served from the result cache, and assert a different
# method over the same profile skips the precedence-matrix build (the
# two-tier contract). Used by CI's serve-smoke stage.
set -euo pipefail

cd "$(dirname "$0")/.."

go build -o /tmp/manirankd ./cmd/manirankd

PORT="${SMOKE_PORT:-18080}"
/tmp/manirankd -addr "127.0.0.1:${PORT}" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

BASE="http://127.0.0.1:${PORT}"
for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "server never became healthy" >&2; exit 1; fi
  sleep 0.1
done
echo "healthz ok"

# 20 candidates, alternating binary Gender, three base rankings.
REQ='{
  "method": "fair-kemeny",
  "profile": [
    [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19],
    [19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0],
    [1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14,17,16,19,18]
  ],
  "attributes": [{
    "name": "Gender",
    "values": ["M", "W"],
    "of": [0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1]
  }],
  "delta": 0.2
}'

FIRST="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "first response: $FIRST"
echo "$FIRST" | grep -q '"ranking":\[' || { echo "no ranking in response" >&2; exit 1; }
# A valid 20-candidate ranking has exactly 20 comma-separated entries.
COUNT="$(echo "$FIRST" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p' | tr ',' '\n' | wc -l)"
[ "$COUNT" = 20 ] || { echo "ranking has $COUNT entries, want 20" >&2; exit 1; }
echo "$FIRST" | grep -q '"cached":false' || { echo "first request claimed a cache hit" >&2; exit 1; }
echo "$FIRST" | grep -q '"partial":false' || { echo "first request was truncated" >&2; exit 1; }

SECOND="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "$SECOND" | grep -q '"cached":true' || { echo "second identical request missed the cache: $SECOND" >&2; exit 1; }

# The two responses must carry the same consensus ranking.
R1="$(echo "$FIRST" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
R2="$(echo "$SECOND" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
[ "$R1" = "$R2" ] || { echo "cache returned a different ranking" >&2; exit 1; }

# A different method over the SAME profile: a result-cache miss that must
# reuse the stored precedence matrix (builds_skipped > 0 in /statz).
SCHULZE_REQ="$(echo "$REQ" | sed 's/"fair-kemeny"/"schulze"/')"
THIRD="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$SCHULZE_REQ")"
echo "$THIRD" | grep -q '"cached":false' || { echo "different method claimed a result-cache hit" >&2; exit 1; }
echo "$THIRD" | grep -q '"ranking":\[' || { echo "no ranking in schulze response" >&2; exit 1; }

STATZ="$(curl -sf "$BASE/statz")"
echo "statz: $STATZ"
echo "$STATZ" | grep -q '"hits":1' || { echo "statz did not record the result-cache hit" >&2; exit 1; }
# Precedence tier: one build (first request), one skip (schulze reused it).
echo "$STATZ" | grep -q '"builds":1' || { echo "statz did not show exactly one matrix build" >&2; exit 1; }
echo "$STATZ" | grep -q '"builds_skipped":1' || { echo "statz did not show the skipped matrix build" >&2; exit 1; }

echo "serve smoke ok"
