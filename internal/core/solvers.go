package core

import (
	"context"
	"fmt"

	"manirank/internal/aggregate"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/ranking"
)

// Options configures the MFCR solvers.
type Options struct {
	// Kemeny tunes the Kemeny engines used by FairKemeny and the
	// fairness-unaware Kemeny baseline.
	Kemeny aggregate.KemenyOptions
}

// FairBorda solves MFCR with the Borda aggregator followed by Make-MR-Fair
// (paper Section III-B). It is the fastest MFCR method, O(n*|R| + n log n)
// plus the repair cost.
func FairBorda(p ranking.Profile, targets []Target) (ranking.Ranking, error) {
	c, err := aggregate.Borda(p)
	if err != nil {
		return nil, err
	}
	return MakeMRFair(c, targets)
}

// FairBordaW is FairBorda on a precomputed precedence matrix: the Borda
// totals derive from W's row sums (aggregate.BordaW), integer-identical to
// the profile computation, so the repaired ranking matches FairBorda's
// bitwise. It exists for callers that already hold W — the serving layer's
// shared precedence tier in particular.
func FairBordaW(w *ranking.Precedence, targets []Target) (ranking.Ranking, error) {
	return MakeMRFair(aggregate.BordaW(w), targets)
}

// FairCopeland solves MFCR with the Copeland pairwise-contest aggregator
// followed by Make-MR-Fair (paper Section III-B).
func FairCopeland(p ranking.Profile, targets []Target) (ranking.Ranking, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return MakeMRFair(aggregate.Copeland(w), targets)
}

// FairCopelandW is FairCopeland on a precomputed precedence matrix.
func FairCopelandW(w *ranking.Precedence, targets []Target) (ranking.Ranking, error) {
	return MakeMRFair(aggregate.Copeland(w), targets)
}

// FairSchulze solves MFCR with the Schulze strongest-path aggregator
// followed by Make-MR-Fair (paper Section III-B).
func FairSchulze(p ranking.Profile, targets []Target) (ranking.Ranking, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return MakeMRFair(aggregate.Schulze(w), targets)
}

// FairSchulzeW is FairSchulze on a precomputed precedence matrix.
func FairSchulzeW(w *ranking.Precedence, targets []Target) (ranking.Ranking, error) {
	return MakeMRFair(aggregate.Schulze(w), targets)
}

// FairKemeny solves MFCR by minimising pairwise disagreement subject to the
// MANI-Rank targets (paper Algorithm 1). For n at or below the exact
// threshold it runs the constrained branch-and-bound (this repo's CPLEX
// substitute) seeded with a Make-MR-Fair repaired incumbent and returns the
// provably optimal fair consensus; for larger n it runs constrained local
// search from the same incumbent (see DESIGN.md, Substitutions).
func FairKemeny(p ranking.Profile, targets []Target, opts Options) (ranking.Ranking, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return FairKemenyW(w, targets, opts)
}

// FairKemenyW is FairKemeny on a precomputed precedence matrix.
func FairKemenyW(w *ranking.Precedence, targets []Target, opts Options) (ranking.Ranking, error) {
	return FairKemenyWCtx(context.Background(), w, targets, opts)
}

// FairKemenyWCtx is FairKemenyW with cooperative cancellation threaded
// through every search stage (unconstrained Kemeny, constrained
// branch-and-bound, constrained local search). When ctx is done mid-solve the
// stages return their best-so-far rankings, so the result is still a feasible
// fair consensus — just potentially further from optimal. The Make-MR-Fair
// repair itself is polynomial and always runs to completion.
func FairKemenyWCtx(ctx context.Context, w *ranking.Precedence, targets []Target, opts Options) (ranking.Ranking, error) {
	kopts := opts.Kemeny.WithDefaults()
	cons := constraints(targets)
	// Warm start (Kemeny.Heuristic.Warm): when the previous consensus is
	// still feasible under the targets — parity depends only on the ranking
	// and the attributes, never on the profile, so a consensus solved before
	// a profile mutation remains feasible after it — it replaces the whole
	// unconstrained-Kemeny + Make-MR-Fair incumbent derivation. That skips
	// one of the two full search phases a cold Fair-Kemeny pays, which is
	// what makes session re-solves cheap. An infeasible or mis-sized warm
	// ranking falls back to the cold path.
	var incumbent ranking.Ranking
	if warm := kopts.Heuristic.Warm; len(warm) == w.N() && kemeny.Feasible(warm, cons) {
		incumbent = warm.Clone()
	} else {
		unfair := aggregate.KemenyCtx(ctx, w, kopts)
		var err error
		incumbent, err = MakeMRFair(unfair, targets)
		if err != nil {
			return nil, fmt.Errorf("core: FairKemeny could not build a feasible incumbent: %w", err)
		}
	}
	if w.N() <= kopts.ExactThreshold {
		res := kemeny.BranchAndBoundCtx(ctx, w, cons, incumbent, kopts.MaxNodes)
		if res.Ranking != nil {
			return res.Ranking, nil
		}
	}
	return kemeny.ConstrainedSearchCtx(ctx, w, cons, incumbent, kopts.Heuristic), nil
}

// PickFairest returns the base ranking minimising the maximum violation of
// the given targets (ties to the earlier ranking).
func PickFairest(p ranking.Profile, targets []Target) (ranking.Ranking, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	best, bestViol := -1, 0.0
	for i, r := range p {
		v := 0.0
		for _, tg := range targets {
			if s := fairness.ARP(r, tg.Attr); s > v {
				v = s
			}
		}
		if best < 0 || v < bestViol {
			best, bestViol = i, v
		}
	}
	return p[best].Clone(), nil
}

// CorrectFairestPerm is the paper's Correct-Fairest-Perm baseline (Section
// IV-B): pick the fairest base ranking, then repair it with Make-MR-Fair so
// it satisfies the targets.
func CorrectFairestPerm(p ranking.Profile, targets []Target) (ranking.Ranking, error) {
	r, err := PickFairest(p, targets)
	if err != nil {
		return nil, err
	}
	return MakeMRFair(r, targets)
}

// PriceOfFairness returns PoF = PDLoss(R, fair) - PDLoss(R, unfair), the
// preference-representation cost of imposing fairness (paper Eq. 13). It is
// >= 0 whenever unfair is the unconstrained consensus of the same method.
func PriceOfFairness(p ranking.Profile, fair, unfair ranking.Ranking) float64 {
	return ranking.PDLoss(p, fair) - ranking.PDLoss(p, unfair)
}

// PriceOfFairnessW computes PoF from a precedence matrix.
func PriceOfFairnessW(w *ranking.Precedence, fair, unfair ranking.Ranking) float64 {
	return w.PDLoss(fair) - w.PDLoss(unfair)
}
