package ranking

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadProfileCSV reads a profile of base rankings from CSV: one row per
// ranking, each row listing candidate ids from the top position to the
// bottom. Every row must be a permutation of 0..n-1 for a common n.
func ReadProfileCSV(r io.Reader) (Profile, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("ranking: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("ranking: empty profile CSV")
	}
	p := make(Profile, 0, len(records))
	for i, rec := range records {
		row := make(Ranking, len(rec))
		for j, field := range rec {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("ranking: row %d field %d: %w", i, j, err)
			}
			row[j] = v
		}
		p = append(p, row)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteProfileCSV writes a profile in the format ReadProfileCSV accepts.
func WriteProfileCSV(w io.Writer, p Profile) error {
	cw := csv.NewWriter(w)
	for _, r := range p {
		rec := make([]string, len(r))
		for i, c := range r {
			rec[i] = strconv.Itoa(c)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
