package manirank_test

import (
	"context"
	"fmt"

	"manirank"
)

// ExampleEngine_Solve demonstrates removing gender bias from a consensus
// over six candidates: every ranker puts all men (0-2) above all women
// (3-5); Fair-Kemeny with Delta = 0.4 pulls the consensus toward parity.
// Both methods run on one Engine, sharing its precedence matrix, and each
// Result carries its own fairness audit.
func ExampleEngine_Solve() {
	table, _ := manirank.NewTable(6,
		manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 0, 0, 1, 1, 1}),
	)
	profile := manirank.Profile{
		{0, 1, 2, 3, 4, 5},
		{1, 0, 2, 4, 3, 5},
	}
	engine, _ := manirank.NewEngine(profile, manirank.WithTable(table))
	ctx := context.Background()
	unfair, _ := engine.Solve(ctx, manirank.MethodKemeny, nil)
	fair, _ := engine.Solve(ctx, manirank.MethodFairKemeny, manirank.Targets(table, 0.4))
	fmt.Printf("unaware ARP %.2f, fair ARP %.2f\n",
		unfair.Report.ARPs[0], fair.Report.ARPs[0])
	// Output: unaware ARP 1.00, fair ARP 0.33
}

// ExampleParseMethod shows the registry behind every surface: method names
// parse case-insensitively into first-class Method values, and the
// canonical set is enumerable.
func ExampleParseMethod() {
	m, _ := manirank.ParseMethod("Fair-Borda")
	fmt.Println(m, m.IsFair())
	fmt.Println(manirank.MethodNames())
	// Output:
	// fair-borda true
	// [borda copeland schulze kemeny fair-borda fair-copeland fair-schulze fair-kemeny]
}

// ExampleAudit shows a full fairness audit of a single ranking.
func ExampleAudit() {
	table, _ := manirank.NewTable(4,
		manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 1, 0, 1}),
	)
	r := manirank.Ranking{0, 2, 1, 3} // both men above both women
	rep := manirank.Audit(r, table)
	fmt.Printf("ARP Gender = %.2f\n", rep.ARPs[0])
	fmt.Printf("satisfies Delta=0.5: %v\n", rep.Satisfies(0.5))
	// Output:
	// ARP Gender = 1.00
	// satisfies Delta=0.5: false
}

// ExampleKendallTau counts pairwise disagreements between two rankings.
func ExampleKendallTau() {
	a := manirank.Ranking{0, 1, 2, 3}
	b := manirank.Ranking{1, 0, 3, 2}
	fmt.Println(manirank.KendallTau(a, b))
	// Output: 2
}

// ExampleMakeMRFair repairs an existing ranking in place of re-aggregating.
func ExampleMakeMRFair() {
	table, _ := manirank.NewTable(4,
		manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 0, 1, 1}),
	)
	biased := manirank.Ranking{0, 1, 2, 3}
	fair, _ := manirank.MakeMRFair(biased, manirank.Targets(table, 0.5))
	fmt.Printf("ARP %.2f -> %.2f\n",
		manirank.ARP(biased, table.Attr("Gender")),
		manirank.ARP(fair, table.Attr("Gender")))
	// Output: ARP 1.00 -> 0.50
}
