package ranking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// equalMatrices compares two precedence matrices cell by cell.
func equalMatrices(t *testing.T, a, b *Precedence) bool {
	t.Helper()
	if a.N() != b.N() || a.Rankings() != b.Rankings() {
		return false
	}
	for x := 0; x < a.N(); x++ {
		for y := 0; y < a.N(); y++ {
			if a.At(x, y) != b.At(x, y) {
				return false
			}
		}
	}
	return true
}

func TestParallelPrecedenceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n, m := 2+rng.Intn(40), 1+rng.Intn(60)
		p := randomProfile(n, m, rng)
		serial, err := NewPrecedenceWorkers(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 4, 7, m + 3} {
			par, err := NewPrecedenceWorkers(p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !equalMatrices(t, serial, par) {
				t.Fatalf("trial %d: workers=%d matrix differs from serial (n=%d m=%d)", trial, workers, n, m)
			}
		}
	}
}

func TestParallelWeightedPrecedenceMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		n, m := 2+rng.Intn(30), 1+rng.Intn(50)
		p := randomProfile(n, m, rng)
		weights := make([]int, m)
		for i := range weights {
			weights[i] = rng.Intn(5) // zero weights exercise the skip path
		}
		serial, err := NewWeightedPrecedenceWorkers(p, weights, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, m + 1} {
			par, err := NewWeightedPrecedenceWorkers(p, weights, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !equalMatrices(t, serial, par) {
				t.Fatalf("trial %d: workers=%d weighted matrix differs (n=%d m=%d)", trial, workers, n, m)
			}
		}
	}
}

// TestPrecedenceMatchesPositionCompare pins the upper-triangle kernel against
// the definitional O(n^2 |R|) position-compare construction.
func TestPrecedenceMatchesPositionCompare(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(12), 1+rng.Intn(8)
		p := randomProfile(n, m, rng)
		w := MustPrecedence(p)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := 0
				for _, r := range p {
					pos := r.Positions()
					if a != b && pos[b] < pos[a] {
						want++
					}
				}
				if w.At(a, b) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacentSwapDeltaAgreesWithFullCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(15), 1+rng.Intn(8)
		w := MustPrecedence(randomProfile(n, m, rng))
		r := Random(n, rng)
		cost := w.KemenyCost(r)
		for step := 0; step < 30; step++ {
			i := rng.Intn(n - 1)
			cost += w.AdjacentSwapDelta(r, i)
			r.Swap(i, i+1)
			if cost != w.KemenyCost(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveDeltaAgreesWithFullCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(15), 1+rng.Intn(8)
		w := MustPrecedence(randomProfile(n, m, rng))
		r := Random(n, rng)
		cost := w.KemenyCost(r)
		for step := 0; step < 30; step++ {
			from, to := rng.Intn(n), rng.Intn(n)
			if from != to {
				cost += w.MoveDelta(r, from, to)
			}
			r.MoveTo(from, to)
			if cost != w.KemenyCost(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSum(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, m := 12, 7
	w := MustPrecedence(randomProfile(n, m, rng))
	for a := 0; a < n; a++ {
		want := 0
		for b := 0; b < n; b++ {
			want += w.At(a, b)
		}
		if got := w.RowSum(a); got != want {
			t.Fatalf("RowSum(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestWeightedPrecedenceRejectsInt32Overflow(t *testing.T) {
	p := Profile{Ranking{0, 1}, Ranking{1, 0}}
	if _, err := NewWeightedPrecedence(p, []int{1 << 31, 1}); err == nil {
		t.Error("per-ranking weight above MaxInt32 accepted")
	}
	if _, err := NewWeightedPrecedence(p, []int{1 << 30, 1<<30 - 1}); err != nil {
		t.Errorf("weights summing to MaxInt32 rejected: %v", err)
	}
	if _, err := NewWeightedPrecedence(p, []int{1<<31 - 1, 2}); err == nil {
		t.Error("total weight above MaxInt32 accepted")
	}
}
