package ranking

import (
	"math/rand"
	"testing"
)

// requireSameMatrix pins got bitwise against want: same n, same (weighted)
// ranking count, identical cells.
func requireSameMatrix(t *testing.T, got, want *Precedence) {
	t.Helper()
	if got.N() != want.N() || got.Rankings() != want.Rankings() {
		t.Fatalf("shape mismatch: got (n=%d, m=%d), want (n=%d, m=%d)",
			got.N(), got.Rankings(), want.N(), want.Rankings())
	}
	for a := 0; a < want.N(); a++ {
		for b := 0; b < want.N(); b++ {
			if got.At(a, b) != want.At(a, b) {
				t.Fatalf("W[%d][%d] = %d, want %d", a, b, got.At(a, b), want.At(a, b))
			}
		}
	}
}

// TestAddRankingParity: patching rankings into a matrix one by one lands
// bitwise on the from-scratch construction at every step.
func TestAddRankingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 9, 25} {
		p := Profile{Random(n, rng)}
		w := MustPrecedence(p)
		for step := 0; step < 12; step++ {
			r := Random(n, rng)
			if err := w.AddRanking(r); err != nil {
				t.Fatalf("n=%d step %d: AddRanking: %v", n, step, err)
			}
			p = append(p, r)
			requireSameMatrix(t, w, MustPrecedence(p))
		}
	}
}

// TestRemoveRankingParity: removing rankings (in shuffled order) tracks the
// from-scratch matrix of the remaining profile at every step, down to empty.
func TestRemoveRankingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	p := make(Profile, 10)
	for i := range p {
		p[i] = Random(n, rng)
	}
	w := MustPrecedence(p)
	for len(p) > 0 {
		i := rng.Intn(len(p))
		if err := w.RemoveRanking(p[i]); err != nil {
			t.Fatalf("RemoveRanking: %v", err)
		}
		p = append(p[:i], p[i+1:]...)
		if len(p) > 0 {
			requireSameMatrix(t, w, MustPrecedence(p))
		}
	}
	// Down to the empty profile every cell must have returned to zero
	// (NewPrecedence rejects empty profiles, so pin it directly).
	if got := w.Rankings(); got != 0 {
		t.Fatalf("emptied matrix reports %d rankings", got)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if w.At(a, b) != 0 {
				t.Fatalf("emptied matrix cell W[%d][%d] = %d, want 0", a, b, w.At(a, b))
			}
		}
	}
	if err := w.RemoveRanking(Random(n, rng)); err == nil {
		t.Fatal("RemoveRanking on an empty matrix did not error")
	}
}

// TestUpdateRankingParity: remove-then-add (the update composition) over a
// long random op sequence stays bitwise identical to rebuilding.
func TestUpdateRankingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 6
	p := make(Profile, 5)
	for i := range p {
		p[i] = Random(n, rng)
	}
	w := MustPrecedence(p)
	for step := 0; step < 40; step++ {
		i := rng.Intn(len(p))
		next := Random(n, rng)
		if err := w.RemoveRanking(p[i]); err != nil {
			t.Fatalf("step %d: remove: %v", step, err)
		}
		if err := w.AddRanking(next); err != nil {
			t.Fatalf("step %d: add: %v", step, err)
		}
		p[i] = next
		requireSameMatrix(t, w, MustPrecedence(p))
	}
}

// TestPrecedenceMutationValidation: malformed patches are rejected without
// touching the matrix.
func TestPrecedenceMutationValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := Profile{Random(5, rng), Random(5, rng)}
	w := MustPrecedence(p)
	want := MustPrecedence(p)
	if err := w.AddRanking(Ranking{0, 1, 2}); err == nil {
		t.Fatal("AddRanking accepted a wrong-length ranking")
	}
	if err := w.AddRanking(Ranking{0, 1, 2, 3, 3}); err == nil {
		t.Fatal("AddRanking accepted a non-permutation")
	}
	if err := w.RemoveRanking(Ranking{0, 0, 1, 2, 3}); err == nil {
		t.Fatal("RemoveRanking accepted a non-permutation")
	}
	requireSameMatrix(t, w, want)
}

// TestPrecedenceClone: clones are independent — mutating one never leaks
// into the other.
func TestPrecedenceClone(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := Profile{Random(7, rng), Random(7, rng)}
	w := MustPrecedence(p)
	c := w.Clone()
	requireSameMatrix(t, c, w)
	if err := c.AddRanking(Random(7, rng)); err != nil {
		t.Fatalf("AddRanking on clone: %v", err)
	}
	requireSameMatrix(t, w, MustPrecedence(p))
	if c.Rankings() != 3 || w.Rankings() != 2 {
		t.Fatalf("clone m=%d, original m=%d; want 3 and 2", c.Rankings(), w.Rankings())
	}
}
