package experiments

import (
	"math"
	"os"
	"testing"

	"manirank"
	"manirank/internal/core"
)

// This file transcribes the paper-reported Figure 4 PD-loss and Figure 5
// Price-of-Fairness series (the remaining ROADMAP paper-value-comparison
// item after Table I). The figures print at coarse axis resolution, so the
// transcription carries two decimals and the comparison reuses Table I's
// tolerance: the block-construction dataset generator and the CPLEX→
// branch-and-bound/local-search substitution can only approximate the
// paper's exact numbers (see DESIGN.md, Substitutions).
//
// Both tests regenerate the exact experiment cells — same cell RNG labels
// and coordinates as the Fig4/Fig5 runners, seed 1, paper scale (150
// rankers), solver options pinned by Config.kemenyOptions — and route
// through the Engine registry like the runners do.

// paperFig4PDLoss transcribes Figure 4's Low-Fair PD-loss series at
// Delta = 0.1 for the methods whose curves are separable in the figure:
// the proposed Fair-Kemeny (lowest fair curve), Fair-Borda (the repair
// ceiling among the polynomial fair methods), and the fairness-unaware
// Kemeny reference near zero.
var paperFig4PDLoss = []struct {
	method manirank.Method
	name   string
	byTheta
}{
	{manirank.MethodFairKemeny, "Fair-Kemeny", byTheta{0.41, 0.40, 0.39, 0.38}},
	{manirank.MethodFairBorda, "Fair-Borda", byTheta{0.43, 0.43, 0.42, 0.42}},
	{manirank.MethodKemeny, "Kemeny", byTheta{0.09, 0.04, 0.03, 0.02}},
}

// byTheta holds one reported value per entry of the thetas sweep
// (0.2, 0.4, 0.6, 0.8).
type byTheta [4]float64

// paperFig5PoF transcribes Figure 5 Panel A: Fair-Kemeny's Price of
// Fairness against theta on the three Table I datasets at Delta = 0.1.
var paperFig5PoF = []struct {
	dataset string
	byTheta
}{
	{"Low-Fair", byTheta{0.32, 0.35, 0.37, 0.37}},
	{"Medium-Fair", byTheta{0.25, 0.27, 0.28, 0.29}},
	{"High-Fair", byTheta{0.15, 0.17, 0.18, 0.18}},
}

// skipOnExpectedDrift honours the golden-drift escape hatch shared with
// TestPaperReportedTableIValues.
func skipOnExpectedDrift(t *testing.T) {
	t.Helper()
	if os.Getenv("MANIRANK_EXPECT_DRIFT") != "" {
		t.Skip("MANIRANK_EXPECT_DRIFT set: regeneration drift expected, paper-value comparison suspended")
	}
}

// TestPaperReportedFig4PDLossSeries anchors the regenerated Figure 4
// PD-loss series to the paper's reported curves.
func TestPaperReportedFig4PDLossSeries(t *testing.T) {
	skipOnExpectedDrift(t)
	cfg := Config{Seed: 1}
	tab, modal, err := tableIModal("Low-Fair")
	if err != nil {
		t.Fatal(err)
	}
	for ti, theta := range thetas {
		p := sampleProfile(modal, theta, 150, cellRNG(cfg.Seed, "fig4", ti))
		ctx, err := newRunCtx(p, tab, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range paperFig4PDLoss {
			res, err := ctx.solve(cfg, want.method, ctx.targets)
			if err != nil {
				t.Fatalf("theta=%.1f %s: %v", theta, want.name, err)
			}
			if diff := math.Abs(res.PDLoss - want.byTheta[ti]); diff > paperTolerance {
				t.Errorf("%s theta=%.1f PD loss = %.3f, paper reports %.2f (tolerance %.2f)",
					want.name, theta, res.PDLoss, want.byTheta[ti], paperTolerance)
			}
		}
	}
}

// TestPaperReportedFig5PoFSeries anchors the regenerated Figure 5 Panel A
// Price-of-Fairness series to the paper's reported curves.
func TestPaperReportedFig5PoFSeries(t *testing.T) {
	skipOnExpectedDrift(t)
	cfg := Config{Seed: 1}
	specs, tabs, modals, err := tableIDatasets()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range paperFig5PoF {
		di := -1
		for i, spec := range specs {
			if spec.Name == want.dataset {
				di = i
				break
			}
		}
		if di < 0 {
			t.Fatalf("unknown Table I dataset %q", want.dataset)
		}
		for ti, theta := range thetas {
			p := sampleProfile(modals[di], theta, 150, cellRNG(cfg.Seed, "fig5a", di, ti))
			ctx, err := newRunCtx(p, tabs[di], 0.1)
			if err != nil {
				t.Fatal(err)
			}
			unfair, err := ctx.solve(cfg, manirank.MethodKemeny, nil)
			if err != nil {
				t.Fatal(err)
			}
			fair, err := ctx.solve(cfg, manirank.MethodFairKemeny, ctx.targets)
			if err != nil {
				t.Fatal(err)
			}
			pof := core.PriceOfFairnessW(ctx.w, fair.Ranking, unfair.Ranking)
			if diff := math.Abs(pof - want.byTheta[ti]); diff > paperTolerance {
				t.Errorf("%s theta=%.1f PoF = %.4f, paper reports %.2f (tolerance %.2f)",
					want.dataset, theta, pof, want.byTheta[ti], paperTolerance)
			}
		}
	}
}
