package core

import (
	"fmt"
	"math/rand"
	"testing"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

// randomTable builds an n-candidate table whose attributes have the given
// domain sizes, with group memberships drawn from rng.
func randomTable(t *testing.T, n int, domains []int, rng *rand.Rand) *attribute.Table {
	t.Helper()
	attrs := make([]*attribute.Attribute, len(domains))
	for ai, g := range domains {
		values := make([]string, g)
		for v := range values {
			values[v] = fmt.Sprintf("a%d_v%d", ai, v)
		}
		of := make([]int, n)
		// Guarantee every value occurs so DomainSize matches the value list.
		for c := range of {
			if c < g {
				of[c] = c
			} else {
				of[c] = rng.Intn(g)
			}
		}
		a, err := attribute.NewAttribute(fmt.Sprintf("attr%d", ai), values, of)
		if err != nil {
			t.Fatal(err)
		}
		attrs[ai] = a
	}
	tab, err := attribute.NewTable(n, attrs...)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// recomputeWins rebuilds the mixed-pairs-won counter of every group of a
// from scratch — the same quantity fairness.GroupFPRs normalises — so the
// engine's incremental ints can be compared exactly, not just via floats.
func recomputeWins(r ranking.Ranking, a *attribute.Attribute) []int {
	n := len(r)
	sizes := a.GroupSizes()
	wins := make([]int, a.DomainSize())
	seen := make([]int, a.DomainSize())
	for i, c := range r {
		v := a.Of[c]
		below := n - 1 - i
		sameBelow := sizes[v] - seen[v] - 1
		wins[v] += below - sameBelow
		seen[v]++
	}
	return wins
}

// TestParityEngineMatchesFullRecomputeUnderSwaps is the ROADMAP'd property
// test of the Make-MR-Fair engine: across long random swap sequences, the
// engine's incremental wins / FPR / spread state must match a full
// fairness.GroupFPRs recompute after every swap.
func TestParityEngineMatchesFullRecomputeUnderSwaps(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		domains []int
		swaps   int
	}{
		{"binary_small", 12, []int{2}, 300},
		{"gender_race", 30, []int{2, 3}, 500},
		{"paper_shape", 45, []int{3, 5}, 500},
		{"three_attrs", 24, []int{2, 2, 4}, 400},
		{"wide_domain", 40, []int{8}, 400},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(900 + ci)))
			tab := randomTable(t, tc.n, tc.domains, rng)
			targets := Targets(tab, 0.1) // every attribute + the intersection
			start := ranking.Random(tc.n, rng)
			eng := newParityEngine(start, targets)
			for s := 0; s < tc.swaps; s++ {
				i, j := rng.Intn(tc.n), rng.Intn(tc.n)
				if i == j {
					continue
				}
				eng.swap(i, j)
				if err := eng.r.Validate(); err != nil {
					t.Fatalf("swap %d (%d,%d): engine ranking corrupt: %v", s, i, j, err)
				}
				for k, tg := range targets {
					wantWins := recomputeWins(eng.r, tg.Attr)
					fprs := fairness.GroupFPRs(eng.r, tg.Attr)
					for v := range wantWins {
						if eng.wins[k][v] != wantWins[v] {
							t.Fatalf("swap %d (%d,%d) target %d group %d: incremental wins %d, recompute %d",
								s, i, j, k, v, eng.wins[k][v], wantWins[v])
						}
						if got, want := eng.fpr(k, v), fprs[v]; got != want {
							t.Fatalf("swap %d target %d group %d: incremental FPR %v, GroupFPRs %v",
								s, k, v, got, want)
						}
					}
					if got, want := eng.spread(k), fairness.ARP(eng.r, tg.Attr); got != want {
						t.Fatalf("swap %d target %d: incremental spread %v, ARP recompute %v", s, k, got, want)
					}
				}
				// Position index stays the exact inverse of the ranking.
				for p, c := range eng.r {
					if eng.pos[c] != p {
						t.Fatalf("swap %d: pos[%d]=%d, ranking has it at %d", s, c, eng.pos[c], p)
					}
				}
			}
		})
	}
}

// TestParityEnginePredictionsMatchApplication cross-checks the engine's
// swap previews (potentialAfter / bandAfter) against actually performing the
// swap, over random positions — the repair loop trusts these previews to
// pick swaps without mutating the ranking.
func TestParityEnginePredictionsMatchApplication(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tab := randomTable(t, 26, []int{2, 3}, rng)
	targets := Targets(tab, 0.15)
	eng := newParityEngine(ranking.Random(26, rng), targets)
	for s := 0; s < 300; s++ {
		i, j := rng.Intn(26), rng.Intn(26)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		wantP := eng.potentialAfter(i, j)
		wantB := eng.bandAfter(i, j)
		eng.swap(i, j)
		if got := eng.potential(); got != wantP {
			t.Fatalf("swap %d (%d,%d): potentialAfter predicted %v, actual %v", s, i, j, wantP, got)
		}
		if got := eng.band(); got != wantB {
			t.Fatalf("swap %d (%d,%d): bandAfter predicted %v, actual %v", s, i, j, wantB, got)
		}
	}
}
