package manirank

import (
	"context"
	"fmt"

	"manirank/internal/ranking"
	"manirank/internal/service/cache"
)

// engineCacheVersion namespaces EngineCache's profile digests. Bump it if
// the digest serialisation or the precedence construction's observable
// output ever changes.
const engineCacheVersion = "manirank/enginecache/v1"

// EngineCacheStats is a point-in-time snapshot of an EngineCache's counters.
type EngineCacheStats struct {
	// Hits counts Engine calls served a matrix from memory.
	Hits uint64
	// Misses counts Engine calls that found no matrix in memory.
	Misses uint64
	// Coalesced counts Engine calls that joined a concurrent caller's build
	// of the same profile (a subset of Misses).
	Coalesced uint64
	// Builds counts O(n²·m) precedence constructions actually paid.
	Builds uint64
	// BuildsSkipped counts Engine calls that avoided a construction:
	// Hits + Coalesced + DiskHits.
	BuildsSkipped uint64
	// Evictions counts matrices dropped under cell-budget pressure.
	Evictions uint64
	// Rejected counts matrices too large for the whole budget.
	Rejected uint64
	// DiskHits counts matrices restored from the attached directory (a
	// subset of Misses; zero without AttachDir).
	DiskHits uint64
	// DiskPuts counts successful writes to the attached directory.
	DiskPuts uint64
	// DiskErrors counts persistent-store failures absorbed as misses.
	DiskErrors uint64
	// Entries is the number of matrices currently held in memory.
	Entries int
	// CellsUsed is the summed n² footprint of the held matrices.
	CellsUsed int64
	// CellsBudget is the configured cell capacity.
	CellsBudget int64
}

// EngineCache is the library-level form of manirankd's precedence-matrix
// tier: a profile-digest-keyed cache of precedence matrices shared by the
// Engines it constructs. A batch pipeline that evaluates several methods, or
// re-sees the same profiles across runs, pays each profile's O(n²·m) matrix
// construction once — concurrent first sights coalesce onto a single build —
// and with AttachDir the matrices persist across process restarts.
//
// An EngineCache is safe for concurrent use. The Engines it returns share
// cached matrices; streaming mutations (Engine.AddRanking and friends)
// copy-on-write, so a mutated Engine forks its matrix and never corrupts
// the cache-resident one. Put re-admits a mutated Engine's state under its
// current profile digest, making the incremental matrix reusable.
type EngineCache struct {
	mc    *cache.MatrixCache
	store *cache.FileStore
}

// NewEngineCache returns an engine cache budgeted to hold at most cells
// int32 matrix cells in memory — a profile over n candidates costs n²
// (≈ 4n² bytes). cells <= 0 keeps no matrices in memory but still coalesces
// concurrent builds; with AttachDir it still cannot persist (there is
// nothing admitted to write through), so give persistent caches a budget.
func NewEngineCache(cells int64) *EngineCache {
	return &EngineCache{mc: cache.NewMatrixCache(cells)}
}

// AttachDir roots a persistent tier at dir: every built matrix is written
// through (atomic temp-file + rename, CRC-framed), and a memory miss
// restores from disk instead of rebuilding. Entries are filed under a
// namespace versioned by engineVersion ("" means "1"): bump it when solver
// or construction behaviour changes and every previously persisted matrix
// becomes unreachable; stale version trees under dir are pruned on attach,
// so dir must be dedicated to this cache. Attach before handing the cache
// to concurrent callers.
func (c *EngineCache) AttachDir(dir, engineVersion string) error {
	if engineVersion == "" {
		engineVersion = "1"
	}
	st, err := cache.OpenFileStore(dir, "enginecache_v1@engine-"+engineVersion+"/matrices")
	if err != nil {
		return err
	}
	c.store = st
	c.mc.AttachStore(st, cache.Codec{
		Encode: func(v any) ([]byte, error) { return v.(*Precedence).MarshalBinary() },
		Decode: func(data []byte) (any, error) { return ranking.UnmarshalPrecedence(data) },
	}, func(v any) int64 { return v.(*Precedence).Cells() })
	return nil
}

// Engine returns an Engine over p whose precedence matrix comes through the
// cache: a content-identical profile seen before (this process or, with
// AttachDir, a previous one) reuses the stored matrix and skips the
// O(n²·m) construction entirely. ctx bounds only the wait on a concurrent
// caller's in-flight build of the same profile; a build this caller leads
// runs to completion. Options apply as in NewEngine — note
// WithPrecedenceWorkers shapes only an actual build, never a cached reuse,
// and the matrix is bitwise identical either way.
func (c *EngineCache) Engine(ctx context.Context, p Profile, opts ...EngineOption) (*Engine, error) {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	key := p.Digest(engineCacheVersion)
	v, _, _, err := c.mc.Do(ctx, key, func() (any, int64, error) {
		var (
			w    *Precedence
			werr error
		)
		if cfg.hasWorkers {
			w, werr = ranking.NewPrecedenceWorkers(p, cfg.workers)
		} else {
			w, werr = ranking.NewPrecedence(p)
		}
		if werr != nil {
			return nil, 0, werr
		}
		return w, w.Cells(), nil
	})
	if err != nil {
		return nil, err
	}
	w := v.(*Precedence)
	if cfg.tab != nil && cfg.tab.N() != w.N() {
		return nil, fmt.Errorf("manirank: table covers %d candidates, profile ranks %d", cfg.tab.N(), w.N())
	}
	// The profile rides along (unlike NewEngineW), so profile-consuming
	// methods stay solvable on a cache hit.
	return &Engine{p: p, w: w, tab: cfg.tab}, nil
}

// Put admits e's current precedence matrix under the digest of e's CURRENT
// profile — the post-mutation state, never the profile the engine was
// constructed over. That keying is what makes streaming mutations safe to
// persist: an engine that drifted from its construction profile files its
// matrix under the drifted profile's digest, so Engine() over the original
// profile still restores the original matrix, while Engine() over the
// mutated profile skips the rebuild (this process or, with AttachDir, the
// next one). The admitted matrix is a snapshot; further mutations of e do
// not affect it. Engines without a profile (NewEngineW) are ignored.
func (c *EngineCache) Put(ctx context.Context, e *Engine) {
	// One consistent (profile, matrix) pair: a mutation landing between two
	// separate snapshots would file the matrix under the wrong digest.
	e.mu.RLock()
	if e.p == nil {
		e.mu.RUnlock()
		return
	}
	key := e.p.Digest(engineCacheVersion)
	w := e.w.Clone()
	e.mu.RUnlock()
	c.mc.Put(ctx, key, w, w.Cells())
}

// Flush re-persists every matrix held in memory to the attached directory
// and returns how many it wrote; without AttachDir it is a no-op. Call it
// before exiting to guarantee the next process starts warm even if a
// write-through failed.
func (c *EngineCache) Flush() int { return c.mc.Flush() }

// Close flushes (when a directory is attached) and releases the persistent
// tier. The cache remains usable in memory-only mode afterwards.
func (c *EngineCache) Close() error {
	if c.store == nil {
		return nil
	}
	c.mc.Flush()
	return c.store.Close()
}

// Stats returns a snapshot of the cache's counters.
func (c *EngineCache) Stats() EngineCacheStats {
	s := c.mc.Stats()
	return EngineCacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Coalesced:     s.Coalesced,
		Builds:        s.Builds,
		BuildsSkipped: s.BuildsSkipped,
		Evictions:     s.Evictions,
		Rejected:      s.Rejected,
		DiskHits:      s.DiskHits,
		DiskPuts:      s.DiskPuts,
		DiskErrors:    s.DiskErrors,
		Entries:       s.Entries,
		CellsUsed:     s.CostUsed,
		CellsBudget:   s.CostBudget,
	}
}
