// Package ranking provides the core ranking substrate used throughout the
// MANI-Rank reproduction: strict total-order rankings over candidates
// identified by dense integer ids, Kendall tau distance, precedence matrices
// summarising a profile of base rankings, Kemeny cost, and the paper's
// Pairwise Disagreement (PD) loss.
//
// A Ranking is a permutation of the candidate ids 0..n-1 where index 0 holds
// the top (best) candidate. All algorithms in this module operate on this
// representation; helper methods convert between rank order and position
// lookup tables.
package ranking

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Ranking is a strict total order over candidates 0..n-1.
// Ranking[0] is the top (most preferred) candidate and Ranking[n-1] the
// bottom. It corresponds to the paper's pi = [x1 < x2 < ... < xn].
type Ranking []int

// ErrNotPermutation reports that a slice does not hold each candidate id
// 0..n-1 exactly once.
var ErrNotPermutation = errors.New("ranking: not a permutation of 0..n-1")

// New returns the identity ranking [0, 1, ..., n-1].
func New(n int) Ranking {
	r := make(Ranking, n)
	for i := range r {
		r[i] = i
	}
	return r
}

// FromSlice validates s and returns it as a Ranking. The slice is used
// directly (not copied).
func FromSlice(s []int) (Ranking, error) {
	r := Ranking(s)
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Random returns a uniformly random ranking over n candidates drawn from rng.
func Random(n int, rng *rand.Rand) Ranking {
	r := New(n)
	rng.Shuffle(n, func(i, j int) { r[i], r[j] = r[j], r[i] })
	return r
}

// Reverse returns a new ranking with the order of r reversed.
func (r Ranking) Reverse() Ranking {
	out := make(Ranking, len(r))
	for i, c := range r {
		out[len(r)-1-i] = c
	}
	return out
}

// Clone returns a copy of r.
func (r Ranking) Clone() Ranking {
	out := make(Ranking, len(r))
	copy(out, r)
	return out
}

// N returns the number of candidates ranked.
func (r Ranking) N() int { return len(r) }

// Validate returns ErrNotPermutation unless r contains every candidate id
// 0..len(r)-1 exactly once.
func (r Ranking) Validate() error {
	seen := make([]bool, len(r))
	for _, c := range r {
		if c < 0 || c >= len(r) || seen[c] {
			return fmt.Errorf("%w (len %d, offending id %d)", ErrNotPermutation, len(r), c)
		}
		seen[c] = true
	}
	return nil
}

// IsValid reports whether r is a permutation of 0..n-1.
func (r Ranking) IsValid() bool { return r.Validate() == nil }

// Positions returns the inverse permutation: Positions()[c] is the 0-based
// rank position of candidate c (0 = top).
func (r Ranking) Positions() []int {
	pos := make([]int, len(r))
	for i, c := range r {
		pos[c] = i
	}
	return pos
}

// Prefers reports whether candidate a is ranked above (better than) b in r.
// It is O(n); callers in hot loops should use Positions once instead.
func (r Ranking) Prefers(a, b int) bool {
	pos := r.Positions()
	return pos[a] < pos[b]
}

// Swap exchanges the candidates at rank positions i and j in place.
func (r Ranking) Swap(i, j int) { r[i], r[j] = r[j], r[i] }

// MoveTo removes the candidate at position from and reinserts it at position
// to, shifting the candidates in between. It mutates r in place.
func (r Ranking) MoveTo(from, to int) {
	if from == to {
		return
	}
	c := r[from]
	if from < to {
		copy(r[from:to], r[from+1:to+1])
	} else {
		copy(r[to+1:from+1], r[to:from])
	}
	r[to] = c
}

// Equal reports whether r and s rank the same candidates in the same order.
func (r Ranking) Equal(s Ranking) bool {
	if len(r) != len(s) {
		return false
	}
	for i := range r {
		if r[i] != s[i] {
			return false
		}
	}
	return true
}

// String renders the ranking as "3 > 1 > 0 > 2".
func (r Ranking) String() string {
	var b strings.Builder
	for i, c := range r {
		if i > 0 {
			b.WriteString(" > ")
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// TotalPairs returns omega(X) = n(n-1)/2, the number of candidate pairs in a
// ranking over n candidates (paper Eq. 2).
func TotalPairs(n int) int { return n * (n - 1) / 2 }

// SortByScoreDesc returns a ranking of n candidates by descending score,
// breaking ties by ascending candidate id so results are deterministic.
func SortByScoreDesc(scores []float64) Ranking {
	r := New(len(scores))
	sort.SliceStable(r, func(i, j int) bool {
		if scores[r[i]] != scores[r[j]] {
			return scores[r[i]] > scores[r[j]]
		}
		return r[i] < r[j]
	})
	return r
}

// SortByPointsDesc is SortByScoreDesc for integer scores (e.g. Borda points,
// Copeland wins), again with deterministic id tie-breaking.
func SortByPointsDesc(points []int) Ranking {
	r := New(len(points))
	sort.SliceStable(r, func(i, j int) bool {
		if points[r[i]] != points[r[j]] {
			return points[r[i]] > points[r[j]]
		}
		return r[i] < r[j]
	})
	return r
}

// Profile is a set of base rankings over the same candidate universe
// (the paper's R). All rankings must have the same length.
type Profile []Ranking

// Validate checks that every ranking in p is a valid permutation and that all
// rankings cover the same number of candidates.
func (p Profile) Validate() error {
	if len(p) == 0 {
		return errors.New("ranking: empty profile")
	}
	n := len(p[0])
	for i, r := range p {
		if len(r) != n {
			return fmt.Errorf("ranking: profile ranking %d has %d candidates, want %d", i, len(r), n)
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("ranking: profile ranking %d: %w", i, err)
		}
	}
	return nil
}

// N returns the number of candidates in the profile (0 for an empty profile).
func (p Profile) N() int {
	if len(p) == 0 {
		return 0
	}
	return len(p[0])
}

// Clone deep-copies the profile.
func (p Profile) Clone() Profile {
	out := make(Profile, len(p))
	for i, r := range p {
		out[i] = r.Clone()
	}
	return out
}
