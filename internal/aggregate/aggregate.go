// Package aggregate implements the fairness-unaware consensus ranking
// methods the paper builds on or compares against (Sections III and IV):
// Borda, Copeland, Schulze, exact/heuristic Kemeny, and the fairness-aware
// baselines Pick-A-Perm / Pick-Fairest-Perm / Kemeny-Weighted.
//
// All methods are deterministic: score ties break by ascending candidate
// id. The pairwise methods consume a precomputed ranking.Precedence, and
// Borda has a matrix twin (BordaW, integer-identical point totals from row
// sums), so every method composes with the serving layer's shared
// precedence-matrix tier; KemenyCtx adds cooperative cancellation with a
// best-so-far result for deadline-bounded serving.
package aggregate

import (
	"context"
	"errors"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/ranking"
)

// Borda returns the Borda consensus: candidates ordered by descending total
// points, where a candidate earns one point per candidate ranked below it in
// each base ranking (paper Section III-B). O(n * |R|).
func Borda(p ranking.Profile) (ranking.Ranking, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	points := make([]int, n)
	for _, r := range p {
		for i, c := range r {
			points[c] += n - 1 - i
		}
	}
	return ranking.SortByPointsDesc(points), nil
}

// BordaW returns the Borda consensus from a precomputed precedence matrix:
// candidate c's Borda total equals |R|·(n-1) minus its row sum (the row sum
// counts, over all rankings, how many candidates sit above c — exactly the
// points c forfeits). The derived point totals are integer-identical to
// Borda's, so the ranking — including tie-breaks — is too; the serving
// layer's profile-keyed matrix tier relies on that equivalence to route
// every method through one shared W.
func BordaW(w *ranking.Precedence) ranking.Ranking {
	n := w.N()
	points := make([]int, n)
	for c := 0; c < n; c++ {
		points[c] = w.Rankings()*(n-1) - w.RowSum(c)
	}
	return ranking.SortByPointsDesc(points)
}

// Copeland returns the Copeland consensus: candidates ordered by descending
// number of pairwise contests won, where a tie counts as a win for both
// candidates (paper Section III-B).
func Copeland(w *ranking.Precedence) ranking.Ranking {
	n := w.N()
	wins := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			// Candidate a wins the contest against b when at least as many
			// rankings place a above b as b above a. W[a][b] counts rankings
			// with b above a, so a's support is m - W[a][b] = W[b][a].
			if w.At(b, a) >= w.At(a, b) {
				wins[a]++
			}
		}
	}
	return ranking.SortByPointsDesc(wins)
}

// Schulze returns the Schulze consensus: strongest-path pairwise comparison
// computed with the Floyd-Warshall widest-path recurrence, candidates ordered
// by their number of strongest-path wins (paper Section III-B). O(n^3) worst
// case, with a row-wise early exit (see schulzeStrongestPaths) that skips
// every relaxation min(p[a][k], p[k][b]) <= p[a][b] can already rule out.
func Schulze(w *ranking.Precedence) ranking.Ranking {
	return schulzeRankFromPaths(schulzeStrongestPaths(w))
}

// schulzeInitPaths builds the seed path matrix: p[a][b] is the number of
// rankings preferring a over b when that is a strict majority, else 0.
func schulzeInitPaths(w *ranking.Precedence) [][]int {
	n := w.N()
	p := make([][]int, n)
	for a := 0; a < n; a++ {
		p[a] = make([]int, n)
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			support := w.At(b, a) // rankings with a above b
			against := w.At(a, b)
			if support > against {
				p[a][b] = support
			}
		}
	}
	return p
}

// schulzeStrongestPaths runs the widest-path relaxation with two early
// exits derived from min(p[a][k], p[k][b]) <= p[a][b] never relaxing:
//
//   - Row-wise contested columns: for pivot k only columns b with p[k][b] > 0
//     can strengthen any path through k (otherwise the min is 0), so the
//     inner loop walks a per-pivot index of those columns — roughly half the
//     columns on majority-style matrices, and when the index is empty the
//     whole pivot is skipped.
//   - Source skip: a row a with p[a][k] == 0 cannot route through k at all.
//
// The relaxations that do run execute in the same (k, a, b) order with the
// same values as the dense recurrence, so the resulting matrix — and every
// golden table built on it — is bitwise identical to schulzeDensePaths.
func schulzeStrongestPaths(w *ranking.Precedence) [][]int {
	n := w.N()
	p := schulzeInitPaths(w)
	cols := make([]int32, 0, n)
	for k := 0; k < n; k++ {
		pk := p[k]
		cols = cols[:0]
		for b := 0; b < n; b++ {
			if b != k && pk[b] > 0 {
				cols = append(cols, int32(b))
			}
		}
		if len(cols) == 0 {
			continue
		}
		for a := 0; a < n; a++ {
			if a == k {
				continue
			}
			pa := p[a]
			ak := pa[k]
			if ak == 0 {
				continue
			}
			for _, b32 := range cols {
				b := int(b32)
				if b == a {
					continue
				}
				s := ak
				if pk[b] < s {
					s = pk[b]
				}
				if s > pa[b] {
					pa[b] = s
				}
			}
		}
	}
	return p
}

// schulzeDensePaths is the unpruned widest-path recurrence, kept as the
// reference the early-exit version is tested and benchmarked against.
func schulzeDensePaths(w *ranking.Precedence) [][]int {
	n := w.N()
	p := schulzeInitPaths(w)
	for k := 0; k < n; k++ {
		pk := p[k]
		for a := 0; a < n; a++ {
			if a == k {
				continue
			}
			pa := p[a]
			ak := pa[k]
			if ak == 0 {
				continue
			}
			for b := 0; b < n; b++ {
				if b == a || b == k {
					continue
				}
				s := ak
				if pk[b] < s {
					s = pk[b]
				}
				if s > pa[b] {
					pa[b] = s
				}
			}
		}
	}
	return p
}

// schulzeRankFromPaths orders candidates by their strongest-path win counts.
func schulzeRankFromPaths(p [][]int) ranking.Ranking {
	n := len(p)
	wins := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && p[a][b] > p[b][a] {
				wins[a]++
			}
		}
	}
	return ranking.SortByPointsDesc(wins)
}

// KemenyOptions configures the Kemeny solvers used by this package and the
// core MFCR solvers.
type KemenyOptions struct {
	// ExactThreshold: use the exact branch-and-bound when n <= this value
	// (default 12). Above it the iterated local search heuristic runs — see
	// DESIGN.md (CPLEX substitution).
	ExactThreshold int
	// MaxNodes bounds the exact search (default 20e6 nodes); on exhaustion
	// the best ranking found is returned.
	MaxNodes int64
	// Heuristic tunes the large-n iterated local search.
	Heuristic kemeny.Options
}

// DefaultKemenyOptions returns the options used when a zero value is given.
func DefaultKemenyOptions() KemenyOptions {
	return KemenyOptions{ExactThreshold: 12, MaxNodes: 20_000_000}
}

// WithDefaults fills the zero fields of o with the package defaults, leaving
// the Heuristic tuning (restart count, strength, Workers) untouched so
// callers plumbing solver-layer options through keep them.
func (o KemenyOptions) WithDefaults() KemenyOptions {
	d := DefaultKemenyOptions()
	if o.ExactThreshold == 0 {
		o.ExactThreshold = d.ExactThreshold
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = d.MaxNodes
	}
	return o
}

// Kemeny returns a consensus ranking minimising total Kendall tau distance to
// the profile summarised by w: exactly (branch-and-bound) for small n,
// heuristically (Borda-seeded iterated local search) for large n.
func Kemeny(w *ranking.Precedence, opts KemenyOptions) ranking.Ranking {
	return KemenyCtx(context.Background(), w, opts)
}

// KemenyCtx is Kemeny with cooperative cancellation (the serving layer's
// per-request deadline): when ctx is done both engines stop early and return
// the best ranking found so far — never nil. A never-cancelled ctx produces
// output identical to Kemeny.
func KemenyCtx(ctx context.Context, w *ranking.Precedence, opts KemenyOptions) ranking.Ranking {
	opts = opts.WithDefaults()
	if w.N() <= opts.ExactThreshold {
		// A warm-start ranking (Heuristic.Warm) seeds the exact search's
		// incumbent too: the bound tightens immediately, but the optimum —
		// unlike the heuristic's answer — is seed-independent.
		seed := kemeny.LocalSearch(w, kemeny.WarmOrBordaSeed(w, opts.Heuristic))
		res := kemeny.BranchAndBoundCtx(ctx, w, nil, seed, opts.MaxNodes)
		if res.Ranking != nil {
			return res.Ranking
		}
	}
	return kemeny.HeuristicCtx(ctx, w, opts.Heuristic)
}

// PickAPerm returns the base ranking closest to the whole profile (minimum
// total Kendall tau distance), the Schalekamp & van Zuylen pick-a-perm
// 2-approximation of Kemeny.
func PickAPerm(p ranking.Profile) (ranking.Ranking, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := ranking.MustPrecedence(p)
	best, bestCost := -1, 0
	for i, r := range p {
		c := w.KemenyCost(r)
		if best < 0 || c < bestCost {
			best, bestCost = i, c
		}
	}
	return p[best].Clone(), nil
}

// PickFairestPerm returns the base ranking with the smallest maximum
// ARP/IRP violation over table t — the paper's Pick-Fairest-Perm baseline
// (Section IV-B). Ties break toward the earlier ranking.
func PickFairestPerm(p ranking.Profile, t *attribute.Table) (ranking.Ranking, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N() != t.N() {
		return nil, errors.New("aggregate: profile and table candidate counts differ")
	}
	best, bestViol := -1, 0.0
	for i, r := range p {
		v := fairness.Audit(r, t).MaxViolation()
		if best < 0 || v < bestViol {
			best, bestViol = i, v
		}
	}
	return p[best].Clone(), nil
}

// FairnessOrder returns the indices of p ordered from least fair to most
// fair (descending max ARP/IRP violation over t).
func FairnessOrder(p ranking.Profile, t *attribute.Table) []int {
	type scored struct {
		idx  int
		viol float64
	}
	s := make([]scored, len(p))
	for i, r := range p {
		s[i] = scored{i, fairness.Audit(r, t).MaxViolation()}
	}
	// Insertion sort by descending violation, stable on index.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].viol > s[j-1].viol; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]int, len(s))
	for i, e := range s {
		out[i] = e.idx
	}
	return out
}

// KemenyWeighted implements the paper's Kemeny-Weighted baseline: base
// rankings are ordered from least to most fair and the i-th (1-based) in
// that order contributes weight i to the precedence matrix — the fairest
// ranking weighs |R|, the least fair weighs 1 — before Kemeny aggregation.
func KemenyWeighted(p ranking.Profile, t *attribute.Table, opts KemenyOptions) (ranking.Ranking, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order := FairnessOrder(p, t)
	weights := make([]int, len(p))
	for rank, idx := range order {
		weights[idx] = rank + 1 // least fair -> 1, fairest -> |R|
	}
	w, err := ranking.NewWeightedPrecedence(p, weights)
	if err != nil {
		return nil, err
	}
	return Kemeny(w, opts), nil
}
