// Package attribute models the candidate database X of the MANI-Rank paper:
// a set of n candidates, each described by one or more categorical protected
// attributes (e.g. Gender, Race, Lunch). It exposes protected-attribute
// groups (paper Def. 1) and intersectional groups (paper Def. 2), which the
// fairness package scores and the core solvers constrain.
package attribute

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Attribute is a categorical protected attribute over a candidate universe:
// a name, a value domain, and the value index each candidate holds.
type Attribute struct {
	// Name identifies the attribute, e.g. "Gender".
	Name string
	// Values is the attribute's domain, e.g. ["Man", "Non-Binary", "Woman"].
	Values []string
	// Of[c] is the index into Values of candidate c's attribute value.
	Of []int
}

// NewAttribute validates and constructs an attribute. Every entry of `of`
// must index into values, and the domain must contain at least one value.
func NewAttribute(name string, values []string, of []int) (*Attribute, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("attribute %q: empty value domain", name)
	}
	for c, v := range of {
		if v < 0 || v >= len(values) {
			return nil, fmt.Errorf("attribute %q: candidate %d has value index %d outside domain of size %d", name, c, v, len(values))
		}
	}
	return &Attribute{Name: name, Values: values, Of: of}, nil
}

// DomainSize returns |dom(p)|, the number of values in the attribute domain.
func (a *Attribute) DomainSize() int { return len(a.Values) }

// N returns the number of candidates the attribute describes.
func (a *Attribute) N() int { return len(a.Of) }

// Group returns the candidate ids of the protected attribute group
// G(a:value) (paper Def. 1) in ascending id order.
func (a *Attribute) Group(value int) []int {
	var g []int
	for c, v := range a.Of {
		if v == value {
			g = append(g, c)
		}
	}
	return g
}

// GroupSizes returns the size of each value's group, indexed by value.
func (a *Attribute) GroupSizes() []int {
	sizes := make([]int, len(a.Values))
	for _, v := range a.Of {
		sizes[v]++
	}
	return sizes
}

// ValueOf returns the value label of candidate c.
func (a *Attribute) ValueOf(c int) string { return a.Values[a.Of[c]] }

// Table is the candidate database X: n candidates described by a list of
// protected attributes, all over the same candidate universe.
type Table struct {
	n         int
	attrs     []*Attribute
	interOnce sync.Once  // guards inter: tables are shared read-only across worker goroutines
	inter     *Attribute // lazily built intersection pseudo-attribute
}

// NewTable builds a candidate database of n candidates with the given
// protected attributes. Every attribute must describe exactly n candidates.
func NewTable(n int, attrs ...*Attribute) (*Table, error) {
	if n <= 0 {
		return nil, errors.New("attribute: table needs at least one candidate")
	}
	if len(attrs) == 0 {
		return nil, errors.New("attribute: table needs at least one protected attribute")
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a.N() != n {
			return nil, fmt.Errorf("attribute %q describes %d candidates, table has %d", a.Name, a.N(), n)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("attribute: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return &Table{n: n, attrs: attrs}, nil
}

// MustTable is NewTable that panics on error, for tests and generators whose
// inputs are constructed programmatically.
func MustTable(n int, attrs ...*Attribute) *Table {
	t, err := NewTable(n, attrs...)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of candidates in the database.
func (t *Table) N() int { return t.n }

// Attrs returns the protected attributes (shared slice; do not mutate).
func (t *Table) Attrs() []*Attribute { return t.attrs }

// Attr returns the attribute with the given name, or nil if absent.
func (t *Table) Attr(name string) *Attribute {
	for _, a := range t.attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Intersection returns the intersection pseudo-attribute Inter = p1 x ... x pq
// (paper Section II-A): one value per distinct combination of protected
// attribute values that actually occurs among the candidates. Only occupied
// combinations form groups; empty combinations cannot influence parity.
// The result is cached.
func (t *Table) Intersection() *Attribute {
	t.interOnce.Do(func() { t.inter = t.buildIntersection() })
	return t.inter
}

func (t *Table) buildIntersection() *Attribute {
	type combo struct {
		key   string
		label string
	}
	keyOf := make([]string, t.n)
	labelOf := make([]string, t.n)
	for c := 0; c < t.n; c++ {
		var kb, lb strings.Builder
		for i, a := range t.attrs {
			if i > 0 {
				kb.WriteByte('|')
				lb.WriteByte('/')
			}
			fmt.Fprintf(&kb, "%d", a.Of[c])
			lb.WriteString(a.Values[a.Of[c]])
		}
		keyOf[c] = kb.String()
		labelOf[c] = lb.String()
	}
	uniq := map[string]combo{}
	for c := 0; c < t.n; c++ {
		uniq[keyOf[c]] = combo{key: keyOf[c], label: labelOf[c]}
	}
	combos := make([]combo, 0, len(uniq))
	for _, cb := range uniq {
		combos = append(combos, cb)
	}
	sort.Slice(combos, func(i, j int) bool { return combos[i].key < combos[j].key })
	index := make(map[string]int, len(combos))
	values := make([]string, len(combos))
	for i, cb := range combos {
		index[cb.key] = i
		values[i] = cb.label
	}
	of := make([]int, t.n)
	for c := 0; c < t.n; c++ {
		of[c] = index[keyOf[c]]
	}
	return &Attribute{Name: "Intersection", Values: values, Of: of}
}

// IntersectionOf returns the intersection pseudo-attribute over a subset of
// the table's protected attributes named in names (paper Section II-B,
// "Customizing Group Fairness"). It is not cached.
func (t *Table) IntersectionOf(names ...string) (*Attribute, error) {
	var subset []*Attribute
	for _, name := range names {
		a := t.Attr(name)
		if a == nil {
			return nil, fmt.Errorf("attribute: unknown attribute %q", name)
		}
		subset = append(subset, a)
	}
	if len(subset) == 0 {
		return nil, errors.New("attribute: IntersectionOf needs at least one attribute")
	}
	sub := &Table{n: t.n, attrs: subset}
	return sub.Intersection(), nil
}

// WithAttrs returns a new Table over the same candidates restricted to the
// named attributes, preserving their order in names.
func (t *Table) WithAttrs(names ...string) (*Table, error) {
	var subset []*Attribute
	for _, name := range names {
		a := t.Attr(name)
		if a == nil {
			return nil, fmt.Errorf("attribute: unknown attribute %q", name)
		}
		subset = append(subset, a)
	}
	return NewTable(t.n, subset...)
}
