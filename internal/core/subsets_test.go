package core

import (
	"testing"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
)

// threeAttrTable builds a Gender(2) x Race(2) x Lunch(2) table.
func threeAttrTable(t *testing.T, n int) *attribute.Table {
	t.Helper()
	g := make([]int, n)
	r := make([]int, n)
	l := make([]int, n)
	for c := 0; c < n; c++ {
		g[c] = c % 2
		r[c] = (c / 2) % 2
		l[c] = (c / 4) % 2
	}
	ag, err := attribute.NewAttribute("Gender", []string{"M", "W"}, g)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := attribute.NewAttribute("Race", []string{"A", "B"}, r)
	if err != nil {
		t.Fatal(err)
	}
	al, err := attribute.NewAttribute("Lunch", []string{"N", "S"}, l)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := attribute.NewTable(n, ag, ar, al)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTargetsWithSubsets(t *testing.T) {
	tab := threeAttrTable(t, 32)
	targets, err := TargetsWithSubsets(tab, 0.2, []string{"Gender", "Race"})
	if err != nil {
		t.Fatal(err)
	}
	// 3 attributes + full intersection + 1 subset.
	if len(targets) != 5 {
		t.Fatalf("%d targets, want 5", len(targets))
	}
	sub := targets[4].Attr
	if sub.DomainSize() != 4 {
		t.Fatalf("Gender x Race subset has %d groups, want 4", sub.DomainSize())
	}
	if _, err := TargetsWithSubsets(tab, 0.2, []string{"Nope"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestRepairSatisfiesSubsetTargets(t *testing.T) {
	tab := threeAttrTable(t, 64)
	targets, err := TargetsWithSubsets(tab, 0.2, []string{"Gender", "Lunch"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := MakeMRFair(blockRanking(tab), targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range targets {
		if got := fairness.ARP(out, tg.Attr); got > tg.Delta+1e-9 {
			t.Errorf("%s spread %.3f above %.2f", tg.Attr.Name, got, tg.Delta)
		}
	}
}
