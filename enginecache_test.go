package manirank_test

import (
	"context"
	"reflect"
	"testing"

	"manirank"
)

// cacheTestProfile is a small fixed profile shared by the EngineCache tests.
func cacheTestProfile() manirank.Profile {
	return manirank.Profile{
		{0, 1, 2, 3, 4},
		{1, 0, 3, 2, 4},
		{0, 2, 1, 4, 3},
		{4, 3, 2, 1, 0},
	}
}

func TestEngineCacheSharesMatrices(t *testing.T) {
	ec := manirank.NewEngineCache(1 << 20)
	p := cacheTestProfile()
	e1, err := ec.Engine(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ec.Engine(context.Background(), cacheTestProfile()) // content-equal copy
	if err != nil {
		t.Fatal(err)
	}
	if e1.Precedence() != e2.Precedence() {
		t.Fatal("content-equal profiles did not share one matrix")
	}
	s := ec.Stats()
	if s.Builds != 1 || s.Hits != 1 || s.BuildsSkipped != 1 {
		t.Fatalf("stats = %+v, want 1 build shared by the second engine", s)
	}
	// The cached-path engine keeps its profile: profile-consuming methods
	// still solve.
	r, err := e2.Solve(context.Background(), manirank.MethodKemeny, nil)
	if err != nil {
		t.Fatalf("solve on cached engine: %v", err)
	}
	direct, err := manirank.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Solve(context.Background(), manirank.MethodKemeny, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Ranking, want.Ranking) {
		t.Fatalf("cached engine ranking %v != direct %v", r.Ranking, want.Ranking)
	}
}

func TestEngineCacheRejectsInvalidProfile(t *testing.T) {
	ec := manirank.NewEngineCache(1 << 20)
	bad := manirank.Profile{{0, 1}, {0, 1, 2}} // ragged rows
	if _, err := ec.Engine(context.Background(), bad); err == nil {
		t.Fatal("invalid profile was accepted")
	}
	// The failed build must not wedge the key.
	if _, err := ec.Engine(context.Background(), cacheTestProfile()); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCacheTableMismatch(t *testing.T) {
	ec := manirank.NewEngineCache(1 << 20)
	tab, err := manirank.NewTable(2,
		manirank.MustAttribute("G", []string{"a", "b"}, []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Engine(context.Background(), cacheTestProfile(), manirank.WithTable(tab)); err == nil {
		t.Fatal("2-candidate table over a 5-candidate profile was accepted")
	}
}

// TestEngineCachePersistsAcrossInstances: the library-level warm restart —
// a second cache over the same directory restores the matrix instead of
// rebuilding, and an engine-version bump invalidates it.
func TestEngineCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	p := cacheTestProfile()

	ec1 := manirank.NewEngineCache(1 << 20)
	if err := ec1.AttachDir(dir, ""); err != nil {
		t.Fatal(err)
	}
	e1, err := ec1.Engine(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if s := ec1.Stats(); s.DiskPuts != 1 {
		t.Fatalf("stats = %+v, want the built matrix written through", s)
	}
	if err := ec1.Close(); err != nil {
		t.Fatal(err)
	}

	ec2 := manirank.NewEngineCache(1 << 20)
	if err := ec2.AttachDir(dir, ""); err != nil {
		t.Fatal(err)
	}
	e2, err := ec2.Engine(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	s := ec2.Stats()
	if s.Builds != 0 || s.DiskHits != 1 || s.BuildsSkipped != 1 {
		t.Fatalf("restart stats = %+v, want a disk restore instead of a build", s)
	}
	for a := 0; a < e1.N(); a++ {
		for b := 0; b < e1.N(); b++ {
			if e1.Precedence().At(a, b) != e2.Precedence().At(a, b) {
				t.Fatalf("restored W[%d][%d] differs", a, b)
			}
		}
	}

	ec3 := manirank.NewEngineCache(1 << 20)
	if err := ec3.AttachDir(dir, "2"); err != nil { // behaviour bump
		t.Fatal(err)
	}
	if _, err := ec3.Engine(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if s := ec3.Stats(); s.Builds != 1 || s.DiskHits != 0 {
		t.Fatalf("post-bump stats = %+v, want a fresh build", s)
	}
}

// TestEngineCachePutKeysByMutatedProfile is the staleness regression for
// streaming sessions: a mutated engine re-admitted with Put must file its
// matrix under the POST-mutation profile digest. After a restart, asking for
// the mutated profile restores the patched matrix from disk, and asking for
// the original profile can never be served the pre-edit state's matrix under
// the wrong key (nor vice versa).
func TestEngineCachePutKeysByMutatedProfile(t *testing.T) {
	dir := t.TempDir()
	orig := cacheTestProfile()

	ec1 := manirank.NewEngineCache(1 << 20)
	if err := ec1.AttachDir(dir, ""); err != nil {
		t.Fatal(err)
	}
	e, err := ec1.Engine(context.Background(), orig)
	if err != nil {
		t.Fatal(err)
	}
	// Session edit: replace ranker 0, then re-admit the patched matrix.
	if err := e.UpdateRanking(0, manirank.Ranking{4, 2, 0, 1, 3}); err != nil {
		t.Fatal(err)
	}
	ec1.Put(context.Background(), e)
	mutated := e.Profile()
	if reflect.DeepEqual(mutated, orig) {
		t.Fatal("test bug: mutation was a no-op")
	}
	if s := ec1.Stats(); s.DiskPuts != 2 {
		t.Fatalf("stats = %+v, want the original build AND the Put written through", s)
	}
	if err := ec1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart. The mutated profile must warm-restore the patched matrix...
	ec2 := manirank.NewEngineCache(1 << 20)
	if err := ec2.AttachDir(dir, ""); err != nil {
		t.Fatal(err)
	}
	warm, err := ec2.Engine(context.Background(), mutated)
	if err != nil {
		t.Fatal(err)
	}
	if s := ec2.Stats(); s.Builds != 0 || s.DiskHits != 1 {
		t.Fatalf("restart stats = %+v, want a disk restore of the patched matrix", s)
	}
	fresh, err := manirank.NewEngine(mutated)
	if err != nil {
		t.Fatal(err)
	}
	requireMatrixEqual(t, warm.Precedence(), fresh.Precedence(), "restored post-edit matrix")

	// ...and the original profile must still get ITS matrix — a restore of
	// the pre-edit state, never the session's patched one.
	cold, err := ec2.Engine(context.Background(), orig)
	if err != nil {
		t.Fatal(err)
	}
	origFresh, err := manirank.NewEngine(orig)
	if err != nil {
		t.Fatal(err)
	}
	requireMatrixEqual(t, cold.Precedence(), origFresh.Precedence(), "restored pre-edit matrix")
}
