package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"manirank/internal/fleet"
	"manirank/internal/ranking"
	"manirank/internal/service/cache"
)

// This file is the serving side of the fleet (DESIGN.md §13): the
// /internal/v1/peer/{results|matrices}/{digest} handlers a replica answers
// ring mates on, the cache fetch hooks that consult a digest's rendezvous
// owner before computing locally, the after-compute push that homes a
// non-owner's result with its owner, and the bounded re-owned-key warming
// that runs on membership change.
//
// The peer API is internal by construction — it trusts its callers the way
// the file store trusts the filesystem — with two cheap integrity gates:
// every request carries the sender's cache namespace (412 on mismatch, so
// replicas on different engine versions can never exchange entries), and a
// posted profile must hash to the digest it claims (400 otherwise), so a
// confused client cannot poison the matrix tier.

// peerPushConcurrency bounds concurrent background pushes (after-compute
// homing and re-owned-key warming share the budget).
const peerPushConcurrency = 4

// handlePeer serves the peer cache protocol:
//
//	GET  /internal/v1/peer/{kind}/{digest}  -> 200 entry bytes | 404 authoritative miss
//	PUT  /internal/v1/peer/{kind}/{digest}  -> 204 entry admitted
//	POST /internal/v1/peer/matrices/{digest} (profile JSON) -> 200 matrix bytes,
//	     built under this node's single-flight — the per-ring single-compute path.
//
// Reads go through Peek, which serves memory and disk without moving this
// node's own hit/miss counters: a peer's traffic is accounted on the peer.
func (s *Server) handlePeer(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		http.NotFound(w, r)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, fleet.PathPrefix)
	kind, digest, ok := strings.Cut(rest, "/")
	if !ok || digest == "" || strings.Contains(digest, "/") {
		http.NotFound(w, r)
		return
	}
	if ns := r.Header.Get(fleet.NamespaceHeader); ns != s.fleet.Namespace() {
		http.Error(w, fmt.Sprintf("cache namespace %q does not match %q", ns, s.fleet.Namespace()),
			http.StatusPreconditionFailed)
		return
	}
	switch kind {
	case fleet.KindResults:
		s.handlePeerResult(w, r, digest)
	case fleet.KindMatrices:
		s.handlePeerMatrix(w, r, digest)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request, digest string) {
	switch r.Method {
	case http.MethodGet:
		v, ok := s.cache.Peek(r.Context(), digest)
		if !ok {
			http.NotFound(w, r)
			return
		}
		data, err := resultCodec().Encode(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := resultCodec().Decode(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// Partial results are never cached locally; the same rule holds for
		// pushed entries regardless of what the sender thought.
		if res, ok := v.(*result); !ok || res.Partial {
			http.Error(w, "partial results are not cacheable", http.StatusBadRequest)
			return
		}
		s.cache.Put(r.Context(), digest, v)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "use GET or PUT", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handlePeerMatrix(w http.ResponseWriter, r *http.Request, digest string) {
	switch r.Method {
	case http.MethodGet:
		v, ok := s.prec.Peek(r.Context(), digest)
		if !ok {
			http.NotFound(w, r)
			return
		}
		data, err := matrixCodec().Encode(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := matrixCodec().Decode(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.prec.Put(r.Context(), digest, v, matrixCost(v))
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPost:
		s.handlePeerBuild(w, r, digest)
	default:
		http.Error(w, "use GET, PUT, or POST", http.StatusMethodNotAllowed)
	}
}

// handlePeerBuild builds (or serves) the precedence matrix of the posted
// profile under this node's matrix tier — including its single-flight, so
// a stampede of non-owners asking for one unseen profile still pays one
// construction ring-wide. The profile must hash to the digest it was posted
// under: the digest is the cache key every replica will trust forever, so
// it is verified here, not assumed.
func (s *Server) handlePeerBuild(w http.ResponseWriter, r *http.Request, digest string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var rows [][]int
	if err := json.Unmarshal(body, &rows); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	profile := make(ranking.Profile, len(rows))
	for i, row := range rows {
		profile[i] = row
	}
	if got := profile.Digest(digestVersion + "/profile"); got != digest {
		http.Error(w, fmt.Sprintf("profile hashes to %s, not %s", got, digest), http.StatusBadRequest)
		return
	}
	// The owner's tier sees its shard's demand here exactly as if the
	// request had arrived on its own front door, popularity model included.
	s.cheMatrix.Observe(digest)
	v, _, _, err := s.prec.Do(r.Context(), digest, func() (any, int64, error) {
		w, err := ranking.NewPrecedence(profile)
		if err != nil {
			return nil, 0, err
		}
		return w, w.Cells(), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := matrixCodec().Encode(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// resultFetch returns the result tier's fleet hook for digest, or nil
// without a fleet. The hook asks the digest's owner (hedged to the
// runner-up) only when this node does not own the digest itself.
func (s *Server) resultFetch(digest string) cache.FetchFunc {
	if s.fleet == nil {
		return nil
	}
	return func(ctx context.Context) (any, bool, error) {
		if _, self := s.fleet.Route(digest); self {
			return nil, false, nil
		}
		payload, found, err := s.fleet.Fetch(ctx, fleet.KindResults, digest)
		if errors.Is(err, fleet.ErrNoPeer) {
			return nil, false, nil
		}
		if err != nil {
			return nil, true, err
		}
		if !found {
			return nil, true, nil
		}
		v, err := resultCodec().Decode(payload)
		if err != nil {
			return nil, true, err
		}
		return v, true, nil
	}
}

// matrixFetch returns the matrix tier's fleet hook for pb, or nil without a
// fleet. Where the result hook stops at an authoritative miss, the matrix
// hook escalates: on a 404 from the owner it POSTs the profile so the OWNER
// builds (under its own single-flight) and returns the serialized matrix —
// per-node single-flight extended into per-ring single-compute. Every
// failure degrades to a local build.
func (s *Server) matrixFetch(pb *problem) cache.MatrixFetchFunc {
	if s.fleet == nil {
		return nil
	}
	return func(ctx context.Context) (any, int64, bool, error) {
		owner, self := s.fleet.Route(pb.profDigest)
		if self {
			return nil, 0, false, nil
		}
		payload, found, err := s.fleet.Fetch(ctx, fleet.KindMatrices, pb.profDigest)
		if errors.Is(err, fleet.ErrNoPeer) {
			return nil, 0, false, nil
		}
		if err != nil {
			return nil, 0, true, err
		}
		if !found {
			profJSON, merr := json.Marshal(pb.profile)
			if merr != nil {
				return nil, 0, true, merr
			}
			payload, err = s.fleet.BuildMatrix(ctx, owner, pb.profDigest, profJSON)
			if err != nil {
				return nil, 0, true, err
			}
		}
		v, err := matrixCodec().Decode(payload)
		if err != nil {
			return nil, 0, true, err
		}
		w := v.(*ranking.Precedence)
		return w, w.Cells(), true, nil
	}
}

// pushResult homes a locally computed result with its ring owner in the
// background, so the next node that misses on this digest finds it where
// the ring says to look. Best effort and bounded: when the push budget is
// saturated the entry simply stays local (write-through still persisted it
// here).
func (s *Server) pushResult(digest string, res *result) {
	if s.fleet == nil || res.Partial {
		return
	}
	owner, self := s.fleet.Route(digest)
	if self {
		return
	}
	data, err := resultCodec().Encode(res)
	if err != nil {
		return
	}
	select {
	case s.pushSem <- struct{}{}:
	default:
		return // saturated: skip, never block a request path
	}
	go func() {
		defer func() { <-s.pushSem }()
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultDeadline)
		defer cancel()
		s.fleet.Push(ctx, owner, fleet.KindResults, digest, data)
	}()
}

// warmReowned runs after every membership change: it walks this node's
// resident keys in both tiers and pushes the entries whose rendezvous owner
// is now a DIFFERENT alive node to that owner, capped at the fleet's
// WarmLimit and bounded by the shared push budget. This is the stampede
// protection: when a node joins (or a dead one returns), the keys it now
// owns arrive as pushed entries from the replicas that served them so far,
// instead of every one being rebuilt on first touch; when a node dies, its
// keys re-home to runners-up the same way from wherever they are resident.
func (s *Server) warmReowned() {
	f := s.fleet
	limit := f.WarmLimit()
	if limit <= 0 {
		return
	}
	epoch := f.Epoch()
	warmed := 0
	push := func(kind, key string, encode func() ([]byte, bool)) bool {
		if warmed >= limit {
			return false
		}
		owner, self := f.Route(key)
		if self {
			return true
		}
		data, ok := encode()
		if !ok {
			return true
		}
		warmed++
		s.peerWarms.Inc()
		s.pushSem <- struct{}{} // block: warming is background work, shedding it defeats it
		go func() {
			defer func() { <-s.pushSem }()
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DefaultDeadline)
			defer cancel()
			f.Push(ctx, owner, kind, key, data)
		}()
		return true
	}
	ctx := context.Background()
	for _, key := range s.prec.Keys() {
		if !push(fleet.KindMatrices, key, func() ([]byte, bool) {
			v, ok := s.prec.Peek(ctx, key)
			if !ok {
				return nil, false
			}
			data, err := matrixCodec().Encode(v)
			return data, err == nil
		}) {
			break
		}
	}
	for _, key := range s.cache.Keys() {
		if !push(fleet.KindResults, key, func() ([]byte, bool) {
			v, ok := s.cache.Peek(ctx, key)
			if !ok {
				return nil, false
			}
			res, isRes := v.(*result)
			if !isRes || res.Partial {
				return nil, false
			}
			data, err := resultCodec().Encode(v)
			return data, err == nil
		}) {
			break
		}
	}
	if warmed > 0 {
		s.log.Info("fleet warm push", "epoch", epoch, "entries", warmed, "limit", limit)
	}
}

// FleetStatz is the /statz fleet section.
type FleetStatz struct {
	// Self is this node's advertised base URL.
	Self string `json:"self"`
	// Epoch is the membership epoch (bumps on every alive-set change).
	Epoch uint64 `json:"epoch"`
	// Nodes is the configured fleet size, self included.
	Nodes int `json:"nodes"`
	// Alive is the currently-alive node count, self included.
	Alive int `json:"alive"`
	// Peers is the per-peer liveness table.
	Peers []fleet.PeerStatus `json:"peers"`
}

// fleetStatz assembles the /statz fleet section (nil without a fleet).
func (s *Server) fleetStatz() *FleetStatz {
	if s.fleet == nil {
		return nil
	}
	return &FleetStatz{
		Self:  s.fleet.Self(),
		Epoch: s.fleet.Epoch(),
		Nodes: len(s.fleet.Nodes()),
		Alive: len(s.fleet.Alive()),
		Peers: s.fleet.PeerStatuses(),
	}
}
