package mallows

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"manirank/internal/ranking"
)

// PlackettLuce is an O(n log n)-per-sample ranking noise model used by the
// scalability experiments, where the O(n^2) repeated-insertion Mallows
// sampler is infeasible (n up to 10^5, |R| up to 10^7). Candidates receive
// utilities -theta * modalPosition + Gumbel noise and are ranked by
// descending utility, which is exactly Plackett-Luce sampling with weights
// exp(-theta * position): the same exponential location-spread family as
// Mallows (theta = 0 uniform, large theta concentrating on the modal
// ranking), with distances distributed similarly though not identically.
// DESIGN.md documents this substitution; all fairness/quality experiments
// use the exact Mallows sampler.
type PlackettLuce struct {
	modal ranking.Ranking
	theta float64
}

// NewPlackettLuce constructs the sampler centred on modal with spread theta.
func NewPlackettLuce(modal ranking.Ranking, theta float64) (*PlackettLuce, error) {
	if err := modal.Validate(); err != nil {
		return nil, fmt.Errorf("mallows: modal ranking: %w", err)
	}
	if theta < 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("mallows: spread theta must be >= 0, got %v", theta)
	}
	return &PlackettLuce{modal: modal.Clone(), theta: theta}, nil
}

// MustNewPlackettLuce is NewPlackettLuce that panics on invalid input.
func MustNewPlackettLuce(modal ranking.Ranking, theta float64) *PlackettLuce {
	pl, err := NewPlackettLuce(modal, theta)
	if err != nil {
		panic(err)
	}
	return pl
}

// Sample draws one ranking in O(n log n).
func (pl *PlackettLuce) Sample(rng *rand.Rand) ranking.Ranking {
	n := len(pl.modal)
	util := make([]float64, n)
	for pos, c := range pl.modal {
		// Gumbel(0,1) noise: -log(-log(U)).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		util[c] = -pl.theta*float64(pos) - math.Log(-math.Log(u))
	}
	r := ranking.New(n)
	sort.SliceStable(r, func(i, j int) bool { return util[r[i]] > util[r[j]] })
	return r
}

// SampleProfile draws count rankings.
func (pl *PlackettLuce) SampleProfile(count int, rng *rand.Rand) ranking.Profile {
	p := make(ranking.Profile, count)
	for i := range p {
		p[i] = pl.Sample(rng)
	}
	return p
}

// Modal returns a copy of the modal ranking.
func (pl *PlackettLuce) Modal() ranking.Ranking { return pl.modal.Clone() }
