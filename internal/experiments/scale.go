package experiments

import (
	"fmt"
	"time"

	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

// fig6Modal builds the scalability study's modal ranking: a binary
// Gender(2) x Race(2) database with modal ARP(Race)=0.15, ARP(Gender)=0.70
// (paper Section IV-D, Fig. 6 / Table II dataset).
func fig6Modal(n int, cfg Config) (*runCtxSeed, error) {
	tab, err := unfairgen.BinaryTable(n)
	if err != nil {
		return nil, err
	}
	rng := cfg.rng()
	modal, err := unfairgen.CalibratedBinaryModal(tab, 0.70, 0.15, rng)
	if err != nil {
		return nil, err
	}
	return &runCtxSeed{tab: tab, modal: modal, cfg: cfg}, nil
}

// fig7Modal builds the candidate-scalability modal: ARP(Race)=0.31,
// ARP(Gender)=0.44 (paper Fig. 7 / Table III dataset).
func fig7Modal(n int, cfg Config) (*runCtxSeed, error) {
	tab, err := unfairgen.BinaryTable(n)
	if err != nil {
		return nil, err
	}
	rng := cfg.rng()
	modal, err := unfairgen.CalibratedBinaryModal(tab, 0.44, 0.31, rng)
	if err != nil {
		return nil, err
	}
	return &runCtxSeed{tab: tab, modal: modal, cfg: cfg}, nil
}

type runCtxSeed struct {
	tab   *attribute.Table
	modal ranking.Ranking
	cfg   Config
}

// Fig6 regenerates paper Figure 6: runtime of all eight methods as the
// number of base rankings grows (n = 100 candidates, theta = 0.6,
// Delta = 0.1). Base rankings are drawn with the O(n log n) Plackett-Luce
// sampler so generation does not dominate the measured aggregation times.
func Fig6(cfg Config) error {
	sizes := []int{1000, 5000, 10000, 20000}
	if cfg.Quick {
		sizes = []int{200, 500}
	}
	seed, err := fig6Modal(100, cfg)
	if err != nil {
		return err
	}
	rng := cfg.rng()
	pl := mallows.MustNewPlackettLuce(seed.modal, 0.6)
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "|R|\tMethod\tRuntime\tPD_Loss")
	for _, m := range sizes {
		p := pl.SampleProfile(m, rng)
		ctx, err := newRunCtx(p, seed.tab, 0.1)
		if err != nil {
			return err
		}
		for _, meth := range allMethods() {
			start := time.Now()
			r, err := meth.Run(ctx)
			elapsed := time.Since(start)
			if err != nil {
				return fmt.Errorf("experiments: fig6 |R|=%d %s: %w", m, meth.Name, err)
			}
			fmt.Fprintf(tw, "%d\t(%s) %s\t%v\t%.3f\n", m, meth.ID, meth.Name, elapsed.Round(time.Microsecond), ctx.w.PDLoss(r))
		}
	}
	return tw.Flush()
}

// Table2 regenerates paper Table II: Fair-Borda execution time for very
// large numbers of base rankings (up to 10^7 at paper scale). Following the
// measurement's intent — aggregation cost, not data generation cost — the
// profile cycles a pre-sampled pool of rankings up to the requested size.
func Table2(cfg Config) error {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000, 100_000}
	}
	seed, err := fig6Modal(100, cfg)
	if err != nil {
		return err
	}
	rng := cfg.rng()
	pl := mallows.MustNewPlackettLuce(seed.modal, 0.6)
	const poolSize = 10_000
	pool := pl.SampleProfile(poolSize, rng)
	targets := core.Targets(seed.tab, 0.1)
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "|R| Number of Rankings\tExecution time (s)")
	for _, m := range sizes {
		p := make(ranking.Profile, m)
		for i := range p {
			p[i] = pool[i%poolSize]
		}
		start := time.Now()
		if _, err := core.FairBorda(p, targets); err != nil {
			return fmt.Errorf("experiments: table2 |R|=%d: %w", m, err)
		}
		fmt.Fprintf(tw, "%d\t%.2f\n", m, time.Since(start).Seconds())
	}
	return tw.Flush()
}

// Fig7 regenerates paper Figure 7: runtime of all eight methods as the
// candidate count grows (|R| = 100, theta = 0.6), under a tight Delta = 0.1
// and a looser Delta = 0.33.
func Fig7(cfg Config) error {
	sizes := []int{100, 200, 300, 400, 500}
	if cfg.Quick {
		sizes = []int{60, 100}
	}
	rng := cfg.rng()
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Delta\tCandidates\tMethod\tRuntime\tPD_Loss")
	for _, delta := range []float64{0.1, 0.33} {
		for _, n := range sizes {
			seed, err := fig7Modal(n, cfg)
			if err != nil {
				return err
			}
			pl := mallows.MustNewPlackettLuce(seed.modal, 0.6)
			p := pl.SampleProfile(100, rng)
			ctx, err := newRunCtx(p, seed.tab, delta)
			if err != nil {
				return err
			}
			for _, meth := range allMethods() {
				start := time.Now()
				r, err := meth.Run(ctx)
				elapsed := time.Since(start)
				if err != nil {
					return fmt.Errorf("experiments: fig7 n=%d delta=%.2f %s: %w", n, delta, meth.Name, err)
				}
				fmt.Fprintf(tw, "%.2f\t%d\t(%s) %s\t%v\t%.3f\n", delta, n, meth.ID, meth.Name, elapsed.Round(time.Microsecond), ctx.w.PDLoss(r))
			}
		}
	}
	return tw.Flush()
}

// Table3 regenerates paper Table III: Fair-Borda execution time for large
// candidate databases at Delta = 0.33 (|R| = 100, theta = 0.6).
func Table3(cfg Config) error {
	sizes := []int{1_000, 10_000, 20_000, 50_000, 100_000}
	if cfg.Quick {
		sizes = []int{1_000, 4_000}
	}
	rng := cfg.rng()
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "|X| Number of Candidates\tExecution time (s)")
	for _, n := range sizes {
		seed, err := fig7Modal(n, cfg)
		if err != nil {
			return err
		}
		pl := mallows.MustNewPlackettLuce(seed.modal, 0.6)
		p := pl.SampleProfile(100, rng)
		targets := core.Targets(seed.tab, 0.33)
		start := time.Now()
		r, err := core.FairBorda(p, targets)
		if err != nil {
			return fmt.Errorf("experiments: table3 n=%d: %w", n, err)
		}
		elapsed := time.Since(start)
		if v, _ := core.MaxViolation(r, targets); v > 0 {
			return fmt.Errorf("experiments: table3 n=%d: output violates targets by %v", n, v)
		}
		fmt.Fprintf(tw, "%d\t%.2f\n", n, elapsed.Seconds())
	}
	return tw.Flush()
}
