// Benchmarks regenerating every table and figure of the MANI-Rank paper
// (one Benchmark per artifact, running the experiment harness in its quick
// configuration) plus ablation benches for the design choices DESIGN.md
// calls out. Run `go run ./cmd/experiments <id>` for full paper-scale rows;
// EXPERIMENTS.md records paper-vs-measured values.
package manirank_test

import (
	"io"
	"math/rand"
	"testing"

	"manirank/internal/core"
	"manirank/internal/experiments"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 1, Out: io.Discard, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets regenerates paper Table I (dataset fairness).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2Admissions regenerates paper Figure 2 (admissions example).
func BenchmarkFig2Admissions(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ConstraintVariants regenerates paper Figure 3 (attribute-only
// vs intersection-only vs MANI-Rank constraint sets).
func BenchmarkFig3ConstraintVariants(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Methods regenerates paper Figure 4 (8-method comparison).
func BenchmarkFig4Methods(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5PoF regenerates paper Figure 5 (price of fairness).
func BenchmarkFig5PoF(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6RankerScale regenerates paper Figure 6 (runtime vs |R|).
func BenchmarkFig6RankerScale(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CandidateScale regenerates paper Figure 7 (runtime vs n).
func BenchmarkFig7CandidateScale(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable2FairBordaRankers regenerates paper Table II (Fair-Borda
// ranker scalability).
func BenchmarkTable2FairBordaRankers(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3FairBordaCandidates regenerates paper Table III (Fair-Borda
// candidate scalability).
func BenchmarkTable3FairBordaCandidates(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4ExamStudy regenerates paper Table IV (merit scholarships).
func BenchmarkTable4ExamStudy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5CSRankings regenerates paper Table V (CSRankings).
func BenchmarkTable5CSRankings(b *testing.B) { benchExperiment(b, "table5") }

// --- Ablation benches (DESIGN.md Section 5) ---

// ablationSetup builds a biased consensus problem for repair ablations.
func ablationSetup(b *testing.B, n int) (ranking.Ranking, []core.Target) {
	b.Helper()
	tab, err := unfairgen.PaperTable(n)
	if err != nil {
		b.Fatal(err)
	}
	return unfairgen.BlockRanking(tab), core.Targets(tab, 0.1)
}

// BenchmarkAblationSwapPolicyImpactful measures the paper's repair policy
// ("fewer but more impactful swaps"); compare with the FineGrained variant
// below — the impactful policy needs far fewer swaps for the same Delta.
func BenchmarkAblationSwapPolicyImpactful(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		_, s, err := core.MakeMRFairWithPolicy(r, targets, core.PolicyImpactful)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// BenchmarkAblationSwapPolicyFineGrained always takes the smallest
// available corrective step.
func BenchmarkAblationSwapPolicyFineGrained(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		_, s, err := core.MakeMRFairWithPolicy(r, targets, core.PolicyFineGrained)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// kemenyBenchInstance builds a mid-size Kemeny instance with a moderate
// consensus level, hard enough that pruning matters.
func kemenyBenchInstance(b *testing.B, n int) *ranking.Precedence {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	modal := ranking.Random(n, rng)
	p := mallows.MustNew(modal, 0.15).SampleProfile(9, rng)
	return ranking.MustPrecedence(p)
}

// BenchmarkAblationKemenyBBSeeded measures exact branch-and-bound seeded
// with a local-search incumbent; compare with the unseeded variant — the
// incumbent prunes most of the tree.
func BenchmarkAblationKemenyBBSeeded(b *testing.B) {
	w := kemenyBenchInstance(b, 12)
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		seed := kemeny.LocalSearch(w, kemeny.BordaFromPrecedence(w))
		res := kemeny.BranchAndBound(w, nil, seed, 0)
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkAblationKemenyBBUnseeded runs the same search with no incumbent.
func BenchmarkAblationKemenyBBUnseeded(b *testing.B) {
	w := kemenyBenchInstance(b, 12)
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		res := kemeny.BranchAndBound(w, nil, nil, 0)
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkAblationILSBordaInit measures iterated local search seeded from
// the Borda order; compare with the random-start variant — the Borda seed
// starts near the optimum basin.
func BenchmarkAblationILSBordaInit(b *testing.B) {
	w := kemenyBenchInstance(b, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.LocalSearch(w, kemeny.BordaFromPrecedence(w))
	}
}

// BenchmarkAblationILSRandomInit starts local search from a random ranking.
func BenchmarkAblationILSRandomInit(b *testing.B) {
	w := kemenyBenchInstance(b, 90)
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.LocalSearch(w, ranking.Random(90, rng))
	}
}

// --- Core operation micro-benches ---

// BenchmarkPrecedenceMatrix100x150 builds the Figure 3/4 workload's
// precedence matrix (90 candidates would match the paper; 100 rounds up).
func BenchmarkPrecedenceMatrix100x150(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := make(ranking.Profile, 150)
	for i := range p {
		p[i] = ranking.Random(100, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranking.MustPrecedence(p)
	}
}

// BenchmarkMakeMRFair90 measures one full repair of a maximally unfair
// 90-candidate ranking to Delta = 0.1.
func BenchmarkMakeMRFair90(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MakeMRFair(r, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMallowsSample90 measures one exact RIM Mallows draw at the
// paper's figure scale through the zero-allocation sampler path (profile
// generation draws 20k+ of these in fig6). Steady state must report
// 0 allocs/op.
func BenchmarkMallowsSample90(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	s := mallows.MustNew(ranking.Random(90, rng), 0.6).Sampler()
	dst := make(ranking.Ranking, 90)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(dst, rng)
	}
}

// BenchmarkPlackettLuce100k measures one approximate draw at Table III
// scale through the zero-allocation sampler path. Steady state must report
// 0 allocs/op.
func BenchmarkPlackettLuce100k(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	s := mallows.MustNewPlackettLuce(ranking.New(100_000), 0.6).Sampler()
	dst := make(ranking.Ranking, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(dst, rng)
	}
}

// restartBenchInstance builds the restart-dominated Kemeny workload: a noisy
// profile large enough that the perturbation restarts, not the Borda seed
// descent, carry most of the work.
func restartBenchInstance(b *testing.B) (*ranking.Precedence, kemeny.Options) {
	b.Helper()
	rng := rand.New(rand.NewSource(14))
	modal := ranking.Random(220, rng)
	p := mallows.MustNew(modal, 0.05).SampleProfile(11, rng)
	return ranking.MustPrecedence(p), kemeny.Options{Seed: 14, Perturbations: 24, Strength: 8}
}

// benchHeuristicRestarts runs the sharded-restart Kemeny heuristic at a
// fixed pool width. Output is bitwise identical across widths, so W1 vs W4
// is a pure wall-clock comparison (the ~2x+ speedup needs 4+ hardware
// threads; single-CPU runners serialise the shards).
func benchHeuristicRestarts(b *testing.B, workers int) {
	w, opts := restartBenchInstance(b)
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.Heuristic(w, opts)
	}
}

// BenchmarkHeuristicRestartsW1 runs the restarts sequentially.
func BenchmarkHeuristicRestartsW1(b *testing.B) { benchHeuristicRestarts(b, 1) }

// BenchmarkHeuristicRestartsW4 shards the restarts over 4 workers.
func BenchmarkHeuristicRestartsW4(b *testing.B) { benchHeuristicRestarts(b, 4) }
