// Package cache implements manirankd's two in-memory cache tiers.
//
// The first tier is the consensus result store (Cache): a map keyed by
// canonical request digests behind a pluggable replacement Policy — classic
// LRU or a Compact-CAR-style clock (see policy.go) — with optional TTL
// expiry, hit/miss/eviction counters, and single-flight request coalescing
// so any number of concurrent identical requests trigger exactly one
// computation.
//
// The second tier is the precedence-matrix store (MatrixCache): profiles are
// shared across methods, so the O(n²·m) matrix a profile compiles into is
// keyed by the profile sub-digest and bounded by memory cost (n² cells per
// entry) rather than entry count, again with single-flight coalescing on
// builds (see matrix.go).
//
// Consensus rankings are expensive (Fair-Kemeny restarts) but perfectly
// reusable — the solvers are deterministic per request, so a digest hit is
// semantically identical to recomputing. Sizing follows the classic cache
// performance analyses (Che approximation; Martina et al., arXiv:1307.6702):
// with a Zipf-skewed request popularity the hit ratio is governed by the
// cache-size/working-set ratio, which the BENCH_4 load generator measures
// empirically per tier and per policy at several skews.
package cache

import (
	"context"
	"sync"
	"time"
)

// Stats is a point-in-time snapshot of the result-cache counters.
type Stats struct {
	// Policy names the replacement policy in use (PolicyLRU, PolicyClock).
	Policy string `json:"policy"`
	// Hits counts Do calls served from the store.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that had to compute (or join a computation).
	Misses uint64 `json:"misses"`
	// Coalesced counts Do calls that joined another caller's in-flight
	// computation instead of starting their own (a subset of Misses).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped by capacity pressure.
	Evictions uint64 `json:"evictions"`
	// Expirations counts entries dropped because their TTL elapsed.
	Expirations uint64 `json:"expirations"`
	// Entries is the current number of stored results.
	Entries int `json:"entries"`
	// InFlight is the current number of leader computations running.
	InFlight int `json:"in_flight"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one stored result.
type entry struct {
	value    any
	storedAt time.Time
}

// flight is one in-progress computation that concurrent identical requests
// coalesce onto.
type flight struct {
	done  chan struct{}
	value any
	err   error
}

// Cache is a thread-safe result store with TTL expiry, a pluggable
// replacement policy, and single-flight coalescing. The zero value is not
// usable; construct with New or NewWithPolicy.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	policy   Policy
	items    map[string]*entry
	flights  map[string]*flight
	now      func() time.Time

	hits, misses, coalesced, evictions, expirations uint64
}

// New returns an LRU cache holding up to capacity results for at most ttl
// each. capacity <= 0 disables storage (coalescing still applies to
// concurrent identical requests); ttl <= 0 disables expiry.
func New(capacity int, ttl time.Duration) *Cache {
	c, err := NewWithPolicy(capacity, ttl, PolicyLRU)
	if err != nil {
		panic(err) // unreachable: PolicyLRU always resolves
	}
	return c
}

// NewWithPolicy is New with an explicit replacement policy name (see
// Policies). It fails only on an unknown policy name.
func NewWithPolicy(capacity int, ttl time.Duration, policy string) (*Cache, error) {
	p, err := NewPolicy(policy, capacity)
	if err != nil {
		return nil, err
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		policy:   p,
		items:    make(map[string]*entry),
		flights:  make(map[string]*flight),
		now:      time.Now,
	}, nil
}

// SetClock replaces the cache's time source; tests use it to drive TTL
// expiry deterministically.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// lookupLocked returns the live cached value for key, expiring it first if
// its TTL elapsed. Callers hold c.mu.
func (c *Cache) lookupLocked(key string) (any, bool) {
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	if c.ttl > 0 && c.now().Sub(e.storedAt) >= c.ttl {
		delete(c.items, key)
		c.policy.Forget(key)
		c.expirations++
		return nil, false
	}
	c.policy.Hit(key)
	return e.value, true
}

// storeLocked inserts (or refreshes) key, evicting the policy's victim when
// the insertion overflows capacity. Callers hold c.mu.
func (c *Cache) storeLocked(key string, value any) {
	if c.capacity <= 0 {
		return
	}
	if e, ok := c.items[key]; ok {
		e.value = value
		e.storedAt = c.now()
		c.policy.Hit(key)
		return
	}
	if victim := c.policy.Add(key); victim != "" {
		delete(c.items, victim)
		c.evictions++
	}
	c.items[key] = &entry{value: value, storedAt: c.now()}
}

// Do returns the result for key: from the store on a hit, by joining an
// identical in-flight computation when one exists, and otherwise by running
// compute in the caller's goroutine. compute returns (value, cacheable, err);
// the value is stored only when err is nil and cacheable is true (the
// serving layer marks deadline-truncated best-so-far results uncacheable so
// a full-quality solve can replace them). Followers give up when their ctx
// is done — the leader's computation is unaffected, so nothing leaks.
//
// The return flags: hit reports a store hit, shared reports the value came
// from another caller's computation.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, bool, error)) (value any, hit, shared bool, err error) {
	c.mu.Lock()
	if v, ok := c.lookupLocked(key); ok {
		c.hits++
		c.mu.Unlock()
		return v, true, false, nil
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.value, false, true, f.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// Resolve the flight even if compute panics, so followers never hang.
	completed := false
	defer func() {
		if !completed {
			c.finish(key, f, nil, false, context.Canceled)
		}
	}()
	v, cacheable, cerr := compute()
	completed = true
	c.finish(key, f, v, cacheable, cerr)
	return v, false, false, cerr
}

// finish publishes a flight's outcome, stores cacheable successes, and wakes
// the followers.
func (c *Cache) finish(key string, f *flight, value any, cacheable bool, err error) {
	c.mu.Lock()
	if err == nil && cacheable {
		c.storeLocked(key, value)
	}
	delete(c.flights, key)
	c.mu.Unlock()
	f.value, f.err = value, err
	close(f.done)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Policy:      c.policy.Name(),
		Hits:        c.hits,
		Misses:      c.misses,
		Coalesced:   c.coalesced,
		Evictions:   c.evictions,
		Expirations: c.expirations,
		Entries:     len(c.items),
		InFlight:    len(c.flights),
	}
}
