package cache

import (
	"fmt"
	"math"
	"testing"
)

// policyTrace replays an access trace against a policy the way the Cache
// drives it — Hit on resident keys, Add on absent ones — and records, per
// access, whether it hit and what (if anything) was evicted. resident
// mirrors the Cache's items map.
type policyTrace struct {
	p        Policy
	resident map[string]bool
}

func newPolicyTrace(name string, capacity int, t *testing.T) *policyTrace {
	t.Helper()
	p, err := NewPolicy(name, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return &policyTrace{p: p, resident: map[string]bool{}}
}

// access touches one key and returns (hit, evicted).
func (tr *policyTrace) access(key string) (bool, string) {
	if tr.resident[key] {
		tr.p.Hit(key)
		return true, ""
	}
	evicted := tr.p.Add(key)
	if evicted != "" {
		delete(tr.resident, evicted)
	}
	tr.resident[key] = true
	return false, evicted
}

// step is one recorded trace event: the key accessed, whether it must hit,
// and the eviction it must trigger ("" = none).
type step struct {
	key     string
	hit     bool
	evicted string
}

// runTrace replays steps and fails on the first divergence from the record.
func runTrace(t *testing.T, name string, capacity int, steps []step) {
	t.Helper()
	tr := newPolicyTrace(name, capacity, t)
	for i, s := range steps {
		hit, evicted := tr.access(s.key)
		if hit != s.hit || evicted != s.evicted {
			t.Fatalf("%s step %d (%q): got hit=%v evicted=%q, want hit=%v evicted=%q",
				name, i, s.key, hit, evicted, s.hit, s.evicted)
		}
		if tr.p.Len() != len(tr.resident) {
			t.Fatalf("%s step %d: policy.Len()=%d, resident=%d", name, i, tr.p.Len(), len(tr.resident))
		}
		if tr.p.Len() > capacity {
			t.Fatalf("%s step %d: %d residents exceed capacity %d", name, i, tr.p.Len(), capacity)
		}
	}
}

// TestLRUEvictionOrderTrace pins the LRU reference behaviour: the victim is
// always the least recently touched key, and a hit refreshes recency.
func TestLRUEvictionOrderTrace(t *testing.T) {
	runTrace(t, PolicyLRU, 2, []step{
		{"A", false, ""},
		{"B", false, ""},
		{"A", true, ""},   // refresh A; B is now LRU
		{"C", false, "B"}, /* LRU victim */
		{"A", true, ""},
		{"B", false, "C"}, // C never re-touched -> victim
		{"B", true, ""},
		{"D", false, "A"},
	})
}

// TestClockEvictionOrderTrace pins the clock (Compact-CAR-style) reference
// behaviour on a hand-derived trace at capacity 2: a referenced entry is
// promoted to the frequency ring instead of evicted, the unreferenced
// recency entry is the victim, and a ghost re-hit re-enters the frequency
// ring directly.
func TestClockEvictionOrderTrace(t *testing.T) {
	runTrace(t, PolicyClock, 2, []step{
		{"A", false, ""}, // t1=[A]
		{"B", false, ""}, // t1=[A B]
		{"A", true, ""},  // ref(A)=1
		// Full. Sweep: A has its bit set -> promoted to t2; B's bit is clear
		// -> evicted into ghost b1. C admitted to t1.
		{"C", false, "B"},
		// Full again. Sweep: C's bit clear -> evicted to b1. B is a b1 ghost
		// hit: it re-enters straight into the frequency ring t2.
		{"B", false, "C"},
		{"A", true, ""}, // A survived both evictions in t2
		{"B", true, ""},
	})
}

// TestClockScanResistance is the behavioural difference that motivates the
// policy: a hot working set with its reference bits set survives a one-shot
// scan of cold keys under clock, while pure LRU flushes it entirely.
func TestClockScanResistance(t *testing.T) {
	const capacity = 8
	hot := make([]string, capacity/2)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
	}
	survivors := func(name string) int {
		tr := newPolicyTrace(name, capacity, t)
		for _, k := range hot {
			tr.access(k)
		}
		for _, k := range hot { // second round sets reference bits / refreshes
			if hit, _ := tr.access(k); !hit {
				t.Fatalf("%s: warm key %s missed", name, k)
			}
		}
		for i := 0; i < 4*capacity; i++ { // one-shot scan, no reuse
			tr.access(fmt.Sprintf("scan%d", i))
		}
		n := 0
		for _, k := range hot {
			if tr.resident[k] {
				n++
			}
		}
		return n
	}
	lru, clock := survivors(PolicyLRU), survivors(PolicyClock)
	if lru != 0 {
		t.Fatalf("LRU kept %d hot keys through a 4x-capacity scan; the reference trace expects 0", lru)
	}
	if clock != len(hot) {
		t.Fatalf("clock kept %d/%d hot keys through the scan, want all (they sit referenced in t2)", clock, len(hot))
	}
}

// TestClockZipfHitRateNotWorseThanLRU replays a deterministic Zipf-ish
// trace (splitmix64 popularity draws over a working set larger than the
// cache) at low skews and checks the clock policy's hit count is at least
// LRU's — the serving-layer claim BENCH_4 measures end to end. At exactly
// uniform popularity (skew 0) no replacement policy can beat another in
// expectation — the hit ratio is pinned at capacity/working-set — so there
// the assertion allows a sub-1% one-bit-recency approximation gap; from
// skew 0.25 up the frequency ring must win outright.
func TestClockZipfHitRateNotWorseThanLRU(t *testing.T) {
	const capacity, keys, accesses = 32, 128, 8192
	for _, skew := range []float64{0, 0.25, 0.5} {
		hitsFor := func(name string) int {
			tr := newPolicyTrace(name, capacity, t)
			state := uint64(0x9e3779b97f4a7c15)
			next := func() uint64 { // splitmix64: deterministic, seedable, no math/rand
				state += 0x9e3779b97f4a7c15
				z := state
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			// Inverse-CDF Zipf over the finite key space.
			cum := make([]float64, keys)
			total := 0.0
			for k := 0; k < keys; k++ {
				total += math.Pow(float64(k+1), -skew)
				cum[k] = total
			}
			hits := 0
			for i := 0; i < accesses; i++ {
				u := float64(next()>>11) / (1 << 53) * total
				lo, hi := 0, keys-1
				for lo < hi {
					mid := (lo + hi) / 2
					if cum[mid] >= u {
						hi = mid
					} else {
						lo = mid + 1
					}
				}
				if hit, _ := tr.access(fmt.Sprintf("k%d", lo)); hit {
					hits++
				}
			}
			return hits
		}
		lru, clock := hitsFor(PolicyLRU), hitsFor(PolicyClock)
		slack := 0
		if skew == 0 {
			slack = accesses / 100
		}
		if clock < lru-slack {
			t.Errorf("skew %.2f: clock hits %d < lru hits %d (allowed slack %d)", skew, clock, lru, slack)
		}
	}
}
