package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

// improveEps is the strict-improvement margin of the repair loop's
// lexicographic (potential, band) acceptance: a swap counts as progress only
// when it moves a score by more than this. It is deliberately finer than
// fairness.Eps — the feasibility band — because improvement deltas are
// single-win quanta (1/omega_M steps) that can be orders of magnitude
// smaller than the Delta comparisons fairness.Eps absorbs.
const improveEps = 1e-15

// ErrUnrepairable reports that Make-MR-Fair could not find a pair swap that
// reduces the worst parity violation; this happens only for thresholds that
// are unsatisfiable given the group structure (e.g. a group covering all but
// one candidate).
var ErrUnrepairable = errors.New("core: Make-MR-Fair cannot reach the requested fairness thresholds")

// MakeMRFair implements the paper's Make-MR-Fair algorithm (Algorithm 2): it
// repairs consensus ranking r with targeted pair swaps until every target's
// FPR spread is at or below its Delta. Each iteration corrects the attribute
// with the worst violation by swapping the lowest-ranked member of its
// highest-FPR group with the highest-ranked lower member of its lowest-FPR
// group, repositioning candidates into impactful top positions so few swaps
// (and little added PD loss) are needed.
//
// The input ranking is not modified; the repaired ranking is returned.
// Fairness scores are maintained incrementally, so one swap costs O(span*q)
// where span is the position distance swapped and q the number of targets.
func MakeMRFair(r ranking.Ranking, targets []Target) (ranking.Ranking, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	for _, tg := range targets {
		if tg.Attr.N() != len(r) {
			return nil, fmt.Errorf("core: target attribute %q covers %d candidates, ranking has %d", tg.Attr.Name, tg.Attr.N(), len(r))
		}
		if tg.Delta < 0 || tg.Delta > 1 {
			return nil, fmt.Errorf("core: target %q has Delta %v outside [0,1]", tg.Attr.Name, tg.Delta)
		}
	}
	eng := newParityEngine(r, targets)
	n := len(r)
	// Worst case the algorithm flips every pair once per target
	// (paper complexity analysis); anything beyond signals an
	// unsatisfiable threshold combination.
	maxIters := n*n*(len(targets)+1) + n
	for iter := 0; ; iter++ {
		cur := eng.potential()
		if cur <= 0 {
			return eng.r, nil
		}
		if iter >= maxIters {
			return nil, fmt.Errorf("%w (gave up after %d swaps)", ErrUnrepairable, iter)
		}
		// Prefer the paper's pair for the worst target ("fewer but more
		// impactful swaps") whenever it strictly reduces the total
		// violation. A distance-d swap transfers exactly d mixed-pair wins
		// between the swapped candidates' groups under EVERY target, so the
		// post-swap violation of all targets is computable in O(sum of
		// group counts) without touching the ranking.
		k := eng.worstTarget()
		vh, vl := eng.extremeGroups(k)
		// Candidate strides, longest first: the paper's pair (lowest member
		// of the highest-FPR group against the first lowest-group member
		// below it) and the capped pair (the longest vh-above-vl pair whose
		// win transfer still lands the extreme pair inside the parity
		// band). In block-unfair rankings the paper's pair IS the long
		// stride; in well-mixed rankings it degrades to distance 1-2 while
		// the needed transfer is Theta(n^2) wins, so preferring the longer
		// stride keeps progress geometric in the remaining gap and the
		// repair near-linear on large candidate databases (Table III runs
		// n = 10^5).
		i1, j1, ok1 := eng.findSwap(k, vh, vl)
		i2, j2, ok2 := eng.findCappedSwap(k, vh, vl)
		if ok1 && ok2 && j2-i2 > j1-i1 {
			i1, j1, i2, j2 = i2, j2, i1, j1
		} else if !ok1 {
			i1, j1, ok1 = i2, j2, ok2
			ok2 = false
		}
		if ok1 && eng.potentialAfter(i1, j1) < cur-improveEps {
			eng.swap(i1, j1)
			continue
		}
		if ok2 && eng.potentialAfter(i2, j2) < cur-improveEps {
			eng.swap(i2, j2)
			continue
		}
		// Otherwise search the finest-grained candidate swaps: for every
		// target and every ordered group pair, the closest positioned pair
		// transferring wins between those groups. Accept the candidate that
		// most reduces (total violation, band excess) lexicographically.
		// Requiring a strict decrease of the violation makes the repair
		// loop immune to the cross-target ping-pong that per-target
		// acceptance allows (fixing Gender can re-break Race and vice
		// versa, forever); the band-excess tie-break drains plateaus where
		// several groups tie at the extreme FPR, so a swap that pulls one
		// of them inward counts as progress even though the spread has not
		// moved yet. The band [0.5 - delta/2, 0.5 + delta/2] is canonical:
		// the omega_M-weighted mean of group FPRs is exactly 0.5 in every
		// ranking, so parity always centres there.
		i, j, ok := eng.findBestGlobalTransfer(cur)
		if !ok {
			return nil, ErrUnrepairable
		}
		eng.swap(i, j)
	}
}

// parityEngine tracks the FPR spread of every target incrementally across
// pair swaps of a working ranking. Since PR 6 it is a thin coordinator over
// fairness.Tracker instances — one per target plus one for the joint
// (cross-product) grouping — which maintain the win counters and per-group
// sorted position lists that make findSwap, findCappedSwap, and the
// global-transfer candidate enumeration incremental instead of O(n·g)
// rescans per repair iteration.
type parityEngine struct {
	r    ranking.Ranking
	pos  []int
	tgts []Target
	// trk[k] is target k's incremental fairness state.
	trk []*fairness.Tracker
	// wins[k][v] = mixed pairs currently won by group v of target k; live
	// views into trk[k]'s counters, kept for the O(groups) preview loops
	// (spreadAfterTransfer, bandAfter) and the parity property tests.
	wins [][]int
	// omegaM[k][v] = total mixed pairs of group v (0 for empty/universal).
	omegaM [][]int
	// joint tracks the joint (cross-product) grouping over all target
	// attributes; swap candidates are enumerated between joint groups
	// because they subsume every target's own group pairs while offering
	// the finest-grained moves (e.g. a cross-gender swap within one race).
	// nil when the occupied combination count exceeds maxJointGroups.
	joint *fairness.Tracker
	// jointOf[c] is candidate c's joint group; nil exactly when joint is.
	jointOf []int
	jointG  int
}

// maxJointGroups caps the joint candidate-generation structure; beyond it
// the per-target group tables are used instead.
const maxJointGroups = 512

func newParityEngine(r ranking.Ranking, targets []Target) *parityEngine {
	eng := &parityEngine{
		r:      r.Clone(),
		pos:    r.Positions(),
		tgts:   targets,
		trk:    make([]*fairness.Tracker, len(targets)),
		wins:   make([][]int, len(targets)),
		omegaM: make([][]int, len(targets)),
	}
	for k, tg := range targets {
		eng.trk[k] = fairness.NewTracker(eng.r, tg.Attr)
		eng.wins[k] = eng.trk[k].Wins()
		g := tg.Attr.DomainSize()
		eng.omegaM[k] = make([]int, g)
		for v := 0; v < g; v++ {
			eng.omegaM[k][v] = eng.trk[k].OmegaM(v)
		}
	}
	eng.buildJoint()
	return eng
}

// buildJoint indexes the occupied combinations of all target attributes.
func (eng *parityEngine) buildJoint() {
	n := len(eng.r)
	if len(eng.tgts) == 0 {
		return
	}
	joint := make([]int, n)
	index := map[int]int{}
	for c := 0; c < n; c++ {
		key := 0
		for _, tg := range eng.tgts {
			key = key*tg.Attr.DomainSize() + tg.Attr.Of[c]
		}
		id, ok := index[key]
		if !ok {
			id = len(index)
			if id >= maxJointGroups {
				return // too many combinations; keep jointOf nil
			}
			index[key] = id
		}
		joint[c] = id
	}
	eng.jointOf = joint
	eng.jointG = len(index)
	eng.joint = fairness.NewGroupTracker(eng.r, joint, eng.jointG)
}

// fpr returns the current FPR of group v under target k (0.5 for groups with
// no mixed pairs, mirroring the fairness package).
func (eng *parityEngine) fpr(k, v int) float64 {
	return eng.trk[k].FPR(v)
}

// spread returns the current ARP of target k.
func (eng *parityEngine) spread(k int) float64 {
	return eng.trk[k].Spread()
}

// worstTarget returns the index of the violated target with the largest
// spread, or -1 when every target is satisfied.
func (eng *parityEngine) worstTarget() int {
	worst, idx := 0.0, -1
	for k, tg := range eng.tgts {
		s := eng.spread(k)
		if s > tg.Delta+fairness.Eps && s > worst {
			worst, idx = s, k
		}
	}
	return idx
}

// extremeGroups returns the group values with the highest and lowest FPR for
// target k (ties break to the lower value index, deterministic).
func (eng *parityEngine) extremeGroups(k int) (vh, vl int) {
	g := eng.tgts[k].Attr.DomainSize()
	hi, lo := -1.0, 2.0
	for v := 0; v < g; v++ {
		f := eng.fpr(k, v)
		if f > hi {
			hi, vh = f, v
		}
		if f < lo {
			lo, vl = f, v
		}
	}
	return vh, vl
}

// findSwap locates the positions (i above, j below) to exchange per the
// paper's policy: the lowest-ranked member of the highest-FPR group that
// still favours some member of the lowest-FPR group, paired with the highest
// such Glowest member below it (the first unfavored Glowest candidate among
// its ordered mixed pairs). When the lowest Ghighest member has no Glowest
// candidate below it, the anchor moves up through Ghighest (paper Algorithm
// 2's "next lowest xi" clause). Two binary searches on the tracker's sorted
// position lists find the pair in O(log n) — the historical bottom-up scan's
// answer is exactly "the largest vh position below some vl member, paired
// with the first vl position after it". ok is false only when every Glowest
// member is ranked above every Ghighest member, in which case no corrective
// swap exists.
func (eng *parityEngine) findSwap(k, vh, vl int) (i, j int, ok bool) {
	ph := eng.trk[k].Positions(vh)
	pl := eng.trk[k].Positions(vl)
	if len(ph) == 0 || len(pl) == 0 {
		return 0, 0, false
	}
	// Largest vh position above the bottom-most vl member.
	hi := sort.SearchInts(ph, pl[len(pl)-1])
	if hi == 0 {
		return 0, 0, false
	}
	i = ph[hi-1]
	j = pl[sort.SearchInts(pl, i+1)]
	return i, j, true
}

// potential returns the total violation across all targets:
// sum of max(0, spread_k - delta_k). Zero means every target is satisfied.
func (eng *parityEngine) potential() float64 {
	p := 0.0
	for k, tg := range eng.tgts {
		if s := eng.spread(k); s > tg.Delta+fairness.Eps {
			p += s - tg.Delta
		}
	}
	return p
}

// potentialAfter predicts the total violation after swapping the candidates
// at positions i < j. The swap transfers exactly j-i mixed-pair wins from
// the upper candidate's group to the lower candidate's group under every
// target (and nothing else changes), so no ranking mutation is needed.
func (eng *parityEngine) potentialAfter(i, j int) float64 {
	a, b := eng.r[i], eng.r[j]
	d := j - i
	p := 0.0
	for k, tg := range eng.tgts {
		s := eng.spreadAfterTransfer(k, tg.Attr.Of[a], tg.Attr.Of[b], d)
		if s > tg.Delta+fairness.Eps {
			p += s - tg.Delta
		}
	}
	return p
}

// spreadAfterTransfer computes target k's spread after moving d mixed-pair
// wins from group a to group b (a == b leaves the target unchanged).
func (eng *parityEngine) spreadAfterTransfer(k, a, b, d int) float64 {
	return eng.trk[k].SpreadAfterTransfer(a, b, d)
}

// band returns the total band excess across all targets: how far every
// group's FPR sits outside [0.5 - delta_k/2, 0.5 + delta_k/2], summed. Band
// excess 0 implies every spread is at or below its delta.
func (eng *parityEngine) band() float64 {
	b := 0.0
	for k, tg := range eng.tgts {
		for v := 0; v < tg.Attr.DomainSize(); v++ {
			b += bandExcess(eng.fpr(k, v), tg.Delta)
		}
	}
	return b
}

func bandExcess(f, delta float64) float64 {
	if over := f - (0.5 + delta/2); over > 0 {
		return over
	}
	if under := (0.5 - delta/2) - f; under > 0 {
		return under
	}
	return 0
}

// bandAfter predicts the total band excess after swapping positions i < j.
func (eng *parityEngine) bandAfter(i, j int) float64 {
	a, b := eng.r[i], eng.r[j]
	d := j - i
	total := 0.0
	for k, tg := range eng.tgts {
		va, vb := tg.Attr.Of[a], tg.Attr.Of[b]
		for v := 0; v < tg.Attr.DomainSize(); v++ {
			var f float64
			if eng.omegaM[k][v] == 0 {
				f = 0.5
			} else {
				w := eng.wins[k][v]
				if va != vb {
					if v == va {
						w -= d
					}
					if v == vb {
						w += d
					}
				}
				f = float64(w) / float64(eng.omegaM[k][v])
			}
			total += bandExcess(f, tg.Delta)
		}
	}
	return total
}

// findCappedSwap returns the vh-above-vl positioned pair with the largest
// distance d such that transferring d wins leaves the pair's FPR gap just
// below the target's Delta (satisfied, but no further — over-correcting
// wastes PD loss and undershoots requested unfairness levels in data
// generation). The tracker's maintained position lists replace the
// historical O(n) collection scan; a merge-style sweep then maximises d
// subject to the cap in O(|vh| + |vl|).
func (eng *parityEngine) findCappedSwap(k, vh, vl int) (i, j int, ok bool) {
	tg := eng.tgts[k]
	if eng.omegaM[k][vh] == 0 || eng.omegaM[k][vl] == 0 {
		return 0, 0, false
	}
	gap := eng.fpr(k, vh) - eng.fpr(k, vl)
	if gap <= tg.Delta {
		return 0, 0, false
	}
	step := 1/float64(eng.omegaM[k][vh]) + 1/float64(eng.omegaM[k][vl])
	// The smallest transfer that brings the pair gap to or below Delta;
	// larger transfers over-correct.
	dmax := int(math.Ceil((gap-tg.Delta)/step - 1e-9))
	if dmax < 1 {
		return 0, 0, false
	}
	vhPos := eng.trk[k].Positions(vh)
	vlPos := eng.trk[k].Positions(vl)
	bestD := 0
	hi := 0 // index into vhPos of the smallest position >= q-dmax
	for _, q := range vlPos {
		for hi < len(vhPos) && vhPos[hi] < q-dmax {
			hi++
		}
		if hi < len(vhPos) && vhPos[hi] < q {
			if d := q - vhPos[hi]; d > bestD {
				bestD = d
				i, j, ok = vhPos[hi], q, true
			}
		}
	}
	return i, j, ok
}

// findBestGlobalTransfer enumerates, for every target and every ordered pair
// of its groups, the closest positioned pair transferring wins between those
// groups (the finest-grained corrective swaps available), and returns the
// candidate that most reduces (total violation, band excess)
// lexicographically. cur is the current potential; ok is false when no
// candidate strictly improves, which only happens for threshold combinations
// finer than the win granularity.
// Cost is O(n * sum(g_k) + sum(g_k^2) * sum(g_k)).
func (eng *parityEngine) findBestGlobalTransfer(cur float64) (i, j int, ok bool) {
	bestP := cur
	bestB := eng.band()
	consider := func(pi, pj int) {
		p := eng.potentialAfter(pi, pj)
		if p > bestP+improveEps {
			return
		}
		b := eng.bandAfter(pi, pj)
		if p < bestP-improveEps || b < bestB-improveEps {
			bestP, bestB = p, b
			i, j, ok = pi, pj, true
		}
	}
	if eng.joint != nil {
		eng.joint.EachMinDistPair(consider)
		return i, j, ok
	}
	for k := range eng.tgts {
		eng.trk[k].EachMinDistPair(consider)
	}
	return i, j, ok
}

// findBestAdjacentSwap scans the n-1 adjacent position pairs and returns the
// one whose swap (a single-win transfer under every target) best reduces
// (total violation, band excess) lexicographically. ok is false when no
// adjacent swap improves — RepairToLevels then falls back to a
// minimum-distance transfer.
func (eng *parityEngine) findBestAdjacentSwap(cur float64) (pos int, ok bool) {
	bestP := cur
	bestB := eng.band()
	for p := 0; p+1 < len(eng.r); p++ {
		pp := eng.potentialAfter(p, p+1)
		if pp > bestP+improveEps {
			continue
		}
		b := eng.bandAfter(p, p+1)
		if pp < bestP-improveEps || b < bestB-improveEps {
			bestP, bestB = pp, b
			pos, ok = p, true
		}
	}
	return pos, ok
}

// gapAfterSwap predicts the absolute FPR gap between groups vh and vl of
// target k after swapping a vh member above a vl member at position distance
// d. Such a swap transfers exactly d mixed-pair wins from vh to vl and
// leaves every other group's wins unchanged.
func (eng *parityEngine) gapAfterSwap(k, vh, vl, d int) float64 {
	fh := eng.fpr(k, vh)
	if eng.omegaM[k][vh] != 0 {
		fh = float64(eng.wins[k][vh]-d) / float64(eng.omegaM[k][vh])
	}
	fl := eng.fpr(k, vl)
	if eng.omegaM[k][vl] != 0 {
		fl = float64(eng.wins[k][vl]+d) / float64(eng.omegaM[k][vl])
	}
	if fh < fl {
		return fl - fh
	}
	return fh - fl
}

// swap exchanges the candidates at positions i < j and updates every
// tracker. The win-transfer identity (every middle candidate loses one win
// to the riser and gains one from the faller, cancelling exactly) makes the
// counter update O(1) per tracker — the historical O(j-i) window walk per
// target computed the same net transfer term by term — leaving only the
// position-list maintenance, which touches the two swapped groups' lists.
func (eng *parityEngine) swap(i, j int) {
	if i > j {
		i, j = j, i
	}
	a, b := eng.r[i], eng.r[j] // a moves down to j, b moves up to i
	for _, t := range eng.trk {
		t.ApplySwap(i, j)
	}
	if eng.joint != nil {
		eng.joint.ApplySwap(i, j)
	}
	eng.r[i], eng.r[j] = b, a
	eng.pos[a], eng.pos[b] = j, i
}

// Ranking returns the engine's current working ranking (shared storage).
func (eng *parityEngine) Ranking() ranking.Ranking { return eng.r }
