package manirank

import (
	"context"
	"fmt"
	"strings"

	"manirank/internal/aggregate"
	"manirank/internal/core"
)

// Method identifies one consensus method in the Engine's solver registry.
// It is the first-class, parseable form of the method names every surface
// of this repo shares — the library (Engine.Solve), the manirank CLI's
// -method flag, and manirankd's "method" request field all resolve through
// ParseMethod, so the accepted sets can never drift apart.
//
// The zero Method is invalid; valid values are the Method... constants.
type Method uint8

// The registered consensus methods. MethodBorda through MethodFairKemeny
// are the paper's eight-method family (four fairness-unaware aggregators
// and their MANI-Rank fair counterparts, Sections III-B and IV); the
// remaining constants are the paper's Section IV-B comparison baselines,
// solvable through the Engine but not exposed by the CLI or the service
// (Baselines lists them; Methods lists the eight).
const (
	// MethodInvalid is the zero Method; it has no registry entry.
	MethodInvalid Method = iota
	// MethodBorda is the fairness-unaware Borda count.
	MethodBorda
	// MethodCopeland is the fairness-unaware Copeland pairwise-contest rule.
	MethodCopeland
	// MethodSchulze is the fairness-unaware Schulze strongest-path rule.
	MethodSchulze
	// MethodKemeny is fairness-unaware Kemeny: exact branch-and-bound for
	// small n, Borda-seeded iterated local search at scale.
	MethodKemeny
	// MethodFairBorda is Borda + Make-MR-Fair repair (paper Section III-B).
	MethodFairBorda
	// MethodFairCopeland is Copeland + Make-MR-Fair repair.
	MethodFairCopeland
	// MethodFairSchulze is Schulze + Make-MR-Fair repair.
	MethodFairSchulze
	// MethodFairKemeny is the paper's Algorithm 1: constrained
	// branch-and-bound for small n, constrained local search at scale.
	MethodFairKemeny
	// MethodKemenyWeighted is the paper's Kemeny-Weighted baseline: base
	// rankings weighted by fairness rank before Kemeny aggregation.
	MethodKemenyWeighted
	// MethodPickFairestPerm is the paper's Pick-Fairest-Perm baseline: the
	// base ranking with the smallest maximum parity violation.
	MethodPickFairestPerm
	// MethodCorrectFairestPerm is the paper's Correct-Fairest-Perm baseline:
	// Pick-Fairest-Perm followed by Make-MR-Fair repair.
	MethodCorrectFairestPerm
)

// methodEntry is one row of the solver registry: the method's canonical
// name, its input requirements, and the solve routine over the Engine's
// shared state. partial reports whether a done context truncated the search
// (only the Kemeny-based engines are cancellable; the polynomial methods
// always run to completion).
type methodEntry struct {
	method   Method
	name     string
	fair     bool // enforces MANI-Rank targets (Make-MR-Fair or constrained search)
	baseline bool // Section IV-B comparison baseline, absent from Methods()
	profile  bool // consumes the base rankings themselves, not just W
	table    bool // consumes the candidate table beyond the audit
	solve    func(ctx context.Context, e *Engine, targets []Target, kopts KemenyOptions) (Ranking, bool, error)
}

// registry is the single dispatch table behind every surface: Engine.Solve
// resolves methods here, and Methods/Baselines/ParseMethod derive the
// public method sets from it, so adding a row is the whole integration.
// Order is the documented presentation order.
var registry = []methodEntry{
	{method: MethodBorda, name: "borda",
		solve: func(_ context.Context, e *Engine, _ []Target, _ KemenyOptions) (Ranking, bool, error) {
			return aggregate.BordaW(e.w), false, nil
		}},
	{method: MethodCopeland, name: "copeland",
		solve: func(_ context.Context, e *Engine, _ []Target, _ KemenyOptions) (Ranking, bool, error) {
			return aggregate.Copeland(e.w), false, nil
		}},
	{method: MethodSchulze, name: "schulze",
		solve: func(_ context.Context, e *Engine, _ []Target, _ KemenyOptions) (Ranking, bool, error) {
			return aggregate.Schulze(e.w), false, nil
		}},
	{method: MethodKemeny, name: "kemeny",
		solve: func(ctx context.Context, e *Engine, _ []Target, kopts KemenyOptions) (Ranking, bool, error) {
			r := aggregate.KemenyCtx(ctx, e.w, kopts)
			return r, ctx.Err() != nil, nil
		}},
	{method: MethodFairBorda, name: "fair-borda", fair: true,
		solve: func(_ context.Context, e *Engine, targets []Target, _ KemenyOptions) (Ranking, bool, error) {
			r, err := core.FairBordaW(e.w, targets)
			return r, false, err
		}},
	{method: MethodFairCopeland, name: "fair-copeland", fair: true,
		solve: func(_ context.Context, e *Engine, targets []Target, _ KemenyOptions) (Ranking, bool, error) {
			r, err := core.FairCopelandW(e.w, targets)
			return r, false, err
		}},
	{method: MethodFairSchulze, name: "fair-schulze", fair: true,
		solve: func(_ context.Context, e *Engine, targets []Target, _ KemenyOptions) (Ranking, bool, error) {
			r, err := core.FairSchulzeW(e.w, targets)
			return r, false, err
		}},
	{method: MethodFairKemeny, name: "fair-kemeny", fair: true,
		solve: func(ctx context.Context, e *Engine, targets []Target, kopts KemenyOptions) (Ranking, bool, error) {
			r, err := core.FairKemenyWCtx(ctx, e.w, targets, core.Options{Kemeny: kopts})
			return r, err == nil && ctx.Err() != nil, err
		}},
	{method: MethodKemenyWeighted, name: "kemeny-weighted", baseline: true, profile: true, table: true,
		solve: func(_ context.Context, e *Engine, _ []Target, kopts KemenyOptions) (Ranking, bool, error) {
			r, err := aggregate.KemenyWeighted(e.p, e.tab, kopts)
			return r, false, err
		}},
	{method: MethodPickFairestPerm, name: "pick-fairest-perm", baseline: true, profile: true, table: true,
		solve: func(_ context.Context, e *Engine, _ []Target, _ KemenyOptions) (Ranking, bool, error) {
			r, err := aggregate.PickFairestPerm(e.p, e.tab)
			return r, false, err
		}},
	{method: MethodCorrectFairestPerm, name: "correct-fairest-perm", fair: true, baseline: true, profile: true,
		solve: func(_ context.Context, e *Engine, targets []Target, _ KemenyOptions) (Ranking, bool, error) {
			r, err := core.CorrectFairestPerm(e.p, targets)
			return r, false, err
		}},
}

// entryOf resolves a Method to its registry row.
func entryOf(m Method) (*methodEntry, bool) {
	for i := range registry {
		if registry[i].method == m {
			return &registry[i], true
		}
	}
	return nil, false
}

// Methods returns the paper's eight-method family in presentation order —
// the methods the manirank CLI and the manirankd service accept. The slice
// is freshly allocated; callers may reorder it.
func Methods() []Method {
	ms := make([]Method, 0, len(registry))
	for _, e := range registry {
		if !e.baseline {
			ms = append(ms, e.method)
		}
	}
	return ms
}

// Baselines returns the paper's Section IV-B comparison baselines —
// registered Engine methods that are not part of the CLI/service surface.
func Baselines() []Method {
	ms := make([]Method, 0, 3)
	for _, e := range registry {
		if e.baseline {
			ms = append(ms, e.method)
		}
	}
	return ms
}

// AllMethods returns every registered method: Methods() followed by
// Baselines().
func AllMethods() []Method {
	ms := make([]Method, len(registry))
	for i, e := range registry {
		ms[i] = e.method
	}
	return ms
}

// MethodNames returns the canonical names of Methods(), ready for CLI usage
// strings and service documentation.
func MethodNames() []string {
	ms := Methods()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.String()
	}
	return names
}

// ParseMethod resolves a method name (case-insensitive, e.g. "fair-kemeny")
// to its Method. It accepts every registered method, baselines included; use
// Method.Baseline to restrict a surface to the canonical eight. The error
// lists the accepted names.
func ParseMethod(s string) (Method, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, e := range registry {
		if e.name == name {
			return e.method, nil
		}
	}
	return MethodInvalid, fmt.Errorf("manirank: unknown method %q (want one of %s)",
		s, strings.Join(MethodNames(), ", "))
}

// String returns the method's canonical name ("fair-kemeny"), the exact
// string ParseMethod accepts; the zero and any unregistered Method render
// as "invalid".
func (m Method) String() string {
	if e, ok := entryOf(m); ok {
		return e.name
	}
	return "invalid"
}

// IsFair reports whether the method enforces MANI-Rank fairness targets
// (the fair-* family plus Correct-Fairest-Perm).
func (m Method) IsFair() bool {
	e, ok := entryOf(m)
	return ok && e.fair
}

// Baseline reports whether the method is a Section IV-B comparison baseline
// — solvable through the Engine but excluded from Methods() and therefore
// from the CLI and service surfaces.
func (m Method) Baseline() bool {
	e, ok := entryOf(m)
	return ok && e.baseline
}

// RequiresProfile reports whether the method consumes the base rankings
// themselves (beyond the precedence matrix), so an Engine constructed with
// NewEngineW cannot solve it.
func (m Method) RequiresProfile() bool {
	e, ok := entryOf(m)
	return ok && e.profile
}

// RequiresTable reports whether the method consumes the candidate table as
// a solver input (not merely for the result audit).
func (m Method) RequiresTable() bool {
	e, ok := entryOf(m)
	return ok && e.table
}
