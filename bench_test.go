// Benchmarks regenerating every table and figure of the MANI-Rank paper
// (one Benchmark per artifact, running the experiment harness in its quick
// configuration) plus ablation benches for the design choices DESIGN.md
// calls out. Run `go run ./cmd/experiments <id>` for full paper-scale rows;
// EXPERIMENTS.md records paper-vs-measured values.
package manirank_test

import (
	"context"
	"io"
	"math/rand"
	"sort"
	"testing"

	"manirank"
	"manirank/internal/aggregate"
	"manirank/internal/core"
	"manirank/internal/experiments"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 1, Out: io.Discard, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets regenerates paper Table I (dataset fairness).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2Admissions regenerates paper Figure 2 (admissions example).
func BenchmarkFig2Admissions(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ConstraintVariants regenerates paper Figure 3 (attribute-only
// vs intersection-only vs MANI-Rank constraint sets).
func BenchmarkFig3ConstraintVariants(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Methods regenerates paper Figure 4 (8-method comparison).
func BenchmarkFig4Methods(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5PoF regenerates paper Figure 5 (price of fairness).
func BenchmarkFig5PoF(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6RankerScale regenerates paper Figure 6 (runtime vs |R|).
func BenchmarkFig6RankerScale(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CandidateScale regenerates paper Figure 7 (runtime vs n).
func BenchmarkFig7CandidateScale(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable2FairBordaRankers regenerates paper Table II (Fair-Borda
// ranker scalability).
func BenchmarkTable2FairBordaRankers(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3FairBordaCandidates regenerates paper Table III (Fair-Borda
// candidate scalability).
func BenchmarkTable3FairBordaCandidates(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4ExamStudy regenerates paper Table IV (merit scholarships).
func BenchmarkTable4ExamStudy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5CSRankings regenerates paper Table V (CSRankings).
func BenchmarkTable5CSRankings(b *testing.B) { benchExperiment(b, "table5") }

// --- Ablation benches (DESIGN.md Section 5) ---

// ablationSetup builds a biased consensus problem for repair ablations.
func ablationSetup(b *testing.B, n int) (ranking.Ranking, []core.Target) {
	b.Helper()
	tab, err := unfairgen.PaperTable(n)
	if err != nil {
		b.Fatal(err)
	}
	return unfairgen.BlockRanking(tab), core.Targets(tab, 0.1)
}

// BenchmarkAblationSwapPolicyImpactful measures the paper's repair policy
// ("fewer but more impactful swaps"); compare with the FineGrained variant
// below — the impactful policy needs far fewer swaps for the same Delta.
func BenchmarkAblationSwapPolicyImpactful(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		_, s, err := core.MakeMRFairWithPolicy(r, targets, core.PolicyImpactful)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// BenchmarkAblationSwapPolicyFineGrained always takes the smallest
// available corrective step.
func BenchmarkAblationSwapPolicyFineGrained(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		_, s, err := core.MakeMRFairWithPolicy(r, targets, core.PolicyFineGrained)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// kemenyBenchInstance builds a mid-size Kemeny instance with a moderate
// consensus level, hard enough that pruning matters.
func kemenyBenchInstance(b *testing.B, n int) *ranking.Precedence {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	modal := ranking.Random(n, rng)
	p := mallows.MustNew(modal, 0.15).SampleProfile(9, rng)
	return ranking.MustPrecedence(p)
}

// BenchmarkAblationKemenyBBSeeded measures exact branch-and-bound seeded
// with a local-search incumbent; compare with the unseeded variant — the
// incumbent prunes most of the tree.
func BenchmarkAblationKemenyBBSeeded(b *testing.B) {
	w := kemenyBenchInstance(b, 12)
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		seed := kemeny.LocalSearch(w, kemeny.BordaFromPrecedence(w))
		res := kemeny.BranchAndBound(w, nil, seed, 0)
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkAblationKemenyBBUnseeded runs the same search with no incumbent.
func BenchmarkAblationKemenyBBUnseeded(b *testing.B) {
	w := kemenyBenchInstance(b, 12)
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		res := kemeny.BranchAndBound(w, nil, nil, 0)
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkAblationILSBordaInit measures iterated local search seeded from
// the Borda order; compare with the random-start variant — the Borda seed
// starts near the optimum basin.
func BenchmarkAblationILSBordaInit(b *testing.B) {
	w := kemenyBenchInstance(b, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.LocalSearch(w, kemeny.BordaFromPrecedence(w))
	}
}

// BenchmarkAblationILSRandomInit starts local search from a random ranking.
func BenchmarkAblationILSRandomInit(b *testing.B) {
	w := kemenyBenchInstance(b, 90)
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.LocalSearch(w, ranking.Random(90, rng))
	}
}

// --- Core operation micro-benches ---

// BenchmarkPrecedenceMatrix100x150 builds the Figure 3/4 workload's
// precedence matrix (90 candidates would match the paper; 100 rounds up).
func BenchmarkPrecedenceMatrix100x150(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := make(ranking.Profile, 150)
	for i := range p {
		p[i] = ranking.Random(100, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranking.MustPrecedence(p)
	}
}

// BenchmarkMakeMRFair90 measures one full repair of a maximally unfair
// 90-candidate ranking to Delta = 0.1.
func BenchmarkMakeMRFair90(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MakeMRFair(r, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMallowsSample90 measures one exact RIM Mallows draw at the
// paper's figure scale through the zero-allocation sampler path (profile
// generation draws 20k+ of these in fig6). Steady state must report
// 0 allocs/op.
func BenchmarkMallowsSample90(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	s := mallows.MustNew(ranking.Random(90, rng), 0.6).Sampler()
	dst := make(ranking.Ranking, 90)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(dst, rng)
	}
}

// BenchmarkPlackettLuce100k measures one approximate draw at Table III
// scale through the zero-allocation sampler path. Steady state must report
// 0 allocs/op.
func BenchmarkPlackettLuce100k(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	s := mallows.MustNewPlackettLuce(ranking.New(100_000), 0.6).Sampler()
	dst := make(ranking.Ranking, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(dst, rng)
	}
}

// --- Engine API v2 benches (DESIGN.md Section 8) ---

// engineBenchInstance builds the multi-method workload the Engine is
// designed for: a serving-style profile — many rankers, so the O(n²·m)
// precedence construction is a real fraction of the work — plus the
// MANI-Rank targets the fair methods repair toward. Restarts are disabled
// (single-descent heuristics) on both sides so the comparison isolates the
// dispatch architecture, not the search budget.
func engineBenchInstance(b *testing.B) (manirank.Profile, []manirank.Target) {
	b.Helper()
	tab, err := unfairgen.PaperTable(90)
	if err != nil {
		b.Fatal(err)
	}
	modal := unfairgen.BlockRanking(tab)
	rng := rand.New(rand.NewSource(15))
	p := mallows.MustNew(modal, 0.5).SampleProfile(600, rng)
	return p, core.Targets(tab, 0.2)
}

// BenchmarkEngineSolveAll measures the shared-matrix path: one Engine per
// iteration (a single O(n²·m) precedence construction) serving all eight
// canonical methods through the registry. Compare with
// BenchmarkPerCallSolveAll — the gap is the construction work the Engine
// amortises across a multi-method workload (BENCH_5.json records the
// pair). No table is attached, so neither side audits; the Engine side's
// only extra work over the legacy calls is the Result's O(n²) PD-loss
// read-off (µs-scale at n=90, in the noise of the ms-scale solves).
func BenchmarkEngineSolveAll(b *testing.B) {
	p, targets := engineBenchInstance(b)
	ctx := context.Background()
	opts := []manirank.SolveOption{
		manirank.WithSolverWorkers(1),
		manirank.WithPerturbations(-1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := manirank.NewEngine(p, manirank.WithPrecedenceWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range manirank.Methods() {
			if _, err := eng.Solve(ctx, m, targets, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPerCallSolveAll runs the same eight-method workload through the
// deprecated per-call entry points, each building its own precedence
// matrix from the profile (Borda's profile path needs none) — the pattern
// Engine API v2 replaces.
func BenchmarkPerCallSolveAll(b *testing.B) {
	p, targets := engineBenchInstance(b)
	kopts := manirank.KemenyOptions{Heuristic: kemeny.Options{Workers: 1, Perturbations: -1}}
	// Pin matrix construction sequential on both sides of the comparison
	// (the Engine side pins via WithPrecedenceWorkers).
	prev := ranking.DefaultWorkers
	ranking.DefaultWorkers = 1
	defer func() { ranking.DefaultWorkers = prev }()
	calls := []func() (manirank.Ranking, error){
		func() (manirank.Ranking, error) { return manirank.Borda(p) },
		func() (manirank.Ranking, error) { return manirank.Copeland(p) },
		func() (manirank.Ranking, error) { return manirank.Schulze(p) },
		func() (manirank.Ranking, error) { return manirank.Kemeny(p, kopts) },
		func() (manirank.Ranking, error) { return manirank.FairBorda(p, targets) },
		func() (manirank.Ranking, error) { return manirank.FairCopeland(p, targets) },
		func() (manirank.Ranking, error) { return manirank.FairSchulze(p, targets) },
		func() (manirank.Ranking, error) {
			return manirank.FairKemeny(p, targets, manirank.Options{Kemeny: kopts})
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, call := range calls {
			if _, err := call(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// restartBenchInstance builds the restart-dominated Kemeny workload: a noisy
// profile large enough that the perturbation restarts, not the Borda seed
// descent, carry most of the work.
func restartBenchInstance(b *testing.B) (*ranking.Precedence, kemeny.Options) {
	b.Helper()
	rng := rand.New(rand.NewSource(14))
	modal := ranking.Random(220, rng)
	p := mallows.MustNew(modal, 0.05).SampleProfile(11, rng)
	return ranking.MustPrecedence(p), kemeny.Options{Seed: 14, Perturbations: 24, Strength: 8}
}

// benchHeuristicRestarts runs the sharded-restart Kemeny heuristic at a
// fixed pool width. Output is bitwise identical across widths, so W1 vs W4
// is a pure wall-clock comparison (the ~2x+ speedup needs 4+ hardware
// threads; single-CPU runners serialise the shards).
func benchHeuristicRestarts(b *testing.B, workers int) {
	w, opts := restartBenchInstance(b)
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.Heuristic(w, opts)
	}
}

// BenchmarkHeuristicRestartsW1 runs the restarts sequentially.
func BenchmarkHeuristicRestartsW1(b *testing.B) { benchHeuristicRestarts(b, 1) }

// BenchmarkHeuristicRestartsW4 shards the restarts over 4 workers.
func BenchmarkHeuristicRestartsW4(b *testing.B) { benchHeuristicRestarts(b, 4) }

// --- Incremental fairness engine benches (PR 6, DESIGN.md Section 9) ---

// skipIfShort gates the fairness-scale macro-benchmarks (seconds to minutes
// per iteration — the full-audit baseline alone runs ~35 minutes) out of the
// CI bench-smoke stage, which passes -short; scripts/bench.sh runs them for
// real when recording BENCH_<n>.json.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("macro benchmark; run via scripts/bench.sh")
	}
}

// fairScaleInstance builds the constrained-descent workload at candidate
// scale n: a concentrated Plackett-Luce profile (theta 3.0 — strong pairwise
// margins, so the descent converges in a bounded number of passes instead of
// chasing noise) over the paper's attribute shape, MANI-Rank targets at
// Delta 0.1, and a feasible start (Borda seed repaired by Make-MR-Fair) —
// exactly the state Fair-Kemeny hands to its seed descent. The matrix, constraints, and start are all built in setup so the
// timed region is the descent alone.
func fairScaleInstance(b *testing.B, n, m int) (*ranking.Precedence, []kemeny.Constraint, ranking.Ranking) {
	b.Helper()
	tab, err := unfairgen.PaperTable(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	p := mallows.MustNewPlackettLuce(unfairgen.BlockRanking(tab), 3.0).SampleProfile(m, rng)
	w := ranking.MustPrecedence(p)
	targets := core.Targets(tab, 0.1)
	start, err := core.MakeMRFair(kemeny.BordaFromPrecedence(w), targets)
	if err != nil {
		b.Fatal(err)
	}
	cons := make([]kemeny.Constraint, len(targets))
	for i, tg := range targets {
		cons[i] = kemeny.Constraint{Attr: tg.Attr, Delta: tg.Delta}
	}
	return w, cons, start
}

// BenchmarkConstrainedDescent5k measures the feasibility-preserving descent
// at n = 5000 through the incremental parity auditor (O(groups log n) per
// trial move). Compare with BenchmarkConstrainedDescentFullAudit5k — the
// identical descent paying the pre-PR-6 full fairness recompute per trial —
// for the speedup BENCH_6.json tracks.
func BenchmarkConstrainedDescent5k(b *testing.B) {
	skipIfShort(b)
	w, cons, start := fairScaleInstance(b, 4995, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.ConstrainedLocalSearch(w, cons, start)
	}
}

// fullAuditDescent is the pre-PR-6 constrained descent expressed through
// exported APIs only: every trial move mutates the ranking, pays a full
// kemeny.Feasible audit (O(n) per constraint), and undoes on infeasibility.
// It exists as the benchmark baseline for the incremental auditor. Candidate
// ordering uses the same stable ascending-delta sequence as the live engine
// (sort.SliceStable here, a lazy heap there), so the benchmark pair isolates
// the audit cost, not the sort.
func fullAuditDescent(w *ranking.Precedence, cons []kemeny.Constraint, start ranking.Ranking) ranking.Ranking {
	r := start.Clone()
	n := len(r)
	type clsMove struct{ pos, delta int }
	var moves []clsMove
	for improved := true; improved; {
		improved = false
		for i := 0; i < n; i++ {
			c := r[i]
			cands := moves[:0]
			delta := 0
			for j := i - 1; j >= 0; j-- {
				y := r[j]
				delta += w.At(c, y) - w.At(y, c)
				if delta < 0 {
					cands = append(cands, clsMove{j, delta})
				}
			}
			delta = 0
			for j := i + 1; j < n; j++ {
				y := r[j]
				delta -= w.At(c, y) - w.At(y, c)
				if delta < 0 {
					cands = append(cands, clsMove{j, delta})
				}
			}
			moves = cands[:0]
			sort.SliceStable(cands, func(a, b int) bool { return cands[a].delta < cands[b].delta })
			for _, mv := range cands {
				r.MoveTo(i, mv.pos)
				if kemeny.Feasible(r, cons) {
					improved = true
					break
				}
				r.MoveTo(mv.pos, i) // undo
			}
		}
	}
	return r
}

// BenchmarkConstrainedDescentFullAudit5k is the full-recompute baseline for
// BenchmarkConstrainedDescent5k (and sanity-checks that both descents land
// on the same ranking).
func BenchmarkConstrainedDescentFullAudit5k(b *testing.B) {
	skipIfShort(b)
	w, cons, start := fairScaleInstance(b, 4995, 8)
	want := kemeny.ConstrainedLocalSearch(w, cons, start)
	b.ResetTimer()
	var got ranking.Ranking
	for i := 0; i < b.N; i++ {
		got = fullAuditDescent(w, cons, start)
	}
	b.StopTimer()
	if !got.Equal(want) {
		b.Fatal("full-audit baseline diverged from incremental descent")
	}
}

// BenchmarkMakeMRFair5k measures one full repair of a maximally unfair
// 5000-candidate block ranking to Delta = 0.1 (paper Table III scale).
func BenchmarkMakeMRFair5k(b *testing.B) {
	skipIfShort(b)
	r, targets := ablationSetup(b, 4995)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MakeMRFair(r, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMakeMRFair10k is BenchmarkMakeMRFair5k at n = 10000.
func BenchmarkMakeMRFair10k(b *testing.B) {
	skipIfShort(b)
	r, targets := ablationSetup(b, 9990)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MakeMRFair(r, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFairKemeny measures the full Fair-Kemeny solve (unconstrained
// heuristic, Make-MR-Fair repair, constrained seed descent; restarts
// disabled so the cost is one descent, matching the scalability figures'
// single-shot runs) on a prebuilt matrix at candidate scale n.
func benchFairKemeny(b *testing.B, n int) {
	b.Helper()
	skipIfShort(b)
	tab, err := unfairgen.PaperTable(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	p := mallows.MustNewPlackettLuce(unfairgen.BlockRanking(tab), 3.0).SampleProfile(8, rng)
	w := ranking.MustPrecedence(p)
	targets := core.Targets(tab, 0.1)
	opts := core.Options{Kemeny: aggregate.KemenyOptions{Heuristic: kemeny.Options{Workers: 1, Perturbations: -1}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FairKemenyW(w, targets, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFairKemeny5k runs Fair-Kemeny at n = 5000.
func BenchmarkFairKemeny5k(b *testing.B) { benchFairKemeny(b, 4995) }

// BenchmarkFairKemeny10k runs Fair-Kemeny at n = 10000.
func BenchmarkFairKemeny10k(b *testing.B) { benchFairKemeny(b, 9990) }
