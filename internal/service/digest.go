package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"
	"strings"
)

// digestVersion namespaces both digests; bump it whenever a canonical
// serialisation below or the solvers' deterministic behaviour changes, so
// stale cached results (or matrices) can never be served across an upgrade.
// v2 split the profile sub-digest out of the request digest for the
// precedence-matrix tier.
const digestVersion = "manirankd/v2"

// Digest returns the full request digest of req (see Digests).
func Digest(req *AggregateRequest) string {
	full, _ := Digests(req)
	return full
}

// Digests returns the two canonical cache keys of an aggregate request.
//
// The profile sub-digest covers exactly the base rankings — the only input
// the precedence matrix W depends on — so it keys the serving layer's
// matrix tier: any method queried over an already-seen profile shares the
// stored W regardless of solver options, thresholds, or attributes.
//
// The full digest is a SHA-256 over a fixed-order serialisation of every
// request field that influences the result — method, solver options,
// fairness thresholds (sorted by name, so Go's randomised map iteration
// order can never perturb the key), attributes, and the profile (folded in
// as the profile sub-digest, hashed once). DeadlineMillis is deliberately
// excluded: the deadline changes how long we are willing to search, not
// what the request asks for, and truncated (partial) results are never
// cached.
//
// Both digests are stable across processes and runs; two structurally equal
// requests always collide and any semantic difference separates them.
func Digests(req *AggregateRequest) (full, profile string) {
	ph := sha256.New()
	writeString(ph, digestVersion+"/profile")
	writeInt(ph, int64(len(req.Profile)))
	for _, row := range req.Profile {
		writeInts(ph, row)
	}
	profile = hex.EncodeToString(ph.Sum(nil))

	h := sha256.New()
	writeString(h, digestVersion)
	// Method names are canonicalised exactly the way manirank.ParseMethod
	// accepts them (trimmed, lowercased): a request spelling the method
	// " Kemeny " must share its cache entry — and its coalesced flight —
	// with "kemeny". For clean inputs the bytes are unchanged, so existing
	// digests are stable.
	writeString(h, strings.ToLower(strings.TrimSpace(req.Method)))

	writeFloat(h, req.Delta)
	// The intersection key is matched case-insensitively at build time, so
	// canonicalise the spelling BEFORE sorting — "Intersection" and
	// "intersection" must serialise to the same position and bytes.
	// (buildProblem rejects requests carrying both spellings at once.)
	type kv struct {
		name string
		val  float64
	}
	keys := make([]kv, 0, len(req.Thresholds))
	for k, v := range req.Thresholds {
		name := k
		if interThresholdKey(k) {
			name = "intersection"
		}
		keys = append(keys, kv{name, v})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].name < keys[j].name })
	writeInt(h, int64(len(keys)))
	for _, k := range keys {
		writeString(h, k.name)
		writeFloat(h, k.val)
	}

	o := req.Options
	writeInt(h, o.Seed)
	writeInt(h, int64(o.Perturbations))
	writeInt(h, int64(o.Strength))
	writeInt(h, int64(o.ExactThreshold))
	writeInt(h, o.MaxNodes)

	writeInt(h, int64(len(req.Attributes)))
	for _, a := range req.Attributes {
		writeString(h, a.Name)
		writeInt(h, int64(len(a.Values)))
		for _, v := range a.Values {
			writeString(h, v)
		}
		writeInts(h, a.Of)
	}

	writeString(h, profile)
	return hex.EncodeToString(h.Sum(nil)), profile
}

// writeString writes a length-prefixed string, so no concatenation of
// adjacent fields can collide with a different split of the same bytes.
func writeString(h hash.Hash, s string) {
	writeInt(h, int64(len(s)))
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeFloat(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}

func writeInts(h hash.Hash, vs []int) {
	writeInt(h, int64(len(vs)))
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	h.Write(buf)
}
