package experiments

import (
	"fmt"
	"strings"

	"manirank"
	"manirank/internal/core"
	"manirank/internal/fairness"
	"manirank/internal/unfairgen"
)

// Table1 regenerates paper Table I: the fairness metrics of the Low/Medium/
// High-Fair Mallows modal rankings (|R|=150 rankings are later drawn over 90
// candidates, 15 intersectional groups from Race(5) x Gender(3)).
func Table1(cfg Config) error {
	tab, err := unfairgen.PaperTable(90)
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Mallows Dataset\tARP_Gender\tARP_Race\tIRP")
	for _, spec := range unfairgen.TableIDatasets() {
		modal, err := unfairgen.TargetModal(tab, spec.Levels)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		rep := fairness.Audit(modal, tab)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", spec.Name, rep.ARPs[0], rep.ARPs[1], rep.IRP)
	}
	return tw.Flush()
}

// Fig3 regenerates paper Figure 3: comparing alternate group fairness
// constraint sets inside Fair-Kemeny (protected-attribute only, intersection
// only, full MANI-Rank) plus fairness-unaware Kemeny, across the three
// Table I datasets and the theta consensus sweep, at Delta = 0.1. For each
// cell it reports the consensus ranking's ARP Gender / ARP Race / IRP.
//
// Dataset x theta cells run concurrently on the Config.Workers pool; each
// cell samples its profile from its own coordinate-derived RNG.
func Fig3(cfg Config) error {
	rankers := 150
	if cfg.Quick {
		rankers = 40
	}
	approaches := []struct {
		name    string
		method  manirank.Method
		targets func(c *runCtx) []core.Target
	}{
		{"Kemeny (unaware)", manirank.MethodKemeny, func(*runCtx) []core.Target { return nil }},
		{"Attribute-only", manirank.MethodFairKemeny, func(c *runCtx) []core.Target { return core.AttributeTargets(c.tab, 0.1) }},
		{"Intersection-only", manirank.MethodFairKemeny, func(c *runCtx) []core.Target { return core.IntersectionTarget(c.tab, 0.1) }},
		{"MANI-Rank", manirank.MethodFairKemeny, func(c *runCtx) []core.Target { return core.Targets(c.tab, 0.1) }},
	}
	specs, tabs, modals, err := tableIDatasets()
	if err != nil {
		return err
	}
	cells := len(specs) * len(thetas)
	rows := make([]string, cells)
	err = runCells(cfg.workers(), cells, func(i int) error {
		di, ti := i/len(thetas), i%len(thetas)
		spec, theta := specs[di], thetas[ti]
		tab, modal := tabs[di], modals[di]
		p := sampleProfile(modal, theta, rankers, cellRNG(cfg.Seed, "fig3", di, ti))
		ctx, err := newRunCtx(p, tab, 0.1)
		if err != nil {
			return err
		}
		var b strings.Builder
		for _, ap := range approaches {
			res, err := ctx.solve(cfg, ap.method, ap.targets(ctx))
			if err != nil {
				return fmt.Errorf("experiments: fig3 %s theta=%.1f %s: %w", spec.Name, theta, ap.name, err)
			}
			fmt.Fprintf(&b, "%s\t%.1f\t%s\t%s\n", spec.Name, theta, ap.name, auditCols(res.Ranking, tab))
		}
		rows[i] = b.String()
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Dataset\tTheta\tApproach\tARP_Gender\tARP_Race\tIRP")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}

// Fig4 regenerates paper Figure 4: the eight-method comparison on the
// Low-Fair dataset with Delta = 0.1, reporting PD loss, ARP Gender, ARP
// Race and IRP for each theta.
//
// Profiles are sampled concurrently per theta, then every theta x method
// cell runs on the worker pool against its theta's shared read-only context.
func Fig4(cfg Config) error {
	rankers := 150
	if cfg.Quick {
		rankers = 40
	}
	tab, modal, err := tableIModal("Low-Fair")
	if err != nil {
		return err
	}
	ctxs := make([]*runCtx, len(thetas))
	err = runCells(cfg.workers(), len(thetas), func(ti int) error {
		p := sampleProfile(modal, thetas[ti], rankers, cellRNG(cfg.Seed, "fig4", ti))
		var err error
		ctxs[ti], err = newRunCtx(p, tab, 0.1)
		return err
	})
	if err != nil {
		return err
	}
	methods := allMethods()
	rows := make([]string, len(thetas)*len(methods))
	err = runCells(cfg.workers(), len(rows), func(i int) error {
		ti, mi := i/len(methods), i%len(methods)
		ctx, m := ctxs[ti], methods[mi]
		res, err := ctx.solve(cfg, m.M, ctx.targets)
		if err != nil {
			return fmt.Errorf("experiments: fig4 theta=%.1f %s: %w", thetas[ti], m.Name, err)
		}
		rows[i] = fmt.Sprintf("%.1f\t(%s) %s\t%.3f\t%s\n", thetas[ti], m.ID, m.Name, res.PDLoss, auditCols(res.Ranking, tab))
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Theta\tMethod\tPD_Loss\tARP_Gender\tARP_Race\tIRP")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}

// Fig5 regenerates paper Figure 5, both panels. Left: Fair-Kemeny's Price of
// Fairness versus theta on the three Table I datasets (Delta = 0.1). Right:
// PoF versus the Delta parameter on the Low-Fair dataset at theta = 0.6 for
// the four proposed methods plus Correct-Fairest-Perm. Panel A parallelises
// over dataset x theta cells, panel B over delta x method cells sharing one
// read-only profile.
func Fig5(cfg Config) error {
	rankers := 150
	if cfg.Quick {
		rankers = 40
	}
	out := cfg.out()

	specs, tabs, modals, err := tableIDatasets()
	if err != nil {
		return err
	}
	cellsA := len(specs) * len(thetas)
	rowsA := make([]string, cellsA)
	err = runCells(cfg.workers(), cellsA, func(i int) error {
		di, ti := i/len(thetas), i%len(thetas)
		spec, theta := specs[di], thetas[ti]
		tab, modal := tabs[di], modals[di]
		p := sampleProfile(modal, theta, rankers, cellRNG(cfg.Seed, "fig5a", di, ti))
		ctx, err := newRunCtx(p, tab, 0.1)
		if err != nil {
			return err
		}
		unfair, err := ctx.solve(cfg, manirank.MethodKemeny, nil)
		if err != nil {
			return err
		}
		fair, err := ctx.solve(cfg, manirank.MethodFairKemeny, ctx.targets)
		if err != nil {
			return err
		}
		rowsA[i] = fmt.Sprintf("%s\t%.1f\t%.4f\n", spec.Name, theta,
			core.PriceOfFairnessW(ctx.w, fair.Ranking, unfair.Ranking))
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(out)
	fmt.Fprintln(tw, "Panel A: Fair-Kemeny PoF vs theta (Delta = 0.1)")
	fmt.Fprintln(tw, "Dataset\tTheta\tPoF")
	for _, row := range rowsA {
		fmt.Fprint(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	tab, modal, err := tableIModal("Low-Fair")
	if err != nil {
		return err
	}
	p := sampleProfile(modal, 0.6, rankers, cellRNG(cfg.Seed, "fig5b"))
	deltasB := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	// One Engine (and precedence matrix) shared by every delta x method
	// cell, including the unconstrained reference consensus.
	bctx, err := newRunCtx(p, tab, deltasB[0])
	if err != nil {
		return err
	}
	unfair, err := bctx.solve(cfg, manirank.MethodKemeny, nil)
	if err != nil {
		return err
	}
	deltaMethods := []methodSpec{
		{"A1", "Fair-Kemeny", manirank.MethodFairKemeny},
		{"A2", "Fair-Schulze", manirank.MethodFairSchulze},
		{"A3", "Fair-Borda", manirank.MethodFairBorda},
		{"A4", "Fair-Copeland", manirank.MethodFairCopeland},
		{"B4", "Correct-Fairest-Perm", manirank.MethodCorrectFairestPerm},
	}
	rowsB := make([]string, len(deltasB)*len(deltaMethods))
	err = runCells(cfg.workers(), len(rowsB), func(i int) error {
		deltaIdx, mi := i/len(deltaMethods), i%len(deltaMethods)
		delta, dm := deltasB[deltaIdx], deltaMethods[mi]
		fair, err := bctx.solve(cfg, dm.M, core.Targets(tab, delta))
		if err != nil {
			return fmt.Errorf("experiments: fig5 delta=%.1f %s: %w", delta, dm.Name, err)
		}
		rowsB[i] = fmt.Sprintf("%.1f\t(%s) %s\t%.4f\n", delta, dm.ID, dm.Name,
			core.PriceOfFairnessW(bctx.w, fair.Ranking, unfair.Ranking))
		return nil
	})
	if err != nil {
		return err
	}
	tw = newTabWriter(out)
	fmt.Fprintln(tw, "\nPanel B: Delta vs PoF (Low-Fair, theta = 0.6)")
	fmt.Fprintln(tw, "Delta\tMethod\tPoF")
	for _, row := range rowsB {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}

// Fig2 regenerates the paper's Figure 2 contrast on the admissions example:
// the fairness-unaware Kemeny consensus versus the MANI-Rank consensus
// (Fair-Kemeny at Delta = 0.1) over the 45-candidate committee profile.
func Fig2(cfg Config) error {
	study, err := unfairgen.NewAdmissionsStudy(cfg.Seed + 20)
	if err != nil {
		return err
	}
	ctx, err := newRunCtx(study.Profile, study.Table, 0.1)
	if err != nil {
		return err
	}
	kem, err := ctx.solve(cfg, manirank.MethodKemeny, nil)
	if err != nil {
		return err
	}
	fair, err := ctx.solve(cfg, manirank.MethodFairKemeny, ctx.targets)
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Consensus\tARP_Gender\tARP_Race\tIRP\tPD_Loss")
	fmt.Fprintf(tw, "Kemeny\t%s\t%.3f\n", auditCols(kem.Ranking, study.Table), kem.PDLoss)
	fmt.Fprintf(tw, "MANI-Rank\t%s\t%.3f\n", auditCols(fair.Ranking, study.Table), fair.PDLoss)
	return tw.Flush()
}
