package obs

import (
	"context"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", q)
	}
	// 1ms..100ms uniform: p50 ~ 50ms, p99 ~ 99ms; log buckets are 2x wide,
	// so accept a factor-of-two window around the truth.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if sum := h.Sum(); math.Abs(sum-5.05) > 1e-9 {
		t.Fatalf("sum = %v, want 5.05", sum)
	}
	if max := h.Max(); max != 0.1 {
		t.Fatalf("max = %v, want 0.1", max)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.025 || p50 > 0.1 {
		t.Fatalf("p50 = %v, want within [0.025, 0.1]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.05 || p99 > 0.2 {
		t.Fatalf("p99 = %v, want within [0.05, 0.2]", p99)
	}
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(-5) // clamps to 0 -> first bucket
	h.Observe(100)
	h.Observe(200)
	if q := h.Quantile(1); q != 200 {
		t.Fatalf("overflow quantile = %v, want exact max 200", q)
	}
	snap := h.Snapshot()
	wantCum := []uint64{1, 1, 3}
	for i, w := range wantCum {
		if snap.Counts[i] != w {
			t.Fatalf("cumulative counts = %v, want %v", snap.Counts, wantCum)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%s) did not panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// metricsLine is the grammar scripts/smoke_serve.sh enforces on /metricsz.
var metricsLine = regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? [0-9.e+-]+$|^#`)

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("manirank_requests_total", "requests", L("status", "200")).Add(7)
	shared := new(Counter)
	shared.Add(3)
	r.RegisterCounter("manirank_cache_hits_total", "hits per tier", shared, L("tier", "result"))
	r.CounterFunc("manirank_cache_builds_skipped_total", "derived", func() uint64 { return 11 }, L("tier", "matrix"))
	r.Gauge("manirank_queue_depth", "queued").Set(2)
	r.GaugeFunc("manirank_cache_hit_rate_predicted", "che", func() float64 { return math.NaN() }, L("tier", "result"))
	h := r.Histogram("manirank_solve_seconds", "solve latency", LatencyBuckets(), L("method", "kemeny"))
	h.Observe(0.004)
	h.Observe(0.05)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !metricsLine.MatchString(line) {
			t.Fatalf("line fails smoke grammar: %q", line)
		}
	}
	for _, want := range []string{
		`manirank_requests_total{status="200"} 7`,
		`manirank_cache_hits_total{tier="result"} 3`,
		`manirank_cache_builds_skipped_total{tier="matrix"} 11`,
		"manirank_queue_depth 2",
		`manirank_cache_hit_rate_predicted{tier="result"} 0`, // NaN sanitized
		`manirank_solve_seconds_count{method="kemeny"} 2`,
		`manirank_solve_seconds_bucket{method="kemeny",le="+Inf"} 2`,
		"# TYPE manirank_solve_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Shared counter: the registry must read the adopted atomic live.
	shared.Inc()
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `manirank_cache_hits_total{tier="result"} 4`) {
		t.Fatal("adopted counter not read live")
	}
	// Bucket counts must be cumulative and non-decreasing.
	prev := -1.0
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "manirank_solve_seconds_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("bucket counts not cumulative: %v after %v", v, prev)
			}
			prev = v
		}
	}
}

func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("manirank_a_total", "a")
	b := r.Counter("manirank_a_total", "a")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind conflict did not panic")
			}
		}()
		r.Gauge("manirank_a_total", "a")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("digit in name did not panic")
			}
		}()
		r.Counter("manirank_p99", "bad name")
	}()
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("kemeny", "abc123")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	end := StartSpan(ctx, "solve")
	time.Sleep(5 * time.Millisecond)
	end()
	tr.AddSpan("encode", tr.Begin, tr.Begin.Add(time.Millisecond))
	wall := tr.Finish()
	if again := tr.Finish(); again != wall {
		t.Fatalf("Finish not idempotent: %v then %v", wall, again)
	}
	snap := tr.Snapshot()
	if snap.Name != "kemeny" || snap.Detail != "abc123" || len(snap.Spans) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Spans[0].Name != "solve" || snap.Spans[0].DurationMS < 4 {
		t.Fatalf("solve span = %+v", snap.Spans[0])
	}
	if snap.WallMS <= 0 {
		t.Fatalf("wall = %v", snap.WallMS)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Now(), time.Now())
	if tr.Finish() != 0 || tr.Wall() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace not inert")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context yielded a trace")
	}
	StartSpan(context.Background(), "z")() // must not panic
	if got := WithTrace(context.Background(), nil); got != context.Background() {
		t.Fatal("WithTrace(nil) should return ctx unchanged")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("cap", "")
	now := time.Now()
	for i := 0; i < maxSpans+10; i++ {
		tr.AddSpan(fmt.Sprintf("s_%d", i), now, now)
	}
	tr.Finish()
	snap := tr.Snapshot()
	if len(snap.Spans) != maxSpans || snap.SpansDropped != 10 {
		t.Fatalf("spans = %d dropped = %d, want %d and 10", len(snap.Spans), snap.SpansDropped, maxSpans)
	}
}

// TestTraceSpanPerNameCap: a chatty repeated stage (solver descent passes)
// saturates its own name's budget without starving later distinct stages —
// the request skeleton ("solve", "encode") must still record after
// thousands of child spans.
func TestTraceSpanPerNameCap(t *testing.T) {
	tr := NewTrace("cap", "")
	now := time.Now()
	for i := 0; i < maxSpansPerName*40; i++ {
		tr.AddSpan("kemeny_descent_pass", now, now)
	}
	tr.AddSpan("solve", now, now)
	tr.AddSpan("encode", now, now)
	tr.Finish()
	snap := tr.Snapshot()
	byName := map[string]int{}
	for _, sp := range snap.Spans {
		byName[sp.Name]++
	}
	if byName["kemeny_descent_pass"] != maxSpansPerName {
		t.Fatalf("chatty stage kept %d spans, want %d", byName["kemeny_descent_pass"], maxSpansPerName)
	}
	if byName["solve"] != 1 || byName["encode"] != 1 {
		t.Fatalf("late stages starved by chatty stage: %+v", byName)
	}
	if snap.SpansDropped != maxSpansPerName*39 {
		t.Fatalf("dropped = %d, want %d", snap.SpansDropped, maxSpansPerName*39)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("restart_%d", id)
			for j := 0; j < 50; j++ {
				tr.StartSpan(name)()
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 400 {
		t.Fatalf("spans = %d, want 400", got)
	}
}

// finished builds a trace whose wall time is exactly d; the test lives in
// package obs so it can stamp the wall directly instead of sleeping.
func finished(name string, d time.Duration) *Trace {
	tr := NewTrace(name, "")
	tr.wall = d
	return tr
}

func TestTraceRingEvictionOrder(t *testing.T) {
	r := NewTraceRing(3, 2)
	a := finished("a", 10*time.Millisecond)
	b := finished("b", 30*time.Millisecond)
	c := finished("c", 20*time.Millisecond)
	d := finished("d", 5*time.Millisecond)
	for _, tr := range []*Trace{a, b, c, d} {
		r.Add(tr)
	}
	recent, slowest := r.Snapshot()
	// Recent ring holds the newest 3, newest first: d, c, b.
	if len(recent) != 3 || recent[0].Name != "d" || recent[1].Name != "c" || recent[2].Name != "b" {
		t.Fatalf("recent = %+v", names(recent))
	}
	// Slowest-2: b (30ms) and c (20ms) — d must NOT evict anything, and the
	// order is descending wall time.
	if len(slowest) != 2 || slowest[0].Name != "b" || slowest[1].Name != "c" {
		t.Fatalf("slowest = %+v", names(slowest))
	}
	// A tie with the current minimum keeps the incumbent.
	e := finished("e", c.Wall())
	r.Add(e)
	_, slowest = r.Snapshot()
	if slowest[1].Name != "c" {
		t.Fatalf("tie evicted incumbent: slowest = %+v", names(slowest))
	}
	// Strictly slower evicts the minimum.
	f := finished("f", 25*time.Millisecond)
	r.Add(f)
	_, slowest = r.Snapshot()
	if slowest[0].Name != "b" || slowest[1].Name != "f" {
		t.Fatalf("slowest after f = %+v", names(slowest))
	}
	r.Add(nil) // must not panic
}

func names(ts []TraceSnapshot) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func TestCheEstimator(t *testing.T) {
	e := NewCheEstimator()
	if p := e.Predict(10); p != 0 {
		t.Fatalf("empty predict = %v, want 0", p)
	}
	// 4 keys, 10 accesses each: capacity >= 4 holds everything, so only
	// the 4 compulsory misses remain: predicted = 1 - 4/40 = 0.9.
	for i := 0; i < 10; i++ {
		for _, k := range []string{"a", "b", "c", "d"} {
			e.Observe(k)
		}
	}
	if p := e.Predict(4); math.Abs(p-0.9) > 1e-9 {
		t.Fatalf("full-capacity predict = %v, want 0.9", p)
	}
	if p := e.Predict(0); p != 0 {
		t.Fatalf("zero capacity predict = %v, want 0", p)
	}
	// Under contention the prediction must be monotone in capacity and
	// bounded by the full-capacity value.
	p1, p2, p3 := e.Predict(1), e.Predict(2), e.Predict(3)
	if !(p1 <= p2 && p2 <= p3 && p3 <= 0.9+1e-9) {
		t.Fatalf("not monotone: %v %v %v", p1, p2, p3)
	}
	if p1 <= 0 {
		t.Fatalf("capacity-1 predict = %v, want > 0", p1)
	}
}

func TestCheDecayBounds(t *testing.T) {
	e := NewCheEstimator()
	// Blow past the key cap with unique keys; the map must stay bounded.
	for i := 0; i < cheMaxKeys*3; i++ {
		e.Observe(string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('0'+i%10)))
	}
	if got := e.Keys(); got > cheMaxKeys {
		t.Fatalf("keys = %d, want <= %d", got, cheMaxKeys)
	}
}
