package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mustMatrixDo runs a plain build and fails the test on error.
func mustMatrixDo(t *testing.T, c *MatrixCache, key string, v any, cost int64) (any, bool) {
	t.Helper()
	got, hit, _, err := c.Do(context.Background(), key, func() (any, int64, error) { return v, cost, nil })
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	return got, hit
}

func TestMatrixHitMiss(t *testing.T) {
	c := NewMatrixCache(100)
	if _, hit := mustMatrixDo(t, c, "a", 1, 10); hit {
		t.Fatal("first access was a hit")
	}
	if v, hit := mustMatrixDo(t, c, "a", 2, 10); !hit || v.(int) != 1 {
		t.Fatalf("second access: hit=%v v=%v, want stored 1", hit, v)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Builds != 1 || s.BuildsSkipped != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 build / 1 skipped", s)
	}
	if s.CostUsed != 10 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want cost 10 over 1 entry", s)
	}
}

// TestMatrixCostBoundedEviction: admission is charged by cost, not entry
// count — three 40-cost entries under a 100 budget keep only two, evicting
// the least recently used, and the accounting balances.
func TestMatrixCostBoundedEviction(t *testing.T) {
	c := NewMatrixCache(100)
	mustMatrixDo(t, c, "a", "A", 40)
	mustMatrixDo(t, c, "b", "B", 40)
	mustMatrixDo(t, c, "a", "", 40) // refresh a; b is now the cold end
	mustMatrixDo(t, c, "c", "C", 40)
	if _, hit := mustMatrixDo(t, c, "b", "B2", 40); hit {
		t.Fatal("LRU victim b survived cost pressure")
	}
	s := c.Stats()
	if s.Evictions != 2 { // c's insert evicted b; b's reinsert evicted a
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
	if s.CostUsed > s.CostBudget {
		t.Fatalf("cost used %d exceeds budget %d", s.CostUsed, s.CostBudget)
	}
	if s.Entries != 2 || s.CostUsed != 80 {
		t.Fatalf("stats = %+v, want 2 entries costing 80", s)
	}
}

// TestMatrixRejectsOversize: a value costing more than the whole budget is
// returned but never stored — one huge profile must not flush the tier.
func TestMatrixRejectsOversize(t *testing.T) {
	c := NewMatrixCache(100)
	mustMatrixDo(t, c, "small", 1, 60)
	if v, hit := mustMatrixDo(t, c, "huge", 2, 101); hit || v.(int) != 2 {
		t.Fatalf("oversize build: hit=%v v=%v", hit, v)
	}
	if _, hit := mustMatrixDo(t, c, "huge", 3, 101); hit {
		t.Fatal("oversize entry was stored")
	}
	if _, hit := mustMatrixDo(t, c, "small", -1, 60); !hit {
		t.Fatal("oversize rejection disturbed the resident entry")
	}
	if s := c.Stats(); s.Rejected != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 2 rejections and no evictions", s)
	}
}

// TestMatrixDisabledStoresNothing: budget 0 turns storage off — the
// "precedence cache off" switch of the equivalence tests (single-flight
// coalescing is unaffected; TestMatrixSingleFlightCoalescing covers it).
func TestMatrixDisabledStoresNothing(t *testing.T) {
	c := NewMatrixCache(0)
	mustMatrixDo(t, c, "a", 1, 10)
	if _, hit := mustMatrixDo(t, c, "a", 2, 10); hit {
		t.Fatal("disabled cache produced a hit")
	}
	if s := c.Stats(); s.Entries != 0 || s.CostUsed != 0 || s.Rejected != 0 {
		t.Fatalf("stats = %+v, want no storage and no rejection counting when disabled", s)
	}
}

func TestMatrixBuildErrorNotStored(t *testing.T) {
	c := NewMatrixCache(100)
	boom := errors.New("boom")
	if _, _, _, err := c.Do(context.Background(), "a", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, hit := mustMatrixDo(t, c, "a", 1, 10); hit {
		t.Fatal("failed build was stored")
	}
	if s := c.Stats(); s.Builds != 1 {
		t.Fatalf("builds = %d, want 1 (the successful retry only)", s.Builds)
	}
}

// TestMatrixSingleFlightCoalescing is the concurrency contract, meaningful
// under -race: many concurrent builds of one profile run the builder once,
// everyone gets the leader's value, and the counters add up.
func TestMatrixSingleFlightCoalescing(t *testing.T) {
	const callers = 32
	c := NewMatrixCache(100)
	var builds atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	values := make([]any, callers)
	shareds := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, shared, err := c.Do(context.Background(), "profile", func() (any, int64, error) {
				builds.Add(1)
				<-gate
				return "matrix", 10, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			values[i], shareds[i] = v, shared
		}(i)
	}
	// Release the leader only once every follower joined its flight, so the
	// leader/coalesced accounting below is deterministic on any scheduler.
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().Coalesced != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d callers coalesced within 10s", c.Stats().Coalesced, callers-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times, want 1", n)
	}
	leaders := 0
	for i, v := range values {
		if v.(string) != "matrix" {
			t.Fatalf("caller %d got %v", i, v)
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers led the build, want exactly 1", leaders)
	}
	s := c.Stats()
	if s.Misses != callers || s.Coalesced != callers-1 || s.Builds != 1 || s.InFlight != 0 {
		t.Fatalf("stats = %+v, want %d misses / %d coalesced / 1 build", s, callers, callers-1)
	}
	if s.BuildsSkipped != callers-1 {
		t.Fatalf("builds skipped = %d, want %d", s.BuildsSkipped, callers-1)
	}
}

// TestMatrixStatsHitRate pins the derived ratio.
func TestMatrixStatsHitRate(t *testing.T) {
	c := NewMatrixCache(1000)
	for i := 0; i < 4; i++ {
		mustMatrixDo(t, c, fmt.Sprintf("k%d", i%2), i, 5)
	}
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", hr)
	}
	if hr := (MatrixStats{}).HitRate(); hr != 0 {
		t.Fatalf("empty hit rate = %g, want 0", hr)
	}
}

// TestMatrixPut: externally produced values (the serving layer's
// incrementally patched matrices) are admitted like fresh builds — resident
// in memory, written through to an attached store, and served to a later Do
// without running its builder, in this process or the next.
func TestMatrixPut(t *testing.T) {
	root := t.TempDir()
	open := func() *MatrixCache {
		st, err := OpenFileStore(root, "v1@engine-1/matrices")
		if err != nil {
			t.Fatal(err)
		}
		c := NewMatrixCache(100)
		c.AttachStore(st, stringCodec(), func(any) int64 { return 10 })
		return c
	}
	c1 := open()
	c1.Put(context.Background(), testKey, "patched", 10)
	if s := c1.Stats(); s.Entries != 1 || s.CostUsed != 10 || s.DiskPuts != 1 {
		t.Fatalf("stats after Put = %+v, want resident and written through", s)
	}
	if v, hit := mustMatrixDo(t, c1, testKey, "rebuilt", 10); !hit || v.(string) != "patched" {
		t.Fatalf("Do after Put = %v hit=%v, want the admitted value", v, hit)
	}

	// Restart: the Put entry restores from disk like any build.
	c2 := open()
	v, hit, _, err := c2.Do(context.Background(), testKey, func() (any, int64, error) {
		return "rebuilt", 10, nil
	})
	if err != nil || !hit || v.(string) != "patched" {
		t.Fatalf("restart Do = %v hit=%v err=%v, want disk restore of the Put", v, hit, err)
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Builds != 0 {
		t.Fatalf("restart stats = %+v, want a disk hit and no build", s)
	}

	// Budget off: Put neither stores nor persists (matches Do's contract).
	c3 := NewMatrixCache(0)
	c3.Put(context.Background(), testKey, "x", 10)
	if s := c3.Stats(); s.Entries != 0 || s.DiskPuts != 0 {
		t.Fatalf("disabled-cache Put stats = %+v, want nothing stored", s)
	}
}
