// Package mallows implements the Mallows model, the exponential
// location-spread probability distribution over rankings used by the paper's
// experimental study (Section IV-A) to generate base rankings with a
// controlled degree of consensus around a modal ranking.
//
// P(pi) = exp(-theta * d(pi, modal)) / psi(theta)
//
// where d is the Kendall tau distance and theta >= 0 the spread parameter:
// theta = 0 is the uniform distribution over permutations, larger theta
// concentrates mass around the modal ranking. Sampling uses the exact
// Repeated Insertion Model (RIM), which draws from the Mallows distribution
// without rejection in O(n^2) per sample.
package mallows

import (
	"fmt"
	"math"
	"math/rand"

	"manirank/internal/ranking"
)

// Model is a Mallows distribution with a fixed modal ranking and spread.
type Model struct {
	modal ranking.Ranking
	theta float64
	phi   float64 // dispersion e^-theta
	// insertCDF[i] is the cumulative insertion-probability table used when
	// inserting the (i+1)-th item: position j (0-based displacement from the
	// bottom of the current prefix) has weight phi^j.
	insertCDF [][]float64
}

// New constructs a Mallows model centred at modal with spread theta >= 0.
func New(modal ranking.Ranking, theta float64) (*Model, error) {
	if err := modal.Validate(); err != nil {
		return nil, fmt.Errorf("mallows: modal ranking: %w", err)
	}
	if theta < 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("mallows: spread theta must be >= 0, got %v", theta)
	}
	m := &Model{modal: modal.Clone(), theta: theta, phi: math.Exp(-theta)}
	m.buildTables()
	return m, nil
}

// MustNew is New that panics on invalid input.
func MustNew(modal ranking.Ranking, theta float64) *Model {
	m, err := New(modal, theta)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Model) buildTables() {
	n := len(m.modal)
	m.insertCDF = make([][]float64, n)
	for i := 0; i < n; i++ {
		// Inserting item i (0-based) into a prefix of length i: i+1 slots.
		// Displacement j in 0..i contributes Kendall distance j and weight
		// phi^j.
		cdf := make([]float64, i+1)
		sum := 0.0
		w := 1.0
		for j := 0; j <= i; j++ {
			sum += w
			cdf[j] = sum
			w *= m.phi
		}
		for j := range cdf {
			cdf[j] /= sum
		}
		m.insertCDF[i] = cdf
	}
}

// Modal returns a copy of the model's modal ranking.
func (m *Model) Modal() ranking.Ranking { return m.modal.Clone() }

// Theta returns the spread parameter.
func (m *Model) Theta() float64 { return m.theta }

// N returns the number of candidates ranked.
func (m *Model) N() int { return len(m.modal) }

// Sampler is the allocation-free draw interface shared by the exact RIM
// sampler and the Plackett-Luce sampler: SampleInto fills dst (length N)
// with one draw from rng. A Sampler owns reusable scratch buffers that stay
// cache-resident across draws, so steady-state sampling performs zero heap
// allocations; it is NOT safe for concurrent use — create one per goroutine
// (the shared Model/PlackettLuce underneath is read-only and may be shared).
type Sampler interface {
	// N returns the number of candidates each draw ranks.
	N() int
	// SampleInto fills dst with one draw. len(dst) must equal N (panics
	// otherwise).
	SampleInto(dst ranking.Ranking, rng *rand.Rand)
}

var (
	_ Sampler = (*RIMSampler)(nil)
	_ Sampler = (*PlackettLuceSampler)(nil)
)

// RIMSampler draws from a Model through the exact Repeated Insertion Model
// with a reusable insertion buffer (see Sampler for the contract).
type RIMSampler struct {
	m    *Model
	perm []int
}

// Sampler returns a new allocation-free sampler over m. The model's tables
// are shared read-only; the sampler's scratch is private.
func (m *Model) Sampler() *RIMSampler {
	return &RIMSampler{m: m, perm: make([]int, 0, len(m.modal))}
}

// N returns the number of candidates each draw ranks.
func (s *RIMSampler) N() int { return len(s.m.modal) }

// SampleInto fills dst with one Mallows draw using rng. Zero heap
// allocations in steady state.
func (s *RIMSampler) SampleInto(dst ranking.Ranking, rng *rand.Rand) {
	m := s.m
	n := len(m.modal)
	if len(dst) != n {
		panic(fmt.Sprintf("mallows: SampleInto dst has %d slots, model ranks %d candidates", len(dst), n))
	}
	// RIM over reference positions: build a permutation of 0..n-1 whose
	// Kendall distance to the identity follows Mallows, then map positions
	// through the modal ranking.
	perm := s.perm[:0]
	for i := 0; i < n; i++ {
		// Displacement j means item i lands j slots above the bottom of the
		// current prefix, adding j inversions.
		j := sampleCDF(m.insertCDF[i], rng)
		at := len(perm) - j
		perm = append(perm, 0)
		copy(perm[at+1:], perm[at:])
		perm[at] = i
	}
	s.perm = perm
	for i, p := range perm {
		dst[i] = m.modal[p]
	}
}

// Sample draws one ranking from the model using rng: a thin wrapper over a
// one-shot Sampler. Profile-scale callers should hold a Sampler and use
// SampleInto to avoid the per-draw scratch allocation.
func (m *Model) Sample(rng *rand.Rand) ranking.Ranking {
	out := make(ranking.Ranking, len(m.modal))
	m.Sampler().SampleInto(out, rng)
	return out
}

func sampleCDF(cdf []float64, rng *rand.Rand) int {
	u := rng.Float64()
	// Linear scan: tables are short-lived in cache and heavily geometric, so
	// the expected scan length is O(1/(1-phi)).
	for j, c := range cdf {
		if u <= c {
			return j
		}
	}
	return len(cdf) - 1
}

// SampleProfile draws m base rankings from the model, reusing one sampler's
// scratch across all draws — only the output rankings are allocated.
func (m *Model) SampleProfile(count int, rng *rand.Rand) ranking.Profile {
	s := m.Sampler()
	p := make(ranking.Profile, count)
	for i := range p {
		p[i] = make(ranking.Ranking, len(m.modal))
		s.SampleInto(p[i], rng)
	}
	return p
}

// ExpectedKendall returns the exact expected Kendall tau distance between a
// sample and the modal ranking, E[d(pi, modal)] = sum over insertion steps of
// the expected displacement.
func (m *Model) ExpectedKendall() float64 {
	e := 0.0
	for i := range m.insertCDF {
		// Reconstruct weights from the CDF structure: weight_j = phi^j.
		sum, ej := 0.0, 0.0
		w := 1.0
		for j := 0; j <= i; j++ {
			sum += w
			ej += float64(j) * w
			w *= m.phi
		}
		e += ej / sum
	}
	return e
}
