// Admissions reproduces the paper's running example (Figures 1 and 2): an
// admissions committee of four members ranks 45 scholarship candidates
// described by Gender (3 values) and Race (5 values). Some committee
// rankings are heavily biased; the example contrasts the fairness-unaware
// Kemeny consensus with the MANI-Rank consensus at Delta = 0.1 and prints
// the ARP/IRP table of paper Figure 2.
package main

import (
	"context"
	"fmt"
	"log"

	"manirank"
	"manirank/internal/unfairgen"
)

func main() {
	study, err := unfairgen.NewAdmissionsStudy(7)
	if err != nil {
		log.Fatal(err)
	}
	table := study.Table
	profile := manirank.Profile(study.Profile)

	fmt.Println("Base rankings (4 committee members, 45 candidates):")
	for i, r := range profile {
		rep := manirank.Audit(r, table)
		fmt.Printf("  r%d: ARP_Gender=%.2f ARP_Race=%.2f IRP=%.2f\n",
			i+1, rep.ARPs[0], rep.ARPs[1], rep.IRP)
	}

	// One Engine serves both consensus methods over a shared precedence
	// matrix, auditing each result against the committee's table.
	engine, err := manirank.NewEngine(profile, manirank.WithTable(table))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	kemeny, err := engine.Solve(ctx, manirank.MethodKemeny, nil)
	if err != nil {
		log.Fatal(err)
	}
	fair, err := engine.Solve(ctx, manirank.MethodFairKemeny, manirank.Targets(table, 0.1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nGroup fairness results (paper Fig. 2):")
	fmt.Printf("%-22s %-18s %s\n", "", "Kemeny Consensus", "MANI-Rank Consensus")
	kr, fr := kemeny.Report, fair.Report
	fmt.Printf("%-22s %-18.2f %.2f\n", "ARP Gender", kr.ARPs[0], fr.ARPs[0])
	fmt.Printf("%-22s %-18.2f %.2f\n", "ARP Race", kr.ARPs[1], fr.ARPs[1])
	fmt.Printf("%-22s %-18.2f %.2f\n", "IRP", kr.IRP, fr.IRP)
	fmt.Printf("%-22s %-18.3f %.3f\n", "PD loss", kemeny.PDLoss, fair.PDLoss)

	fmt.Println("\nTop 10 of the fair consensus (candidate: gender/race):")
	for pos, c := range fair.Ranking[:10] {
		fmt.Printf("  %2d. candidate %2d  %s/%s\n", pos+1, c,
			table.Attr("Gender").ValueOf(c), table.Attr("Race").ValueOf(c))
	}
}
