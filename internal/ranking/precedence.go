package ranking

import "fmt"

// Precedence is the precedence matrix W of a profile of base rankings
// (paper Def. 11): W[a][b] counts the base rankings in which b is ranked
// ABOVE a. Consequently, placing a above b in a consensus ranking incurs
// W[a][b] pairwise disagreements with the profile.
//
// The matrix is stored densely in row-major order; for every pair a != b,
// W[a][b] + W[b][a] == |R|.
type Precedence struct {
	n int
	m int // number of base rankings summarised
	w []int
}

// NewPrecedence computes the precedence matrix of profile p in O(n^2 * |R|).
func NewPrecedence(p Profile) (*Precedence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newPrecedenceUnchecked(p), nil
}

// MustPrecedence is NewPrecedence for profiles already known to be valid;
// it panics on invalid input.
func MustPrecedence(p Profile) *Precedence {
	w, err := NewPrecedence(p)
	if err != nil {
		panic(err)
	}
	return w
}

func newPrecedenceUnchecked(p Profile) *Precedence {
	n := p.N()
	pr := &Precedence{n: n, m: len(p), w: make([]int, n*n)}
	for _, r := range p {
		pos := r.Positions()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && pos[b] < pos[a] {
					pr.w[a*n+b]++
				}
			}
		}
	}
	return pr
}

// NewWeightedPrecedence computes a precedence matrix where ranking i
// contributes weights[i] (instead of 1) to each pairwise count. It backs the
// Kemeny-Weighted baseline. len(weights) must equal len(p).
func NewWeightedPrecedence(p Profile, weights []int) (*Precedence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != len(p) {
		return nil, fmt.Errorf("ranking: %d weights for %d rankings", len(weights), len(p))
	}
	n := p.N()
	total := 0
	for _, wt := range weights {
		if wt < 0 {
			return nil, fmt.Errorf("ranking: negative weight %d", wt)
		}
		total += wt
	}
	pr := &Precedence{n: n, m: total, w: make([]int, n*n)}
	for i, r := range p {
		wt := weights[i]
		if wt == 0 {
			continue
		}
		pos := r.Positions()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && pos[b] < pos[a] {
					pr.w[a*n+b] += wt
				}
			}
		}
	}
	return pr, nil
}

// N returns the number of candidates.
func (w *Precedence) N() int { return w.n }

// Rankings returns the (weighted) number of base rankings summarised.
func (w *Precedence) Rankings() int { return w.m }

// At returns W[a][b]: how many base rankings place b above a, i.e. the
// disagreement cost of ordering a above b in the consensus.
func (w *Precedence) At(a, b int) int { return w.w[a*w.n+b] }

// CostAbove is a readability alias for At: the number of profile
// disagreements incurred by ranking a above b.
func (w *Precedence) CostAbove(a, b int) int { return w.w[a*w.n+b] }

// KemenyCost returns the total pairwise disagreement between ranking r and
// the profile summarised by w: sum over ordered pairs (a above b) of W[a][b].
// This equals sum_i KendallTau(r, R_i).
func (w *Precedence) KemenyCost(r Ranking) int {
	if len(r) != w.n {
		panic("ranking: KemenyCost ranking length mismatch")
	}
	cost := 0
	for i := 0; i < len(r); i++ {
		a := r[i]
		for j := i + 1; j < len(r); j++ {
			cost += w.w[a*w.n+r[j]]
		}
	}
	return cost
}

// LowerBound returns an admissible lower bound on the Kemeny cost of any
// ranking: for each unordered pair the consensus must pay at least
// min(W[a][b], W[b][a]) disagreements.
func (w *Precedence) LowerBound() int {
	lb := 0
	for a := 0; a < w.n; a++ {
		for b := a + 1; b < w.n; b++ {
			ab, ba := w.w[a*w.n+b], w.w[b*w.n+a]
			if ab < ba {
				lb += ab
			} else {
				lb += ba
			}
		}
	}
	return lb
}

// MajorityPrefers reports whether strictly more base rankings place a above b
// than b above a.
func (w *Precedence) MajorityPrefers(a, b int) bool {
	return w.w[b*w.n+a] > w.w[a*w.n+b]
}

// CondorcetOrder returns a ranking ordering candidates by strict pairwise
// majority, if one exists (a total order where every candidate beats all
// candidates below it head-to-head). ok is false when no Condorcet order
// exists (majority cycles or ties).
func (w *Precedence) CondorcetOrder() (Ranking, bool) {
	n := w.n
	wins := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && w.MajorityPrefers(a, b) {
				wins[a]++
			}
		}
	}
	r := SortByPointsDesc(wins)
	// A Condorcet order exists iff the win counts are exactly n-1, n-2, ..., 0.
	for i, c := range r {
		if wins[c] != n-1-i {
			return nil, false
		}
	}
	return r, true
}

// PDLoss returns the Pairwise Disagreement loss (paper Def. 9) of consensus
// ranking r against the profile summarised by w: the Kemeny cost divided by
// omega(X) * |R|, in [0, 1].
func (w *Precedence) PDLoss(r Ranking) float64 {
	if w.n < 2 || w.m == 0 {
		return 0
	}
	return float64(w.KemenyCost(r)) / (float64(TotalPairs(w.n)) * float64(w.m))
}

// PDLoss computes the Pairwise Disagreement loss of consensus r directly from
// a profile (paper Def. 9): sum of Kendall tau distances to every base
// ranking, normalised by omega(X)*|R|. It runs in O(|R| n log n) and matches
// Precedence.PDLoss.
func PDLoss(p Profile, r Ranking) float64 {
	if len(p) == 0 || len(r) < 2 {
		return 0
	}
	sum := 0
	for _, base := range p {
		sum += KendallTau(r, base)
	}
	return float64(sum) / (float64(TotalPairs(len(r))) * float64(len(p)))
}
