package obs

import (
	"math"
	"sync"
)

// cheMaxKeys bounds the popularity map. On overflow every count is halved
// (floor) and zeros pruned — exponential decay that keeps the heavy keys
// and forgets the long tail, so memory stays bounded under an adversarial
// key stream while the popularity ranking survives.
const cheMaxKeys = 8192

// CheEstimator fits the Che approximation to the live request stream: it
// keeps an online popularity histogram of cache keys and predicts the hit
// rate an LRU-like tier of a given capacity should achieve. The serving
// layer exports predicted next to measured per tier; sustained drift is
// the signal that the traffic model or the tier sizing assumption is
// wrong (ROADMAP item 3, after "A unified approach to the performance
// analysis of caching systems").
//
// The prediction is the finite-window form: a key observed c times can hit
// at most c−1 times (the first access is a compulsory miss), so
//
//	predicted = Σ_k (c_k − 1)·(1 − e^{−λ_k·T}) / Σ_k c_k
//
// with per-key intensity λ_k = c_k/total and the characteristic time T
// solving Σ_k (1 − e^{−λ_k·T}) = C. That matches what the measured hit
// counter sees over the same window, compulsory misses included.
type CheEstimator struct {
	mu     sync.Mutex
	counts map[string]uint64
	total  uint64
}

// NewCheEstimator returns an empty estimator.
func NewCheEstimator() *CheEstimator {
	return &CheEstimator{counts: make(map[string]uint64)}
}

// Observe records one access to key.
func (e *CheEstimator) Observe(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.counts) >= cheMaxKeys {
		if _, known := e.counts[key]; !known {
			e.decayLocked()
		}
	}
	e.counts[key]++
	e.total++
}

// decayLocked halves every count (pruning zeros) and rescales the total
// to match, preserving relative popularity.
func (e *CheEstimator) decayLocked() {
	var total uint64
	for k, c := range e.counts {
		c /= 2
		if c == 0 {
			delete(e.counts, k)
			continue
		}
		e.counts[k] = c
		total += c
	}
	e.total = total
}

// Keys returns the number of distinct keys currently tracked.
func (e *CheEstimator) Keys() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.counts)
}

// Predict returns the hit rate in [0, 1] that an LRU tier holding
// capacity entries should achieve on the observed stream. Zero or
// negative capacity, or an empty stream, predicts 0. When capacity covers
// every distinct key the prediction degenerates to 1 − distinct/total —
// only compulsory misses remain.
func (e *CheEstimator) Predict(capacity int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if capacity <= 0 || e.total == 0 || len(e.counts) == 0 {
		return 0
	}
	total := float64(e.total)
	if len(e.counts) <= capacity {
		hits := 0.0
		for _, c := range e.counts {
			hits += float64(c - 1)
		}
		return hits / total
	}
	lambdas := make([]float64, 0, len(e.counts))
	weights := make([]float64, 0, len(e.counts))
	for _, c := range e.counts {
		lambdas = append(lambdas, float64(c)/total)
		weights = append(weights, float64(c-1))
	}
	C := float64(capacity)
	occupancy := func(T float64) float64 {
		s := 0.0
		for _, l := range lambdas {
			s += 1 - math.Exp(-l*T)
		}
		return s
	}
	// Bracket the characteristic time T: occupancy is 0 at T=0 and rises
	// monotonically toward len(counts) > C, so a root exists.
	lo, hi := 0.0, 1.0
	for occupancy(hi) < C && hi < 1e18 {
		hi *= 2
	}
	for i := 0; i < 64; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < C {
			lo = mid
		} else {
			hi = mid
		}
	}
	T := (lo + hi) / 2
	hits := 0.0
	for i, l := range lambdas {
		hits += weights[i] * (1 - math.Exp(-l*T))
	}
	return hits / total
}
