package obs

import "sync"

// TraceRing retains completed traces under two bounded policies at once:
// a FIFO ring of the most recent traces, and a slowest-N set a newcomer
// only enters by strictly beating the current minimum wall time (ties
// keep the incumbent — the earlier slow request wins). Memory is bounded
// by recentCap+slowCap traces regardless of traffic.
type TraceRing struct {
	mu        sync.Mutex
	recent    []*Trace // ring buffer, next is the write cursor
	next      int
	recentCap int
	slow      []*Trace // unordered; scanned at insert, sorted at snapshot
	slowCap   int
}

// NewTraceRing sizes the two retention sets; non-positive caps get
// defaults (256 recent, 32 slowest).
func NewTraceRing(recentCap, slowCap int) *TraceRing {
	if recentCap <= 0 {
		recentCap = 256
	}
	if slowCap <= 0 {
		slowCap = 32
	}
	return &TraceRing{
		recent:    make([]*Trace, 0, recentCap),
		recentCap: recentCap,
		slow:      make([]*Trace, 0, slowCap),
		slowCap:   slowCap,
	}
}

// Add retains a finished trace (Finish must have been called). Nil traces
// are ignored.
func (r *TraceRing) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) < r.recentCap {
		r.recent = append(r.recent, t)
	} else {
		r.recent[r.next] = t
		r.next = (r.next + 1) % r.recentCap
	}
	if len(r.slow) < r.slowCap {
		r.slow = append(r.slow, t)
		return
	}
	minIdx, minWall := -1, t.Wall()
	for i, s := range r.slow {
		if w := s.Wall(); w < minWall {
			minIdx, minWall = i, w
		}
	}
	if minIdx >= 0 {
		r.slow[minIdx] = t
	}
}

// Snapshot returns the retained traces rendered for /tracez: recent
// newest-first, slowest by descending wall time.
func (r *TraceRing) Snapshot() (recent, slowest []TraceSnapshot) {
	r.mu.Lock()
	rec := make([]*Trace, 0, len(r.recent))
	// Walk the ring backwards from the cursor so output is newest-first.
	for i := 0; i < len(r.recent); i++ {
		idx := (r.next - 1 - i + len(r.recent)) % len(r.recent)
		rec = append(rec, r.recent[idx])
	}
	sl := make([]*Trace, len(r.slow))
	copy(sl, r.slow)
	r.mu.Unlock()

	recent = make([]TraceSnapshot, len(rec))
	for i, t := range rec {
		recent[i] = t.Snapshot()
	}
	slowest = make([]TraceSnapshot, len(sl))
	for i, t := range sl {
		slowest[i] = t.Snapshot()
	}
	// Insertion sort by wall descending; slowCap is tens, not thousands.
	for i := 1; i < len(slowest); i++ {
		for j := i; j > 0 && slowest[j].WallMS > slowest[j-1].WallMS; j-- {
			slowest[j], slowest[j-1] = slowest[j-1], slowest[j]
		}
	}
	return recent, slowest
}
