package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// The fleet hook contract on the result tier: a peer hit is admitted like a
// restore (hit=true, no compute), a miss or error degrades to compute, and
// a hook that never asked counts nothing.
func TestCacheDoFetchOutcomes(t *testing.T) {
	ctx := context.Background()
	computes := 0
	compute := func() (any, bool, error) { computes++; return "computed", true, nil }

	c := New(8, 0)
	v, hit, _, err := c.DoFetch(ctx, "aa01", func(context.Context) (any, bool, error) {
		return "from-peer", true, nil
	}, compute)
	if err != nil || !hit || v != "from-peer" || computes != 0 {
		t.Fatalf("peer hit: v=%v hit=%v computes=%d err=%v", v, hit, computes, err)
	}
	// The fetched entry is now resident: a plain Do must hit memory.
	if v, hit, _, _ := c.Do(ctx, "aa01", compute); !hit || v != "from-peer" {
		t.Fatalf("fetched entry not admitted: v=%v hit=%v", v, hit)
	}

	if v, hit, _, err := c.DoFetch(ctx, "aa02", func(context.Context) (any, bool, error) {
		return nil, true, nil // authoritative peer miss
	}, compute); err != nil || hit || v != "computed" {
		t.Fatalf("peer miss should compute: v=%v hit=%v err=%v", v, hit, err)
	}
	if v, _, _, err := c.DoFetch(ctx, "aa03", func(context.Context) (any, bool, error) {
		return nil, true, errors.New("peer down")
	}, compute); err != nil || v != "computed" {
		t.Fatalf("peer error should compute: v=%v err=%v", v, err)
	}
	if _, _, _, err := c.DoFetch(ctx, "aa04", func(context.Context) (any, bool, error) {
		return nil, false, nil // self-owned: never asked
	}, compute); err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.PeerHits != 1 || s.PeerMisses != 1 || s.PeerErrors != 1 {
		t.Fatalf("peer counters = %d/%d/%d, want 1/1/1", s.PeerHits, s.PeerMisses, s.PeerErrors)
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3 (miss, error, not-asked)", computes)
	}
}

func TestMatrixDoFetchOutcomes(t *testing.T) {
	ctx := context.Background()
	builds := 0
	build := func() (any, int64, error) { builds++; return "built", 1, nil }

	c := NewMatrixCache(100)
	v, hit, _, err := c.DoFetch(ctx, "bb01", func(context.Context) (any, int64, bool, error) {
		return "peer-matrix", 2, true, nil
	}, build)
	if err != nil || !hit || v != "peer-matrix" || builds != 0 {
		t.Fatalf("peer hit: v=%v hit=%v builds=%d err=%v", v, hit, builds, err)
	}
	if v, hit, _, _ := c.Do(ctx, "bb01", build); !hit || v != "peer-matrix" {
		t.Fatalf("fetched matrix not admitted: v=%v hit=%v", v, hit)
	}
	if _, _, _, err := c.DoFetch(ctx, "bb02", func(context.Context) (any, int64, bool, error) {
		return nil, 0, true, nil
	}, build); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.DoFetch(ctx, "bb03", func(context.Context) (any, int64, bool, error) {
		return nil, 0, true, errors.New("peer down")
	}, build); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.PeerHits != 1 || s.PeerMisses != 1 || s.PeerErrors != 1 {
		t.Fatalf("peer counters = %d/%d/%d, want 1/1/1", s.PeerHits, s.PeerMisses, s.PeerErrors)
	}
	if builds != 2 || s.Builds != 2 {
		t.Fatalf("builds = %d/%d, want 2 (peer hits must not count as builds)", builds, s.Builds)
	}
	// BuildsSkipped counts the peer hit alongside memory/disk hits.
	if skipped := c.Counters().BuildsSkipped(); skipped != 2 {
		t.Fatalf("BuildsSkipped = %d, want 2 (one memory hit + one peer hit)", skipped)
	}
}

// Peek is the owner-side serving read: it must return resident and
// persisted entries without moving the tier's own hit/miss/disk counters,
// because a peer's traffic is not this node's traffic.
func TestPeekDoesNotCountTraffic(t *testing.T) {
	ctx := context.Background()
	c := New(8, 0)
	store, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	c.AttachStore(store, stringCodec())

	if _, ok := c.Peek(ctx, "cc01"); ok {
		t.Fatal("Peek hit on an empty cache")
	}
	c.Put(ctx, "cc01", "value")
	if v, ok := c.Peek(ctx, "cc01"); !ok || v != "value" {
		t.Fatalf("Peek after Put = (%v, %v)", v, ok)
	}

	// Evict the memory copy by building a fresh cache over the same store:
	// Peek must restore from disk.
	c2 := New(8, 0)
	c2.AttachStore(store, stringCodec())
	if v, ok := c2.Peek(ctx, "cc01"); !ok || v != "value" {
		t.Fatalf("Peek disk restore = (%v, %v)", v, ok)
	}
	s := c2.Stats()
	if s.Hits != 0 || s.Misses != 0 || s.DiskHits != 0 {
		t.Fatalf("Peek moved traffic counters: %+v", s)
	}

	// Matrix tier mirrors the contract.
	m := NewMatrixCache(100)
	mstore, err := OpenFileStore(t.TempDir(), "v1@engine-1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	m.AttachStore(mstore, stringCodec(), func(any) int64 { return 1 })
	if _, ok := m.Peek(ctx, "cc02"); ok {
		t.Fatal("matrix Peek hit on an empty cache")
	}
	m.Put(ctx, "cc02", "matrix", 1)
	if v, ok := m.Peek(ctx, "cc02"); !ok || v != "matrix" {
		t.Fatalf("matrix Peek = (%v, %v)", v, ok)
	}
	if ms := m.Stats(); ms.Hits != 0 || ms.Misses != 0 || ms.DiskHits != 0 {
		t.Fatalf("matrix Peek moved traffic counters: %+v", ms)
	}
}

func TestKeysEnumerateResidents(t *testing.T) {
	ctx := context.Background()
	c := New(8, 0)
	c.Put(ctx, "dd01", "a")
	c.Put(ctx, "dd02", "b")
	if keys := c.Keys(); len(keys) != 2 {
		t.Fatalf("Keys = %v, want 2 entries", keys)
	}
	m := NewMatrixCache(100)
	m.Put(ctx, "dd03", "m", 1)
	if keys := m.Keys(); len(keys) != 1 || keys[0] != "dd03" {
		t.Fatalf("matrix Keys = %v", keys)
	}
}

// The disk budget evicts oldest-read-first and self-heals its accounting
// from the walk, and a budgeted Get bumps recency.
func TestDiskBudgetEvictsOldest(t *testing.T) {
	root := t.TempDir()
	s, err := OpenFileStore(root, "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	entrySize := int64(fileHeaderLen + len(payload))
	b := NewDiskBudget(root, 8*entrySize)
	s.SetBudget(b)

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("ee%02d", i)
		if err := s.Put(keys[i], payload, time.Time{}); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the LRU order is unambiguous even on coarse
		// filesystem timestamp granularity.
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		p, _ := s.path(keys[i])
		os.Chtimes(p, mt, mt)
	}
	if used := b.Used(); used > 8*entrySize {
		t.Fatalf("budget not enforced: used=%d limit=%d", used, 8*entrySize)
	}
	if b.Evictions().Value() == 0 {
		t.Fatal("no evictions recorded despite overflow")
	}
	// The newest entries must have survived; the oldest must be gone.
	if _, _, ok, _ := s.Get(keys[len(keys)-1]); !ok {
		t.Fatal("newest entry was evicted")
	}
	if _, _, ok, _ := s.Get(keys[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

// A budget shared by two stores under one root accounts and evicts across
// both namespaces.
func TestDiskBudgetSharedAcrossStores(t *testing.T) {
	root := t.TempDir()
	rs, err := OpenFileStore(root, "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := OpenFileStore(root, "v1@engine-1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 512)
	entrySize := int64(fileHeaderLen + len(payload))
	b := NewDiskBudget(root, 6*entrySize)
	rs.SetBudget(b)
	ms.SetBudget(b)
	for i := 0; i < 5; i++ {
		if err := rs.Put(fmt.Sprintf("ff%02d", i), payload, time.Time{}); err != nil {
			t.Fatal(err)
		}
		if err := ms.Put(fmt.Sprintf("aa%02d", i), payload, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	if used := b.Used(); used > 6*entrySize {
		t.Fatalf("shared budget not enforced: used=%d limit=%d", used, 6*entrySize)
	}
	if rs.Len()+ms.Len() >= 10 {
		t.Fatal("no entries evicted across the shared root")
	}
}

// A restart over a populated root must initialise the budget from the
// files actually present, not from zero.
func TestDiskBudgetInitFromDisk(t *testing.T) {
	root := t.TempDir()
	s, err := OpenFileStore(root, "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("ab%02d", i), payload, time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	b := NewDiskBudget(root, 1<<20)
	want := 4 * int64(fileHeaderLen+len(payload))
	if got := b.Used(); got != want {
		t.Fatalf("initial usage = %d, want %d", got, want)
	}
}
