// Package obs is the zero-dependency observability core behind manirankd
// and the manirank library: typed metrics with Prometheus text exposition,
// request-scoped tracing carried through context.Context, and a Che-style
// cache hit-rate estimator that turns the live request stream into a
// predicted-vs-actual drift signal.
//
// Three pillars (DESIGN.md §11):
//
//  1. Metrics (registry.go, metrics.go, histogram.go): a Registry of
//     counters, gauges, and log-bucketed latency histograms. Counters and
//     gauges are lock-free atomics that the serving layer and the cache
//     tiers share directly — /statz and /metricsz read the very same
//     values, so the two endpoints can never disagree. Histograms replace
//     the historical fixed-window latency rings: arbitrary quantiles are
//     answered by interpolating the log-spaced buckets, and the full bucket
//     vector exports in Prometheus histogram format for real percentile
//     math server-side (PromQL histogram_quantile) instead of lossy
//     pre-aggregated p50/p99 pairs.
//
//  2. Tracing (trace.go, tracering.go): a Trace rides the request context
//     through every serving layer — queue, both cache tiers, the persistent
//     store, the engine, the kemeny restart loops — collecting named spans.
//     Completed traces land in a bounded TraceRing (recent + slowest-N)
//     served at /tracez, so a slow request is attributable to a stage
//     without re-running it under a profiler.
//
//  3. Modelling (che.go): CheEstimator maintains an online popularity
//     histogram of the request stream and predicts the cache hit rate a
//     given capacity should achieve under the Che approximation ("A
//     unified approach to the performance analysis of caching systems").
//     The serving layer exports predicted vs measured per tier; sustained
//     drift means the traffic model (or the tier sizing) is wrong — the
//     input signal for ROADMAP item 3's model-driven autotuning.
//
// Everything in the package is safe for concurrent use and allocates O(1)
// per observation; nothing imports outside the standard library.
package obs
