package ranking

// KendallTau returns the Kendall tau distance between two rankings: the
// number of candidate pairs ordered differently by a and b (paper Def. 8).
// It runs in O(n log n) using a merge-sort inversion count.
//
// The two rankings must cover the same candidates; the function panics if the
// lengths differ (a programming error, since profiles are validated at the
// boundary).
func KendallTau(a, b Ranking) int {
	if len(a) != len(b) {
		panic("ranking: KendallTau on rankings of different lengths")
	}
	// Relabel b's candidates by their position in a. The Kendall tau distance
	// is then the number of inversions in the relabelled sequence.
	posA := a.Positions()
	seq := make([]int, len(b))
	for i, c := range b {
		seq[i] = posA[c]
	}
	buf := make([]int, len(seq))
	return countInversions(seq, buf)
}

// KendallTauNaive is the O(n^2) reference implementation used to cross-check
// the merge-count version in tests.
func KendallTauNaive(a, b Ranking) int {
	if len(a) != len(b) {
		panic("ranking: KendallTauNaive on rankings of different lengths")
	}
	posA := a.Positions()
	posB := b.Positions()
	d := 0
	for x := 0; x < len(a); x++ {
		for y := x + 1; y < len(a); y++ {
			if (posA[x] < posA[y]) != (posB[x] < posB[y]) {
				d++
			}
		}
	}
	return d
}

// countInversions counts pairs i<j with s[i] > s[j], destroying s. buf must
// have len(s).
func countInversions(s, buf []int) int {
	n := len(s)
	if n < 2 {
		return 0
	}
	// Bottom-up merge sort: avoids recursion overhead on large profiles.
	inv := 0
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n-width; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if hi > n {
				hi = n
			}
			inv += mergeCount(s, buf, lo, mid, hi)
		}
	}
	return inv
}

func mergeCount(s, buf []int, lo, mid, hi int) int {
	copy(buf[lo:hi], s[lo:hi])
	i, j, k := lo, mid, lo
	inv := 0
	for i < mid && j < hi {
		if buf[i] <= buf[j] {
			s[k] = buf[i]
			i++
		} else {
			s[k] = buf[j]
			j++
			inv += mid - i
		}
		k++
	}
	for i < mid {
		s[k] = buf[i]
		i++
		k++
	}
	for j < hi {
		s[k] = buf[j]
		j++
		k++
	}
	return inv
}

// NormalizedKendallTau returns KendallTau(a, b) divided by the maximum
// possible distance n(n-1)/2, in [0, 1].
func NormalizedKendallTau(a, b Ranking) float64 {
	if len(a) < 2 {
		return 0
	}
	return float64(KendallTau(a, b)) / float64(TotalPairs(len(a)))
}
