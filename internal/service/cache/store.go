package cache

import "time"

// Store is a persistent second-chance tier under the in-memory caches: a
// content-addressed byte store keyed by the same canonical digests, consulted
// on memory misses (lazy warm-on-miss restore) and written through on every
// admission, so a restarted process serves its previous working set warm
// instead of re-paying the solves and O(n²·m) matrix builds (the
// Che-approximation analyses in the package comment predict exactly this
// recovered hit rate).
//
// Implementations must be safe for concurrent use. Every method treats a
// missing key as a miss, not an error; Get must treat corrupt, truncated, or
// expired entries the same way (self-healing by deletion is encouraged),
// because a crash mid-write or a partial disk must never take the serving
// layer down.
type Store interface {
	// Get returns the stored bytes and absolute expiry of key (zero expiry
	// means never). ok is false on a miss — including expired, corrupt, or
	// truncated entries, which Get is expected to delete.
	Get(key string) (value []byte, expiry time.Time, ok bool, err error)
	// Put durably stores value under key with an absolute expiry (zero means
	// never). The write must be atomic: a concurrent or crashed reader sees
	// either the previous entry or the complete new one, never a torn write.
	Put(key string, value []byte, expiry time.Time) error
	// Delete removes key; deleting an absent key is not an error.
	Delete(key string) error
	// Scan visits every live (non-expired, non-corrupt) entry. Iteration
	// stops at the first error returned by fn and reports it.
	Scan(fn func(key string, value []byte, expiry time.Time) error) error
	// Close releases the store's resources. The in-memory tiers flush
	// through Put before their owner calls Close.
	Close() error
}

// Codec serialises cached values for a Store. The in-memory tiers hold
// arbitrary values (any); a persistent tier needs their canonical byte form
// — the serving layer uses JSON for consensus results and the flat-int32
// wire form for precedence matrices.
type Codec struct {
	// Encode returns the byte form of a cached value.
	Encode func(value any) ([]byte, error)
	// Decode reconstructs a cached value from its byte form. A decode error
	// marks the entry corrupt: the caller deletes it and treats the lookup
	// as a miss.
	Decode func(data []byte) (value any, err error)
}
