package experiments

import (
	"math"
	"os"
	"testing"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/unfairgen"
)

// paperTableI transcribes the paper's reported Table I values — the target
// modal-ranking parity of the three calibrated Mallows datasets over the
// 90-candidate Gender(3) x Race(5) database. These are the numbers the
// evaluation is anchored on; the golden files pin our regenerated tables
// byte-for-byte, while this test pins them against the paper itself with a
// tolerance, because the block-construction generator can only approximate
// a target parity on a finite candidate set (e.g. Low-Fair ARP_Race lands
// at 0.61 against the reported 0.70).
var paperTableI = []struct {
	dataset   string
	arpGender float64
	arpRace   float64
	irp       float64
}{
	{"Low-Fair", 0.70, 0.70, 1.00},
	{"Medium-Fair", 0.50, 0.50, 0.75},
	{"High-Fair", 0.30, 0.30, 0.54},
}

// paperTolerance bounds |generated - paper-reported| per Table I cell.
const paperTolerance = 0.10

// TestPaperReportedTableIValues is the ROADMAP's numeric
// paper-value-comparison item for Table I. When an intentional generator or
// sampler change is expected to move the regenerated values (a "golden
// drift"), skip it via MANIRANK_EXPECT_DRIFT=1 while the goldens are being
// re-recorded, then re-enable.
func TestPaperReportedTableIValues(t *testing.T) {
	if os.Getenv("MANIRANK_EXPECT_DRIFT") != "" {
		t.Skip("MANIRANK_EXPECT_DRIFT set: regeneration drift expected, paper-value comparison suspended")
	}
	for _, want := range paperTableI {
		tab, modal, err := tableIModal(want.dataset)
		if err != nil {
			t.Fatal(err)
		}
		rep := fairness.Audit(modal, tab)
		got := map[string]float64{
			"ARP_Gender": rep.ARPs[indexOfAttr(t, tab.Attrs(), "Gender")],
			"ARP_Race":   rep.ARPs[indexOfAttr(t, tab.Attrs(), "Race")],
			"IRP":        rep.IRP,
		}
		wantCells := map[string]float64{
			"ARP_Gender": want.arpGender,
			"ARP_Race":   want.arpRace,
			"IRP":        want.irp,
		}
		for cell, wv := range wantCells {
			if gv := got[cell]; math.Abs(gv-wv) > paperTolerance {
				t.Errorf("%s %s = %.3f, paper reports %.2f (tolerance %.2f)",
					want.dataset, cell, gv, wv, paperTolerance)
			}
		}
	}
	// The transcription must also agree with the generator's calibration
	// specs — if TableIDatasets moves, this table (and the paper anchor)
	// must be revisited deliberately.
	for i, spec := range unfairgen.TableIDatasets() {
		if spec.Name != paperTableI[i].dataset {
			t.Fatalf("dataset %d is %q, transcription says %q", i, spec.Name, paperTableI[i].dataset)
		}
	}
}

func indexOfAttr(t *testing.T, attrs []*attribute.Attribute, name string) int {
	t.Helper()
	for i, a := range attrs {
		if a.Name == name {
			return i
		}
	}
	t.Fatalf("table has no attribute %q", name)
	return -1
}
