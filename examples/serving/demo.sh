#!/usr/bin/env bash
# demo.sh — guided manirankd session: start the server, query two methods
# over one profile, and show the precedence tier skipping the second matrix
# build. See examples/serving/README.md for the API reference this walks.
set -euo pipefail

cd "$(dirname "$0")/../.."

go build -o /tmp/manirankd-demo ./cmd/manirankd

PORT="${DEMO_PORT:-18090}"
/tmp/manirankd-demo -addr "127.0.0.1:${PORT}" -log-level warn &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
BASE="http://127.0.0.1:${PORT}"

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "server never became healthy" >&2; exit 1; }
  sleep 0.1
done

# One 20-candidate profile with a binary protected attribute.
PROFILE='[
  [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19],
  [19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0],
  [1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14,17,16,19,18]
]'
ATTRS='[{"name":"Gender","values":["M","W"],"of":[0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1]}]'

req() { # req <method> [delta]
  local method=$1 delta=${2:-}
  local body="{\"method\":\"${method}\",\"profile\":${PROFILE},\"attributes\":${ATTRS}"
  [ -n "$delta" ] && body="${body},\"delta\":${delta}"
  body="${body}}"
  curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$body"
}

echo "== 1. fair-kemeny (cold: solves, builds the precedence matrix) =="
req fair-kemeny 0.2
echo

echo
echo "== 2. schulze over the SAME profile (new solve, matrix build skipped) =="
req schulze
echo

echo
echo "== 3. fair-kemeny again (result-cache hit, no solver work) =="
req fair-kemeny 0.2
echo

echo
echo "== /statz: note precedence_cache.builds=1 and builds_skipped=1 =="
curl -sf "$BASE/statz"
echo
