// Command experiments regenerates the tables and figures of the MANI-Rank
// paper's evaluation. Each experiment id corresponds to one artifact; see
// DESIGN.md for the per-experiment index.
//
// Usage:
//
//	experiments [-seed N] [-quick] <id>
//
// where <id> is one of table1, fig2, fig3, fig4, fig5, fig6, fig7, table2,
// table3, table4, table5, or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"manirank/internal/experiments"
	"manirank/internal/ranking"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (runs are reproducible per seed)")
	quick := flag.Bool("quick", false, "shrink the heaviest workloads for a fast smoke run")
	workers := flag.Int("workers", 0, "worker pool size for independent experiment cells (0 = all CPUs, 1 = sequential; results are identical either way, but per-cell runtimes contend — time with 1; in-cell solver restarts stay sequential to keep timed columns honest)")
	serveBench := flag.Bool("serve-bench", false, "benchmark the manirankd serving stack instead of an experiment: replay a Zipf-skewed Mallows workload against an in-process server and print a JSON report (BENCH_<n>.json serving section)")
	serveRestart := flag.Bool("serve-restart", false, "benchmark warm-restart recovery instead of an experiment: replay one workload against a cold server, a restarted server over the same -cache-dir, and a cold-restart control (BENCH_7.json restart section)")
	serveChurn := flag.Bool("serve-churn", false, "benchmark streaming sessions instead of an experiment: replay identically seeded edit streams through /v1/session (incremental patches + warm starts) and /v1/aggregate (full rebuilds) across mutation fractions (BENCH_9.json churn section)")
	serveFleet := flag.Bool("serve-fleet", false, "benchmark a rendezvous-sharded fleet instead of an experiment: boot -fleet-nodes in-process replicas peered over loopback, replay one workload against the fleet, a single-node control, and the fleet with one replica killed mid-load (BENCH_10.json fleet section)")
	fleetNodes := flag.Int("fleet-nodes", 3, "serve-fleet: replica count")
	serveRequests := flag.Int("serve-requests", 600, "serve-bench: total requests per skew setting")
	serveClients := flag.Int("serve-clients", 8, "serve-bench: concurrent closed-loop clients")
	serveProfiles := flag.Int("serve-profiles", 50, "serve-bench: distinct request bodies (working-set size)")
	serveCache := flag.Int("serve-cache", 32, "serve-bench: server result-cache capacity (entries); below serve-profiles so eviction is exercised")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-seed N] [-quick] [-workers N] <%s|all>\n       experiments -serve-bench [-serve-requests N] [-serve-clients N] [-serve-profiles N] [-serve-cache N]\n",
			strings.Join(experiments.ExperimentIDs(), "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *serveBench {
		if err := runServeBench(*seed, *serveRequests, *serveClients, *serveProfiles, *serveCache); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *serveRestart {
		if err := runRestartBench(*seed, *serveRequests, *serveClients, *serveProfiles, *serveCache); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *serveChurn {
		if err := runChurnBench(*seed, *serveRequests, *serveClients, *serveCache); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if *serveFleet {
		if err := runFleetBench(*seed, *serveRequests, *serveClients, *serveProfiles, *serveCache, *fleetNodes); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// The flag also governs kernel-level parallelism (precedence-matrix
	// sharding) so -workers 1 is a fully sequential, contention-free run;
	// solver restarts are pinned sequential inside the harness (see
	// experiments.Config.kemenyOptions).
	ranking.DefaultWorkers = *workers
	cfg := experiments.Config{Seed: *seed, Out: os.Stdout, Quick: *quick, Workers: *workers}
	start := time.Now()
	if err := experiments.Run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}
