package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
)

// createSession POSTs an AggregateRequest to /v1/session and decodes the
// initial consensus.
func createSession(t *testing.T, url string, req *AggregateRequest) (int, *SessionResponse) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/session", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out SessionResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding session response %s: %v", body, err)
	}
	return resp.StatusCode, &out
}

// postOp POSTs one SessionOp to /v1/session/{id}.
func postOp(t *testing.T, url, id string, op *SessionOp) (int, *SessionResponse) {
	t.Helper()
	blob, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/session/"+id, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out SessionResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding op response %s: %v", body, err)
	}
	return resp.StatusCode, &out
}

// randomRow returns a random permutation row for mutations.
func randomRow(n int, seed int64) []int {
	return rand.New(rand.NewSource(seed)).Perm(n)
}

// TestSessionLifecycle drives the streaming surface end to end: create,
// mutate, re-solve, inspect, delete — checking the digest-freshness
// invariants (a mutation always forks the result-cache key; an unchanged
// state re-solve is a cache hit) and that the incrementally patched matrix
// is shared with the stateless path through the matrix tier.
func TestSessionLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := testRequest("fair-kemeny", 7)
	n := len(req.Profile[0])

	status, created := createSession(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("create: status %d", status)
	}
	if created.SessionID == "" || created.Version != 0 || created.Rankers != len(req.Profile) {
		t.Fatalf("create response = %+v", created)
	}
	if created.WarmStarted {
		t.Fatal("first solve claims a warm start")
	}
	if err := created.Ranking.Validate(); err != nil {
		t.Fatalf("initial consensus invalid: %v", err)
	}
	id := created.SessionID

	// Re-solve with no mutation: same state + same warm seed = cache hit
	// with the same digest.
	status, again := postOp(t, ts.URL, id, &SessionOp{Op: "solve"})
	if status != http.StatusOK || !again.Cached || again.Digest != created.Digest {
		t.Fatalf("no-op re-solve: status=%d cached=%v digest match=%v",
			status, again.Cached, again.Digest == created.Digest)
	}

	// Mutate: the consensus must be fresh (new digest, not cached), fair,
	// and warm-started from the previous one.
	status, mutated := postOp(t, ts.URL, id, &SessionOp{Op: "update", Index: 0, Ranking: randomRow(n, 1)})
	if status != http.StatusOK {
		t.Fatalf("update: status %d", status)
	}
	if mutated.Cached || mutated.Digest == created.Digest {
		t.Fatal("mutated session served the pre-mutation cache entry")
	}
	if !mutated.WarmStarted || mutated.Version != 1 {
		t.Fatalf("update response = warm:%v version:%d, want warm-started v1", mutated.WarmStarted, mutated.Version)
	}
	if err := mutated.Ranking.Validate(); err != nil {
		t.Fatalf("post-mutation consensus invalid: %v", err)
	}
	for name, arp := range mutated.Audit.ARPs {
		if arp > req.Delta+1e-9 {
			t.Fatalf("post-mutation ARP %s = %g exceeds delta", name, arp)
		}
	}

	// Add and remove change the ranker count.
	status, added := postOp(t, ts.URL, id, &SessionOp{Op: "add", Ranking: randomRow(n, 2)})
	if status != http.StatusOK || added.Rankers != len(req.Profile)+1 || added.Version != 2 {
		t.Fatalf("add: status=%d %+v", status, added)
	}
	status, removed := postOp(t, ts.URL, id, &SessionOp{Op: "remove", Index: 3})
	if status != http.StatusOK || removed.Rankers != len(req.Profile) || removed.Version != 3 {
		t.Fatalf("remove: status=%d %+v", status, removed)
	}

	// The session wrote its patched matrix through to the shared tier under
	// the post-mutation profile digest, so a stateless request over the
	// session's current profile must not pay a matrix build.
	cur := s.sessions[id].req
	statelessReq := *cur
	buildsBefore := s.prec.Stats().Builds
	status, stateless := post(t, ts.URL, &statelessReq) // post() helper targets /v1/aggregate
	_ = stateless
	if status != http.StatusOK {
		t.Fatalf("stateless request over session profile: status %d", status)
	}
	if got := s.prec.Stats().Builds; got != buildsBefore {
		t.Fatalf("stateless request over mutated session profile rebuilt the matrix (builds %d -> %d)",
			buildsBefore, got)
	}

	// Inspect and delete.
	resp, err := http.Get(ts.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.SessionID != id || info.Version != 3 || info.Rankers != len(req.Profile) || info.Candidates != n {
		t.Fatalf("session info = %+v", info)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if status, _ := postOp(t, ts.URL, id, &SessionOp{Op: "solve"}); status != http.StatusNotFound {
		t.Fatalf("op on deleted session: status %d, want 404", status)
	}
}

// TestSessionMutationDigestsNeverCollide pins the staleness impossibility
// property: walking a session through a cycle of mutations that RETURNS to
// a previous profile state reuses that state's cache entry (same digest only
// when state and warm seed agree), while every distinct state gets a
// distinct digest.
func TestSessionMutationDigestsNeverCollide(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest("fair-borda", 8)
	n := len(req.Profile[0])
	origRow := append([]int(nil), req.Profile[2]...)

	_, created := createSession(t, ts.URL, req)
	id := created.SessionID

	seen := map[string]int{created.Digest: 0}
	_, m1 := postOp(t, ts.URL, id, &SessionOp{Op: "update", Index: 2, Ranking: randomRow(n, 3)})
	if _, dup := seen[m1.Digest]; dup {
		t.Fatal("mutation reused a previous digest")
	}
	seen[m1.Digest] = 1
	// Restore the original row: the profile state is back, but the warm seed
	// differs from the created solve's (nil) — so the digest must STILL be
	// fresh, never the created entry.
	_, m2 := postOp(t, ts.URL, id, &SessionOp{Op: "update", Index: 2, Ranking: origRow})
	if m2.Digest == created.Digest {
		t.Fatal("restored state with a different warm seed collided with the cold entry")
	}
	if _, dup := seen[m2.Digest]; dup {
		t.Fatal("mutation reused a previous digest")
	}
}

// TestSessionConcurrency is the race wall: several sessions mutated and
// re-solved from concurrent clients while /statz and /metricsz scrape,
// under -race. Every response must carry a valid, fair consensus — a solve
// that observed a half-applied matrix patch would produce garbage.
func TestSessionConcurrency(t *testing.T) {
	const sessions, opsPerClient = 3, 6
	s, ts := newTestServer(t, Config{Workers: 4})

	ids := make([]string, sessions)
	for i := range ids {
		status, created := createSession(t, ts.URL, testRequest("fair-kemeny", int64(20+i)))
		if status != http.StatusOK {
			t.Fatalf("create %d: status %d", i, status)
		}
		ids[i] = created.SessionID
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions*2+1)
	for i, id := range ids {
		for client := 0; client < 2; client++ {
			wg.Add(1)
			go func(id string, seed int64) {
				defer wg.Done()
				for k := 0; k < opsPerClient; k++ {
					op := &SessionOp{Op: "solve"}
					if k%2 == 0 {
						op = &SessionOp{Op: "update", Index: int(seed+int64(k)) % 12, Ranking: randomRow(20, seed*100+int64(k))}
					}
					status, out := postOp(t, ts.URL, id, op)
					if status != http.StatusOK {
						errs <- fmt.Errorf("session %s op %d: status %d", id[:8], k, status)
						return
					}
					if err := out.Ranking.Validate(); err != nil {
						errs <- fmt.Errorf("session %s op %d: invalid consensus: %v", id[:8], k, err)
						return
					}
					if out.Audit != nil && out.Audit.IRP > 0.3+1e-9 {
						errs <- fmt.Errorf("session %s op %d: IRP %g violates delta", id[:8], k, out.Audit.IRP)
						return
					}
				}
			}(id, int64(i*2+client))
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 10; k++ {
			for _, path := range []string{"/statz", "/metricsz"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errs <- fmt.Errorf("scrape %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.StatzSnapshot()
	if st.Sessions.Active != sessions {
		t.Fatalf("sessions active = %d, want %d", st.Sessions.Active, sessions)
	}
	if st.Sessions.Ops["create"] != sessions || st.Sessions.Ops["update"]+st.Sessions.Ops["solve"] == 0 {
		t.Fatalf("session op counters = %+v", st.Sessions.Ops)
	}
}

// TestSessionCancellation pins the deadline lifecycle: a mutation whose
// re-solve is truncated by a tiny deadline still applies durably, the
// truncated (partial) consensus is never cached, and the session remains
// re-solvable at full budget afterwards.
func TestSessionCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A larger instance than testRequest's, so a few-ms budget reliably
	// truncates the constrained search mid-flight.
	req := testRequest("fair-kemeny", 9)
	const n = 60
	rng := rand.New(rand.NewSource(99))
	req.Profile = make([][]int, 20)
	for i := range req.Profile {
		req.Profile[i] = rng.Perm(n)
	}
	gender := make([]int, n)
	region := make([]int, n)
	for c := 0; c < n; c++ {
		gender[c] = c % 2
		region[c] = (c / 2) % 2
	}
	req.Attributes = []AttributeSpec{
		{Name: "Gender", Values: []string{"M", "W"}, Of: gender},
		{Name: "Region", Values: []string{"N", "S"}, Of: region},
	}

	status, created := createSession(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("create: status %d", status)
	}
	id := created.SessionID

	// A few-ms budget cannot finish a fair-kemeny solve at n=60; the engine
	// returns best-so-far, flagged partial.
	status, truncated := postOp(t, ts.URL, id, &SessionOp{Op: "update", Index: 1, Ranking: rng.Perm(n), DeadlineMillis: 5})
	if status != http.StatusOK {
		t.Fatalf("truncated update: status %d", status)
	}
	if err := truncated.Ranking.Validate(); err != nil {
		t.Fatalf("best-so-far consensus invalid: %v", err)
	}
	if truncated.Version != 1 {
		t.Fatalf("version = %d, want the mutation applied despite truncation", truncated.Version)
	}
	if truncated.Partial && truncated.Cached {
		t.Fatal("a partial result claimed to come from the cache")
	}

	// Full-budget re-solve of the same state: must compute (a partial result
	// was never admitted to the cache), complete, and be servable again.
	status, full := postOp(t, ts.URL, id, &SessionOp{Op: "solve"})
	if status != http.StatusOK || full.Partial {
		t.Fatalf("post-truncation solve: status=%d partial=%v", status, full.Partial)
	}
	if truncated.Partial && full.Cached {
		t.Fatal("full re-solve was served the truncated result from the cache")
	}
	if full.Version != 1 {
		t.Fatalf("version drifted to %d", full.Version)
	}
	// And once complete, the state IS cacheable.
	if _, cached := postOp(t, ts.URL, id, &SessionOp{Op: "solve"}); !cached.Cached {
		t.Fatal("complete session result was not cached")
	}
}

// TestSessionValidation exercises the session error surface.
func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1})
	req := testRequest("fair-borda", 10)
	n := len(req.Profile[0])

	if status, _ := postOp(t, ts.URL, "no-such-session", &SessionOp{Op: "solve"}); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}

	status, created := createSession(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("create: status %d", status)
	}
	id := created.SessionID

	if status, _ := createSession(t, ts.URL, testRequest("fair-borda", 11)); status != http.StatusTooManyRequests {
		t.Fatalf("create beyond MaxSessions: status %d, want 429", status)
	}

	bad := []SessionOp{
		{Op: "teleport"},
		{Op: "update", Index: 99, Ranking: randomRow(n, 1)},
		{Op: "remove", Index: -1},
		{Op: "add", Ranking: []int{0, 1}},
		{Op: "add", Ranking: append([]int{0, 0}, randomRow(n, 1)[2:]...)},
	}
	for _, op := range bad {
		if status, _ := postOp(t, ts.URL, id, &op); status != http.StatusBadRequest {
			t.Fatalf("op %+v: status %d, want 400", op, status)
		}
	}
	// Rejected mutations leave the session consistent: version unchanged,
	// still solvable.
	if _, out := postOp(t, ts.URL, id, &SessionOp{Op: "solve"}); out == nil || out.Version != 0 {
		t.Fatalf("session state after rejected ops: %+v", out)
	}

	// Draining the profile to one ranking then removing it is refused.
	for i := len(req.Profile); i > 1; i-- {
		if status, _ := postOp(t, ts.URL, id, &SessionOp{Op: "remove", Index: 0}); status != http.StatusOK {
			t.Fatalf("remove down to %d rankers: status %d", i-1, status)
		}
	}
	if status, _ := postOp(t, ts.URL, id, &SessionOp{Op: "remove", Index: 0}); status != http.StatusBadRequest {
		t.Fatalf("removing the last ranking: status %d, want 400", status)
	}

	// Sessions disabled entirely.
	_, tsOff := newTestServer(t, Config{MaxSessions: -1})
	if status, _ := createSession(t, tsOff.URL, req); status != http.StatusNotFound {
		t.Fatalf("disabled sessions: create status %d, want 404", status)
	}
}
