package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// digests returns n synthetic cache keys shaped like the service's real
// ones: hex SHA-256 strings.
func digests(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("profile-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func nodeSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// The owner of a key must not depend on the order nodes are listed in —
// every replica sorts nothing and shares no state, so determinism across
// orderings is the whole correctness story.
func TestOwnerDeterministicAcrossOrderings(t *testing.T) {
	nodes := nodeSet(5)
	keys := digests(500)
	want := make([]string, len(keys))
	for i, k := range keys {
		want[i] = Owner(nodes, k, nil)
		if want[i] == "" {
			t.Fatalf("no owner for %s", k)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		for i, k := range keys {
			if got := Owner(shuffled, k, nil); got != want[i] {
				t.Fatalf("trial %d: owner of %s = %s under ordering %v, want %s", trial, k, got, shuffled, want[i])
			}
		}
	}
}

func TestOwnersRankingDeterministicAndDisjoint(t *testing.T) {
	nodes := nodeSet(5)
	for _, k := range digests(200) {
		ranked := Owners(nodes, k, 3, nil)
		if len(ranked) != 3 {
			t.Fatalf("Owners(%s) returned %d nodes, want 3", k, len(ranked))
		}
		if ranked[0] != Owner(nodes, k, nil) {
			t.Fatalf("Owners[0] disagrees with Owner for %s", k)
		}
		seen := map[string]bool{}
		for _, n := range ranked {
			if seen[n] {
				t.Fatalf("Owners(%s) repeats node %s", k, n)
			}
			seen[n] = true
		}
	}
}

// Balance: over 10^5 digests every node's share must sit within 10% of
// 1/N. With the avalanched 64-bit weights the observed deviation is well
// under 2% at N=8, so 10% (the issue's bound) is a conservative regression
// gate, not a tuned one.
func TestOwnerBalance(t *testing.T) {
	keys := digests(100_000)
	for _, n := range []int{3, 5, 8} {
		nodes := nodeSet(n)
		counts := map[string]int{}
		for _, k := range keys {
			counts[Owner(nodes, k, nil)]++
		}
		ideal := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			dev := (float64(counts[node]) - ideal) / ideal
			if dev < -0.10 || dev > 0.10 {
				t.Errorf("N=%d: node %s owns %d keys (%.1f%% off ideal %.0f)", n, node, counts[node], 100*dev, ideal)
			}
		}
	}
}

// Minimal disruption: when a node joins or leaves, only the keys whose
// ownership involved that node may move — ~1/N of the space — and every
// key that moves on a join moves TO the joiner (resp. FROM the leaver).
func TestOwnerMinimalMovement(t *testing.T) {
	keys := digests(100_000)
	const n = 5
	nodes := nodeSet(n + 1)
	before, after := nodes[:n], nodes // join of nodes[n]

	moved := 0
	for _, k := range keys {
		was, is := Owner(before, k, nil), Owner(after, k, nil)
		if was != is {
			moved++
			if is != nodes[n] {
				t.Fatalf("join: key %s moved %s -> %s, not to the joiner", k, was, is)
			}
		}
	}
	// Expected movement is 1/(N+1) of keys; allow ±25% relative slack.
	ideal := float64(len(keys)) / float64(n+1)
	if f := float64(moved); f < 0.75*ideal || f > 1.25*ideal {
		t.Errorf("join moved %d keys, want ~%.0f (1/%d of the space)", moved, ideal, n+1)
	}

	// Leave is the mirror image: every key the leaver owned must move,
	// and no other key may.
	for _, k := range keys {
		was, is := Owner(after, k, nil), Owner(before, k, nil)
		if was == nodes[n] {
			if is == nodes[n] || is == "" {
				t.Fatalf("leave: key %s still owned by the leaver", k)
			}
		} else if was != is {
			t.Fatalf("leave: key %s moved %s -> %s though the leaver never owned it", k, was, is)
		}
	}
}

// The eligible filter is how liveness reaches the ring: a dead owner's keys
// must fall to the runner-up (Owners[1]) deterministically.
func TestOwnerEligibleFallsToRunnerUp(t *testing.T) {
	nodes := nodeSet(4)
	for _, k := range digests(300) {
		ranked := Owners(nodes, k, 2, nil)
		dead := ranked[0]
		got := Owner(nodes, k, func(n string) bool { return n != dead })
		if got != ranked[1] {
			t.Fatalf("key %s: with %s dead, owner = %s, want runner-up %s", k, dead, got, ranked[1])
		}
	}
	if got := Owner(nodes, "k", func(string) bool { return false }); got != "" {
		t.Fatalf("no eligible nodes should yield empty owner, got %q", got)
	}
}
