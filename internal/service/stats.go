package service

import (
	"sort"
	"sync"
	"time"
)

// ringSize is the latency window: percentiles are computed over the most
// recent ringSize observations, a fixed-memory sliding window that tracks
// current behaviour instead of lifetime averages.
const ringSize = 1024

// latencyRing is a fixed-size ring of request latencies with on-demand
// percentile queries.
type latencyRing struct {
	mu    sync.Mutex
	buf   [ringSize]float64 // milliseconds
	next  int
	count uint64
}

func (r *latencyRing) add(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % ringSize
	r.count++
	r.mu.Unlock()
}

// LatencySnapshot summarises one ring for /statz.
type LatencySnapshot struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

func (r *latencyRing) snapshot() LatencySnapshot {
	r.mu.Lock()
	n := int(r.count)
	if n > ringSize {
		n = ringSize
	}
	window := make([]float64, n)
	copy(window, r.buf[:n])
	count := r.count
	r.mu.Unlock()
	snap := LatencySnapshot{Count: count}
	if n == 0 {
		return snap
	}
	sort.Float64s(window)
	// Nearest-rank percentiles over the window.
	snap.P50 = window[(n-1)*50/100]
	snap.P99 = window[(n-1)*99/100]
	snap.Max = window[n-1]
	return snap
}
