package attribute

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ReadTableCSV reads a candidate database from CSV. The first row is a
// header: the first column names the candidate id column, every further
// column a protected attribute. Each body row holds a candidate id (dense
// 0..n-1, in any order) followed by categorical attribute values. Value
// domains are the sorted distinct values observed per column.
func ReadTableCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("attribute: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("attribute: CSV needs a header and at least one candidate row")
	}
	header := records[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("attribute: CSV needs an id column and at least one attribute column")
	}
	body := records[1:]
	n := len(body)
	raw := make([][]string, len(header)-1) // raw[attr][candidate]
	for i := range raw {
		raw[i] = make([]string, n)
	}
	seen := make([]bool, n)
	for _, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("attribute: CSV row has %d fields, header has %d", len(rec), len(header))
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("attribute: candidate id %q is not an integer: %w", rec[0], err)
		}
		if id < 0 || id >= n || seen[id] {
			return nil, fmt.Errorf("attribute: candidate ids must be dense 0..%d without repeats; got %d", n-1, id)
		}
		seen[id] = true
		for i := 1; i < len(rec); i++ {
			raw[i-1][id] = rec[i]
		}
	}
	attrs := make([]*Attribute, 0, len(raw))
	for i, col := range raw {
		domSet := map[string]bool{}
		for _, v := range col {
			domSet[v] = true
		}
		dom := make([]string, 0, len(domSet))
		for v := range domSet {
			dom = append(dom, v)
		}
		sort.Strings(dom)
		idx := make(map[string]int, len(dom))
		for j, v := range dom {
			idx[v] = j
		}
		of := make([]int, n)
		for c, v := range col {
			of[c] = idx[v]
		}
		a, err := NewAttribute(header[i+1], dom, of)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, a)
	}
	return NewTable(n, attrs...)
}

// WriteTableCSV writes the candidate database in the format ReadTableCSV
// accepts.
func WriteTableCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.Attrs())+1)
	header = append(header, "candidate")
	for _, a := range t.Attrs() {
		header = append(header, a.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for c := 0; c < t.N(); c++ {
		rec := make([]string, 0, len(header))
		rec = append(rec, strconv.Itoa(c))
		for _, a := range t.Attrs() {
			rec = append(rec, a.ValueOf(c))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
