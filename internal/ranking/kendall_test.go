package ranking

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallTauKnownValues(t *testing.T) {
	id := New(4)
	cases := []struct {
		b    Ranking
		want int
	}{
		{New(4), 0},
		{Ranking{1, 0, 2, 3}, 1},
		{Ranking{3, 2, 1, 0}, 6}, // full reversal = n(n-1)/2
		{Ranking{1, 2, 3, 0}, 3},
	}
	for _, tc := range cases {
		if got := KendallTau(id, tc.b); got != tc.want {
			t.Errorf("KendallTau(id, %v) = %d, want %d", tc.b, got, tc.want)
		}
	}
}

func TestKendallTauMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60)
		a, b := Random(n, rng), Random(n, rng)
		return KendallTau(a, b) == KendallTauNaive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		a, b := Random(n, rng), Random(n, rng)
		return KendallTau(a, b) == KendallTau(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauIdentityOfIndiscernibles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		a := Random(n, rng)
		return KendallTau(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30)
		a, b, c := Random(n, rng), Random(n, rng), Random(n, rng)
		return KendallTau(a, c) <= KendallTau(a, b)+KendallTau(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		a, b := Random(n, rng), Random(n, rng)
		d := KendallTau(a, b)
		return d >= 0 && d <= TotalPairs(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKendallTauReversalIsMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		a := Random(n, rng)
		if got := KendallTau(a, a.Reverse()); got != TotalPairs(n) {
			t.Fatalf("n=%d: KendallTau(a, reverse(a)) = %d, want %d", n, got, TotalPairs(n))
		}
	}
}

func TestKendallTauPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	KendallTau(New(3), New(4))
}

func TestNormalizedKendallTau(t *testing.T) {
	a := New(10)
	if got := NormalizedKendallTau(a, a.Reverse()); got != 1.0 {
		t.Fatalf("normalized distance to reversal = %v, want 1", got)
	}
	if got := NormalizedKendallTau(a, a); got != 0.0 {
		t.Fatalf("normalized self distance = %v, want 0", got)
	}
	if got := NormalizedKendallTau(Ranking{0}, Ranking{0}); got != 0 {
		t.Fatalf("single candidate distance = %v, want 0", got)
	}
}

func BenchmarkKendallTauMerge1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := Random(1000, rng), Random(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTau(x, y)
	}
}

func BenchmarkKendallTauNaive1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := Random(1000, rng), Random(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTauNaive(x, y)
	}
}
