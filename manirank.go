// Package manirank is a Go implementation of MANI-Rank — Multiple Attribute
// and Intersectional group fairness for consensus ranking (Cachel,
// Rundensteiner, Harrison; ICDE 2022). It solves the Multi-attribute Fair
// Consensus Ranking (MFCR) problem: combining the preferences of many
// rankers over candidates carrying several categorical protected attributes
// (gender, race, ...) into one consensus ranking that
//
//  1. satisfies MANI-Rank group fairness — the Attribute Rank Parity of
//     every protected attribute and the Intersectional Rank Parity of their
//     combination are bounded by a threshold Delta — and
//  2. minimizes Pairwise Disagreement loss against the base rankings.
//
// # Quick start
//
//	table, _ := manirank.NewTable(4,
//	    manirank.MustAttribute("Gender", []string{"M", "W"}, []int{0, 1, 0, 1}))
//	profile := manirank.Profile{{0, 1, 2, 3}, {1, 0, 3, 2}}
//	engine, _ := manirank.NewEngine(profile, manirank.WithTable(table))
//	res, _ := engine.Solve(ctx, manirank.MethodFairKemeny, manirank.Targets(table, 0.1))
//	// res.Ranking, res.PDLoss, res.Report — the consensus plus its audit.
//
// The Engine is the package's entry point (API v2): constructed once per
// profile, it owns the shared precedence matrix every method consumes and
// resolves Method values through a single registry, so solving several
// methods over one profile pays the O(n²·m) matrix construction once. The
// solver family mirrors the paper: fair-kemeny is exact (branch and bound
// with fairness pruning) for small candidate sets and a constrained local
// search at scale; fair-copeland, fair-schulze and fair-borda run in
// polynomial time using the Make-MR-Fair repair algorithm. Fairness-unaware
// aggregators and the paper's baselines are also registered for comparison.
// The per-method functions below (FairKemeny, Borda, ...) predate the
// Engine and remain as deprecated wrappers with identical output.
//
// See DESIGN.md (§8 for the Engine architecture and the old→new migration
// table) and EXPERIMENTS.md for the full reproduction of the paper's
// evaluation.
package manirank

import (
	"manirank/internal/aggregate"
	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/fairness"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
)

// Ranking is a strict total order over candidates 0..n-1; index 0 is the top
// position.
type Ranking = ranking.Ranking

// Profile is a set of base rankings over the same candidates (the paper's R).
type Profile = ranking.Profile

// Precedence is the pairwise precedence matrix W of a profile (paper Def. 11).
type Precedence = ranking.Precedence

// Attribute is a categorical protected attribute over the candidate universe.
type Attribute = attribute.Attribute

// Table is the candidate database X: candidates described by one or more
// protected attributes.
type Table = attribute.Table

// Target bounds the FPR spread (parity) of one attribute by Delta; a full
// MANI-Rank requirement is one Target per attribute plus the intersection.
type Target = core.Target

// Report is a complete fairness audit of one ranking: per-group FPR scores,
// per-attribute ARP, and IRP.
type Report = fairness.Report

// Thresholds carries per-attribute fairness targets for customized
// MANI-Rank (paper Section II-B).
type Thresholds = fairness.Thresholds

// Options tunes the MFCR solvers (exact-search thresholds, node budgets,
// heuristic seeds).
//
// Deprecated: configure Engine.Solve with functional SolveOptions instead
// (WithSeed, WithExactThreshold, ...); WithKemenyOptions imports an
// existing configuration wholesale.
type Options = core.Options

// KemenyOptions tunes the Kemeny engines used by the fairness-unaware
// baseline and inside FairKemeny.
//
// Deprecated: configure Engine.Solve with functional SolveOptions instead
// (WithSeed, WithExactThreshold, ...); WithKemenyOptions imports an
// existing configuration wholesale.
type KemenyOptions = aggregate.KemenyOptions

// MallowsModel is the exponential location-spread distribution over rankings
// used to generate synthetic preference data (paper Section IV-A).
type MallowsModel = mallows.Model

// NewRanking returns the identity ranking over n candidates.
func NewRanking(n int) Ranking { return ranking.New(n) }

// NewAttribute validates and constructs a protected attribute: a value
// domain and each candidate's value index.
func NewAttribute(name string, values []string, of []int) (*Attribute, error) {
	return attribute.NewAttribute(name, values, of)
}

// MustAttribute is NewAttribute that panics on invalid input; intended for
// programmatically constructed attributes.
func MustAttribute(name string, values []string, of []int) *Attribute {
	a, err := attribute.NewAttribute(name, values, of)
	if err != nil {
		panic(err)
	}
	return a
}

// NewTable builds a candidate database of n candidates with the given
// protected attributes.
func NewTable(n int, attrs ...*Attribute) (*Table, error) {
	return attribute.NewTable(n, attrs...)
}

// NewPrecedence computes the precedence matrix of a profile with the
// upper-triangle accumulation kernel (n(n-1)/2 branch-free increments per
// base ranking), sharded over a worker pool for large profiles.
func NewPrecedence(p Profile) (*Precedence, error) { return ranking.NewPrecedence(p) }

// NewPrecedenceWorkers is NewPrecedence with an explicit construction worker
// count (0 auto-sizes, 1 forces the serial kernel). The matrix is bitwise
// identical for every worker count.
func NewPrecedenceWorkers(p Profile, workers int) (*Precedence, error) {
	return ranking.NewPrecedenceWorkers(p, workers)
}

// NewMallows constructs a Mallows model centred at modal with spread theta.
func NewMallows(modal Ranking, theta float64) (*MallowsModel, error) {
	return mallows.New(modal, theta)
}

// KendallTau returns the Kendall tau distance between two rankings in
// O(n log n) (paper Def. 8).
func KendallTau(a, b Ranking) int { return ranking.KendallTau(a, b) }

// PDLoss returns the Pairwise Disagreement loss of consensus r against
// profile p, in [0, 1] (paper Def. 9).
func PDLoss(p Profile, r Ranking) float64 { return ranking.PDLoss(p, r) }

// FPR returns the Favored Pair Representation score of every group of
// attribute a in ranking r, indexed by attribute value (paper Def. 4). 0.5
// is statistical parity.
func FPR(r Ranking, a *Attribute) []float64 { return fairness.GroupFPRs(r, a) }

// ARP returns the Attribute Rank Parity of attribute a in ranking r: the
// maximum FPR gap between any two of its groups (paper Def. 5).
func ARP(r Ranking, a *Attribute) float64 { return fairness.ARP(r, a) }

// IRP returns the Intersectional Rank Parity of ranking r over t's
// attribute intersection (paper Def. 6).
func IRP(r Ranking, t *Table) float64 { return fairness.IRP(r, t) }

// Audit computes the full MANI-Rank fairness report of ranking r.
func Audit(r Ranking, t *Table) Report { return fairness.Audit(r, t) }

// FormatReport renders an audit with attribute and group names.
func FormatReport(rep Report, t *Table) string { return fairness.FormatReport(rep, t) }

// SatisfiesMANIRank reports whether r meets MANI-Rank fairness at threshold
// delta: every ARP and the IRP at or below delta (paper Def. 7).
func SatisfiesMANIRank(r Ranking, t *Table, delta float64) bool {
	return fairness.SatisfiesMANIRank(r, t, delta)
}

// Targets returns the full MANI-Rank target set for table t at a uniform
// threshold delta: every protected attribute plus the intersection.
func Targets(t *Table, delta float64) []Target { return core.Targets(t, delta) }

// TargetsWithThresholds returns a customized target set honouring
// per-attribute thresholds (paper Section II-B).
func TargetsWithThresholds(t *Table, th Thresholds) []Target {
	return core.TargetsWithThresholds(t, th)
}

// TargetsWithSubsets extends the full MANI-Rank target set with parity
// constraints on specific subsets of protected attributes (paper Section
// II-B), each subset given as a list of attribute names.
func TargetsWithSubsets(t *Table, delta float64, subsets ...[]string) ([]Target, error) {
	return core.TargetsWithSubsets(t, delta, subsets...)
}

// MakeMRFair repairs a consensus ranking with targeted pair swaps until
// every target holds (paper Algorithm 2). The input is not modified.
func MakeMRFair(r Ranking, targets []Target) (Ranking, error) {
	return core.MakeMRFair(r, targets)
}

// FairKemeny solves MFCR optimally for small candidate sets (constrained
// branch and bound) and with constrained local search at scale (paper
// Algorithm 1).
//
// Deprecated: use Engine.Solve with MethodFairKemeny — same output
// bitwise, with context cancellation, a shared precedence matrix across
// methods, and the audit/PD-loss bundled in the Result.
func FairKemeny(p Profile, targets []Target, opts Options) (Ranking, error) {
	return core.FairKemeny(p, targets, opts)
}

// FairCopeland solves MFCR with the Copeland aggregator + Make-MR-Fair.
//
// Deprecated: use Engine.Solve with MethodFairCopeland — same output
// bitwise over the Engine's shared precedence matrix.
func FairCopeland(p Profile, targets []Target) (Ranking, error) {
	return core.FairCopeland(p, targets)
}

// FairSchulze solves MFCR with the Schulze aggregator + Make-MR-Fair.
//
// Deprecated: use Engine.Solve with MethodFairSchulze — same output
// bitwise over the Engine's shared precedence matrix.
func FairSchulze(p Profile, targets []Target) (Ranking, error) {
	return core.FairSchulze(p, targets)
}

// FairBorda solves MFCR with the Borda aggregator + Make-MR-Fair — the
// fastest method, suitable for very large candidate databases.
//
// Deprecated: use Engine.Solve with MethodFairBorda — same output bitwise.
// (For Borda-only workloads over very large candidate sets where an O(n²)
// matrix is unaffordable, this wrapper's O(n·|R|) profile path remains the
// right tool; the Engine targets multi-method workloads.)
func FairBorda(p Profile, targets []Target) (Ranking, error) {
	return core.FairBorda(p, targets)
}

// Kemeny returns the fairness-unaware Kemeny consensus of a profile: exact
// for small n, Borda-seeded iterated local search at scale.
//
// Deprecated: use Engine.Solve with MethodKemeny — same output bitwise,
// with context cancellation and best-so-far results on expiry.
func Kemeny(p Profile, opts KemenyOptions) (Ranking, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return aggregate.Kemeny(w, opts), nil
}

// Borda returns the fairness-unaware Borda consensus.
//
// Deprecated: use Engine.Solve with MethodBorda — same output bitwise
// (integer-identical point totals from the matrix's row sums). The O(n·|R|)
// escape hatch note on FairBorda applies here too.
func Borda(p Profile) (Ranking, error) { return aggregate.Borda(p) }

// Copeland returns the fairness-unaware Copeland consensus.
//
// Deprecated: use Engine.Solve with MethodCopeland — same output bitwise
// over the Engine's shared precedence matrix.
func Copeland(p Profile) (Ranking, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return aggregate.Copeland(w), nil
}

// Schulze returns the fairness-unaware Schulze consensus.
//
// Deprecated: use Engine.Solve with MethodSchulze — same output bitwise
// over the Engine's shared precedence matrix.
func Schulze(p Profile) (Ranking, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return aggregate.Schulze(w), nil
}

// PriceOfFairness returns PDLoss(p, fair) - PDLoss(p, unfair), the
// representation cost of imposing fairness (paper Eq. 13).
func PriceOfFairness(p Profile, fair, unfair Ranking) float64 {
	return core.PriceOfFairness(p, fair, unfair)
}
