package kemeny

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"manirank/internal/ranking"
)

// TestLocalSearchDeltaMatchesFullCost verifies the incremental contract
// Heuristic relies on: the delta localSearchDelta returns equals the change
// in the full O(n^2) Kemeny cost.
func TestLocalSearchDeltaMatchesFullCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(25), 1+rng.Intn(8)
		w := ranking.MustPrecedence(randomProfile(n, m, rng))
		r := ranking.Random(n, rng)
		before := w.KemenyCost(r)
		delta := localSearchDelta(context.Background(), w, r)
		return before+delta == w.KemenyCost(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPerturbDeltaMatchesFullCost does the same for the perturbation moves,
// both unconstrained (nil constraints accept every move) and constrained.
func TestPerturbDeltaMatchesFullCost(t *testing.T) {
	f := func(seed int64, constrained bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(25), 1+rng.Intn(8)
		w := ranking.MustPrecedence(randomProfile(n, m, rng))
		r := ranking.Random(n, rng)
		var cons []Constraint
		if constrained && n >= 4 {
			cons = []Constraint{{Attr: binaryAttr(n, rng), Delta: 0.9}}
		}
		wasFeasible := Feasible(r, cons)
		before := w.KemenyCost(r)
		var aud *auditor
		if len(cons) > 0 {
			aud = newAuditor(cons, r)
		}
		delta := perturbFeasibleDelta(w, aud, r, 6, rng)
		// The delta is exact, and feasibility-preserving moves never break a
		// feasible start.
		return before+delta == w.KemenyCost(r) && (!wasFeasible || Feasible(r, cons))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestHeuristicCostNeverWorseThanSeed pins the Heuristic invariant that the
// incrementally-tracked best cost corresponds to the returned ranking.
func TestHeuristicBestMatchesReportedRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(20)
		w := ranking.MustPrecedence(randomProfile(n, 7, rng))
		best := Heuristic(w, Options{Seed: int64(trial)})
		seed := LocalSearch(w, BordaFromPrecedence(w))
		if w.KemenyCost(best) > w.KemenyCost(seed) {
			t.Fatalf("Heuristic returned a ranking worse than its own seed (%d > %d)",
				w.KemenyCost(best), w.KemenyCost(seed))
		}
	}
}
