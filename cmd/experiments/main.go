// Command experiments regenerates the tables and figures of the MANI-Rank
// paper's evaluation. Each experiment id corresponds to one artifact; see
// DESIGN.md for the per-experiment index.
//
// Usage:
//
//	experiments [-seed N] [-quick] <id>
//
// where <id> is one of table1, fig2, fig3, fig4, fig5, fig6, fig7, table2,
// table3, table4, table5, or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"manirank/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed (runs are reproducible per seed)")
	quick := flag.Bool("quick", false, "shrink the heaviest workloads for a fast smoke run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-seed N] [-quick] <%s|all>\n",
			strings.Join(experiments.ExperimentIDs(), "|"))
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Out: os.Stdout, Quick: *quick}
	start := time.Now()
	if err := experiments.Run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "completed in %v\n", time.Since(start).Round(time.Millisecond))
}
