package cache

import (
	"container/list"
	"sync"
)

// MatrixStats is a point-in-time snapshot of a MatrixCache's counters.
type MatrixStats struct {
	// Hits counts Do calls served a stored matrix.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that found nothing stored (builds plus joins).
	Misses uint64 `json:"misses"`
	// Coalesced counts Do calls that joined another caller's in-flight build
	// (a subset of Misses).
	Coalesced uint64 `json:"coalesced"`
	// Builds counts builder executions — the constructions actually paid.
	Builds uint64 `json:"builds"`
	// BuildsSkipped counts Do calls that returned a matrix without running
	// the builder: Hits + Coalesced. This is the tier's reason to exist.
	BuildsSkipped uint64 `json:"builds_skipped"`
	// Evictions counts entries dropped under cost pressure.
	Evictions uint64 `json:"evictions"`
	// Rejected counts built values too large to admit at all (cost > budget).
	Rejected uint64 `json:"rejected"`
	// Entries is the current number of stored matrices.
	Entries int `json:"entries"`
	// CostUsed is the summed cost of the stored matrices (precedence
	// matrices charge n² cells each).
	CostUsed int64 `json:"cost_used"`
	// CostBudget is the configured cost capacity.
	CostBudget int64 `json:"cost_budget"`
	// InFlight is the current number of leader builds running.
	InFlight int `json:"in_flight"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s MatrixStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// matrixEntry is one stored value on the recency list.
type matrixEntry struct {
	key   string
	value any
	cost  int64
}

// matrixFlight is one in-progress build concurrent callers coalesce onto.
type matrixFlight struct {
	done  chan struct{}
	value any
	err   error
}

// MatrixCache is the serving layer's precedence-matrix tier: a thread-safe
// store keyed by profile sub-digests whose admission is bounded by memory
// cost rather than entry count — a precedence matrix costs n² cells, so ten
// small profiles and one n=500 matrix are priced honestly against the same
// budget — with single-flight coalescing so concurrent requests over the
// same unseen profile run the O(n²·m) construction exactly once. Eviction
// is least-recently-used over whole entries until the new entry fits.
//
// The zero value is not usable; construct with NewMatrixCache.
type MatrixCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*matrixFlight

	hits, misses, coalesced, builds, evictions, rejected uint64
}

// NewMatrixCache returns a matrix cache with the given cost budget (for
// precedence matrices: total n² cells across entries). budget <= 0 disables
// storage — builds still coalesce, so a burst of concurrent requests over
// one profile pays one construction — making 0 the "cache off" switch the
// equivalence tests compare against.
func NewMatrixCache(budget int64) *MatrixCache {
	return &MatrixCache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*matrixFlight),
	}
}

// Do returns the value for key: from the store on a hit, by joining an
// identical in-flight build when one exists, and otherwise by running build
// in the caller's goroutine. build returns (value, cost, err); successful
// values are stored when their cost fits the budget after evicting from the
// cold end. Unlike result-cache flights, followers always wait the build
// out: a matrix build is a bounded O(n²·m) computation that does not consult
// request deadlines, so the wait is short and the result is never partial.
//
// hit reports a store hit; shared reports the value came from another
// caller's build.
func (c *MatrixCache) Do(key string, build func() (value any, cost int64, err error)) (value any, hit, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		v := el.Value.(*matrixEntry).value
		c.mu.Unlock()
		return v, true, false, nil
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-f.done
		return f.value, false, true, f.err
	}
	f := &matrixFlight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// Resolve the flight even if build panics, so followers never hang.
	completed := false
	defer func() {
		if !completed {
			c.finish(key, f, nil, 0, errMatrixBuildPanic)
		}
	}()
	v, cost, berr := build()
	completed = true
	c.finish(key, f, v, cost, berr)
	return v, false, false, berr
}

// errMatrixBuildPanic resolves a flight whose builder panicked; the panic
// itself propagates to the leader's caller.
var errMatrixBuildPanic = errorString("cache: matrix build panicked")

// errorString is a trivial const-able error type.
type errorString string

// Error returns the error message.
func (e errorString) Error() string { return string(e) }

// finish publishes a build's outcome, stores successes that fit, and wakes
// the followers.
func (c *MatrixCache) finish(key string, f *matrixFlight, value any, cost int64, err error) {
	c.mu.Lock()
	if err == nil {
		c.builds++
		c.storeLocked(key, value, cost)
	}
	delete(c.flights, key)
	c.mu.Unlock()
	f.value, f.err = value, err
	close(f.done)
}

// storeLocked admits (key, value) at the given cost, evicting from the LRU
// tail until it fits. Values costing more than the whole budget are rejected
// rather than flushing the tier for one entry. Callers hold c.mu.
func (c *MatrixCache) storeLocked(key string, value any, cost int64) {
	if c.budget <= 0 || cost > c.budget {
		if c.budget > 0 {
			c.rejected++
		}
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*matrixEntry)
		c.used += cost - e.cost
		e.value, e.cost = value, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&matrixEntry{key: key, value: value, cost: cost})
		c.used += cost
	}
	for c.used > c.budget {
		tail := c.ll.Back()
		e := tail.Value.(*matrixEntry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.used -= e.cost
		c.evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *MatrixCache) Stats() MatrixStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MatrixStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Builds:        c.builds,
		BuildsSkipped: c.hits + c.coalesced,
		Evictions:     c.evictions,
		Rejected:      c.rejected,
		Entries:       len(c.items),
		CostUsed:      c.used,
		CostBudget:    c.budget,
		InFlight:      len(c.flights),
	}
}
