// Package unfairgen constructs candidate databases and rankings with
// controlled levels of group unfairness. It supplies every dataset the
// paper's evaluation uses:
//
//   - the Table I Mallows modal rankings (Low/Medium/High-Fair) over 90
//     candidates with Race(5) x Gender(3),
//   - the binary-attribute modal rankings behind the scalability studies
//     (Fig. 6/7, Tables II/III),
//   - a calibrated synthetic stand-in for the Kimmons exam-score dataset
//     (Table IV) and for the CSRankings department data (Table V) — see
//     DESIGN.md, Substitutions,
//   - the admissions-committee example of Figures 1 and 2.
//
// The target-parity construction starts from the maximally unfair block
// ranking (every ARP and IRP equal to 1) and runs Make-MR-Fair with the
// desired parity levels as per-attribute thresholds, which walks fairness
// down until each score first reaches its target.
package unfairgen

import (
	"fmt"
	"math/rand"

	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/ranking"
)

// BalancedTable builds a candidate table whose q attributes have the given
// domain sizes, with candidates assigned so every intersectional combination
// is (as close as possible to) equally occupied. Candidates are laid out in
// mixed-radix order of their combination index.
func BalancedTable(n int, names []string, domains [][]string) (*attribute.Table, error) {
	if len(names) != len(domains) {
		return nil, fmt.Errorf("unfairgen: %d names for %d domains", len(names), len(domains))
	}
	combos := 1
	for _, d := range domains {
		combos *= len(d)
	}
	if combos == 0 {
		return nil, fmt.Errorf("unfairgen: empty attribute domain")
	}
	attrs := make([]*attribute.Attribute, len(names))
	ofs := make([][]int, len(names))
	for k := range names {
		ofs[k] = make([]int, n)
	}
	for c := 0; c < n; c++ {
		combo := c % combos
		for k := len(domains) - 1; k >= 0; k-- {
			ofs[k][c] = combo % len(domains[k])
			combo /= len(domains[k])
		}
	}
	for k, name := range names {
		a, err := attribute.NewAttribute(name, domains[k], ofs[k])
		if err != nil {
			return nil, err
		}
		attrs[k] = a
	}
	return attribute.NewTable(n, attrs...)
}

// BlockRanking returns the maximally unfair ranking for table t: candidates
// grouped into contiguous blocks by intersectional group (group 0 wholly on
// top, the last group wholly at the bottom). Every attribute's ARP and the
// IRP equal 1 when each attribute has at least two non-empty groups and the
// blocks align (as with BalancedTable layouts).
func BlockRanking(t *attribute.Table) ranking.Ranking {
	inter := t.Intersection()
	r := make(ranking.Ranking, 0, t.N())
	for v := 0; v < inter.DomainSize(); v++ {
		r = append(r, inter.Group(v)...)
	}
	return r
}

// ParityLevels specifies the target ARP for each protected attribute (by
// name) and the target IRP, used by TargetModal.
type ParityLevels struct {
	ARP map[string]float64
	IRP float64
}

// TargetModal builds a modal ranking whose parity scores approximate the
// requested levels: it starts from the maximally unfair BlockRanking and
// repairs with Make-MR-Fair using the levels as thresholds, so each score
// ends at its first value at or below target. Measured scores are returned
// alongside the ranking; experiments report the measured values (as the
// paper's Table I reports its datasets' scores).
func TargetModal(t *attribute.Table, levels ParityLevels) (ranking.Ranking, error) {
	th := coreThresholds(t, levels)
	// The quantum-step repair walks each parity score down until it first
	// reaches its requested level, instead of dragging scores further down
	// as collateral of long corrective swaps on another attribute.
	r, err := core.RepairToLevels(BlockRanking(t), th)
	if err != nil {
		return nil, fmt.Errorf("unfairgen: building target modal: %w", err)
	}
	return r, nil
}

func coreThresholds(t *attribute.Table, levels ParityLevels) []core.Target {
	targets := make([]core.Target, 0, len(t.Attrs())+1)
	for _, a := range t.Attrs() {
		d, ok := levels.ARP[a.Name]
		if !ok {
			d = 1 // unconstrained
		}
		targets = append(targets, core.Target{Attr: a, Delta: d})
	}
	targets = append(targets, core.Target{Attr: t.Intersection(), Delta: levels.IRP})
	return targets
}

// MallowsDatasetSpec names one of the paper's Table I datasets.
type MallowsDatasetSpec struct {
	Name   string
	Levels ParityLevels
}

// TableIDatasets returns the paper's three Table I dataset specifications:
// Low-, Medium- and High-Fair modal rankings over Race(5) x Gender(3).
func TableIDatasets() []MallowsDatasetSpec {
	return []MallowsDatasetSpec{
		{Name: "Low-Fair", Levels: ParityLevels{ARP: map[string]float64{"Gender": 0.70, "Race": 0.70}, IRP: 1.00}},
		{Name: "Medium-Fair", Levels: ParityLevels{ARP: map[string]float64{"Gender": 0.50, "Race": 0.50}, IRP: 0.75}},
		{Name: "High-Fair", Levels: ParityLevels{ARP: map[string]float64{"Gender": 0.30, "Race": 0.30}, IRP: 0.54}},
	}
}

// PaperTable builds the Table I candidate database: n candidates with
// Gender(3) and Race(5), 15 intersectional groups of n/15 candidates each.
// The paper uses n = 90 (6 per group).
func PaperTable(n int) (*attribute.Table, error) {
	if n%15 != 0 {
		return nil, fmt.Errorf("unfairgen: PaperTable needs n divisible by 15, got %d", n)
	}
	return BalancedTable(n,
		[]string{"Gender", "Race"},
		[][]string{
			{"Man", "Non-Binary", "Woman"},
			{"AlaskaNat", "Asian", "Black", "NatHawaii", "White"},
		})
}

// BinaryTable builds the binary Gender(2) x Race(2) candidate database used
// by the scalability studies (Fig. 6/7, Tables II/III).
func BinaryTable(n int) (*attribute.Table, error) {
	if n%4 != 0 {
		return nil, fmt.Errorf("unfairgen: BinaryTable needs n divisible by 4, got %d", n)
	}
	return BalancedTable(n,
		[]string{"Gender", "Race"},
		[][]string{{"Man", "Woman"}, {"GroupA", "GroupB"}})
}

// ScoreRanking ranks candidates by descending score with deterministic id
// tie-breaks; it converts generated score columns into base rankings.
func ScoreRanking(scores []float64) ranking.Ranking {
	return ranking.SortByScoreDesc(scores)
}

// BiasedScores draws one score per candidate: a Normal(base, sd) draw plus
// the per-value effects of each attribute. effects[k][v] is added when the
// candidate holds value v of table attribute k.
func BiasedScores(t *attribute.Table, base, sd float64, effects [][]float64, rng *rand.Rand) []float64 {
	scores := make([]float64, t.N())
	for c := 0; c < t.N(); c++ {
		s := base + sd*rng.NormFloat64()
		for k, a := range t.Attrs() {
			s += effects[k][a.Of[c]]
		}
		scores[c] = s
	}
	return scores
}
