package kemeny

import (
	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

// auditor is the constrained descent's incremental feasibility oracle: one
// fairness.Tracker per constraint, kept in lock-step with the working
// ranking. feasibleMove answers "would this insertion move keep every ARP
// within Delta?" in O(groups · log n) per constraint without mutating the
// ranking — replacing the historical move / full fairness.ARP recompute /
// undo cycle, whose O(n·q) cost per trial was the fair solvers' scaling
// wall (ROADMAP item 4). Decisions are bitwise identical to the Feasible
// path: the trackers derive the exact integer win counts GroupFPRs derives,
// so every FPR division and Delta comparison sees the same float64s.
type auditor struct {
	cons []Constraint
	trk  []*fairness.Tracker
}

// newAuditor builds trackers for every constraint over ranking r.
func newAuditor(cons []Constraint, r ranking.Ranking) *auditor {
	a := &auditor{cons: cons, trk: make([]*fairness.Tracker, len(cons))}
	for k, c := range cons {
		a.trk[k] = fairness.NewTracker(r, c.Attr)
	}
	return a
}

// reset re-derives every tracker from r — O(n + groups) per constraint —
// realigning the auditor after its ranking was replaced wholesale (a new
// restart copying the seed).
func (a *auditor) reset(r ranking.Ranking) {
	for _, t := range a.trk {
		t.Reset(r)
	}
}

// feasibleMove reports whether r.MoveTo(from, to) would leave every
// constraint satisfied, without mutating anything.
func (a *auditor) feasibleMove(from, to int) bool {
	for k, t := range a.trk {
		if t.SpreadAfterMove(from, to) > a.cons[k].Delta+fairness.Eps {
			return false
		}
	}
	return true
}

// applyMove mirrors an accepted r.MoveTo(from, to) into every tracker. The
// caller applies the actual MoveTo to its ranking.
func (a *auditor) applyMove(from, to int) {
	for _, t := range a.trk {
		t.ApplyMove(from, to)
	}
}

// syncAuditor points the scratch's auditor at ranking r, building it on
// first use and resetting it otherwise. An empty constraint set needs no
// auditor and leaves sc.aud nil (callers treat nil as always-feasible).
func (sc *searchScratch) syncAuditor(cons []Constraint, r ranking.Ranking) {
	if len(cons) == 0 {
		return
	}
	if sc.aud == nil {
		sc.aud = newAuditor(cons, r)
		return
	}
	sc.aud.reset(r)
}
