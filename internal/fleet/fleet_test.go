package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func newTestFleet(t *testing.T, self string, peers ...string) *Fleet {
	t.Helper()
	f, err := New(Config{
		Self:          self,
		Peers:         peers,
		ProbeInterval: -1, // liveness driven by the test, not a ticker
		FetchTimeout:  2 * time.Second,
		HedgeDelay:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	f.SetNamespace("manirankd_v2@engine-test")
	return f
}

func TestLivenessThresholdAndEpoch(t *testing.T) {
	f := newTestFleet(t, "http://self", "http://peer")
	if got := len(f.Alive()); got != 2 {
		t.Fatalf("peers start alive: got %d alive nodes, want 2", got)
	}
	// One failure is hysteresis, not death.
	f.recordFailure("http://peer")
	if len(f.Alive()) != 2 || f.Epoch() != 0 {
		t.Fatalf("one strike flipped liveness: alive=%v epoch=%d", f.Alive(), f.Epoch())
	}
	f.recordFailure("http://peer")
	if len(f.Alive()) != 1 || f.Epoch() != 1 {
		t.Fatalf("two strikes should kill: alive=%v epoch=%d", f.Alive(), f.Epoch())
	}
	// Repeated failures after death don't churn the epoch.
	f.recordFailure("http://peer")
	if f.Epoch() != 1 {
		t.Fatalf("failure on a dead peer bumped epoch to %d", f.Epoch())
	}
	// One success resurrects.
	f.recordSuccess("http://peer")
	if len(f.Alive()) != 2 || f.Epoch() != 2 {
		t.Fatalf("success should resurrect: alive=%v epoch=%d", f.Alive(), f.Epoch())
	}
}

func TestOnChangeFiresPerTransition(t *testing.T) {
	f := newTestFleet(t, "http://self", "http://peer")
	var fired atomic.Int32
	f.OnChange(func() { fired.Add(1) })
	f.MarkDead("http://peer")
	f.MarkDead("http://peer") // no-op: already dead
	f.MarkAlive("http://peer")
	deadline := time.Now().Add(2 * time.Second)
	for fired.Load() != 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := fired.Load(); got != 2 {
		t.Fatalf("OnChange fired %d times, want 2", got)
	}
}

func TestRouteSkipsDeadOwner(t *testing.T) {
	f := newTestFleet(t, "http://self", "http://peer-a", "http://peer-b")
	// Find a key the fleet routes to a peer, kill that peer, and the key
	// must re-route deterministically without ever failing.
	key := ""
	var owner string
	for _, k := range digests(50) {
		if o, self := f.Route(k); !self {
			key, owner = k, o
			break
		}
	}
	if key == "" {
		t.Fatal("no peer-owned key in 50 digests")
	}
	f.MarkDead(owner)
	next, _ := f.Route(key)
	if next == owner {
		t.Fatalf("dead node %s still owns %s", owner, key)
	}
	f.MarkDead("http://peer-a")
	f.MarkDead("http://peer-b")
	if got, self := f.Route(key); !self || got != "http://self" {
		t.Fatalf("all peers dead: Route = (%s, %v), want self", got, self)
	}
}

// peerServer is a scriptable peer endpoint.
func peerServer(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchHitMissAndNamespaceHeader(t *testing.T) {
	var gotNS atomic.Value
	srv := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		gotNS.Store(r.Header.Get(NamespaceHeader))
		switch r.URL.Path {
		case PathPrefix + KindResults + "/hit":
			w.Write([]byte("payload"))
		default:
			http.NotFound(w, r)
		}
	})
	f := newTestFleet(t, "http://self", srv.URL)

	payload, found, err := f.Fetch(context.Background(), KindResults, "hit")
	if err != nil || !found || string(payload) != "payload" {
		t.Fatalf("Fetch hit = (%q, %v, %v)", payload, found, err)
	}
	if ns := gotNS.Load(); ns != "manirankd_v2@engine-test" {
		t.Fatalf("namespace header = %v", ns)
	}
	if _, found, err := f.Fetch(context.Background(), KindResults, "absent"); err != nil || found {
		t.Fatalf("Fetch of absent key = (found=%v, err=%v), want authoritative miss", found, err)
	}
}

func TestFetchHedgesToRunnerUp(t *testing.T) {
	// The slow server never answers within the fetch timeout; the fast one
	// serves every digest. Whichever is ranked first, the hedge (or the
	// direct read) must land on the fast node and return a hit.
	slow := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Second)
	})
	fast := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("from-fast"))
	})
	f := newTestFleet(t, "http://self", slow.URL, fast.URL)
	start := time.Now()
	payload, found, err := f.Fetch(context.Background(), KindMatrices, "any-digest")
	if err != nil || !found || string(payload) != "from-fast" {
		t.Fatalf("hedged Fetch = (%q, %v, %v)", payload, found, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedged fetch took %v; hedge leg did not fire", elapsed)
	}
}

func TestFetchErrorDegradesAndFeedsLiveness(t *testing.T) {
	srv := peerServer(t, func(w http.ResponseWriter, r *http.Request) {})
	f := newTestFleet(t, "http://self", srv.URL)
	srv.Close() // connection refused from here on
	for i := 0; i < failThreshold; i++ {
		if _, found, err := f.Fetch(context.Background(), KindResults, "k"); err == nil || found {
			t.Fatalf("fetch from dead peer: (found=%v, err=%v), want error", found, err)
		}
	}
	if len(f.Alive()) != 1 {
		t.Fatalf("fetch failures did not kill the peer: alive=%v", f.Alive())
	}
	// With every peer dead there is nothing to fetch from: ErrNoPeer, so
	// the service computes locally without paying any timeout.
	if _, _, err := f.Fetch(context.Background(), KindResults, "k"); err != ErrNoPeer {
		t.Fatalf("fetch with all peers dead: err=%v, want ErrNoPeer", err)
	}
}

func TestBuildMatrixPostsProfileAndPushRoundTrips(t *testing.T) {
	var gotBody atomic.Value
	srv := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			b := make([]byte, r.ContentLength)
			r.Body.Read(b)
			gotBody.Store(string(b))
			w.Write([]byte("matrix-bytes"))
		case http.MethodPut:
			w.WriteHeader(http.StatusNoContent)
		}
	})
	f := newTestFleet(t, "http://self", srv.URL)
	out, err := f.BuildMatrix(context.Background(), srv.URL, "d1", []byte(`{"profile":[[0,1]]}`))
	if err != nil || string(out) != "matrix-bytes" {
		t.Fatalf("BuildMatrix = (%q, %v)", out, err)
	}
	if b := gotBody.Load(); b != `{"profile":[[0,1]]}` {
		t.Fatalf("owner saw body %v", b)
	}
	if err := f.Push(context.Background(), srv.URL, KindResults, "d1", []byte("entry")); err != nil {
		t.Fatalf("Push: %v", err)
	}
}

func TestProbeLoopDetectsDeathAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := peerServer(t, func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			w.Write([]byte("ok"))
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	f, err := New(Config{
		Self:          "http://self",
		Peers:         []string{srv.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitAlive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for len(f.Alive()) != want && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := len(f.Alive()); got != want {
			t.Fatalf("alive count = %d, want %d", got, want)
		}
	}
	healthy.Store(false)
	waitAlive(1)
	healthy.Store(true)
	waitAlive(2)
}
