package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine is the exposition grammar smoke_serve.sh enforces on /metricsz.
var promLine = regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? [0-9.e+-]+$|^#`)

// scrapeMetrics fetches /metricsz and returns every sample keyed by its
// full series string (name plus label block), asserting the text format
// line by line.
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metricsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metricsz content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("/metricsz line fails exposition grammar: %q", line)
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

// TestMetricszStatzCrossCheck is the one-source-of-truth contract: /statz
// and /metricsz must agree because they read the same registry structs —
// every former /statz counter appears in the exposition with the same
// value.
func TestMetricszStatzCrossCheck(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest("kemeny", 31)
	if status, _ := post(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if status, out := post(t, ts.URL, req); status != http.StatusOK || !out.Cached {
		t.Fatalf("repeat not served from cache (status %d)", status)
	}
	// A second method over the same profile exercises the matrix tier's
	// builds-skipped axis.
	req2 := testRequest("borda", 31)
	if status, _ := post(t, ts.URL, req2); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	// Session traffic so the PR 9 series cross-check covers live counters,
	// not just pre-registered zeros. The session stays open: the active
	// gauge must agree while non-zero.
	status, created := createSession(t, ts.URL, testRequest("borda", 33))
	if status != http.StatusOK {
		t.Fatalf("session create: status %d", status)
	}
	if status, _ := postOp(t, ts.URL, created.SessionID, &SessionOp{Op: "solve"}); status != http.StatusOK {
		t.Fatalf("session solve: status %d", status)
	}

	var st Statz
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	m := scrapeMetrics(t, ts.URL)

	checks := map[string]float64{
		`manirank_requests_total{status="200"}`:           float64(st.Requests["200"]),
		`manirank_cache_hits_total{tier="result"}`:        float64(st.Cache.Hits),
		`manirank_cache_misses_total{tier="result"}`:      float64(st.Cache.Misses),
		`manirank_cache_coalesced_total{tier="result"}`:   float64(st.Cache.Coalesced),
		`manirank_cache_evictions_total{tier="result"}`:   float64(st.Cache.Evictions),
		`manirank_cache_expirations_total{tier="result"}`: float64(st.Cache.Expirations),
		`manirank_cache_disk_hits_total{tier="result"}`:   float64(st.Cache.DiskHits),
		`manirank_cache_disk_puts_total{tier="result"}`:   float64(st.Cache.DiskPuts),
		`manirank_cache_disk_errors_total{tier="result"}`: float64(st.Cache.DiskErrors),
		`manirank_cache_hits_total{tier="matrix"}`:        float64(st.Matrix.Hits),
		`manirank_cache_misses_total{tier="matrix"}`:      float64(st.Matrix.Misses),
		"manirank_matrix_builds_total":                    float64(st.Matrix.Builds),
		"manirank_matrix_builds_skipped_total":            float64(st.Matrix.BuildsSkipped),
		"manirank_matrix_rejected_total":                  float64(st.Matrix.Rejected),
		"manirank_queue_capacity":                         float64(st.Queue.Capacity),
		"manirank_workers":                                float64(st.Queue.Workers),
		`manirank_cache_entries{tier="result"}`:           float64(st.Cache.Entries),
		`manirank_cache_entries{tier="matrix"}`:           float64(st.Matrix.Entries),
		`manirank_cache_peer_hits_total{tier="result"}`:   float64(st.Cache.PeerHits),
		`manirank_cache_peer_misses_total{tier="result"}`: float64(st.Cache.PeerMisses),
		`manirank_cache_peer_errors_total{tier="result"}`: float64(st.Cache.PeerErrors),
		`manirank_cache_peer_hits_total{tier="matrix"}`:   float64(st.Matrix.PeerHits),
		`manirank_cache_peer_misses_total{tier="matrix"}`: float64(st.Matrix.PeerMisses),
		`manirank_cache_peer_errors_total{tier="matrix"}`: float64(st.Matrix.PeerErrors),
		"manirank_sessions_active":                        float64(st.Sessions.Active),
	}
	// The session op family: /metricsz exposes every pre-registered op
	// (zeros included); /statz omits ops with no traffic, which a zero map
	// read reproduces exactly.
	for _, op := range sessionOpNames {
		checks[`manirank_session_ops_total{op="`+op+`"}`] = float64(st.Sessions.Ops[op])
	}
	for series, want := range checks {
		got, ok := m[series]
		if !ok {
			t.Fatalf("/metricsz missing series %s", series)
		}
		if got != want {
			t.Fatalf("%s = %v, /statz says %v", series, got, want)
		}
	}
	if st.Cache.Hits == 0 || st.Matrix.BuildsSkipped == 0 {
		t.Fatalf("workload did not exercise both tiers: %+v / %+v", st.Cache, st.Matrix)
	}
	if st.Sessions.Active != 1 || st.Sessions.Ops["create"] == 0 || st.Sessions.Ops["solve"] == 0 {
		t.Fatalf("session traffic not recorded: %+v", st.Sessions)
	}
	// Histograms: count of solved requests must match the /statz latency
	// count, and hit rates must agree within float rendering.
	if got := m[`manirank_request_seconds_count{outcome="solve"}`]; got != float64(st.LatencySolve.Count) {
		t.Fatalf("solve histogram count %v, /statz %d", got, st.LatencySolve.Count)
	}
	if got := m[`manirank_request_seconds_count{outcome="hit"}`]; got != float64(st.LatencyHit.Count) {
		t.Fatalf("hit histogram count %v, /statz %d", got, st.LatencyHit.Count)
	}
	if got := m[`manirank_cache_hit_rate{tier="result"}`]; got < st.CacheHitRate-1e-9 || got > st.CacheHitRate+1e-9 {
		t.Fatalf("hit rate %v, /statz %v", got, st.CacheHitRate)
	}
	// The per-method solve family must be bounded to the registry's method
	// set — pre-registered, not grown per request string.
	for series := range m {
		if strings.HasPrefix(series, "manirank_solve_seconds_count") {
			found := false
			for _, name := range Methods {
				if strings.Contains(series, `method="`+name+`"`) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("unexpected per-method series %s", series)
			}
		}
	}
	// Che model gauges exist per tier and stay in [0, 1].
	for _, tier := range []string{"result", "matrix"} {
		series := fmt.Sprintf(`manirank_cache_hit_rate_predicted{tier=%q}`, tier)
		p, ok := m[series]
		if !ok {
			t.Fatalf("/metricsz missing %s", series)
		}
		if p < 0 || p > 1 {
			t.Fatalf("%s = %v out of [0,1]", series, p)
		}
	}
}

// requestStages are the disjoint request-level stage spans: they must not
// overlap each other (solver child spans nest inside solve and are
// excluded), so their sum is comparable to the request wall time.
var requestStages = map[string]bool{
	"queue": true, "result_lookup": true, "result_wait": true,
	"result_disk_read": true, "result_disk_write": true,
	"matrix_lookup": true, "matrix_wait": true, "matrix_build": true,
	"matrix_disk_read": true, "matrix_disk_write": true,
	"result_peer_read": true, "matrix_peer_read": true,
	"solve": true, "encode": true,
}

// TestTracezSlowRequest: a deadline-truncated solve shows up in the
// slowest-N list with queue and solve spans whose disjoint stage sum is
// within tolerance of the recorded wall time, and the slow-request log
// fires with the span breakdown.
func TestTracezSlowRequest(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := Config{
		TraceSlow: 50 * time.Millisecond,
		Logger:    slog.New(slog.NewTextHandler(&logBuf, nil)),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	req := testRequest("kemeny", 77)
	req.Options.Perturbations = 2_000_000 // far beyond the deadline: best-so-far on expiry
	req.DeadlineMillis = 250
	status, out := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !out.Partial {
		t.Fatal("expected a deadline-truncated (partial) result")
	}

	resp, err := http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tz Tracez
	if err := json.NewDecoder(resp.Body).Decode(&tz); err != nil {
		t.Fatal(err)
	}
	if len(tz.Recent) == 0 || len(tz.Slowest) == 0 {
		t.Fatalf("tracez empty: %d recent, %d slowest", len(tz.Recent), len(tz.Slowest))
	}
	slow := tz.Slowest[0]
	if slow.WallMS < 200 {
		t.Fatalf("slowest trace wall %v ms, want >= 200", slow.WallMS)
	}
	if slow.Name != "kemeny" {
		t.Fatalf("slowest trace method %q", slow.Name)
	}
	seen := map[string]bool{}
	sum := 0.0
	for _, sp := range slow.Spans {
		if requestStages[sp.Name] {
			seen[sp.Name] = true
			sum += sp.DurationMS
		}
	}
	for _, stage := range []string{"queue", "result_lookup", "solve", "encode"} {
		if !seen[stage] {
			t.Fatalf("slow trace missing %q span; spans: %+v", stage, slow.Spans)
		}
	}
	// The disjoint stages cover the request end to end: their sum must be
	// within tolerance of the wall time (the gap is handler bookkeeping
	// between spans; overlap would push the sum past the wall).
	if sum < 0.7*slow.WallMS || sum > 1.15*slow.WallMS {
		t.Fatalf("stage spans sum to %.2f ms vs wall %.2f ms", sum, slow.WallMS)
	}
	if !strings.Contains(logBuf.String(), "slow request") {
		t.Fatal("slow-request log line missing")
	}
	if !strings.Contains(logBuf.String(), "solve=") {
		t.Fatalf("slow-request log missing span breakdown: %s", logBuf.String())
	}
}
