package core

import (
	"math/rand"
	"testing"

	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

func TestMakeMRFairWithPolicyBothConverge(t *testing.T) {
	tab := testTable(t, 45)
	targets := Targets(tab, 0.1)
	start := blockRanking(tab)
	for _, policy := range []RepairPolicy{PolicyImpactful, PolicyFineGrained} {
		out, swaps, err := MakeMRFairWithPolicy(start, targets, policy)
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		if swaps <= 0 {
			t.Fatalf("policy %d: no swaps on a maximally unfair start", policy)
		}
		if !Satisfies(out, targets) {
			t.Fatalf("policy %d: output violates targets", policy)
		}
		if !out.IsValid() {
			t.Fatalf("policy %d: invalid permutation", policy)
		}
	}
}

func TestMakeMRFairWithPolicyMatchesDefault(t *testing.T) {
	// The exported MakeMRFair must behave exactly like the Impactful policy.
	tab := testTable(t, 30)
	targets := Targets(tab, 0.15)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		start := ranking.Random(30, rng)
		a, err1 := MakeMRFair(start, targets)
		b, _, err2 := MakeMRFairWithPolicy(start, targets, PolicyImpactful)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 == nil && !a.Equal(b) {
			t.Fatal("MakeMRFair and PolicyImpactful diverge")
		}
	}
}

func TestMakeMRFairWithPolicyRejectsBadInput(t *testing.T) {
	tab := testTable(t, 30)
	if _, _, err := MakeMRFairWithPolicy(ranking.Ranking{0, 0, 1}, Targets(tab, 0.1), PolicyImpactful); err == nil {
		t.Fatal("invalid ranking accepted")
	}
	bad := Targets(tab, 0.1)
	bad[0].Delta = 2
	if _, _, err := MakeMRFairWithPolicy(ranking.New(30), bad, PolicyImpactful); err == nil {
		t.Fatal("delta > 1 accepted")
	}
}

func TestMakeMRFairZeroSwapsWhenFair(t *testing.T) {
	tab := testTable(t, 30)
	targets := Targets(tab, 0.2)
	fair, err := MakeMRFair(blockRanking(tab), targets)
	if err != nil {
		t.Fatal(err)
	}
	_, swaps, err := MakeMRFairWithPolicy(fair, targets, PolicyImpactful)
	if err != nil {
		t.Fatal(err)
	}
	if swaps != 0 {
		t.Fatalf("already-fair ranking needed %d swaps", swaps)
	}
}

func TestRepairToLevelsLandsNearTargets(t *testing.T) {
	tab := testTable(t, 90)
	targets := []Target{
		{Attr: tab.Attr("Gender"), Delta: 0.5},
		{Attr: tab.Attr("Race"), Delta: 0.5},
		{Attr: tab.Intersection(), Delta: 0.75},
	}
	out, err := RepairToLevels(blockRanking(tab), targets)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsValid() {
		t.Fatal("invalid permutation")
	}
	for _, tg := range targets {
		got := fairness.ARP(out, tg.Attr)
		if got > tg.Delta+1e-9 {
			t.Errorf("%s spread %.3f above target %.2f", tg.Attr.Name, got, tg.Delta)
		}
		// Quantum steps may not land arbitrarily close for tiny groups, but
		// a 0.15 undershoot would mean long strides leaked in.
		if got < tg.Delta-0.15 {
			t.Errorf("%s spread %.3f far below target %.2f", tg.Attr.Name, got, tg.Delta)
		}
	}
}

func TestRepairToLevelsAlreadyFairIsIdentity(t *testing.T) {
	tab := testTable(t, 30)
	targets := Targets(tab, 1.0) // always satisfied
	r := blockRanking(tab)
	out, err := RepairToLevels(r, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Fatal("RepairToLevels changed an already-satisfying ranking")
	}
}

func TestRepairToLevelsRejectsInvalidRanking(t *testing.T) {
	tab := testTable(t, 30)
	if _, err := RepairToLevels(ranking.Ranking{0, 0, 1}, Targets(tab, 0.5)); err == nil {
		t.Fatal("invalid ranking accepted")
	}
}
