package kemeny

import (
	"context"
	"sync"

	"manirank/internal/obs"
	"manirank/internal/ranking"
)

// BordaFromPrecedence returns the Borda consensus computed directly from a
// precedence matrix: candidate c earns one point for every (ranking, rival)
// pair that places c above the rival, i.e. m*(n-1) minus c's row sum. One
// sequential pass per row. Ties break by candidate id for determinism.
func BordaFromPrecedence(w *ranking.Precedence) ranking.Ranking {
	n := w.N()
	m := w.Rankings()
	points := make([]int, n)
	for c := 0; c < n; c++ {
		points[c] = m*(n-1) - w.RowSum(c)
	}
	return ranking.SortByPointsDesc(points)
}

// LocalSearch improves r in place with best-improvement insertion moves until
// a local optimum of the Kemeny cost is reached, and returns r. Each pass is
// O(n^2); the insertion neighbourhood is the standard Kemeny local search
// (Ali & Meila 2012).
func LocalSearch(w *ranking.Precedence, r ranking.Ranking) ranking.Ranking {
	localSearchDelta(context.Background(), w, r)
	return r
}

// localSearchDelta runs the insertion local search on r in place and returns
// the total Kemeny-cost change — every move's gain is already known from the
// incremental scan, so callers tracking an exact cost never pay for an
// O(n^2) KemenyCost recomputation. Cancellation is checked between passes
// (each pass is O(n^2)); an early exit leaves r a valid permutation and the
// returned delta exact for the moves applied.
func localSearchDelta(ctx context.Context, w *ranking.Precedence, r ranking.Ranking) int {
	n := len(r)
	total := 0
	tr := obs.FromContext(ctx)
	for improved := true; improved && ctx.Err() == nil; {
		endPass := tr.StartSpan("kemeny_descent_pass")
		improved = false
		for i := 0; i < n; i++ {
			c := r[i]
			bestDelta, bestPos := 0, i
			// Moving c upward: crossing y flips the pair from (y above c) to
			// (c above y), changing cost by W[c][y] - W[y][c].
			delta := 0
			for j := i - 1; j >= 0; j-- {
				y := r[j]
				delta += w.At(c, y) - w.At(y, c)
				if delta < bestDelta {
					bestDelta, bestPos = delta, j
				}
			}
			// Moving c downward: crossing y flips (c above y) to (y above c).
			delta = 0
			for j := i + 1; j < n; j++ {
				y := r[j]
				delta += w.At(y, c) - w.At(c, y)
				if delta < bestDelta {
					bestDelta, bestPos = delta, j
				}
			}
			if bestDelta < 0 {
				r.MoveTo(i, bestPos)
				total += bestDelta
				improved = true
			}
		}
		endPass()
	}
	return total
}

// Options tunes the heuristic solvers.
type Options struct {
	// Seed drives all randomised components; a fixed seed gives
	// reproducible results.
	Seed int64
	// Perturbations is the number of independent perturbed restarts applied
	// after the first local optimum (default 8; negative disables restarts).
	// Each restart perturbs the seed local optimum — not a shared incumbent —
	// which is what makes restarts schedulable in any order on any worker
	// count.
	Perturbations int
	// Strength is the number of random insertion moves per perturbation
	// (default 4).
	Strength int
	// Workers bounds the restart worker pool: the Perturbations restarts are
	// independent given their per-restart RNGs and run concurrently on up to
	// this many goroutines. 0 auto-sizes to GOMAXPROCS; 1 runs restarts
	// sequentially. The result is bitwise identical for every value — same
	// invariant as ranking.NewPrecedenceWorkers.
	Workers int
	// Warm, when non-nil, seeds the search from this ranking instead of the
	// Borda consensus — the streaming-profile warm start: after an O(n²)
	// profile mutation the previous consensus is already near-optimal, so
	// descending from it converges in far fewer passes than re-deriving a
	// cold seed. The ranking must be a valid permutation over the matrix's
	// candidates (engines ignore a length mismatch and fall back to the cold
	// seed); it is cloned before any mutation. Warm-started results are
	// deterministic per (input, Warm, options) and bitwise identical for
	// every Workers value, but NOT guaranteed identical to a cold solve —
	// the two explore from different local optima.
	Warm ranking.Ranking
}

func (o Options) withDefaults() Options {
	if o.Perturbations == 0 {
		o.Perturbations = 8
	}
	if o.Strength == 0 {
		o.Strength = 4
	}
	return o
}

// Heuristic returns a high-quality Kemeny consensus: Borda seed, local
// search, then Perturbations independent perturbed restarts from that local
// optimum, keeping the best ranking seen. On profiles with a transitive
// pairwise majority (e.g. Mallows data with theta >= 0.2) it recovers the
// exact optimum (the majority order is the unique local optimum of the
// insertion neighbourhood there).
//
// The cost is tracked incrementally across the whole run — one full
// KemenyCost evaluation of the Borda seed, then only O(move) deltas from the
// perturbation and search moves. Restarts derive their RNGs from
// (Options.Seed, restart index) and run on an Options.Workers pool
// (restarts.go); the result is bitwise identical for every worker count.
func Heuristic(w *ranking.Precedence, opts Options) ranking.Ranking {
	return HeuristicCtx(context.Background(), w, opts)
}

// HeuristicCtx is Heuristic with cooperative cancellation: when ctx is done
// the search stops at the next pass/restart boundary and returns the best
// ranking found so far — at minimum the Borda seed, always a valid
// permutation, never nil. A never-cancelled ctx yields output bitwise
// identical to Heuristic for every worker count; a cancelled run's result
// depends on how far the restarts got, so it is best-effort, not
// deterministic.
func HeuristicCtx(ctx context.Context, w *ranking.Precedence, opts Options) ranking.Ranking {
	opts = opts.withDefaults()
	endSeed := obs.StartSpan(ctx, "kemeny_seed_descent")
	seed := WarmOrBordaSeed(w, opts)
	seedCost := w.KemenyCost(seed) + localSearchDelta(ctx, w, seed)
	endSeed()
	best, _ := restartSearch(ctx, w, nil, seed, seedCost, opts)
	return best
}

// WarmOrBordaSeed resolves a search's starting ranking: a clone of
// Options.Warm when one is usable, otherwise the Borda consensus. A warm
// ranking of the wrong length (a stale consensus over a different candidate
// set) silently falls back to cold rather than corrupting the search.
func WarmOrBordaSeed(w *ranking.Precedence, opts Options) ranking.Ranking {
	if len(opts.Warm) == w.N() {
		return opts.Warm.Clone()
	}
	return BordaFromPrecedence(w)
}

// ConstrainedLocalSearch minimises Kemeny cost over rankings satisfying cons
// using first-improvement insertion moves that preserve feasibility. start
// must already satisfy cons (repair it with Make-MR-Fair first); the function
// panics otherwise, because silently optimising from an infeasible point
// would return garbage. The result is feasible and no worse than start.
//
// This is the single deterministic descent; ConstrainedSearch adds sharded
// perturbed restarts on top of it.
func ConstrainedLocalSearch(w *ranking.Precedence, cons []Constraint, start ranking.Ranking) ranking.Ranking {
	if !Feasible(start, cons) {
		panic("kemeny: ConstrainedLocalSearch start ranking violates constraints")
	}
	r := start.Clone()
	sc := newSearchScratch(len(r))
	sc.syncAuditor(cons, r)
	sc.constrainedDescentDelta(context.Background(), w, cons, r)
	return r
}

// ConstrainedSearch is the large-n Fair-Kemeny engine: the
// ConstrainedLocalSearch descent from start, followed by opts.Perturbations
// independent restarts that each apply feasibility-preserving random
// insertion moves and descend again, sharded across opts.Workers goroutines
// (restarts.go). start must satisfy cons (panics otherwise). The result is
// feasible, no worse than start, and bitwise identical for every worker
// count.
func ConstrainedSearch(w *ranking.Precedence, cons []Constraint, start ranking.Ranking, opts Options) ranking.Ranking {
	return ConstrainedSearchCtx(context.Background(), w, cons, start, opts)
}

// ConstrainedSearchCtx is ConstrainedSearch with cooperative cancellation:
// when ctx is done the engine stops at the next pass/restart boundary and
// returns the best feasible ranking found so far — at minimum the (possibly
// partially descended) start clone, which stays feasible because every
// accepted move preserves feasibility. Never nil. A never-cancelled ctx
// yields output bitwise identical to ConstrainedSearch.
func ConstrainedSearchCtx(ctx context.Context, w *ranking.Precedence, cons []Constraint, start ranking.Ranking, opts Options) ranking.Ranking {
	if !Feasible(start, cons) {
		panic("kemeny: ConstrainedSearch start ranking violates constraints")
	}
	opts = opts.withDefaults()
	endSeed := obs.StartSpan(ctx, "kemeny_seed_descent")
	seed := start.Clone()
	seedCost := w.KemenyCost(seed)
	if len(cons) > 0 {
		// The seed descent is the one single-threaded stretch of the search,
		// so it alone shards its candidate scans across the restart pool's
		// width; restart descents keep sequential scans (the pool already
		// owns that parallelism).
		sc := newSearchScratch(len(seed))
		sc.scanWorkers = scanWorkers(opts.Workers)
		sc.syncAuditor(cons, seed)
		seedCost += sc.constrainedDescentDelta(ctx, w, cons, seed)
	} else {
		// No constraints: every move is feasible, so the cheaper
		// best-improvement descent applies.
		seedCost += localSearchDelta(ctx, w, seed)
	}
	endSeed()
	best, _ := restartSearch(ctx, w, cons, seed, seedCost, opts)
	return best
}

// constrainedDescentDelta runs the feasibility-preserving first-improvement
// insertion descent on r in place and returns the total Kemeny-cost change.
// The scratch's auditor must already be synced to r (syncAuditor); every
// candidate move is audited incrementally in O(groups · log n) instead of
// the historical move / full-ARP-recompute / undo cycle, and accepted moves
// update the trackers in O(span + groups · log n). The scratch's move and
// term buffers are reused across candidates, passes, and restarts.
// Cancellation is checked between passes; an early exit leaves r feasible
// (every accepted move preserved feasibility) with the returned delta exact.
func (sc *searchScratch) constrainedDescentDelta(ctx context.Context, w *ranking.Precedence, cons []Constraint, r ranking.Ranking) int {
	n := len(r)
	total := 0
	tr := obs.FromContext(ctx)
	for improved := true; improved && ctx.Err() == nil; {
		endPass := tr.StartSpan("kemeny_descent_pass")
		improved = false
		for i := 0; i < n; i++ {
			cands := sc.scanMoves(w, r, i)
			if len(cands) == 0 {
				continue
			}
			// Consume candidates in (delta, scan order) ascending — the
			// exact stable order the historical insertion sort produced —
			// but lazily, through a binary min-heap: descent usually accepts
			// one of the first few candidates, and repair-displaced elements
			// can carry thousands, where a full sort (let alone an O(k²)
			// insertion sort) is wasted work.
			heapifyMoves(cands)
			for len(cands) > 0 {
				mv := cands[0]
				if sc.aud == nil || sc.aud.feasibleMove(i, mv.pos) {
					if sc.aud != nil {
						sc.aud.applyMove(i, mv.pos)
					}
					r.MoveTo(i, mv.pos)
					total += mv.delta
					improved = true
					break
				}
				cands = popMove(cands)
			}
		}
		endPass()
	}
	return total
}

// shardMinScan is the scan length n at which scanMoves fans the per-position
// precedence lookups out across the scratch's worker pool; below it the
// goroutine handoff costs more than the lookups. It is a variable only so
// determinism tests can force sharding on small instances.
var shardMinScan = 2048

// scanMoves computes, for the candidate at position i, the Kemeny-cost delta
// of inserting it at every other position, and returns the improving
// (delta < 0) targets in canonical order: j = i-1..0 (upward), then
// j = i+1..n-1 (downward). The returned slice aliases the scratch's move
// buffer and is valid until the next call.
//
// The per-position precedence terms t[k] = W[c][r[k]] - W[r[k]][c] — the
// expensive part: two lookups each in an O(n^2) matrix — are filled into the
// scratch's term buffer, sharded across sc.scanWorkers contiguous segments
// when n >= shardMinScan. The deltas are then the exact-integer running sums
// of t (upward) and -t (downward), accumulated sequentially, so the
// candidate list is bitwise identical for every worker count.
func (sc *searchScratch) scanMoves(w *ranking.Precedence, r ranking.Ranking, i int) []clsMove {
	n := len(r)
	c := r[i]
	if cap(sc.terms) < n {
		sc.terms = make([]int, n)
	}
	terms := sc.terms[:n]
	fill := func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if k == i {
				terms[k] = 0
				continue
			}
			y := r[k]
			terms[k] = w.At(c, y) - w.At(y, c)
		}
	}
	if workers := sc.scanWorkers; workers > 1 && n >= shardMinScan {
		var wg sync.WaitGroup
		for s := 0; s < workers; s++ {
			lo, hi := s*n/workers, (s+1)*n/workers
			wg.Add(1)
			go func() {
				defer wg.Done()
				fill(lo, hi)
			}()
		}
		wg.Wait()
	} else {
		fill(0, n)
	}
	cands := sc.moves[:0]
	delta := 0
	for j := i - 1; j >= 0; j-- {
		delta += terms[j]
		if delta < 0 {
			cands = append(cands, clsMove{j, delta, len(cands)})
		}
	}
	delta = 0
	for j := i + 1; j < n; j++ {
		delta -= terms[j]
		if delta < 0 {
			cands = append(cands, clsMove{j, delta, len(cands)})
		}
	}
	sc.moves = cands[:0]
	return cands
}
