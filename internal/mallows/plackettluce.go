package mallows

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"manirank/internal/ranking"
)

// PlackettLuce is an O(n log n)-per-sample ranking noise model used by the
// scalability experiments, where the O(n^2) repeated-insertion Mallows
// sampler is infeasible (n up to 10^5, |R| up to 10^7). Candidates receive
// utilities -theta * modalPosition + Gumbel noise and are ranked by
// descending utility, which is exactly Plackett-Luce sampling with weights
// exp(-theta * position): the same exponential location-spread family as
// Mallows (theta = 0 uniform, large theta concentrating on the modal
// ranking), with distances distributed similarly though not identically.
// DESIGN.md documents this substitution; all fairness/quality experiments
// use the exact Mallows sampler.
type PlackettLuce struct {
	modal ranking.Ranking
	theta float64
}

// NewPlackettLuce constructs the sampler centred on modal with spread theta.
func NewPlackettLuce(modal ranking.Ranking, theta float64) (*PlackettLuce, error) {
	if err := modal.Validate(); err != nil {
		return nil, fmt.Errorf("mallows: modal ranking: %w", err)
	}
	if theta < 0 || math.IsNaN(theta) {
		return nil, fmt.Errorf("mallows: spread theta must be >= 0, got %v", theta)
	}
	return &PlackettLuce{modal: modal.Clone(), theta: theta}, nil
}

// MustNewPlackettLuce is NewPlackettLuce that panics on invalid input.
func MustNewPlackettLuce(modal ranking.Ranking, theta float64) *PlackettLuce {
	pl, err := NewPlackettLuce(modal, theta)
	if err != nil {
		panic(err)
	}
	return pl
}

// PlackettLuceSampler draws from a PlackettLuce model with a reusable
// utility array and in-place sort scratch (see Sampler for the contract).
type PlackettLuceSampler struct {
	pl     *PlackettLuce
	util   []float64
	sorter plSorter
}

// plSorter sorts the draw's candidate ids by descending utility with the
// candidate id as a deterministic tiebreak — the unique order the previous
// stable closure sort produced, without its closure allocation. It is a
// pointer receiver stored inside the sampler so handing it to sort.Stable
// converts a pointer to an interface without heap allocation. Stable sort is
// deliberate for speed, not just determinism: utilities trend with modal
// position, so draws arrive nearly sorted and the insertion+merge passes run
// close to linear (~2x faster than pdqsort here at n = 10^5).
type plSorter struct {
	ids  ranking.Ranking
	util []float64
}

func (s *plSorter) Len() int { return len(s.ids) }
func (s *plSorter) Less(i, j int) bool {
	ui, uj := s.util[s.ids[i]], s.util[s.ids[j]]
	if ui != uj {
		return ui > uj
	}
	return s.ids[i] < s.ids[j]
}
func (s *plSorter) Swap(i, j int) { s.ids[i], s.ids[j] = s.ids[j], s.ids[i] }

// Sampler returns a new allocation-free sampler over pl. The model is shared
// read-only; the sampler's scratch is private.
func (pl *PlackettLuce) Sampler() *PlackettLuceSampler {
	return &PlackettLuceSampler{pl: pl, util: make([]float64, len(pl.modal))}
}

// N returns the number of candidates each draw ranks.
func (s *PlackettLuceSampler) N() int { return len(s.pl.modal) }

// SampleInto fills dst with one Plackett-Luce draw in O(n log n). Zero heap
// allocations in steady state.
func (s *PlackettLuceSampler) SampleInto(dst ranking.Ranking, rng *rand.Rand) {
	pl := s.pl
	n := len(pl.modal)
	if len(dst) != n {
		panic(fmt.Sprintf("mallows: SampleInto dst has %d slots, model ranks %d candidates", len(dst), n))
	}
	for pos, c := range pl.modal {
		// Gumbel(0,1) noise: -log(-log(U)).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		s.util[c] = -pl.theta*float64(pos) - math.Log(-math.Log(u))
	}
	for i := range dst {
		dst[i] = i
	}
	s.sorter.ids, s.sorter.util = dst, s.util
	sort.Stable(&s.sorter)
	s.sorter.ids = nil // drop the caller's buffer; keep util scratch
}

// Sample draws one ranking in O(n log n): a thin wrapper over a one-shot
// Sampler. Profile-scale callers should hold a Sampler and use SampleInto.
func (pl *PlackettLuce) Sample(rng *rand.Rand) ranking.Ranking {
	out := make(ranking.Ranking, len(pl.modal))
	pl.Sampler().SampleInto(out, rng)
	return out
}

// SampleProfile draws count rankings, reusing one sampler's scratch across
// all draws — only the output rankings are allocated.
func (pl *PlackettLuce) SampleProfile(count int, rng *rand.Rand) ranking.Profile {
	s := pl.Sampler()
	p := make(ranking.Profile, count)
	for i := range p {
		p[i] = make(ranking.Ranking, len(pl.modal))
		s.SampleInto(p[i], rng)
	}
	return p
}

// Modal returns a copy of the modal ranking.
func (pl *PlackettLuce) Modal() ranking.Ranking { return pl.modal.Clone() }
