package unfairgen

import (
	"math/rand"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// ExamStudy is a calibrated synthetic stand-in for the public exam-score
// dataset behind the paper's Table IV case study: students described by
// Gender(2), Race(5) and Lunch(2), with one base ranking per exam subject
// derived from per-subject scores (see DESIGN.md, Substitutions).
type ExamStudy struct {
	Table    *attribute.Table
	Profile  ranking.Profile // [math, reading, writing]
	Subjects []string
}

// NewExamStudy generates the exam case study over n students (the paper uses
// 200) with the given seed. Score effects are calibrated so the base
// rankings' FPR profile mirrors paper Table IV: women favoured in math but
// disfavoured in reading/writing, subsidised-lunch and NatHawaiian students
// ranked low, Asian/Black students slightly favoured.
func NewExamStudy(n int, seed int64) (*ExamStudy, error) {
	rng := rand.New(rand.NewSource(seed))
	gender := make([]int, n)
	race := make([]int, n)
	lunch := make([]int, n)
	raceDist := []float64{0.30, 0.25, 0.20, 0.15, 0.10} // Asian, White, Black, AlaskaNat, NatHawaii
	for c := 0; c < n; c++ {
		if rng.Float64() < 0.5 {
			gender[c] = 1 // Woman
		}
		u := rng.Float64()
		acc := 0.0
		for v, p := range raceDist {
			acc += p
			if u <= acc {
				race[c] = v
				break
			}
		}
		if rng.Float64() < 0.35 {
			lunch[c] = 1 // SubLunch
		}
	}
	ag, err := attribute.NewAttribute("Gender", []string{"Man", "Woman"}, gender)
	if err != nil {
		return nil, err
	}
	ar, err := attribute.NewAttribute("Race", []string{"Asian", "White", "Black", "AlaskaNat", "NatHawaii"}, race)
	if err != nil {
		return nil, err
	}
	al, err := attribute.NewAttribute("Lunch", []string{"NoSub", "SubLunch"}, lunch)
	if err != nil {
		return nil, err
	}
	t, err := attribute.NewTable(n, ag, ar, al)
	if err != nil {
		return nil, err
	}
	// Per-subject additive effects, ordered [Gender, Race, Lunch] to match
	// the table's attributes. Magnitudes are in score points against a
	// Normal(66, 13) base and were calibrated so the resulting FPR profile
	// tracks paper Table IV.
	raceEff := []float64{3.5, -0.5, 3.0, 2.0, -11.0}
	subjects := []struct {
		name   string
		gender []float64 // [Man, Woman]
		lunch  []float64 // [NoSub, SubLunch]
	}{
		{"Math", []float64{-4.0, 4.0}, []float64{8.5, -8.5}},
		{"Reading", []float64{3.5, -3.5}, []float64{5.0, -5.0}},
		{"Writing", []float64{4.5, -4.5}, []float64{7.0, -7.0}},
	}
	study := &ExamStudy{Table: t}
	for _, s := range subjects {
		eff := [][]float64{s.gender, raceEff, s.lunch}
		scores := BiasedScores(t, 66, 13, eff, rng)
		study.Profile = append(study.Profile, ScoreRanking(scores))
		study.Subjects = append(study.Subjects, s.name)
	}
	return study, nil
}

// CSRankingsStudy is a calibrated synthetic stand-in for the CSRankings
// department data of paper Table V: departments described by Location(4) and
// Type(2), with one base ranking per year 2000-2020.
type CSRankingsStudy struct {
	Table   *attribute.Table
	Profile ranking.Profile
	Years   []int
}

// NewCSRankingsStudy generates the CSRankings case study: 65 departments
// with a persistent quality score biased toward Northeast and Private
// institutions, plus per-year noise, yielding 21 yearly base rankings whose
// FPR profile mirrors paper Table V.
func NewCSRankingsStudy(seed int64) (*CSRankingsStudy, error) {
	const n = 65
	rng := rand.New(rand.NewSource(seed))
	// Regional mix loosely matching US CS departments.
	locDist := []float64{0.31, 0.23, 0.23, 0.23} // Northeast, Midwest, West, South
	loc := make([]int, n)
	typ := make([]int, n)
	for c := 0; c < n; c++ {
		u := rng.Float64()
		acc := 0.0
		for v, p := range locDist {
			acc += p
			if u <= acc {
				loc[c] = v
				break
			}
		}
		// Private institutions cluster in the Northeast.
		pPrivate := 0.35
		if loc[c] == 0 {
			pPrivate = 0.60
		}
		if rng.Float64() < pPrivate {
			typ[c] = 0 // Private
		} else {
			typ[c] = 1 // Public
		}
	}
	al, err := attribute.NewAttribute("Location", []string{"Northeast", "Midwest", "West", "South"}, loc)
	if err != nil {
		return nil, err
	}
	at, err := attribute.NewAttribute("Type", []string{"Private", "Public"}, typ)
	if err != nil {
		return nil, err
	}
	t, err := attribute.NewTable(n, al, at)
	if err != nil {
		return nil, err
	}
	// Persistent department quality with location/type bias calibrated to
	// Table V (Northeast FPR ~ 0.7, South ~ 0.25, Private ~ 0.6).
	locEff := []float64{0.95, -0.15, 0.35, -1.05}
	typEff := []float64{0.30, -0.30}
	quality := make([]float64, n)
	for c := 0; c < n; c++ {
		quality[c] = rng.NormFloat64() + locEff[loc[c]] + typEff[typ[c]]
	}
	study := &CSRankingsStudy{Table: t}
	for year := 2000; year <= 2020; year++ {
		scores := make([]float64, n)
		for c := 0; c < n; c++ {
			scores[c] = quality[c] + 0.35*rng.NormFloat64()
		}
		study.Profile = append(study.Profile, ScoreRanking(scores))
		study.Years = append(study.Years, year)
	}
	return study, nil
}

// AdmissionsStudy is the paper's running admissions-committee example
// (Figures 1 and 2): 45 applicants with Gender(3) x Race(5) and four base
// rankings of varying bias — r4 strongly biased against women and Black
// candidates, r3 nearly even, r1/r2 moderately biased.
type AdmissionsStudy struct {
	Table   *attribute.Table
	Profile ranking.Profile
}

// NewAdmissionsStudy generates the admissions example.
func NewAdmissionsStudy(seed int64) (*AdmissionsStudy, error) {
	t, err := PaperTable(45)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Per-ranker bias strengths against [Gender, Race] values; larger gaps
	// produce more biased rankings. Gender order: Man, Non-Binary, Woman;
	// Race order: AlaskaNat, Asian, Black, NatHawaii, White.
	rankers := [][2][]float64{
		{{1.4, 0.1, -1.2}, {0.0, 0.6, -1.2, -0.3, 0.9}},  // r1: biased
		{{1.1, -0.2, -0.9}, {0.2, 0.4, -1.4, -0.2, 0.7}}, // r2: biased
		{{0.1, 0.0, -0.1}, {0.1, 0.0, -0.1, 0.0, 0.1}},   // r3: nearly even
		{{2.2, 0.3, -2.0}, {0.1, 0.8, -2.2, -0.5, 1.4}},  // r4: severely biased
	}
	study := &AdmissionsStudy{Table: t}
	for _, eff := range rankers {
		scores := BiasedScores(t, 0, 1, [][]float64{eff[0], eff[1]}, rng)
		study.Profile = append(study.Profile, ScoreRanking(scores))
	}
	return study, nil
}
