package core

import "testing"

// TestRepairConvergesOnHardInstances exercises Make-MR-Fair on the
// configurations that historically triggered oscillation or dead ends:
// block-unfair starts with tight deltas over many intersectional groups.
func TestRepairConvergesOnHardInstances(t *testing.T) {
	for _, n := range []int{30, 45, 90} {
		tab := testTable(t, n)
		for _, delta := range []float64{0.3, 0.1, 0.05} {
			out, err := MakeMRFair(blockRanking(tab), Targets(tab, delta))
			if err != nil {
				t.Fatalf("n=%d delta=%v: %v", n, delta, err)
			}
			if v, idx := MaxViolation(out, Targets(tab, delta)); v > 0 {
				t.Fatalf("n=%d delta=%v: violation %v on target %d", n, delta, v, idx)
			}
		}
	}
}
