package cache

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"manirank/internal/obs"
)

// DiskBudget bounds the bytes the persistent tier may hold on disk. One
// budget spans the whole cache root — both the results and matrices
// namespaces share it, the same way they share the physical disk — and
// every attached FileStore (SetBudget) reports its writes and deletes.
// When usage crosses the limit, the oldest entry files by modification
// time are evicted until usage falls to 90% of the limit (evicting past
// the line amortises the directory walk). Get refreshes an entry's mtime,
// so "oldest" approximates least-recently-used, not least-recently-
// written.
//
// Eviction is safe against every reader: a removed entry simply reads as
// a miss and recomputes, exactly like an engine-version prune.
type DiskBudget struct {
	root  string
	limit int64

	mu   sync.Mutex
	used int64

	evictions    obs.Counter
	bytesEvicted obs.Counter
}

// NewDiskBudget returns a budget of limit bytes over the store root,
// initialised from a walk of what is already there (warm restarts start
// with the truth, not zero).
func NewDiskBudget(root string, limit int64) *DiskBudget {
	b := &DiskBudget{root: root, limit: limit}
	b.used = scanUsage(root)
	return b
}

// scanUsage sums the sizes of every entry file under root.
func scanUsage(root string) int64 {
	var total int64
	filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// Limit returns the configured byte limit.
func (b *DiskBudget) Limit() int64 { return b.limit }

// Used returns the currently accounted disk usage in bytes.
func (b *DiskBudget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Evictions returns the live counter of files evicted under disk
// pressure, for registry adoption.
func (b *DiskBudget) Evictions() *obs.Counter { return &b.evictions }

// BytesEvicted returns the live counter of bytes reclaimed by eviction,
// for registry adoption.
func (b *DiskBudget) BytesEvicted() *obs.Counter { return &b.bytesEvicted }

// charge records a byte delta (negative for deletes) and evicts when the
// limit is crossed.
func (b *DiskBudget) charge(delta int64) {
	b.mu.Lock()
	b.used += delta
	if b.used < 0 {
		b.used = 0
	}
	over := b.limit > 0 && b.used > b.limit
	b.mu.Unlock()
	if over {
		b.evict()
	}
}

// evict removes entry files oldest-mtime-first until usage sits at or
// under 90% of the limit. The walk recomputes usage from the filesystem,
// so any accounting drift (crashed writes, external deletes) self-heals
// on every eviction pass.
func (b *DiskBudget) evict() {
	b.mu.Lock()
	defer b.mu.Unlock()
	type file struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []file
	var total int64
	filepath.WalkDir(b.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil
		}
		files = append(files, file{p, info.Size(), info.ModTime()})
		total += info.Size()
		return nil
	})
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	target := b.limit - b.limit/10
	for _, f := range files {
		if total <= target {
			break
		}
		if os.Remove(f.path) == nil {
			total -= f.size
			b.evictions.Inc()
			b.bytesEvicted.Add(uint64(f.size))
		}
	}
	b.used = total
}

// touch bumps an entry's mtime so budget eviction treats a read as
// recency — LRU, not FIFO.
func (b *DiskBudget) touch(path string) {
	now := time.Now()
	os.Chtimes(path, now, now)
}
