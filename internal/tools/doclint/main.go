// Command doclint is the repo's zero-dependency documentation linter (a
// revive/golint-style check, runnable with plain `go run`): it parses the
// packages in the directories given as arguments and fails — listing every
// offender — when a package lacks a package comment or an exported
// identifier (function, method, type, or package-level var/const) lacks a
// doc comment. CI's docs job runs it over the root package and
// internal/service/... so the public godoc stays complete.
//
// The -deprecated flag adds the Engine-migration check: each named
// exported identifier must exist and carry a doc paragraph starting
// "Deprecated:" that names its Engine replacement, so a legacy entry point
// can never lose (or never have shipped without) its migration pointer.
// Bare names resolve in the first linted directory (the public API
// surface); "dir:Name" pins another directory.
//
// Usage:
//
//	go run ./internal/tools/doclint [-deprecated Name,Name...] <pkg-dir> [<pkg-dir>...]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

// deprecatedList names exported identifiers that must carry a Deprecated:
// doc line pointing at their Engine replacement.
var deprecatedList = flag.String("deprecated", "",
	"comma-separated exported identifiers that must carry a Deprecated: doc line naming their Engine replacement")

func main() {
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-deprecated Name,Name...] <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	failures := 0
	// Doc texts are collected per directory: several linted packages may
	// export the same identifier name (manirank.FairKemeny wraps
	// core.FairKemeny), and only the named surface's doc must carry the
	// deprecation.
	docs := map[string]map[string]string{} // dir -> exported identifier -> doc text
	for _, dir := range flag.Args() {
		docs[dir] = map[string]string{}
		failures += lintDir(dir, docs[dir])
	}
	failures += lintDeprecated(*deprecatedList, flag.Args()[0], docs)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d findings\n", failures)
		os.Exit(1)
	}
}

// lintDeprecated enforces the -deprecated contract against the doc texts
// collected while linting and returns the number of findings (each already
// printed). Entries may be qualified "dir:Name"; bare names resolve in the
// first linted directory (the public API surface).
func lintDeprecated(list, firstDir string, docs map[string]map[string]string) int {
	if list == "" {
		return 0
	}
	findings := 0
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		dir := firstDir
		if d, n, ok := strings.Cut(name, ":"); ok {
			dir, name = d, n
		}
		doc, ok := docs[dir][name]
		if !ok {
			fmt.Fprintf(os.Stderr, "doclint: -deprecated identifier %s not found in %s\n", name, dir)
			findings++
			continue
		}
		dep := deprecatedParagraph(doc)
		switch {
		case dep == "":
			fmt.Fprintf(os.Stderr, "doclint: legacy entry point %s (%s) has no Deprecated: doc line\n", name, dir)
			findings++
		case !strings.Contains(dep, "Engine"):
			fmt.Fprintf(os.Stderr, "doclint: %s's Deprecated: note does not name its Engine replacement\n", name)
			findings++
		}
	}
	return findings
}

// deprecatedParagraph returns the doc paragraph starting at the standard
// "Deprecated:" marker (empty when the doc has none).
func deprecatedParagraph(doc string) string {
	i := strings.Index(doc, "Deprecated:")
	if i < 0 {
		return ""
	}
	rest := doc[i:]
	if end := strings.Index(rest, "\n\n"); end >= 0 {
		rest = rest[:end]
	}
	return rest
}

// lintDir checks every non-test package clause in dir and returns the
// number of findings (each already printed). Exported identifiers' doc
// texts are collected into docs for the -deprecated check.
func lintDir(dir string, docs map[string]string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		findings++
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			lintFile(f, report, docs)
		}
		if !hasPkgDoc {
			findings++
			fmt.Fprintf(os.Stderr, "%s: package %s has no package comment\n", dir, pkg.Name)
		}
	}
	return findings
}

// lintFile reports every exported declaration in f that carries no doc
// comment, collecting exported top-level doc texts for the -deprecated
// check (methods are keyed Recv.Name).
func lintFile(f *ast.File, report func(token.Pos, string, ...any), docs map[string]string) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
				continue
			}
			docs[funcKey(d)] = d.Doc.Text()
		case *ast.GenDecl:
			lintGenDecl(d, report, docs)
		}
	}
}

// funcKey names a function decl for the docs map: "Name" for functions,
// "Recv.Name" for methods.
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}

// lintGenDecl checks type/var/const declarations. A doc comment on the
// grouped declaration covers its specs; otherwise each exported spec needs
// its own. The most specific present doc (spec over group) is collected
// for the -deprecated check.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any), docs map[string]string) {
	if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
		return
	}
	specDoc := func(own *ast.CommentGroup) string {
		if own != nil {
			return own.Text()
		}
		if d.Doc != nil {
			return d.Doc.Text()
		}
		return ""
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
				continue
			}
			docs[s.Name.Name] = specDoc(s.Doc)
		case *ast.ValueSpec:
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				for _, name := range s.Names {
					if name.IsExported() {
						report(s.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
					}
				}
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					docs[name.Name] = specDoc(s.Doc)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported (or
// the decl is a plain function); methods on unexported types are internal
// regardless of their own name.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcKind distinguishes methods from functions in reports.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
