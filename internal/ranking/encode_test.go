package ranking

import (
	"bytes"
	"testing"
)

func testPrecedence(t *testing.T) (*Precedence, Profile) {
	t.Helper()
	p := Profile{{0, 1, 2, 3}, {1, 0, 3, 2}, {3, 2, 1, 0}}
	w, err := NewPrecedence(p)
	if err != nil {
		t.Fatal(err)
	}
	return w, p
}

func TestPrecedenceWireRoundTrip(t *testing.T) {
	w, _ := testPrecedence(t)
	data, err := w.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPrecedence(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != w.N() || got.Rankings() != w.Rankings() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", got.N(), got.Rankings(), w.N(), w.Rankings())
	}
	for a := 0; a < w.N(); a++ {
		for b := 0; b < w.N(); b++ {
			if got.At(a, b) != w.At(a, b) {
				t.Fatalf("W[%d][%d] = %d, want %d", a, b, got.At(a, b), w.At(a, b))
			}
		}
	}
	// The wire form is canonical: re-encoding the decoded matrix is
	// byte-identical.
	data2, _ := got.MarshalBinary()
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoded wire form differs")
	}
}

func TestUnmarshalPrecedenceRejectsCorruptForms(t *testing.T) {
	w, _ := testPrecedence(t)
	data, _ := w.MarshalBinary()
	cases := map[string][]byte{
		"empty":             {},
		"short header":      data[:precedenceHeaderLen-1],
		"bad magic":         append([]byte("XXXX"), data[4:]...),
		"truncated payload": data[:len(data)-4],
		"extra payload":     append(append([]byte{}, data...), 0, 0, 0, 0),
	}
	// A header announcing a huge n over a tiny payload must be rejected by
	// the length check before any allocation.
	huge := append([]byte{}, data[:precedenceHeaderLen]...)
	for i := 4; i < 12; i++ {
		huge[i] = 0xFF
	}
	cases["huge dimensions"] = huge
	for name, c := range cases {
		if _, err := UnmarshalPrecedence(c); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestProfileDigest(t *testing.T) {
	_, p := testPrecedence(t)
	d1 := p.Digest("ns/v1")
	if len(d1) != 64 {
		t.Fatalf("digest %q is not a hex SHA-256", d1)
	}
	// Content-equal profiles collide; any semantic difference separates.
	clone := Profile{{0, 1, 2, 3}, {1, 0, 3, 2}, {3, 2, 1, 0}}
	if clone.Digest("ns/v1") != d1 {
		t.Fatal("structurally equal profiles digest differently")
	}
	perturbed := Profile{{0, 1, 2, 3}, {1, 0, 3, 2}, {3, 2, 0, 1}}
	if perturbed.Digest("ns/v1") == d1 {
		t.Fatal("different profiles collided")
	}
	if p.Digest("ns/v2") == d1 {
		t.Fatal("namespace bump did not separate digests")
	}
	// Row-boundary ambiguity: [[0,1],[2]] vs [[0],[1,2]] must differ (the
	// length prefixes prevent concatenation collisions).
	a := Profile{{0, 1}, {2}}
	b := Profile{{0}, {1, 2}}
	if a.Digest("ns") == b.Digest("ns") {
		t.Fatal("row-boundary collision")
	}
}
