package manirank_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"manirank"
)

// requireMatrixEqual pins two precedence matrices cell-for-cell — the
// "bitwise identical to a rebuild" guarantee every streaming mutation makes.
func requireMatrixEqual(t *testing.T, got, want *manirank.Precedence, what string) {
	t.Helper()
	if got.N() != want.N() || got.Rankings() != want.Rankings() {
		t.Fatalf("%s: shape (n=%d m=%d) vs rebuild (n=%d m=%d)",
			what, got.N(), got.Rankings(), want.N(), want.Rankings())
	}
	n := got.N()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if got.At(a, b) != want.At(a, b) {
				t.Fatalf("%s: W[%d][%d] = %d, rebuild has %d", what, a, b, got.At(a, b), want.At(a, b))
			}
		}
	}
}

// TestEngineStreamParity is the core streaming property: a long random
// add/remove/update sequence applied incrementally must leave the engine
// holding exactly the matrix a from-scratch NewEngine builds over the same
// profile — and solving through it must match the from-scratch engine
// bitwise for every registered method.
func TestEngineStreamParity(t *testing.T) {
	const n = 16
	tab := demoTable(t, n)
	p := demoProfile(t, tab, 6, 0.4, 11)
	eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	mirror := p.Clone()
	for step := 0; step < 60; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(mirror) == 0: // add
			r := manirank.Ranking(rng.Perm(n))
			if err := eng.AddRanking(r); err != nil {
				t.Fatalf("step %d: AddRanking: %v", step, err)
			}
			mirror = append(mirror, r.Clone())
		case op == 1: // remove
			i := rng.Intn(len(mirror))
			removed, err := eng.RemoveRanking(i)
			if err != nil {
				t.Fatalf("step %d: RemoveRanking(%d): %v", step, i, err)
			}
			if !reflect.DeepEqual(removed, mirror[i]) {
				t.Fatalf("step %d: RemoveRanking returned %v, profile held %v", step, removed, mirror[i])
			}
			mirror = append(mirror[:i], mirror[i+1:]...)
		default: // update
			i := rng.Intn(len(mirror))
			r := manirank.Ranking(rng.Perm(n))
			if err := eng.UpdateRanking(i, r); err != nil {
				t.Fatalf("step %d: UpdateRanking(%d): %v", step, i, err)
			}
			mirror[i] = r.Clone()
		}

		if got := eng.Profile(); !reflect.DeepEqual(got, mirror) {
			t.Fatalf("step %d: engine profile deviates from mirror", step)
		}
		if len(mirror) == 0 {
			continue
		}
		fresh, err := manirank.NewEngine(mirror)
		if err != nil {
			t.Fatalf("step %d: rebuild: %v", step, err)
		}
		requireMatrixEqual(t, eng.PrecedenceSnapshot(), fresh.Precedence(), "after mutation")
	}
	if v := eng.Version(); v != 60 {
		t.Fatalf("Version() = %d after 60 mutations", v)
	}

	// Solve parity at the final state, both fair and unfair methods.
	fresh, err := manirank.NewEngine(mirror, manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	targets := manirank.Targets(tab, 0.2)
	for _, m := range manirank.Methods() {
		var tg []manirank.Target
		if m.IsFair() {
			tg = targets
		}
		a, err := eng.Solve(context.Background(), m, tg, pinnedSolveOptions()...)
		if err != nil {
			t.Fatalf("%s (incremental): %v", m, err)
		}
		b, err := fresh.Solve(context.Background(), m, tg, pinnedSolveOptions()...)
		if err != nil {
			t.Fatalf("%s (rebuild): %v", m, err)
		}
		if !reflect.DeepEqual(a.Ranking, b.Ranking) {
			t.Errorf("%s: incremental engine deviates from rebuilt engine\nincr:    %v\nrebuild: %v",
				m, a.Ranking, b.Ranking)
		}
	}
}

// TestEngineCopyOnWrite pins the ownership contract: NewEngine aliases the
// caller's profile slice and engines handed out by an EngineCache share the
// cache-resident matrix, so the first mutation must fork both instead of
// corrupting them.
func TestEngineCopyOnWrite(t *testing.T) {
	tab := demoTable(t, 12)
	p := demoProfile(t, tab, 8, 0.5, 21)
	orig := p.Clone()

	eng, err := manirank.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RemoveRanking(0); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddRanking(manirank.Ranking(rand.New(rand.NewSource(3)).Perm(12))); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, orig) {
		t.Fatal("engine mutation modified the caller's profile slice")
	}

	// Cache path: two engines over the same profile share one cached matrix;
	// mutating one must leave the other — and the cache — untouched.
	ec := manirank.NewEngineCache(1 << 20)
	e1, err := ec.Engine(context.Background(), orig)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ec.Engine(context.Background(), orig)
	if err != nil {
		t.Fatal(err)
	}
	before := e2.PrecedenceSnapshot()
	if err := e1.UpdateRanking(0, manirank.Ranking(rand.New(rand.NewSource(4)).Perm(12))); err != nil {
		t.Fatal(err)
	}
	requireMatrixEqual(t, e2.PrecedenceSnapshot(), before, "shared cache matrix after sibling mutation")
	e3, err := ec.Engine(context.Background(), orig)
	if err != nil {
		t.Fatal(err)
	}
	requireMatrixEqual(t, e3.PrecedenceSnapshot(), before, "cache-resident matrix after client mutation")
}

// TestEngineWarmStart pins the warm-start contract: a feasible previous
// consensus fed through WithWarmStart yields a deterministic fair result —
// identical for every solver worker count — that satisfies the same targets,
// and a mis-sized warm ranking silently falls back to the cold path.
func TestEngineWarmStart(t *testing.T) {
	const n = 20
	tab := demoTable(t, n)
	p := demoProfile(t, tab, 10, 0.5, 31)
	targets := manirank.Targets(tab, 0.15)
	eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eng.Solve(context.Background(), manirank.MethodFairKemeny, targets, pinnedSolveOptions()...)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate, then re-solve warm-started from the pre-mutation consensus.
	if err := eng.UpdateRanking(0, manirank.Ranking(rand.New(rand.NewSource(5)).Perm(n))); err != nil {
		t.Fatal(err)
	}
	var warmRankings []manirank.Ranking
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := eng.Solve(context.Background(), manirank.MethodFairKemeny, targets,
			manirank.WithSeed(pinnedSeed),
			manirank.WithSolverWorkers(workers),
			manirank.WithWarmStart(cold.Ranking),
		)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !manirank.SatisfiesMANIRank(res.Ranking, tab, 0.15) {
			t.Fatalf("workers=%d: warm-started consensus violates the targets", workers)
		}
		warmRankings = append(warmRankings, res.Ranking)
	}
	for i := 1; i < len(warmRankings); i++ {
		if !reflect.DeepEqual(warmRankings[0], warmRankings[i]) {
			t.Fatalf("warm-started solve differs across worker counts:\nw=1: %v\nw=%d: %v",
				warmRankings[0], []int{1, 2, 4, 8}[i], warmRankings[i])
		}
	}

	// A wrong-length warm ranking must be ignored, not crash: result equals
	// the cold solve exactly.
	coldAgain, err := eng.Solve(context.Background(), manirank.MethodFairKemeny, targets, pinnedSolveOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	short, err := eng.Solve(context.Background(), manirank.MethodFairKemeny, targets,
		append(pinnedSolveOptions(), manirank.WithWarmStart(manirank.NewRanking(5)))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(short.Ranking, coldAgain.Ranking) {
		t.Fatal("mis-sized warm ranking changed the solve instead of being ignored")
	}
}

// TestEngineStreamValidation exercises the error surface of the mutation
// API: matrix-only engines, bad indices, and rejected rankings that must
// leave the matrix untouched.
func TestEngineStreamValidation(t *testing.T) {
	tab := demoTable(t, 8)
	p := demoProfile(t, tab, 5, 0.5, 41)
	eng, err := manirank.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}

	wOnly, err := manirank.NewEngineW(eng.Precedence())
	if err != nil {
		t.Fatal(err)
	}
	if err := wOnly.AddRanking(manirank.NewRanking(8)); !errors.Is(err, manirank.ErrProfileRequired) {
		t.Fatalf("matrix-only AddRanking error = %v, want ErrProfileRequired", err)
	}
	if _, err := wOnly.RemoveRanking(0); !errors.Is(err, manirank.ErrProfileRequired) {
		t.Fatalf("matrix-only RemoveRanking error = %v, want ErrProfileRequired", err)
	}
	if err := wOnly.UpdateRanking(0, manirank.NewRanking(8)); !errors.Is(err, manirank.ErrProfileRequired) {
		t.Fatalf("matrix-only UpdateRanking error = %v, want ErrProfileRequired", err)
	}
	if got := wOnly.Profile(); got != nil {
		t.Fatalf("matrix-only Profile() = %v, want nil", got)
	}

	if _, err := eng.RemoveRanking(len(p)); !errors.Is(err, manirank.ErrRankerIndex) {
		t.Fatalf("RemoveRanking(len) error = %v, want ErrRankerIndex", err)
	}
	if err := eng.UpdateRanking(-1, manirank.NewRanking(8)); !errors.Is(err, manirank.ErrRankerIndex) {
		t.Fatalf("UpdateRanking(-1) error = %v, want ErrRankerIndex", err)
	}

	before := eng.PrecedenceSnapshot()
	if err := eng.AddRanking(manirank.NewRanking(9)); err == nil {
		t.Fatal("AddRanking accepted a wrong-length ranking")
	}
	if err := eng.UpdateRanking(0, manirank.Ranking{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("UpdateRanking accepted a non-permutation")
	}
	requireMatrixEqual(t, eng.PrecedenceSnapshot(), before, "matrix after rejected mutations")
	if v := eng.Version(); v != 0 {
		t.Fatalf("rejected mutations bumped Version to %d", v)
	}

	// NewEngineWithMatrix validates the profile/matrix pairing.
	if _, err := manirank.NewEngineWithMatrix(p, nil); err == nil {
		t.Fatal("NewEngineWithMatrix accepted a nil matrix")
	}
	if _, err := manirank.NewEngineWithMatrix(p[:len(p)-1], eng.Precedence()); err == nil {
		t.Fatal("NewEngineWithMatrix accepted a ranking-count mismatch")
	}
	small, err := manirank.NewEngine(demoProfile(t, demoTable(t, 6), 5, 0.5, 41))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := manirank.NewEngineWithMatrix(p, small.Precedence()); err == nil {
		t.Fatal("NewEngineWithMatrix accepted a candidate-count mismatch")
	}
	paired, err := manirank.NewEngineWithMatrix(p, eng.Precedence())
	if err != nil {
		t.Fatalf("NewEngineWithMatrix rejected a valid pairing: %v", err)
	}
	// The paired engine shares eng's matrix until its first mutation.
	preMutation := eng.PrecedenceSnapshot()
	if err := paired.AddRanking(manirank.Ranking(rand.New(rand.NewSource(6)).Perm(8))); err != nil {
		t.Fatal(err)
	}
	requireMatrixEqual(t, eng.PrecedenceSnapshot(), preMutation, "donor matrix after paired-engine mutation")
}
