// Command manirankd serves MANI-Rank fair rank aggregation over HTTP: the
// full solver family behind POST /v1/aggregate, with a two-tier digest-keyed
// cache (full-request results under a -cache-policy of lru or clock, plus a
// profile-keyed precedence-matrix tier so different methods over the same
// profile share the O(n²·m) construction), single-flight request
// coalescing, a bounded admission queue with 429 backpressure, per-request
// deadlines (best-so-far on expiry), and observability endpoints: /healthz,
// /statz (JSON), /metricsz (Prometheus text over the same registry), and
// /tracez (recent and slowest request traces with per-stage spans; pair
// with -trace-slow-ms to also log slow requests' span breakdowns). With
// -cache-dir both tiers persist to a versioned on-disk store, so a
// restarted daemon serves its previous working set warm; bump
// -cache-engine-version to invalidate everything persisted.
//
// Streaming profiles (DESIGN.md §12): POST /v1/session pins an evolving
// profile server-side; POST /v1/session/{id} with {"op":"add"|"remove"|
// "update"|"solve", ...} patches the session's precedence matrix in O(n²)
// instead of re-paying the full rebuild and re-solves warm-started from the
// previous consensus. GET inspects a session, DELETE ends it; -max-sessions
// bounds how many can be live at once.
//
// Quickstart:
//
//	go run ./cmd/manirankd -addr :8080 &
//	curl -s localhost:8080/v1/aggregate -d '{
//	  "method": "fair-borda",
//	  "profile": [[0,1,2,3],[1,0,3,2],[0,2,1,3]],
//	  "attributes": [{"name":"Gender","values":["M","W"],"of":[0,1,0,1]}],
//	  "delta": 0.4
//	}'
//
// See DESIGN.md §6–§7 for the serving architecture and examples/serving for
// a guided walkthrough of the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manirank/internal/fleet"
	"manirank/internal/service"
	"manirank/internal/service/cache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 64, "admission queue depth; a full queue answers 429")
	workers := flag.Int("workers", 0, "solver pool width (0 = all CPUs)")
	solverWorkers := flag.Int("solver-workers", 1, "restart shards per individual solve (kemeny.Options.Workers); keep 1 under concurrent load")
	cacheSize := flag.Int("cache-size", 1024, "result cache capacity in entries (negative disables)")
	cachePolicy := flag.String("cache-policy", cache.PolicyClock, "result cache replacement policy: "+strings.Join(cache.Policies(), "|"))
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache TTL (0 = never expire)")
	cacheDir := flag.String("cache-dir", "", "root a persistent cache tier here: results and matrices survive restarts (empty disables)")
	cacheEngineVersion := flag.String("cache-engine-version", "", "engine-behaviour version in the persistent cache namespace; bump to invalidate persisted entries (default "+service.DefaultEngineVersion+")")
	snapshotInterval := flag.Duration("cache-snapshot-interval", 0, "flush memory-resident cache entries to -cache-dir on this period (0 = only on graceful shutdown)")
	diskMiB := flag.Int("cache-disk-mib", 0, "disk budget for the persistent tier in MiB; oldest-read entries are evicted past it (0 = unbounded)")
	fleetSelf := flag.String("fleet-self", "", "this node's advertised base URL for fleet peering, e.g. http://10.0.0.1:8080 (empty = single node)")
	peers := flag.String("peers", "", "comma-separated base URLs of the other fleet replicas")
	fleetFetchTimeout := flag.Duration("fleet-fetch-timeout", 250*time.Millisecond, "bound on one peer cache read, hedge included")
	fleetProbeInterval := flag.Duration("fleet-probe-interval", 2*time.Second, "peer liveness probe period")
	precCacheMiB := flag.Int("prec-cache-mib", 16, "precedence-matrix cache budget in MiB (4 bytes per matrix cell; 0 disables)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request compute deadline")
	maxDeadline := flag.Duration("max-deadline", 5*time.Minute, "upper bound on client-requested deadlines")
	maxSessions := flag.Int("max-sessions", 256, "bound on live streaming sessions (negative disables /v1/session)")
	traceSlowMS := flag.Int("trace-slow-ms", 0, "log any request at least this slow with its span breakdown (0 disables; traces land in /tracez regardless)")
	logLevel := flag.String("log-level", "info", "debug|info|warn|error")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (e.g. localhost:6060); empty disables")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "manirankd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	precCells := int64(-1) // 0 MiB: storage off (builds still coalesce)
	if *precCacheMiB > 0 {
		precCells = int64(*precCacheMiB) << 20 / 4 // int32 cells
	}

	// Fleet peering (DESIGN.md §13): -fleet-self + -peers shard both cache
	// tiers across the replica set by rendezvous hashing. The fleet outlives
	// the server — it is closed after srv.Close so shutdown-time cache
	// flushes can still route.
	var ring *fleet.Fleet
	if *fleetSelf != "" || *peers != "" {
		if *fleetSelf == "" {
			fmt.Fprintln(os.Stderr, "manirankd: -peers requires -fleet-self")
			os.Exit(2)
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		var err error
		ring, err = fleet.New(fleet.Config{
			Self:          *fleetSelf,
			Peers:         peerList,
			FetchTimeout:  *fleetFetchTimeout,
			ProbeInterval: *fleetProbeInterval,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "manirankd:", err)
			os.Exit(2)
		}
	}

	srv, err := service.New(service.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		SolverWorkers:    *solverWorkers,
		CacheSize:        *cacheSize,
		CachePolicy:      *cachePolicy,
		CacheTTL:         *cacheTTL,
		CacheDir:         *cacheDir,
		EngineVersion:    *cacheEngineVersion,
		SnapshotInterval: *snapshotInterval,
		DiskBudgetBytes:  int64(*diskMiB) << 20,
		Fleet:            ring,
		PrecCacheCells:   precCells,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		MaxSessions:      *maxSessions,
		TraceSlow:        time.Duration(*traceSlowMS) * time.Millisecond,
		Logger:           logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "manirankd:", err)
		os.Exit(2)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Profiling stays off the serving mux: it is opt-in (-pprof-addr) and
	// binds its own listener, so exposing /v1/aggregate never exposes
	// /debug/pprof with it. EXPERIMENTS.md documents capturing a solve-path
	// CPU profile against this endpoint.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pm}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener", "error", err)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		// Stop accepting and wait for in-flight handlers first (they hold
		// coalesced flights open), then drain the solver pool.
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown", "error", err)
		}
		srv.Close()
		if ring != nil {
			ring.Close()
		}
	}()

	logger.Info("manirankd listening", "addr", *addr, "queue", *queue,
		"cache_size", *cacheSize, "cache_policy", *cachePolicy, "prec_cache_mib", *precCacheMiB,
		"cache_dir", *cacheDir, "fleet_self", *fleetSelf)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "manirankd:", err)
		os.Exit(1)
	}
	<-done
}
