// Package loadgen drives a manirankd instance with a synthetic serving
// workload: a pool of distinct Mallows-profile requests whose popularity
// follows a configurable Zipf skew, replayed by concurrent closed-loop
// clients. It measures end-to-end throughput, latency percentiles, and the
// cache hit rate — the empirical counterpart to the Che-approximation view
// of cache sizing: hit rate is a function of cache capacity versus the
// skew-weighted working set, so sweeping the Zipf exponent maps the serving
// layer's useful operating range.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/service"
)

// Config shapes one load run.
type Config struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Clients is the number of concurrent closed-loop requesters (default 8).
	Clients int
	// Requests is the total request count across all clients (default 400).
	Requests int
	// Profiles is the number of distinct request bodies in the pool
	// (default 50) — the working-set size the cache contends with.
	Profiles int
	// ZipfS is the popularity skew exponent; 0 draws uniformly, otherwise
	// it must be > 1 (math/rand's Zipf domain) and larger means hotter hot
	// keys (default 0).
	ZipfS float64
	// Candidates and Rankers size each synthetic profile (defaults 60, 40).
	Candidates, Rankers int
	// Theta is the Mallows spread of every profile (default 0.4).
	Theta float64
	// Method is the consensus method requested (default "fair-kemeny").
	Method string
	// Delta is the fairness threshold for fair methods (default 0.2).
	Delta float64
	// DeadlineMillis is attached to every request (default 0: server
	// default).
	DeadlineMillis int64
	// Seed drives profile generation and the popularity draws.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Requests == 0 {
		c.Requests = 400
	}
	if c.Profiles == 0 {
		c.Profiles = 50
	}
	if c.Candidates == 0 {
		c.Candidates = 60
	}
	if c.Rankers == 0 {
		c.Rankers = 40
	}
	if c.Theta == 0 {
		c.Theta = 0.4
	}
	if c.Method == "" {
		c.Method = "fair-kemeny"
	}
	if c.Delta == 0 {
		c.Delta = 0.2
	}
	return c
}

// Result summarises one load run.
type Result struct {
	ZipfS        float64 `json:"zipf_s"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	Rejected     int     `json:"rejected_429"`
	DurationS    float64 `json:"duration_s"`
	Throughput   float64 `json:"throughput_rps"`
	HitRate      float64 `json:"cache_hit_rate"`
	Coalesced    int     `json:"coalesced"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
}

// buildPool generates the distinct request bodies, pre-marshalled once —
// the generator must not bottleneck the server being measured.
func buildPool(cfg Config) ([][]byte, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gender := make([]int, cfg.Candidates)
	region := make([]int, cfg.Candidates)
	for c := 0; c < cfg.Candidates; c++ {
		gender[c] = c % 2
		region[c] = (c / 2) % 3
	}
	pool := make([][]byte, cfg.Profiles)
	for i := range pool {
		modal := ranking.Random(cfg.Candidates, rng)
		p := mallows.MustNewPlackettLuce(modal, cfg.Theta).SampleProfile(cfg.Rankers, rng)
		profile := make([][]int, len(p))
		for j, r := range p {
			profile[j] = r
		}
		req := &service.AggregateRequest{
			Method:  cfg.Method,
			Profile: profile,
			Attributes: []service.AttributeSpec{
				{Name: "Gender", Values: []string{"M", "W"}, Of: gender},
				{Name: "Region", Values: []string{"N", "C", "S"}, Of: region},
			},
			Delta:          cfg.Delta,
			DeadlineMillis: cfg.DeadlineMillis,
		}
		blob, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		pool[i] = blob
	}
	return pool, nil
}

// picker returns a popularity sampler over [0, n): Zipf-skewed for s > 1,
// uniform for s == 0.
func picker(s float64, n int, rng *rand.Rand) (func() int, error) {
	if s == 0 {
		return func() int { return rng.Intn(n) }, nil
	}
	if s <= 1 {
		return nil, fmt.Errorf("loadgen: ZipfS must be 0 (uniform) or > 1, got %g", s)
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }, nil
}

// Run replays the workload and reports the measured serving behaviour.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	pool, err := buildPool(cfg)
	if err != nil {
		return Result{}, err
	}
	var (
		mu        sync.Mutex
		latencies []float64
		hits      int
		coalesced int
		errs      int
		rejected  int
	)
	client := &http.Client{Timeout: 2 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	total := 0
	for c := 0; c < cfg.Clients; c++ {
		// Spread Requests across clients without dropping the remainder.
		perClient := cfg.Requests / cfg.Clients
		if c < cfg.Requests%cfg.Clients {
			perClient++
		}
		total += perClient
		wg.Add(1)
		go func(c, perClient int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+c)))
			pick, perr := picker(cfg.ZipfS, len(pool), rng)
			if perr != nil {
				mu.Lock()
				errs += perClient
				mu.Unlock()
				return
			}
			for i := 0; i < perClient; i++ {
				reqStart := time.Now()
				resp, err := client.Post(cfg.URL+"/v1/aggregate", "application/json", bytes.NewReader(pool[pick()]))
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				var out service.AggregateResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(reqStart)) / float64(time.Millisecond)
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
				case resp.StatusCode != http.StatusOK || decodeErr != nil:
					errs++
				default:
					latencies = append(latencies, ms)
					if out.Cached {
						hits++
					}
					if out.Coalesced {
						coalesced++
					}
				}
				mu.Unlock()
			}
		}(c, perClient)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := Result{
		ZipfS:     cfg.ZipfS,
		Requests:  total,
		Errors:    errs,
		Rejected:  rejected,
		DurationS: elapsed.Seconds(),
		Coalesced: coalesced,
	}
	if res.DurationS > 0 {
		res.Throughput = float64(len(latencies)+rejected) / res.DurationS
	}
	if n := len(latencies); n > 0 {
		res.HitRate = float64(hits) / float64(n)
		sort.Float64s(latencies)
		res.P50LatencyMS = latencies[(n-1)*50/100]
		res.P99LatencyMS = latencies[(n-1)*99/100]
	}
	return res, nil
}
