package obs

import (
	"math"
	"sync/atomic"
)

// Label is one name/value pair qualifying a metric, e.g. {tier, result}.
// Metrics sharing a family name but differing in labels are distinct series
// — the Prometheus data model. Label sets are fixed at registration time:
// the registry has no dynamic label API on purpose, so a caller cannot grow
// an unbounded series set from request-derived strings (the failure mode
// the serving layer's historical per-method sync.Map had).
type Label struct {
	// Name is the label key; it must match [a-z_]+.
	Name string
	// Value is the label value; arbitrary UTF-8, escaped on exposition.
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64 metric. The zero value is
// ready to use; all methods are lock-free and safe for concurrent use.
// Counters are shared by pointer: the cache tiers own theirs and the
// serving layer registers the same instances, so every reader sees one
// source of truth.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 metric for values that go up and down
// (resident bytes, queue depth). The zero value is ready to use; all
// methods are lock-free and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
