// Package kemeny provides exact and heuristic optimizers for the Kemeny rank
// aggregation problem, with optional MANI-Rank fairness constraints. It is
// this reproduction's substitute for the IBM CPLEX integer-program solver the
// paper uses (see DESIGN.md, Substitutions):
//
//   - ExactDP: Held-Karp style subset dynamic program, exact for n <= 16.
//   - BranchAndBound: depth-first search over prefixes with an admissible
//     pairwise lower bound, incumbent pruning, and — when constraints are
//     given — fairness-feasibility pruning. Exact; practical for small and
//     medium n, or larger n with strong consensus.
//   - Heuristic / LocalSearch: Borda-seeded iterated local search with the
//     insertion neighbourhood, the standard high-quality Kemeny heuristic,
//     used at experiment scale (n = 90..500+).
//   - ConstrainedLocalSearch: local search restricted to rankings satisfying
//     fairness constraints, the large-n Fair-Kemeny engine.
//
// Every engine has a Ctx variant (HeuristicCtx, ConstrainedSearchCtx,
// BranchAndBoundCtx) taking a context.Context for cooperative cancellation:
// when the context is done mid-search the engine returns the best ranking
// found so far — never nil, and for constrained engines always a feasible
// one — which is how the serving layer turns request deadlines into
// best-so-far answers. A never-cancelled context is bitwise identical to
// the plain call. All engines consume a precomputed ranking.Precedence, so
// they compose with the serving layer's shared matrix tier.
package kemeny

import (
	"context"
	"fmt"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

// Constraint bounds the FPR spread (ARP, paper Def. 5) of one attribute by
// Delta. Passing a table's protected attributes plus its Intersection()
// pseudo-attribute expresses full MANI-Rank fairness (paper Def. 7).
type Constraint struct {
	Attr  *attribute.Attribute
	Delta float64
}

// Feasible reports whether ranking r satisfies every constraint.
func Feasible(r ranking.Ranking, cons []Constraint) bool {
	for _, c := range cons {
		if fairness.ARP(r, c.Attr) > c.Delta+fairness.Eps {
			return false
		}
	}
	return true
}

// Result is the outcome of an exact search.
type Result struct {
	// Ranking is the best ranking found (nil when no feasible ranking was
	// encountered within the node budget).
	Ranking ranking.Ranking
	// Cost is the Kemeny cost of Ranking against the precedence matrix.
	Cost int
	// Optimal is true when the search ran to completion, proving optimality.
	Optimal bool
	// Nodes is the number of search nodes expanded.
	Nodes int64
}

// ExactDP solves unconstrained Kemeny exactly with a subset dynamic program
// in O(2^n * n^2) time and O(2^n) space. It errors for n > 16 — use
// BranchAndBound there.
func ExactDP(w *ranking.Precedence) (ranking.Ranking, int, error) {
	n := w.N()
	if n > 16 {
		return nil, 0, fmt.Errorf("kemeny: ExactDP supports n <= 16, got %d", n)
	}
	if n == 0 {
		return ranking.Ranking{}, 0, nil
	}
	size := 1 << n
	const inf = int(^uint(0) >> 1)
	cost := make([]int, size)
	choice := make([]int8, size)
	for s := 1; s < size; s++ {
		cost[s] = inf
	}
	for s := 0; s < size; s++ {
		if cost[s] == inf {
			continue
		}
		for x := 0; x < n; x++ {
			if s&(1<<x) != 0 {
				continue
			}
			// Appending x to the prefix set s places x above every candidate
			// outside s (except x itself).
			add := 0
			for y := 0; y < n; y++ {
				if y != x && s&(1<<y) == 0 {
					add += w.At(x, y)
				}
			}
			ns := s | 1<<x
			if c := cost[s] + add; c < cost[ns] {
				cost[ns] = c
				choice[ns] = int8(x)
			}
		}
	}
	// Reconstruct from the back: choice[s] is the last (lowest) element of
	// the prefix set s, i.e. the candidate at position |s|-1.
	r := make(ranking.Ranking, n)
	s := size - 1
	for i := n - 1; i >= 0; i-- {
		x := int(choice[s])
		r[i] = x
		s &^= 1 << x
	}
	return r, cost[size-1], nil
}

// bbState carries the mutable search state of BranchAndBound.
type bbState struct {
	n        int
	w        *ranking.Precedence
	cons     []consState
	prefix   []int
	placed   []bool
	unplaced int

	costSoFar   int
	costToPlace []int // costToPlace[x] = sum over unplaced y != x of W[x][y]
	remMin      int   // admissible bound on cost among unplaced pairs

	best     ranking.Ranking
	bestCost int
	haveBest bool

	nodes    int64
	maxNodes int64
	aborted  bool
	ctx      context.Context // nil: never cancelled; polled every ctxPollMask+1 nodes
}

// ctxPollMask throttles context polls in the branch-and-bound hot loop: the
// deadline is checked once per 4096 expanded nodes, cheap against the O(n)
// work each node performs.
const ctxPollMask = 1<<12 - 1

// consState tracks one fairness constraint incrementally during search.
type consState struct {
	of      []int // candidate -> group value
	delta   float64
	groups  int
	wins    []int // mixed pairs won so far by each group
	decided []int // mixed pairs already decided for each group
	omegaM  []int // total mixed pairs per group
	cntUn   []int // unplaced members per group
}

// BranchAndBound searches for the minimum-cost ranking subject to cons (pass
// nil for plain Kemeny). incumbent, when non-nil, seeds the upper bound; for
// constrained searches it should be feasible (e.g. a Make-MR-Fair repaired
// ranking) so pruning starts tight. maxNodes bounds the search; when
// exceeded, the best ranking found so far is returned with Optimal=false.
// Pass maxNodes <= 0 for an unbounded (always optimal) search.
func BranchAndBound(w *ranking.Precedence, cons []Constraint, incumbent ranking.Ranking, maxNodes int64) Result {
	return BranchAndBoundCtx(nil, w, cons, incumbent, maxNodes)
}

// BranchAndBoundCtx is BranchAndBound with cooperative cancellation: when ctx
// is done the search aborts (polled every few thousand nodes) and returns the
// best ranking found so far with Optimal=false — exactly the node-budget
// exhaustion behaviour. A nil or never-cancelled ctx searches identically to
// BranchAndBound.
func BranchAndBoundCtx(ctx context.Context, w *ranking.Precedence, cons []Constraint, incumbent ranking.Ranking, maxNodes int64) Result {
	n := w.N()
	st := &bbState{
		ctx:         ctx,
		n:           n,
		w:           w,
		prefix:      make([]int, 0, n),
		placed:      make([]bool, n),
		unplaced:    n,
		costToPlace: make([]int, n),
		maxNodes:    maxNodes,
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if y != x {
				st.costToPlace[x] += w.At(x, y)
			}
		}
	}
	st.remMin = w.LowerBound()
	for _, c := range cons {
		g := c.Attr.DomainSize()
		cs := consState{
			of:      c.Attr.Of,
			delta:   c.Delta,
			groups:  g,
			wins:    make([]int, g),
			decided: make([]int, g),
			omegaM:  make([]int, g),
			cntUn:   make([]int, g),
		}
		for _, v := range c.Attr.Of {
			cs.cntUn[v]++
		}
		for v := 0; v < g; v++ {
			cs.omegaM[v] = fairness.MixedPairs(cs.cntUn[v], n)
		}
		st.cons = append(st.cons, cs)
	}
	if incumbent != nil && (len(cons) == 0 || Feasible(incumbent, cons)) {
		st.best = incumbent.Clone()
		st.bestCost = w.KemenyCost(incumbent)
		st.haveBest = true
	}
	st.dfs()
	res := Result{Nodes: st.nodes, Optimal: !st.aborted}
	if st.haveBest {
		res.Ranking = st.best
		res.Cost = st.bestCost
	}
	return res
}

func (st *bbState) dfs() {
	if st.aborted {
		return
	}
	if st.maxNodes > 0 && st.nodes >= st.maxNodes {
		st.aborted = true
		return
	}
	if st.ctx != nil && st.nodes&ctxPollMask == 0 && st.ctx.Err() != nil {
		st.aborted = true
		return
	}
	st.nodes++
	if st.unplaced == 0 {
		// Fairness feasibility was maintained incrementally; at a leaf the
		// bounds are exact, so reaching here means the ranking is feasible.
		if !st.haveBest || st.costSoFar < st.bestCost {
			st.best = append(ranking.Ranking(nil), st.prefix...)
			st.bestCost = st.costSoFar
			st.haveBest = true
		}
		return
	}
	// Order children by immediate placement cost: cheap extensions first
	// find strong incumbents early.
	order := make([]int, 0, st.unplaced)
	for x := 0; x < st.n; x++ {
		if !st.placed[x] {
			order = append(order, x)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && st.costToPlace[order[j]] < st.costToPlace[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, x := range order {
		if st.haveBest && st.costSoFar+st.costToPlace[x]+st.remMinAfter(x) >= st.bestCost {
			continue
		}
		st.place(x)
		if st.fairFeasible() {
			st.dfs()
		}
		st.unplace(x)
		if st.aborted {
			return
		}
	}
}

// remMinAfter returns the admissible remaining-pairs bound that would hold
// after placing x, without mutating state.
func (st *bbState) remMinAfter(x int) int {
	rm := st.remMin
	for y := 0; y < st.n; y++ {
		if y != x && !st.placed[y] {
			rm -= minInt(st.w.At(x, y), st.w.At(y, x))
		}
	}
	return rm
}

func (st *bbState) place(x int) {
	st.costSoFar += st.costToPlace[x]
	st.placed[x] = true
	st.prefix = append(st.prefix, x)
	for y := 0; y < st.n; y++ {
		if !st.placed[y] {
			st.costToPlace[y] -= st.w.At(y, x)
			st.remMin -= minInt(st.w.At(x, y), st.w.At(y, x))
		}
	}
	for k := range st.cons {
		cs := &st.cons[k]
		v := cs.of[x]
		mixedUnplaced := (st.unplaced - 1) - (cs.cntUn[v] - 1)
		cs.wins[v] += mixedUnplaced
		cs.decided[v] += mixedUnplaced
		for u := 0; u < cs.groups; u++ {
			if u != v {
				cs.decided[u] += cs.cntUn[u]
			}
		}
		cs.cntUn[v]--
	}
	st.unplaced--
}

func (st *bbState) unplace(x int) {
	st.unplaced++
	for k := range st.cons {
		cs := &st.cons[k]
		v := cs.of[x]
		cs.cntUn[v]++
		mixedUnplaced := (st.unplaced - 1) - (cs.cntUn[v] - 1)
		cs.wins[v] -= mixedUnplaced
		cs.decided[v] -= mixedUnplaced
		for u := 0; u < cs.groups; u++ {
			if u != v {
				cs.decided[u] -= cs.cntUn[u]
			}
		}
	}
	st.prefix = st.prefix[:len(st.prefix)-1]
	st.placed[x] = false
	for y := 0; y < st.n; y++ {
		if y != x && !st.placed[y] {
			st.costToPlace[y] += st.w.At(y, x)
			st.remMin += minInt(st.w.At(x, y), st.w.At(y, x))
		}
	}
	st.costSoFar -= st.costToPlace[x]
}

// fairFeasible reports whether every constraint can still be satisfied: the
// final FPR of group v necessarily lies in
// [wins/omegaM, (wins + omegaM - decided)/omegaM], so a constraint is dead
// once max-of-minFPR minus min-of-maxFPR exceeds Delta.
func (st *bbState) fairFeasible() bool {
	for k := range st.cons {
		cs := &st.cons[k]
		maxMin, minMax := -1.0, 2.0
		for v := 0; v < cs.groups; v++ {
			var lo, hi float64
			if cs.omegaM[v] == 0 {
				lo, hi = 0.5, 0.5
			} else {
				om := float64(cs.omegaM[v])
				lo = float64(cs.wins[v]) / om
				hi = float64(cs.wins[v]+cs.omegaM[v]-cs.decided[v]) / om
			}
			if lo > maxMin {
				maxMin = lo
			}
			if hi < minMax {
				minMax = hi
			}
		}
		if maxMin-minMax > cs.delta+fairness.Eps {
			return false
		}
	}
	return true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
