// Package cache implements manirankd's cache tiers.
//
// The first tier is the consensus result store (Cache): a map keyed by
// canonical request digests behind a pluggable replacement Policy — classic
// LRU or a Compact-CAR-style clock (see policy.go) — with optional TTL
// expiry, hit/miss/eviction counters, and single-flight request coalescing
// so any number of concurrent identical requests trigger exactly one
// computation.
//
// The second tier is the precedence-matrix store (MatrixCache): profiles are
// shared across methods, so the O(n²·m) matrix a profile compiles into is
// keyed by the profile sub-digest and bounded by memory cost (n² cells per
// entry) rather than entry count, again with single-flight coalescing on
// builds (see matrix.go).
//
// Both in-memory tiers can sit on a persistent Store (store.go, filestore.go):
// a content-addressed byte store under the same digest keys, written through
// on every admission and consulted on memory misses, so a restarted process
// serves its previous working set warm (snapshot-on-shutdown via Flush plus
// lazy warm-on-miss restore). Keys on disk live under a {digest version,
// engine version} namespace, so a solver-behaviour bump invalidates every
// persisted entry by making it unreachable rather than by deleting it.
//
// Consensus rankings are expensive (Fair-Kemeny restarts) but perfectly
// reusable — the solvers are deterministic per request, so a digest hit is
// semantically identical to recomputing. Sizing follows the classic cache
// performance analyses (Che approximation; Martina et al., arXiv:1307.6702):
// with a Zipf-skewed request popularity the hit ratio is governed by the
// cache-size/working-set ratio, which the BENCH_4 load generator measures
// empirically per tier and per policy at several skews — and the same
// analyses predict the hit rate a persistent second-chance tier recovers
// after a cold start, which BENCH_7's restart axis measures.
package cache

import (
	"context"
	"sync"
	"time"

	"manirank/internal/obs"
)

// Stats is a point-in-time snapshot of the result-cache counters.
type Stats struct {
	// Policy names the replacement policy in use (PolicyLRU, PolicyClock).
	Policy string `json:"policy"`
	// Hits counts Do calls served from the in-memory store.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that had to compute (or join a computation, or
	// restore from the persistent store).
	Misses uint64 `json:"misses"`
	// Coalesced counts Do calls that joined another caller's in-flight
	// computation instead of starting their own (a subset of Misses).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped by capacity pressure.
	Evictions uint64 `json:"evictions"`
	// Expirations counts entries dropped because their TTL elapsed — at
	// lookup, during an opportunistic store-time sweep, or by Sweep.
	Expirations uint64 `json:"expirations"`
	// DiskHits counts Do calls served by restoring an entry from the
	// persistent store (a subset of Misses; zero without an attached Store).
	DiskHits uint64 `json:"disk_hits"`
	// DiskPuts counts successful write-throughs to the persistent store.
	DiskPuts uint64 `json:"disk_puts"`
	// DiskErrors counts persistent-store failures the cache absorbed
	// (unreadable, corrupt, or unencodable entries, failed writes).
	DiskErrors uint64 `json:"disk_errors"`
	// PeerHits counts Do calls served by a fleet peer fetch (a subset of
	// Misses; zero without an attached fleet).
	PeerHits uint64 `json:"peer_hits,omitempty"`
	// PeerMisses counts peer fetches answered with an authoritative miss.
	PeerMisses uint64 `json:"peer_misses,omitempty"`
	// PeerErrors counts peer fetches that failed (timeout, dead peer,
	// decode failure) and degraded to local compute.
	PeerErrors uint64 `json:"peer_errors,omitempty"`
	// Entries is the current number of stored results.
	Entries int `json:"entries"`
	// InFlight is the current number of leader computations running.
	InFlight int `json:"in_flight"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic. Disk
// restores count toward Misses here; the warm-serving rate including them is
// (Hits + DiskHits) / (Hits + Misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one stored result. expiresAt is absolute (zero = never): entries
// restored from the persistent tier keep the expiry they were first stored
// with, so a restart cannot extend a result's life.
type entry struct {
	value     any
	expiresAt time.Time
}

// expired reports whether the entry's TTL elapsed at time now.
func (e *entry) expired(now time.Time) bool {
	return !e.expiresAt.IsZero() && !now.Before(e.expiresAt)
}

// flight is one in-progress computation that concurrent identical requests
// coalesce onto.
type flight struct {
	done  chan struct{}
	value any
	err   error
}

// errComputePanic resolves a flight whose compute panicked. The panic itself
// propagates to the leader's caller; followers must see this sentinel — not
// context.Canceled, which would misread as a caller cancellation.
var errComputePanic = errorString("cache: result compute panicked")

// Cache is a thread-safe result store with TTL expiry, a pluggable
// replacement policy, single-flight coalescing, and an optional persistent
// second-chance tier (AttachStore). The zero value is not usable; construct
// with New or NewWithPolicy.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ttl       time.Duration
	policy    Policy
	items     map[string]*entry
	flights   map[string]*flight
	now       func() time.Time
	lastSweep time.Time

	store Store // nil: memory only
	codec Codec
	sizer func(value any) int64 // nil: resident bytes unreported

	counters Counters
}

// Counters exposes the result tier's live counters. The cache owns the
// atomics and increments them; the serving layer adopts the same pointers
// into its obs.Registry, so /statz (via Stats) and /metricsz read one
// source of truth.
type Counters struct {
	// Hits counts Do calls served from the in-memory store.
	Hits *obs.Counter
	// Misses counts Do calls that had to compute, join, or restore.
	Misses *obs.Counter
	// Coalesced counts Do calls that joined an in-flight computation.
	Coalesced *obs.Counter
	// Evictions counts entries dropped by capacity pressure.
	Evictions *obs.Counter
	// Expirations counts entries dropped because their TTL elapsed.
	Expirations *obs.Counter
	// DiskHits counts Do calls served by a persistent-store restore.
	DiskHits *obs.Counter
	// DiskPuts counts successful write-throughs to the persistent store.
	DiskPuts *obs.Counter
	// DiskErrors counts persistent-store failures the cache absorbed.
	DiskErrors *obs.Counter
	// PeerHits counts Do calls served by a fleet peer fetch.
	PeerHits *obs.Counter
	// PeerMisses counts peer fetches answered with an authoritative miss.
	PeerMisses *obs.Counter
	// PeerErrors counts peer fetches that failed and fell back to compute.
	PeerErrors *obs.Counter
}

// newCounters allocates one atomic per counter.
func newCounters() Counters {
	return Counters{
		Hits:        new(obs.Counter),
		Misses:      new(obs.Counter),
		Coalesced:   new(obs.Counter),
		Evictions:   new(obs.Counter),
		Expirations: new(obs.Counter),
		DiskHits:    new(obs.Counter),
		DiskPuts:    new(obs.Counter),
		DiskErrors:  new(obs.Counter),
		PeerHits:    new(obs.Counter),
		PeerMisses:  new(obs.Counter),
		PeerErrors:  new(obs.Counter),
	}
}

// New returns an LRU cache holding up to capacity results for at most ttl
// each. capacity <= 0 disables storage (coalescing still applies to
// concurrent identical requests); ttl <= 0 disables expiry.
func New(capacity int, ttl time.Duration) *Cache {
	c, err := NewWithPolicy(capacity, ttl, PolicyLRU)
	if err != nil {
		panic(err) // unreachable: PolicyLRU always resolves
	}
	return c
}

// NewWithPolicy is New with an explicit replacement policy name (see
// Policies). It fails only on an unknown policy name.
func NewWithPolicy(capacity int, ttl time.Duration, policy string) (*Cache, error) {
	p, err := NewPolicy(policy, capacity)
	if err != nil {
		return nil, err
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		policy:   p,
		items:    make(map[string]*entry),
		flights:  make(map[string]*flight),
		now:      time.Now,
		counters: newCounters(),
	}, nil
}

// Counters returns the tier's live counters for registry adoption.
func (c *Cache) Counters() Counters { return c.counters }

// SetSizer installs a function pricing a stored value in bytes; with one
// installed, Bytes reports the tier's resident footprint. Install before
// serving traffic; the field is not synchronised against concurrent Do
// calls.
func (c *Cache) SetSizer(fn func(value any) int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sizer = fn
}

// Bytes returns the resident footprint of the stored values per the
// installed sizer (0 without one). It walks the store under the lock —
// priced for scrape-time calls, not per-request ones.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sizer == nil {
		return 0
	}
	var total int64
	for _, e := range c.items {
		total += c.sizer(e.value)
	}
	return total
}

// SetClock replaces the cache's time source; tests use it to drive TTL
// expiry deterministically.
func (c *Cache) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// AttachStore puts the persistent tier under the cache: every cacheable
// result is written through (encoded by codec), and a memory miss consults
// the store before computing — the lazy warm-on-miss restore path a
// restarted process serves from. Attach before serving traffic; the field is
// not synchronised against concurrent Do calls.
func (c *Cache) AttachStore(s Store, codec Codec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = s
	c.codec = codec
}

// lookupLocked returns the live cached value for key, expiring it first if
// its TTL elapsed. Callers hold c.mu.
func (c *Cache) lookupLocked(key string) (any, bool) {
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	if e.expired(c.now()) {
		delete(c.items, key)
		c.policy.Forget(key)
		c.counters.Expirations.Inc()
		return nil, false
	}
	c.policy.Hit(key)
	return e.value, true
}

// storeLocked inserts (or refreshes) key with an absolute expiry (zero =
// never), evicting the policy's victim when the insertion overflows
// capacity. New insertions opportunistically sweep expired entries first, so
// TTL-dead entries release their memory and Policy slot without waiting to
// be re-requested or evicted by capacity pressure. Callers hold c.mu.
func (c *Cache) storeLocked(key string, value any, expiresAt time.Time) {
	if c.capacity <= 0 {
		return
	}
	if e, ok := c.items[key]; ok {
		e.value = value
		e.expiresAt = expiresAt
		c.policy.Hit(key)
		return
	}
	if c.ttl > 0 {
		now := c.now()
		if now.Sub(c.lastSweep) >= c.ttl/2 {
			c.sweepLocked(now)
		}
	}
	if victim := c.policy.Add(key); victim != "" {
		delete(c.items, victim)
		c.counters.Evictions.Inc()
	}
	c.items[key] = &entry{value: value, expiresAt: expiresAt}
}

// expiryLocked returns the absolute expiry a value stored now carries.
func (c *Cache) expiryLocked() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// sweepLocked drops every expired entry, counting each under Expirations.
// Callers hold c.mu.
func (c *Cache) sweepLocked(now time.Time) int {
	c.lastSweep = now
	removed := 0
	for key, e := range c.items {
		if e.expired(now) {
			delete(c.items, key)
			c.policy.Forget(key)
			c.counters.Expirations.Inc()
			removed++
		}
	}
	return removed
}

// Sweep removes every expired entry now and returns how many it dropped.
// The serving layer's reaper calls it on a timer so idle expired entries
// release memory without waiting for traffic; storeLocked also sweeps
// opportunistically on inserts.
func (c *Cache) Sweep() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sweepLocked(c.now())
}

// FetchFunc is the fleet hook DoFetch tries after both local tiers miss
// and before computing: typically a bounded peer read from the key's
// rendezvous owner. It returns the decoded value on a peer hit, nil on a
// miss, and asked=false when no fetch was attempted at all (self-owned key,
// no live peer) so nothing is counted.
type FetchFunc func(ctx context.Context) (value any, asked bool, err error)

// Do returns the result for key: from the store on a hit, by joining an
// identical in-flight computation when one exists, by restoring the
// persisted entry when a Store is attached and holds the key, and otherwise
// by running compute in the caller's goroutine. compute returns (value,
// cacheable, err); the value is stored only when err is nil and cacheable is
// true (the serving layer marks deadline-truncated best-so-far results
// uncacheable so a full-quality solve can replace them). Followers give up
// when their ctx is done — the leader's computation is unaffected, so
// nothing leaks. If compute panics, the panic propagates to the leader's
// caller and followers fail with a dedicated sentinel error (never
// context.Canceled, which would misread as a caller cancellation).
//
// The return flags: hit reports the value came from the store (memory or
// disk) rather than a computation; shared reports it came from another
// caller's computation.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, bool, error)) (value any, hit, shared bool, err error) {
	return c.DoFetch(ctx, key, nil, compute)
}

// DoFetch is Do with a fleet hook: after the memory and disk tiers miss,
// the single-flight leader tries fetch (when non-nil) before running
// compute. A peer hit is admitted and written through exactly like a disk
// restore — followers and future callers see a normal hit — while a peer
// miss or error falls through to compute, so a dead peer can slow a request
// but never fail it. Peer outcomes land in the PeerHits / PeerMisses /
// PeerErrors counters.
func (c *Cache) DoFetch(ctx context.Context, key string, fetch FetchFunc, compute func() (any, bool, error)) (value any, hit, shared bool, err error) {
	endLookup := obs.StartSpan(ctx, "result_lookup")
	c.mu.Lock()
	if v, ok := c.lookupLocked(key); ok {
		c.counters.Hits.Inc()
		c.mu.Unlock()
		endLookup()
		return v, true, false, nil
	}
	c.counters.Misses.Inc()
	if f, ok := c.flights[key]; ok {
		c.counters.Coalesced.Inc()
		c.mu.Unlock()
		endLookup()
		defer obs.StartSpan(ctx, "result_wait")()
		select {
		case <-f.done:
			return f.value, false, true, f.err
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	endLookup()

	// Resolve the flight even if compute (or the disk restore) panics, so
	// followers never hang — and never mistake the crash for a cancellation.
	completed := false
	defer func() {
		if !completed {
			c.finish(ctx, key, f, nil, false, errComputePanic)
		}
	}()
	if v, expiry, ok := c.restore(ctx, key); ok {
		completed = true
		c.mu.Lock()
		c.counters.DiskHits.Inc()
		c.storeLocked(key, v, expiry)
		delete(c.flights, key)
		c.mu.Unlock()
		f.value = v
		close(f.done)
		return v, true, false, nil
	}
	if fetch != nil {
		if v, ok := c.peerFetch(ctx, key, fetch); ok {
			completed = true
			// Admit like a disk restore, write through included, so the
			// entry survives a restart and followers see a plain hit.
			c.finish(ctx, key, f, v, true, nil)
			return v, true, false, nil
		}
	}
	v, cacheable, cerr := compute()
	completed = true
	c.finish(ctx, key, f, v, cacheable, cerr)
	return v, false, false, cerr
}

// restore consults the persistent store for key. Any store or decode failure
// is absorbed (counted under DiskErrors, the entry deleted) — a broken disk
// entry must degrade to a recompute, never an outage. The entry's absolute
// expiry is preserved, so a restart cannot extend a result's life.
func (c *Cache) restore(ctx context.Context, key string) (value any, expiry time.Time, ok bool) {
	c.mu.Lock()
	store, codec := c.store, c.codec
	c.mu.Unlock()
	if store == nil {
		return nil, time.Time{}, false
	}
	defer obs.StartSpan(ctx, "result_disk_read")()
	data, expiry, found, err := store.Get(key)
	if err != nil {
		c.counters.DiskErrors.Inc()
		return nil, time.Time{}, false
	}
	if !found {
		return nil, time.Time{}, false
	}
	v, err := codec.Decode(data)
	if err != nil {
		store.Delete(key)
		c.counters.DiskErrors.Inc()
		return nil, time.Time{}, false
	}
	return v, expiry, true
}

// peerFetch runs the fleet hook and classifies its outcome into the peer
// counters. Only a decoded value counts as a hit; every other outcome sends
// the leader to compute.
func (c *Cache) peerFetch(ctx context.Context, key string, fetch FetchFunc) (any, bool) {
	defer obs.StartSpan(ctx, "result_peer_read")()
	v, asked, err := fetch(ctx)
	switch {
	case !asked:
		return nil, false
	case err != nil:
		c.counters.PeerErrors.Inc()
		return nil, false
	case v == nil:
		c.counters.PeerMisses.Inc()
		return nil, false
	default:
		c.counters.PeerHits.Inc()
		return v, true
	}
}

// Peek returns the live value for key from memory or the persistent store
// without touching the hit/miss/disk counters — the read path a node serves
// peer fetches from, which must not distort its own traffic statistics. A
// disk restore is still admitted to memory (the peer asking is evidence the
// key is hot on this node's shard).
func (c *Cache) Peek(ctx context.Context, key string) (any, bool) {
	c.mu.Lock()
	if v, ok := c.lookupLocked(key); ok {
		c.mu.Unlock()
		return v, true
	}
	c.mu.Unlock()
	if v, expiry, ok := c.restore(ctx, key); ok {
		c.mu.Lock()
		c.storeLocked(key, v, expiry)
		c.mu.Unlock()
		return v, true
	}
	return nil, false
}

// Put admits an externally produced value under key with a fresh TTL,
// writing through to the persistent store — the receive path for fleet
// pushes (a non-owner computed this key, or a membership change re-homed
// it here).
func (c *Cache) Put(ctx context.Context, key string, value any) {
	c.mu.Lock()
	expiry := c.expiryLocked()
	c.storeLocked(key, value, expiry)
	var store Store
	var codec Codec
	if c.capacity > 0 {
		store, codec = c.store, c.codec
	}
	c.mu.Unlock()
	if store != nil {
		c.persist(ctx, store, codec, key, value, expiry)
	}
}

// Keys returns the keys of every live in-memory entry — the enumeration
// re-owned-key warming walks after a membership change.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]string, 0, len(c.items))
	for key, e := range c.items {
		if !e.expired(now) {
			out = append(out, key)
		}
	}
	return out
}

// persist writes one entry through to the store (outside c.mu — encoding and
// I/O must not serialise the cache). Failures are absorbed and counted.
func (c *Cache) persist(ctx context.Context, store Store, codec Codec, key string, value any, expiry time.Time) {
	defer obs.StartSpan(ctx, "result_disk_write")()
	data, err := codec.Encode(value)
	if err == nil {
		err = store.Put(key, data, expiry)
	}
	if err != nil {
		c.counters.DiskErrors.Inc()
	} else {
		c.counters.DiskPuts.Inc()
	}
}

// finish publishes a flight's outcome, stores cacheable successes (writing
// through to the persistent store when one is attached), and wakes the
// followers.
func (c *Cache) finish(ctx context.Context, key string, f *flight, value any, cacheable bool, err error) {
	var (
		store  Store
		codec  Codec
		expiry time.Time
	)
	c.mu.Lock()
	if err == nil && cacheable {
		expiry = c.expiryLocked()
		c.storeLocked(key, value, expiry)
		if c.capacity > 0 {
			store, codec = c.store, c.codec
		}
	}
	delete(c.flights, key)
	c.mu.Unlock()
	if store != nil {
		c.persist(ctx, store, codec, key, value, expiry)
	}
	f.value, f.err = value, err
	close(f.done)
}

// Flush re-persists every live in-memory entry to the attached store and
// returns how many it wrote — the snapshot-on-shutdown half of warm
// restarts. Write-through already persisted each entry once, so Flush only
// repairs entries whose earlier write failed; it is cheap and idempotent.
// With no store attached it is a no-op.
func (c *Cache) Flush() int {
	c.mu.Lock()
	store, codec := c.store, c.codec
	if store == nil {
		c.mu.Unlock()
		return 0
	}
	type snap struct {
		key    string
		value  any
		expiry time.Time
	}
	now := c.now()
	snaps := make([]snap, 0, len(c.items))
	for key, e := range c.items {
		if !e.expired(now) {
			snaps = append(snaps, snap{key, e.value, e.expiresAt})
		}
	}
	c.mu.Unlock()
	for _, s := range snaps {
		c.persist(context.Background(), store, codec, s.key, s.value, s.expiry)
	}
	return len(snaps)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Policy:      c.policy.Name(),
		Hits:        c.counters.Hits.Value(),
		Misses:      c.counters.Misses.Value(),
		Coalesced:   c.counters.Coalesced.Value(),
		Evictions:   c.counters.Evictions.Value(),
		Expirations: c.counters.Expirations.Value(),
		DiskHits:    c.counters.DiskHits.Value(),
		DiskPuts:    c.counters.DiskPuts.Value(),
		DiskErrors:  c.counters.DiskErrors.Value(),
		PeerHits:    c.counters.PeerHits.Value(),
		PeerMisses:  c.counters.PeerMisses.Value(),
		PeerErrors:  c.counters.PeerErrors.Value(),
		Entries:     len(c.items),
		InFlight:    len(c.flights),
	}
}
