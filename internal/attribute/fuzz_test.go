package attribute

import (
	"bytes"
	"testing"
)

// FuzzAttributeCSV asserts the candidate-table CSV parser never panics on
// arbitrary input, and that accepted tables reach a canonical form in one
// write/read cycle: writing a parsed table and re-reading it must be a fixed
// point (the first parse may normalise quoting and line endings, the second
// must not change anything).
func FuzzAttributeCSV(f *testing.F) {
	f.Add([]byte("candidate,Gender\n0,M\n1,W\n"))
	f.Add([]byte("id,Gender,Race\n1,W,B\n0,M,A\n2,M,B\n"))
	f.Add([]byte("candidate,Attr\n0,\" x,y\"\n1,z\n"))
	f.Add([]byte("candidate\n0\n"))
	f.Add([]byte("candidate,G\n0,M\n0,M\n"))
	f.Add([]byte("\xff\xfe,,,\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := ReadTableCSV(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only panics are failures here
		}
		var first bytes.Buffer
		if err := WriteTableCSV(&first, tab); err != nil {
			t.Fatalf("accepted table failed to serialise: %v", err)
		}
		tab2, err := ReadTableCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("serialised table rejected on re-read: %v\nCSV:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := WriteTableCSV(&second, tab2); err != nil {
			t.Fatalf("round-tripped table failed to serialise: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write/read is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
		}
		if tab2.N() != tab.N() || len(tab2.Attrs()) != len(tab.Attrs()) {
			t.Fatalf("round-trip changed shape: %dx%d -> %dx%d",
				tab.N(), len(tab.Attrs()), tab2.N(), len(tab2.Attrs()))
		}
		for i, a := range tab.Attrs() {
			b := tab2.Attrs()[i]
			if a.Name != b.Name || a.DomainSize() != b.DomainSize() {
				t.Fatalf("round-trip changed attribute %d: %q(%d) -> %q(%d)",
					i, a.Name, a.DomainSize(), b.Name, b.DomainSize())
			}
			for c := 0; c < tab.N(); c++ {
				if a.Of[c] != b.Of[c] {
					t.Fatalf("round-trip changed group of candidate %d under %q", c, a.Name)
				}
			}
		}
	})
}
