// Package loadgen drives a manirankd instance with a synthetic serving
// workload: a pool of distinct Mallows profiles whose popularity follows a
// configurable Zipf skew, each optionally queried under several consensus
// methods (the profile-reuse axis that exercises the precedence-matrix
// tier), replayed by concurrent closed-loop clients. It measures end-to-end
// throughput, latency percentiles, and the per-tier cache hit rates — the
// empirical counterpart to the Che-approximation view of cache sizing
// (Martina et al., arXiv:1307.6702): hit rate is a function of cache
// capacity versus the skew-weighted working set, so sweeping the Zipf
// exponent and the replacement policy maps the serving layer's useful
// operating range.
package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/service"
)

// Config shapes one load run.
type Config struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// URLs optionally spreads the workload across a fleet of replicas:
	// request i from client c goes to URLs[(c+i) % len(URLs)], so every node
	// sees a share of every popularity band — the shape a round-robin load
	// balancer in front of a manirankd fleet produces. When set it overrides
	// URL; the end-of-run counter scrape visits every node and the Result
	// gains fleet-wide totals plus per-node columns.
	URLs []string
	// Clients is the number of concurrent closed-loop requesters (default 8).
	Clients int
	// Requests is the total request count across all clients (default 400).
	Requests int
	// Profiles is the number of distinct profiles in the pool (default 50) —
	// the working-set size the caches contend with.
	Profiles int
	// ZipfS is the popularity skew exponent: profile k (0-based) is drawn
	// with probability proportional to 1/(k+1)^s. 0 draws uniformly; any
	// s > 0 is accepted (default 0).
	ZipfS float64
	// Candidates and Rankers size each synthetic profile (defaults 60, 40).
	Candidates, Rankers int
	// Theta is the Mallows spread of every profile (default 0.4).
	Theta float64
	// Methods is the consensus-method mix: each request pairs its popular
	// profile with a uniformly drawn method, so len(Methods) is the
	// profile-reuse factor the precedence tier amortises (default
	// [fair-kemeny]).
	Methods []string
	// Delta is the fairness threshold for fair methods (default 0.2).
	Delta float64
	// DeadlineMillis is attached to every request (default 0: server
	// default).
	DeadlineMillis int64
	// Seed drives profile generation and the popularity draws.
	Seed int64
	// Mode selects the churn replay shape (RunChurn only): "session"
	// streams mutations to a pinned /v1/session profile, "stateless" (the
	// default, and the control arm) re-POSTs the full mutated profile to
	// /v1/aggregate — paying the complete matrix rebuild and a cold solve
	// on every edit.
	Mode string
	// ChurnFraction is the probability each churn request mutates the
	// profile (one ranking replaced) before re-solving; the remainder are
	// pure re-solves of the current state. RunChurn only.
	ChurnFraction float64
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Requests == 0 {
		c.Requests = 400
	}
	if c.Profiles == 0 {
		c.Profiles = 50
	}
	if c.Candidates == 0 {
		c.Candidates = 60
	}
	if c.Rankers == 0 {
		c.Rankers = 40
	}
	if c.Theta == 0 {
		c.Theta = 0.4
	}
	if len(c.Methods) == 0 {
		c.Methods = []string{"fair-kemeny"}
	}
	if c.Delta == 0 {
		c.Delta = 0.2
	}
	if c.Mode == "" {
		c.Mode = "stateless"
	}
	if len(c.URLs) == 0 {
		c.URLs = []string{c.URL}
	} else {
		c.URL = c.URLs[0]
	}
	return c
}

// Result summarises one load run.
type Result struct {
	ZipfS        float64  `json:"zipf_s"`
	Policy       string   `json:"cache_policy"`
	Methods      []string `json:"methods"`
	Requests     int      `json:"requests"`
	Errors       int      `json:"errors"`
	Rejected     int      `json:"rejected_429"`
	DurationS    float64  `json:"duration_s"`
	Throughput   float64  `json:"throughput_rps"`
	HitRate      float64  `json:"cache_hit_rate"`
	Coalesced    int      `json:"coalesced"`
	P50LatencyMS float64  `json:"p50_latency_ms"`
	P99LatencyMS float64  `json:"p99_latency_ms"`
	// The precedence-tier columns come from the server's /statz snapshot
	// taken at the end of the run (each bench run talks to a fresh server,
	// so the counters cover exactly this workload).
	MatrixBuilds        uint64  `json:"matrix_builds"`
	MatrixBuildsSkipped uint64  `json:"matrix_builds_skipped"`
	MatrixHitRate       float64 `json:"matrix_hit_rate"`
	// The disk columns are non-zero only against a server started with
	// -cache-dir; BENCH_7's restart axis reads warm-restart recovery off
	// them (a disk hit is a memory miss the persistent tier absorbed).
	ResultDiskHits uint64 `json:"result_disk_hits"`
	MatrixDiskHits uint64 `json:"matrix_disk_hits"`
	// StageMeanMS attributes mean request time to the server-side stages
	// (queue, cache lookups, matrix build, solve, encode …), scraped from
	// /metricsz's manirank_stage_seconds histograms — BENCH_8's latency
	// breakdown: where a request's milliseconds actually go at each skew.
	StageMeanMS map[string]float64 `json:"stage_mean_ms,omitempty"`
	// The model columns pair each tier's measured hit rate with the
	// server's online Che-approximation prediction for the configured
	// capacity; drift (measured − predicted) near zero means the capacity
	// model can be trusted for sizing.
	PredictedHitRate       float64 `json:"predicted_hit_rate"`
	HitRateDrift           float64 `json:"hit_rate_drift"`
	MatrixPredictedHitRate float64 `json:"matrix_predicted_hit_rate"`
	MatrixHitRateDrift     float64 `json:"matrix_hit_rate_drift"`
	// The churn columns (RunChurn only, BENCH_9): the replay mode, the
	// configured mutation fraction, how many requests actually mutated, and
	// how many session solves were warm-started from a previous consensus
	// (always 0 in stateless mode — /v1/aggregate solves cold).
	Mode          string  `json:"mode,omitempty"`
	ChurnFraction float64 `json:"churn_fraction,omitempty"`
	Mutations     int     `json:"mutations,omitempty"`
	WarmStarted   int     `json:"warm_started,omitempty"`
	// The fleet columns (multi-URL runs, BENCH_10): peer-cache traffic summed
	// across the replicas, and one row per node pairing its locally measured
	// hit rate with its own Che prediction. In a fleet run the top-level
	// Predicted/Drift columns are the across-node mean, against the
	// client-observed fleet-wide HitRate; MatrixBuilds is the fleet total —
	// with per-ring single-compute it should approximate the number of
	// distinct profiles, not distinct profiles × nodes.
	ResultPeerHits uint64       `json:"result_peer_hits,omitempty"`
	MatrixPeerHits uint64       `json:"matrix_peer_hits,omitempty"`
	PeerErrors     uint64       `json:"peer_errors,omitempty"`
	Nodes          []NodeResult `json:"nodes,omitempty"`
}

// NodeResult is one replica's view of a fleet run: its share of the traffic,
// what its local tiers absorbed, and how its online Che approximation
// tracked the hit rate it actually measured.
type NodeResult struct {
	URL              string  `json:"url"`
	HitRate          float64 `json:"hit_rate"`
	PredictedHitRate float64 `json:"predicted_hit_rate"`
	HitRateDrift     float64 `json:"hit_rate_drift"`
	MatrixBuilds     uint64  `json:"matrix_builds"`
	ResultPeerHits   uint64  `json:"result_peer_hits"`
	ResultPeerMisses uint64  `json:"result_peer_misses"`
	MatrixPeerHits   uint64  `json:"matrix_peer_hits"`
	PeerErrors       uint64  `json:"peer_errors"`
}

// buildPool generates the distinct request bodies, pre-marshalled once —
// the generator must not bottleneck the server being measured. pool[i][j]
// is profile i under method j: same profile bytes, different method field,
// so the bodies collide on the profile sub-digest but not the full digest.
func buildPool(cfg Config) ([][][]byte, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	gender, region := attrVectors(cfg.Candidates)
	pool := make([][][]byte, cfg.Profiles)
	for i := range pool {
		modal := ranking.Random(cfg.Candidates, rng)
		p := mallows.MustNewPlackettLuce(modal, cfg.Theta).SampleProfile(cfg.Rankers, rng)
		profile := make([][]int, len(p))
		for j, r := range p {
			profile[j] = r
		}
		pool[i] = make([][]byte, len(cfg.Methods))
		for j, method := range cfg.Methods {
			req := &service.AggregateRequest{
				Method:  method,
				Profile: profile,
				Attributes: []service.AttributeSpec{
					{Name: "Gender", Values: []string{"M", "W"}, Of: gender},
					{Name: "Region", Values: []string{"N", "C", "S"}, Of: region},
				},
				Delta:          cfg.Delta,
				DeadlineMillis: cfg.DeadlineMillis,
			}
			blob, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			pool[i][j] = blob
		}
	}
	return pool, nil
}

// attrVectors returns the synthetic Gender/Region attribute assignments
// every generated profile carries (candidate c: Gender c%2, Region (c/2)%3).
func attrVectors(n int) (gender, region []int) {
	gender = make([]int, n)
	region = make([]int, n)
	for c := 0; c < n; c++ {
		gender[c] = c % 2
		region[c] = (c / 2) % 3
	}
	return gender, region
}

// picker returns a popularity sampler over [0, n): index k is drawn with
// probability proportional to 1/(k+1)^s via inverse-CDF over the finite
// population, so any skew s >= 0 works — including the 0 < s <= 1 band
// math/rand's infinite-support Zipf cannot express — and s == 0 degrades to
// uniform.
func picker(s float64, n int, rng *rand.Rand) (func() int, error) {
	if s < 0 {
		return nil, fmt.Errorf("loadgen: ZipfS must be >= 0, got %g", s)
	}
	if s == 0 {
		return func() int { return rng.Intn(n) }, nil
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	return func() int {
		u := rng.Float64() * total
		return sort.SearchFloat64s(cum, u)
	}, nil
}

// fetchStatz snapshots the server's /statz for the per-tier counters.
func fetchStatz(url string) (service.Statz, error) {
	var st service.Statz
	resp, err := http.Get(url + "/statz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("loadgen: statz status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// fetchMetrics scrapes /metricsz and returns every sample keyed by its full
// series string (metric name plus label block, exactly as exposed).
func fetchMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url + "/metricsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: metricsz status %d", resp.StatusCode)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			return nil, fmt.Errorf("loadgen: malformed metricsz line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: parsing metricsz line %q: %w", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, sc.Err()
}

// stageMeans reduces the manirank_stage_seconds histograms to a mean
// milliseconds-per-observation map, one entry per stage that recorded at
// least one span during the run.
func stageMeans(samples map[string]float64) map[string]float64 {
	const prefix = `manirank_stage_seconds_sum{stage="`
	means := map[string]float64{}
	for series, sum := range samples {
		if !strings.HasPrefix(series, prefix) {
			continue
		}
		stage := strings.TrimSuffix(strings.TrimPrefix(series, prefix), `"}`)
		count := samples[`manirank_stage_seconds_count{stage="`+stage+`"}`]
		if count > 0 {
			means[stage] = sum / count * 1000
		}
	}
	return means
}

// Run replays the workload and reports the measured serving behaviour.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	pool, err := buildPool(cfg)
	if err != nil {
		return Result{}, err
	}
	var (
		mu        sync.Mutex
		latencies []float64
		hits      int
		coalesced int
		errs      int
		rejected  int
	)
	client := &http.Client{Timeout: 2 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	total := 0
	for c := 0; c < cfg.Clients; c++ {
		// Spread Requests across clients without dropping the remainder.
		perClient := cfg.Requests / cfg.Clients
		if c < cfg.Requests%cfg.Clients {
			perClient++
		}
		total += perClient
		wg.Add(1)
		go func(c, perClient int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+c)))
			pick, perr := picker(cfg.ZipfS, len(pool), rng)
			if perr != nil {
				mu.Lock()
				errs += perClient
				mu.Unlock()
				return
			}
			for i := 0; i < perClient; i++ {
				m := 0
				if len(cfg.Methods) > 1 {
					m = rng.Intn(len(cfg.Methods))
				}
				// Single-method runs draw exactly the BENCH_3 request stream
				// (profile picks only), keeping per-PR hit rates comparable.
				body := pool[pick()][m]
				url := cfg.URLs[(c+i)%len(cfg.URLs)]
				reqStart := time.Now()
				resp, err := client.Post(url+"/v1/aggregate", "application/json", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				var out service.AggregateResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(reqStart)) / float64(time.Millisecond)
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
				case resp.StatusCode != http.StatusOK || decodeErr != nil:
					errs++
				default:
					latencies = append(latencies, ms)
					if out.Cached {
						hits++
					}
					if out.Coalesced {
						coalesced++
					}
				}
				mu.Unlock()
			}
		}(c, perClient)
	}
	wg.Wait()
	return collectResult(cfg, total, errs, rejected, hits, coalesced, latencies, time.Since(start))
}

// collectResult assembles the measurement columns every workload shape
// shares, then scrapes the server's /statz and /metricsz for the per-tier
// counters covering exactly this run.
func collectResult(cfg Config, total, errs, rejected, hits, coalesced int, latencies []float64, elapsed time.Duration) (Result, error) {
	res := Result{
		ZipfS:     cfg.ZipfS,
		Methods:   cfg.Methods,
		Requests:  total,
		Errors:    errs,
		Rejected:  rejected,
		DurationS: elapsed.Seconds(),
		Coalesced: coalesced,
	}
	if res.DurationS > 0 {
		res.Throughput = float64(len(latencies)+rejected) / res.DurationS
	}
	if n := len(latencies); n > 0 {
		res.HitRate = float64(hits) / float64(n)
		sort.Float64s(latencies)
		res.P50LatencyMS = latencies[(n-1)*50/100]
		res.P99LatencyMS = latencies[(n-1)*99/100]
	}
	var (
		matrixHits, matrixMisses uint64
		predSum, matrixPredSum   float64
		merged                   = map[string]float64{}
	)
	for _, url := range cfg.URLs {
		st, err := fetchStatz(url)
		if err != nil {
			// The workload completed; losing the per-tier columns silently
			// would record zeroed bench data, so fail loudly alongside the
			// partial result.
			return res, fmt.Errorf("loadgen: fetching statz after the run: %w", err)
		}
		samples, err := fetchMetrics(url)
		if err != nil {
			return res, fmt.Errorf("loadgen: scraping metricsz after the run: %w", err)
		}
		if res.Policy == "" {
			res.Policy = st.Cache.Policy
		}
		res.MatrixBuilds += st.Matrix.Builds
		res.MatrixBuildsSkipped += st.Matrix.BuildsSkipped
		res.ResultDiskHits += st.Cache.DiskHits
		res.MatrixDiskHits += st.Matrix.DiskHits
		res.ResultPeerHits += st.Cache.PeerHits
		res.MatrixPeerHits += st.Matrix.PeerHits
		res.PeerErrors += st.Cache.PeerErrors + st.Matrix.PeerErrors
		matrixHits += st.Matrix.Hits
		matrixMisses += st.Matrix.Misses
		// Stage histograms merge exactly: sums add and counts add, so the
		// reduced means stay observation-weighted across the fleet.
		for series, v := range samples {
			merged[series] += v
		}
		pred := samples[`manirank_cache_hit_rate_predicted{tier="result"}`]
		predSum += pred
		matrixPredSum += samples[`manirank_cache_hit_rate_predicted{tier="matrix"}`]
		if len(cfg.URLs) > 1 {
			res.Nodes = append(res.Nodes, NodeResult{
				URL:              url,
				HitRate:          st.Cache.HitRate(),
				PredictedHitRate: pred,
				HitRateDrift:     st.Cache.HitRate() - pred,
				MatrixBuilds:     st.Matrix.Builds,
				ResultPeerHits:   st.Cache.PeerHits,
				ResultPeerMisses: st.Cache.PeerMisses,
				MatrixPeerHits:   st.Matrix.PeerHits,
				PeerErrors:       st.Cache.PeerErrors + st.Matrix.PeerErrors,
			})
		}
	}
	if total := matrixHits + matrixMisses; total > 0 {
		res.MatrixHitRate = float64(matrixHits) / float64(total)
	}
	res.StageMeanMS = stageMeans(merged)
	res.PredictedHitRate = predSum / float64(len(cfg.URLs))
	res.HitRateDrift = res.HitRate - res.PredictedHitRate
	res.MatrixPredictedHitRate = matrixPredSum / float64(len(cfg.URLs))
	res.MatrixHitRateDrift = res.MatrixHitRate - res.MatrixPredictedHitRate
	return res, nil
}

// RunChurn replays a mutate-heavy workload: each client owns one evolving
// Mallows profile and, per request, mutates it (one ranking replaced by a
// fresh random permutation) with probability ChurnFraction before asking
// for a new consensus; the remainder are pure re-solves of the current
// state. In "session" mode the profile is pinned server-side once and every
// request is a /v1/session op — mutations patch the precedence matrix in
// O(n²) and re-solves warm-start from the previous consensus. In
// "stateless" mode (the control arm) the client re-POSTs the full mutated
// profile to /v1/aggregate, paying the complete O(n²·m) rebuild and a cold
// solve on every edit. Per-client op streams are seeded identically in both
// modes, so a BENCH_9 cell pair compares the same edit sequence.
func RunChurn(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode != "session" && cfg.Mode != "stateless" {
		return Result{}, fmt.Errorf("loadgen: unknown churn mode %q", cfg.Mode)
	}
	method := cfg.Methods[0]
	gender, region := attrVectors(cfg.Candidates)
	attrs := []service.AttributeSpec{
		{Name: "Gender", Values: []string{"M", "W"}, Of: gender},
		{Name: "Region", Values: []string{"N", "C", "S"}, Of: region},
	}
	var (
		mu                  sync.Mutex
		latencies           []float64
		hits, coalesced     int
		errs, rejected      int
		mutations, warmedUp int
	)
	client := &http.Client{Timeout: 2 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	total := 0
	for c := 0; c < cfg.Clients; c++ {
		perClient := cfg.Requests / cfg.Clients
		if c < cfg.Requests%cfg.Clients {
			perClient++
		}
		total += perClient
		wg.Add(1)
		go func(c, perClient int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000+c)))
			modal := ranking.Random(cfg.Candidates, rng)
			p := mallows.MustNewPlackettLuce(modal, cfg.Theta).SampleProfile(cfg.Rankers, rng)
			profile := make([][]int, len(p))
			for j, r := range p {
				profile[j] = r
			}
			req := &service.AggregateRequest{
				Method:         method,
				Profile:        profile,
				Attributes:     attrs,
				Delta:          cfg.Delta,
				DeadlineMillis: cfg.DeadlineMillis,
			}
			fail := func(n int) {
				mu.Lock()
				errs += n
				mu.Unlock()
			}
			var sessionID string
			if cfg.Mode == "session" {
				blob, err := json.Marshal(req)
				if err != nil {
					fail(perClient)
					return
				}
				resp, err := client.Post(cfg.URL+"/v1/session", "application/json", bytes.NewReader(blob))
				if err != nil {
					fail(perClient)
					return
				}
				var sr service.SessionResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&sr)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decodeErr != nil || sr.SessionID == "" {
					fail(perClient)
					return
				}
				sessionID = sr.SessionID
				defer func() {
					dreq, err := http.NewRequest(http.MethodDelete, cfg.URL+"/v1/session/"+sessionID, nil)
					if err != nil {
						return
					}
					if resp, err := client.Do(dreq); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}()
			}
			for i := 0; i < perClient; i++ {
				mutate := rng.Float64() < cfg.ChurnFraction
				var idx int
				var row ranking.Ranking
				if mutate {
					idx = rng.Intn(cfg.Rankers)
					row = ranking.Random(cfg.Candidates, rng)
				}
				var body []byte
				var err error
				target := cfg.URL + "/v1/aggregate"
				if cfg.Mode == "session" {
					op := service.SessionOp{Op: "solve", DeadlineMillis: cfg.DeadlineMillis}
					if mutate {
						op = service.SessionOp{Op: "update", Index: idx, Ranking: row, DeadlineMillis: cfg.DeadlineMillis}
					}
					body, err = json.Marshal(op)
					target = cfg.URL + "/v1/session/" + sessionID
				} else {
					if mutate {
						profile[idx] = row
					}
					body, err = json.Marshal(req)
				}
				if err != nil {
					fail(1)
					continue
				}
				reqStart := time.Now()
				resp, err := client.Post(target, "application/json", bytes.NewReader(body))
				if err != nil {
					fail(1)
					continue
				}
				// SessionResponse is a strict superset of AggregateResponse,
				// so one decode covers both modes (the session-only columns
				// stay zero against /v1/aggregate).
				var out service.SessionResponse
				decodeErr := json.NewDecoder(resp.Body).Decode(&out)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(reqStart)) / float64(time.Millisecond)
				mu.Lock()
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
				case resp.StatusCode != http.StatusOK || decodeErr != nil:
					errs++
				default:
					latencies = append(latencies, ms)
					if mutate {
						mutations++
					}
					if out.Cached {
						hits++
					}
					if out.Coalesced {
						coalesced++
					}
					if out.WarmStarted {
						warmedUp++
					}
				}
				mu.Unlock()
			}
		}(c, perClient)
	}
	wg.Wait()
	res, err := collectResult(cfg, total, errs, rejected, hits, coalesced, latencies, time.Since(start))
	res.Mode = cfg.Mode
	res.ChurnFraction = cfg.ChurnFraction
	res.Mutations = mutations
	res.WarmStarted = warmedUp
	return res, err
}
