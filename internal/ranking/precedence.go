package ranking

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// DefaultWorkers is the worker-pool width used when precedence construction
// auto-sizes itself (NewPrecedence / worker count 0). Zero means
// runtime.GOMAXPROCS(0). CLIs set it once at startup from a -workers flag; it
// is not synchronised for concurrent mutation.
var DefaultWorkers int

// Precedence is the precedence matrix W of a profile of base rankings
// (paper Def. 11): W[a][b] counts the base rankings in which b is ranked
// ABOVE a. Consequently, placing a above b in a consensus ranking incurs
// W[a][b] pairwise disagreements with the profile.
//
// The matrix is stored densely in row-major order as a flat int32 buffer —
// half the cache footprint of the int layout, which matters because every
// solver (Kemeny local search, branch and bound, Schulze, Copeland) streams
// over its rows. For every pair a != b, W[a][b] + W[b][a] == |R|.
type Precedence struct {
	n int
	m int // number of base rankings summarised
	w []int32
}

// NewPrecedence computes the precedence matrix of profile p, sharding the
// accumulation over a worker pool sized by DefaultWorkers when the profile is
// large enough to amortise the fork/merge cost. Each base ranking contributes
// one upper-triangle pass over its n(n-1)/2 pairs.
func NewPrecedence(p Profile) (*Precedence, error) {
	return NewPrecedenceWorkers(p, 0)
}

// NewPrecedenceWorkers is NewPrecedence with an explicit worker count.
// workers <= 0 auto-sizes the pool; workers == 1 forces the serial kernel.
// The result is bitwise identical for every worker count.
func NewPrecedenceWorkers(p Profile, workers int) (*Precedence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newPrecedenceUnchecked(p, workers), nil
}

// MustPrecedence is NewPrecedence for profiles already known to be valid;
// it panics on invalid input.
func MustPrecedence(p Profile) *Precedence {
	w, err := NewPrecedence(p)
	if err != nil {
		panic(err)
	}
	return w
}

func newPrecedenceUnchecked(p Profile, workers int) *Precedence {
	n := p.N()
	pr := &Precedence{n: n, m: len(p), w: make([]int32, n*n)}
	buildShards(pr.w, p, nil, n, sizeWorkers(workers, n, len(p)))
	return pr
}

// NewWeightedPrecedence computes a precedence matrix where ranking i
// contributes weights[i] (instead of 1) to each pairwise count. It backs the
// Kemeny-Weighted baseline. len(weights) must equal len(p).
func NewWeightedPrecedence(p Profile, weights []int) (*Precedence, error) {
	return NewWeightedPrecedenceWorkers(p, weights, 0)
}

// NewWeightedPrecedenceWorkers is NewWeightedPrecedence with an explicit
// worker count (see NewPrecedenceWorkers).
func NewWeightedPrecedenceWorkers(p Profile, weights []int, workers int) (*Precedence, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != len(p) {
		return nil, fmt.Errorf("ranking: %d weights for %d rankings", len(weights), len(p))
	}
	total := int64(0)
	for _, wt := range weights {
		if wt < 0 {
			return nil, fmt.Errorf("ranking: negative weight %d", wt)
		}
		if wt > math.MaxInt32 {
			return nil, fmt.Errorf("ranking: weight %d overflows the int32 cell size", wt)
		}
		total += int64(wt)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("ranking: total weight %d overflows the int32 cell size", total)
	}
	n := p.N()
	pr := &Precedence{n: n, m: int(total), w: make([]int32, n*n)}
	buildShards(pr.w, p, weights, n, sizeWorkers(workers, n, len(p)))
	return pr, nil
}

// sizeWorkers resolves the construction worker count. An explicit request
// (> 0) is honoured as-is, clamped only to the ranking count — callers and
// tests asking for k workers get the k-way sharded path. Auto mode
// (requested <= 0) resolves DefaultWorkers / GOMAXPROCS and additionally
// keeps small profiles on the serial kernel: below ~2M pair ops per shard, a
// partial matrix per worker plus the final merge costs more than it saves.
func sizeWorkers(requested, n, m int) int {
	w := requested
	if w <= 0 {
		w = DefaultWorkers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		const minPairOpsPerShard = 1 << 21
		pairOps := int64(n) * int64(n-1) / 2 * int64(m)
		if lim := int(pairOps / minPairOpsPerShard); w > lim {
			w = lim
		}
	}
	if w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

// buildShards accumulates profile p (optionally weighted) into dst using the
// given number of workers. Worker 0 writes straight into dst; the others fill
// per-worker partial matrices that are summed into dst at the end. Integer
// addition commutes, so the result is identical for every worker count and
// schedule.
func buildShards(dst []int32, p Profile, weights []int, n, workers int) {
	if workers <= 1 {
		accumulateShard(dst, p, weights, n)
		return
	}
	partials := make([][]int32, workers)
	partials[0] = dst
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo, hi := shardBounds(len(p), workers, k)
		if k > 0 {
			partials[k] = make([]int32, n*n)
		}
		wg.Add(1)
		go func(buf []int32, lo, hi int) {
			defer wg.Done()
			var wts []int
			if weights != nil {
				wts = weights[lo:hi]
			}
			accumulateShard(buf, p[lo:hi], wts, n)
		}(partials[k], lo, hi)
	}
	wg.Wait()
	for k := 1; k < workers; k++ {
		part := partials[k]
		for i, v := range part {
			dst[i] += v
		}
	}
}

// shardBounds splits m items into `workers` near-equal contiguous chunks and
// returns chunk k's half-open range.
func shardBounds(m, workers, k int) (lo, hi int) {
	return m * k / workers, m * (k + 1) / workers
}

// accumulateShard adds each ranking's pairwise precedences into w. The kernel
// is the branch-free upper-triangle form: position i outranks position j for
// every i < j, and W[a][b] counts rankings placing b above a, so pair (i, j)
// increments exactly W[r[j]][r[i]] — half the iterations of the full n^2
// position-compare loop and no per-pair branch. For fixed j all writes land
// in row r[j], one cache-resident stripe of 4n bytes.
func accumulateShard(w []int32, p Profile, weights []int, n int) {
	for idx, r := range p {
		wt := int32(1)
		if weights != nil {
			wt = int32(weights[idx])
			if wt == 0 {
				continue
			}
		}
		for j := 1; j < n; j++ {
			row := w[r[j]*n : r[j]*n+n]
			for _, b := range r[:j] {
				row[b] += wt
			}
		}
	}
}

// Clone returns a deep copy of w. Mutating either copy (AddRanking /
// RemoveRanking) never affects the other — the copy-on-write primitive
// behind sharing one matrix between a cache tier and a mutable engine.
func (w *Precedence) Clone() *Precedence {
	out := &Precedence{n: w.n, m: w.m, w: make([]int32, len(w.w))}
	copy(out.w, w.w)
	return out
}

// AddRanking folds one more base ranking into w in O(n²) — the incremental
// alternative to rebuilding the whole matrix in O(n²·m). The result is
// bitwise identical to NewPrecedence over the extended profile (integer
// addition commutes, exactly the invariant the construction shards rely on).
func (w *Precedence) AddRanking(r Ranking) error {
	if len(r) != w.n {
		return fmt.Errorf("ranking: AddRanking got %d candidates, matrix has %d", len(r), w.n)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if w.m >= math.MaxInt32 {
		return fmt.Errorf("ranking: %d rankings overflow the int32 cell size", w.m+1)
	}
	patchRanking(w.w, r, w.n, 1)
	w.m++
	return nil
}

// RemoveRanking subtracts one base ranking's contribution from w in O(n²).
// The caller must pass a ranking the matrix actually aggregates (w does not
// hold the profile, so it cannot verify membership itself — removing a
// ranking never added leaves negative cells). Removing the exact rankings
// previously added, in any order, restores the matrix bitwise.
func (w *Precedence) RemoveRanking(r Ranking) error {
	if len(r) != w.n {
		return fmt.Errorf("ranking: RemoveRanking got %d candidates, matrix has %d", len(r), w.n)
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if w.m == 0 {
		return fmt.Errorf("ranking: RemoveRanking on an empty matrix")
	}
	patchRanking(w.w, r, w.n, -1)
	w.m--
	return nil
}

// patchRanking applies one ranking's upper-triangle contribution to w with
// weight wt (±1) — the same kernel shape as accumulateShard, specialised to
// a single ranking.
func patchRanking(w []int32, r Ranking, n int, wt int32) {
	for j := 1; j < n; j++ {
		row := w[r[j]*n : r[j]*n+n]
		for _, b := range r[:j] {
			row[b] += wt
		}
	}
}

// N returns the number of candidates.
func (w *Precedence) N() int { return w.n }

// Cells returns the matrix's storage footprint in int32 cells (n²) — the
// admission cost a memory-bounded matrix cache charges for holding w.
func (w *Precedence) Cells() int64 { return int64(w.n) * int64(w.n) }

// Rankings returns the (weighted) number of base rankings summarised.
func (w *Precedence) Rankings() int { return w.m }

// At returns W[a][b]: how many base rankings place b above a, i.e. the
// disagreement cost of ordering a above b in the consensus.
func (w *Precedence) At(a, b int) int { return int(w.w[a*w.n+b]) }

// CostAbove is a readability alias for At: the number of profile
// disagreements incurred by ranking a above b.
func (w *Precedence) CostAbove(a, b int) int { return int(w.w[a*w.n+b]) }

// KemenyCost returns the total pairwise disagreement between ranking r and
// the profile summarised by w: sum over ordered pairs (a above b) of W[a][b].
// This equals sum_i KendallTau(r, R_i).
func (w *Precedence) KemenyCost(r Ranking) int {
	if len(r) != w.n {
		panic("ranking: KemenyCost ranking length mismatch")
	}
	cost := 0
	for i := 0; i < len(r); i++ {
		row := w.w[r[i]*w.n : r[i]*w.n+w.n]
		for _, b := range r[i+1:] {
			cost += int(row[b])
		}
	}
	return cost
}

// AdjacentSwapDelta returns, in O(1), the Kemeny-cost change of swapping the
// candidates at rank positions i and i+1 of r: the special case of MoveDelta
// for adjacent-transposition neighbourhoods, exposed so cost-tracking loops
// over swaps never pay an O(n^2) KemenyCost recomputation.
func (w *Precedence) AdjacentSwapDelta(r Ranking, i int) int {
	x, y := r[i], r[i+1]
	return int(w.w[y*w.n+x]) - int(w.w[x*w.n+y])
}

// MoveDelta returns, in O(|from-to|), the Kemeny-cost change of
// r.MoveTo(from, to): the moved candidate flips its pairwise order against
// exactly the candidates it crosses.
func (w *Precedence) MoveDelta(r Ranking, from, to int) int {
	c := r[from]
	crow := w.w[c*w.n : c*w.n+w.n]
	delta := 0
	if from < to {
		// c moves down past r[from+1..to]: (c above y) becomes (y above c).
		for _, y := range r[from+1 : to+1] {
			delta += int(w.w[y*w.n+c]) - int(crow[y])
		}
	} else {
		// c moves up past r[to..from-1]: (y above c) becomes (c above y).
		for _, y := range r[to:from] {
			delta += int(crow[y]) - int(w.w[y*w.n+c])
		}
	}
	return delta
}

// RowSum returns sum over b of W[a][b], the total disagreement candidate a
// would incur ranked above everyone else. Borda scores derive from row sums
// in one sequential pass per row.
func (w *Precedence) RowSum(a int) int {
	s := 0
	for _, v := range w.w[a*w.n : a*w.n+w.n] {
		s += int(v)
	}
	return s
}

// LowerBound returns an admissible lower bound on the Kemeny cost of any
// ranking: for each unordered pair the consensus must pay at least
// min(W[a][b], W[b][a]) disagreements.
func (w *Precedence) LowerBound() int {
	lb := 0
	for a := 0; a < w.n; a++ {
		for b := a + 1; b < w.n; b++ {
			ab, ba := w.w[a*w.n+b], w.w[b*w.n+a]
			if ab < ba {
				lb += int(ab)
			} else {
				lb += int(ba)
			}
		}
	}
	return lb
}

// MajorityPrefers reports whether strictly more base rankings place a above b
// than b above a.
func (w *Precedence) MajorityPrefers(a, b int) bool {
	return w.w[b*w.n+a] > w.w[a*w.n+b]
}

// CondorcetOrder returns a ranking ordering candidates by strict pairwise
// majority, if one exists (a total order where every candidate beats all
// candidates below it head-to-head). ok is false when no Condorcet order
// exists (majority cycles or ties).
func (w *Precedence) CondorcetOrder() (Ranking, bool) {
	n := w.n
	wins := make([]int, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && w.MajorityPrefers(a, b) {
				wins[a]++
			}
		}
	}
	r := SortByPointsDesc(wins)
	// A Condorcet order exists iff the win counts are exactly n-1, n-2, ..., 0.
	for i, c := range r {
		if wins[c] != n-1-i {
			return nil, false
		}
	}
	return r, true
}

// PDLoss returns the Pairwise Disagreement loss (paper Def. 9) of consensus
// ranking r against the profile summarised by w: the Kemeny cost divided by
// omega(X) * |R|, in [0, 1].
func (w *Precedence) PDLoss(r Ranking) float64 {
	if w.n < 2 || w.m == 0 {
		return 0
	}
	return float64(w.KemenyCost(r)) / (float64(TotalPairs(w.n)) * float64(w.m))
}

// PDLoss computes the Pairwise Disagreement loss of consensus r directly from
// a profile (paper Def. 9): sum of Kendall tau distances to every base
// ranking, normalised by omega(X)*|R|. It runs in O(|R| n log n) and matches
// Precedence.PDLoss.
func PDLoss(p Profile, r Ranking) float64 {
	if len(p) == 0 || len(r) < 2 {
		return 0
	}
	sum := 0
	for _, base := range p {
		sum += KendallTau(r, base)
	}
	return float64(sum) / (float64(TotalPairs(len(r))) * float64(len(p)))
}
