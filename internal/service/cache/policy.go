package cache

import (
	"container/list"
	"fmt"
	"strings"
)

// Policy names accepted by NewPolicy and the -cache-policy flag.
const (
	// PolicyLRU is classic least-recently-used eviction: every hit moves the
	// entry to the head of a recency list and the tail is evicted.
	PolicyLRU = "lru"
	// PolicyClock is the Compact-CAR-style clock policy (Ooka et al.,
	// arXiv:1612.02603): CLOCK hands over a recency and a frequency ring with
	// reference bits, ghost directories, and an adaptive split between the
	// rings. Hits only set a bit — no list surgery — and one-shot scans
	// cannot flush the frequency ring, which carries the Zipf tail better
	// than pure LRU at low skew.
	PolicyClock = "clock"
)

// Policies lists the replacement policy names, in documentation order.
func Policies() []string { return []string{PolicyLRU, PolicyClock} }

// Policy is a cache replacement policy over string keys. It tracks residency
// order only — the Cache owns the stored values — and is driven by three
// events: Hit (key found resident), Add (key newly inserted; the policy
// evicts a victim of its choosing when that insertion overflows the
// capacity), and Forget (key removed for a reason the policy did not choose,
// e.g. TTL expiry). Implementations are not thread-safe; the Cache serialises
// access under its own lock.
type Policy interface {
	// Name returns the policy's registry name (PolicyLRU, PolicyClock).
	Name() string
	// Hit records an access to a resident key.
	Hit(key string)
	// Add admits a key that was not resident. When the insertion overflows
	// the capacity the policy picks a victim, removes it from its resident
	// set, and returns it; otherwise it returns "".
	Add(key string) (evicted string)
	// Forget removes a resident key without counting it as a policy-chosen
	// eviction (the Cache calls it on TTL expiry).
	Forget(key string)
	// Len returns the number of resident keys.
	Len() int
}

// NewPolicy returns the named replacement policy with the given capacity.
// The empty name resolves to PolicyLRU.
func NewPolicy(name string, capacity int) (Policy, error) {
	switch strings.ToLower(name) {
	case "", PolicyLRU:
		return newLRUPolicy(capacity), nil
	case PolicyClock:
		return newClockPolicy(capacity), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q (want one of %s)", name, strings.Join(Policies(), ", "))
}

// lruPolicy is least-recently-used eviction: a recency list (front = most
// recent) plus a key index.
type lruPolicy struct {
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

func newLRUPolicy(capacity int) *lruPolicy {
	return &lruPolicy{capacity: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (p *lruPolicy) Name() string { return PolicyLRU }
func (p *lruPolicy) Len() int     { return p.ll.Len() }

func (p *lruPolicy) Hit(key string) {
	if el, ok := p.items[key]; ok {
		p.ll.MoveToFront(el)
	}
}

func (p *lruPolicy) Add(key string) (evicted string) {
	if el, ok := p.items[key]; ok {
		p.ll.MoveToFront(el)
		return ""
	}
	p.items[key] = p.ll.PushFront(key)
	if p.ll.Len() <= p.capacity {
		return ""
	}
	tail := p.ll.Back()
	victim := tail.Value.(string)
	p.ll.Remove(tail)
	delete(p.items, victim)
	return victim
}

func (p *lruPolicy) Forget(key string) {
	if el, ok := p.items[key]; ok {
		p.ll.Remove(el)
		delete(p.items, key)
	}
}

// clockPolicy is the CAR clock scheme Compact-CAR compacts for line-speed
// routers: two CLOCK rings — t1 holds keys seen once (recency), t2 keys
// proven reused (frequency) — with one reference bit per entry, two ghost
// directories b1/b2 remembering recently evicted keys, and an adaptive
// target size p for t1 steered by which ghost list re-hits. A hit sets a
// bit; all reordering is deferred to eviction time, when the clock hands
// sweep: a swept t1 entry with its bit set is promoted into t2 (it was
// reused while resident), a swept t2 entry with its bit set gets another
// lap, and the first clear-bit entry under a hand is the victim.
type clockPolicy struct {
	capacity int
	p        int        // adaptive target for len(t1)
	t1, t2   *list.List // resident clock rings; front = hand position
	b1, b2   *list.List // ghost directories; front = most recently evicted
	resident map[string]*list.Element
	ghosts   map[string]*list.Element
}

// clockEntry is one resident or ghost key; home points at the list currently
// holding it (t1/t2 for residents, b1/b2 for ghosts).
type clockEntry struct {
	key  string
	ref  bool
	home *list.List
}

func newClockPolicy(capacity int) *clockPolicy {
	return &clockPolicy{
		capacity: capacity,
		t1:       list.New(),
		t2:       list.New(),
		b1:       list.New(),
		b2:       list.New(),
		resident: make(map[string]*list.Element),
		ghosts:   make(map[string]*list.Element),
	}
}

func (c *clockPolicy) Name() string { return PolicyClock }
func (c *clockPolicy) Len() int     { return c.t1.Len() + c.t2.Len() }

func (c *clockPolicy) Hit(key string) {
	if el, ok := c.resident[key]; ok {
		el.Value.(*clockEntry).ref = true
	}
}

func (c *clockPolicy) Add(key string) (evicted string) {
	if _, ok := c.resident[key]; ok {
		c.Hit(key)
		return ""
	}
	if c.Len() >= c.capacity {
		evicted = c.sweep()
		if _, inGhost := c.ghosts[key]; !inGhost {
			// A brand-new key needs a directory slot: keep |t1|+|b1| <= c and
			// the whole directory <= 2c, dropping the stalest ghost history.
			if c.t1.Len()+c.b1.Len() >= c.capacity && c.b1.Len() > 0 {
				c.dropGhost(c.b1)
			} else if c.Len()+c.b1.Len()+c.b2.Len() >= 2*c.capacity && c.b2.Len() > 0 {
				c.dropGhost(c.b2)
			}
		}
	}
	if gel, ok := c.ghosts[key]; ok {
		// A ghost hit means the policy evicted this key too eagerly; grow the
		// ring it came out of (b1 re-hit -> recency was starved, raise p; b2
		// re-hit -> frequency was starved, lower p) and admit straight into
		// the frequency ring — the key has proven reuse.
		ge := gel.Value.(*clockEntry)
		if ge.home == c.b1 {
			c.p = min(c.p+max(1, c.b2.Len()/c.b1.Len()), c.capacity)
		} else {
			c.p = max(c.p-max(1, c.b1.Len()/c.b2.Len()), 0)
		}
		ge.home.Remove(gel)
		delete(c.ghosts, key)
		c.admit(c.t2, key)
	} else {
		c.admit(c.t1, key)
	}
	return evicted
}

func (c *clockPolicy) Forget(key string) {
	if el, ok := c.resident[key]; ok {
		el.Value.(*clockEntry).home.Remove(el)
		delete(c.resident, key)
	}
}

// admit inserts key behind the given ring's hand with a clear reference bit.
func (c *clockPolicy) admit(ring *list.List, key string) {
	c.resident[key] = ring.PushBack(&clockEntry{key: key, home: ring})
}

// sweep advances the clock hands until a clear-bit victim falls out,
// promoting reused t1 entries to t2 and granting reused t2 entries another
// lap. It terminates because every pass either evicts or clears a bit.
func (c *clockPolicy) sweep() (victim string) {
	for {
		if c.t1.Len() >= max(1, c.p) {
			el := c.t1.Front()
			e := el.Value.(*clockEntry)
			c.t1.Remove(el)
			if !e.ref {
				delete(c.resident, e.key)
				c.remember(c.b1, e)
				return e.key
			}
			e.ref = false
			e.home = c.t2
			c.resident[e.key] = c.t2.PushBack(e)
			continue
		}
		el := c.t2.Front()
		e := el.Value.(*clockEntry)
		c.t2.Remove(el)
		if !e.ref {
			delete(c.resident, e.key)
			c.remember(c.b2, e)
			return e.key
		}
		e.ref = false
		c.resident[e.key] = c.t2.PushBack(e)
	}
}

// remember parks an evicted entry at the fresh end of a ghost directory.
func (c *clockPolicy) remember(ghost *list.List, e *clockEntry) {
	e.ref = false
	e.home = ghost
	c.ghosts[e.key] = ghost.PushFront(e)
}

// dropGhost discards the stalest entry of a ghost directory.
func (c *clockPolicy) dropGhost(ghost *list.List) {
	tail := ghost.Back()
	ghost.Remove(tail)
	delete(c.ghosts, tail.Value.(*clockEntry).key)
}
