#!/usr/bin/env bash
# demo_fleet.sh — guided three-node fleet session (DESIGN.md §13): boot
# three peered manirankd replicas, show one request computed once and
# served cache-warm from every node via peer fetch, then kill the replica
# that built it and show the survivors still answering. See
# examples/serving/README.md ("Running a fleet") for the walkthrough.
set -euo pipefail

cd "$(dirname "$0")/../.."

go build -o /tmp/manirankd-demo ./cmd/manirankd

BASE_PORT="${DEMO_FLEET_PORT:-18095}"
PIDS=()
URLS=()
for i in 0 1 2; do
  URLS+=("http://127.0.0.1:$((BASE_PORT + i))")
done
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "== 0. boot three replicas, each peered with the other two =="
for i in 0 1 2; do
  PEERS=""
  for j in 0 1 2; do
    [ "$j" = "$i" ] && continue
    PEERS="${PEERS:+$PEERS,}${URLS[$j]}"
  done
  echo "   manirankd -addr :$((BASE_PORT + i)) -fleet-self ${URLS[$i]} -peers $PEERS"
  /tmp/manirankd-demo -addr "127.0.0.1:$((BASE_PORT + i))" \
    -fleet-self "${URLS[$i]}" -peers "$PEERS" \
    -fleet-probe-interval 100ms -log-level warn &
  PIDS+=($!)
done

for url in "${URLS[@]}"; do
  for i in $(seq 1 50); do
    curl -sf "$url/healthz" >/dev/null 2>&1 && break
    [ "$i" = 50 ] && { echo "replica $url never became healthy" >&2; exit 1; }
    sleep 0.1
  done
done

# One 20-candidate profile with a binary protected attribute.
REQ='{
  "method": "fair-kemeny",
  "profile": [
    [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19],
    [19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0],
    [1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14,17,16,19,18]
  ],
  "attributes": [{
    "name": "Gender",
    "values": ["M", "W"],
    "of": [0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1]
  }],
  "delta": 0.2
}'

echo
echo "== 1. POST to node 0 (cold: one solve, one matrix build somewhere in the ring) =="
curl -sf -X POST "${URLS[0]}/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ"
echo
sleep 0.5 # let the background push home the result with its ring owner

echo
echo "== 2. the SAME request to nodes 1 and 2: cached:true via peer fetch, no recompute =="
for i in 1 2; do
  curl -sf -X POST "${URLS[$i]}/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ"
  echo
done

echo
echo "== 3. fleet-wide ledger: builds sum to 1, peer hits moved between nodes =="
BUILDER=""
for i in 0 1 2; do
  M="$(curl -sf "${URLS[$i]}/metricsz")"
  B="$(echo "$M" | awk '$1 == "manirank_matrix_builds_total" {print int($2)}')"
  P="$(echo "$M" | awk '$1 == "manirank_cache_peer_hits_total{tier=\"result\"}" {print int($2)}')"
  echo "   node $i: matrix builds $B, result peer hits $P"
  [ "$B" -gt 0 ] && BUILDER=$i
done
curl -sf "${URLS[0]}/statz" | grep -o '"fleet":{[^]]*]}' || true
echo

echo
echo "== 4. kill the replica that built (node $BUILDER); survivors keep answering =="
kill "${PIDS[$BUILDER]}"; wait "${PIDS[$BUILDER]}" 2>/dev/null || true
sleep 0.5 # two probe periods: survivors mark it dead
for i in 0 1 2; do
  [ "$i" = "$BUILDER" ] && continue
  CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST "${URLS[$i]}/v1/aggregate" \
    -H 'Content-Type: application/json' -d "$REQ")"
  ALIVE="$(curl -sf "${URLS[$i]}/statz" | grep -o '"alive":[0-9]\+' | head -1)"
  echo "   node $i: HTTP $CODE, $ALIVE of 3 nodes"
done
echo
echo "fleet demo done: one build ring-wide, peer-fetched everywhere, graceful degradation"
