package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"manirank/internal/fleet"
)

// fleetHarnessNode is one in-process replica of a test fleet: its own
// Server, ring, and HTTP listener, killable mid-test.
type fleetHarnessNode struct {
	url    string
	srv    *Server
	ring   *fleet.Fleet
	http   *http.Server
	killed atomic.Bool
}

// kill stops the replica abruptly (connections dropped, not drained) and is
// idempotent so test cleanup can re-run it.
func (nd *fleetHarnessNode) kill() {
	if !nd.killed.CompareAndSwap(false, true) {
		return
	}
	nd.http.Close()
	nd.srv.Close()
	nd.ring.Close()
}

// newFleetHarness boots n replicas peered over loopback. Listeners are bound
// before any ring is built so every node knows the full member list. probe
// < 0 disables liveness probing (tests drive MarkAlive/MarkDead directly
// for determinism); probe > 0 runs the real loop.
func newFleetHarness(t *testing.T, n int, probe time.Duration) []*fleetHarnessNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*fleetHarnessNode, n)
	for i := range nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		ring, err := fleet.New(fleet.Config{
			Self:  urls[i],
			Peers: peers,
			// Generous bounds: CI machines under -race stall far past the
			// production defaults, and these tests assert routing, not SLOs.
			FetchTimeout:  3 * time.Second,
			BuildTimeout:  15 * time.Second,
			ProbeInterval: probe,
			ProbeTimeout:  250 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(Config{
			Fleet:  ring,
			Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &fleetHarnessNode{
			url:  urls[i],
			srv:  srv,
			ring: ring,
			http: &http.Server{Handler: srv.Handler()},
		}
		go nodes[i].http.Serve(lns[i])
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.kill()
		}
	})
	return nodes
}

// ownerIndex returns which harness node the ring makes owner of key.
func ownerIndex(nodes []*fleetHarnessNode, key string) int {
	urls := make([]string, len(nodes))
	for i, nd := range nodes {
		urls[i] = nd.url
	}
	owner := fleet.Owner(urls, key, nil)
	for i, u := range urls {
		if u == owner {
			return i
		}
	}
	return -1
}

// rawPost is post without t.Fatal, safe to call from worker goroutines.
func rawPost(url string, req *AggregateRequest) (int, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url+"/v1/aggregate", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestFleetPeerFetchServesRemoteResult: a result computed where the ring
// says it belongs is served to every other replica as a peer hit — the
// fleet behaves as one sharded cache, and /statz reports the ring.
func TestFleetPeerFetchServesRemoteResult(t *testing.T) {
	nodes := newFleetHarness(t, 3, -1)
	req := testRequest("kemeny", 41)
	full, _ := Digests(req)
	owner := ownerIndex(nodes, full)

	// Seed the entry at its owner, then read it from both non-owners.
	if status, out := post(t, nodes[owner].url, req); status != http.StatusOK || out.Cached {
		t.Fatalf("owner solve: status=%d cached=%v", status, out != nil && out.Cached)
	}
	for i, nd := range nodes {
		if i == owner {
			continue
		}
		status, out := post(t, nd.url, req)
		if status != http.StatusOK || !out.Cached {
			t.Fatalf("node %d: peer-backed request status=%d cached=%v — remote entry not served", i, status, out != nil && out.Cached)
		}
		if hits := nd.srv.cache.Stats().PeerHits; hits != 1 {
			t.Fatalf("node %d result peer hits = %d, want 1", i, hits)
		}
	}

	// Per-ring single compute: the whole fleet paid exactly one matrix build
	// for the one distinct profile.
	var builds uint64
	for _, nd := range nodes {
		builds += nd.srv.prec.Stats().Builds
	}
	if builds != 1 {
		t.Fatalf("fleet-wide matrix builds = %d, want exactly 1", builds)
	}

	st := nodes[0].srv.StatzSnapshot()
	if st.Fleet == nil || st.Fleet.Nodes != 3 || st.Fleet.Alive != 3 || st.Fleet.Self != nodes[0].url {
		t.Fatalf("statz fleet section = %+v", st.Fleet)
	}
}

// TestFleetBuildRoutedToOwner: a profile first seen by a non-owner is built
// on its rendezvous OWNER (posted over the peer protocol, under the owner's
// single-flight), and once built it serves every other replica as a matrix
// peer hit. No replica ever rebuilds it.
func TestFleetBuildRoutedToOwner(t *testing.T) {
	nodes := newFleetHarness(t, 3, -1)
	req := testRequest("copeland", 43)
	_, prof := Digests(req)
	profOwner := ownerIndex(nodes, prof)
	first := (profOwner + 1) % 3
	second := (profOwner + 2) % 3

	if status, _ := post(t, nodes[first].url, req); status != http.StatusOK {
		t.Fatalf("first request: status %d", status)
	}
	if got := nodes[profOwner].srv.prec.Stats().Builds; got != 1 {
		t.Fatalf("profile owner builds = %d, want 1 (build must route to the owner)", got)
	}
	if got := nodes[first].srv.prec.Stats().Builds; got != 0 {
		t.Fatalf("requesting node builds = %d, want 0", got)
	}
	if got := nodes[first].srv.prec.Stats().PeerHits; got != 1 {
		t.Fatalf("requesting node matrix peer hits = %d, want 1", got)
	}

	// A different method over the same profile from the third replica:
	// different result digest (miss), same matrix — peer-fetched, not rebuilt.
	req2 := testRequest("borda", 43)
	if status, _ := post(t, nodes[second].url, req2); status != http.StatusOK {
		t.Fatalf("second request: status %d", status)
	}
	if got := nodes[second].srv.prec.Stats().PeerHits; got != 1 {
		t.Fatalf("third replica matrix peer hits = %d, want 1", got)
	}
	var builds uint64
	for _, nd := range nodes {
		builds += nd.srv.prec.Stats().Builds
	}
	if builds != 1 {
		t.Fatalf("fleet-wide matrix builds = %d, want exactly 1 across both methods", builds)
	}
}

// TestFleetKillOwnerUnderLoad: with one replica killed mid-load, every
// request sent to a survivor still answers 200 — peer reads to the corpse
// fail fast, feed the liveness view, and degrade to local compute.
func TestFleetKillOwnerUnderLoad(t *testing.T) {
	nodes := newFleetHarness(t, 3, 25*time.Millisecond)
	// Warm every node so the dead replica leaves actual holes behind.
	for i, nd := range nodes {
		if status, _ := post(t, nd.url, testRequest("borda", int64(50+i))); status != http.StatusOK {
			t.Fatalf("warmup node %d failed", i)
		}
	}
	victim, survivors := nodes[2], nodes[:2]

	var failures atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := testRequest("borda", int64(100+10*c+i))
				status, err := rawPost(survivors[c%2].url, req)
				if err != nil || status != http.StatusOK {
					failures.Add(1)
				}
				if c == 0 && i == 0 {
					victim.kill() // mid-load, after the first request is in flight elsewhere
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed on surviving nodes after the kill", n)
	}

	// The survivors' probes must converge on the corpse being dead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(survivors[0].ring.Alive()) == 2 && len(survivors[1].ring.Alive()) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never marked the killed replica dead: alive=%v/%v",
				survivors[0].ring.Alive(), survivors[1].ring.Alive())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And requests keep answering against the shrunken ring.
	if status, _ := post(t, survivors[0].url, testRequest("borda", 999)); status != http.StatusOK {
		t.Fatal("request failed after liveness converged")
	}
}

// TestFleetWarmReowned: when a dead replica returns, the replicas that
// absorbed its key range push the re-owned entries back — the returning
// node starts warm instead of stampeding the ring with first-touch builds.
func TestFleetWarmReowned(t *testing.T) {
	nodes := newFleetHarness(t, 2, -1)
	a, b := nodes[0], nodes[1]
	a.ring.MarkDead(b.url)

	// With B dead, A computes and keeps everything locally (half those keys
	// rendezvous-route to B when it is alive).
	for i := 0; i < 12; i++ {
		if status, _ := post(t, a.url, testRequest("borda", int64(200+i))); status != http.StatusOK {
			t.Fatalf("request %d failed", i)
		}
	}
	if len(b.srv.cache.Keys())+len(b.srv.prec.Keys()) != 0 {
		t.Fatal("B holds entries before returning")
	}

	a.ring.MarkAlive(b.url) // membership change: A's OnChange warms B
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(b.srv.cache.Keys())+len(b.srv.prec.Keys()) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no entries warmed to the returning replica")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if a.srv.peerWarms.Value() == 0 {
		t.Fatal("warm-push counter did not move")
	}
}

// TestPeerHandlerGates: the peer API's two integrity gates — the cache
// namespace header (412: replicas on different engine versions must never
// exchange entries) and the posted-profile digest check (400: a confused
// sender cannot poison the matrix tier under a key it doesn't hash to).
func TestPeerHandlerGates(t *testing.T) {
	nodes := newFleetHarness(t, 1, -1)
	base := nodes[0].url + fleet.PathPrefix + fleet.KindResults + "/abcd"

	get := func(ns string) int {
		req, err := http.NewRequest(http.MethodGet, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ns != "" {
			req.Header.Set(fleet.NamespaceHeader, ns)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := get("manirankd_v2@engine-SOMETHING-ELSE"); status != http.StatusPreconditionFailed {
		t.Fatalf("mismatched namespace: status %d, want 412", status)
	}
	if status := get(""); status != http.StatusPreconditionFailed {
		t.Fatalf("missing namespace: status %d, want 412", status)
	}
	if status := get(nodes[0].ring.Namespace()); status != http.StatusNotFound {
		t.Fatalf("valid namespace, absent digest: status %d, want 404", status)
	}

	// POST a real profile under a digest it does not hash to.
	req := testRequest("borda", 7)
	blob, err := json.Marshal(req.Profile)
	if err != nil {
		t.Fatal(err)
	}
	preq, err := http.NewRequest(http.MethodPost,
		nodes[0].url+fleet.PathPrefix+fleet.KindMatrices+"/"+strings.Repeat("ab", 32),
		bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set(fleet.NamespaceHeader, nodes[0].ring.Namespace())
	resp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched profile digest: status %d, want 400", resp.StatusCode)
	}
	if builds := nodes[0].srv.prec.Stats().Builds; builds != 0 {
		t.Fatalf("poisoning attempt triggered %d builds", builds)
	}
}
