// Package service is manirankd's serving layer: an HTTP JSON API over the
// manirank.Engine solver registry (every request resolves its method via
// manirank.ParseMethod and solves through Engine.Solve on the shared,
// cached precedence matrix) with three server-grade layers on top of the
// compute core —
//
//  1. two cache tiers (internal/service/cache), both keyed by canonical
//     SHA-256 digests and both single-flight coalesced: a result cache over
//     the full request digest (pluggable LRU or Compact-CAR-style clock
//     replacement, Config.CachePolicy) so identical requests compute once,
//     and a precedence-matrix cache over the profile sub-digest so
//     *different* methods or solver options over an already-seen profile
//     skip the O(n²·m) matrix construction — admission is bounded by memory
//     cost (n² cells per matrix), not entry count;
//  2. admission and scheduling: a bounded job queue feeding a fixed solver
//     worker pool, per-request deadlines threaded as context.Context into
//     the Kemeny/Fair-Kemeny restart loops (best-so-far on expiry), and
//     backpressure (HTTP 429) when the queue is full;
//  3. observability (internal/obs, DESIGN.md §11): one obs.Registry holds
//     every counter, gauge, and latency histogram; /statz renders it as
//     JSON and /metricsz as Prometheus text — the same live atomics, so
//     the two can never disagree. Each request carries an obs.Trace whose
//     per-stage spans (queue, cache lookups, disk, matrix build, solve,
//     encode) land in a bounded ring at /tracez, with requests slower
//     than Config.TraceSlow also logged with their span breakdown. Per
//     tier, a Che-style estimator predicts the hit rate the configured
//     capacity should achieve and exports it next to the measured rate.
//
// See DESIGN.md §6–§7 for the queue → caches → solver architecture.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"manirank"
	"manirank/internal/aggregate"
	"manirank/internal/fleet"
	"manirank/internal/kemeny"
	"manirank/internal/obs"
	"manirank/internal/ranking"
	"manirank/internal/service/cache"
)

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// Workers is the solver pool width — at most this many requests compute
	// concurrently (default GOMAXPROCS).
	Workers int
	// SolverWorkers shards each individual solve's restarts
	// (kemeny.Options.Workers). Default 1: under concurrent load the request
	// pool owns the machine's parallelism, and restart pools per solve would
	// oversubscribe it — the same reasoning as the experiment harness.
	SolverWorkers int
	// CacheSize is the result-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// CachePolicy selects the result cache's replacement policy:
	// cache.PolicyClock (default) or cache.PolicyLRU.
	CachePolicy string
	// CacheTTL expires cached results (default 0: never). With a TTL set the
	// server also runs a clock-driven reaper that sweeps expired entries out
	// of memory even when nothing re-requests them.
	CacheTTL time.Duration
	// CacheDir, when non-empty, roots a persistent content-addressed tier
	// under both caches: every admitted result and matrix is written through
	// to disk, memory misses consult disk before computing, and both tiers
	// are flushed on Close — so a restarted server serves its previous
	// working set warm. The directory must be dedicated to this server's
	// cache (stale version trees inside it are pruned on startup).
	CacheDir string
	// EngineVersion is the engine-behaviour component of the persistent
	// tier's namespace (default DefaultEngineVersion). Bump it at deploy time
	// when solver behaviour changes: every entry persisted under the old
	// version becomes unreachable. Ignored without CacheDir.
	EngineVersion string
	// SnapshotInterval, when positive and CacheDir is set, flushes both
	// memory tiers to the persistent store on this period — so a crash
	// loses at most one interval of residents whose write-through failed,
	// not everything since the last graceful shutdown.
	SnapshotInterval time.Duration
	// DiskBudgetBytes, when positive and CacheDir is set, bounds the bytes
	// the persistent tier may hold across both namespaces; the oldest-read
	// entry files are evicted when the budget is crossed (cache.DiskBudget).
	// Zero leaves the disk tier unbounded (the pre-fleet behaviour).
	DiskBudgetBytes int64
	// Fleet, when non-nil, shards both cache tiers across the configured
	// replica set by rendezvous hashing (DESIGN.md §13): local misses
	// peer-fetch from the digest's owner before computing, matrix builds
	// route to the owner, and the /internal/v1/peer/ handlers are mounted.
	// The caller keeps ownership: close the fleet after Server.Close.
	Fleet *fleet.Fleet
	// PrecCacheCells budgets the precedence-matrix tier in matrix cells (a
	// profile over n candidates costs n² cells ≈ 4n² bytes). Default
	// DefaultPrecCacheCells; negative disables storage (builds still
	// coalesce).
	PrecCacheCells int64
	// DefaultDeadline caps a solve when the request doesn't set deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps what deadline_ms may ask for (default 5m).
	MaxDeadline time.Duration
	// MaxBodyBytes bounds the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxSessions bounds the number of live streaming sessions (default 256;
	// negative disables the session endpoint). Session creation beyond the
	// bound answers 429 until a session is deleted.
	MaxSessions int
	// TraceSlow, when positive, logs any request whose wall time reaches it
	// with the request's full span breakdown (the trace lands in /tracez
	// either way). Zero disables the slow-request log.
	TraceSlow time.Duration
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SolverWorkers == 0 {
		c.SolverWorkers = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.CachePolicy == "" {
		c.CachePolicy = cache.PolicyClock
	}
	if c.PrecCacheCells == 0 {
		c.PrecCacheCells = DefaultPrecCacheCells
	}
	if c.PrecCacheCells < 0 {
		c.PrecCacheCells = 0 // MatrixCache treats 0 as storage off
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 256
	}
	if c.MaxSessions < 0 {
		c.MaxSessions = 0 // sessions disabled
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// DefaultPrecCacheCells is the default precedence-tier budget: 4M int32
// cells ≈ 16 MiB, room for ~16 n=500 matrices or ~1100 n=60 ones.
const DefaultPrecCacheCells = 4 << 20

// Errors the admission layer maps to HTTP statuses.
var (
	// ErrQueueFull: the bounded queue rejected the request (429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrExpiredInQueue: the request's deadline elapsed before a solver
	// worker picked it up (504).
	ErrExpiredInQueue = errors.New("service: deadline expired while queued")
	// ErrShuttingDown: the server is draining (503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// result is the cached/shared outcome of one solve.
type result struct {
	Ranking ranking.Ranking `json:"ranking"`
	Method  string          `json:"method"`
	PDLoss  float64         `json:"pd_loss"`
	Audit   *auditPayload   `json:"audit,omitempty"`
	Partial bool            `json:"partial"`
}

// auditPayload is the wire form of a fairness audit.
type auditPayload struct {
	ARPs map[string]float64 `json:"arps"`
	IRP  float64            `json:"irp"`
}

// AggregateResponse is the POST /v1/aggregate response body.
type AggregateResponse struct {
	result
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	Digest    string  `json:"digest"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// job is one admitted solve travelling from the handler to a worker.
type job struct {
	pb       *problem
	ctx      context.Context // carries the compute deadline and the trace
	enqueued time.Time       // when the job entered the queue (the queue span's start)
	done     chan struct{}
	res      *result
	err      error
	// run, when non-nil, replaces the stateless s.solve(pb) with a custom
	// computation — the session endpoint's warm-started engine solves. pb
	// still rides along for the per-method histogram and logging.
	run func(ctx context.Context) (*result, error)
	// state arbitrates the queued job between the worker and a leader whose
	// deadline lapses while it waits: exactly one of claim/abandon wins.
	state atomic.Int32 // 0 = queued, 1 = claimed by a worker, 2 = abandoned by the leader
}

// claim marks the job as picked up by a worker; false means the leader
// already walked away and the job must be dropped.
func (j *job) claim() bool { return j.state.CompareAndSwap(0, 1) }

// abandon marks the job as given up by its leader; false means a worker
// already claimed it and the leader must keep waiting for the (imminent,
// deadline-bounded) result.
func (j *job) abandon() bool { return j.state.CompareAndSwap(0, 2) }

// Server is the manirankd serving core. Construct with New, mount via
// Handler, stop with Close.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	prec    *cache.MatrixCache
	stores  []cache.Store // persistent tiers to close after the final flush
	jobs    chan *job
	quit    chan struct{}
	wg      sync.WaitGroup
	log     *slog.Logger
	started time.Time

	inFlight atomic.Int64 // solves currently executing
	queued   atomic.Int64 // jobs waiting in the queue

	// Streaming sessions (session.go): id → live session. sessMu guards the
	// map only; each session carries its own lock.
	sessMu   sync.Mutex
	sessions map[string]*session

	// The telemetry core (internal/obs). Every family below lives in reg,
	// which /metricsz renders as Prometheus text; /statz reads the same
	// structs. All label sets are pre-registered at construction — statuses
	// from the fixed set the handler can emit, methods from the solver
	// registry, stages from the span allowlist — so cardinality is bounded
	// no matter what traffic arrives (the historical methodLat sync.Map
	// grew a ring per observed method string instead).
	reg         *obs.Registry
	traces      *obs.TraceRing
	histSolve   *obs.Histogram            // request latency, computed requests
	histHit     *obs.Histogram            // request latency, cache hits
	methodHist  map[string]*obs.Histogram // pure solve time per method
	stageHist   map[string]*obs.Histogram // per-stage time from trace spans
	status      map[int]*obs.Counter      // requests by status
	statusOther *obs.Counter              // statuses outside the known set
	cheResult   *obs.CheEstimator         // result-tier popularity model
	cheMatrix   *obs.CheEstimator         // matrix-tier popularity model
	sessionOps  map[string]*obs.Counter   // session operations by op
	closeOnce   sync.Once

	// Fleet peering (peer.go): nil on a single node. pushSem bounds the
	// background pushes (after-compute homing + re-owned warming).
	fleet           *fleet.Fleet
	pushSem         chan struct{}
	peerWarms       *obs.Counter // entries pushed by re-owned-key warming
	snapshotFlushes *obs.Counter // background snapshot ticks completed
}

// New starts a Server's worker pool and returns it. It fails on an unknown
// Config.CachePolicy or an unusable Config.CacheDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	results, err := cache.NewWithPolicy(cfg.CacheSize, cfg.CacheTTL, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		cache:     results,
		prec:      cache.NewMatrixCache(cfg.PrecCacheCells),
		jobs:      make(chan *job, cfg.QueueDepth),
		quit:      make(chan struct{}),
		log:       cfg.Logger,
		started:   time.Now(),
		traces:    obs.NewTraceRing(0, 0),
		cheResult: obs.NewCheEstimator(),
		cheMatrix: obs.NewCheEstimator(),
		sessions:  make(map[string]*session),
		fleet:     cfg.Fleet,
		pushSem:   make(chan struct{}, peerPushConcurrency),
	}
	s.initObs()
	if cfg.CacheDir != "" {
		ns := CacheNamespace(cfg.EngineVersion)
		rs, err := cache.OpenFileStore(cfg.CacheDir, ns+"/results")
		if err != nil {
			return nil, err
		}
		ms, err := cache.OpenFileStore(cfg.CacheDir, ns+"/matrices")
		if err != nil {
			rs.Close()
			return nil, err
		}
		if cfg.DiskBudgetBytes > 0 {
			budget := cache.NewDiskBudget(cfg.CacheDir, cfg.DiskBudgetBytes)
			rs.SetBudget(budget)
			ms.SetBudget(budget)
			s.reg.GaugeFunc("manirank_cache_disk_used_bytes",
				"bytes held by the persistent tier under the disk budget",
				func() float64 { return float64(budget.Used()) })
			s.reg.GaugeFunc("manirank_cache_disk_budget_bytes",
				"configured persistent-tier byte budget",
				func() float64 { return float64(budget.Limit()) })
			s.reg.RegisterCounter("manirank_cache_disk_evictions_total",
				"entry files evicted under disk pressure", budget.Evictions())
			s.reg.RegisterCounter("manirank_cache_disk_evicted_bytes_total",
				"bytes reclaimed by disk eviction", budget.BytesEvicted())
		}
		s.cache.AttachStore(rs, resultCodec())
		s.prec.AttachStore(ms, matrixCodec(), matrixCost)
		s.stores = append(s.stores, rs, ms)
		s.log.Info("persistent cache tier attached", "dir", cfg.CacheDir, "namespace", ns)
		if cfg.SnapshotInterval > 0 {
			s.wg.Add(1)
			go s.snapshotter(cfg.SnapshotInterval)
		}
	}
	if s.fleet != nil {
		s.fleet.SetNamespace(CacheNamespace(cfg.EngineVersion))
		s.fleet.OnChange(s.warmReowned)
		s.log.Info("fleet peering attached",
			"self", s.fleet.Self(), "nodes", len(s.fleet.Nodes()))
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.CacheTTL > 0 {
		interval := cfg.CacheTTL / 2
		if interval < time.Second {
			interval = time.Second
		}
		s.wg.Add(1)
		go s.reaper(interval)
	}
	return s, nil
}

// traceStages is the span-name allowlist aggregated into the per-stage
// histogram family. Solver-internal spans (kemeny_restart, per-pass) stay
// trace-only: they are per-request diagnostics, not bounded stage series.
var traceStages = []string{
	"queue",
	"result_lookup", "result_wait", "result_disk_read", "result_disk_write", "result_peer_read",
	"matrix_lookup", "matrix_wait", "matrix_build", "matrix_disk_read", "matrix_disk_write", "matrix_peer_read",
	"solve", "encode",
}

// knownStatuses is every HTTP status the aggregate handler can emit; each
// gets a pre-registered counter, anything else lands in status="other".
var knownStatuses = []int{
	http.StatusOK, http.StatusBadRequest, http.StatusMethodNotAllowed,
	http.StatusNotFound, http.StatusTooManyRequests,
	http.StatusInternalServerError, http.StatusServiceUnavailable,
	http.StatusGatewayTimeout,
}

// sessionOpNames is every session operation the endpoint accepts (plus the
// lifecycle pseudo-ops); each gets a pre-registered counter so the family's
// cardinality is bounded regardless of traffic.
var sessionOpNames = []string{"create", "add", "remove", "update", "solve", "delete"}

// resultSizer approximates a cached result's resident footprint for the
// per-tier bytes gauge — slice header plus elements, strings, and audit
// map. An estimate is enough: the gauge exists to show relative tier
// pressure, not to account allocations.
func resultSizer(v any) int64 {
	r, ok := v.(*result)
	if !ok {
		return 0
	}
	b := int64(96) + 8*int64(len(r.Ranking)) + int64(len(r.Method))
	if r.Audit != nil {
		b += 48
		for name := range r.Audit.ARPs {
			b += 48 + int64(len(name))
		}
	}
	return b
}

// matrixResidentBytes prices the matrix tier's residency: cells are int32.
func matrixResidentBytes(ms cache.MatrixStats) float64 { return float64(ms.CostUsed) * 4 }

// initObs builds the metric registry: every former /statz counter plus the
// new histogram and model families. Counters owned by the cache tiers are
// adopted by pointer (RegisterCounter), not copied — the registry and
// Stats() read the same atomics.
func (s *Server) initObs() {
	r := obs.NewRegistry()
	s.reg = r

	s.status = make(map[int]*obs.Counter, len(knownStatuses))
	for _, code := range knownStatuses {
		s.status[code] = r.Counter("manirank_requests_total",
			"aggregate requests by HTTP status", obs.L("status", strconv.Itoa(code)))
	}
	s.statusOther = r.Counter("manirank_requests_total",
		"aggregate requests by HTTP status", obs.L("status", "other"))

	r.GaugeFunc("manirank_queue_depth", "jobs waiting in the admission queue",
		func() float64 { return float64(s.queued.Load()) })
	r.GaugeFunc("manirank_queue_capacity", "admission queue capacity",
		func() float64 { return float64(s.cfg.QueueDepth) })
	r.GaugeFunc("manirank_in_flight", "solves currently executing",
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc("manirank_workers", "solver pool width",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("manirank_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(s.started).Seconds() })

	// Streaming sessions: live-session gauge plus one counter per operation.
	r.GaugeFunc("manirank_sessions_active", "live streaming sessions",
		func() float64 {
			s.sessMu.Lock()
			defer s.sessMu.Unlock()
			return float64(len(s.sessions))
		})
	s.sessionOps = make(map[string]*obs.Counter, len(sessionOpNames))
	for _, op := range sessionOpNames {
		s.sessionOps[op] = r.Counter("manirank_session_ops_total",
			"session operations by op", obs.L("op", op))
	}

	// Result tier: adopt the cache-owned counters under tier="result".
	rc := s.cache.Counters()
	res := obs.L("tier", "result")
	r.RegisterCounter("manirank_cache_hits_total", "cache lookups served from memory per tier", rc.Hits, res)
	r.RegisterCounter("manirank_cache_misses_total", "cache lookups that missed memory per tier", rc.Misses, res)
	r.RegisterCounter("manirank_cache_coalesced_total", "lookups that joined an in-flight computation per tier", rc.Coalesced, res)
	r.RegisterCounter("manirank_cache_evictions_total", "entries dropped by capacity pressure per tier", rc.Evictions, res)
	r.RegisterCounter("manirank_cache_expirations_total", "entries dropped by TTL expiry", rc.Expirations, res)
	r.RegisterCounter("manirank_cache_disk_hits_total", "lookups served by the persistent tier per tier", rc.DiskHits, res)
	r.RegisterCounter("manirank_cache_disk_puts_total", "successful persistent write-throughs per tier", rc.DiskPuts, res)
	r.RegisterCounter("manirank_cache_disk_errors_total", "persistent-tier failures absorbed per tier", rc.DiskErrors, res)
	r.RegisterCounter("manirank_cache_peer_hits_total", "lookups served by a fleet peer per tier", rc.PeerHits, res)
	r.RegisterCounter("manirank_cache_peer_misses_total", "peer fetches answered with an authoritative miss per tier", rc.PeerMisses, res)
	r.RegisterCounter("manirank_cache_peer_errors_total", "peer fetches that failed and fell back to compute per tier", rc.PeerErrors, res)
	s.cache.SetSizer(resultSizer)

	// Matrix tier: same families under tier="matrix", plus its build axis.
	mc := s.prec.Counters()
	mat := obs.L("tier", "matrix")
	r.RegisterCounter("manirank_cache_hits_total", "cache lookups served from memory per tier", mc.Hits, mat)
	r.RegisterCounter("manirank_cache_misses_total", "cache lookups that missed memory per tier", mc.Misses, mat)
	r.RegisterCounter("manirank_cache_coalesced_total", "lookups that joined an in-flight computation per tier", mc.Coalesced, mat)
	r.RegisterCounter("manirank_cache_evictions_total", "entries dropped by capacity pressure per tier", mc.Evictions, mat)
	r.RegisterCounter("manirank_cache_disk_hits_total", "lookups served by the persistent tier per tier", mc.DiskHits, mat)
	r.RegisterCounter("manirank_cache_disk_puts_total", "successful persistent write-throughs per tier", mc.DiskPuts, mat)
	r.RegisterCounter("manirank_cache_disk_errors_total", "persistent-tier failures absorbed per tier", mc.DiskErrors, mat)
	r.RegisterCounter("manirank_cache_peer_hits_total", "lookups served by a fleet peer per tier", mc.PeerHits, mat)
	r.RegisterCounter("manirank_cache_peer_misses_total", "peer fetches answered with an authoritative miss per tier", mc.PeerMisses, mat)
	r.RegisterCounter("manirank_cache_peer_errors_total", "peer fetches that failed and fell back to compute per tier", mc.PeerErrors, mat)
	r.RegisterCounter("manirank_matrix_builds_total", "precedence-matrix constructions paid", mc.Builds)
	r.RegisterCounter("manirank_matrix_rejected_total", "built matrices too large to admit", mc.Rejected)
	r.CounterFunc("manirank_matrix_builds_skipped_total",
		"matrix requests answered without running the builder", mc.BuildsSkipped)

	r.GaugeFunc("manirank_cache_entries", "resident entries per tier",
		func() float64 { return float64(s.cache.Stats().Entries) }, res)
	r.GaugeFunc("manirank_cache_entries", "resident entries per tier",
		func() float64 { return float64(s.prec.Stats().Entries) }, mat)
	r.GaugeFunc("manirank_cache_resident_bytes", "approximate resident bytes per tier",
		func() float64 { return float64(s.cache.Bytes()) }, res)
	r.GaugeFunc("manirank_cache_resident_bytes", "approximate resident bytes per tier",
		func() float64 { return matrixResidentBytes(s.prec.Stats()) }, mat)

	// Measured vs Che-predicted hit rate per tier, and their drift — the
	// first slice of ROADMAP item 3's model-driven sizing: sustained drift
	// means the popularity model (or the capacity assumption) is wrong.
	r.GaugeFunc("manirank_cache_hit_rate", "measured memory hit rate per tier",
		func() float64 { return s.cache.Stats().HitRate() }, res)
	r.GaugeFunc("manirank_cache_hit_rate", "measured memory hit rate per tier",
		func() float64 { return s.prec.Stats().HitRate() }, mat)
	r.GaugeFunc("manirank_cache_hit_rate_predicted", "Che-approximation hit rate per tier",
		func() float64 { return s.cheResult.Predict(s.cfg.CacheSize) }, res)
	r.GaugeFunc("manirank_cache_hit_rate_predicted", "Che-approximation hit rate per tier",
		s.predictMatrixHitRate, mat)
	r.GaugeFunc("manirank_cache_hit_rate_drift", "measured minus predicted hit rate per tier",
		func() float64 { return s.cache.Stats().HitRate() - s.cheResult.Predict(s.cfg.CacheSize) }, res)
	r.GaugeFunc("manirank_cache_hit_rate_drift", "measured minus predicted hit rate per tier",
		func() float64 { return s.prec.Stats().HitRate() - s.predictMatrixHitRate() }, mat)

	buckets := obs.LatencyBuckets()
	s.histSolve = r.Histogram("manirank_request_seconds",
		"aggregate request latency by outcome", buckets, obs.L("outcome", "solve"))
	s.histHit = r.Histogram("manirank_request_seconds",
		"aggregate request latency by outcome", buckets, obs.L("outcome", "hit"))
	s.methodHist = make(map[string]*obs.Histogram)
	for _, m := range manirank.MethodNames() {
		s.methodHist[m] = r.Histogram("manirank_solve_seconds",
			"pure solver time per method (queue and cache layers excluded)",
			buckets, obs.L("method", m))
	}
	s.stageHist = make(map[string]*obs.Histogram, len(traceStages))
	for _, stage := range traceStages {
		s.stageHist[stage] = r.Histogram("manirank_stage_seconds",
			"per-stage request time from trace spans", buckets, obs.L("stage", stage))
	}

	// Persistence + fleet operations (both satellites of DESIGN.md §13).
	s.snapshotFlushes = r.Counter("manirank_cache_snapshot_flushes_total",
		"background snapshot flush ticks completed")
	s.peerWarms = r.Counter("manirank_fleet_warm_pushes_total",
		"cache entries pushed to their new owner after a membership change")
	if f := s.fleet; f != nil {
		r.GaugeFunc("manirank_fleet_nodes", "configured fleet size, self included",
			func() float64 { return float64(len(f.Nodes())) })
		r.GaugeFunc("manirank_fleet_alive_nodes", "fleet nodes currently believed alive, self included",
			func() float64 { return float64(len(f.Alive())) })
		r.GaugeFunc("manirank_fleet_epoch", "membership epoch (bumps on every alive-set change)",
			func() float64 { return float64(f.Epoch()) })
	}
}

// predictMatrixHitRate runs the Che estimator for the matrix tier. The
// tier is cost-bounded, not entry-bounded, so its entry capacity is
// estimated as budget over the mean resident entry cost; before anything
// is resident there is no estimate and the prediction is 0.
func (s *Server) predictMatrixHitRate() float64 {
	ms := s.prec.Stats()
	if ms.Entries == 0 || ms.CostUsed <= 0 {
		return 0
	}
	capEntries := int(ms.CostBudget / (ms.CostUsed / int64(ms.Entries)))
	return s.cheMatrix.Predict(capEntries)
}

// reaper periodically sweeps expired entries out of the result cache so a
// TTL'd working set that stops being requested releases its memory and
// Policy slots without waiting for capacity pressure (lookupLocked only
// expires entries somebody asks for again).
func (s *Server) reaper(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.cache.Sweep()
		}
	}
}

// snapshotter flushes both memory tiers to the persistent store on a fixed
// interval (Config.SnapshotInterval). Write-through already persists every
// admission once, so each tick only re-writes residents whose earlier disk
// write failed — bounding what a crash can lose to one interval instead of
// everything since the last graceful shutdown.
func (s *Server) snapshotter(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			nr := s.cache.Flush()
			nm := s.prec.Flush()
			s.snapshotFlushes.Inc()
			s.log.Debug("cache snapshot flushed", "results", nr, "matrices", nm)
		}
	}
}

// Close drains the solver pool: workers finish their current job and exit,
// and any job still queued fails with ErrShuttingDown. With a persistent
// tier attached, both caches then snapshot-flush to disk and the stores are
// closed, so the next process starts from this one's full working set (not
// just what write-through persisted). Stop accepting HTTP traffic
// (http.Server.Shutdown) before calling Close so no handler is left waiting.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.wg.Wait()
		for drained := false; !drained; {
			select {
			case j := <-s.jobs:
				j.err = ErrShuttingDown
				close(j.done)
			default:
				drained = true
			}
		}
		if len(s.stores) > 0 {
			nr := s.cache.Flush()
			nm := s.prec.Flush()
			s.log.Info("persistent cache tier flushed", "results", nr, "matrices", nm)
			for _, st := range s.stores {
				st.Close()
			}
		}
	})
}

// worker pops admitted jobs and solves them until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			s.queued.Add(-1)
			obs.FromContext(j.ctx).AddSpan("queue", j.enqueued, time.Now())
			if !j.claim() {
				// The leader already answered 504 for it; nobody is
				// listening, so don't waste a solver slot.
				continue
			}
			if j.ctx.Err() != nil {
				// Expired while queued: don't waste a solver slot on it.
				j.err = ErrExpiredInQueue
				close(j.done)
				continue
			}
			s.inFlight.Add(1)
			t0 := time.Now()
			if j.run != nil {
				j.res, j.err = j.run(j.ctx)
			} else {
				j.res, j.err = s.solve(j.ctx, j.pb)
			}
			if j.err == nil {
				// Solve time is measured worker-side — queueing, coalescing,
				// and cache lookups excluded — so the per-method family
				// separates solver cost from serving overhead. The method
				// set is pre-registered from the solver registry
				// (buildProblem validated the name), so the lookup is total.
				if h, ok := s.methodHist[j.pb.method.String()]; ok {
					observeSeconds(h, time.Since(t0))
				}
			}
			s.inFlight.Add(-1)
			close(j.done)
		}
	}
}

// kemenyOptions lowers the request's solver knobs onto the engine options.
func (s *Server) kemenyOptions(o SolverOptions) aggregate.KemenyOptions {
	return aggregate.KemenyOptions{
		ExactThreshold: o.ExactThreshold,
		MaxNodes:       o.MaxNodes,
		Heuristic: kemeny.Options{
			Seed:          o.Seed,
			Perturbations: o.Perturbations,
			Strength:      o.Strength,
			Workers:       s.cfg.SolverWorkers,
		},
	}
}

// precedence returns the problem's precedence matrix through the shared
// matrix tier: keyed by the profile sub-digest, so any method over an
// already-seen profile reuses the stored W, and concurrent first sights of
// one profile build it exactly once. The matrix is immutable once built —
// every solver only reads it — which is what makes sharing across worker
// goroutines sound. ctx bounds only a follower's wait on another worker's
// flight (which may include disk I/O); the build itself runs to completion.
func (s *Server) precedence(ctx context.Context, pb *problem) (*ranking.Precedence, error) {
	// Feed the popularity model the stream this tier actually sees: profile
	// sub-digests of requests that missed the result tier.
	s.cheMatrix.Observe(pb.profDigest)
	v, _, _, err := s.prec.DoFetch(ctx, pb.profDigest, s.matrixFetch(pb), func() (any, int64, error) {
		w, err := ranking.NewPrecedence(pb.profile)
		if err != nil {
			return nil, 0, err
		}
		return w, w.Cells(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ranking.Precedence), nil
}

// solve runs one problem on the engine registry. ctx carries the request
// deadline; the Kemeny engines return best-so-far on expiry, so a partial
// result is still a valid (and for fair methods, feasible) ranking.
//
// The cached precedence matrix is wrapped in a manirank.Engine (a cheap
// three-pointer struct) so the service shares the exact dispatch path of
// the library and the CLI: every method — Borda included — consumes the
// shared W (BordaW / FairBordaW derive integer-identical point totals from
// W's row sums, so routing through the tier never changes an answer), the
// Result's PD loss divides the same integers whether computed from W or
// from the raw profile, and the partial flag is sampled by the registry
// immediately after the cancellable engines return (a deadline lapsing
// during audit bookkeeping can never mislabel a complete result and evict
// it from cacheability).
func (s *Server) solve(ctx context.Context, pb *problem) (*result, error) {
	w, err := s.precedence(ctx, pb)
	if err != nil {
		return nil, err
	}
	eng, err := manirank.NewEngineW(w, manirank.WithTable(pb.tab))
	if err != nil {
		return nil, err
	}
	sr, err := eng.Solve(ctx, pb.method, pb.targets,
		manirank.WithKemenyOptions(s.kemenyOptions(pb.opts)))
	if err != nil {
		return nil, err
	}
	return buildResult(sr, pb), nil
}

// buildResult lowers an engine Result onto the wire form shared by the
// stateless and session solve paths.
func buildResult(sr *manirank.Result, pb *problem) *result {
	res := &result{
		Ranking: sr.Ranking,
		Method:  pb.method.String(),
		PDLoss:  sr.PDLoss,
		Partial: sr.Partial,
	}
	if sr.Report != nil {
		arps := make(map[string]float64, len(sr.Report.ARPs))
		for i, a := range pb.tab.Attrs() {
			arps[a.Name] = sr.Report.ARPs[i]
		}
		res.Audit = &auditPayload{ARPs: arps, IRP: sr.Report.IRP}
	}
	return res
}

// deadline resolves a request's compute budget.
func (s *Server) deadline(req *AggregateRequest) time.Duration {
	d := s.cfg.DefaultDeadline
	if req.DeadlineMillis > 0 {
		d = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// admit queues pb for the worker pool and waits for its result. The compute
// context is detached from the requester: coalesced followers must not lose
// the computation because the leader's connection died, and the deadline
// bounds it regardless. The leader's trace is re-attached to the detached
// context explicitly so the worker's queue/solve spans land on it. run, when
// non-nil, replaces the stateless solve (see job.run).
func (s *Server) admit(tr *obs.Trace, pb *problem, budget time.Duration, run func(ctx context.Context) (*result, error)) (*result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	ctx = obs.WithTrace(ctx, tr)
	j := &job{pb: pb, ctx: ctx, enqueued: time.Now(), done: make(chan struct{}), run: run}
	// Count the job before the send: a worker may pop it (and decrement)
	// the instant the send lands, and the depth gauge must never go
	// negative. The rejection paths undo the increment.
	s.queued.Add(1)
	select {
	case s.jobs <- j:
	case <-s.quit:
		s.queued.Add(-1)
		return nil, ErrShuttingDown
	default:
		s.queued.Add(-1)
		return nil, ErrQueueFull
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		// The compute deadline lapsed. If the job is still queued behind
		// busy workers, abandon it and answer 504 now instead of holding
		// the connection until a worker pops (and then drops) it. If a
		// worker already claimed it, the cooperative cancellation bounds
		// the remaining solve time — wait for its best-so-far result.
		if j.abandon() {
			return nil, ErrExpiredInQueue
		}
		<-j.done
		return j.res, j.err
	case <-s.quit:
		// Close drains the queue and resolves every job; prefer its answer
		// when it already landed.
		select {
		case <-j.done:
			return j.res, j.err
		default:
			return nil, ErrShuttingDown
		}
	}
}

// Handler returns the service's HTTP mux: POST /v1/aggregate, the streaming
// session surface (POST /v1/session to create, POST /v1/session/{id} to
// mutate and re-solve, GET/DELETE /v1/session/{id}), GET /healthz, GET
// /statz (JSON), GET /metricsz (Prometheus text), GET /tracez (recent and
// slowest request traces, JSON).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/aggregate", s.handleAggregate)
	mux.HandleFunc("/v1/session", s.handleSessionCreate)
	mux.HandleFunc("/v1/session/", s.handleSession)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.fleet != nil {
		mux.HandleFunc(fleet.PathPrefix, s.handlePeer)
	}
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/tracez", s.handleTracez)
	return mux
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, errors.New("use POST"), start)
		return
	}
	var req AggregateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), start)
		return
	}
	pb, err := buildProblem(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err, start)
		return
	}
	digest := pb.digest
	budget := s.deadline(&req)

	// The request trace starts once the problem is valid (malformed bodies
	// have no stages worth attributing) and rides every context from here:
	// the follower wait, both cache tiers, the queue, and the solvers.
	tr := obs.NewTrace(pb.method.String(), digest[:12])
	s.cheResult.Observe(digest)

	// Followers wait at most their own budget for the leader's flight.
	waitCtx, cancelWait := context.WithTimeout(r.Context(), budget)
	defer cancelWait()
	waitCtx = obs.WithTrace(waitCtx, tr)
	v, hit, shared, err := s.cache.DoFetch(waitCtx, digest, s.resultFetch(digest), func() (any, bool, error) {
		res, err := s.admit(tr, pb, budget, nil)
		if err != nil {
			return nil, false, err
		}
		return res, !res.Partial, nil
	})
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrQueueFull):
			status = http.StatusTooManyRequests
		case errors.Is(err, ErrExpiredInQueue),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		case errors.Is(err, ErrShuttingDown):
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, r, status, err, start)
		s.finishTrace(tr)
		return
	}
	res := v.(*result)
	elapsed := time.Since(start)
	if hit {
		observeSeconds(s.histHit, elapsed)
	} else {
		observeSeconds(s.histSolve, elapsed)
		if !shared {
			// This node just paid a compute for a digest the ring may home
			// elsewhere: hand the owner a copy in the background so the next
			// non-owner's peer fetch finds it.
			s.pushResult(digest, res)
		}
	}
	resp := &AggregateResponse{
		result:    *res,
		Cached:    hit,
		Coalesced: shared,
		Digest:    digest,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	s.countStatus(http.StatusOK)
	s.log.Info("aggregate",
		"method", pb.method.String(),
		"digest", digest[:12],
		"n", pb.profile.N(),
		"rankers", len(pb.profile),
		"status", http.StatusOK,
		"cached", hit,
		"coalesced", shared,
		"partial", res.Partial,
		"elapsed_ms", resp.ElapsedMS,
		"queue_depth", s.queued.Load(),
	)
	endEncode := tr.StartSpan("encode")
	writeJSON(w, http.StatusOK, resp)
	endEncode()
	s.finishTrace(tr)
}

// finishTrace stamps a request trace's wall time, feeds its spans into the
// per-stage histograms, retains it in the /tracez ring, and — past the
// Config.TraceSlow threshold — logs the aggregated span breakdown.
func (s *Server) finishTrace(tr *obs.Trace) {
	wall := tr.Finish()
	spans := tr.Spans()
	for _, sp := range spans {
		if h, ok := s.stageHist[sp.Name]; ok {
			h.Observe(sp.Duration.Seconds())
		}
	}
	s.traces.Add(tr)
	if s.cfg.TraceSlow <= 0 || wall < s.cfg.TraceSlow {
		return
	}
	// Aggregate span durations per stage so the log line stays one line no
	// matter how many solver restarts the trace recorded.
	totals := make(map[string]time.Duration)
	order := make([]string, 0, 8)
	for _, sp := range spans {
		if _, seen := totals[sp.Name]; !seen {
			order = append(order, sp.Name)
		}
		totals[sp.Name] += sp.Duration
	}
	breakdown := make([]string, len(order))
	for i, name := range order {
		breakdown[i] = fmt.Sprintf("%s=%.2fms", name, float64(totals[name])/float64(time.Millisecond))
	}
	s.log.Warn("slow request",
		"trace_id", tr.ID,
		"method", tr.Name,
		"digest", tr.Detail,
		"wall_ms", float64(wall)/float64(time.Millisecond),
		"spans", strings.Join(breakdown, " "),
	)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statz is the /statz snapshot.
type Statz struct {
	UptimeSeconds float64           `json:"uptime_s"`
	Queue         QueueStatz        `json:"queue"`
	Cache         cache.Stats       `json:"cache"`
	CacheHitRate  float64           `json:"cache_hit_rate"`
	Matrix        cache.MatrixStats `json:"precedence_cache"`
	MatrixHitRate float64           `json:"precedence_hit_rate"`
	Requests      map[string]uint64 `json:"requests_by_status"`
	LatencySolve  LatencySnapshot   `json:"latency_solve"`
	LatencyHit    LatencySnapshot   `json:"latency_hit"`
	// LatencyByMethod breaks pure solver time (queueing and cache layers
	// excluded) down per method, so a speedup in one solver family — e.g. the
	// incremental parity auditor in the fair methods — is visible in serving
	// rather than only in benchmarks.
	LatencyByMethod map[string]LatencySnapshot `json:"latency_solve_by_method"`
	// Sessions reports the streaming-session surface.
	Sessions SessionStatz `json:"sessions"`
	// Fleet reports the peering layer; omitted on a single node.
	Fleet *FleetStatz `json:"fleet,omitempty"`
}

// SessionStatz reports the streaming-session surface: live sessions and
// operation counts (ops with no traffic are omitted, matching the
// requests_by_status shape).
type SessionStatz struct {
	Active int               `json:"active"`
	Ops    map[string]uint64 `json:"ops"`
}

// QueueStatz reports the admission layer.
type QueueStatz struct {
	Depth    int64 `json:"depth"`
	Capacity int   `json:"capacity"`
	InFlight int64 `json:"in_flight"`
	Workers  int   `json:"workers"`
}

// StatzSnapshot assembles the /statz payload (exported for the load
// generator and tests). Every number is read from the same obs structs
// the registry exports at /metricsz; only the rendering differs. Status
// and method entries appear once they have traffic, preserving the
// pre-registry JSON shape.
func (s *Server) StatzSnapshot() Statz {
	cs := s.cache.Stats()
	ms := s.prec.Stats()
	st := Statz{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Queue: QueueStatz{
			Depth:    s.queued.Load(),
			Capacity: s.cfg.QueueDepth,
			InFlight: s.inFlight.Load(),
			Workers:  s.cfg.Workers,
		},
		Cache:           cs,
		CacheHitRate:    cs.HitRate(),
		Matrix:          ms,
		MatrixHitRate:   ms.HitRate(),
		Requests:        map[string]uint64{},
		LatencySolve:    latencySnapshot(s.histSolve),
		LatencyHit:      latencySnapshot(s.histHit),
		LatencyByMethod: map[string]LatencySnapshot{},
	}
	for code, c := range s.status {
		if v := c.Value(); v > 0 {
			st.Requests[strconv.Itoa(code)] = v
		}
	}
	if v := s.statusOther.Value(); v > 0 {
		st.Requests["other"] = v
	}
	for m, h := range s.methodHist {
		if h.Count() > 0 {
			st.LatencyByMethod[m] = latencySnapshot(h)
		}
	}
	s.sessMu.Lock()
	st.Sessions.Active = len(s.sessions)
	s.sessMu.Unlock()
	st.Sessions.Ops = map[string]uint64{}
	for op, c := range s.sessionOps {
		if v := c.Value(); v > 0 {
			st.Sessions.Ops[op] = v
		}
	}
	st.Fleet = s.fleetStatz()
	return st
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatzSnapshot())
}

// handleMetricsz serves the registry in Prometheus text exposition format.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// Tracez is the /tracez payload: the most recent traces (newest first)
// and the slowest retained ones (descending wall time).
type Tracez struct {
	// Recent is the newest-first recent-trace ring.
	Recent []obs.TraceSnapshot `json:"recent"`
	// Slowest is the slowest-N set, descending by wall time.
	Slowest []obs.TraceSnapshot `json:"slowest"`
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	recent, slowest := s.traces.Snapshot()
	writeJSON(w, http.StatusOK, Tracez{Recent: recent, Slowest: slowest})
}

// countStatus bumps the pre-registered counter for status (or the "other"
// series for anything outside the handler's known set).
func (s *Server) countStatus(status int) {
	if c, ok := s.status[status]; ok {
		c.Inc()
		return
	}
	s.statusOther.Inc()
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error, start time.Time) {
	s.countStatus(status)
	s.log.Warn("aggregate error",
		"path", r.URL.Path,
		"status", status,
		"error", err.Error(),
		"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond),
		"queue_depth", s.queued.Load(),
	)
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
