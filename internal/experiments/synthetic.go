package experiments

import (
	"fmt"

	"manirank/internal/aggregate"
	"manirank/internal/core"
	"manirank/internal/fairness"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

// Table1 regenerates paper Table I: the fairness metrics of the Low/Medium/
// High-Fair Mallows modal rankings (|R|=150 rankings are later drawn over 90
// candidates, 15 intersectional groups from Race(5) x Gender(3)).
func Table1(cfg Config) error {
	tab, err := unfairgen.PaperTable(90)
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Mallows Dataset\tARP_Gender\tARP_Race\tIRP")
	for _, spec := range unfairgen.TableIDatasets() {
		modal, err := unfairgen.TargetModal(tab, spec.Levels)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		rep := fairness.Audit(modal, tab)
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", spec.Name, rep.ARPs[0], rep.ARPs[1], rep.IRP)
	}
	return tw.Flush()
}

// Fig3 regenerates paper Figure 3: comparing alternate group fairness
// constraint sets inside Fair-Kemeny (protected-attribute only, intersection
// only, full MANI-Rank) plus fairness-unaware Kemeny, across the three
// Table I datasets and the theta consensus sweep, at Delta = 0.1. For each
// cell it reports the consensus ranking's ARP Gender / ARP Race / IRP.
func Fig3(cfg Config) error {
	rankers := 150
	if cfg.Quick {
		rankers = 40
	}
	rng := cfg.rng()
	kopts := kemenyOptions()
	approaches := []struct {
		name    string
		targets func(c *runCtx) []core.Target
	}{
		{"Kemeny (unaware)", func(*runCtx) []core.Target { return nil }},
		{"Attribute-only", func(c *runCtx) []core.Target { return core.AttributeTargets(c.tab, 0.1) }},
		{"Intersection-only", func(c *runCtx) []core.Target { return core.IntersectionTarget(c.tab, 0.1) }},
		{"MANI-Rank", func(c *runCtx) []core.Target { return core.Targets(c.tab, 0.1) }},
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Dataset\tTheta\tApproach\tARP_Gender\tARP_Race\tIRP")
	for _, spec := range unfairgen.TableIDatasets() {
		tab, modal, err := tableIModal(spec.Name)
		if err != nil {
			return err
		}
		for _, theta := range thetas {
			p := sampleProfile(modal, theta, rankers, rng)
			ctx, err := newRunCtx(p, tab, 0.1)
			if err != nil {
				return err
			}
			for _, ap := range approaches {
				targets := ap.targets(ctx)
				var r ranking.Ranking
				if len(targets) == 0 {
					r = aggregate.Kemeny(ctx.w, kopts)
				} else {
					r, err = core.FairKemenyW(ctx.w, targets, core.Options{Kemeny: kopts})
					if err != nil {
						return fmt.Errorf("experiments: fig3 %s theta=%.1f %s: %w", spec.Name, theta, ap.name, err)
					}
				}
				fmt.Fprintf(tw, "%s\t%.1f\t%s\t%s\n", spec.Name, theta, ap.name, auditCols(r, tab))
			}
		}
	}
	return tw.Flush()
}

// Fig4 regenerates paper Figure 4: the eight-method comparison on the
// Low-Fair dataset with Delta = 0.1, reporting PD loss, ARP Gender, ARP
// Race and IRP for each theta.
func Fig4(cfg Config) error {
	rankers := 150
	if cfg.Quick {
		rankers = 40
	}
	rng := cfg.rng()
	tab, modal, err := tableIModal("Low-Fair")
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Theta\tMethod\tPD_Loss\tARP_Gender\tARP_Race\tIRP")
	for _, theta := range thetas {
		p := sampleProfile(modal, theta, rankers, rng)
		ctx, err := newRunCtx(p, tab, 0.1)
		if err != nil {
			return err
		}
		for _, m := range allMethods() {
			r, err := m.Run(ctx)
			if err != nil {
				return fmt.Errorf("experiments: fig4 theta=%.1f %s: %w", theta, m.Name, err)
			}
			fmt.Fprintf(tw, "%.1f\t(%s) %s\t%.3f\t%s\n", theta, m.ID, m.Name, ctx.w.PDLoss(r), auditCols(r, tab))
		}
	}
	return tw.Flush()
}

// Fig5 regenerates paper Figure 5, both panels. Left: Fair-Kemeny's Price of
// Fairness versus theta on the three Table I datasets (Delta = 0.1). Right:
// PoF versus the Delta parameter on the Low-Fair dataset at theta = 0.6 for
// the four proposed methods plus Correct-Fairest-Perm.
func Fig5(cfg Config) error {
	rankers := 150
	if cfg.Quick {
		rankers = 40
	}
	rng := cfg.rng()
	kopts := kemenyOptions()
	out := cfg.out()

	tw := newTabWriter(out)
	fmt.Fprintln(tw, "Panel A: Fair-Kemeny PoF vs theta (Delta = 0.1)")
	fmt.Fprintln(tw, "Dataset\tTheta\tPoF")
	for _, spec := range unfairgen.TableIDatasets() {
		tab, modal, err := tableIModal(spec.Name)
		if err != nil {
			return err
		}
		for _, theta := range thetas {
			p := sampleProfile(modal, theta, rankers, rng)
			ctx, err := newRunCtx(p, tab, 0.1)
			if err != nil {
				return err
			}
			unfair := aggregate.Kemeny(ctx.w, kopts)
			fair, err := core.FairKemenyW(ctx.w, ctx.targets, core.Options{Kemeny: kopts})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%.1f\t%.4f\n", spec.Name, theta, core.PriceOfFairnessW(ctx.w, fair, unfair))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	tw = newTabWriter(out)
	fmt.Fprintln(tw, "\nPanel B: Delta vs PoF (Low-Fair, theta = 0.6)")
	fmt.Fprintln(tw, "Delta\tMethod\tPoF")
	tab, modal, err := tableIModal("Low-Fair")
	if err != nil {
		return err
	}
	p := sampleProfile(modal, 0.6, rankers, rng)
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return err
	}
	unfair := aggregate.Kemeny(w, kopts)
	deltaMethods := []struct {
		id   string
		name string
		run  func(targets []core.Target) (ranking.Ranking, error)
	}{
		{"A1", "Fair-Kemeny", func(t []core.Target) (ranking.Ranking, error) {
			return core.FairKemenyW(w, t, core.Options{Kemeny: kopts})
		}},
		{"A2", "Fair-Schulze", func(t []core.Target) (ranking.Ranking, error) { return core.FairSchulzeW(w, t) }},
		{"A3", "Fair-Borda", func(t []core.Target) (ranking.Ranking, error) { return core.FairBorda(p, t) }},
		{"A4", "Fair-Copeland", func(t []core.Target) (ranking.Ranking, error) { return core.FairCopelandW(w, t) }},
		{"B4", "Correct-Fairest-Perm", func(t []core.Target) (ranking.Ranking, error) {
			return core.CorrectFairestPerm(p, t)
		}},
	}
	for _, delta := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		targets := core.Targets(tab, delta)
		for _, dm := range deltaMethods {
			fair, err := dm.run(targets)
			if err != nil {
				return fmt.Errorf("experiments: fig5 delta=%.1f %s: %w", delta, dm.name, err)
			}
			fmt.Fprintf(tw, "%.1f\t(%s) %s\t%.4f\n", delta, dm.id, dm.name, core.PriceOfFairnessW(w, fair, unfair))
		}
	}
	return tw.Flush()
}

// Fig2 regenerates the paper's Figure 2 contrast on the admissions example:
// the fairness-unaware Kemeny consensus versus the MANI-Rank consensus
// (Fair-Kemeny at Delta = 0.1) over the 45-candidate committee profile.
func Fig2(cfg Config) error {
	study, err := unfairgen.NewAdmissionsStudy(cfg.Seed + 20)
	if err != nil {
		return err
	}
	ctx, err := newRunCtx(study.Profile, study.Table, 0.1)
	if err != nil {
		return err
	}
	kopts := kemenyOptions()
	kem := aggregate.Kemeny(ctx.w, kopts)
	fair, err := core.FairKemenyW(ctx.w, ctx.targets, core.Options{Kemeny: kopts})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Consensus\tARP_Gender\tARP_Race\tIRP\tPD_Loss")
	fmt.Fprintf(tw, "Kemeny\t%s\t%.3f\n", auditCols(kem, study.Table), ctx.w.PDLoss(kem))
	fmt.Fprintf(tw, "MANI-Rank\t%s\t%.3f\n", auditCols(fair, study.Table), ctx.w.PDLoss(fair))
	return tw.Flush()
}
