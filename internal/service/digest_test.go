package service

import (
	"encoding/json"
	"testing"
)

// baseRequest returns a representative request touching every digest field.
func baseRequest() *AggregateRequest {
	return &AggregateRequest{
		Method:  "fair-kemeny",
		Profile: [][]int{{0, 1, 2, 3}, {1, 0, 3, 2}, {0, 2, 1, 3}},
		Attributes: []AttributeSpec{
			{Name: "Gender", Values: []string{"M", "W"}, Of: []int{0, 1, 0, 1}},
			{Name: "Race", Values: []string{"A", "B"}, Of: []int{0, 0, 1, 1}},
		},
		Delta:      0.2,
		Thresholds: map[string]float64{"Gender": 0.1, "Race": 0.3, "intersection": 0.25},
		Options:    SolverOptions{Seed: 7, Perturbations: 16, Strength: 4, ExactThreshold: 10, MaxNodes: 1000},
	}
}

// TestDigestStableAcrossMapIterationOrder rebuilds the thresholds map many
// times with different insertion orders (and therefore different internal
// layouts Go will iterate differently) and checks the digest never moves.
// This is the determinism property the result cache's correctness rests on.
func TestDigestStableAcrossMapIterationOrder(t *testing.T) {
	want := Digest(baseRequest())
	names := []string{"Gender", "Race", "intersection", "k3", "k4", "k5", "k6", "k7"}
	vals := map[string]float64{"Gender": 0.1, "Race": 0.3, "intersection": 0.25,
		"k3": 0.3, "k4": 0.4, "k5": 0.5, "k6": 0.6, "k7": 0.7}
	wide := func(order []int) string {
		req := baseRequest()
		req.Thresholds = make(map[string]float64)
		for _, i := range order {
			req.Thresholds[names[i]] = vals[names[i]]
		}
		return Digest(req)
	}
	forward := wide([]int{0, 1, 2, 3, 4, 5, 6, 7})
	for trial := 0; trial < 50; trial++ {
		// Rotate the insertion order; identical contents must digest alike.
		order := make([]int, len(names))
		for i := range order {
			order[i] = (i + trial) % len(names)
		}
		if got := wide(order); got != forward {
			t.Fatalf("digest moved with insertion order %v: %s != %s", order, got, forward)
		}
	}
	for trial := 0; trial < 20; trial++ {
		if got := Digest(baseRequest()); got != want {
			t.Fatalf("digest of identical request moved: %s != %s", got, want)
		}
	}
}

// TestDigestStableAcrossJSONRoundTrip: a request decoded from JSON (any key
// order) digests identically to the in-memory original.
func TestDigestStableAcrossJSONRoundTrip(t *testing.T) {
	req := baseRequest()
	want := Digest(req)
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var decoded AggregateRequest
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if got := Digest(&decoded); got != want {
		t.Fatalf("digest moved across JSON round trip: %s != %s", got, want)
	}
	// Same request spelled with reordered JSON keys.
	reordered := `{
		"options": {"max_nodes": 1000, "seed": 7, "strength": 4, "perturbations": 16, "exact_threshold": 10},
		"thresholds": {"intersection": 0.25, "Race": 0.3, "Gender": 0.1},
		"delta": 0.2,
		"attributes": [
			{"of": [0,1,0,1], "values": ["M","W"], "name": "Gender"},
			{"of": [0,0,1,1], "values": ["A","B"], "name": "Race"}
		],
		"profile": [[0,1,2,3],[1,0,3,2],[0,2,1,3]],
		"method": "fair-kemeny"
	}`
	var decoded2 AggregateRequest
	if err := json.Unmarshal([]byte(reordered), &decoded2); err != nil {
		t.Fatal(err)
	}
	if got := Digest(&decoded2); got != want {
		t.Fatalf("digest moved across reordered JSON: %s != %s", got, want)
	}
}

// TestDigestSeparatesSemanticChanges: every field that influences the result
// must separate the digest; the deadline must not.
func TestDigestSeparatesSemanticChanges(t *testing.T) {
	want := Digest(baseRequest())
	mutations := map[string]func(*AggregateRequest){
		"method":         func(r *AggregateRequest) { r.Method = "fair-borda" },
		"profile row":    func(r *AggregateRequest) { r.Profile[2] = []int{3, 2, 1, 0} },
		"profile size":   func(r *AggregateRequest) { r.Profile = r.Profile[:2] },
		"delta":          func(r *AggregateRequest) { r.Delta = 0.21 },
		"threshold val":  func(r *AggregateRequest) { r.Thresholds["Gender"] = 0.11 },
		"threshold key":  func(r *AggregateRequest) { delete(r.Thresholds, "Race") },
		"attribute name": func(r *AggregateRequest) { r.Attributes[0].Name = "Sex" },
		"attribute of":   func(r *AggregateRequest) { r.Attributes[0].Of = []int{1, 0, 1, 0} },
		"attr values":    func(r *AggregateRequest) { r.Attributes[0].Values = []string{"M", "X"} },
		"seed":           func(r *AggregateRequest) { r.Options.Seed = 8 },
		"perturbations":  func(r *AggregateRequest) { r.Options.Perturbations = 17 },
		"strength":       func(r *AggregateRequest) { r.Options.Strength = 5 },
		"exact":          func(r *AggregateRequest) { r.Options.ExactThreshold = 11 },
		"max nodes":      func(r *AggregateRequest) { r.Options.MaxNodes = 1001 },
	}
	for name, mutate := range mutations {
		req := baseRequest()
		mutate(req)
		if Digest(req) == want {
			t.Errorf("mutation %q did not change the digest", name)
		}
	}
	req := baseRequest()
	req.DeadlineMillis = 12345
	if Digest(req) != want {
		t.Error("deadline_ms changed the digest; deadlines must not shard the cache")
	}
	// The intersection threshold key is case-insensitive at build time, so
	// its spelling must not shard the cache either — canonicalised before
	// the sorted serialisation.
	req = baseRequest()
	delete(req.Thresholds, "intersection")
	req.Thresholds["Intersection"] = 0.25
	if Digest(req) != want {
		t.Error("intersection-key case changed the digest despite identical semantics")
	}
}

// TestDigestNoFieldConcatenationCollisions: length prefixes must keep
// adjacent variable-length fields separated.
func TestDigestNoFieldConcatenationCollisions(t *testing.T) {
	a := &AggregateRequest{Method: "borda", Profile: [][]int{{0, 1}, {1, 0}},
		Attributes: []AttributeSpec{{Name: "ab", Values: []string{"cd"}, Of: []int{0, 0}}}}
	b := &AggregateRequest{Method: "borda", Profile: [][]int{{0, 1}, {1, 0}},
		Attributes: []AttributeSpec{{Name: "abc", Values: []string{"d"}, Of: []int{0, 0}}}}
	if Digest(a) == Digest(b) {
		t.Fatal("shifted attribute name/value boundary collided")
	}
}

// TestDigestCanonicalisesMethodSpelling pins the method-name canonical
// form to what manirank.ParseMethod accepts: padding and case must not
// fragment the cache — " Fair-Kemeny " and "fair-kemeny" are one entry,
// one coalesced flight.
func TestDigestCanonicalisesMethodSpelling(t *testing.T) {
	want := Digest(baseRequest())
	for _, spelling := range []string{"Fair-Kemeny", " fair-kemeny ", "\tFAIR-KEMENY\n"} {
		req := baseRequest()
		req.Method = spelling
		if got := Digest(req); got != want {
			t.Errorf("method spelling %q digests to %s, canonical digests to %s", spelling, got, want)
		}
	}
}
