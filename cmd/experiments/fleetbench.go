package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"manirank/internal/fleet"
	"manirank/internal/service"
	"manirank/internal/service/loadgen"
)

// fleetBenchReport is BENCH_10.json: the same Zipf-skewed workload replayed
// against a single node (the BENCH_4/BENCH_8-shaped control) and against an
// N-replica fleet with rendezvous-sharded cache tiers, plus a degradation
// phase that kills one replica mid-load. The columns the fleet must win on:
// fleet-wide result hit rate above the single-node control at the same skew
// (the fleet pools its per-node capacity into one sharded tier), and total
// matrix builds per distinct profile near 1.0 (per-ring single-compute:
// only a digest's owner builds, everyone else peer-fetches).
type fleetBenchReport struct {
	Candidates int     `json:"candidates"`
	Rankers    int     `json:"rankers"`
	Profiles   int     `json:"distinct_profiles"`
	Clients    int     `json:"clients"`
	CacheSize  int     `json:"cache_size"`
	Workers    int     `json:"workers"`
	FleetNodes int     `json:"fleet_nodes"`
	ZipfS      float64 `json:"zipf_s"`
	// Phases: "control" is one node at the same per-node cache size;
	// "fleet" is the N-replica run; "degraded" replays against the fleet's
	// survivors while one replica is killed mid-load.
	Phases map[string]loadgen.Result `json:"phases"`
	// BuildsPerProfile is the fleet phase's matrix builds divided by the
	// distinct-profile count — the per-ring single-compute figure of merit
	// (1.0 is perfect: every profile built exactly once fleet-wide).
	BuildsPerProfile float64 `json:"builds_per_unique_profile"`
	// KilledMidRun records whether the degraded phase's kill actually landed
	// while requests were in flight; false means the run drained before the
	// timer fired (too few requests for this machine) and the phase only
	// proved post-kill serving, not mid-load loss.
	KilledMidRun bool `json:"killed_mid_run"`
}

// fleetNode is one in-process replica: its listener, server, and ring.
type fleetNode struct {
	url     string
	ln      net.Listener
	ring    *fleet.Fleet
	srv     *service.Server
	httpSrv *http.Server
}

// startFleet boots n replicas on loopback listeners, each owning a ring
// over the full member list. Listeners are bound first so every node knows
// the complete URL set before its fleet is constructed.
func startFleet(n, cacheSize int) ([]*fleetNode, error) {
	nodes := make([]*fleetNode, n)
	urls := make([]string, n)
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stopFleet(nodes)
			return nil, err
		}
		nodes[i] = &fleetNode{ln: ln, url: "http://" + ln.Addr().String()}
		urls[i] = nodes[i].url
	}
	for i, node := range nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		ring, err := fleet.New(fleet.Config{
			Self:  node.url,
			Peers: peers,
			// Fast probes so the degraded phase re-routes within a few
			// hundred milliseconds of the kill instead of the 2s default.
			ProbeInterval: 100 * time.Millisecond,
		})
		if err != nil {
			stopFleet(nodes)
			return nil, err
		}
		node.ring = ring
		srv, err := service.New(service.Config{
			CacheSize: cacheSize,
			Fleet:     ring,
			Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err != nil {
			ring.Close()
			stopFleet(nodes)
			return nil, err
		}
		node.srv = srv
		node.httpSrv = &http.Server{Handler: srv.Handler()}
		go node.httpSrv.Serve(node.ln)
	}
	return nodes, nil
}

// stopFleet tears down whatever startFleet managed to boot, in the reverse
// of a node's own dependency order (listener, then server, then ring).
func stopFleet(nodes []*fleetNode) {
	for _, node := range nodes {
		if node == nil {
			continue
		}
		killNode(node)
	}
}

// killNode stops one replica abruptly: in-flight connections are dropped,
// not drained, which is the failure the degraded phase measures.
func killNode(node *fleetNode) {
	if node.httpSrv != nil {
		node.httpSrv.Close()
	} else {
		node.ln.Close()
	}
	if node.srv != nil {
		node.srv.Close()
	}
	if node.ring != nil {
		node.ring.Close()
	}
}

// runFleetBench measures the rendezvous-sharded fleet (DESIGN.md §13 /
// BENCH_10) against its single-node control and under the loss of one
// replica mid-load.
func runFleetBench(seed int64, requests, clients, profiles, cacheSize, fleetNodes int) error {
	if fleetNodes < 2 {
		return fmt.Errorf("fleet-bench: need at least 2 nodes, got %d", fleetNodes)
	}
	report := fleetBenchReport{
		Candidates: 60,
		Rankers:    40,
		Profiles:   profiles,
		Clients:    clients,
		CacheSize:  cacheSize,
		Workers:    runtime.GOMAXPROCS(0),
		FleetNodes: fleetNodes,
		ZipfS:      1.2, // the BENCH_4/BENCH_8 moderate-skew cell
		Phases:     map[string]loadgen.Result{},
	}
	baseCfg := loadgen.Config{
		Clients:  clients,
		Requests: requests,
		Profiles: profiles,
		ZipfS:    report.ZipfS,
		Seed:     seed,
	}

	// Control: one node, same per-node cache size, same request stream.
	control, err := startFleet(1, cacheSize)
	if err != nil {
		return err
	}
	cfg := baseCfg
	cfg.URL = control[0].url
	res, err := loadgen.Run(cfg)
	stopFleet(control)
	if err != nil {
		return fmt.Errorf("fleet-bench control: %w", err)
	}
	if res.Errors > 0 {
		return fmt.Errorf("fleet-bench control: %d request errors", res.Errors)
	}
	report.Phases["control"] = res
	fmt.Fprintf(os.Stderr, "fleet-bench control (1 node): %.1f req/s, hit rate %.2f, matrix builds %d, p50 %.1fms, p99 %.1fms\n",
		res.Throughput, res.HitRate, res.MatrixBuilds, res.P50LatencyMS, res.P99LatencyMS)

	// Fleet: N replicas behind a round-robin client spread.
	nodes, err := startFleet(fleetNodes, cacheSize)
	if err != nil {
		return err
	}
	cfg = baseCfg
	cfg.URLs = fleetURLs(nodes)
	res, err = loadgen.Run(cfg)
	if err != nil {
		stopFleet(nodes)
		return fmt.Errorf("fleet-bench fleet: %w", err)
	}
	if res.Errors > 0 {
		stopFleet(nodes)
		return fmt.Errorf("fleet-bench fleet: %d request errors", res.Errors)
	}
	report.Phases["fleet"] = res
	report.BuildsPerProfile = float64(res.MatrixBuilds) / float64(profiles)
	fmt.Fprintf(os.Stderr, "fleet-bench fleet (%d nodes): %.1f req/s, hit rate %.2f (control %.2f), matrix builds %d (%.2f per profile), result peer hits %d, matrix peer hits %d, peer errors %d\n",
		fleetNodes, res.Throughput, res.HitRate, report.Phases["control"].HitRate,
		res.MatrixBuilds, report.BuildsPerProfile, res.ResultPeerHits, res.MatrixPeerHits, res.PeerErrors)
	for _, n := range res.Nodes {
		fmt.Fprintf(os.Stderr, "fleet-bench   node %s: hit rate %.2f (Che predicted %.2f, drift %+.2f), builds %d, peer hits %d\n",
			n.URL, n.HitRate, n.PredictedHitRate, n.HitRateDrift, n.MatrixBuilds, n.ResultPeerHits+n.MatrixPeerHits)
	}
	if res.ResultPeerHits == 0 {
		stopFleet(nodes)
		return fmt.Errorf("fleet-bench: no result peer hits — the ring never served a remote read")
	}
	// Per-ring single-compute: the whole fleet should have built each
	// distinct profile's matrix about once. 1.5 leaves room for hedge and
	// startup races without masking a broken owner route (which would land
	// near the node count).
	if report.BuildsPerProfile > 1.5 {
		stopFleet(nodes)
		return fmt.Errorf("fleet-bench: %.2f matrix builds per distinct profile — per-ring single-compute is not holding", report.BuildsPerProfile)
	}

	// Degraded: reuse the warm fleet, drive only the survivors, and kill
	// the last replica mid-run. Survivors must absorb its key range —
	// peer reads to the corpse fail fast and degrade to local compute, so
	// every request still answers.
	victim, survivors := nodes[len(nodes)-1], nodes[:len(nodes)-1]
	killTimer := time.AfterFunc(200*time.Millisecond, func() { killNode(victim) })
	cfg = baseCfg
	cfg.URLs = fleetURLs(survivors)
	cfg.Seed = seed + 1 // fresh draws so the phase is not a pure replay of warm keys
	res, err = loadgen.Run(cfg)
	report.KilledMidRun = !killTimer.Stop()
	if !report.KilledMidRun {
		killNode(victim) // run ended before the timer: kill now so teardown is single-path
	}
	stopFleet(survivors)
	if err != nil {
		return fmt.Errorf("fleet-bench degraded: %w", err)
	}
	if res.Errors > 0 {
		return fmt.Errorf("fleet-bench degraded: %d request errors — survivors failed requests after the kill", res.Errors)
	}
	report.Phases["degraded"] = res
	fmt.Fprintf(os.Stderr, "fleet-bench degraded (%d of %d nodes, one killed at 200ms, mid-run=%v): %.1f req/s, hit rate %.2f, peer errors %d, 0 request errors\n",
		len(survivors), fleetNodes, report.KilledMidRun, res.Throughput, res.HitRate, res.PeerErrors)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func fleetURLs(nodes []*fleetNode) []string {
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url
	}
	return urls
}
