package mallows

import (
	"math"
	"math/rand"
	"testing"

	"manirank/internal/ranking"
)

func TestSamplesAreValidPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	modal := ranking.Random(20, rng)
	m := MustNew(modal, 0.5)
	for i := 0; i < 50; i++ {
		if !m.Sample(rng).IsValid() {
			t.Fatal("invalid sample")
		}
	}
}

func TestHighThetaConcentratesOnModal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	modal := ranking.Random(15, rng)
	m := MustNew(modal, 12) // phi = e^-12: essentially deterministic
	for i := 0; i < 20; i++ {
		s := m.Sample(rng)
		if !s.Equal(modal) {
			t.Fatalf("theta=12 sample deviates from modal: %v vs %v", s, modal)
		}
	}
}

func TestThetaZeroIsUniform(t *testing.T) {
	// With n = 3 and theta = 0 all 6 permutations are equally likely.
	rng := rand.New(rand.NewSource(3))
	m := MustNew(ranking.New(3), 0)
	counts := map[string]int{}
	const trials = 6000
	for i := 0; i < trials; i++ {
		counts[m.Sample(rng).String()]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		if c < trials/6-200 || c > trials/6+200 {
			t.Errorf("permutation %q count %d deviates from uniform %d", perm, c, trials/6)
		}
	}
}

func TestMeanDistanceDecreasesInTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	modal := ranking.Random(30, rng)
	var prev float64 = math.Inf(1)
	for _, theta := range []float64{0.1, 0.4, 0.8, 1.5} {
		m := MustNew(modal, theta)
		sum := 0
		const trials = 300
		for i := 0; i < trials; i++ {
			sum += ranking.KendallTau(m.Sample(rng), modal)
		}
		mean := float64(sum) / trials
		if mean >= prev {
			t.Fatalf("mean distance %.1f at theta=%v not below %.1f", mean, theta, prev)
		}
		prev = mean
	}
}

func TestEmpiricalMeanMatchesExpectedKendall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	modal := ranking.Random(25, rng)
	for _, theta := range []float64{0.2, 0.6, 1.0} {
		m := MustNew(modal, theta)
		want := m.ExpectedKendall()
		sum := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			sum += ranking.KendallTau(m.Sample(rng), modal)
		}
		got := float64(sum) / trials
		// Standard error at n=25 is a few pairs; allow 5%.
		if math.Abs(got-want) > 0.05*want+1 {
			t.Errorf("theta=%v: empirical mean %.2f, expected %.2f", theta, got, want)
		}
	}
}

func TestExpectedKendallClosedFormAtThetaZero(t *testing.T) {
	// Uniform permutations have E[d] = n(n-1)/4.
	m := MustNew(ranking.New(10), 0)
	want := float64(10*9) / 4
	if got := m.ExpectedKendall(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedKendall = %v, want %v", got, want)
	}
}

func TestSampleProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := MustNew(ranking.New(12), 0.7)
	p := m.SampleProfile(40, rng)
	if len(p) != 40 {
		t.Fatalf("profile size %d", len(p))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsInvalidInputs(t *testing.T) {
	if _, err := New(ranking.Ranking{0, 0, 1}, 0.5); err == nil {
		t.Error("invalid modal accepted")
	}
	if _, err := New(ranking.New(5), -1); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := New(ranking.New(5), math.NaN()); err == nil {
		t.Error("NaN theta accepted")
	}
}

func TestModalAccessorsAndClone(t *testing.T) {
	modal := ranking.Ranking{2, 0, 1}
	m := MustNew(modal, 0.3)
	if m.N() != 3 || m.Theta() != 0.3 {
		t.Fatal("accessors wrong")
	}
	got := m.Modal()
	got[0] = 99
	if m.Modal()[0] == 99 {
		t.Fatal("Modal() exposes internal storage")
	}
}
