// Package experiments regenerates every table and figure of the MANI-Rank
// paper's evaluation (Section IV and the appendix): one runner per artifact,
// each printing the same rows/series the paper reports. DESIGN.md maps each
// experiment id to its workload, parameters, and modules; EXPERIMENTS.md
// records paper-reported versus measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"manirank"
	"manirank/internal/aggregate"
	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

// Config tunes an experiment run. The zero value runs at paper scale with
// seed 1 on every available CPU.
type Config struct {
	// Seed drives every random component; runs are reproducible per seed.
	// Each method x theta x size cell derives its own RNG from Seed and its
	// coordinates, so results are identical for every Workers value.
	Seed int64
	// Out receives the printed table (defaults to io.Discard if nil; the
	// CLI passes os.Stdout).
	Out io.Writer
	// Quick shrinks the heaviest workloads (fewer rankers, smaller candidate
	// counts) so the full suite finishes in seconds — used by `go test` and
	// the benchmark harness. Paper-scale runs leave it false.
	Quick bool
	// Workers bounds the experiment worker pool: independent cells of each
	// figure/table run concurrently on up to this many goroutines. 0 means
	// one per CPU; 1 runs cells sequentially. Deterministic outputs
	// (rankings, losses, parities) are bitwise identical across values;
	// per-cell Runtime columns in the scalability artifacts are wall-clock
	// and contend under parallelism — time with Workers: 1. Kernel-level
	// parallelism inside a cell (precedence-matrix sharding) is governed
	// separately by ranking.DefaultWorkers; cmd/experiments sets both from
	// its -workers flag so `-workers 1` is fully sequential.
	Workers int
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// thetas is the consensus sweep used throughout the paper's figures.
var thetas = []float64{0.2, 0.4, 0.6, 0.8}

// kemenyOptions returns solver options sized to the experiment scale. Solver
// restarts are pinned sequential inside the harness: the cell pool already
// owns the machine's parallelism, and a restart pool per cell would
// oversubscribe the CPUs multiplicatively and contend the wall-clock Runtime
// columns the scalability artifacts report. Restart sharding
// (kemeny.Options.Workers) is for single-solve surfaces — manirank
// aggregate and library callers. Solver output is identical for every pool
// width, so this pin never changes a table.
func (c Config) kemenyOptions() aggregate.KemenyOptions {
	return aggregate.KemenyOptions{
		ExactThreshold: 12,
		MaxNodes:       2_000_000,
		Heuristic:      kemeny.Options{Workers: 1},
	}
}

// runCtx bundles one consensus problem instance: the profile, its Engine
// (which owns the shared precedence matrix), and the MANI-Rank targets.
type runCtx struct {
	p       ranking.Profile
	eng     *manirank.Engine
	w       *ranking.Precedence
	tab     *attribute.Table
	targets []core.Target
}

func newRunCtx(p ranking.Profile, tab *attribute.Table, delta float64) (*runCtx, error) {
	eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
	if err != nil {
		return nil, err
	}
	return &runCtx{p: p, eng: eng, w: eng.Precedence(), tab: tab, targets: core.Targets(tab, delta)}, nil
}

// solve routes one method through the instance's Engine with the harness's
// pinned solver options (see Config.kemenyOptions).
func (c *runCtx) solve(cfg Config, m manirank.Method, targets []core.Target) (*manirank.Result, error) {
	return c.eng.Solve(context.Background(), m, targets,
		manirank.WithKemenyOptions(cfg.kemenyOptions()))
}

// timedSolve runs one scalability cell and returns its runtime the way the
// paper measures each method (PD loss and auditing are always off-clock,
// as in the legacy harness):
//
//   - Methods that consume the shared precedence matrix (fair-kemeny,
//     fair-schulze, fair-copeland, kemeny) are timed cold: a fresh matrix
//     construction per cell plus the solve, matching their legacy
//     self-contained runs.
//   - Fair-Borda is timed on the O(n·|R|) profile path (core.FairBorda,
//     the same internal entry its deprecated wrapper delegates to): the
//     paper's claim for it — Fig. 6/7 and Tables II/III — is precisely
//     that it scales without a matrix, so routing its *timed* cells over
//     the registry's shared W would change the measured complexity. The
//     ranking is bitwise identical either way (BordaW property tests), so
//     only the clock, never the data, takes this path.
//   - The profile-consuming baselines (kemeny-weighted, pick-fairest-perm,
//     correct-fairest-perm) never built the shared matrix either —
//     Kemeny-Weighted constructs its own weighted one inside the solve —
//     so they run on the cell's already-built Engine and report the solve
//     time alone.
//
// Untimed figures solve on the cell's shared Engine and ignore the
// returned duration.
func timedSolve(cfg Config, c *runCtx, m manirank.Method) (*manirank.Result, time.Duration, error) {
	switch {
	case m == manirank.MethodFairBorda:
		start := time.Now()
		r, err := core.FairBorda(c.p, c.targets)
		elapsed := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		return &manirank.Result{
			Ranking: r,
			Method:  m,
			PDLoss:  c.w.PDLoss(r),
			Stats:   manirank.SolveStats{Candidates: c.w.N(), Rankers: c.w.Rankings(), Elapsed: elapsed},
		}, elapsed, nil
	case m.RequiresProfile():
		res, err := c.solve(cfg, m, c.targets)
		if err != nil {
			return nil, 0, err
		}
		return res, res.Stats.Elapsed, nil
	}
	buildStart := time.Now()
	eng, err := manirank.NewEngine(c.p, manirank.WithTable(c.tab))
	build := time.Since(buildStart)
	if err != nil {
		return nil, 0, err
	}
	res, err := eng.Solve(context.Background(), m, c.targets,
		manirank.WithKemenyOptions(cfg.kemenyOptions()))
	if err != nil {
		return nil, 0, err
	}
	return res, build + res.Stats.Elapsed, nil
}

// methodSpec labels one registry method with the paper's A1-A4 (proposed) /
// B1-B4 (baseline) comparison id. Dispatch itself lives in the engine
// registry — this table only carries the presentation labels.
type methodSpec struct {
	ID   string
	Name string
	M    manirank.Method
}

// allMethods returns the paper's eight-method comparison set (Fig. 4, 6, 7)
// in presentation order.
func allMethods() []methodSpec {
	return []methodSpec{
		{"A1", "Fair-Kemeny", manirank.MethodFairKemeny},
		{"A2", "Fair-Schulze", manirank.MethodFairSchulze},
		{"A3", "Fair-Borda", manirank.MethodFairBorda},
		{"A4", "Fair-Copeland", manirank.MethodFairCopeland},
		{"B1", "Kemeny", manirank.MethodKemeny},
		{"B2", "Kemeny-Weighted", manirank.MethodKemenyWeighted},
		{"B3", "Pick-Fairest-Perm", manirank.MethodPickFairestPerm},
		{"B4", "Correct-Fairest-Perm", manirank.MethodCorrectFairestPerm},
	}
}

// tableIModal builds the named Table I modal ranking over the paper's
// 90-candidate Gender(3) x Race(5) database.
func tableIModal(name string) (*attribute.Table, ranking.Ranking, error) {
	tab, err := unfairgen.PaperTable(90)
	if err != nil {
		return nil, nil, err
	}
	for _, spec := range unfairgen.TableIDatasets() {
		if spec.Name == name {
			modal, err := unfairgen.TargetModal(tab, spec.Levels)
			return tab, modal, err
		}
	}
	return nil, nil, fmt.Errorf("experiments: unknown Table I dataset %q", name)
}

// tableIDatasets builds the tab and modal ranking of every Table I dataset
// once, so dataset x theta fan-outs don't redo the deterministic dataset
// construction in each cell.
func tableIDatasets() ([]unfairgen.MallowsDatasetSpec, []*attribute.Table, []ranking.Ranking, error) {
	specs := unfairgen.TableIDatasets()
	tabs := make([]*attribute.Table, len(specs))
	modals := make([]ranking.Ranking, len(specs))
	for di, spec := range specs {
		var err error
		if tabs[di], modals[di], err = tableIModal(spec.Name); err != nil {
			return nil, nil, nil, err
		}
	}
	return specs, tabs, modals, nil
}

// sampleProfile draws |R| base rankings around modal at spread theta.
func sampleProfile(modal ranking.Ranking, theta float64, m int, rng *rand.Rand) ranking.Profile {
	return mallows.MustNew(modal, theta).SampleProfile(m, rng)
}

// newTabWriter returns a tabwriter aligned for experiment tables.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// auditCols formats the (ARP..., IRP) columns of a ranking for printing.
func auditCols(r ranking.Ranking, tab *attribute.Table) string {
	rep := fairness.Audit(r, tab)
	s := ""
	for _, v := range rep.ARPs {
		s += fmt.Sprintf("%.3f\t", v)
	}
	s += fmt.Sprintf("%.3f", rep.IRP)
	return s
}
