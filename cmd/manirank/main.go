// Command manirank aggregates base rankings into a MANI-Rank fair consensus
// ranking, audits rankings for multi-attribute group fairness, and generates
// synthetic benchmark data.
//
// Subcommands:
//
//	aggregate  -candidates table.csv -rankings profile.csv [-delta 0.1] [-method fair-kemeny]
//	audit      -candidates table.csv -rankings profile.csv
//	generate   -dataset low-fair [-n 90] [-rankers 150] [-theta 0.6] -dir out/
//
// File formats: the candidate table CSV has a header row (id column plus one
// column per protected attribute) and one row per candidate; the profile CSV
// has one row per base ranking listing candidate ids from top to bottom.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"manirank"
	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "aggregate":
		err = cmdAggregate(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "manirank: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "manirank:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: manirank <subcommand> [flags]

subcommands:
  aggregate  combine base rankings into a fair consensus ranking
  audit      report FPR/ARP/IRP fairness of each base ranking
  generate   write a synthetic candidate table and Mallows profile

run "manirank <subcommand> -h" for flags.`)
}

func loadInputs(candidatesPath, rankingsPath string) (*attribute.Table, ranking.Profile, error) {
	cf, err := os.Open(candidatesPath)
	if err != nil {
		return nil, nil, err
	}
	defer cf.Close()
	tab, err := attribute.ReadTableCSV(cf)
	if err != nil {
		return nil, nil, err
	}
	rf, err := os.Open(rankingsPath)
	if err != nil {
		return nil, nil, err
	}
	defer rf.Close()
	p, err := ranking.ReadProfileCSV(rf)
	if err != nil {
		return nil, nil, err
	}
	if p.N() != tab.N() {
		return nil, nil, fmt.Errorf("profile ranks %d candidates but table has %d", p.N(), tab.N())
	}
	return tab, p, nil
}

func cmdAggregate(args []string) error {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	candidates := fs.String("candidates", "", "candidate table CSV (required)")
	rankings := fs.String("rankings", "", "base rankings CSV (required)")
	delta := fs.Float64("delta", 0.1, "MANI-Rank fairness threshold in [0,1]")
	// The accepted set comes from the engine registry, so this usage string
	// can never drift from what the library (and manirankd) resolve.
	methodName := fs.String("method", "fair-kemeny", strings.Join(manirank.MethodNames(), "|"))
	workers := fs.Int("workers", 0, "worker pool size for precedence-matrix construction and Kemeny restart sharding (0 = all CPUs, 1 = sequential; results identical either way)")
	out := fs.String("o", "", "write the consensus ranking CSV here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candidates == "" || *rankings == "" {
		return fmt.Errorf("aggregate: -candidates and -rankings are required")
	}
	method, err := manirank.ParseMethod(*methodName)
	if err != nil {
		return fmt.Errorf("aggregate: %w", err)
	}
	if method.Baseline() {
		return fmt.Errorf("aggregate: method %q is an experiment baseline (want one of %s)",
			*methodName, strings.Join(manirank.MethodNames(), ", "))
	}
	tab, p, err := loadInputs(*candidates, *rankings)
	if err != nil {
		return err
	}
	eng, err := manirank.NewEngine(p,
		manirank.WithTable(tab),
		manirank.WithPrecedenceWorkers(*workers))
	if err != nil {
		return err
	}
	// The same flag governs solver-layer parallelism: heuristic-Kemeny and
	// constrained-search restarts shard across this many workers with
	// bitwise-identical output for every width. Unaware methods ignore the
	// targets.
	res, err := eng.Solve(context.Background(), method, manirank.Targets(tab, *delta),
		manirank.WithSolverWorkers(*workers))
	if err != nil {
		return err
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if err := ranking.WriteProfileCSV(dst, ranking.Profile{res.Ranking}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "PD loss %.4f\n%s", res.PDLoss, fairness.FormatReport(*res.Report, tab))
	return nil
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	candidates := fs.String("candidates", "", "candidate table CSV (required)")
	rankings := fs.String("rankings", "", "rankings CSV to audit (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *candidates == "" || *rankings == "" {
		return fmt.Errorf("audit: -candidates and -rankings are required")
	}
	tab, p, err := loadInputs(*candidates, *rankings)
	if err != nil {
		return err
	}
	for i, r := range p {
		fmt.Printf("ranking %d:\n%s", i, fairness.FormatReport(fairness.Audit(r, tab), tab))
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	dataset := fs.String("dataset", "low-fair", "low-fair|medium-fair|high-fair (paper Table I)")
	n := fs.Int("n", 90, "number of candidates (multiple of 15)")
	rankers := fs.Int("rankers", 150, "number of base rankings")
	theta := fs.Float64("theta", 0.6, "Mallows consensus spread")
	seed := fs.Int64("seed", 1, "random seed")
	dir := fs.String("dir", ".", "output directory for candidates.csv and rankings.csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tab, err := unfairgen.PaperTable(*n)
	if err != nil {
		return err
	}
	var spec *unfairgen.MallowsDatasetSpec
	for _, s := range unfairgen.TableIDatasets() {
		if strings.EqualFold(s.Name, *dataset) {
			s := s
			spec = &s
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("generate: unknown dataset %q", *dataset)
	}
	modal, err := unfairgen.TargetModal(tab, spec.Levels)
	if err != nil {
		return err
	}
	p := mallows.MustNew(modal, *theta).SampleProfile(*rankers, rand.New(rand.NewSource(*seed)))

	cf, err := os.Create(filepath.Join(*dir, "candidates.csv"))
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := attribute.WriteTableCSV(cf, tab); err != nil {
		return err
	}
	rf, err := os.Create(filepath.Join(*dir, "rankings.csv"))
	if err != nil {
		return err
	}
	defer rf.Close()
	if err := ranking.WriteProfileCSV(rf, p); err != nil {
		return err
	}
	rep := fairness.Audit(modal, tab)
	fmt.Fprintf(os.Stderr, "wrote %s and %s (modal fairness: %s)\n",
		filepath.Join(*dir, "candidates.csv"), filepath.Join(*dir, "rankings.csv"), rep.String())
	return nil
}
