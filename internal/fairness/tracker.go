package fairness

import (
	"sort"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// Tracker maintains one attribute's group fairness state incrementally over a
// working ranking, so repair loops and constrained searches can audit
// candidate edits in O(groups · log n) instead of re-deriving every FPR from
// the full ranking (O(n) per attribute) at every step. It is the shared
// engine behind both fair hot paths: Make-MR-Fair's parityEngine and the
// constrained Kemeny descent.
//
// The state is three structures kept in lock-step with the ranking:
//
//   - wins[v]: mixed pairs currently won by group v — the integer numerator
//     of FPR_v, identical to what GroupFPRs derives from scratch;
//   - groupAt[p]: the group of the candidate at position p;
//   - posByGroup[v]: the sorted positions currently held by group v, which
//     answers "how many members of v sit between positions a and b" in
//     O(log n) — the only question an insertion move's win delta needs.
//
// Two identities make the updates cheap (DESIGN.md §9). A swap of positions
// i < j transfers exactly j-i mixed-pair wins from the upper candidate's
// group to the lower one's and changes nothing else, so ApplySwap is O(1) on
// the counters. An insertion move of candidate c (group v) across a window
// of span s in which mid[u] members of group u sit changes wins[v] by
// ±(s - mid[v]) and wins[u] by ∓mid[u], so SpreadAfterMove predicts the
// post-move ARP from interval counts alone — without mutating the ranking.
//
// All derived scores (FPR, Spread) divide the same integers GroupFPRs
// divides, so every prediction and every incremental score is bitwise
// identical to a from-scratch fairness audit of the edited ranking; the
// FuzzTrackerParity target and the parity property suites pin this.
//
// A Tracker does not hold the ranking itself: callers apply each accepted
// edit to their ranking and mirror it here (ApplyMove / ApplySwap). The
// zero value is not usable; construct with NewTracker or NewGroupTracker.
type Tracker struct {
	of     []int // candidate -> group value
	groups int
	omegaM []int
	wins   []int
	// groupAt[p] is the group of the candidate at position p.
	groupAt []int
	// posByGroup[v] is the ascending list of positions held by group v.
	posByGroup [][]int

	// Minimum-distance pair cache for EachMinDistPair: for each ordered
	// group pair (a, b), the closest positioned pair with an a-member
	// directly above a b-member. Built lazily on first use; a swap dirties
	// only the two groups whose position lists changed, and only their
	// pairs are re-merged on the next query. minD uses -1 for "no pair".
	minD     []int
	pairPos  [][2]int
	dirty    []bool
	anyDirty bool
	cacheOK  bool
}

// NewTracker builds the incremental fairness state of attribute a over
// ranking r. O(n + groups).
func NewTracker(r ranking.Ranking, a *attribute.Attribute) *Tracker {
	return NewGroupTracker(r, a.Of, a.DomainSize())
}

// NewGroupTracker is NewTracker for a bare group map: of[c] is candidate c's
// group in 0..groups-1. It exists for grouping structures that are not
// attribute.Attributes — Make-MR-Fair's joint (cross-product) grouping in
// particular.
func NewGroupTracker(r ranking.Ranking, of []int, groups int) *Tracker {
	t := &Tracker{
		of:         of,
		groups:     groups,
		omegaM:     make([]int, groups),
		wins:       make([]int, groups),
		groupAt:    make([]int, len(r)),
		posByGroup: make([][]int, groups),
	}
	t.Reset(r)
	return t
}

// Reset recomputes the tracker's state from ranking r in O(n + groups),
// discarding all incremental state. Restart loops call it once per restart
// instead of allocating a fresh tracker.
func (t *Tracker) Reset(r ranking.Ranking) {
	n := len(r)
	sizes := make([]int, t.groups)
	for _, c := range r {
		sizes[t.of[c]]++
	}
	counts := sizes // reuse: consumed as remaining-capacity below
	for v := 0; v < t.groups; v++ {
		t.omegaM[v] = MixedPairs(sizes[v], n)
		t.wins[v] = 0
		if cap(t.posByGroup[v]) < sizes[v] {
			t.posByGroup[v] = make([]int, 0, sizes[v])
		} else {
			t.posByGroup[v] = t.posByGroup[v][:0]
		}
	}
	if cap(t.groupAt) < n {
		t.groupAt = make([]int, n)
	} else {
		t.groupAt = t.groupAt[:n]
	}
	// Same top-to-bottom win derivation as GroupFPRs: the candidate at
	// position i wins against the n-1-i candidates below it, minus those of
	// its own group (not mixed pairs).
	seen := make([]int, t.groups)
	for i, c := range r {
		v := t.of[c]
		below := n - 1 - i
		sameBelow := counts[v] - seen[v] - 1
		t.wins[v] += below - sameBelow
		seen[v]++
		t.groupAt[i] = v
		t.posByGroup[v] = append(t.posByGroup[v], i)
	}
	t.cacheOK = false
}

// Groups returns the number of groups tracked.
func (t *Tracker) Groups() int { return t.groups }

// Win returns the current mixed-pair win count of group v.
func (t *Tracker) Win(v int) int { return t.wins[v] }

// Wins returns the live win-count slice, indexed by group value. It is a
// view into the tracker's state — treat it as read-only.
func (t *Tracker) Wins() []int { return t.wins }

// OmegaM returns omega_M(v), group v's total mixed pairs (0 for empty or
// universal groups).
func (t *Tracker) OmegaM(v int) int { return t.omegaM[v] }

// Positions returns the ascending positions currently held by group v. It is
// a view into the tracker's state — treat it as read-only; it is invalidated
// by the next ApplyMove/ApplySwap/Reset.
func (t *Tracker) Positions(v int) []int { return t.posByGroup[v] }

// FPR returns group v's current Favored Pair Representation score, with the
// same neutral-0.5 rule for groups without mixed pairs as GroupFPRs.
func (t *Tracker) FPR(v int) float64 {
	if t.omegaM[v] == 0 {
		return 0.5
	}
	return float64(t.wins[v]) / float64(t.omegaM[v])
}

// Spread returns the current ARP (max FPR - min FPR over the groups),
// bitwise identical to fairness.ARP on the tracked ranking.
func (t *Tracker) Spread() float64 {
	lo, hi := 2.0, -1.0
	for v := 0; v < t.groups; v++ {
		f := t.FPR(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

// SpreadAfterTransfer returns the ARP that would result from moving d
// mixed-pair wins from group a to group b, with everything else unchanged —
// the effect of swapping an a-member over a b-member at position distance d.
// a == b returns the current spread.
func (t *Tracker) SpreadAfterTransfer(a, b, d int) float64 {
	lo, hi := 2.0, -1.0
	for v := 0; v < t.groups; v++ {
		var f float64
		if t.omegaM[v] == 0 {
			f = 0.5
		} else {
			w := t.wins[v]
			if a != b {
				if v == a {
					w -= d
				}
				if v == b {
					w += d
				}
			}
			f = float64(w) / float64(t.omegaM[v])
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

// countIn returns how many members of group v sit at positions in [lo, hi]
// (inclusive), in O(log n).
func (t *Tracker) countIn(v, lo, hi int) int {
	ps := t.posByGroup[v]
	return sort.SearchInts(ps, hi+1) - sort.SearchInts(ps, lo)
}

// moveWindow returns the inclusive position window crossed by moving the
// candidate at position from to position to, plus whether the move is
// upward. MoveTo semantics: upward moves cross [to, from-1], downward moves
// cross [from+1, to].
func moveWindow(from, to int) (lo, hi int, up bool) {
	if to < from {
		return to, from - 1, true
	}
	return from + 1, to, false
}

// SpreadAfterMove returns the ARP that would result from r.MoveTo(from, to)
// on the tracked ranking, computed from interval counts in O(groups · log n)
// without mutating anything. It is bitwise identical to recomputing ARP on
// the moved ranking.
func (t *Tracker) SpreadAfterMove(from, to int) float64 {
	if from == to {
		return t.Spread()
	}
	lo, hi, up := moveWindow(from, to)
	span := hi - lo + 1
	v := t.groupAt[from]
	midV := t.countIn(v, lo, hi)
	loF, hiF := 2.0, -1.0
	for u := 0; u < t.groups; u++ {
		var f float64
		if t.omegaM[u] == 0 {
			f = 0.5
		} else {
			w := t.wins[u]
			switch {
			case u == v && up:
				w += span - midV
			case u == v:
				w -= span - midV
			case up:
				w -= t.countIn(u, lo, hi)
			default:
				w += t.countIn(u, lo, hi)
			}
			f = float64(w) / float64(t.omegaM[u])
		}
		if f < loF {
			loF = f
		}
		if f > hiF {
			hiF = f
		}
	}
	return hiF - loF
}

// ApplyMove mirrors r.MoveTo(from, to) into the tracker in
// O(span + groups · log n): the win counters move by the same deltas
// SpreadAfterMove predicted, the window's group-position entries shift by
// one, and the moved candidate's entry is relocated. The caller applies the
// actual MoveTo to its ranking.
func (t *Tracker) ApplyMove(from, to int) {
	if from == to {
		return
	}
	lo, hi, up := moveWindow(from, to)
	span := hi - lo + 1
	v := t.groupAt[from]
	for u := 0; u < t.groups; u++ {
		ps := t.posByGroup[u]
		a := sort.SearchInts(ps, lo)
		b := sort.SearchInts(ps, hi+1)
		mid := b - a
		if u == v {
			if up {
				t.wins[v] += span - mid
			} else {
				t.wins[v] -= span - mid
			}
		} else if up {
			t.wins[u] -= mid
		} else {
			t.wins[u] += mid
		}
		// Window members shift one position away from the move direction.
		if up {
			for i := a; i < b; i++ {
				ps[i]++
			}
		} else {
			for i := a; i < b; i++ {
				ps[i]--
			}
		}
	}
	// Relocate the moved candidate's own entry: its position jumps from
	// `from` (just outside the window) to `to` (the window's far edge).
	ps := t.posByGroup[v]
	if up {
		// Entry `from` sits immediately after the (now shifted) window
		// members; the new value `to` sorts before them.
		i := sort.SearchInts(ps, from)
		j := sort.SearchInts(ps, to)
		copy(ps[j+1:i+1], ps[j:i])
		ps[j] = to
	} else {
		i := sort.SearchInts(ps, from)
		j := sort.SearchInts(ps, to+1) - 1
		copy(ps[i:j], ps[i+1:j+1])
		ps[j] = to
	}
	// Mirror the MoveTo on the position -> group map.
	if up {
		copy(t.groupAt[lo+1:from+1], t.groupAt[lo:from])
	} else {
		copy(t.groupAt[from:hi], t.groupAt[from+1:hi+1])
	}
	t.groupAt[to] = v
	// Window members changed distance to everything outside the window, so
	// every cached min-distance pair is suspect.
	t.cacheOK = false
}

// ApplySwap mirrors swapping the candidates at positions i and j (any order)
// into the tracker. By the win-transfer identity the counters change by
// exactly |j-i| wins between the two groups; the two groups' position lists
// exchange one entry each. O(group members between i and j); a same-group
// swap is free.
func (t *Tracker) ApplySwap(i, j int) {
	if i == j {
		return
	}
	if i > j {
		i, j = j, i
	}
	va, vb := t.groupAt[i], t.groupAt[j]
	if va == vb {
		return
	}
	d := j - i
	t.wins[va] -= d
	t.wins[vb] += d
	replaceSorted(t.posByGroup[va], i, j)
	replaceSorted(t.posByGroup[vb], j, i)
	t.groupAt[i], t.groupAt[j] = vb, va
	if t.cacheOK {
		t.markDirty(va)
		t.markDirty(vb)
	}
}

// replaceSorted substitutes value old with value new in the sorted slice ps,
// shifting the elements in between to keep it sorted.
func replaceSorted(ps []int, old, new int) {
	i := sort.SearchInts(ps, old)
	if new > old {
		j := sort.SearchInts(ps, new) - 1
		copy(ps[i:j], ps[i+1:j+1])
		ps[j] = new
	} else {
		j := sort.SearchInts(ps, new)
		copy(ps[j+1:i+1], ps[j:i])
		ps[j] = new
	}
}

func (t *Tracker) markDirty(v int) {
	if !t.dirty[v] {
		t.dirty[v] = true
		t.anyDirty = true
	}
}

// EachMinDistPair invokes fn on, for every ordered group pair (a, b), the
// closest positioned pair with an a-member directly above a b-member — the
// finest-grained corrective swaps available between those groups — in
// ascending (a·groups + b) order, matching the historical full-scan
// emission order exactly (ties inside a pair resolve to the bottom-most
// minimal-distance pair).
//
// The pair table is cached: the first call after construction or an
// ApplyMove costs one O(n·groups) bottom-up scan; after a swap only the two
// affected groups' pairs are re-merged from their position lists
// (O(groups · (|a|+|b|))), and clean pairs are served from the cache.
func (t *Tracker) EachMinDistPair(fn func(i, j int)) {
	g := t.groups
	if t.minD == nil {
		t.minD = make([]int, g*g)
		t.pairPos = make([][2]int, g*g)
		t.dirty = make([]bool, g)
	}
	switch {
	case !t.cacheOK:
		t.rebuildPairScan()
		t.cacheOK = true
		for v := range t.dirty {
			t.dirty[v] = false
		}
		t.anyDirty = false
	case t.anyDirty:
		for a := 0; a < g; a++ {
			for b := 0; b < g; b++ {
				if a != b && (t.dirty[a] || t.dirty[b]) {
					t.remergePair(a, b)
				}
			}
		}
		for v := range t.dirty {
			t.dirty[v] = false
		}
		t.anyDirty = false
	}
	for idx, d := range t.minD {
		if d >= 0 {
			fn(t.pairPos[idx][0], t.pairPos[idx][1])
		}
	}
}

// rebuildPairScan recomputes every pair with the historical bottom-up scan:
// one pass over positions, O(n·groups).
func (t *Tracker) rebuildPairScan() {
	g := t.groups
	for idx := range t.minD {
		t.minD[idx] = -1
	}
	nearestBelow := make([]int, g)
	for v := range nearestBelow {
		nearestBelow[v] = -1
	}
	for p := len(t.groupAt) - 1; p >= 0; p-- {
		a := t.groupAt[p]
		for b := 0; b < g; b++ {
			if b == a || nearestBelow[b] < 0 {
				continue
			}
			if d := nearestBelow[b] - p; t.minD[a*g+b] < 0 || d < t.minD[a*g+b] {
				t.minD[a*g+b] = d
				t.pairPos[a*g+b] = [2]int{p, nearestBelow[b]}
			}
		}
		nearestBelow[a] = p
	}
}

// remergePair recomputes the (a, b) entry from the two groups' sorted
// position lists. Tie-breaking matches the bottom-up scan: among
// minimal-distance pairs, the bottom-most (largest upper position) wins.
func (t *Tracker) remergePair(a, b int) {
	g := t.groups
	pa, pb := t.posByGroup[a], t.posByGroup[b]
	bestD := -1
	var best [2]int
	bi := 0
	for _, p := range pa {
		for bi < len(pb) && pb[bi] <= p {
			bi++
		}
		if bi == len(pb) {
			break
		}
		if d := pb[bi] - p; bestD < 0 || d <= bestD {
			bestD = d
			best = [2]int{p, pb[bi]}
		}
	}
	t.minD[a*g+b] = bestD
	t.pairPos[a*g+b] = best
}
