// Benchmarks regenerating every table and figure of the MANI-Rank paper
// (one Benchmark per artifact, running the experiment harness in its quick
// configuration) plus ablation benches for the design choices DESIGN.md
// calls out. Run `go run ./cmd/experiments <id>` for full paper-scale rows;
// EXPERIMENTS.md records paper-vs-measured values.
package manirank_test

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"manirank"
	"manirank/internal/core"
	"manirank/internal/experiments"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Seed: 1, Out: io.Discard, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Datasets regenerates paper Table I (dataset fairness).
func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig2Admissions regenerates paper Figure 2 (admissions example).
func BenchmarkFig2Admissions(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ConstraintVariants regenerates paper Figure 3 (attribute-only
// vs intersection-only vs MANI-Rank constraint sets).
func BenchmarkFig3ConstraintVariants(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Methods regenerates paper Figure 4 (8-method comparison).
func BenchmarkFig4Methods(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5PoF regenerates paper Figure 5 (price of fairness).
func BenchmarkFig5PoF(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6RankerScale regenerates paper Figure 6 (runtime vs |R|).
func BenchmarkFig6RankerScale(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7CandidateScale regenerates paper Figure 7 (runtime vs n).
func BenchmarkFig7CandidateScale(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable2FairBordaRankers regenerates paper Table II (Fair-Borda
// ranker scalability).
func BenchmarkTable2FairBordaRankers(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3FairBordaCandidates regenerates paper Table III (Fair-Borda
// candidate scalability).
func BenchmarkTable3FairBordaCandidates(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4ExamStudy regenerates paper Table IV (merit scholarships).
func BenchmarkTable4ExamStudy(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5CSRankings regenerates paper Table V (CSRankings).
func BenchmarkTable5CSRankings(b *testing.B) { benchExperiment(b, "table5") }

// --- Ablation benches (DESIGN.md Section 5) ---

// ablationSetup builds a biased consensus problem for repair ablations.
func ablationSetup(b *testing.B, n int) (ranking.Ranking, []core.Target) {
	b.Helper()
	tab, err := unfairgen.PaperTable(n)
	if err != nil {
		b.Fatal(err)
	}
	return unfairgen.BlockRanking(tab), core.Targets(tab, 0.1)
}

// BenchmarkAblationSwapPolicyImpactful measures the paper's repair policy
// ("fewer but more impactful swaps"); compare with the FineGrained variant
// below — the impactful policy needs far fewer swaps for the same Delta.
func BenchmarkAblationSwapPolicyImpactful(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		_, s, err := core.MakeMRFairWithPolicy(r, targets, core.PolicyImpactful)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// BenchmarkAblationSwapPolicyFineGrained always takes the smallest
// available corrective step.
func BenchmarkAblationSwapPolicyFineGrained(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		_, s, err := core.MakeMRFairWithPolicy(r, targets, core.PolicyFineGrained)
		if err != nil {
			b.Fatal(err)
		}
		swaps = s
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// kemenyBenchInstance builds a mid-size Kemeny instance with a moderate
// consensus level, hard enough that pruning matters.
func kemenyBenchInstance(b *testing.B, n int) *ranking.Precedence {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	modal := ranking.Random(n, rng)
	p := mallows.MustNew(modal, 0.15).SampleProfile(9, rng)
	return ranking.MustPrecedence(p)
}

// BenchmarkAblationKemenyBBSeeded measures exact branch-and-bound seeded
// with a local-search incumbent; compare with the unseeded variant — the
// incumbent prunes most of the tree.
func BenchmarkAblationKemenyBBSeeded(b *testing.B) {
	w := kemenyBenchInstance(b, 12)
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		seed := kemeny.LocalSearch(w, kemeny.BordaFromPrecedence(w))
		res := kemeny.BranchAndBound(w, nil, seed, 0)
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkAblationKemenyBBUnseeded runs the same search with no incumbent.
func BenchmarkAblationKemenyBBUnseeded(b *testing.B) {
	w := kemenyBenchInstance(b, 12)
	b.ResetTimer()
	var nodes int64
	for i := 0; i < b.N; i++ {
		res := kemeny.BranchAndBound(w, nil, nil, 0)
		nodes = res.Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkAblationILSBordaInit measures iterated local search seeded from
// the Borda order; compare with the random-start variant — the Borda seed
// starts near the optimum basin.
func BenchmarkAblationILSBordaInit(b *testing.B) {
	w := kemenyBenchInstance(b, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.LocalSearch(w, kemeny.BordaFromPrecedence(w))
	}
}

// BenchmarkAblationILSRandomInit starts local search from a random ranking.
func BenchmarkAblationILSRandomInit(b *testing.B) {
	w := kemenyBenchInstance(b, 90)
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.LocalSearch(w, ranking.Random(90, rng))
	}
}

// --- Core operation micro-benches ---

// BenchmarkPrecedenceMatrix100x150 builds the Figure 3/4 workload's
// precedence matrix (90 candidates would match the paper; 100 rounds up).
func BenchmarkPrecedenceMatrix100x150(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	p := make(ranking.Profile, 150)
	for i := range p {
		p[i] = ranking.Random(100, rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranking.MustPrecedence(p)
	}
}

// BenchmarkMakeMRFair90 measures one full repair of a maximally unfair
// 90-candidate ranking to Delta = 0.1.
func BenchmarkMakeMRFair90(b *testing.B) {
	r, targets := ablationSetup(b, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MakeMRFair(r, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMallowsSample90 measures one exact RIM Mallows draw at the
// paper's figure scale through the zero-allocation sampler path (profile
// generation draws 20k+ of these in fig6). Steady state must report
// 0 allocs/op.
func BenchmarkMallowsSample90(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	s := mallows.MustNew(ranking.Random(90, rng), 0.6).Sampler()
	dst := make(ranking.Ranking, 90)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(dst, rng)
	}
}

// BenchmarkPlackettLuce100k measures one approximate draw at Table III
// scale through the zero-allocation sampler path. Steady state must report
// 0 allocs/op.
func BenchmarkPlackettLuce100k(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	s := mallows.MustNewPlackettLuce(ranking.New(100_000), 0.6).Sampler()
	dst := make(ranking.Ranking, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleInto(dst, rng)
	}
}

// --- Engine API v2 benches (DESIGN.md Section 8) ---

// engineBenchInstance builds the multi-method workload the Engine is
// designed for: a serving-style profile — many rankers, so the O(n²·m)
// precedence construction is a real fraction of the work — plus the
// MANI-Rank targets the fair methods repair toward. Restarts are disabled
// (single-descent heuristics) on both sides so the comparison isolates the
// dispatch architecture, not the search budget.
func engineBenchInstance(b *testing.B) (manirank.Profile, []manirank.Target) {
	b.Helper()
	tab, err := unfairgen.PaperTable(90)
	if err != nil {
		b.Fatal(err)
	}
	modal := unfairgen.BlockRanking(tab)
	rng := rand.New(rand.NewSource(15))
	p := mallows.MustNew(modal, 0.5).SampleProfile(600, rng)
	return p, core.Targets(tab, 0.2)
}

// BenchmarkEngineSolveAll measures the shared-matrix path: one Engine per
// iteration (a single O(n²·m) precedence construction) serving all eight
// canonical methods through the registry. Compare with
// BenchmarkPerCallSolveAll — the gap is the construction work the Engine
// amortises across a multi-method workload (BENCH_5.json records the
// pair). No table is attached, so neither side audits; the Engine side's
// only extra work over the legacy calls is the Result's O(n²) PD-loss
// read-off (µs-scale at n=90, in the noise of the ms-scale solves).
func BenchmarkEngineSolveAll(b *testing.B) {
	p, targets := engineBenchInstance(b)
	ctx := context.Background()
	opts := []manirank.SolveOption{
		manirank.WithSolverWorkers(1),
		manirank.WithPerturbations(-1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := manirank.NewEngine(p, manirank.WithPrecedenceWorkers(1))
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range manirank.Methods() {
			if _, err := eng.Solve(ctx, m, targets, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPerCallSolveAll runs the same eight-method workload through the
// deprecated per-call entry points, each building its own precedence
// matrix from the profile (Borda's profile path needs none) — the pattern
// Engine API v2 replaces.
func BenchmarkPerCallSolveAll(b *testing.B) {
	p, targets := engineBenchInstance(b)
	kopts := manirank.KemenyOptions{Heuristic: kemeny.Options{Workers: 1, Perturbations: -1}}
	// Pin matrix construction sequential on both sides of the comparison
	// (the Engine side pins via WithPrecedenceWorkers).
	prev := ranking.DefaultWorkers
	ranking.DefaultWorkers = 1
	defer func() { ranking.DefaultWorkers = prev }()
	calls := []func() (manirank.Ranking, error){
		func() (manirank.Ranking, error) { return manirank.Borda(p) },
		func() (manirank.Ranking, error) { return manirank.Copeland(p) },
		func() (manirank.Ranking, error) { return manirank.Schulze(p) },
		func() (manirank.Ranking, error) { return manirank.Kemeny(p, kopts) },
		func() (manirank.Ranking, error) { return manirank.FairBorda(p, targets) },
		func() (manirank.Ranking, error) { return manirank.FairCopeland(p, targets) },
		func() (manirank.Ranking, error) { return manirank.FairSchulze(p, targets) },
		func() (manirank.Ranking, error) {
			return manirank.FairKemeny(p, targets, manirank.Options{Kemeny: kopts})
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, call := range calls {
			if _, err := call(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// restartBenchInstance builds the restart-dominated Kemeny workload: a noisy
// profile large enough that the perturbation restarts, not the Borda seed
// descent, carry most of the work.
func restartBenchInstance(b *testing.B) (*ranking.Precedence, kemeny.Options) {
	b.Helper()
	rng := rand.New(rand.NewSource(14))
	modal := ranking.Random(220, rng)
	p := mallows.MustNew(modal, 0.05).SampleProfile(11, rng)
	return ranking.MustPrecedence(p), kemeny.Options{Seed: 14, Perturbations: 24, Strength: 8}
}

// benchHeuristicRestarts runs the sharded-restart Kemeny heuristic at a
// fixed pool width. Output is bitwise identical across widths, so W1 vs W4
// is a pure wall-clock comparison (the ~2x+ speedup needs 4+ hardware
// threads; single-CPU runners serialise the shards).
func benchHeuristicRestarts(b *testing.B, workers int) {
	w, opts := restartBenchInstance(b)
	opts.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kemeny.Heuristic(w, opts)
	}
}

// BenchmarkHeuristicRestartsW1 runs the restarts sequentially.
func BenchmarkHeuristicRestartsW1(b *testing.B) { benchHeuristicRestarts(b, 1) }

// BenchmarkHeuristicRestartsW4 shards the restarts over 4 workers.
func BenchmarkHeuristicRestartsW4(b *testing.B) { benchHeuristicRestarts(b, 4) }
