package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind int

// The registered metric kinds, mapping one-to-one onto Prometheus types.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled member of a family. Exactly one of the value
// sources is set, matching the family kind (functions stand in for values
// computed at scrape time).
type series struct {
	labels    []Label
	sig       string // canonical label signature, for dedup and sort
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	series     []*series
}

// Registry is a typed metric registry: counters, gauges, and histograms,
// each a named family of label-qualified series, exposable in Prometheus
// text format (WritePrometheus). Registration methods either create a
// series or return the already-registered one, so wiring code can be
// idempotent; registering a name twice with a different kind panics
// (programmer error, like a duplicate flag).
//
// Every label set is declared at registration time — there is no
// register-on-first-use keyed by runtime strings, which is what keeps the
// series cardinality bounded by construction.
//
// A Registry is safe for concurrent use. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// metricNameOK enforces the exposition-safe name alphabet. Digits are
// deliberately excluded: quantile-flavoured names (p99) belong in labels
// or PromQL, not in metric names, and the serving smoke test's line
// grammar is ^[a-z_]+ exactly.
func metricNameOK(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && r != '_' {
			return false
		}
	}
	return true
}

// signature canonicalises a label set (sorted by name) for dedup and
// deterministic exposition order.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// register resolves (name, labels) to its series, creating family and
// series as needed. Callers hold no locks.
func (r *Registry) register(name, help string, kind Kind, labels []Label) (*series, bool) {
	if !metricNameOK(name) {
		panic(fmt.Sprintf("obs: metric name %q must match [a-z_]+", name))
	}
	for _, l := range labels {
		if !metricNameOK(l.Name) {
			panic(fmt.Sprintf("obs: label name %q must match [a-z_]+", l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	sig := signature(labels)
	for _, s := range f.series {
		if s.sig == sig {
			return s, false
		}
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	s := &series{labels: ls, sig: sig}
	f.series = append(f.series, s)
	return s, true
}

// Counter registers (or returns the existing) counter series under name
// with the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s, fresh := r.register(name, help, KindCounter, labels)
	if fresh {
		s.counter = new(Counter)
	}
	return s.counter
}

// RegisterCounter adopts an externally owned Counter as a series — the
// mechanism by which the cache tiers' live counters become registry
// members without copying: /statz reads them through the tier, /metricsz
// through the registry, and both see the same atomic. Re-registering an
// existing (name, labels) series replaces its source.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	s, _ := r.register(name, help, KindCounter, labels)
	s.counter, s.counterFn = c, nil
}

// CounterFunc registers a counter series computed at scrape time — for
// monotone values derived from other counters (e.g. builds skipped =
// hits + coalesced + disk hits).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s, _ := r.register(name, help, KindCounter, labels)
	s.counterFn, s.counter = fn, nil
}

// Gauge registers (or returns the existing) gauge series under name.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s, fresh := r.register(name, help, KindGauge, labels)
	if fresh {
		s.gauge = new(Gauge)
	}
	return s.gauge
}

// GaugeFunc registers a gauge series computed at scrape time — queue
// depth read from the scheduler's atomics, cache residency read from the
// tier, predicted hit rates read from the estimator.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s, _ := r.register(name, help, KindGauge, labels)
	s.gaugeFn, s.gauge = fn, nil
}

// Histogram registers (or returns the existing) histogram series under
// name with the given bucket bounds (see NewHistogram, LatencyBuckets).
// Bounds are fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s, fresh := r.register(name, help, KindHistogram, labels)
	if fresh {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders {a="x",b="y"} sorted by label name, with extra
// appended last (the histogram "le" label); empty input renders nothing.
func formatLabels(labels []Label, extra ...Label) string {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	ls = append(ls, extra...)
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Name + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value; non-finite values render as 0 so a
// transient NaN (e.g. a rate before any traffic) can never corrupt the
// exposition a scraper parses.
func formatValue(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, series by
// label signature, histograms as cumulative le-buckets plus _sum and
// _count. The output is deterministic for a fixed registry state.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		ser := make([]*series, len(f.series))
		r.mu.Lock()
		copy(ser, f.series)
		r.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].sig < ser[j].sig })
		for _, s := range ser {
			switch f.kind {
			case KindCounter:
				v := uint64(0)
				if s.counter != nil {
					v = s.counter.Value()
				} else if s.counterFn != nil {
					v = s.counterFn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, formatLabels(s.labels), strconv.FormatUint(v, 10))
			case KindGauge:
				v := 0.0
				if s.gauge != nil {
					v = s.gauge.Value()
				} else if s.gaugeFn != nil {
					v = s.gaugeFn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, formatLabels(s.labels), formatValue(v))
			case KindHistogram:
				snap := s.hist.Snapshot()
				for i, c := range snap.Counts {
					le := "+Inf"
					if i < len(snap.Bounds) {
						le = formatValue(snap.Bounds[i])
					}
					fmt.Fprintf(&b, "%s_bucket%s %s\n", f.name, formatLabels(s.labels, L("le", le)), strconv.FormatUint(c, 10))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, formatLabels(s.labels), formatValue(snap.Sum))
				fmt.Fprintf(&b, "%s_count%s %s\n", f.name, formatLabels(s.labels), strconv.FormatUint(snap.Count, 10))
			}
		}
	}
	io.WriteString(w, b.String())
}
