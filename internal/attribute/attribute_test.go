package attribute

import (
	"bytes"
	"strings"
	"testing"
)

func mustAttr(t *testing.T, name string, values []string, of []int) *Attribute {
	t.Helper()
	a, err := NewAttribute(name, values, of)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAttributeValidation(t *testing.T) {
	if _, err := NewAttribute("g", nil, []int{0}); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewAttribute("g", []string{"A"}, []int{1}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if _, err := NewAttribute("g", []string{"A"}, []int{-1}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestAttributeAccessors(t *testing.T) {
	a := mustAttr(t, "Gender", []string{"M", "W"}, []int{0, 1, 0, 1, 1})
	if a.DomainSize() != 2 || a.N() != 5 {
		t.Fatal("sizes wrong")
	}
	if got := a.Group(1); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("Group(1) = %v", got)
	}
	if sizes := a.GroupSizes(); sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("GroupSizes = %v", sizes)
	}
	if a.ValueOf(0) != "M" || a.ValueOf(4) != "W" {
		t.Fatal("ValueOf wrong")
	}
}

func TestNewTableValidation(t *testing.T) {
	a := mustAttr(t, "A", []string{"x", "y"}, []int{0, 1, 0})
	if _, err := NewTable(0, a); err == nil {
		t.Error("zero candidates accepted")
	}
	if _, err := NewTable(3); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewTable(4, a); err == nil {
		t.Error("size mismatch accepted")
	}
	b := mustAttr(t, "A", []string{"x"}, []int{0, 0, 0})
	if _, err := NewTable(3, a, b); err == nil {
		t.Error("duplicate attribute name accepted")
	}
}

func TestIntersection(t *testing.T) {
	g := mustAttr(t, "Gender", []string{"M", "W"}, []int{0, 0, 1, 1})
	r := mustAttr(t, "Race", []string{"A", "B"}, []int{0, 1, 0, 1})
	tab, err := NewTable(4, g, r)
	if err != nil {
		t.Fatal(err)
	}
	inter := tab.Intersection()
	if inter.DomainSize() != 4 {
		t.Fatalf("intersection domain %d, want 4", inter.DomainSize())
	}
	// Every candidate in its own group here.
	for v, size := range inter.GroupSizes() {
		if size != 1 {
			t.Fatalf("group %d size %d", v, size)
		}
	}
	// Labels combine the attribute values.
	if !strings.Contains(inter.Values[0], "/") {
		t.Fatalf("label %q lacks separator", inter.Values[0])
	}
	// Cached: same pointer on second call.
	if tab.Intersection() != inter {
		t.Fatal("intersection not cached")
	}
}

func TestIntersectionOnlyOccupiedCombos(t *testing.T) {
	// 2x2 domain but only 2 combinations occupied.
	g := mustAttr(t, "G", []string{"M", "W"}, []int{0, 0, 1})
	r := mustAttr(t, "R", []string{"A", "B"}, []int{0, 0, 1})
	tab, err := NewTable(3, g, r)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Intersection().DomainSize(); got != 2 {
		t.Fatalf("occupied combos = %d, want 2", got)
	}
}

func TestIntersectionOfSubset(t *testing.T) {
	g := mustAttr(t, "G", []string{"M", "W"}, []int{0, 1, 0, 1})
	r := mustAttr(t, "R", []string{"A", "B"}, []int{0, 0, 1, 1})
	l := mustAttr(t, "L", []string{"N", "S"}, []int{0, 1, 1, 0})
	tab, err := NewTable(4, g, r, l)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tab.IntersectionOf("G", "R")
	if err != nil {
		t.Fatal(err)
	}
	if sub.DomainSize() != 4 {
		t.Fatalf("subset intersection domain %d, want 4", sub.DomainSize())
	}
	if _, err := tab.IntersectionOf("Nope"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := tab.IntersectionOf(); err == nil {
		t.Error("empty subset accepted")
	}
}

func TestWithAttrs(t *testing.T) {
	g := mustAttr(t, "G", []string{"M", "W"}, []int{0, 1})
	r := mustAttr(t, "R", []string{"A", "B"}, []int{0, 1})
	tab, err := NewTable(2, g, r)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tab.WithAttrs("R")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Attrs()) != 1 || sub.Attrs()[0].Name != "R" {
		t.Fatal("WithAttrs wrong")
	}
	if _, err := tab.WithAttrs("Z"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestAttrLookup(t *testing.T) {
	g := mustAttr(t, "G", []string{"M", "W"}, []int{0, 1})
	tab, err := NewTable(2, g)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Attr("G") == nil || tab.Attr("X") != nil {
		t.Fatal("Attr lookup wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := mustAttr(t, "Gender", []string{"Man", "Woman"}, []int{0, 1, 1})
	r := mustAttr(t, "Race", []string{"A", "B"}, []int{1, 0, 1})
	tab, err := NewTable(3, g, r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 3 || len(got.Attrs()) != 2 {
		t.Fatal("round trip shape wrong")
	}
	for c := 0; c < 3; c++ {
		if got.Attr("Gender").ValueOf(c) != tab.Attr("Gender").ValueOf(c) {
			t.Fatalf("candidate %d gender mismatch", c)
		}
		if got.Attr("Race").ValueOf(c) != tab.Attr("Race").ValueOf(c) {
			t.Fatalf("candidate %d race mismatch", c)
		}
	}
}

func TestReadTableCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"no body", "candidate,G\n"},
		{"no attrs", "candidate\n0\n"},
		{"bad id", "candidate,G\nx,M\n"},
		{"sparse ids", "candidate,G\n0,M\n2,W\n"},
		{"dup ids", "candidate,G\n0,M\n0,W\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadTableCSV(strings.NewReader(tc.csv)); err == nil {
				t.Fatalf("accepted %q", tc.csv)
			}
		})
	}
}

func TestReadTableCSVValues(t *testing.T) {
	in := "candidate,Gender,Lunch\n1,W,Sub\n0,M,NoSub\n"
	tab, err := ReadTableCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != 2 {
		t.Fatalf("n = %d", tab.N())
	}
	if tab.Attr("Gender").ValueOf(0) != "M" || tab.Attr("Gender").ValueOf(1) != "W" {
		t.Fatal("ids not honoured")
	}
	if tab.Attr("Lunch").ValueOf(1) != "Sub" {
		t.Fatal("second attribute wrong")
	}
}
