package manirank_test

import (
	"math/rand"
	"testing"

	"manirank"
)

func demoTable(t *testing.T, n int) *manirank.Table {
	t.Helper()
	gender := make([]int, n)
	race := make([]int, n)
	for c := 0; c < n; c++ {
		gender[c] = c % 2
		race[c] = (c / 2) % 2
	}
	tab, err := manirank.NewTable(n,
		manirank.MustAttribute("Gender", []string{"M", "W"}, gender),
		manirank.MustAttribute("Race", []string{"A", "B"}, race),
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func demoProfile(t *testing.T, tab *manirank.Table, m int, theta float64, seed int64) manirank.Profile {
	t.Helper()
	n := tab.N()
	// Blocked modal: group A men on top.
	modal := make(manirank.Ranking, 0, n)
	for _, v := range []int{0, 1} {
		for c := 0; c < n; c++ {
			if c%2 == v {
				modal = append(modal, c)
			}
		}
	}
	model, err := manirank.NewMallows(modal, theta)
	if err != nil {
		t.Fatal(err)
	}
	return model.SampleProfile(m, rand.New(rand.NewSource(seed)))
}

func TestPublicAPISolveAndAudit(t *testing.T) {
	tab := demoTable(t, 24)
	p := demoProfile(t, tab, 12, 0.5, 1)
	targets := manirank.Targets(tab, 0.15)

	for name, solve := range map[string]func() (manirank.Ranking, error){
		"FairKemeny":   func() (manirank.Ranking, error) { return manirank.FairKemeny(p, targets, manirank.Options{}) },
		"FairCopeland": func() (manirank.Ranking, error) { return manirank.FairCopeland(p, targets) },
		"FairSchulze":  func() (manirank.Ranking, error) { return manirank.FairSchulze(p, targets) },
		"FairBorda":    func() (manirank.Ranking, error) { return manirank.FairBorda(p, targets) },
	} {
		r, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !manirank.SatisfiesMANIRank(r, tab, 0.15) {
			t.Fatalf("%s output violates MANI-Rank: %v", name, manirank.Audit(r, tab))
		}
	}
}

func TestPublicAPIUnawareAggregators(t *testing.T) {
	tab := demoTable(t, 16)
	p := demoProfile(t, tab, 8, 0.4, 2)
	for name, solve := range map[string]func() (manirank.Ranking, error){
		"Kemeny":   func() (manirank.Ranking, error) { return manirank.Kemeny(p, manirank.KemenyOptions{}) },
		"Borda":    func() (manirank.Ranking, error) { return manirank.Borda(p) },
		"Copeland": func() (manirank.Ranking, error) { return manirank.Copeland(p) },
		"Schulze":  func() (manirank.Ranking, error) { return manirank.Schulze(p) },
	} {
		r, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.IsValid() {
			t.Fatalf("%s returned invalid ranking", name)
		}
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	tab := demoTable(t, 8)
	r := manirank.NewRanking(8)
	if got := manirank.KendallTau(r, r.Reverse()); got != 28 {
		t.Fatalf("KendallTau = %d, want 28", got)
	}
	fprs := manirank.FPR(r, tab.Attr("Gender"))
	if len(fprs) != 2 {
		t.Fatal("FPR shape wrong")
	}
	if arp := manirank.ARP(r, tab.Attr("Gender")); arp < 0 || arp > 1 {
		t.Fatal("ARP out of range")
	}
	if irp := manirank.IRP(r, tab); irp < 0 || irp > 1 {
		t.Fatal("IRP out of range")
	}
	rep := manirank.Audit(r, tab)
	if manirank.FormatReport(rep, tab) == "" {
		t.Fatal("empty report")
	}
	p := manirank.Profile{r.Clone(), r.Clone()}
	if loss := manirank.PDLoss(p, r); loss != 0 {
		t.Fatalf("PD loss to own profile = %v", loss)
	}
}

func TestPublicAPIMakeMRFairAndPoF(t *testing.T) {
	tab := demoTable(t, 24)
	p := demoProfile(t, tab, 10, 0.7, 3)
	targets := manirank.Targets(tab, 0.1)
	unfair, err := manirank.Kemeny(p, manirank.KemenyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := manirank.MakeMRFair(unfair, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !manirank.SatisfiesMANIRank(fair, tab, 0.1) {
		t.Fatal("repair failed")
	}
	if pof := manirank.PriceOfFairness(p, fair, unfair); pof < 0 {
		t.Fatalf("PoF = %v < 0", pof)
	}
}

func TestPublicAPIThresholds(t *testing.T) {
	tab := demoTable(t, 24)
	th := manirank.Thresholds{Default: 0.2, PerAttr: map[string]float64{"Gender": 0.05}, Inter: 0.3}
	targets := manirank.TargetsWithThresholds(tab, th)
	if len(targets) != 3 {
		t.Fatalf("%d targets", len(targets))
	}
	if targets[0].Delta != 0.05 || targets[1].Delta != 0.2 || targets[2].Delta != 0.3 {
		t.Fatal("threshold mapping wrong")
	}
}
