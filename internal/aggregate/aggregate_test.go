package aggregate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/ranking"
)

func randomProfile(n, m int, rng *rand.Rand) ranking.Profile {
	p := make(ranking.Profile, m)
	for i := range p {
		p[i] = ranking.Random(n, rng)
	}
	return p
}

func binaryTable(tb testing.TB, n int) *attribute.Table {
	tb.Helper()
	g := make([]int, n)
	r := make([]int, n)
	for c := 0; c < n; c++ {
		g[c] = c % 2
		r[c] = (c / 2) % 2
	}
	ag, err := attribute.NewAttribute("Gender", []string{"M", "W"}, g)
	if err != nil {
		tb.Fatal(err)
	}
	ar, err := attribute.NewAttribute("Race", []string{"A", "B"}, r)
	if err != nil {
		tb.Fatal(err)
	}
	t, err := attribute.NewTable(n, ag, ar)
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestAllAggregatorsReturnValidPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(15), 1+rng.Intn(8)
		p := randomProfile(n, m, rng)
		w := ranking.MustPrecedence(p)
		b, err := Borda(p)
		if err != nil || !b.IsValid() {
			return false
		}
		if !Copeland(w).IsValid() || !Schulze(w).IsValid() {
			return false
		}
		if !Kemeny(w, KemenyOptions{}).IsValid() {
			return false
		}
		pa, err := PickAPerm(p)
		return err == nil && pa.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCondorcetConsistency(t *testing.T) {
	// When a Condorcet order exists, Copeland, Schulze, and exact Kemeny
	// must all return it.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		modal := ranking.Random(n, rng)
		// A strongly peaked profile: most rankings are the modal.
		p := ranking.Profile{modal.Clone(), modal.Clone(), modal.Clone(), ranking.Random(n, rng)}
		w := ranking.MustPrecedence(p)
		cond, ok := w.CondorcetOrder()
		if !ok {
			continue
		}
		if got := Copeland(w); !got.Equal(cond) {
			t.Fatalf("Copeland %v != Condorcet order %v", got, cond)
		}
		if got := Schulze(w); !got.Equal(cond) {
			t.Fatalf("Schulze %v != Condorcet order %v", got, cond)
		}
		if got := Kemeny(w, KemenyOptions{}); !got.Equal(cond) {
			t.Fatalf("Kemeny %v != Condorcet order %v", got, cond)
		}
	}
}

func TestBordaKnownExample(t *testing.T) {
	// Two rankings: [0 1 2] and [1 0 2]; points: 0 -> 2+1=3, 1 -> 1+2=3,
	// 2 -> 0. Tie between 0 and 1 breaks to lower id.
	p := ranking.Profile{{0, 1, 2}, {1, 0, 2}}
	got, err := Borda(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ranking.Ranking{0, 1, 2}) {
		t.Fatalf("Borda = %v", got)
	}
}

func TestCopelandTieCountsAsWinForBoth(t *testing.T) {
	// Profile splits evenly on (0 vs 1): both earn the contest point, and
	// both beat 2, so the order is 0, 1, 2 (tie broken by id).
	p := ranking.Profile{{0, 1, 2}, {1, 0, 2}}
	w := ranking.MustPrecedence(p)
	got := Copeland(w)
	if !got.Equal(ranking.Ranking{0, 1, 2}) {
		t.Fatalf("Copeland = %v", got)
	}
}

func TestSchulzeBeatsPathExample(t *testing.T) {
	// Classic Schulze example structure: with a clear majority order the
	// strongest paths follow direct comparisons.
	modal := ranking.Ranking{2, 0, 3, 1}
	p := ranking.Profile{modal.Clone(), modal.Clone(), modal.Clone()}
	got := Schulze(ranking.MustPrecedence(p))
	if !got.Equal(modal) {
		t.Fatalf("Schulze = %v, want %v", got, modal)
	}
}

func TestKemenyExactSmallProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(6)
		p := randomProfile(n, 5, rng)
		w := ranking.MustPrecedence(p)
		got := Kemeny(w, KemenyOptions{})
		res := kemeny.BranchAndBound(w, nil, nil, 0)
		if w.KemenyCost(got) != res.Cost {
			t.Fatalf("Kemeny cost %d, optimum %d", w.KemenyCost(got), res.Cost)
		}
	}
}

func TestPickAPermReturnsBestBaseRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProfile(10, 6, rng)
	w := ranking.MustPrecedence(p)
	got, err := PickAPerm(p)
	if err != nil {
		t.Fatal(err)
	}
	best := w.KemenyCost(got)
	for _, r := range p {
		if w.KemenyCost(r) < best {
			t.Fatalf("PickAPerm missed a better base ranking")
		}
	}
}

func TestPickFairestPerm(t *testing.T) {
	tab := binaryTable(t, 8)
	// One blatantly unfair ranking (blocks) and one alternating fair one.
	unfair := ranking.Ranking{0, 2, 4, 6, 1, 3, 5, 7} // men block on top
	fair := ranking.Ranking{0, 1, 2, 3, 4, 5, 6, 7}   // alternates genders
	p := ranking.Profile{unfair, fair}
	got, err := PickFairestPerm(p, tab)
	if err != nil {
		t.Fatal(err)
	}
	gv := fairness.Audit(got, tab).MaxViolation()
	for _, r := range p {
		if fairness.Audit(r, tab).MaxViolation() < gv-1e-12 {
			t.Fatal("PickFairestPerm did not choose the fairest base ranking")
		}
	}
}

func TestFairnessOrder(t *testing.T) {
	tab := binaryTable(t, 8)
	unfair := ranking.Ranking{0, 2, 4, 6, 1, 3, 5, 7}
	fair := ranking.Ranking{0, 1, 2, 3, 4, 5, 6, 7}
	order := FairnessOrder(ranking.Profile{fair, unfair}, tab)
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("FairnessOrder = %v, want [1 0] (least fair first)", order)
	}
}

func TestKemenyWeightedValid(t *testing.T) {
	tab := binaryTable(t, 12)
	rng := rand.New(rand.NewSource(6))
	p := randomProfile(12, 8, rng)
	got, err := KemenyWeighted(p, tab, KemenyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsValid() {
		t.Fatal("Kemeny-Weighted returned an invalid ranking")
	}
}

func TestKemenyWeightedPrefersFairestRanking(t *testing.T) {
	// With two candidate orders split 50/50, the weighting must tip the
	// consensus toward the fairer ranking.
	tab := binaryTable(t, 8)
	unfair := ranking.Ranking{0, 2, 4, 6, 1, 3, 5, 7}
	fair := ranking.Ranking{1, 0, 3, 2, 5, 4, 7, 6}
	p := ranking.Profile{unfair, fair}
	got, err := KemenyWeighted(p, tab, KemenyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := ranking.MustPrecedence(ranking.Profile{fair})
	if w.KemenyCost(got) != 0 {
		t.Fatalf("Kemeny-Weighted should reproduce the fairest ranking, got %v", got)
	}
}

func TestBordaRejectsInvalidProfile(t *testing.T) {
	if _, err := Borda(ranking.Profile{}); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := PickAPerm(ranking.Profile{{0, 0}}); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := PickFairestPerm(ranking.Profile{{0, 1}}, binaryTable(t, 8)); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestBordaWMatchesBorda: the precedence-matrix Borda (row-sum derivation)
// must be bitwise identical to the profile computation for every profile —
// the equivalence the serving layer's shared matrix tier rests on.
func TestBordaWMatchesBorda(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(40), 1+rng.Intn(20)
		p := randomProfile(n, m, rng)
		direct, err := Borda(p)
		if err != nil {
			return false
		}
		return BordaW(ranking.MustPrecedence(p)).Equal(direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
