package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sort"
	"strings"

	"manirank/internal/ranking"
)

// digestVersion namespaces both digests; bump it whenever a canonical
// serialisation below changes, so stale cached results (or matrices) can
// never be served across an upgrade. v2 split the profile sub-digest out of
// the request digest for the precedence-matrix tier.
const digestVersion = "manirankd/v2"

// DefaultEngineVersion is the engine-version component the persistent cache
// namespace carries when the operator doesn't override it
// (-cache-engine-version). Bump it — or pass a new value at deploy time —
// whenever the solvers' deterministic behaviour changes without a digest
// serialisation change, so persisted entries from the old behaviour become
// unreachable.
const DefaultEngineVersion = "1"

// CacheNamespace returns the versioned namespace the persistent cache tier
// files entries under: the digest schema version joined with the engine
// behaviour version. Both components address the on-disk key path, so
// bumping either invalidates every persisted entry by making its path
// unreachable — no deletion pass required (the store prunes stale version
// trees opportunistically on open). An empty engineVersion means
// DefaultEngineVersion.
func CacheNamespace(engineVersion string) string {
	if engineVersion == "" {
		engineVersion = DefaultEngineVersion
	}
	// The store splits namespaces into path segments on "/" and prunes
	// sibling trees of the FIRST segment only, so the whole version pair must
	// collapse into that one segment ("manirankd_v2@engine-1").
	return strings.ReplaceAll(digestVersion, "/", "_") + "@engine-" + engineVersion
}

// Digest returns the full request digest of req (see Digests).
func Digest(req *AggregateRequest) string {
	full, _ := Digests(req)
	return full
}

// Digests returns the two canonical cache keys of an aggregate request.
//
// The profile sub-digest covers exactly the base rankings — the only input
// the precedence matrix W depends on — so it keys the serving layer's
// matrix tier: any method queried over an already-seen profile shares the
// stored W regardless of solver options, thresholds, or attributes.
//
// The full digest is a SHA-256 over a fixed-order serialisation of every
// request field that influences the result — method, solver options,
// fairness thresholds (sorted by name, so Go's randomised map iteration
// order can never perturb the key), attributes, and the profile (folded in
// as the profile sub-digest, hashed once). DeadlineMillis is deliberately
// excluded: the deadline changes how long we are willing to search, not
// what the request asks for, and truncated (partial) results are never
// cached.
//
// Both digests are stable across processes and runs; two structurally equal
// requests always collide and any semantic difference separates them.
func Digests(req *AggregateRequest) (full, profile string) {
	// The profile sub-digest is ranking.Profile.Digest — the shared
	// content-address primitive — under this schema's namespace, so the
	// serving tier and manirank.EngineCache hash a profile identically.
	p := make(ranking.Profile, len(req.Profile))
	for i, row := range req.Profile {
		p[i] = row
	}
	profile = p.Digest(digestVersion + "/profile")

	h := sha256.New()
	writeString(h, digestVersion)
	// Method names are canonicalised exactly the way manirank.ParseMethod
	// accepts them (trimmed, lowercased): a request spelling the method
	// " Kemeny " must share its cache entry — and its coalesced flight —
	// with "kemeny". For clean inputs the bytes are unchanged, so existing
	// digests are stable.
	writeString(h, strings.ToLower(strings.TrimSpace(req.Method)))

	writeFloat(h, req.Delta)
	// The intersection key is matched case-insensitively at build time, so
	// canonicalise the spelling BEFORE sorting — "Intersection" and
	// "intersection" must serialise to the same position and bytes.
	// (buildProblem rejects requests carrying both spellings at once.)
	type kv struct {
		name string
		val  float64
	}
	keys := make([]kv, 0, len(req.Thresholds))
	for k, v := range req.Thresholds {
		name := k
		if interThresholdKey(k) {
			name = "intersection"
		}
		keys = append(keys, kv{name, v})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].name < keys[j].name })
	writeInt(h, int64(len(keys)))
	for _, k := range keys {
		writeString(h, k.name)
		writeFloat(h, k.val)
	}

	o := req.Options
	writeInt(h, o.Seed)
	writeInt(h, int64(o.Perturbations))
	writeInt(h, int64(o.Strength))
	writeInt(h, int64(o.ExactThreshold))
	writeInt(h, o.MaxNodes)

	writeInt(h, int64(len(req.Attributes)))
	for _, a := range req.Attributes {
		writeString(h, a.Name)
		writeInt(h, int64(len(a.Values)))
		for _, v := range a.Values {
			writeString(h, v)
		}
		writeInts(h, a.Of)
	}

	writeString(h, profile)
	return hex.EncodeToString(h.Sum(nil)), profile
}

// SessionDigests returns the cache keys of one session-scoped solve: the
// session's current state as an AggregateRequest, folded with the
// warm-start seed ranking. The warm seed participates because warm-started
// heuristic results are deterministic per (input, warm, options) but not
// identical to cold solves — a session result cached under the plain
// request digest would poison the stateless tier (and vice versa), while
// folding the seed in gives every (state, warm) pair its own entry. An
// empty warm seed hashes as a zero-length ranking, which still differs from
// the stateless digest via the namespace suffix. The profile sub-digest is
// the plain post-mutation one: the matrix depends only on the profile, and
// an incrementally patched W is bitwise identical to a fresh build, so the
// matrix tier shares entries between the session and stateless paths.
func SessionDigests(req *AggregateRequest, warm ranking.Ranking) (full, profile string) {
	base, profile := Digests(req)
	h := sha256.New()
	writeString(h, digestVersion+"/session")
	writeString(h, base)
	writeInts(h, warm)
	return hex.EncodeToString(h.Sum(nil)), profile
}

// writeString writes a length-prefixed string, so no concatenation of
// adjacent fields can collide with a different split of the same bytes.
func writeString(h hash.Hash, s string) {
	writeInt(h, int64(len(s)))
	h.Write([]byte(s))
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeFloat(h hash.Hash, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	h.Write(buf[:])
}

func writeInts(h hash.Hash, vs []int) {
	writeInt(h, int64(len(vs)))
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	h.Write(buf)
}
