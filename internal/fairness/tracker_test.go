package fairness

import (
	"math/rand"
	"testing"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// checkAgainstScratch asserts every tracker accessor agrees bitwise with a
// from-scratch audit of r.
func checkAgainstScratch(t *testing.T, trk *Tracker, r ranking.Ranking, a *attribute.Attribute, step string) {
	t.Helper()
	want := GroupFPRs(r, a)
	for v := range want {
		if got := trk.FPR(v); got != want[v] {
			t.Fatalf("%s: FPR(%d) = %v, scratch %v", step, v, got, want[v])
		}
	}
	if got, want := trk.Spread(), ARP(r, a); got != want {
		t.Fatalf("%s: Spread = %v, ARP %v", step, got, want)
	}
	pos := r.Positions()
	seen := 0
	for v := 0; v < trk.Groups(); v++ {
		ps := trk.Positions(v)
		seen += len(ps)
		last := -1
		for _, p := range ps {
			if p <= last {
				t.Fatalf("%s: Positions(%d) not strictly sorted: %v", step, v, ps)
			}
			last = p
			if a.Of[r[p]] != v {
				t.Fatalf("%s: Positions(%d) claims pos %d but group there is %d", step, v, p, a.Of[r[p]])
			}
		}
	}
	if seen != len(r) {
		t.Fatalf("%s: position lists cover %d of %d positions", step, seen, len(r))
	}
	_ = pos
}

func TestTrackerRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		domain := 1 + rng.Intn(5)
		a := randomAttr(n, domain, rng)
		r := ranking.Random(n, rng)
		trk := NewTracker(r, a)
		checkAgainstScratch(t, trk, r, a, "init")
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				from, to := rng.Intn(n), rng.Intn(n)
				if got, want := trk.SpreadAfterMove(from, to), predictMoveScratch(r, a, from, to); got != want {
					t.Fatalf("SpreadAfterMove(%d,%d) = %v, scratch %v", from, to, got, want)
				}
				trk.ApplyMove(from, to)
				r.MoveTo(from, to)
			} else {
				i, j := rng.Intn(n), rng.Intn(n)
				trk.ApplySwap(i, j)
				r.Swap(i, j)
			}
			checkAgainstScratch(t, trk, r, a, "step")
		}
	}
}

// predictMoveScratch computes the post-move ARP the slow way: clone, move,
// audit.
func predictMoveScratch(r ranking.Ranking, a *attribute.Attribute, from, to int) float64 {
	c := r.Clone()
	c.MoveTo(from, to)
	return ARP(c, a)
}

func TestTrackerSpreadAfterTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		a := randomAttr(n, 2+rng.Intn(3), rng)
		r := ranking.Random(n, rng)
		trk := NewTracker(r, a)
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		va, vb := a.Of[r[i]], a.Of[r[j]]
		got := trk.SpreadAfterTransfer(va, vb, j-i)
		c := r.Clone()
		c.Swap(i, j)
		if want := ARP(c, a); got != want {
			t.Fatalf("SpreadAfterTransfer(%d,%d,%d) = %v, swap-audit %v", va, vb, j-i, got, want)
		}
	}
}

// scanMinDistPairs is the historical O(n·g) bottom-up reference for
// EachMinDistPair.
func scanMinDistPairs(r ranking.Ranking, of []int, g int) [][2]int {
	minD := make([]int, g*g)
	pairPos := make([][2]int, g*g)
	for i := range minD {
		minD[i] = -1
	}
	nearestBelow := make([]int, g)
	for v := range nearestBelow {
		nearestBelow[v] = -1
	}
	for p := len(r) - 1; p >= 0; p-- {
		a := of[r[p]]
		for b := 0; b < g; b++ {
			if b == a || nearestBelow[b] < 0 {
				continue
			}
			if d := nearestBelow[b] - p; minD[a*g+b] < 0 || d < minD[a*g+b] {
				minD[a*g+b] = d
				pairPos[a*g+b] = [2]int{p, nearestBelow[b]}
			}
		}
		nearestBelow[a] = p
	}
	var out [][2]int
	for idx, d := range minD {
		if d >= 0 {
			out = append(out, pairPos[idx])
		}
	}
	return out
}

func TestTrackerEachMinDistPair(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		domain := 1 + rng.Intn(5)
		a := randomAttr(n, domain, rng)
		r := ranking.Random(n, rng)
		trk := NewTracker(r, a)
		check := func(step string) {
			t.Helper()
			want := scanMinDistPairs(r, a.Of, domain)
			var got [][2]int
			trk.EachMinDistPair(func(i, j int) { got = append(got, [2]int{i, j}) })
			if len(got) != len(want) {
				t.Fatalf("%s: %d pairs, scratch %d (got %v want %v)", step, len(got), len(want), got, want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%s: pair %d = %v, scratch %v", step, k, got[k], want[k])
				}
			}
		}
		check("init")
		for step := 0; step < 40; step++ {
			if rng.Intn(4) == 0 {
				from, to := rng.Intn(n), rng.Intn(n)
				trk.ApplyMove(from, to)
				r.MoveTo(from, to)
			} else {
				i, j := rng.Intn(n), rng.Intn(n)
				trk.ApplySwap(i, j)
				r.Swap(i, j)
			}
			check("step")
		}
	}
}

func TestTrackerReset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 25
	a := randomAttr(n, 3, rng)
	r := ranking.Random(n, rng)
	trk := NewTracker(r, a)
	for k := 0; k < 10; k++ {
		trk.ApplySwap(rng.Intn(n), rng.Intn(n))
	}
	r2 := ranking.Random(n, rng)
	trk.Reset(r2)
	checkAgainstScratch(t, trk, r2, a, "reset")
}

// FuzzTrackerParity drives a random MoveTo/Swap sequence from fuzzed bytes
// and asserts the incremental ARP equals fairness.ARP recomputed from
// scratch after every step — the bitwise-parity guarantee the fair solvers
// rely on.
func FuzzTrackerParity(f *testing.F) {
	f.Add(uint8(8), uint8(2), []byte{0x01, 0x23, 0x45, 0x67})
	f.Add(uint8(16), uint8(3), []byte{0xff, 0x00, 0xaa, 0x55, 0x10, 0x42})
	f.Add(uint8(5), uint8(5), []byte{0x00})
	f.Add(uint8(30), uint8(4), []byte{0x13, 0x37, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, nRaw, domRaw uint8, ops []byte) {
		n := 2 + int(nRaw)%63
		domain := 1 + int(domRaw)%6
		rng := rand.New(rand.NewSource(int64(nRaw)*131 + int64(domRaw)))
		a := randomAttr(n, domain, rng)
		r := ranking.Random(n, rng)
		trk := NewTracker(r, a)
		for k := 0; k+2 < len(ops); k += 3 {
			x, y := int(ops[k+1])%n, int(ops[k+2])%n
			if ops[k]%2 == 0 {
				if got, want := trk.SpreadAfterMove(x, y), predictMoveScratch(r, a, x, y); got != want {
					t.Fatalf("SpreadAfterMove(%d,%d) = %v, scratch %v", x, y, got, want)
				}
				trk.ApplyMove(x, y)
				r.MoveTo(x, y)
			} else {
				trk.ApplySwap(x, y)
				r.Swap(x, y)
			}
			if got, want := trk.Spread(), ARP(r, a); got != want {
				t.Fatalf("after op %d: Spread = %v, ARP %v", k/3, got, want)
			}
		}
		want := scanMinDistPairs(r, a.Of, domain)
		var got [][2]int
		trk.EachMinDistPair(func(i, j int) { got = append(got, [2]int{i, j}) })
		if len(got) != len(want) {
			t.Fatalf("EachMinDistPair: %d pairs, scratch %d", len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("EachMinDistPair pair %d = %v, scratch %v", k, got[k], want[k])
			}
		}
	})
}
