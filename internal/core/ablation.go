package core

import (
	"fmt"

	"manirank/internal/ranking"
)

// RepairPolicy selects the swap-selection strategy used by Make-MR-Fair.
// The default PolicyImpactful is the paper's design; PolicyFineGrained is an
// ablation that always takes the finest available step, and exists to
// quantify how much the paper's "fewer but more impactful swaps" choice
// saves (see DESIGN.md, ablations, and BenchmarkAblationSwapPolicy).
type RepairPolicy int

const (
	// PolicyImpactful prefers the paper's long swap (lowest member of the
	// highest-FPR group against the highest member of the lowest-FPR group
	// below it) and falls back to fine-grained transfers only when the long
	// swap would overshoot parity.
	PolicyImpactful RepairPolicy = iota
	// PolicyFineGrained always performs the best minimum-distance transfer,
	// taking many small steps.
	PolicyFineGrained
)

// RepairToLevels walks r toward parity in the smallest possible steps —
// adjacent pair swaps, each transferring exactly one mixed-pair win per
// attribute — until every target's spread is at or below its delta. Because
// each step moves every parity score by at most one win quantum, the
// resulting scores sit as close to their targets as the granularity allows.
// It exists for dataset generation (building rankings with *requested
// levels of unfairness*, paper Table I); consensus repair should use
// MakeMRFair, which takes far fewer, larger swaps. When no adjacent swap
// makes progress (tied plateaus), one minimum-distance transfer from the
// global search unsticks the walk.
func RepairToLevels(r ranking.Ranking, targets []Target) (ranking.Ranking, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	eng := newParityEngine(r, targets)
	n := len(r)
	maxIters := n*n*(len(targets)+1) + n
	for iter := 0; ; iter++ {
		cur := eng.potential()
		if cur <= 0 {
			return eng.r, nil
		}
		if iter >= maxIters {
			return nil, fmt.Errorf("%w (gave up after %d adjacent swaps)", ErrUnrepairable, iter)
		}
		if p, ok := eng.findBestAdjacentSwap(cur); ok {
			eng.swap(p, p+1)
			continue
		}
		i, j, ok := eng.findBestGlobalTransfer(cur)
		if !ok {
			return nil, ErrUnrepairable
		}
		eng.swap(i, j)
	}
}

// MakeMRFairWithPolicy is MakeMRFair with an explicit swap-selection policy
// and a swap counter, supporting the swap-policy ablation study. It returns
// the repaired ranking and the number of pair swaps performed.
func MakeMRFairWithPolicy(r ranking.Ranking, targets []Target, policy RepairPolicy) (ranking.Ranking, int, error) {
	if err := r.Validate(); err != nil {
		return nil, 0, err
	}
	for _, tg := range targets {
		if tg.Attr.N() != len(r) {
			return nil, 0, fmt.Errorf("core: target attribute %q covers %d candidates, ranking has %d", tg.Attr.Name, tg.Attr.N(), len(r))
		}
		if tg.Delta < 0 || tg.Delta > 1 {
			return nil, 0, fmt.Errorf("core: target %q has Delta %v outside [0,1]", tg.Attr.Name, tg.Delta)
		}
	}
	eng := newParityEngine(r, targets)
	n := len(r)
	maxIters := n*n*(len(targets)+1) + n
	for iter := 0; ; iter++ {
		cur := eng.potential()
		if cur <= 0 {
			return eng.r, iter, nil
		}
		if iter >= maxIters {
			return nil, iter, fmt.Errorf("%w (gave up after %d swaps)", ErrUnrepairable, iter)
		}
		if policy == PolicyImpactful {
			k := eng.worstTarget()
			vh, vl := eng.extremeGroups(k)
			i1, j1, ok1 := eng.findSwap(k, vh, vl)
			i2, j2, ok2 := eng.findCappedSwap(k, vh, vl)
			if ok1 && ok2 && j2-i2 > j1-i1 {
				i1, j1, i2, j2 = i2, j2, i1, j1
			} else if !ok1 {
				i1, j1, ok1 = i2, j2, ok2
				ok2 = false
			}
			if ok1 && eng.potentialAfter(i1, j1) < cur-improveEps {
				eng.swap(i1, j1)
				continue
			}
			if ok2 && eng.potentialAfter(i2, j2) < cur-improveEps {
				eng.swap(i2, j2)
				continue
			}
		}
		i, j, ok := eng.findBestGlobalTransfer(cur)
		if !ok {
			return nil, iter, ErrUnrepairable
		}
		eng.swap(i, j)
	}
}
