package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"

	"manirank"
	"manirank/internal/service"
	"manirank/internal/service/cache"
	"manirank/internal/service/loadgen"
)

// serveBenchReport is the BENCH_<n>.json "serving" section: one loadgen run
// per (replacement policy, Zipf skew, method mix) cell against an
// in-process manirankd.
type serveBenchReport struct {
	Candidates int              `json:"candidates"`
	Rankers    int              `json:"rankers"`
	Profiles   int              `json:"distinct_profiles"`
	Clients    int              `json:"clients"`
	CacheSize  int              `json:"cache_size"`
	Workers    int              `json:"workers"`
	Runs       []loadgen.Result `json:"runs"`
}

// serveCell is one sweep coordinate: replacement policy × method mix ×
// popularity skew.
type serveCell struct {
	policy  string
	methods []string
	zipfS   float64
}

// serveSkews is the swept popularity range: uniform and the low-skew band
// where replacement policy matters most (the hot set barely dominates, so
// eviction decisions are consequential), up to strongly peaked traffic
// where any policy holds the hot keys.
var serveSkews = []float64{0, 0.5, 1.2, 2.0}

// serveMethodMixes is the profile-reuse axis: a single-method workload
// (every distinct profile is seen under exactly one request shape, so the
// precedence tier only helps on result-cache evictions and coalesced
// rebuilds) versus a four-method mix over the same profiles, where each
// matrix is reusable by up to four distinct result-cache keys.
var serveMethodMixes = [][]string{
	{manirank.MethodFairKemeny.String()},
	{manirank.MethodBorda.String(), manirank.MethodCopeland.String(),
		manirank.MethodSchulze.String(), manirank.MethodFairKemeny.String()},
}

// runServeBench boots the serving stack on a loopback listener and replays
// the synthetic Mallows workload across the full sweep: both replacement
// policies, the Zipf skews in serveSkews (uniform is the cache's worst case
// at this working-set size; at high skew the hit rate should climb toward
// 1), and both method mixes.
func runServeBench(seed int64, requests, clients, profiles, cacheSize int) error {
	report := serveBenchReport{
		Candidates: 60,
		Rankers:    40,
		Profiles:   profiles,
		Clients:    clients,
		CacheSize:  cacheSize,
		Workers:    runtime.GOMAXPROCS(0),
	}
	for _, methods := range serveMethodMixes {
		for _, policy := range cache.Policies() {
			for _, s := range serveSkews {
				cell := serveCell{policy: policy, methods: methods, zipfS: s}
				res, err := serveBenchRun(report, cell, seed, requests)
				if err != nil {
					return err
				}
				// 429s are legitimate backpressure under load; request errors
				// mean the serving stack is broken — fail the run (CI's smoke
				// relies on this exit code).
				if res.Errors > 0 {
					return fmt.Errorf("serve-bench policy=%s zipf_s=%.1f: %d request errors", policy, s, res.Errors)
				}
				report.Runs = append(report.Runs, res)
				fmt.Fprintf(os.Stderr, "serve-bench policy=%s methods=%d zipf_s=%.1f: %.1f req/s, hit rate %.2f, matrix builds %d skipped %d, p50 %.1fms, p99 %.1fms (%d errors, %d rejected)\n",
					policy, len(methods), s, res.Throughput, res.HitRate, res.MatrixBuilds, res.MatrixBuildsSkipped, res.P50LatencyMS, res.P99LatencyMS, res.Errors, res.Rejected)
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// serveBenchRun measures one sweep cell against a FRESH server — each run
// gets its own cold caches, so the per-cell hit rates are comparable rather
// than inflated by entries a previous cell warmed.
func serveBenchRun(report serveBenchReport, cell serveCell, seed int64, requests int) (loadgen.Result, error) {
	srv, err := service.New(service.Config{
		CacheSize:   report.CacheSize,
		CachePolicy: cell.policy,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	res, err := loadgen.Run(loadgen.Config{
		URL:      "http://" + ln.Addr().String(),
		Clients:  report.Clients,
		Requests: requests,
		Profiles: report.Profiles,
		ZipfS:    cell.zipfS,
		Methods:  cell.methods,
		Seed:     seed,
	})
	if err != nil {
		return res, err
	}
	if res.Policy != cell.policy {
		return res, fmt.Errorf("serve-bench: server reported policy %q, want %q", res.Policy, cell.policy)
	}
	return res, nil
}
