package manirank_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"manirank"
	"manirank/internal/aggregate"
	"manirank/internal/core"
	"manirank/internal/kemeny"
	"manirank/internal/service"
)

// discardLogger silences the service's request logs in tests.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// pinnedSeed and pinned worker counts make every solver in the parity
// tests fully deterministic, so "bitwise identical" is a meaningful
// assertion rather than a flaky one.
const pinnedSeed = 7

// pinnedKemenyOptions is the legacy-struct form of the pinned solver
// configuration; the Engine side expresses the same thing through
// functional SolveOptions.
func pinnedKemenyOptions() manirank.KemenyOptions {
	return manirank.KemenyOptions{Heuristic: kemeny.Options{Seed: pinnedSeed, Workers: 1}}
}

func pinnedSolveOptions() []manirank.SolveOption {
	return []manirank.SolveOption{
		manirank.WithSeed(pinnedSeed),
		manirank.WithSolverWorkers(1),
	}
}

// legacyCall maps every registered method to the entry point it deprecates:
// the root wrappers for the canonical eight, the internal packages for the
// experiment baselines (which never had root wrappers).
func legacyCall(m manirank.Method, p manirank.Profile, tab *manirank.Table, targets []manirank.Target) (manirank.Ranking, error) {
	kopts := pinnedKemenyOptions()
	switch m {
	case manirank.MethodBorda:
		return manirank.Borda(p)
	case manirank.MethodCopeland:
		return manirank.Copeland(p)
	case manirank.MethodSchulze:
		return manirank.Schulze(p)
	case manirank.MethodKemeny:
		return manirank.Kemeny(p, kopts)
	case manirank.MethodFairBorda:
		return manirank.FairBorda(p, targets)
	case manirank.MethodFairCopeland:
		return manirank.FairCopeland(p, targets)
	case manirank.MethodFairSchulze:
		return manirank.FairSchulze(p, targets)
	case manirank.MethodFairKemeny:
		return manirank.FairKemeny(p, targets, manirank.Options{Kemeny: kopts})
	case manirank.MethodKemenyWeighted:
		return aggregate.KemenyWeighted(p, tab, kopts)
	case manirank.MethodPickFairestPerm:
		return aggregate.PickFairestPerm(p, tab)
	case manirank.MethodCorrectFairestPerm:
		return core.CorrectFairestPerm(p, targets)
	}
	return nil, fmt.Errorf("no legacy mapping for %v", m)
}

// TestEngineSolveMatchesLegacy is the registry parity property: on several
// instances, every registered method must produce a ranking bitwise
// identical to its legacy entry point. This is what lets the legacy
// wrappers be deprecated rather than maintained as a second code path.
func TestEngineSolveMatchesLegacy(t *testing.T) {
	instances := []struct {
		n, m  int
		theta float64
		seed  int64
		delta float64
	}{
		{16, 9, 0.4, 1, 0.25},
		{24, 12, 0.5, 2, 0.15},
		{40, 21, 0.7, 3, 0.2},
	}
	for _, inst := range instances {
		tab := demoTable(t, inst.n)
		p := demoProfile(t, tab, inst.m, inst.theta, inst.seed)
		targets := manirank.Targets(tab, inst.delta)
		eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range manirank.AllMethods() {
			res, err := eng.Solve(context.Background(), m, targets, pinnedSolveOptions()...)
			if err != nil {
				t.Fatalf("n=%d %s: Engine.Solve: %v", inst.n, m, err)
			}
			want, err := legacyCall(m, p, tab, targets)
			if err != nil {
				t.Fatalf("n=%d %s: legacy: %v", inst.n, m, err)
			}
			if !reflect.DeepEqual(res.Ranking, want) {
				t.Errorf("n=%d %s: Engine.Solve deviates from legacy entry point\nengine: %v\nlegacy: %v",
					inst.n, m, res.Ranking, want)
			}
			if res.Partial {
				t.Errorf("n=%d %s: uncancelled solve flagged partial", inst.n, m)
			}
			if res.Report == nil {
				t.Errorf("n=%d %s: engine with table returned nil Report", inst.n, m)
			}
			if res.Method != m {
				t.Errorf("n=%d %s: Result.Method = %s", inst.n, m, res.Method)
			}
		}
	}
}

// TestEngineSolveMatchesHTTP closes the loop across the third surface: for
// every served method, the ranking coming back over manirankd's HTTP API
// must equal both Engine.Solve and the legacy entry point on the same
// instance (fixed seed, solver workers pinned to 1 on both sides).
func TestEngineSolveMatchesHTTP(t *testing.T) {
	const n, m, delta = 24, 12, 0.2
	tab := demoTable(t, n)
	p := demoProfile(t, tab, m, 0.5, 4)
	targets := manirank.Targets(tab, delta)
	eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}

	srv, err := service.New(service.Config{Workers: 1, SolverWorkers: 1, Logger: discardLogger()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// The wire form of the shared instance; the attribute specs mirror
	// demoTable exactly.
	profile := make([][]int, len(p))
	for i, r := range p {
		profile[i] = []int(r)
	}
	attrs := make([]service.AttributeSpec, 0, 2)
	for _, a := range tab.Attrs() {
		attrs = append(attrs, service.AttributeSpec{Name: a.Name, Values: a.Values, Of: a.Of})
	}

	for _, method := range manirank.Methods() {
		req := service.AggregateRequest{
			Method:  method.String(),
			Profile: profile,
			Options: service.SolverOptions{Seed: pinnedSeed},
		}
		if method.IsFair() {
			req.Delta = delta
		}
		req.Attributes = attrs
		body, err := json.Marshal(&req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/v1/aggregate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: POST: %v", method, err)
		}
		var ar service.AggregateResponse
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("%s: decode: %v", method, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: HTTP %d", method, resp.StatusCode)
		}

		var engTargets []manirank.Target
		if method.IsFair() {
			engTargets = targets
		}
		res, err := eng.Solve(context.Background(), method, engTargets, pinnedSolveOptions()...)
		if err != nil {
			t.Fatalf("%s: Engine.Solve: %v", method, err)
		}
		if !reflect.DeepEqual(ar.Ranking, res.Ranking) {
			t.Errorf("%s: HTTP ranking deviates from Engine.Solve\nhttp:   %v\nengine: %v",
				method, ar.Ranking, res.Ranking)
		}
		legacy, err := legacyCall(method, p, tab, targets)
		if err != nil {
			t.Fatalf("%s: legacy: %v", method, err)
		}
		if !reflect.DeepEqual(ar.Ranking, legacy) {
			t.Errorf("%s: HTTP ranking deviates from legacy entry point\nhttp:   %v\nlegacy: %v",
				method, ar.Ranking, legacy)
		}
	}
}

// TestMethodSets pins the public method sets against the registry: the
// canonical eight in documented order, the three baselines, and a lossless
// ParseMethod/String round trip for all of them — the property that keeps
// the CLI usage string and the service's accepted values from drifting.
func TestMethodSets(t *testing.T) {
	wantNames := []string{
		"borda", "copeland", "schulze", "kemeny",
		"fair-borda", "fair-copeland", "fair-schulze", "fair-kemeny",
	}
	if got := manirank.MethodNames(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("MethodNames() = %v, want %v", got, wantNames)
	}
	if got, want := len(manirank.Baselines()), 3; got != want {
		t.Fatalf("len(Baselines()) = %d, want %d", got, want)
	}
	if got, want := len(manirank.AllMethods()), 11; got != want {
		t.Fatalf("len(AllMethods()) = %d, want %d", got, want)
	}
	for _, m := range manirank.AllMethods() {
		parsed, err := manirank.ParseMethod(m.String())
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", m.String(), err)
		}
		if parsed != m {
			t.Fatalf("round trip %q: got %v, want %v", m.String(), parsed, m)
		}
	}
	// Case-insensitive parsing, as the HTTP API documents for its method
	// field.
	if m, err := manirank.ParseMethod("Fair-Kemeny"); err != nil || m != manirank.MethodFairKemeny {
		t.Fatalf("ParseMethod(Fair-Kemeny) = %v, %v", m, err)
	}
	if _, err := manirank.ParseMethod("no-such-method"); err == nil {
		t.Fatal("ParseMethod accepted an unknown name")
	}
	if got := manirank.MethodInvalid.String(); got != "invalid" {
		t.Fatalf("MethodInvalid.String() = %q", got)
	}
	if !manirank.MethodCorrectFairestPerm.IsFair() || manirank.MethodKemeny.IsFair() {
		t.Fatal("IsFair misclassifies methods")
	}
	if !manirank.MethodKemenyWeighted.Baseline() || manirank.MethodBorda.Baseline() {
		t.Fatal("Baseline misclassifies methods")
	}
}

// TestEngineValidation exercises the constructor and Solve input checks.
func TestEngineValidation(t *testing.T) {
	tab := demoTable(t, 16)
	p := demoProfile(t, tab, 8, 0.5, 5)
	eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}

	// A matrix-only engine can solve pairwise methods but not the
	// profile-consuming baselines.
	wOnly, err := manirank.NewEngineW(eng.Precedence())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wOnly.Solve(context.Background(), manirank.MethodBorda, nil); err != nil {
		t.Fatalf("matrix-only Borda: %v", err)
	}
	if _, err := wOnly.Solve(context.Background(), manirank.MethodCorrectFairestPerm, manirank.Targets(tab, 0.2)); !errors.Is(err, manirank.ErrProfileRequired) {
		t.Fatalf("matrix-only baseline error = %v, want ErrProfileRequired", err)
	}

	// Table-consuming methods need WithTable.
	noTab, err := manirank.NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noTab.Solve(context.Background(), manirank.MethodPickFairestPerm, nil); !errors.Is(err, manirank.ErrTableRequired) {
		t.Fatalf("table-less pick-fairest-perm error = %v, want ErrTableRequired", err)
	}
	if res, err := noTab.Solve(context.Background(), manirank.MethodBorda, nil); err != nil || res.Report != nil {
		t.Fatalf("table-less Borda: err=%v report=%v (want nil report)", err, res.Report)
	}

	// Unregistered methods and mismatched tables fail loudly.
	if _, err := eng.Solve(context.Background(), manirank.MethodInvalid, nil); err == nil {
		t.Fatal("Solve accepted MethodInvalid")
	}
	small := demoTable(t, 8)
	if _, err := manirank.NewEngine(p, manirank.WithTable(small)); err == nil {
		t.Fatal("NewEngine accepted a table over the wrong candidate count")
	}
	if _, err := manirank.NewEngineW(nil); err == nil {
		t.Fatal("NewEngineW accepted a nil matrix")
	}
}

// TestEngineSharedMatrixReuse pins the tentpole's economics: the matrix
// built by one Engine is the same object served to every Solve, and an
// Engine wrapped around it (the serving layer's cache path) produces
// identical rankings.
func TestEngineSharedMatrixReuse(t *testing.T) {
	tab := demoTable(t, 24)
	p := demoProfile(t, tab, 10, 0.6, 6)
	targets := manirank.Targets(tab, 0.2)
	eng, err := manirank.NewEngine(p, manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := manirank.NewEngineW(eng.Precedence(), manirank.WithTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range manirank.Methods() {
		a, err := eng.Solve(context.Background(), m, targets, pinnedSolveOptions()...)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		b, err := wrapped.Solve(context.Background(), m, targets, pinnedSolveOptions()...)
		if err != nil {
			t.Fatalf("%s (wrapped): %v", m, err)
		}
		if !reflect.DeepEqual(a.Ranking, b.Ranking) {
			t.Errorf("%s: wrapped engine deviates", m)
		}
		if a.PDLoss != b.PDLoss {
			t.Errorf("%s: PD loss deviates: %v vs %v", m, a.PDLoss, b.PDLoss)
		}
	}
}
