// CSRankings reproduces the paper's appendix case study (Table V): 21
// yearly rankings of 65 US computer science departments carrying Location
// (Northeast/Midwest/West/South) and Type (Private/Public) attributes. The
// yearly rankings persistently favour Northeast and Private institutions;
// a 20-year Kemeny consensus amplifies that bias, while the MFCR methods at
// Delta = 0.05 produce a de-biased consensus — demonstrating MANI-Rank on
// ranked entities other than people.
package main

import (
	"context"
	"fmt"
	"log"

	"manirank"
	"manirank/internal/unfairgen"
)

func main() {
	study, err := unfairgen.NewCSRankingsStudy(17)
	if err != nil {
		log.Fatal(err)
	}
	table := study.Table
	profile := manirank.Profile(study.Profile)

	row := func(name string, r manirank.Ranking) {
		loc := manirank.FPR(r, table.Attr("Location"))
		typ := manirank.FPR(r, table.Attr("Type"))
		rep := manirank.Audit(r, table)
		fmt.Printf("%-13s NE=%.2f MW=%.2f W=%.2f S=%.2f loc=%.2f | priv=%.2f pub=%.2f type=%.2f | IRP=%.2f\n",
			name, loc[0], loc[1], loc[2], loc[3], rep.ARPs[0], typ[0], typ[1], rep.ARPs[1], rep.IRP)
	}

	fmt.Println("Sample of yearly base rankings:")
	for _, idx := range []int{0, 10, 20} {
		row(fmt.Sprintf("%d", study.Years[idx]), profile[idx])
	}

	// One Engine, five methods, one shared precedence matrix: the 21-year
	// profile is validated and aggregated once, and every consensus below
	// reuses it.
	engine, err := manirank.NewEngine(profile, manirank.WithTable(table))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	kemeny, err := engine.Solve(ctx, manirank.MethodKemeny, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n20-year consensus:")
	row("Kemeny", kemeny.Ranking)

	targets := manirank.Targets(table, 0.05)
	var fair *manirank.Result
	for _, m := range []struct {
		name   string
		method manirank.Method
	}{
		{"Fair-Kemeny", manirank.MethodFairKemeny},
		{"Fair-Schulze", manirank.MethodFairSchulze},
		{"Fair-Borda", manirank.MethodFairBorda},
		{"Fair-Copeland", manirank.MethodFairCopeland},
	} {
		res, err := engine.Solve(ctx, m.method, targets)
		if err != nil {
			log.Fatal(err)
		}
		row(m.name, res.Ranking)
		if m.method == manirank.MethodFairKemeny {
			fair = res
		}
	}

	fmt.Println("\nTop 10 departments, Kemeny vs Fair-Kemeny:")
	for pos := 0; pos < 10; pos++ {
		k, f := kemeny.Ranking[pos], fair.Ranking[pos]
		fmt.Printf("  %2d. dept %2d (%s/%s)   vs   dept %2d (%s/%s)\n", pos+1,
			k, table.Attr("Location").ValueOf(k), table.Attr("Type").ValueOf(k),
			f, table.Attr("Location").ValueOf(f), table.Attr("Type").ValueOf(f))
	}
}
