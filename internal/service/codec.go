package service

import (
	"encoding/json"

	"manirank/internal/ranking"
	"manirank/internal/service/cache"
)

// resultCodec serialises cached consensus results for the persistent tier as
// JSON — the same wire shape the HTTP response embeds, so a restored entry is
// byte-equivalent to what the original request would have answered.
func resultCodec() cache.Codec {
	return cache.Codec{
		Encode: func(v any) ([]byte, error) { return json.Marshal(v.(*result)) },
		Decode: func(data []byte) (any, error) {
			var r result
			if err := json.Unmarshal(data, &r); err != nil {
				return nil, err
			}
			return &r, nil
		},
	}
}

// matrixCodec serialises precedence matrices in ranking's flat-int32 wire
// form (MarshalBinary / UnmarshalPrecedence) — one linear pass each way, and
// the persisted entry is exactly as compact as the live matrix.
func matrixCodec() cache.Codec {
	return cache.Codec{
		Encode: func(v any) ([]byte, error) { return v.(*ranking.Precedence).MarshalBinary() },
		Decode: func(data []byte) (any, error) { return ranking.UnmarshalPrecedence(data) },
	}
}

// matrixCost prices a disk-restored matrix for memory admission: the same n²
// cells a fresh build charges.
func matrixCost(v any) int64 { return v.(*ranking.Precedence).Cells() }
