#!/usr/bin/env bash
# smoke_serve.sh — end-to-end serving smoke: build manirankd, start it, POST
# a 20-candidate profile, assert 200 + a valid ranking, assert the second
# identical request is served from the result cache, and assert a different
# method over the same profile skips the precedence-matrix build (the
# two-tier contract). Then the persistence contract: restart the daemon over
# the same -cache-dir and assert the first repeated request is a disk-warm
# hit (no solver run, no matrix build), and that bumping
# -cache-engine-version invalidates everything persisted. Used by CI's
# serve-smoke stage.
set -euo pipefail

cd "$(dirname "$0")/.."

go build -o /tmp/manirankd ./cmd/manirankd

PORT="${SMOKE_PORT:-18080}"
CACHE_DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$CACHE_DIR"
}
trap cleanup EXIT

/tmp/manirankd -addr "127.0.0.1:${PORT}" &
SERVER_PID=$!

BASE="http://127.0.0.1:${PORT}"
wait_healthy() {
  for i in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "server never became healthy" >&2
  exit 1
}
wait_healthy
echo "healthz ok"

# 20 candidates, alternating binary Gender, three base rankings.
REQ='{
  "method": "fair-kemeny",
  "profile": [
    [0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19],
    [19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0],
    [1,0,3,2,5,4,7,6,9,8,11,10,13,12,15,14,17,16,19,18]
  ],
  "attributes": [{
    "name": "Gender",
    "values": ["M", "W"],
    "of": [0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1,0,1]
  }],
  "delta": 0.2
}'

FIRST="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "first response: $FIRST"
echo "$FIRST" | grep -q '"ranking":\[' || { echo "no ranking in response" >&2; exit 1; }
# A valid 20-candidate ranking has exactly 20 comma-separated entries.
COUNT="$(echo "$FIRST" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p' | tr ',' '\n' | wc -l)"
[ "$COUNT" = 20 ] || { echo "ranking has $COUNT entries, want 20" >&2; exit 1; }
echo "$FIRST" | grep -q '"cached":false' || { echo "first request claimed a cache hit" >&2; exit 1; }
echo "$FIRST" | grep -q '"partial":false' || { echo "first request was truncated" >&2; exit 1; }

SECOND="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "$SECOND" | grep -q '"cached":true' || { echo "second identical request missed the cache: $SECOND" >&2; exit 1; }

# The two responses must carry the same consensus ranking.
R1="$(echo "$FIRST" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
R2="$(echo "$SECOND" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
[ "$R1" = "$R2" ] || { echo "cache returned a different ranking" >&2; exit 1; }

# A different method over the SAME profile: a result-cache miss that must
# reuse the stored precedence matrix (builds_skipped > 0 in /statz).
SCHULZE_REQ="$(echo "$REQ" | sed 's/"fair-kemeny"/"schulze"/')"
THIRD="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$SCHULZE_REQ")"
echo "$THIRD" | grep -q '"cached":false' || { echo "different method claimed a result-cache hit" >&2; exit 1; }
echo "$THIRD" | grep -q '"ranking":\[' || { echo "no ranking in schulze response" >&2; exit 1; }

STATZ="$(curl -sf "$BASE/statz")"
echo "statz: $STATZ"
echo "$STATZ" | grep -q '"hits":1' || { echo "statz did not record the result-cache hit" >&2; exit 1; }
# Precedence tier: one build (first request), one skip (schulze reused it).
echo "$STATZ" | grep -q '"builds":1' || { echo "statz did not show exactly one matrix build" >&2; exit 1; }
echo "$STATZ" | grep -q '"builds_skipped":1' || { echo "statz did not show the skipped matrix build" >&2; exit 1; }

# --- /metricsz: Prometheus text over the same registry as /statz ---
METRICS="$(curl -sf "$BASE/metricsz")"
# Every line must be exposition text: a comment, or `name{labels} value`.
BAD="$(echo "$METRICS" | grep -Ev '^[a-z_]+(\{[^}]*\})? [0-9.e+-]+$|^#' || true)"
[ -z "$BAD" ] || { echo "metricsz lines fail the exposition grammar:" >&2; echo "$BAD" >&2; exit 1; }
HITS_BEFORE="$(echo "$METRICS" | grep -F 'manirank_cache_hits_total{tier="result"}' | awk '{print $2}')"
[ -n "$HITS_BEFORE" ] || { echo "metricsz is missing the result-tier hit counter" >&2; exit 1; }
# Replaying the cached request must move the live counter between scrapes.
curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ" >/dev/null
HITS_AFTER="$(curl -sf "$BASE/metricsz" | grep -F 'manirank_cache_hits_total{tier="result"}' | awk '{print $2}')"
awk -v a="$HITS_BEFORE" -v b="$HITS_AFTER" 'BEGIN { exit !(b > a) }' \
  || { echo "manirank_cache_hits_total did not increase across a repeated request ($HITS_BEFORE -> $HITS_AFTER)" >&2; exit 1; }
echo "metricsz smoke ok"

echo "serve smoke ok"

# --- Streaming sessions: create, churn, and tear down a /v1/session ---
CREATED="$(curl -sf -X POST "$BASE/v1/session" -H 'Content-Type: application/json' -d "$REQ")"
echo "session create: $CREATED"
SID="$(echo "$CREATED" | sed -n 's/.*"session_id":"\([0-9a-f]*\)".*/\1/p')"
[ -n "$SID" ] || { echo "session create returned no session_id" >&2; exit 1; }
echo "$CREATED" | grep -q '"ranking":\[' || { echo "no ranking in session create" >&2; exit 1; }
echo "$CREATED" | grep -q '"version":0' || { echo "fresh session is not at version 0" >&2; exit 1; }

# A bare re-solve of the unchanged state must come out of the result cache.
RESOLVE="$(curl -sf -X POST "$BASE/v1/session/$SID" -H 'Content-Type: application/json' -d '{"op":"solve"}')"
echo "$RESOLVE" | grep -q '"cached":true' || { echo "session re-solve missed the result cache: $RESOLVE" >&2; exit 1; }

# A mutation patches the matrix in place (no new build), bumps the version,
# and the re-solve is warm-started off the previous consensus — never cached.
UPDATED="$(curl -sf -X POST "$BASE/v1/session/$SID" -H 'Content-Type: application/json' \
  -d '{"op":"update","index":0,"ranking":[19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0]}')"
echo "session update: $UPDATED"
echo "$UPDATED" | grep -q '"version":1' || { echo "update did not bump the session version" >&2; exit 1; }
echo "$UPDATED" | grep -q '"cached":false' || { echo "mutated state claimed a cache hit" >&2; exit 1; }
echo "$UPDATED" | grep -q '"warm_started":true' || { echo "post-mutation solve was not warm-started" >&2; exit 1; }
echo "$UPDATED" | grep -q '"ranking":\[' || { echo "no ranking after session update" >&2; exit 1; }

# Adding a ranking grows the profile; the churned session never re-paid the
# full matrix build (still exactly one build from the very first request).
ADDED="$(curl -sf -X POST "$BASE/v1/session/$SID" -H 'Content-Type: application/json' \
  -d '{"op":"add","ranking":[0,2,1,4,3,6,5,8,7,10,9,12,11,14,13,16,15,18,17,19]}')"
echo "$ADDED" | grep -q '"rankers":4' || { echo "add did not grow the session profile: $ADDED" >&2; exit 1; }
STATZ="$(curl -sf "$BASE/statz")"
echo "$STATZ" | grep -q '"builds":1' || { echo "session churn re-ran a matrix build" >&2; exit 1; }
echo "$STATZ" | grep -q '"active":1' || { echo "statz does not show the live session" >&2; exit 1; }

INFO="$(curl -sf "$BASE/v1/session/$SID")"
echo "$INFO" | grep -q '"version":2' || { echo "session info has wrong version: $INFO" >&2; exit 1; }
curl -sf -X DELETE "$BASE/v1/session/$SID" >/dev/null || { echo "session delete failed" >&2; exit 1; }
CODE="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/session/$SID")"
[ "$CODE" = 404 ] || { echo "deleted session still answers ($CODE)" >&2; exit 1; }
echo "session smoke ok"

# --- Persistence: warm restart over -cache-dir ---
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true

/tmp/manirankd -addr "127.0.0.1:${PORT}" -cache-dir "$CACHE_DIR" &
SERVER_PID=$!
wait_healthy
COLD="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "$COLD" | grep -q '"cached":false' || { echo "first request against the fresh cache dir claimed a hit" >&2; exit 1; }
# SIGTERM: the daemon's graceful shutdown flushes both tiers to disk.
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true

/tmp/manirankd -addr "127.0.0.1:${PORT}" -cache-dir "$CACHE_DIR" &
SERVER_PID=$!
wait_healthy
WARM="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "$WARM" | grep -q '"cached":true' || { echo "restarted daemon did not serve from the persistent tier: $WARM" >&2; exit 1; }
RW="$(echo "$WARM" | sed -n 's/.*"ranking":\[\([0-9,]*\)\].*/\1/p')"
[ "$R1" = "$RW" ] || { echo "disk-restored ranking differs from the original" >&2; exit 1; }
STATZ="$(curl -sf "$BASE/statz")"
# Result tier: the hit came off disk, not memory, and no solve ran.
RESULT_TIER="$(echo "$STATZ" | sed -n 's/.*"cache":{\([^}]*\)}.*/\1/p')"
echo "$RESULT_TIER" | grep -q '"disk_hits":1' || { echo "statz did not record the result-tier disk hit: $RESULT_TIER" >&2; exit 1; }
# Matrix tier: nothing was rebuilt for a result-tier disk hit.
MATRIX_TIER="$(echo "$STATZ" | sed -n 's/.*"precedence_cache":{\([^}]*\)}.*/\1/p')"
echo "$MATRIX_TIER" | grep -q '"builds":0' || { echo "restart re-ran a matrix build: $MATRIX_TIER" >&2; exit 1; }

# A different method over the same profile misses the result tier but must
# restore the persisted matrix from disk instead of rebuilding it.
BORDA_REQ="$(echo "$REQ" | sed 's/"fair-kemeny"/"borda"/')"
curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$BORDA_REQ" >/dev/null
STATZ="$(curl -sf "$BASE/statz")"
MATRIX_TIER="$(echo "$STATZ" | sed -n 's/.*"precedence_cache":{\([^}]*\)}.*/\1/p')"
echo "$MATRIX_TIER" | grep -q '"disk_hits":1' || { echo "statz did not record the matrix-tier disk restore: $MATRIX_TIER" >&2; exit 1; }
echo "$MATRIX_TIER" | grep -q '"builds":0' || { echo "new method rebuilt the persisted matrix: $MATRIX_TIER" >&2; exit 1; }
echo "$MATRIX_TIER" | grep -q '"builds_skipped":1' || { echo "builds_skipped did not count the disk restore: $MATRIX_TIER" >&2; exit 1; }
kill "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true
echo "restart-warm smoke ok"

# --- Persistence: engine-version bump invalidates everything ---
/tmp/manirankd -addr "127.0.0.1:${PORT}" -cache-dir "$CACHE_DIR" -cache-engine-version 2 &
SERVER_PID=$!
wait_healthy
BUMPED="$(curl -sf -X POST "$BASE/v1/aggregate" -H 'Content-Type: application/json' -d "$REQ")"
echo "$BUMPED" | grep -q '"cached":false' || { echo "engine-version bump did not invalidate persisted entries" >&2; exit 1; }
STATZ="$(curl -sf "$BASE/statz")"
RESULT_TIER="$(echo "$STATZ" | sed -n 's/.*"cache":{\([^}]*\)}.*/\1/p')"
echo "$RESULT_TIER" | grep -q '"disk_hits":0' || { echo "post-bump request read the old version's entries: $RESULT_TIER" >&2; exit 1; }
echo "version-bump smoke ok"
