package ranking

import (
	"bytes"
	"strings"
	"testing"
)

func TestProfileCSVRoundTrip(t *testing.T) {
	p := Profile{{2, 0, 1}, {0, 1, 2}, {1, 2, 0}}
	var buf bytes.Buffer
	if err := WriteProfileCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfileCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d rankings", len(got))
	}
	for i := range p {
		if !got[i].Equal(p[i]) {
			t.Fatalf("ranking %d: %v != %v", i, got[i], p[i])
		}
	}
}

func TestReadProfileCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"not int", "0,x,2\n"},
		{"not a permutation", "0,0,1\n"},
		{"ragged", "0,1,2\n0,1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadProfileCSV(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
}
