// Quickstart: build a small candidate database with two protected
// attributes, construct a manirank.Engine over three committee rankings
// (Engine API v2 — one shared precedence matrix behind every method),
// observe the bias a fairness-unaware method inherits, and remove it with
// the MANI-Rank solvers.
package main

import (
	"context"
	"fmt"
	"log"

	"manirank"
)

func main() {
	// Eight candidates with Gender {M, W} and Race {A, B}.
	// Candidates 0-3 are men, 4-7 women; races alternate.
	gender := []int{0, 0, 0, 0, 1, 1, 1, 1}
	race := []int{0, 1, 0, 1, 0, 1, 0, 1}
	table, err := manirank.NewTable(8,
		manirank.MustAttribute("Gender", []string{"M", "W"}, gender),
		manirank.MustAttribute("Race", []string{"A", "B"}, race),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Three rankers, all of whom rank every man above every woman.
	profile := manirank.Profile{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{1, 0, 3, 2, 5, 4, 7, 6},
		{0, 2, 1, 3, 4, 6, 5, 7},
	}

	// The Engine is built once per profile: it validates the input, builds
	// the precedence matrix every method shares, and (WithTable) audits
	// every result for fairness.
	engine, err := manirank.NewEngine(profile, manirank.WithTable(table))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// A fairness-unaware Kemeny consensus faithfully reproduces the bias.
	unfair, err := engine.Solve(ctx, manirank.MethodKemeny, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Kemeny consensus:   ", unfair.Ranking)
	fmt.Printf("  Gender ARP = %.2f (1.0 = one gender wholly on top)\n",
		unfair.Report.ARPs[0])

	// MANI-Rank targets: every attribute and the intersection within 0.2 of
	// statistical parity. The solve reuses the matrix the Kemeny call built.
	targets := manirank.Targets(table, 0.2)
	fair, err := engine.Solve(ctx, manirank.MethodFairKemeny, targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fair-Kemeny consensus:", fair.Ranking)
	fmt.Print(manirank.FormatReport(*fair.Report, table))

	// The price of fairness: extra pairwise disagreement with the rankers.
	fmt.Printf("PD loss: unaware %.3f -> fair %.3f (PoF %.3f)\n",
		unfair.PDLoss, fair.PDLoss,
		manirank.PriceOfFairness(profile, fair.Ranking, unfair.Ranking))
}
