package manirank

import (
	"errors"
	"fmt"
)

// This file is the streaming-profile half of the Engine API (ROADMAP item
// 5): rankers arrive, update, and retract after construction, and each
// mutation patches the shared O(n²) precedence matrix in place instead of
// re-paying the O(n²·m) rebuild. Every mutation path is pinned bitwise
// against a from-scratch NewEngine by the property tests in
// engine_stream_test.go and the FuzzIncrementalPrecedence corpus.

// ErrRankerIndex reports a RemoveRanking / UpdateRanking index outside the
// engine's current profile.
var ErrRankerIndex = errors.New("manirank: ranker index out of range")

// NewEngineWithMatrix wraps an already-built precedence matrix TOGETHER with
// the profile it summarises — unlike NewEngineW, the resulting engine can
// solve profile-consuming methods and accept streaming mutations. The
// matrix must actually summarise p (same candidate count, one contribution
// per ranking); callers that built w elsewhere — a serving tier's matrix
// cache keyed by the profile digest — carry that guarantee by construction,
// and the shape is validated here. Neither p nor w is copied: the engine
// copy-on-writes both on the first mutation, so cache-resident matrices are
// never corrupted.
func NewEngineWithMatrix(p Profile, w *Precedence, opts ...EngineOption) (*Engine, error) {
	if w == nil {
		return nil, errors.New("manirank: nil precedence matrix")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.N() != w.N() {
		return nil, fmt.Errorf("manirank: matrix ranks %d candidates, profile ranks %d", w.N(), p.N())
	}
	if len(p) != w.Rankings() {
		return nil, fmt.Errorf("manirank: matrix aggregates %d rankings, profile holds %d", w.Rankings(), len(p))
	}
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tab != nil && cfg.tab.N() != w.N() {
		return nil, fmt.Errorf("manirank: table covers %d candidates, profile ranks %d", cfg.tab.N(), w.N())
	}
	return &Engine{p: p, w: w, tab: cfg.tab}, nil
}

// Profile returns a deep copy of the engine's current base profile,
// consistent with respect to concurrent mutations. Engines constructed from
// a matrix only (NewEngineW) return nil.
func (e *Engine) Profile() Profile {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.p == nil {
		return nil
	}
	return e.p.Clone()
}

// Version returns the number of streaming mutations applied to the engine
// so far — a cheap staleness check for callers that key caches or warm
// seeds off a specific profile state.
func (e *Engine) Version() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// AddRanking appends one base ranking to the profile and folds it into the
// precedence matrix in O(n²). The matrix afterwards is bitwise identical to
// NewEngine over the extended profile. r is cloned; the engine requires a
// profile (ErrProfileRequired from NewEngineW-built engines) because the
// profile is the ground truth the removal paths patch against.
func (e *Engine) AddRanking(r Ranking) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.p == nil {
		return fmt.Errorf("%w: AddRanking", ErrProfileRequired)
	}
	e.ensureOwnedLocked()
	if err := e.w.AddRanking(r); err != nil {
		return err
	}
	e.p = append(e.p, r.Clone())
	e.version++
	return nil
}

// RemoveRanking retracts the base ranking at profile index i, subtracting
// its contribution from the precedence matrix in O(n²), and returns the
// removed ranking. The matrix afterwards is bitwise identical to NewEngine
// over the shrunken profile. Removing the last ranking is allowed — the
// engine keeps serving (solves over an empty profile are degenerate but
// well-defined: every cell is zero).
func (e *Engine) RemoveRanking(i int) (Ranking, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.p == nil {
		return nil, fmt.Errorf("%w: RemoveRanking", ErrProfileRequired)
	}
	if i < 0 || i >= len(e.p) {
		return nil, fmt.Errorf("%w: %d of %d", ErrRankerIndex, i, len(e.p))
	}
	e.ensureOwnedLocked()
	removed := e.p[i]
	if err := e.w.RemoveRanking(removed); err != nil {
		return nil, err
	}
	e.p = append(e.p[:i], e.p[i+1:]...)
	e.version++
	return removed, nil
}

// UpdateRanking replaces the base ranking at profile index i with r — the
// remove-then-add composition done as one O(n²) patch pass pair under a
// single critical section, so no Solve can observe the intermediate
// (removed-but-not-re-added) state. r is cloned.
func (e *Engine) UpdateRanking(i int, r Ranking) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.p == nil {
		return fmt.Errorf("%w: UpdateRanking", ErrProfileRequired)
	}
	if i < 0 || i >= len(e.p) {
		return fmt.Errorf("%w: %d of %d", ErrRankerIndex, i, len(e.p))
	}
	// Validate the replacement BEFORE subtracting the old contribution, so a
	// rejected update leaves the matrix untouched rather than half-patched.
	if len(r) != e.w.N() {
		return fmt.Errorf("manirank: UpdateRanking got %d candidates, profile ranks %d", len(r), e.w.N())
	}
	if err := r.Validate(); err != nil {
		return err
	}
	e.ensureOwnedLocked()
	if err := e.w.RemoveRanking(e.p[i]); err != nil {
		return err
	}
	if err := e.w.AddRanking(r); err != nil {
		// Unreachable given the validation above, but never leave the matrix
		// missing the old contribution.
		_ = e.w.AddRanking(e.p[i])
		return err
	}
	e.p[i] = r.Clone()
	e.version++
	return nil
}

// ensureOwnedLocked makes the engine's profile and matrix private before
// the first mutation: NewEngine aliases the caller's profile slice and
// EngineCache.Engine shares a cache-resident matrix, and neither may be
// mutated in place. Callers hold e.mu.
func (e *Engine) ensureOwnedLocked() {
	if e.owned {
		return
	}
	e.p = e.p.Clone()
	e.w = e.w.Clone()
	e.owned = true
}
