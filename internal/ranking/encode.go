package ranking

import (
	"encoding/binary"
	"fmt"
	"math"
)

// precedenceMagic brands the precedence wire form; a persisted matrix that
// does not start with it is not ours and fails to decode.
const precedenceMagic = "MRW1"

// precedenceHeaderLen is the fixed wire header: magic (4) + n (8) + m (8).
const precedenceHeaderLen = 4 + 8 + 8

// MarshalBinary returns the canonical wire form of w: the "MRW1" magic,
// n and m as little-endian uint64, then the n² cells flat in row-major
// little-endian uint32 — the in-memory layout, so encoding is one linear
// pass and the persisted form is exactly as compact as the live matrix.
// It implements encoding.BinaryMarshaler and never fails.
func (w *Precedence) MarshalBinary() ([]byte, error) {
	buf := make([]byte, precedenceHeaderLen+4*len(w.w))
	copy(buf, precedenceMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(w.n))
	binary.LittleEndian.PutUint64(buf[12:], uint64(w.m))
	for i, v := range w.w {
		binary.LittleEndian.PutUint32(buf[precedenceHeaderLen+4*i:], uint32(v))
	}
	return buf, nil
}

// UnmarshalPrecedence decodes a matrix written by MarshalBinary. The header
// dimensions are validated against the actual payload length before any
// allocation, so a truncated or corrupt entry errors out instead of
// allocating from attacker-controlled (or bit-rotted) sizes.
func UnmarshalPrecedence(data []byte) (*Precedence, error) {
	if len(data) < precedenceHeaderLen || string(data[:4]) != precedenceMagic {
		return nil, fmt.Errorf("ranking: not a precedence wire entry")
	}
	n := binary.LittleEndian.Uint64(data[4:])
	m := binary.LittleEndian.Uint64(data[12:])
	if n > math.MaxInt32 || m > math.MaxInt32 {
		return nil, fmt.Errorf("ranking: precedence wire dimensions n=%d m=%d out of range", n, m)
	}
	payload := data[precedenceHeaderLen:]
	if uint64(len(payload)) != 4*n*n {
		return nil, fmt.Errorf("ranking: precedence wire payload %d bytes, want %d for n=%d",
			len(payload), 4*n*n, n)
	}
	w := &Precedence{n: int(n), m: int(m), w: make([]int32, n*n)}
	for i := range w.w {
		w.w[i] = int32(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return w, nil
}
