package manirank

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"manirank/internal/fairness"
	"manirank/internal/obs"
	"manirank/internal/ranking"
)

// Engine is the context-first entry point to every consensus method: it is
// constructed once from a Profile (optionally with the candidate Table),
// owns the O(n²) precedence matrix W that all pairwise methods consume, and
// routes Solve calls through the shared method registry. Solving k methods
// over one profile therefore costs one O(n²·m) matrix construction instead
// of k — the library-level form of the serving layer's shared precedence
// tier (DESIGN.md §7–§8).
//
// An Engine is safe for concurrent Solve calls from multiple goroutines.
// The streaming mutation methods (AddRanking, RemoveRanking, UpdateRanking —
// see stream.go) patch the matrix in O(n²) under a write lock that excludes
// in-flight Solves, so a solve never observes a half-applied mutation; an
// engine that is never mutated behaves exactly like the historical
// immutable one.
type Engine struct {
	// mu arbitrates the streaming mutations against Solve: Solve holds the
	// read side for its whole run, mutations take the write side.
	mu  sync.RWMutex
	p   Profile     // nil when constructed from a matrix only (NewEngineW)
	w   *Precedence // always non-nil
	tab *Table      // nil when no candidate table was supplied
	// owned reports that p and w are private to this engine. Constructors
	// leave it false — NewEngine aliases the caller's profile slice and
	// EngineCache.Engine shares a cached matrix — and the first mutation
	// clones both (copy-on-write) so neither the caller's profile nor a
	// cache-resident matrix is ever corrupted.
	owned bool
	// version counts applied mutations (see Version).
	version uint64
}

// engineConfig collects EngineOption state.
type engineConfig struct {
	tab        *Table
	workers    int
	hasWorkers bool
}

// EngineOption configures NewEngine / NewEngineW.
type EngineOption func(*engineConfig)

// WithTable attaches the candidate table X: Solve results gain a full
// fairness audit (Result.Report), and the table-consuming baselines
// (kemeny-weighted, pick-fairest-perm) become solvable. A nil table is
// ignored, so optional-table call sites need no branching.
func WithTable(t *Table) EngineOption {
	return func(c *engineConfig) { c.tab = t }
}

// WithPrecedenceWorkers pins the worker count of the one-time precedence
// matrix construction (0 auto-sizes, 1 forces the serial kernel; the matrix
// is bitwise identical for every width). Without this option NewEngine uses
// the package default (ranking.DefaultWorkers). NewEngineW ignores it — its
// matrix is already built.
func WithPrecedenceWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers, c.hasWorkers = n, true }
}

// NewEngine validates the profile, builds its precedence matrix once, and
// returns an Engine over it. The construction is the only O(n²·m) cost;
// every subsequent Solve reuses the matrix.
func NewEngine(p Profile, opts ...EngineOption) (*Engine, error) {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	var (
		w   *Precedence
		err error
	)
	if cfg.hasWorkers {
		w, err = ranking.NewPrecedenceWorkers(p, cfg.workers)
	} else {
		w, err = ranking.NewPrecedence(p)
	}
	if err != nil {
		return nil, err
	}
	if cfg.tab != nil && cfg.tab.N() != w.N() {
		return nil, fmt.Errorf("manirank: table covers %d candidates, profile ranks %d", cfg.tab.N(), w.N())
	}
	return &Engine{p: p, w: w, tab: cfg.tab}, nil
}

// NewEngineW wraps an already-built precedence matrix — the entry point for
// callers that obtained W from a cache tier (manirankd's matrix cache) or
// another Engine. The resulting Engine has no profile, so methods for which
// Method.RequiresProfile is true return ErrProfileRequired from Solve.
func NewEngineW(w *Precedence, opts ...EngineOption) (*Engine, error) {
	if w == nil {
		return nil, errors.New("manirank: nil precedence matrix")
	}
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tab != nil && cfg.tab.N() != w.N() {
		return nil, fmt.Errorf("manirank: table covers %d candidates, matrix ranks %d", cfg.tab.N(), w.N())
	}
	return &Engine{w: w, tab: cfg.tab}, nil
}

// Validation errors returned by Engine.Solve.
var (
	// ErrProfileRequired: the method consumes the base rankings, but the
	// Engine was constructed from a matrix only (NewEngineW).
	ErrProfileRequired = errors.New("manirank: method requires the base profile, engine was built from a precedence matrix only")
	// ErrTableRequired: the method consumes the candidate table, but the
	// Engine was constructed without WithTable.
	ErrTableRequired = errors.New("manirank: method requires a candidate table (construct the engine WithTable)")
)

// N returns the candidate count.
func (e *Engine) N() int { return e.w.N() }

// Rankers returns the number of base rankings the precedence matrix
// aggregates.
func (e *Engine) Rankers() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.w.Rankings()
}

// Precedence returns the engine's shared precedence matrix. Callers must
// not mutate it, and on an engine that receives streaming mutations the
// pointer may be stale the moment it is returned — snapshot it with
// PrecedenceSnapshot when the matrix must outlive concurrent mutations.
func (e *Engine) Precedence() *Precedence {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.w
}

// PrecedenceSnapshot returns a deep copy of the engine's precedence matrix,
// taken atomically with respect to the streaming mutations — the handoff a
// cache tier needs before admitting a mutable engine's matrix.
func (e *Engine) PrecedenceSnapshot() *Precedence {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.w.Clone()
}

// Table returns the candidate table the engine audits against, or nil.
func (e *Engine) Table() *Table { return e.tab }

// solveConfig collects SolveOption state. The zero value reproduces the
// legacy entry points' defaults exactly (deterministic seed 0, package
// default exact threshold and node budget, sequential restarts).
type solveConfig struct {
	kemeny KemenyOptions
}

// SolveOption tunes one Solve call. The options replace the legacy
// Options / KemenyOptions structs: each maps onto one knob of the Kemeny
// engines, and WithKemenyOptions imports a full legacy struct for callers
// migrating wholesale.
type SolveOption func(*solveConfig)

// WithKemenyOptions replaces the whole Kemeny engine configuration — the
// bulk-migration path from the legacy Options/KemenyOptions structs. Later
// per-knob options still apply on top.
func WithKemenyOptions(o KemenyOptions) SolveOption {
	return func(c *solveConfig) { c.kemeny = o }
}

// WithSeed pins the seed of the Kemeny heuristic's randomised restarts.
// Results are deterministic per (input, options); two Solves with the same
// seed are bitwise identical.
func WithSeed(seed int64) SolveOption {
	return func(c *solveConfig) { c.kemeny.Heuristic.Seed = seed }
}

// WithPerturbations sets the iterated-local-search restart count of the
// Kemeny heuristic (negative disables restarts).
func WithPerturbations(n int) SolveOption {
	return func(c *solveConfig) { c.kemeny.Heuristic.Perturbations = n }
}

// WithStrength sets the number of random moves per heuristic perturbation.
func WithStrength(n int) SolveOption {
	return func(c *solveConfig) { c.kemeny.Heuristic.Strength = n }
}

// WithExactThreshold bounds the exact branch-and-bound Kemeny engine: it
// runs when n is at or below the threshold (package default 12).
func WithExactThreshold(n int) SolveOption {
	return func(c *solveConfig) { c.kemeny.ExactThreshold = n }
}

// WithMaxNodes bounds the exact search's node budget; on exhaustion the
// best ranking found is returned.
func WithMaxNodes(n int64) SolveOption {
	return func(c *solveConfig) { c.kemeny.MaxNodes = n }
}

// WithSolverWorkers shards the Kemeny restart loops over a worker pool
// (kemeny.Options.Workers; 0 auto-sizes, 1 is sequential). Output is
// bitwise identical for every width.
func WithSolverWorkers(n int) SolveOption {
	return func(c *solveConfig) { c.kemeny.Heuristic.Workers = n }
}

// WithWarmStart seeds the Kemeny searches from r — typically the consensus
// of the previous Solve — instead of a cold Borda seed. After a streaming
// mutation (AddRanking / RemoveRanking / UpdateRanking) the previous
// consensus is one ranking away from the new optimum, so the warm descent
// converges in far fewer passes; for the fair methods a still-feasible warm
// ranking additionally replaces the whole unconstrained-incumbent phase
// (fairness depends only on the ranking and attributes, never the profile,
// so mutations cannot invalidate feasibility). The ranking is cloned before
// use. Warm results are deterministic per (input, r, options) and bitwise
// identical for every WithSolverWorkers width, but not necessarily equal to
// a cold solve — the searches explore from different local optima. A nil or
// wrong-length r is ignored (cold solve).
func WithWarmStart(r Ranking) SolveOption {
	return func(c *solveConfig) { c.kemeny.Heuristic.Warm = r }
}

// Result is the complete outcome of one Engine.Solve: the consensus ranking
// together with everything the repo's surfaces used to compute separately —
// PD loss against the profile, the fairness audit, the partial flag for
// deadline-truncated searches, and solve statistics.
type Result struct {
	// Ranking is the consensus ranking, top candidate first.
	Ranking Ranking
	// Method is the registry method that produced the ranking.
	Method Method
	// PDLoss is the pairwise disagreement loss of Ranking against the
	// engine's profile, in [0, 1] (paper Def. 9), computed from the shared
	// precedence matrix.
	PDLoss float64
	// Report is the full MANI-Rank fairness audit of Ranking (per-group
	// FPRs, per-attribute ARPs, IRP); nil when the engine has no Table.
	Report *Report
	// Partial is true when ctx expired mid-solve and the ranking is the
	// search's best-so-far rather than its converged answer. Only the
	// Kemeny-based methods are cancellable; for fair methods a partial
	// result still satisfies the targets.
	Partial bool
	// Stats describes the solve.
	Stats SolveStats
}

// SolveStats carries per-solve measurements.
type SolveStats struct {
	// Candidates is the instance's candidate count n.
	Candidates int
	// Rankers is the number of base rankings aggregated.
	Rankers int
	// Elapsed is the wall-clock duration of the solve alone — it excludes
	// the engine's one-time matrix construction and the Result's PD-loss /
	// audit bookkeeping.
	Elapsed time.Duration
}

// Solve runs one registered method over the engine's shared precedence
// matrix and returns the full Result. ctx carries the caller's deadline:
// the Kemeny-based engines stop cooperatively when it expires and return
// their best-so-far ranking flagged Partial (for fair methods, still a
// feasible one); the polynomial methods always run to completion.
//
// targets are the MANI-Rank parity bounds fair methods enforce (Targets,
// TargetsWithThresholds); fairness-unaware methods ignore them. Passing an
// empty target set to a fair method degenerates to its unaware counterpart
// (the repair has nothing to enforce).
//
// Solve is the context-first replacement for the deprecated per-method
// entry points (FairKemeny, Borda, ...); it is safe to call concurrently.
func (e *Engine) Solve(ctx context.Context, m Method, targets []Target, opts ...SolveOption) (*Result, error) {
	ent, ok := entryOf(m)
	if !ok {
		return nil, fmt.Errorf("manirank: unknown method %d (parse names with ParseMethod)", m)
	}
	if ent.profile && e.p == nil {
		return nil, fmt.Errorf("%w: %s", ErrProfileRequired, ent.name)
	}
	if ent.table && e.tab == nil {
		return nil, fmt.Errorf("%w: %s", ErrTableRequired, ent.name)
	}
	var cfg solveConfig
	for _, o := range opts {
		o(&cfg)
	}
	// The read lock spans the solve AND the bookkeeping below: a streaming
	// mutation can neither flip the matrix mid-search nor between the search
	// and the PD-loss/audit scans, so everything in one Result describes one
	// consistent profile state.
	e.mu.RLock()
	defer e.mu.RUnlock()
	start := time.Now()
	endSolve := obs.StartSpan(ctx, "solve")
	r, partial, err := ent.solve(ctx, e, targets, cfg.kemeny)
	endSolve()
	// The clock stops here: the PD-loss scan and the audit below are result
	// bookkeeping, not solve work, and must not be charged to Elapsed (the
	// scalability experiments report it).
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Ranking: r,
		Method:  m,
		PDLoss:  e.w.PDLoss(r),
		Partial: partial,
		Stats: SolveStats{
			Candidates: e.w.N(),
			Rankers:    e.w.Rankings(),
			Elapsed:    elapsed,
		},
	}
	if e.tab != nil {
		rep := fairness.Audit(r, e.tab)
		res.Report = &rep
	}
	return res, nil
}
