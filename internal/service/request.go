package service

import (
	"fmt"
	"strings"

	"manirank"
	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/ranking"
)

// Methods lists every consensus method the service exposes, in the order
// they are documented. It is derived from the engine registry
// (manirank.Methods), so the service's accepted values can never drift
// from the library's or the CLI's. Fair variants require Attributes plus
// Delta or Thresholds.
var Methods = manirank.MethodNames()

// AttributeSpec is the wire form of one protected attribute: a name, its
// value domain, and each candidate's value index.
type AttributeSpec struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
	Of     []int    `json:"of"`
}

// SolverOptions is the wire form of the Kemeny engine tuning knobs. The zero
// value means server defaults. All fields participate in the request digest —
// two requests differing only in, say, Seed are distinct cache entries,
// because the solvers are deterministic per (input, options).
type SolverOptions struct {
	// Seed drives the heuristic's randomised restarts.
	Seed int64 `json:"seed,omitempty"`
	// Perturbations is the iterated-local-search restart count (negative
	// disables restarts).
	Perturbations int `json:"perturbations,omitempty"`
	// Strength is the number of random moves per perturbation.
	Strength int `json:"strength,omitempty"`
	// ExactThreshold bounds the exact branch-and-bound engine's n.
	ExactThreshold int `json:"exact_threshold,omitempty"`
	// MaxNodes bounds the exact search's node budget.
	MaxNodes int64 `json:"max_nodes,omitempty"`
}

// AggregateRequest is the POST /v1/aggregate body.
type AggregateRequest struct {
	// Method is one of Methods.
	Method string `json:"method"`
	// Profile is the base rankings, one row per ranker, candidate ids from
	// top to bottom; every row must be a permutation of 0..n-1.
	Profile [][]int `json:"profile"`
	// Attributes is the candidate table; required for fair-* methods,
	// optional otherwise (enables the audit in the response).
	Attributes []AttributeSpec `json:"attributes,omitempty"`
	// Delta is the uniform MANI-Rank parity threshold in (0, 1].
	Delta float64 `json:"delta,omitempty"`
	// Thresholds overrides Delta per attribute name; the key
	// "intersection" (case-insensitive) sets the IRP threshold.
	// Attributes not named fall back to Delta.
	Thresholds map[string]float64 `json:"thresholds,omitempty"`
	// Options tunes the Kemeny engines.
	Options SolverOptions `json:"options,omitempty"`
	// DeadlineMillis caps this request's compute time; 0 means the server
	// default. On expiry mid-solve the engines return their best-so-far
	// ranking, flagged "partial" and excluded from the cache. The deadline
	// does not participate in the digest.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// IsFair reports whether the request's method enforces fairness targets.
func (req *AggregateRequest) IsFair() bool {
	return strings.HasPrefix(strings.ToLower(req.Method), "fair-")
}

// problem is a validated, solver-ready request: the domain objects every
// method consumes, plus the two cache keys (computed once here — the full
// request digest for the result tier, the profile sub-digest for the
// precedence-matrix tier).
type problem struct {
	method     manirank.Method
	profile    ranking.Profile
	tab        *attribute.Table // nil when no attributes were given
	targets    []core.Target    // nil for unfair methods
	opts       SolverOptions
	digest     string // full request digest (result-cache key)
	profDigest string // profile sub-digest (matrix-cache key)
}

// interThresholdKey matches a Thresholds entry addressing the intersection
// pseudo-attribute.
func interThresholdKey(k string) bool { return strings.EqualFold(k, "intersection") }

// buildProblem validates req and lowers it onto the domain types. Every
// error is a client error (HTTP 400).
func buildProblem(req *AggregateRequest) (*problem, error) {
	method, err := manirank.ParseMethod(req.Method)
	if err != nil || method.Baseline() {
		// Baselines parse (the registry knows them) but are not part of the
		// served surface; reject them with the same message an unknown name
		// gets, listing exactly the methods this endpoint accepts.
		return nil, fmt.Errorf("unknown method %q (want one of %s)", req.Method, strings.Join(Methods, ", "))
	}
	if len(req.Profile) == 0 {
		return nil, fmt.Errorf("empty profile")
	}
	p := make(ranking.Profile, len(req.Profile))
	for i, row := range req.Profile {
		p[i] = ranking.Ranking(row)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("invalid profile: %w", err)
	}
	n := p.N()

	pb := &problem{method: method, profile: p, opts: req.Options}
	pb.digest, pb.profDigest = Digests(req)
	if len(req.Attributes) > 0 {
		attrs := make([]*attribute.Attribute, len(req.Attributes))
		for i, spec := range req.Attributes {
			a, err := attribute.NewAttribute(spec.Name, spec.Values, spec.Of)
			if err != nil {
				return nil, fmt.Errorf("invalid attribute %d: %w", i, err)
			}
			if a.N() != n {
				return nil, fmt.Errorf("attribute %q covers %d candidates, profile ranks %d", spec.Name, a.N(), n)
			}
			attrs[i] = a
		}
		tab, err := attribute.NewTable(n, attrs...)
		if err != nil {
			return nil, fmt.Errorf("invalid candidate table: %w", err)
		}
		pb.tab = tab
	}
	interKeys := 0
	for k := range req.Thresholds {
		if interThresholdKey(k) {
			// At most one spelling: duplicates would be resolved by map
			// iteration order, i.e. nondeterministically per run — the one
			// thing a digest-keyed cache cannot tolerate.
			if interKeys++; interKeys > 1 {
				return nil, fmt.Errorf("thresholds name the intersection more than once")
			}
			continue
		}
		if pb.tab == nil || pb.tab.Attr(k) == nil {
			return nil, fmt.Errorf("thresholds name unknown attribute %q", k)
		}
	}

	if !pb.IsFair() {
		return pb, nil
	}
	if pb.tab == nil {
		return nil, fmt.Errorf("method %q requires attributes", method.String())
	}
	if req.Delta == 0 && len(req.Thresholds) == 0 {
		return nil, fmt.Errorf("method %q requires delta or thresholds", method.String())
	}
	deltaFor := func(name string, inter bool) (float64, error) {
		d := req.Delta
		for k, v := range req.Thresholds {
			if inter && interThresholdKey(k) || !inter && k == name {
				d = v
			}
		}
		if d <= 0 || d > 1 {
			return 0, fmt.Errorf("threshold for %q is %g, want (0, 1]", name, d)
		}
		return d, nil
	}
	for _, a := range pb.tab.Attrs() {
		d, err := deltaFor(a.Name, false)
		if err != nil {
			return nil, err
		}
		pb.targets = append(pb.targets, core.Target{Attr: a, Delta: d})
	}
	d, err := deltaFor("intersection", true)
	if err != nil {
		return nil, err
	}
	pb.targets = append(pb.targets, core.Target{Attr: pb.tab.Intersection(), Delta: d})
	return pb, nil
}

// IsFair reports whether the problem enforces fairness targets.
func (pb *problem) IsFair() bool { return pb.method.IsFair() }
