package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with lock-free observation and
// interpolated quantile estimates. It replaces the serving layer's
// fixed-window latency rings: memory is O(buckets) regardless of traffic,
// any quantile is answerable (not just a precomputed p50/p99 pair), the
// full bucket vector exports in Prometheus histogram format, and — unlike
// a ring whose window mixes zero-valued unfilled slots into early
// percentiles — an empty histogram reports zero observations rather than
// skewed quantiles.
//
// Buckets are defined by ascending upper bounds; observations above the
// last bound land in an implicit +Inf overflow bucket whose quantiles
// resolve to the maximum value seen. Construct with NewHistogram; the zero
// value is not usable.
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	max    atomic.Uint64 // float64 bits, CAS-maximised
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (a trailing +Inf overflow bucket is implicit — do not include one). It
// panics on an empty or unsorted bound list: bucket schemes are
// compile-time decisions, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must ascend")
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// LatencyBuckets returns the package's standard log-spaced latency bucket
// bounds in seconds: powers of two from 100µs to ~105s (21 buckets, so two
// adjacent quantile estimates differ by at most 2x anywhere in the range).
// Latency is log-normal-ish in practice, which is exactly what log-spaced
// buckets resolve with constant relative error.
func LatencyBuckets() []float64 {
	bounds := make([]float64, 21)
	v := 1e-4
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Observe records one value. Negative values clamp to zero (durations
// cannot be negative; a clock step must not corrupt the bucket layout).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le-style buckets
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v && old != 0 {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Max returns the largest value observed (0 before any observation). It is
// exact, not a bucket bound — the overflow bucket's quantiles resolve to
// it.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// inside the bucket holding the target rank — the estimate is off by at
// most one bucket's width, i.e. a factor of two with LatencyBuckets. It
// returns 0 with no observations; q outside [0, 1] clamps.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.Max()
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if hi < lo { // overflow bucket whose max predates a concurrent update
				hi = lo
			}
			est := lo + (hi-lo)*((target-cum)/n)
			// Interpolating inside the top occupied bucket can overshoot the
			// largest value actually seen; the true quantile never does.
			if max := h.Max(); est > max {
				est = max
			}
			return est
		}
		cum += n
	}
	return h.Max()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state, in the
// cumulative (Prometheus "le") form: Counts[i] observations were <= Bounds[i],
// and the final slot counts everything (the +Inf bucket).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; the implicit +Inf bound is not
	// included but its cumulative count is the last Counts entry.
	Bounds []float64
	// Counts is the cumulative bucket vector, len(Bounds)+1.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of observed values.
	Sum float64
	// Max is the largest observed value.
	Max float64
}

// Snapshot copies the histogram state. Concurrent observations may tear
// the totals by a few counts — acceptable for monitoring, which is the
// only consumer.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
		Max:    h.Max(),
	}
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	return s
}
