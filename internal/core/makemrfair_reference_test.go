package core

// Bitwise-parity pins for the tracker-backed parityEngine: the historical
// engine — full O(n·g) candidate rescans per iteration, O(span·q) window
// walks per swap — is preserved here verbatim, and the repair algorithms
// driven by the new engine must reproduce its outputs exactly on random
// instances: same swaps in the same order, hence identical rankings.

import (
	"math"
	"math/rand"
	"testing"

	"manirank/internal/ranking"
)

// refEngine is the pre-incremental parityEngine, verbatim.
type refEngine struct {
	r       ranking.Ranking
	pos     []int
	tgts    []Target
	wins    [][]int
	omegaM  [][]int
	jointOf []int
	jointG  int
}

func newRefEngine(r ranking.Ranking, targets []Target) *refEngine {
	eng := &refEngine{
		r:      r.Clone(),
		pos:    r.Positions(),
		tgts:   targets,
		wins:   make([][]int, len(targets)),
		omegaM: make([][]int, len(targets)),
	}
	n := len(r)
	for k, tg := range targets {
		g := tg.Attr.DomainSize()
		sizes := tg.Attr.GroupSizes()
		eng.wins[k] = make([]int, g)
		eng.omegaM[k] = make([]int, g)
		seen := make([]int, g)
		for i, c := range eng.r {
			v := tg.Attr.Of[c]
			below := n - 1 - i
			sameBelow := sizes[v] - seen[v] - 1
			eng.wins[k][v] += below - sameBelow
			seen[v]++
		}
		for v := 0; v < g; v++ {
			eng.omegaM[k][v] = sizes[v] * (n - sizes[v])
		}
	}
	eng.buildJoint()
	return eng
}

func (eng *refEngine) buildJoint() {
	n := len(eng.r)
	if len(eng.tgts) == 0 {
		return
	}
	joint := make([]int, n)
	index := map[int]int{}
	for c := 0; c < n; c++ {
		key := 0
		for _, tg := range eng.tgts {
			key = key*tg.Attr.DomainSize() + tg.Attr.Of[c]
		}
		id, ok := index[key]
		if !ok {
			id = len(index)
			if id >= maxJointGroups {
				return
			}
			index[key] = id
		}
		joint[c] = id
	}
	eng.jointOf = joint
	eng.jointG = len(index)
}

func (eng *refEngine) fpr(k, v int) float64 {
	if eng.omegaM[k][v] == 0 {
		return 0.5
	}
	return float64(eng.wins[k][v]) / float64(eng.omegaM[k][v])
}

func (eng *refEngine) spread(k int) float64 {
	lo, hi := 2.0, -1.0
	for v := 0; v < eng.tgts[k].Attr.DomainSize(); v++ {
		f := eng.fpr(k, v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

func (eng *refEngine) worstTarget() int {
	worst, idx := 0.0, -1
	for k, tg := range eng.tgts {
		s := eng.spread(k)
		if s > tg.Delta+1e-12 && s > worst {
			worst, idx = s, k
		}
	}
	return idx
}

func (eng *refEngine) extremeGroups(k int) (vh, vl int) {
	g := eng.tgts[k].Attr.DomainSize()
	hi, lo := -1.0, 2.0
	for v := 0; v < g; v++ {
		f := eng.fpr(k, v)
		if f > hi {
			hi, vh = f, v
		}
		if f < lo {
			lo, vl = f, v
		}
	}
	return vh, vl
}

func (eng *refEngine) findSwap(k, vh, vl int) (i, j int, ok bool) {
	of := eng.tgts[k].Attr.Of
	nearestVLBelow := -1
	for p := len(eng.r) - 1; p >= 0; p-- {
		switch of[eng.r[p]] {
		case vh:
			if nearestVLBelow >= 0 {
				return p, nearestVLBelow, true
			}
		case vl:
			nearestVLBelow = p
		}
	}
	return 0, 0, false
}

func (eng *refEngine) potential() float64 {
	p := 0.0
	for k, tg := range eng.tgts {
		if s := eng.spread(k); s > tg.Delta+1e-12 {
			p += s - tg.Delta
		}
	}
	return p
}

func (eng *refEngine) potentialAfter(i, j int) float64 {
	a, b := eng.r[i], eng.r[j]
	d := j - i
	p := 0.0
	for k, tg := range eng.tgts {
		s := eng.spreadAfterTransfer(k, tg.Attr.Of[a], tg.Attr.Of[b], d)
		if s > tg.Delta+1e-12 {
			p += s - tg.Delta
		}
	}
	return p
}

func (eng *refEngine) spreadAfterTransfer(k, a, b, d int) float64 {
	if a == b {
		return eng.spread(k)
	}
	g := eng.tgts[k].Attr.DomainSize()
	lo, hi := 2.0, -1.0
	for v := 0; v < g; v++ {
		var f float64
		if eng.omegaM[k][v] == 0 {
			f = 0.5
		} else {
			w := eng.wins[k][v]
			if v == a {
				w -= d
			}
			if v == b {
				w += d
			}
			f = float64(w) / float64(eng.omegaM[k][v])
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}

func (eng *refEngine) band() float64 {
	b := 0.0
	for k, tg := range eng.tgts {
		for v := 0; v < tg.Attr.DomainSize(); v++ {
			b += bandExcess(eng.fpr(k, v), tg.Delta)
		}
	}
	return b
}

func (eng *refEngine) bandAfter(i, j int) float64 {
	a, b := eng.r[i], eng.r[j]
	d := j - i
	total := 0.0
	for k, tg := range eng.tgts {
		va, vb := tg.Attr.Of[a], tg.Attr.Of[b]
		for v := 0; v < tg.Attr.DomainSize(); v++ {
			var f float64
			if eng.omegaM[k][v] == 0 {
				f = 0.5
			} else {
				w := eng.wins[k][v]
				if va != vb {
					if v == va {
						w -= d
					}
					if v == vb {
						w += d
					}
				}
				f = float64(w) / float64(eng.omegaM[k][v])
			}
			total += bandExcess(f, tg.Delta)
		}
	}
	return total
}

func (eng *refEngine) findCappedSwap(k, vh, vl int) (i, j int, ok bool) {
	tg := eng.tgts[k]
	if eng.omegaM[k][vh] == 0 || eng.omegaM[k][vl] == 0 {
		return 0, 0, false
	}
	gap := eng.fpr(k, vh) - eng.fpr(k, vl)
	if gap <= tg.Delta {
		return 0, 0, false
	}
	step := 1/float64(eng.omegaM[k][vh]) + 1/float64(eng.omegaM[k][vl])
	dmax := int(math.Ceil((gap-tg.Delta)/step - 1e-9))
	if dmax < 1 {
		return 0, 0, false
	}
	of := tg.Attr.Of
	var vhPos, vlPos []int
	for p, c := range eng.r {
		switch of[c] {
		case vh:
			vhPos = append(vhPos, p)
		case vl:
			vlPos = append(vlPos, p)
		}
	}
	bestD := 0
	hi := 0
	for _, q := range vlPos {
		for hi < len(vhPos) && vhPos[hi] < q-dmax {
			hi++
		}
		if hi < len(vhPos) && vhPos[hi] < q {
			if d := q - vhPos[hi]; d > bestD {
				bestD = d
				i, j, ok = vhPos[hi], q, true
			}
		}
	}
	return i, j, ok
}

func (eng *refEngine) findBestGlobalTransfer(cur float64) (i, j int, ok bool) {
	bestP := cur
	bestB := eng.band()
	consider := func(pi, pj int) {
		p := eng.potentialAfter(pi, pj)
		if p > bestP+1e-15 {
			return
		}
		b := eng.bandAfter(pi, pj)
		if p < bestP-1e-15 || b < bestB-1e-15 {
			bestP, bestB = p, b
			i, j, ok = pi, pj, true
		}
	}
	if eng.jointOf != nil {
		eng.eachMinDistPair(eng.jointOf, eng.jointG, consider)
		return i, j, ok
	}
	for k := range eng.tgts {
		eng.eachMinDistPair(eng.tgts[k].Attr.Of, eng.tgts[k].Attr.DomainSize(), consider)
	}
	return i, j, ok
}

func (eng *refEngine) findBestAdjacentSwap(cur float64) (pos int, ok bool) {
	bestP := cur
	bestB := eng.band()
	for p := 0; p+1 < len(eng.r); p++ {
		pp := eng.potentialAfter(p, p+1)
		if pp > bestP+1e-15 {
			continue
		}
		b := eng.bandAfter(p, p+1)
		if pp < bestP-1e-15 || b < bestB-1e-15 {
			bestP, bestB = pp, b
			pos, ok = p, true
		}
	}
	return pos, ok
}

func (eng *refEngine) eachMinDistPair(of []int, g int, fn func(i, j int)) {
	n := len(eng.r)
	const none = -1
	minD := make([]int, g*g)
	pairPos := make([][2]int, g*g)
	for idx := range minD {
		minD[idx] = none
	}
	nearestBelow := make([]int, g)
	for v := range nearestBelow {
		nearestBelow[v] = none
	}
	for p := n - 1; p >= 0; p-- {
		a := of[eng.r[p]]
		for b := 0; b < g; b++ {
			if b == a || nearestBelow[b] == none {
				continue
			}
			if d := nearestBelow[b] - p; minD[a*g+b] == none || d < minD[a*g+b] {
				minD[a*g+b] = d
				pairPos[a*g+b] = [2]int{p, nearestBelow[b]}
			}
		}
		nearestBelow[a] = p
	}
	for idx := range minD {
		if minD[idx] != none {
			fn(pairPos[idx][0], pairPos[idx][1])
		}
	}
}

func (eng *refEngine) swap(i, j int) {
	if i > j {
		i, j = j, i
	}
	a, b := eng.r[i], eng.r[j]
	for k, tg := range eng.tgts {
		of := tg.Attr.Of
		va, vb := of[a], of[b]
		w := eng.wins[k]
		if va != vb {
			w[va]--
			w[vb]++
		}
		for p := i + 1; p < j; p++ {
			vc := of[eng.r[p]]
			if vc != va {
				w[va]--
				w[vc]++
			}
			if vc != vb {
				w[vb]++
				w[vc]--
			}
		}
	}
	eng.r[i], eng.r[j] = b, a
	eng.pos[a], eng.pos[b] = j, i
}

// referenceMakeMRFair is MakeMRFair driven by the historical engine.
func referenceMakeMRFair(r ranking.Ranking, targets []Target) (ranking.Ranking, error) {
	eng := newRefEngine(r, targets)
	n := len(r)
	maxIters := n*n*(len(targets)+1) + n
	for iter := 0; ; iter++ {
		cur := eng.potential()
		if cur <= 0 {
			return eng.r, nil
		}
		if iter >= maxIters {
			return nil, ErrUnrepairable
		}
		k := eng.worstTarget()
		vh, vl := eng.extremeGroups(k)
		i1, j1, ok1 := eng.findSwap(k, vh, vl)
		i2, j2, ok2 := eng.findCappedSwap(k, vh, vl)
		if ok1 && ok2 && j2-i2 > j1-i1 {
			i1, j1, i2, j2 = i2, j2, i1, j1
		} else if !ok1 {
			i1, j1, ok1 = i2, j2, ok2
			ok2 = false
		}
		if ok1 && eng.potentialAfter(i1, j1) < cur-1e-15 {
			eng.swap(i1, j1)
			continue
		}
		if ok2 && eng.potentialAfter(i2, j2) < cur-1e-15 {
			eng.swap(i2, j2)
			continue
		}
		i, j, ok := eng.findBestGlobalTransfer(cur)
		if !ok {
			return nil, ErrUnrepairable
		}
		eng.swap(i, j)
	}
}

// referenceRepairToLevels is RepairToLevels driven by the historical engine.
func referenceRepairToLevels(r ranking.Ranking, targets []Target) (ranking.Ranking, error) {
	eng := newRefEngine(r, targets)
	n := len(r)
	maxIters := n*n*(len(targets)+1) + n
	for iter := 0; ; iter++ {
		cur := eng.potential()
		if cur <= 0 {
			return eng.r, nil
		}
		if iter >= maxIters {
			return nil, ErrUnrepairable
		}
		if p, ok := eng.findBestAdjacentSwap(cur); ok {
			eng.swap(p, p+1)
			continue
		}
		i, j, ok := eng.findBestGlobalTransfer(cur)
		if !ok {
			return nil, ErrUnrepairable
		}
		eng.swap(i, j)
	}
}

// TestMakeMRFairMatchesReferenceEngine pins the tracker-backed repair bitwise
// to the historical full-rescan engine across random instances, including
// multi-attribute tables (exercising the joint grouping) and wide domains
// (exercising per-target enumeration when the joint structure is capped).
func TestMakeMRFairMatchesReferenceEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	shapes := [][]int{{2}, {2, 3}, {3, 5}, {2, 2, 4}, {8}}
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(60)
		tab := randomTable(t, n, shapes[trial%len(shapes)], rng)
		delta := 0.05 + 0.3*rng.Float64()
		targets := Targets(tab, delta)
		start := ranking.Random(n, rng)

		want, wantErr := referenceMakeMRFair(start, targets)
		got, gotErr := MakeMRFair(start, targets)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: ref %v, got %v", trial, wantErr, gotErr)
		}
		if wantErr == nil && !got.Equal(want) {
			t.Fatalf("trial %d: MakeMRFair diverged from reference engine\nref %v\ngot %v", trial, want, got)
		}

		want, wantErr = referenceRepairToLevels(start, targets)
		got, gotErr = RepairToLevels(start, targets)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: RepairToLevels error mismatch: ref %v, got %v", trial, wantErr, gotErr)
		}
		if wantErr == nil && !got.Equal(want) {
			t.Fatalf("trial %d: RepairToLevels diverged from reference engine\nref %v\ngot %v", trial, want, got)
		}
	}
}
