package main

import "testing"

// TestDeprecatedParagraph pins the Deprecated: extraction: the paragraph
// runs from the marker to the next blank line.
func TestDeprecatedParagraph(t *testing.T) {
	doc := "Foo does things.\n\nDeprecated: use Engine.Solve with MethodFoo\ninstead.\n\nMore prose.\n"
	got := deprecatedParagraph(doc)
	want := "Deprecated: use Engine.Solve with MethodFoo\ninstead."
	if got != want {
		t.Fatalf("deprecatedParagraph = %q, want %q", got, want)
	}
	if deprecatedParagraph("Foo does things.\n") != "" {
		t.Fatal("found a Deprecated paragraph in a doc without one")
	}
}

// TestLintDeprecated covers the -deprecated contract: pass on a proper
// Engine-pointing note, fail on a missing identifier, a missing Deprecated:
// line, and a note that names no Engine replacement; "dir:Name" pins a
// non-first directory.
func TestLintDeprecated(t *testing.T) {
	docs := map[string]map[string]string{
		".": {
			"Good":     "Good solves.\n\nDeprecated: use Engine.Solve with MethodGood.\n",
			"NoMarker": "NoMarker solves.\n",
			"NoTarget": "NoTarget solves.\n\nDeprecated: just don't.\n",
		},
		"internal/x": {
			"Elsewhere": "Elsewhere.\n\nDeprecated: use Engine.Solve.\n",
		},
	}
	cases := []struct {
		list string
		want int
	}{
		{"", 0},
		{"Good", 0},
		{"Good, Good", 0}, // whitespace + duplicates tolerated
		{"Missing", 1},
		{"NoMarker", 1},
		{"NoTarget", 1},
		{"Good,Missing,NoMarker,NoTarget", 3},
		{"internal/x:Elsewhere", 0},
		{"Elsewhere", 1}, // bare name resolves in the first dir only
	}
	for _, c := range cases {
		if got := lintDeprecated(c.list, ".", docs); got != c.want {
			t.Errorf("lintDeprecated(%q) = %d findings, want %d", c.list, got, c.want)
		}
	}
}

// TestLintDirCollectsDocs runs the real parser over this package's own
// directory and checks the docs map keys functions, methods, types, and
// values the way lintDeprecated expects.
func TestLintDirCollectsDocs(t *testing.T) {
	docs := map[string]string{}
	if findings := lintDir(".", docs); findings != 0 {
		t.Fatalf("doclint fails on its own package: %d findings", findings)
	}
	for _, name := range []string{"lintDeprecated", "deprecatedParagraph"} {
		// Unexported helpers must not pollute the map.
		if _, ok := docs[name]; ok {
			t.Errorf("docs map contains unexported %s", name)
		}
	}
}
