// Package fleet shards the manirankd cache tiers across a set of replicas.
//
// Membership is static configuration: every node is launched with the same
// set of base URLs (its own via -fleet-self, the others via -peers) and the
// rendezvous ring in ring.go deterministically assigns each cache digest an
// owner among the nodes currently believed alive. The Fleet type layers the
// operational half on top of the pure ring: liveness probing with a small
// hysteresis state machine, an epoch counter that advances whenever the
// alive set changes (the hook for bounded re-owned-key warming), and the
// HTTP transport for the peer protocol — hedged, timeout-bounded GETs for
// result/matrix reads, a POST that asks a digest's owner to build a matrix
// under its own single-flight, and PUTs that push entries to their owner
// after local compute or on membership change.
//
// Every transport error degrades to local compute at the call site: a dead
// or slow peer can cost one bounded fetch timeout, never a failed request.
package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Peer-protocol constants shared by the client here and the handlers in
// internal/service.
const (
	// PathPrefix is the URL prefix of the peer API on every node.
	PathPrefix = "/internal/v1/peer/"
	// KindResults names the result-cache tier in peer URLs.
	KindResults = "results"
	// KindMatrices names the precedence-matrix tier in peer URLs.
	KindMatrices = "matrices"
	// NamespaceHeader carries the sender's cache namespace
	// ({digest-version}@engine-{v}); receivers reject mismatches with 412
	// so replicas running different engine versions can never exchange
	// stale entries. Same invalidation-by-addressing rule as the file
	// store, applied to the wire.
	NamespaceHeader = "X-Manirank-Cache-Namespace"

	failThreshold = 2 // consecutive failures before a peer is marked dead
)

// ErrNoPeer reports that a peer operation had no live target.
var ErrNoPeer = errors.New("fleet: no live peer")

// Config parameterises a Fleet. Zero durations take the listed defaults;
// ProbeInterval < 0 disables background probing (liveness then moves only
// on fetch outcomes and the MarkAlive/MarkDead test hooks).
type Config struct {
	// Self is this node's advertised base URL, e.g. "http://127.0.0.1:8081".
	// It participates in the ring like any peer.
	Self string
	// Peers are the other replicas' base URLs.
	Peers []string
	// FetchTimeout bounds one peer read end to end, hedge included
	// (default 250ms).
	FetchTimeout time.Duration
	// HedgeDelay is how long the first fetch leg runs alone before a
	// second is fired at the runner-up owner (default 40ms; < 0 disables
	// hedging).
	HedgeDelay time.Duration
	// BuildTimeout bounds a remote matrix build (default 3s — a build is
	// a real compute, not a cache read).
	BuildTimeout time.Duration
	// ProbeInterval is the liveness probe period (default 2s; < 0
	// disables the probe loop).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 500ms).
	ProbeTimeout time.Duration
	// WarmLimit caps how many re-owned keys a node pushes to new owners
	// after a membership change (default 256; < 0 disables warming).
	WarmLimit int
	// Client is the HTTP client for all peer traffic; a default client
	// is used when nil.
	Client *http.Client
	// Logger receives membership transitions; silent when nil.
	Logger *log.Logger
}

type peerState struct {
	alive bool
	fails int
}

// Fleet tracks the liveness of a statically configured replica set and
// speaks the peer cache protocol. All methods are safe for concurrent use.
type Fleet struct {
	cfg    Config
	nodes  []string // self + peers, sorted (ring input)
	client *http.Client

	mu        sync.Mutex
	namespace string
	peers     map[string]*peerState
	listeners []func()

	epoch  atomic.Uint64
	stop   chan struct{}
	probes sync.WaitGroup
}

// New validates cfg, applies defaults, and starts the probe loop (unless
// ProbeInterval < 0). Peers start optimistically alive: a node that boots
// before its peers should route to them as soon as they come up, and the
// first failed probe or fetch flips them dead within failThreshold strikes.
func New(cfg Config) (*Fleet, error) {
	if cfg.Self == "" {
		return nil, errors.New("fleet: Self is required")
	}
	if cfg.FetchTimeout == 0 {
		cfg.FetchTimeout = 250 * time.Millisecond
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 40 * time.Millisecond
	}
	if cfg.BuildTimeout == 0 {
		cfg.BuildTimeout = 3 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.WarmLimit == 0 {
		cfg.WarmLimit = 256
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	f := &Fleet{
		cfg:    cfg,
		client: client,
		peers:  make(map[string]*peerState, len(cfg.Peers)),
		stop:   make(chan struct{}),
	}
	seen := map[string]bool{cfg.Self: true}
	f.nodes = append(f.nodes, cfg.Self)
	for _, p := range cfg.Peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		f.nodes = append(f.nodes, p)
		f.peers[p] = &peerState{alive: true}
	}
	sort.Strings(f.nodes)
	if cfg.ProbeInterval > 0 && len(f.peers) > 0 {
		f.probes.Add(1)
		go f.probeLoop()
	}
	return f, nil
}

// Close stops the probe loop. It does not wait for in-flight peer requests;
// their contexts bound them.
func (f *Fleet) Close() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.probes.Wait()
}

// Self returns this node's advertised base URL.
func (f *Fleet) Self() string { return f.cfg.Self }

// Nodes returns the full configured membership (alive or not), sorted.
func (f *Fleet) Nodes() []string { return append([]string(nil), f.nodes...) }

// WarmLimit returns the configured re-owned-key warming cap (0 when
// warming is disabled).
func (f *Fleet) WarmLimit() int {
	if f.cfg.WarmLimit < 0 {
		return 0
	}
	return f.cfg.WarmLimit
}

// SetNamespace installs the cache namespace stamped on every outgoing peer
// request and checked by this node's handlers. The service layer calls it
// once at startup with CacheNamespace(engineVersion).
func (f *Fleet) SetNamespace(ns string) {
	f.mu.Lock()
	f.namespace = ns
	f.mu.Unlock()
}

// Namespace returns the namespace installed by SetNamespace.
func (f *Fleet) Namespace() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.namespace
}

// Epoch returns the membership epoch: it starts at 0 and advances every
// time the alive set changes. Cache-warming and tests watch it.
func (f *Fleet) Epoch() uint64 { return f.epoch.Load() }

// OnChange registers fn to run (on its own goroutine) after every alive-set
// change. Registration order is preserved per event.
func (f *Fleet) OnChange(fn func()) {
	f.mu.Lock()
	f.listeners = append(f.listeners, fn)
	f.mu.Unlock()
}

// alive reports whether node is currently believed alive. Self is always
// alive from its own point of view.
func (f *Fleet) aliveLocked(node string) bool {
	if node == f.cfg.Self {
		return true
	}
	ps := f.peers[node]
	return ps != nil && ps.alive
}

// Alive returns the currently-alive membership (self included), sorted.
func (f *Fleet) Alive() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.nodes))
	for _, n := range f.nodes {
		if f.aliveLocked(n) {
			out = append(out, n)
		}
	}
	return out
}

// PeerStatus is one row of the fleet section in /statz.
type PeerStatus struct {
	// Node is the peer's base URL.
	Node string `json:"node"`
	// Alive is the current liveness verdict.
	Alive bool `json:"alive"`
	// Fails is the current consecutive-failure count.
	Fails int `json:"fails"`
}

// PeerStatuses returns the liveness table for /statz, sorted by node.
func (f *Fleet) PeerStatuses() []PeerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PeerStatus, 0, len(f.peers))
	for n, ps := range f.peers {
		out = append(out, PeerStatus{Node: n, Alive: ps.alive, Fails: ps.fails})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Route returns the alive rendezvous owner of key and whether it is this
// node. A fleet whose peers are all dead routes everything to self.
func (f *Fleet) Route(key string) (owner string, self bool) {
	f.mu.Lock()
	owner = Owner(f.nodes, key, f.aliveLocked)
	f.mu.Unlock()
	return owner, owner == f.cfg.Self
}

// fetchTargets returns the alive non-self nodes to try for key, best owner
// first, at most two (primary + hedge).
func (f *Fleet) fetchTargets(key string) []string {
	f.mu.Lock()
	ranked := Owners(f.nodes, key, len(f.nodes), f.aliveLocked)
	f.mu.Unlock()
	out := make([]string, 0, 2)
	for _, n := range ranked {
		if n == f.cfg.Self {
			continue
		}
		out = append(out, n)
		if len(out) == 2 {
			break
		}
	}
	return out
}

// MarkAlive forces node alive. Exported for tests and the warming path;
// the probe loop normally drives these transitions.
func (f *Fleet) MarkAlive(node string) { f.recordSuccess(node) }

// MarkDead forces node dead immediately, bypassing the failure threshold.
func (f *Fleet) MarkDead(node string) {
	f.mu.Lock()
	ps := f.peers[node]
	changed := ps != nil && ps.alive
	if ps != nil {
		ps.alive = false
		ps.fails = failThreshold
	}
	f.mu.Unlock()
	if changed {
		f.membershipChanged(node, false)
	}
}

func (f *Fleet) recordSuccess(node string) {
	f.mu.Lock()
	ps := f.peers[node]
	changed := ps != nil && !ps.alive
	if ps != nil {
		ps.alive = true
		ps.fails = 0
	}
	f.mu.Unlock()
	if changed {
		f.membershipChanged(node, true)
	}
}

func (f *Fleet) recordFailure(node string) {
	f.mu.Lock()
	ps := f.peers[node]
	changed := false
	if ps != nil {
		ps.fails++
		if ps.alive && ps.fails >= failThreshold {
			ps.alive = false
			changed = true
		}
	}
	f.mu.Unlock()
	if changed {
		f.membershipChanged(node, false)
	}
}

func (f *Fleet) membershipChanged(node string, alive bool) {
	f.epoch.Add(1)
	if f.cfg.Logger != nil {
		verdict := "dead"
		if alive {
			verdict = "alive"
		}
		f.cfg.Logger.Printf("fleet: peer %s marked %s (epoch %d)", node, verdict, f.Epoch())
	}
	f.mu.Lock()
	fns := append([]func(){}, f.listeners...)
	f.mu.Unlock()
	go func() {
		for _, fn := range fns {
			fn()
		}
	}()
}

func (f *Fleet) probeLoop() {
	defer f.probes.Done()
	t := time.NewTicker(f.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.probeAll()
		}
	}
}

func (f *Fleet) probeAll() {
	f.mu.Lock()
	targets := make([]string, 0, len(f.peers))
	for n := range f.peers {
		targets = append(targets, n)
	}
	f.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range targets {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), f.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
			if err != nil {
				f.recordFailure(node)
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				f.recordFailure(node)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				f.recordSuccess(node)
			} else {
				f.recordFailure(node)
			}
		}(n)
	}
	wg.Wait()
}

// --- peer transport -------------------------------------------------------

type fetchOutcome struct {
	payload []byte
	found   bool
	err     error
}

// Fetch performs a hedged, timeout-bounded read of digest from its owner
// (kind is KindResults or KindMatrices). It returns (payload, true, nil) on
// a peer hit, (nil, false, nil) on an authoritative peer miss (404), and a
// non-nil error when no leg produced a verdict — the caller computes
// locally in every non-hit case. Transport errors feed the liveness state
// machine; misses and namespace rejections do not.
func (f *Fleet) Fetch(ctx context.Context, kind, digest string) ([]byte, bool, error) {
	targets := f.fetchTargets(digest)
	if len(targets) == 0 {
		return nil, false, ErrNoPeer
	}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()

	results := make(chan fetchOutcome, len(targets))
	leg := func(node string) {
		payload, found, err := f.getOnce(ctx, node, kind, digest)
		if err != nil && ctx.Err() == nil {
			f.recordFailure(node)
		} else if err == nil {
			f.recordSuccess(node)
		}
		results <- fetchOutcome{payload, found, err}
	}

	go leg(targets[0])
	legs := 1
	var hedge <-chan time.Time
	if len(targets) > 1 && f.cfg.HedgeDelay >= 0 {
		ht := time.NewTimer(f.cfg.HedgeDelay)
		defer ht.Stop()
		hedge = ht.C
	}

	var firstErr error
	for done := 0; done < legs; {
		select {
		case <-hedge:
			hedge = nil
			go leg(targets[1])
			legs++
		case out := <-results:
			done++
			if out.err == nil {
				return out.payload, out.found, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			// A failed primary leg should not sit out the hedge delay.
			if hedge != nil {
				hedge = nil
				go leg(targets[1])
				legs++
			}
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			return nil, false, firstErr
		}
	}
	return nil, false, firstErr
}

func (f *Fleet) getOnce(ctx context.Context, node, kind, digest string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.peerURL(node, kind, digest), nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(NamespaceHeader, f.Namespace())
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		payload, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, err
		}
		return payload, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("fleet: peer %s: %s %s: status %d", node, kind, digest, resp.StatusCode)
	}
}

// BuildMatrix asks owner to build the precedence matrix for digest from the
// posted profile (the service-layer JSON encoding) under the owner's own
// single-flight, returning the serialized matrix. Unlike Fetch this is a
// compute request: no hedging (two owners building would defeat the one
// build per ring the call exists for), a longer timeout, and only transport
// errors — not application rejections — count against liveness.
func (f *Fleet) BuildMatrix(ctx context.Context, owner, digest string, profile []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.BuildTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.peerURL(owner, KindMatrices, digest), bytes.NewReader(profile))
	if err != nil {
		return nil, err
	}
	req.Header.Set(NamespaceHeader, f.Namespace())
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			f.recordFailure(owner)
		}
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	f.recordSuccess(owner)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: peer build %s on %s: status %d", digest, owner, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// Push writes an already-encoded cache entry to node so the digest's owner
// holds it for the rest of the ring (after a local compute on a non-owner,
// or during re-owned-key warming). Best effort: the caller already has the
// value, so errors only inform liveness.
func (f *Fleet) Push(ctx context.Context, node, kind, digest string, payload []byte) error {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, f.peerURL(node, kind, digest), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set(NamespaceHeader, f.Namespace())
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			f.recordFailure(node)
		}
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	f.recordSuccess(node)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: push %s/%s to %s: status %d", kind, digest, node, resp.StatusCode)
	}
	return nil
}

func (f *Fleet) peerURL(node, kind, digest string) string {
	return node + PathPrefix + kind + "/" + digest
}
