package ranking

import (
	"math/rand"
	"testing"
)

// fuzzInstance decodes a fuzz payload into a reproducible profile, working
// ranking, and move coordinates. Layout: data[0] -> n, data[1] -> m,
// data[2]/data[3] -> move positions, remaining bytes fold into the RNG seed.
func fuzzInstance(data []byte) (p Profile, r Ranking, from, to int, ok bool) {
	if len(data) < 4 {
		return nil, nil, 0, 0, false
	}
	n := 2 + int(data[0])%40
	m := 1 + int(data[1])%8
	seed := int64(1)
	for _, b := range data[4:] {
		seed = seed*131 + int64(b)
	}
	rng := rand.New(rand.NewSource(seed))
	p = make(Profile, m)
	for i := range p {
		p[i] = Random(n, rng)
	}
	r = Random(n, rng)
	return p, r, int(data[2]) % n, int(data[3]) % n, true
}

// FuzzSwapDeltas cross-checks the O(1)/O(k) incremental cost deltas the
// solvers rely on — AdjacentSwapDelta and MoveDelta — against a full
// KemenyCost recompute on fuzzed profiles, rankings, and move coordinates.
func FuzzSwapDeltas(f *testing.F) {
	f.Add([]byte{5, 3, 2, 4, 1})
	f.Add([]byte{38, 7, 0, 39, 200, 17, 4})
	f.Add([]byte{2, 1, 1, 0})
	f.Add([]byte{20, 4, 10, 10, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, r, from, to, ok := fuzzInstance(data)
		if !ok {
			return
		}
		w := MustPrecedence(p)
		base := w.KemenyCost(r)

		moved := r.Clone()
		delta := w.MoveDelta(moved, from, to)
		moved.MoveTo(from, to)
		if got := w.KemenyCost(moved); base+delta != got {
			t.Fatalf("MoveDelta(%d->%d) = %d, but full recompute moved cost %d - base %d = %d",
				from, to, delta, got, base, got-base)
		}
		// The inverse move must return both the ranking and the cost.
		back := w.MoveDelta(moved, to, from)
		moved.MoveTo(to, from)
		if !moved.Equal(r) || delta+back != 0 {
			t.Fatalf("inverse move did not restore: delta %d, back %d, equal %v", delta, back, moved.Equal(r))
		}

		if n := len(r); n >= 2 {
			i := from % (n - 1)
			swapped := r.Clone()
			d := w.AdjacentSwapDelta(swapped, i)
			swapped.Swap(i, i+1)
			if got := w.KemenyCost(swapped); base+d != got {
				t.Fatalf("AdjacentSwapDelta(%d) = %d, but full recompute gives %d", i, d, got-base)
			}
			// Adjacent swap is MoveTo(i, i+1): the two fast paths must agree.
			if md := w.MoveDelta(r, i, i+1); md != d {
				t.Fatalf("AdjacentSwapDelta(%d) = %d disagrees with MoveDelta = %d", i, d, md)
			}
		}
	})
}
