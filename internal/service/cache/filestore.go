package cache

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// fileMagic brands every entry file; anything without it is not ours (or is
// the torn prefix of a crashed write) and reads as a miss.
const fileMagic = "MRC1"

// fileHeaderLen is the fixed entry header: magic (4) + expiry unixnano (8) +
// payload length (8) + payload CRC-32 (4).
const fileHeaderLen = 4 + 8 + 8 + 4

// FileStore is the file-backed Store: one file per entry under
//
//	<root>/<namespace...>/<key prefix>/<key>
//
// where the namespace encodes the digest version and the engine version
// (e.g. "manirankd_v2@engine-1/results"), so bumping either changes the key
// path and makes every previously persisted entry unreachable — invalidation
// by versioned addressing, not by deletion. Opening a store prunes sibling
// version trees under root (they can never be read again), which keeps the
// directory bounded across upgrades.
//
// Writes are atomic: the entry is written to a temp file in the destination
// directory and renamed into place, so a crash mid-write leaves at worst a
// stale temp file, never a torn entry. Each entry carries a header with a
// magic, an absolute expiry, the payload length, and a payload CRC; Get
// treats any mismatch — truncation, corruption, expiry — as a miss and
// deletes the file.
type FileStore struct {
	dir string // the namespace directory all entries live under

	mu     sync.Mutex
	now    func() time.Time
	budget *DiskBudget // nil: unbounded
}

// OpenFileStore opens (creating as needed) the file store rooted at root for
// the given namespace. The namespace may contain "/" separators; each
// segment is sanitised to a safe directory name. The first segment is the
// version tree: sibling first-segment directories under root are pruned,
// because a version bump made their entries unreachable forever. Root must
// therefore be a directory dedicated to this store (manirankd's -cache-dir).
func OpenFileStore(root, namespace string) (*FileStore, error) {
	if root == "" {
		return nil, errors.New("cache: empty file store root")
	}
	segs := strings.Split(namespace, "/")
	for i, s := range segs {
		segs[i] = sanitizeSegment(s)
		if segs[i] == "" {
			return nil, fmt.Errorf("cache: empty namespace segment in %q", namespace)
		}
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating store root: %w", err)
	}
	pruneStaleVersions(root, segs[0])
	dir := filepath.Join(append([]string{root}, segs...)...)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating store namespace: %w", err)
	}
	return &FileStore{dir: dir, now: time.Now}, nil
}

// pruneStaleVersions removes version trees under root other than keep: their
// keys embed a digest or engine version this process will never ask for
// again, so they are dead weight on disk. Errors are ignored — pruning is
// best-effort hygiene, not correctness.
func pruneStaleVersions(root, keep string) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != keep {
			os.RemoveAll(filepath.Join(root, e.Name()))
		}
	}
}

// sanitizeSegment maps a namespace segment onto a safe directory name:
// alphanumerics, '.', '_', '-', '@' pass through, everything else becomes
// '_' (so the digest version "manirankd/v2" arrives pre-split by '/').
func sanitizeSegment(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-', r == '@':
			return r
		}
		return '_'
	}, s)
}

// SetClock replaces the store's time source; tests use it to drive expiry
// deterministically.
func (s *FileStore) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

func (s *FileStore) clock() func() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// SetBudget attaches a disk-usage budget: the store reports every write
// and delete to it and refreshes entry mtimes on reads so the budget's
// eviction is recency-ordered. One DiskBudget is typically shared by the
// results and matrices stores under the same root. Attach before serving
// traffic.
func (s *FileStore) SetBudget(b *DiskBudget) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = b
}

func (s *FileStore) budgetRef() *DiskBudget {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// path returns the entry file for key, fanned out over a two-character
// prefix directory so one flat directory never holds the whole tier.
func (s *FileStore) path(key string) (string, error) {
	k := sanitizeSegment(key)
	if k != key || key == "" {
		// Keys are hex digests everywhere in this repo; anything else would
		// alias after sanitisation, which a content-addressed store cannot
		// tolerate.
		return "", fmt.Errorf("cache: key %q is not file-store safe", key)
	}
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, prefix, key), nil
}

// Get implements Store: corrupt, truncated, and expired entries read as
// misses and are deleted in passing.
func (s *FileStore) Get(key string) ([]byte, time.Time, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, time.Time{}, false, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, time.Time{}, false, nil
	}
	if err != nil {
		return nil, time.Time{}, false, err
	}
	value, expiry, ok := decodeEntry(data)
	if !ok {
		s.removeCharged(p, int64(len(data)))
		return nil, time.Time{}, false, nil
	}
	if !expiry.IsZero() && !s.clock()().Before(expiry) {
		s.removeCharged(p, int64(len(data)))
		return nil, time.Time{}, false, nil
	}
	if b := s.budgetRef(); b != nil {
		b.touch(p)
	}
	return value, expiry, true, nil
}

// removeCharged deletes an entry file and refunds its bytes to the budget.
func (s *FileStore) removeCharged(p string, size int64) {
	if os.Remove(p) == nil {
		if b := s.budgetRef(); b != nil {
			b.charge(-size)
		}
	}
}

// Put implements Store with a temp-file + rename write, atomic on POSIX
// filesystems.
func (s *FileStore) Put(key string, value []byte, expiry time.Time) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	buf := encodeEntry(value, expiry)
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	var oldSize int64
	b := s.budgetRef()
	if b != nil {
		if info, serr := os.Stat(p); serr == nil {
			oldSize = info.Size()
		}
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if b != nil {
		b.charge(int64(len(buf)) - oldSize)
	}
	return nil
}

// Delete implements Store; deleting an absent key succeeds.
func (s *FileStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	var size int64
	if b := s.budgetRef(); b != nil {
		if info, serr := os.Stat(p); serr == nil {
			size = info.Size()
		}
	}
	if err := os.Remove(p); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	if b := s.budgetRef(); b != nil && size > 0 {
		b.charge(-size)
	}
	return nil
}

// Scan implements Store: it walks the namespace, silently skipping temp
// files, corrupt entries, and entries that expired (deleting the latter two).
func (s *FileStore) Scan(fn func(key string, value []byte, expiry time.Time) error) error {
	now := s.clock()()
	return filepath.WalkDir(s.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return err
		}
		data, rerr := os.ReadFile(p)
		if rerr != nil {
			return nil // raced with a concurrent delete; not fatal
		}
		value, expiry, ok := decodeEntry(data)
		if !ok || (!expiry.IsZero() && !now.Before(expiry)) {
			s.removeCharged(p, int64(len(data)))
			return nil
		}
		return fn(d.Name(), value, expiry)
	})
}

// Len returns the number of live entries (a Scan pass; intended for tests
// and diagnostics, not hot paths).
func (s *FileStore) Len() int {
	n := 0
	s.Scan(func(string, []byte, time.Time) error { n++; return nil })
	return n
}

// Close implements Store; the file store holds no open handles between
// calls, so there is nothing to release.
func (s *FileStore) Close() error { return nil }

// encodeEntry frames value with the store's header: magic, absolute expiry,
// payload length, payload CRC-32.
func encodeEntry(value []byte, expiry time.Time) []byte {
	buf := make([]byte, fileHeaderLen+len(value))
	copy(buf, fileMagic)
	var exp int64
	if !expiry.IsZero() {
		exp = expiry.UnixNano()
	}
	binary.LittleEndian.PutUint64(buf[4:], uint64(exp))
	binary.LittleEndian.PutUint64(buf[12:], uint64(len(value)))
	binary.LittleEndian.PutUint32(buf[20:], crc32.ChecksumIEEE(value))
	copy(buf[fileHeaderLen:], value)
	return buf
}

// decodeEntry validates an entry file's frame; ok is false for any torn,
// truncated, or corrupt form.
func decodeEntry(data []byte) (value []byte, expiry time.Time, ok bool) {
	if len(data) < fileHeaderLen || string(data[:4]) != fileMagic {
		return nil, time.Time{}, false
	}
	exp := int64(binary.LittleEndian.Uint64(data[4:]))
	length := binary.LittleEndian.Uint64(data[12:])
	crc := binary.LittleEndian.Uint32(data[20:])
	payload := data[fileHeaderLen:]
	if uint64(len(payload)) != length || crc32.ChecksumIEEE(payload) != crc {
		return nil, time.Time{}, false
	}
	if exp != 0 {
		expiry = time.Unix(0, exp)
	}
	return payload, expiry, true
}
