package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGoldenQuickTables -update
//
// Commit the regenerated files together with whatever intentional change
// moved the numbers; EXPERIMENTS.md explains the workflow.
var update = flag.Bool("update", false, "rewrite the experiment golden files")

// heavyQuick lists experiments that are slow even at Quick scale; they are
// skipped under -short, matching TestEveryExperimentRunsQuick.
var heavyQuick = map[string]bool{"fig3": true, "fig7": true, "table2": true}

// pinnedWorkerIDs also run sequentially (Workers: 1) against the same golden
// file, pinning the worker-count determinism guarantee end to end: one
// committed byte stream, every pool width.
var pinnedWorkerIDs = map[string]bool{"table1": true, "fig2": true, "fig4": true, "table4": true}

// canonical strips the only non-deterministic output — wall-clock timing
// columns — from an experiment table. Duration tokens (fig6/fig7 Runtime)
// become "T" via stripRuntimes, which also collapses the tabwriter padding
// their widths perturb; table2/table3 report seconds as bare floats, so
// their two-column data rows lose the seconds field the same way.
func canonical(id, out string) string {
	out = stripRuntimes(out)
	if id != "table2" && id != "table3" {
		return out
	}
	lines := strings.Split(out, "\n")
	for li, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if _, err := strconv.Atoi(fields[0]); err != nil {
			continue
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err == nil && strings.Contains(fields[1], ".") {
			fields[1] = "T"
			lines[li] = strings.Join(fields, " ")
		}
	}
	return strings.Join(lines, "\n")
}

// goldenRun executes one experiment at Quick scale with the given pool width
// and returns its canonicalised table.
func goldenRun(t *testing.T, id string, workers int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(id, Config{Seed: 1, Out: &buf, Quick: true, Workers: workers}); err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	return canonical(id, buf.String())
}

// TestGoldenQuickTables is the numeric per-cell regression ROADMAP asks for:
// every experiment's Quick table is compared byte-for-byte (timing columns
// canonicalised) against a committed golden file. Any change to sampling,
// solvers, seeding, or formatting shows up as a diff here and must be
// re-recorded with -update.
func TestGoldenQuickTables(t *testing.T) {
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && heavyQuick[id] {
				t.Skip("heavy even in quick mode")
			}
			got := goldenRun(t, id, 4)
			path := filepath.Join("testdata", "golden", id+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Fatalf("%s deviates from %s — if intentional, re-record with -update\n--- got ---\n%s\n--- want ---\n%s",
					id, path, got, string(want))
			}
			if pinnedWorkerIDs[id] {
				if seq := goldenRun(t, id, 1); seq != got {
					t.Fatalf("%s: Workers:1 output deviates from the Workers:4 golden\n--- sequential ---\n%s\n--- golden ---\n%s",
						id, seq, got)
				}
			}
		})
	}
}
