package service

import (
	"strings"
	"testing"
)

// TestWarmRestartServesFromDisk is the tentpole's end-to-end contract: a
// server restarted over the same -cache-dir answers a previously seen
// request from the persistent tier — no solver run, no matrix build — and a
// new method over a known profile restores the precedence matrix from disk.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	req := testRequest("fair-borda", 21)

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	status, first := post(t, ts1.URL, req)
	if status != 200 || first.Cached {
		t.Fatalf("cold request: status=%d cached=%v", status, first != nil && first.Cached)
	}
	if st := s1.StatzSnapshot(); st.Cache.DiskPuts != 1 || st.Matrix.DiskPuts != 1 {
		t.Fatalf("write-through: %+v / %+v, want one put per tier", st.Cache, st.Matrix)
	}
	ts1.Close()
	s1.Close() // snapshot flush + store close

	// The "restarted daemon": fresh process state, same cache directory.
	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	status, warm := post(t, ts2.URL, req)
	if status != 200 || !warm.Cached {
		t.Fatalf("restarted request: status=%d cached=%v, want disk-warm hit", status, warm != nil && warm.Cached)
	}
	if warm.Digest != first.Digest {
		t.Fatal("digest changed across restart")
	}
	if len(warm.Ranking) != len(first.Ranking) {
		t.Fatalf("restored ranking has %d candidates, want %d", len(warm.Ranking), len(first.Ranking))
	}
	for i, c := range first.Ranking {
		if warm.Ranking[i] != c {
			t.Fatalf("restored ranking differs at position %d", i)
		}
	}
	st := s2.StatzSnapshot()
	if st.Cache.DiskHits != 1 || st.Cache.Hits != 0 {
		t.Fatalf("restart cache stats = %+v, want exactly one disk hit", st.Cache)
	}
	if st.Matrix.Builds != 0 {
		t.Fatalf("restart rebuilt %d matrices for a result-tier hit", st.Matrix.Builds)
	}

	// A NEW method over the already-seen profile misses the result tier but
	// restores the persisted precedence matrix instead of rebuilding it.
	other := testRequest("copeland", 21) // same seed -> same profile sub-digest
	if status, resp := post(t, ts2.URL, other); status != 200 || resp.Cached {
		t.Fatalf("new-method request: status=%d cached=%v", status, resp != nil && resp.Cached)
	}
	st = s2.StatzSnapshot()
	if st.Matrix.DiskHits != 1 || st.Matrix.Builds != 0 {
		t.Fatalf("matrix stats = %+v, want the matrix restored from disk, not rebuilt", st.Matrix)
	}
	if st.Matrix.BuildsSkipped == 0 {
		t.Fatal("BuildsSkipped did not count the disk restore")
	}
	ts2.Close()
	s2.Close()

	// Bumping the engine version makes every persisted entry unreachable:
	// the same request is cold again.
	s3, ts3 := newTestServer(t, Config{CacheDir: dir, EngineVersion: "2"})
	if status, resp := post(t, ts3.URL, req); status != 200 || resp.Cached {
		t.Fatalf("post-bump request: status=%d cached=%v, want cold", status, resp != nil && resp.Cached)
	}
	if st := s3.StatzSnapshot(); st.Cache.DiskHits != 0 || st.Matrix.DiskHits != 0 {
		t.Fatalf("post-bump stats = %+v / %+v, want no disk hits", st.Cache, st.Matrix)
	}
}

func TestCacheNamespace(t *testing.T) {
	def := CacheNamespace("")
	if def != CacheNamespace(DefaultEngineVersion) {
		t.Fatal("empty engine version does not default")
	}
	if strings.Contains(def, "/") {
		t.Fatalf("namespace %q spans path segments; the version must collapse into one", def)
	}
	if CacheNamespace("2") == def {
		t.Fatal("engine-version bump did not change the namespace")
	}
	if !strings.Contains(def, "@engine-") {
		t.Fatalf("namespace %q lacks the engine-version component", def)
	}
}
