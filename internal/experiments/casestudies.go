package experiments

import (
	"fmt"

	"manirank"
	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

// Table4 regenerates paper Table IV, the student merit scholarship case
// study: FPR scores for every protected group and ARP/IRP for every base
// ranking (math, reading, writing), the fairness-unaware Kemeny consensus,
// and the four MFCR methods at Delta = 0.05.
func Table4(cfg Config) error {
	n := 200
	if cfg.Quick {
		n = 120
	}
	study, err := unfairgen.NewExamStudy(n, cfg.Seed+40)
	if err != nil {
		return err
	}
	return caseStudyTable(cfg, study.Table, study.Profile, study.Subjects, 0.05)
}

// Table5 regenerates paper Table V, the CSRankings case study: 21 yearly
// department rankings over Location(4) x Type(2), the Kemeny consensus, and
// the MFCR methods at Delta = 0.05.
func Table5(cfg Config) error {
	study, err := unfairgen.NewCSRankingsStudy(cfg.Seed + 50)
	if err != nil {
		return err
	}
	labels := make([]string, len(study.Years))
	for i, y := range study.Years {
		labels[i] = fmt.Sprintf("%d", y)
	}
	return caseStudyTable(cfg, study.Table, study.Profile, labels, 0.05)
}

// caseStudyTable prints the paper's case-study layout: one row per base
// ranking and per consensus method, with group FPR columns followed by
// per-attribute ARP columns and IRP.
func caseStudyTable(cfg Config, tab *attribute.Table, p ranking.Profile, labels []string, delta float64) error {
	ctx, err := newRunCtx(p, tab, delta)
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())

	header := "Ranking"
	for _, a := range tab.Attrs() {
		for _, v := range a.Values {
			header += "\t" + v
		}
		header += "\t" + a.Name
	}
	header += "\tIRP"
	fmt.Fprintln(tw, header)

	row := func(name string, r ranking.Ranking) {
		rep := fairness.Audit(r, tab)
		line := name
		for i := range tab.Attrs() {
			for _, f := range rep.FPRs[i] {
				line += fmt.Sprintf("\t%.2f", f)
			}
			line += fmt.Sprintf("\t%.2f", rep.ARPs[i])
		}
		line += fmt.Sprintf("\t%.2f", rep.IRP)
		fmt.Fprintln(tw, line)
	}

	for i, r := range p {
		row(labels[i], r)
	}
	// The consensus rows all route through the case study's one Engine —
	// five methods over a single shared precedence matrix.
	for _, s := range []methodSpec{
		{"", "Kemeny", manirank.MethodKemeny},
		{"", "Fair-Kemeny", manirank.MethodFairKemeny},
		{"", "Fair-Schulze", manirank.MethodFairSchulze},
		{"", "Fair-Borda", manirank.MethodFairBorda},
		{"", "Fair-Copeland", manirank.MethodFairCopeland},
	} {
		res, err := ctx.solve(cfg, s.M, ctx.targets)
		if err != nil {
			return fmt.Errorf("experiments: case study %s: %w", s.Name, err)
		}
		row(s.Name, res.Ranking)
	}
	return tw.Flush()
}

// Run executes the experiment with the given id ("table1", "fig3", ...,
// "all"). Unknown ids return an error listing the valid ones.
func Run(id string, cfg Config) error {
	runners := map[string]func(Config) error{
		"table1": Table1,
		"fig2":   Fig2,
		"fig3":   Fig3,
		"fig4":   Fig4,
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"table2": Table2,
		"table3": Table3,
		"table4": Table4,
		"table5": Table5,
	}
	if id == "all" {
		for _, name := range ExperimentIDs() {
			fmt.Fprintf(cfg.out(), "==== %s ====\n", name)
			if err := runners[name](cfg); err != nil {
				return err
			}
			fmt.Fprintln(cfg.out())
		}
		return nil
	}
	run, ok := runners[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (valid: %v, all)", id, ExperimentIDs())
	}
	return run(cfg)
}

// ExperimentIDs lists every runnable experiment in presentation order.
func ExperimentIDs() []string {
	return []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table2", "table3", "table4", "table5"}
}
