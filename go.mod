module manirank

go 1.24
