package ranking

// SplitMix64 applies one splitmix64 finalisation round, folding v into the
// running hash h. It is the shared seed-derivation primitive behind every
// deterministic-parallel layer of this repo — experiment cells and solver
// restarts both derive private RNG seeds by chaining it over their
// coordinates — so the schemes cannot drift apart.
func SplitMix64(h, v uint64) uint64 {
	h ^= v
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// SplitMix64Init is the golden-ratio offset seeds are XORed with before the
// first mixing round.
const SplitMix64Init = 0x9e3779b97f4a7c15
