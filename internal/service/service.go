// Package service is manirankd's serving layer: an HTTP JSON API over the
// manirank.Engine solver registry (every request resolves its method via
// manirank.ParseMethod and solves through Engine.Solve on the shared,
// cached precedence matrix) with three server-grade layers on top of the
// compute core —
//
//  1. two cache tiers (internal/service/cache), both keyed by canonical
//     SHA-256 digests and both single-flight coalesced: a result cache over
//     the full request digest (pluggable LRU or Compact-CAR-style clock
//     replacement, Config.CachePolicy) so identical requests compute once,
//     and a precedence-matrix cache over the profile sub-digest so
//     *different* methods or solver options over an already-seen profile
//     skip the O(n²·m) matrix construction — admission is bounded by memory
//     cost (n² cells per matrix), not entry count;
//  2. admission and scheduling: a bounded job queue feeding a fixed solver
//     worker pool, per-request deadlines threaded as context.Context into
//     the Kemeny/Fair-Kemeny restart loops (best-so-far on expiry), and
//     backpressure (HTTP 429) when the queue is full;
//  3. observability: /statz (queue depth, in-flight solves, per-tier cache
//     counters including matrix builds skipped, p50/p99 latency rings) and
//     structured request logging.
//
// See DESIGN.md §6–§7 for the queue → caches → solver architecture.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"manirank"
	"manirank/internal/aggregate"
	"manirank/internal/kemeny"
	"manirank/internal/ranking"
	"manirank/internal/service/cache"
)

// Config tunes a Server. Zero fields take the documented defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// Workers is the solver pool width — at most this many requests compute
	// concurrently (default GOMAXPROCS).
	Workers int
	// SolverWorkers shards each individual solve's restarts
	// (kemeny.Options.Workers). Default 1: under concurrent load the request
	// pool owns the machine's parallelism, and restart pools per solve would
	// oversubscribe it — the same reasoning as the experiment harness.
	SolverWorkers int
	// CacheSize is the result-cache capacity in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// CachePolicy selects the result cache's replacement policy:
	// cache.PolicyClock (default) or cache.PolicyLRU.
	CachePolicy string
	// CacheTTL expires cached results (default 0: never). With a TTL set the
	// server also runs a clock-driven reaper that sweeps expired entries out
	// of memory even when nothing re-requests them.
	CacheTTL time.Duration
	// CacheDir, when non-empty, roots a persistent content-addressed tier
	// under both caches: every admitted result and matrix is written through
	// to disk, memory misses consult disk before computing, and both tiers
	// are flushed on Close — so a restarted server serves its previous
	// working set warm. The directory must be dedicated to this server's
	// cache (stale version trees inside it are pruned on startup).
	CacheDir string
	// EngineVersion is the engine-behaviour component of the persistent
	// tier's namespace (default DefaultEngineVersion). Bump it at deploy time
	// when solver behaviour changes: every entry persisted under the old
	// version becomes unreachable. Ignored without CacheDir.
	EngineVersion string
	// PrecCacheCells budgets the precedence-matrix tier in matrix cells (a
	// profile over n candidates costs n² cells ≈ 4n² bytes). Default
	// DefaultPrecCacheCells; negative disables storage (builds still
	// coalesce).
	PrecCacheCells int64
	// DefaultDeadline caps a solve when the request doesn't set deadline_ms
	// (default 30s).
	DefaultDeadline time.Duration
	// MaxDeadline caps what deadline_ms may ask for (default 5m).
	MaxDeadline time.Duration
	// MaxBodyBytes bounds the request body (default 32 MiB).
	MaxBodyBytes int64
	// Logger receives structured request logs (default slog.Default()).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SolverWorkers == 0 {
		c.SolverWorkers = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.CachePolicy == "" {
		c.CachePolicy = cache.PolicyClock
	}
	if c.PrecCacheCells == 0 {
		c.PrecCacheCells = DefaultPrecCacheCells
	}
	if c.PrecCacheCells < 0 {
		c.PrecCacheCells = 0 // MatrixCache treats 0 as storage off
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// DefaultPrecCacheCells is the default precedence-tier budget: 4M int32
// cells ≈ 16 MiB, room for ~16 n=500 matrices or ~1100 n=60 ones.
const DefaultPrecCacheCells = 4 << 20

// Errors the admission layer maps to HTTP statuses.
var (
	// ErrQueueFull: the bounded queue rejected the request (429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrExpiredInQueue: the request's deadline elapsed before a solver
	// worker picked it up (504).
	ErrExpiredInQueue = errors.New("service: deadline expired while queued")
	// ErrShuttingDown: the server is draining (503).
	ErrShuttingDown = errors.New("service: shutting down")
)

// result is the cached/shared outcome of one solve.
type result struct {
	Ranking ranking.Ranking `json:"ranking"`
	Method  string          `json:"method"`
	PDLoss  float64         `json:"pd_loss"`
	Audit   *auditPayload   `json:"audit,omitempty"`
	Partial bool            `json:"partial"`
}

// auditPayload is the wire form of a fairness audit.
type auditPayload struct {
	ARPs map[string]float64 `json:"arps"`
	IRP  float64            `json:"irp"`
}

// AggregateResponse is the POST /v1/aggregate response body.
type AggregateResponse struct {
	result
	Cached    bool    `json:"cached"`
	Coalesced bool    `json:"coalesced"`
	Digest    string  `json:"digest"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// job is one admitted solve travelling from the handler to a worker.
type job struct {
	pb   *problem
	ctx  context.Context // carries the compute deadline
	done chan struct{}
	res  *result
	err  error
	// state arbitrates the queued job between the worker and a leader whose
	// deadline lapses while it waits: exactly one of claim/abandon wins.
	state atomic.Int32 // 0 = queued, 1 = claimed by a worker, 2 = abandoned by the leader
}

// claim marks the job as picked up by a worker; false means the leader
// already walked away and the job must be dropped.
func (j *job) claim() bool { return j.state.CompareAndSwap(0, 1) }

// abandon marks the job as given up by its leader; false means a worker
// already claimed it and the leader must keep waiting for the (imminent,
// deadline-bounded) result.
func (j *job) abandon() bool { return j.state.CompareAndSwap(0, 2) }

// Server is the manirankd serving core. Construct with New, mount via
// Handler, stop with Close.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	prec    *cache.MatrixCache
	stores  []cache.Store // persistent tiers to close after the final flush
	jobs    chan *job
	quit    chan struct{}
	wg      sync.WaitGroup
	log     *slog.Logger
	started time.Time

	inFlight  atomic.Int64 // solves currently executing
	queued    atomic.Int64 // jobs waiting in the queue
	byStatus  sync.Map     // int -> *atomic.Int64
	solveLat  latencyRing  // latency of computed (non-hit) requests
	hitLat    latencyRing  // latency of cache-hit requests
	methodLat sync.Map     // method string -> *latencyRing of pure solve time
	closeOnce sync.Once
}

// New starts a Server's worker pool and returns it. It fails on an unknown
// Config.CachePolicy or an unusable Config.CacheDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	results, err := cache.NewWithPolicy(cfg.CacheSize, cfg.CacheTTL, cfg.CachePolicy)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		cache:   results,
		prec:    cache.NewMatrixCache(cfg.PrecCacheCells),
		jobs:    make(chan *job, cfg.QueueDepth),
		quit:    make(chan struct{}),
		log:     cfg.Logger,
		started: time.Now(),
	}
	if cfg.CacheDir != "" {
		ns := CacheNamespace(cfg.EngineVersion)
		rs, err := cache.OpenFileStore(cfg.CacheDir, ns+"/results")
		if err != nil {
			return nil, err
		}
		ms, err := cache.OpenFileStore(cfg.CacheDir, ns+"/matrices")
		if err != nil {
			rs.Close()
			return nil, err
		}
		s.cache.AttachStore(rs, resultCodec())
		s.prec.AttachStore(ms, matrixCodec(), matrixCost)
		s.stores = append(s.stores, rs, ms)
		s.log.Info("persistent cache tier attached", "dir", cfg.CacheDir, "namespace", ns)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.CacheTTL > 0 {
		interval := cfg.CacheTTL / 2
		if interval < time.Second {
			interval = time.Second
		}
		s.wg.Add(1)
		go s.reaper(interval)
	}
	return s, nil
}

// reaper periodically sweeps expired entries out of the result cache so a
// TTL'd working set that stops being requested releases its memory and
// Policy slots without waiting for capacity pressure (lookupLocked only
// expires entries somebody asks for again).
func (s *Server) reaper(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.cache.Sweep()
		}
	}
}

// Close drains the solver pool: workers finish their current job and exit,
// and any job still queued fails with ErrShuttingDown. With a persistent
// tier attached, both caches then snapshot-flush to disk and the stores are
// closed, so the next process starts from this one's full working set (not
// just what write-through persisted). Stop accepting HTTP traffic
// (http.Server.Shutdown) before calling Close so no handler is left waiting.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.quit)
		s.wg.Wait()
		for drained := false; !drained; {
			select {
			case j := <-s.jobs:
				j.err = ErrShuttingDown
				close(j.done)
			default:
				drained = true
			}
		}
		if len(s.stores) > 0 {
			nr := s.cache.Flush()
			nm := s.prec.Flush()
			s.log.Info("persistent cache tier flushed", "results", nr, "matrices", nm)
			for _, st := range s.stores {
				st.Close()
			}
		}
	})
}

// worker pops admitted jobs and solves them until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			s.queued.Add(-1)
			if !j.claim() {
				// The leader already answered 504 for it; nobody is
				// listening, so don't waste a solver slot.
				continue
			}
			if j.ctx.Err() != nil {
				// Expired while queued: don't waste a solver slot on it.
				j.err = ErrExpiredInQueue
				close(j.done)
				continue
			}
			s.inFlight.Add(1)
			t0 := time.Now()
			j.res, j.err = s.solve(j.ctx, j.pb)
			if j.err == nil {
				s.methodRing(j.pb.method.String()).add(time.Since(t0))
			}
			s.inFlight.Add(-1)
			close(j.done)
		}
	}
}

// methodRing returns (creating on first sight) the per-method solve-latency
// ring. Solve time is measured worker-side — queueing, coalescing, and cache
// lookups excluded — so /statz separates solver cost per method from serving
// overhead.
func (s *Server) methodRing(method string) *latencyRing {
	if r, ok := s.methodLat.Load(method); ok {
		return r.(*latencyRing)
	}
	r, _ := s.methodLat.LoadOrStore(method, &latencyRing{})
	return r.(*latencyRing)
}

// kemenyOptions lowers the request's solver knobs onto the engine options.
func (s *Server) kemenyOptions(o SolverOptions) aggregate.KemenyOptions {
	return aggregate.KemenyOptions{
		ExactThreshold: o.ExactThreshold,
		MaxNodes:       o.MaxNodes,
		Heuristic: kemeny.Options{
			Seed:          o.Seed,
			Perturbations: o.Perturbations,
			Strength:      o.Strength,
			Workers:       s.cfg.SolverWorkers,
		},
	}
}

// precedence returns the problem's precedence matrix through the shared
// matrix tier: keyed by the profile sub-digest, so any method over an
// already-seen profile reuses the stored W, and concurrent first sights of
// one profile build it exactly once. The matrix is immutable once built —
// every solver only reads it — which is what makes sharing across worker
// goroutines sound. ctx bounds only a follower's wait on another worker's
// flight (which may include disk I/O); the build itself runs to completion.
func (s *Server) precedence(ctx context.Context, pb *problem) (*ranking.Precedence, error) {
	v, _, _, err := s.prec.Do(ctx, pb.profDigest, func() (any, int64, error) {
		w, err := ranking.NewPrecedence(pb.profile)
		if err != nil {
			return nil, 0, err
		}
		return w, w.Cells(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ranking.Precedence), nil
}

// solve runs one problem on the engine registry. ctx carries the request
// deadline; the Kemeny engines return best-so-far on expiry, so a partial
// result is still a valid (and for fair methods, feasible) ranking.
//
// The cached precedence matrix is wrapped in a manirank.Engine (a cheap
// three-pointer struct) so the service shares the exact dispatch path of
// the library and the CLI: every method — Borda included — consumes the
// shared W (BordaW / FairBordaW derive integer-identical point totals from
// W's row sums, so routing through the tier never changes an answer), the
// Result's PD loss divides the same integers whether computed from W or
// from the raw profile, and the partial flag is sampled by the registry
// immediately after the cancellable engines return (a deadline lapsing
// during audit bookkeeping can never mislabel a complete result and evict
// it from cacheability).
func (s *Server) solve(ctx context.Context, pb *problem) (*result, error) {
	w, err := s.precedence(ctx, pb)
	if err != nil {
		return nil, err
	}
	eng, err := manirank.NewEngineW(w, manirank.WithTable(pb.tab))
	if err != nil {
		return nil, err
	}
	sr, err := eng.Solve(ctx, pb.method, pb.targets,
		manirank.WithKemenyOptions(s.kemenyOptions(pb.opts)))
	if err != nil {
		return nil, err
	}
	res := &result{
		Ranking: sr.Ranking,
		Method:  pb.method.String(),
		PDLoss:  sr.PDLoss,
		Partial: sr.Partial,
	}
	if sr.Report != nil {
		arps := make(map[string]float64, len(sr.Report.ARPs))
		for i, a := range pb.tab.Attrs() {
			arps[a.Name] = sr.Report.ARPs[i]
		}
		res.Audit = &auditPayload{ARPs: arps, IRP: sr.Report.IRP}
	}
	return res, nil
}

// deadline resolves a request's compute budget.
func (s *Server) deadline(req *AggregateRequest) time.Duration {
	d := s.cfg.DefaultDeadline
	if req.DeadlineMillis > 0 {
		d = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// admit queues pb for the worker pool and waits for its result. The compute
// context is detached from the requester: coalesced followers must not lose
// the computation because the leader's connection died, and the deadline
// bounds it regardless.
func (s *Server) admit(pb *problem, budget time.Duration) (*result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	j := &job{pb: pb, ctx: ctx, done: make(chan struct{})}
	// Count the job before the send: a worker may pop it (and decrement)
	// the instant the send lands, and the depth gauge must never go
	// negative. The rejection paths undo the increment.
	s.queued.Add(1)
	select {
	case s.jobs <- j:
	case <-s.quit:
		s.queued.Add(-1)
		return nil, ErrShuttingDown
	default:
		s.queued.Add(-1)
		return nil, ErrQueueFull
	}
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		// The compute deadline lapsed. If the job is still queued behind
		// busy workers, abandon it and answer 504 now instead of holding
		// the connection until a worker pops (and then drops) it. If a
		// worker already claimed it, the cooperative cancellation bounds
		// the remaining solve time — wait for its best-so-far result.
		if j.abandon() {
			return nil, ErrExpiredInQueue
		}
		<-j.done
		return j.res, j.err
	case <-s.quit:
		// Close drains the queue and resolves every job; prefer its answer
		// when it already landed.
		select {
		case <-j.done:
			return j.res, j.err
		default:
			return nil, ErrShuttingDown
		}
	}
}

// Handler returns the service's HTTP mux: POST /v1/aggregate, GET /healthz,
// GET /statz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/aggregate", s.handleAggregate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, errors.New("use POST"), start)
		return
	}
	var req AggregateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), start)
		return
	}
	pb, err := buildProblem(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err, start)
		return
	}
	digest := pb.digest
	budget := s.deadline(&req)

	// Followers wait at most their own budget for the leader's flight.
	waitCtx, cancelWait := context.WithTimeout(r.Context(), budget)
	defer cancelWait()
	v, hit, shared, err := s.cache.Do(waitCtx, digest, func() (any, bool, error) {
		res, err := s.admit(pb, budget)
		if err != nil {
			return nil, false, err
		}
		return res, !res.Partial, nil
	})
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrQueueFull):
			status = http.StatusTooManyRequests
		case errors.Is(err, ErrExpiredInQueue),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		case errors.Is(err, ErrShuttingDown):
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, r, status, err, start)
		return
	}
	res := v.(*result)
	elapsed := time.Since(start)
	if hit {
		s.hitLat.add(elapsed)
	} else {
		s.solveLat.add(elapsed)
	}
	resp := &AggregateResponse{
		result:    *res,
		Cached:    hit,
		Coalesced: shared,
		Digest:    digest,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	s.countStatus(http.StatusOK)
	s.log.Info("aggregate",
		"method", pb.method.String(),
		"digest", digest[:12],
		"n", pb.profile.N(),
		"rankers", len(pb.profile),
		"status", http.StatusOK,
		"cached", hit,
		"coalesced", shared,
		"partial", res.Partial,
		"elapsed_ms", resp.ElapsedMS,
		"queue_depth", s.queued.Load(),
	)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Statz is the /statz snapshot.
type Statz struct {
	UptimeSeconds float64           `json:"uptime_s"`
	Queue         QueueStatz        `json:"queue"`
	Cache         cache.Stats       `json:"cache"`
	CacheHitRate  float64           `json:"cache_hit_rate"`
	Matrix        cache.MatrixStats `json:"precedence_cache"`
	MatrixHitRate float64           `json:"precedence_hit_rate"`
	Requests      map[string]uint64 `json:"requests_by_status"`
	LatencySolve  LatencySnapshot   `json:"latency_solve"`
	LatencyHit    LatencySnapshot   `json:"latency_hit"`
	// LatencyByMethod breaks pure solver time (queueing and cache layers
	// excluded) down per method, so a speedup in one solver family — e.g. the
	// incremental parity auditor in the fair methods — is visible in serving
	// rather than only in benchmarks.
	LatencyByMethod map[string]LatencySnapshot `json:"latency_solve_by_method"`
}

// QueueStatz reports the admission layer.
type QueueStatz struct {
	Depth    int64 `json:"depth"`
	Capacity int   `json:"capacity"`
	InFlight int64 `json:"in_flight"`
	Workers  int   `json:"workers"`
}

// StatzSnapshot assembles the /statz payload (exported for the load
// generator and tests).
func (s *Server) StatzSnapshot() Statz {
	cs := s.cache.Stats()
	ms := s.prec.Stats()
	st := Statz{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Queue: QueueStatz{
			Depth:    s.queued.Load(),
			Capacity: s.cfg.QueueDepth,
			InFlight: s.inFlight.Load(),
			Workers:  s.cfg.Workers,
		},
		Cache:           cs,
		CacheHitRate:    cs.HitRate(),
		Matrix:          ms,
		MatrixHitRate:   ms.HitRate(),
		Requests:        map[string]uint64{},
		LatencySolve:    s.solveLat.snapshot(),
		LatencyHit:      s.hitLat.snapshot(),
		LatencyByMethod: map[string]LatencySnapshot{},
	}
	s.byStatus.Range(func(k, v any) bool {
		st.Requests[strconv.Itoa(k.(int))] = uint64(v.(*atomic.Int64).Load())
		return true
	})
	s.methodLat.Range(func(k, v any) bool {
		st.LatencyByMethod[k.(string)] = v.(*latencyRing).snapshot()
		return true
	})
	return st
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatzSnapshot())
}

func (s *Server) countStatus(status int) {
	v, _ := s.byStatus.LoadOrStore(status, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error, start time.Time) {
	s.countStatus(status)
	s.log.Warn("aggregate error",
		"path", r.URL.Path,
		"status", status,
		"error", err.Error(),
		"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond),
		"queue_depth", s.queued.Load(),
	)
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
