package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"manirank"
	"manirank/internal/obs"
	"manirank/internal/ranking"
)

// This file is the streaming-profile surface of manirankd (DESIGN.md §12):
// a session pins one evolving profile server-side, every mutation patches
// the session engine's precedence matrix in O(n²) instead of re-paying the
// O(n²·m) rebuild a stateless re-POST costs, and every re-solve warm-starts
// from the previous consensus. Results flow through the same result cache,
// worker pool, and deadline machinery as /v1/aggregate — keyed by
// SessionDigests so a mutated profile (or a different warm seed) can never
// be served a stale entry, and patched matrices are written through to the
// matrix tier under the post-mutation profile digest.

// session is one live streaming profile.
type session struct {
	id string
	// mu serialises operations on this session: a mutation and the re-solve
	// it triggers form one critical section, so concurrent clients of one
	// session observe a linear history. The engine additionally guards its
	// matrix with its own RWMutex, so even a misbehaving interleaving could
	// never give a solver a half-applied mutation.
	mu sync.Mutex
	// req mirrors the session's current state in wire form; Digests over it
	// always reflect the post-mutation profile.
	req *AggregateRequest
	// eng holds the session's profile, table, and incrementally patched
	// matrix.
	eng *manirank.Engine
	// consensus is the last complete (non-partial) consensus over any state.
	// Nil until the first complete solve.
	consensus ranking.Ranking
	// warmSeed is the warm-start seed pinned to the CURRENT profile state
	// (engine version seedVersion): the consensus of the previous state. It
	// is chosen once per state — re-solves of an unchanged state reuse it,
	// so their digests agree and the result cache serves them — and
	// re-chosen from consensus the first time a new state solves.
	warmSeed    ranking.Ranking
	seedVersion uint64
	seedValid   bool
	// putVersion is the engine version last written through to the matrix
	// tier, so unchanged profiles aren't re-persisted on every solve.
	putVersion uint64
	putOnce    bool
	created    time.Time
}

// SessionOp is the POST /v1/session/{id} body: one mutation (or a bare
// re-solve) followed by a fresh consensus over the session's new state.
type SessionOp struct {
	// Op is one of "add", "remove", "update", "solve".
	Op string `json:"op"`
	// Ranking is the base ranking for add/update: a permutation of 0..n-1.
	Ranking []int `json:"ranking,omitempty"`
	// Index addresses the profile row for remove/update.
	Index int `json:"index,omitempty"`
	// DeadlineMillis caps this op's re-solve like the aggregate field; on
	// expiry the response is the best-so-far consensus, flagged partial and
	// never cached. The mutation itself is durable either way.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// SessionResponse is the body of every session solve: the usual aggregate
// payload plus the session identity and state version.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	// Version counts mutations applied to the session so far.
	Version uint64 `json:"version"`
	// Rankers is the current profile size.
	Rankers int `json:"rankers"`
	// WarmStarted reports whether this solve was seeded with the previous
	// consensus (false on the first solve and after a warm seed of the wrong
	// length, e.g. never here — sessions keep n fixed).
	WarmStarted bool `json:"warm_started"`
	AggregateResponse
}

// SessionInfo is the GET /v1/session/{id} body.
type SessionInfo struct {
	SessionID  string  `json:"session_id"`
	Method     string  `json:"method"`
	Candidates int     `json:"candidates"`
	Rankers    int     `json:"rankers"`
	Version    uint64  `json:"version"`
	AgeSeconds float64 `json:"age_s"`
}

// errSessionsFull rejects session creation beyond Config.MaxSessions.
var errSessionsFull = errors.New("service: session limit reached")

// newSessionID returns a 128-bit random hex session id.
func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// handleSessionCreate is POST /v1/session: validate an aggregate request,
// pin it as a session (engine over the shared matrix tier), and answer with
// the initial consensus.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.writeError(w, r, http.StatusMethodNotAllowed, errors.New("use POST"), start)
		return
	}
	if s.cfg.MaxSessions == 0 {
		s.writeError(w, r, http.StatusNotFound, errors.New("sessions disabled"), start)
		return
	}
	var req AggregateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), start)
		return
	}
	pb, err := buildProblem(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err, start)
		return
	}

	// The session's matrix comes through the shared tier (a seen profile
	// skips the build); the engine copy-on-writes on the first mutation, so
	// the cache-resident matrix is never corrupted.
	tr := obs.NewTrace("session-create/"+pb.method.String(), pb.digest[:12])
	budget := s.deadline(&req)
	mctx, cancel := context.WithTimeout(obs.WithTrace(r.Context(), tr), budget)
	w0, err := s.precedence(mctx, pb)
	cancel()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err, start)
		s.finishTrace(tr)
		return
	}
	var opts []manirank.EngineOption
	if pb.tab != nil {
		opts = append(opts, manirank.WithTable(pb.tab))
	}
	eng, err := manirank.NewEngineWithMatrix(pb.profile, w0, opts...)
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err, start)
		s.finishTrace(tr)
		return
	}
	id, err := newSessionID()
	if err != nil {
		s.writeError(w, r, http.StatusInternalServerError, err, start)
		s.finishTrace(tr)
		return
	}
	sess := &session{id: id, req: &req, eng: eng, created: time.Now()}

	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		s.writeError(w, r, http.StatusTooManyRequests, errSessionsFull, start)
		s.finishTrace(tr)
		return
	}
	s.sessions[id] = sess
	s.sessMu.Unlock()
	s.sessionOps["create"].Inc()

	sess.mu.Lock()
	resp, status, err := s.solveSession(r.Context(), tr, sess, budget)
	sess.mu.Unlock()
	if err != nil {
		s.writeError(w, r, status, err, start)
		s.finishTrace(tr)
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.countStatus(http.StatusOK)
	s.log.Info("session create",
		"session", id[:12], "method", pb.method.String(),
		"n", pb.profile.N(), "rankers", len(pb.profile),
		"elapsed_ms", resp.ElapsedMS)
	endEncode := tr.StartSpan("encode")
	writeJSON(w, http.StatusOK, resp)
	endEncode()
	s.finishTrace(tr)
}

// handleSession routes /v1/session/{id}: POST applies one SessionOp and
// re-solves, GET describes the session, DELETE ends it.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, r, http.StatusNotFound, errors.New("malformed session path"), start)
		return
	}
	s.sessMu.Lock()
	sess := s.sessions[id]
	s.sessMu.Unlock()
	if sess == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown session %q", id), start)
		return
	}
	switch r.Method {
	case http.MethodGet:
		sess.mu.Lock()
		info := SessionInfo{
			SessionID:  sess.id,
			Method:     sess.req.Method,
			Candidates: sess.eng.N(),
			Rankers:    len(sess.req.Profile),
			Version:    sess.eng.Version(),
			AgeSeconds: time.Since(sess.created).Seconds(),
		}
		sess.mu.Unlock()
		writeJSON(w, http.StatusOK, info)
	case http.MethodDelete:
		s.sessMu.Lock()
		delete(s.sessions, id)
		s.sessMu.Unlock()
		s.sessionOps["delete"].Inc()
		s.countStatus(http.StatusOK)
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	case http.MethodPost:
		s.handleSessionOp(w, r, sess, start)
	default:
		s.writeError(w, r, http.StatusMethodNotAllowed, errors.New("use POST, GET, or DELETE"), start)
	}
}

// handleSessionOp applies one mutation (or a bare re-solve) and answers
// with the fresh consensus over the session's new state.
func (s *Server) handleSessionOp(w http.ResponseWriter, r *http.Request, sess *session, start time.Time) {
	var op SessionOp
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&op); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding op: %w", err), start)
		return
	}
	opc, ok := s.sessionOps[op.Op]
	if !ok || op.Op == "create" || op.Op == "delete" {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("unknown op %q (want add, remove, update, or solve)", op.Op), start)
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	// Apply the mutation to the engine (O(n²) matrix patch) and mirror it
	// into the wire-form request, whose digest then names the new state.
	var err error
	switch op.Op {
	case "add":
		if err = sess.eng.AddRanking(ranking.Ranking(op.Ranking)); err == nil {
			sess.req.Profile = append(sess.req.Profile, op.Ranking)
		}
	case "remove":
		// The engine tolerates an empty profile; the serving surface does not
		// (buildProblem rejects it), so refuse the removal that would strand
		// the session unsolvable — before touching the matrix.
		if len(sess.req.Profile) == 1 {
			err = errors.New("cannot remove the last ranking of a session")
			break
		}
		if _, err = sess.eng.RemoveRanking(op.Index); err == nil {
			sess.req.Profile = append(sess.req.Profile[:op.Index], sess.req.Profile[op.Index+1:]...)
		}
	case "update":
		if err = sess.eng.UpdateRanking(op.Index, ranking.Ranking(op.Ranking)); err == nil {
			sess.req.Profile[op.Index] = op.Ranking
		}
	case "solve":
		// No mutation; just re-solve (possibly with a different deadline).
	}
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err, start)
		return
	}
	opc.Inc()

	deadline := s.cfg.DefaultDeadline
	if op.DeadlineMillis > 0 {
		deadline = time.Duration(op.DeadlineMillis) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	tr := obs.NewTrace("session-"+op.Op+"/"+sess.req.Method, sess.id[:12])
	resp, status, serr := s.solveSession(r.Context(), tr, sess, deadline)
	if serr != nil {
		s.writeError(w, r, status, serr, start)
		s.finishTrace(tr)
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.countStatus(http.StatusOK)
	s.log.Info("session op",
		"session", sess.id[:12], "op", op.Op,
		"rankers", len(sess.req.Profile), "version", resp.Version,
		"warm", resp.WarmStarted, "partial", resp.Partial,
		"cached", resp.Cached, "elapsed_ms", resp.ElapsedMS)
	endEncode := tr.StartSpan("encode")
	writeJSON(w, http.StatusOK, resp)
	endEncode()
	s.finishTrace(tr)
}

// solveSession re-solves the session's current state through the shared
// result cache and worker pool, warm-started from the previous consensus.
// The caller holds sess.mu. Returns the response, or an HTTP status plus
// error.
func (s *Server) solveSession(rctx context.Context, tr *obs.Trace, sess *session, budget time.Duration) (*SessionResponse, int, error) {
	pb, err := buildProblem(sess.req)
	if err != nil {
		// The mirror was mutated through the same validation as the engine,
		// so this is unreachable short of a bug; surface it loudly.
		return nil, http.StatusInternalServerError, fmt.Errorf("session state invalid: %w", err)
	}
	// Pin the warm seed for this profile state: first solve of a new state
	// adopts the previous state's consensus, re-solves of an unchanged state
	// keep the seed (and therefore the digest) stable so the result cache
	// can serve them.
	if v := sess.eng.Version(); !sess.seedValid || sess.seedVersion != v {
		sess.warmSeed = sess.consensus
		sess.seedVersion, sess.seedValid = v, true
	}
	warm := sess.warmSeed
	warmStarted := len(warm) == sess.eng.N()
	digest, profDigest := SessionDigests(sess.req, warm)
	s.cheResult.Observe(digest)

	eng := sess.eng
	kopts := s.kemenyOptions(pb.opts)
	kopts.Heuristic.Warm = warm
	run := func(ctx context.Context) (*result, error) {
		sr, err := eng.Solve(ctx, pb.method, pb.targets, manirank.WithKemenyOptions(kopts))
		if err != nil {
			return nil, err
		}
		return buildResult(sr, pb), nil
	}

	waitCtx, cancelWait := context.WithTimeout(rctx, budget)
	defer cancelWait()
	waitCtx = obs.WithTrace(waitCtx, tr)
	v, hit, shared, err := s.cache.Do(waitCtx, digest, func() (any, bool, error) {
		res, err := s.admit(tr, pb, budget, run)
		if err != nil {
			return nil, false, err
		}
		// Partial (deadline-truncated) results are never cached, here
		// exactly as on the stateless path.
		return res, !res.Partial, nil
	})
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrQueueFull):
			status = http.StatusTooManyRequests
		case errors.Is(err, ErrExpiredInQueue),
			errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		case errors.Is(err, ErrShuttingDown):
			status = http.StatusServiceUnavailable
		}
		return nil, status, err
	}
	res := v.(*result)

	if !res.Partial {
		// Record the consensus (the NEXT state's warm seed — this state's
		// seed stays pinned so re-solve digests remain stable), and write the
		// session's (incrementally patched, bitwise-equal-to-rebuilt) matrix
		// through to the matrix tier under the post-mutation profile digest
		// — never the digest the session was created with — so a restarted
		// server warm-restores the state the session actually reached.
		sess.consensus = res.Ranking
		if v := eng.Version(); !sess.putOnce || v != sess.putVersion {
			w := eng.PrecedenceSnapshot()
			s.prec.Put(context.WithoutCancel(rctx), profDigest, w, w.Cells())
			sess.putVersion, sess.putOnce = v, true
		}
	}

	return &SessionResponse{
		SessionID:   sess.id,
		Version:     eng.Version(),
		Rankers:     len(sess.req.Profile),
		WarmStarted: warmStarted,
		AggregateResponse: AggregateResponse{
			result:    *res,
			Cached:    hit,
			Coalesced: shared,
			Digest:    digest,
		},
	}, http.StatusOK, nil
}
