package experiments

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"manirank/internal/ranking"
)

// runCells executes fn(i) for cells 0..count-1 on a bounded pool of `workers`
// goroutines pulling from a shared atomic counter. Results must be written
// into per-cell slots by fn; the caller prints them in cell order afterwards,
// so the emitted tables are identical for every worker count. The returned
// error is the lowest-indexed cell's error, again independent of schedule.
func runCells(workers, count int, fn func(i int) error) error {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, count)
	next := int64(-1)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= count {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					// Skip cells not yet started: a failed run's remaining
					// work is wasted. In-flight cells still finish.
					atomic.StoreInt64(&next, int64(count))
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellSeed derives the RNG seed of one experiment cell from the run seed, the
// experiment label, and the cell coordinates, via the shared splitmix64
// finaliser (ranking.SplitMix64, also behind the solver restart seeds).
// Cells own their randomness: no cell observes another cell's draws, which is
// what makes parallel schedules bitwise-reproducible.
func cellSeed(seed int64, label string, coords ...int) int64 {
	h := uint64(seed) ^ ranking.SplitMix64Init
	for _, c := range []byte(label) {
		h = ranking.SplitMix64(h, uint64(c))
	}
	for _, c := range coords {
		h = ranking.SplitMix64(h, uint64(c)+1)
	}
	return int64(h)
}

// cellRNG returns the dedicated RNG of one cell.
func cellRNG(seed int64, label string, coords ...int) *rand.Rand {
	return rand.New(rand.NewSource(cellSeed(seed, label, coords...)))
}

// workers resolves the configured pool width: 0 means one worker per
// available CPU.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
