package mallows

import (
	"math"
	"math/rand"
	"testing"

	"manirank/internal/ranking"
)

func TestPlackettLuceSamplesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := MustNewPlackettLuce(ranking.Random(50, rng), 0.3)
	for i := 0; i < 30; i++ {
		if !pl.Sample(rng).IsValid() {
			t.Fatal("invalid sample")
		}
	}
}

func TestPlackettLuceConcentratesWithTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	modal := ranking.Random(40, rng)
	prev := math.Inf(1)
	for _, theta := range []float64{0.05, 0.2, 0.8, 3} {
		pl := MustNewPlackettLuce(modal, theta)
		sum := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			sum += ranking.KendallTau(pl.Sample(rng), modal)
		}
		mean := float64(sum) / trials
		if mean >= prev {
			t.Fatalf("theta=%v: mean distance %.1f did not decrease from %.1f", theta, mean, prev)
		}
		prev = mean
	}
}

func TestPlackettLuceHighThetaNearModal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	modal := ranking.Random(30, rng)
	pl := MustNewPlackettLuce(modal, 25)
	for i := 0; i < 10; i++ {
		if !pl.Sample(rng).Equal(modal) {
			t.Fatal("theta=25 sample deviates from modal")
		}
	}
}

func TestPlackettLuceProfileAndAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	modal := ranking.Random(10, rng)
	pl := MustNewPlackettLuce(modal, 0.5)
	p := pl.SampleProfile(15, rng)
	if len(p) != 15 {
		t.Fatalf("profile size %d", len(p))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := pl.Modal()
	m[0] = 99
	if pl.Modal()[0] == 99 {
		t.Fatal("Modal() exposes internal storage")
	}
}

func TestPlackettLuceRejectsBadInput(t *testing.T) {
	if _, err := NewPlackettLuce(ranking.Ranking{0, 0}, 0.5); err == nil {
		t.Error("invalid modal accepted")
	}
	if _, err := NewPlackettLuce(ranking.New(3), -0.5); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := NewPlackettLuce(ranking.New(3), math.NaN()); err == nil {
		t.Error("NaN theta accepted")
	}
}
