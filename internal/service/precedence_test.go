package service

import (
	"net/http"
	"sync"
	"testing"

	"manirank/internal/service/cache"
)

// TestPrecedenceTierSharedAcrossMethods is the tentpole contract: a second
// method over an already-seen profile must skip the O(n²·m) matrix
// construction — one build, one skip, visible in /statz.
func TestPrecedenceTierSharedAcrossMethods(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := testRequest("copeland", 21)
	if status, _ := post(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("first method: status %d", status)
	}
	req.Method = "schulze" // same profile, different request digest
	if status, out := post(t, ts.URL, req); status != http.StatusOK || out.Cached {
		t.Fatalf("second method: status %d cached %v, want a fresh solve", status, out != nil && out.Cached)
	}
	st := s.StatzSnapshot()
	if st.Matrix.Builds != 1 {
		t.Fatalf("matrix builds = %d, want 1 shared construction", st.Matrix.Builds)
	}
	if st.Matrix.BuildsSkipped != 1 || st.Matrix.Hits != 1 {
		t.Fatalf("matrix stats %+v, want the second method to skip the build", st.Matrix)
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 2 {
		t.Fatalf("result-cache stats %+v: the two methods must be distinct result entries", st.Cache)
	}
}

// TestPrecedenceOnOffBitwiseIdentical runs every method against one server
// with the matrix tier enabled and one with it disabled (PrecCacheCells < 0)
// and requires bitwise-identical responses — ranking, PD loss, and audit.
// Caching may only change how fast an answer arrives, never the answer.
func TestPrecedenceOnOffBitwiseIdentical(t *testing.T) {
	_, on := newTestServer(t, Config{})
	_, off := newTestServer(t, Config{PrecCacheCells: -1, CacheSize: -1})
	for _, method := range Methods {
		req := testRequest(method, 22)
		// Two posts against the warm server: the second is served from the
		// shared matrix (and result cache) and must not drift either.
		post(t, on.URL, req)
		_, warm := post(t, on.URL, req)
		_, cold := post(t, off.URL, req)
		if warm == nil || cold == nil {
			t.Fatalf("%s: missing response", method)
		}
		if !warm.Ranking.Equal(cold.Ranking) {
			t.Fatalf("%s: ranking differs with precedence cache on vs off\n on: %v\noff: %v",
				method, warm.Ranking, cold.Ranking)
		}
		if warm.PDLoss != cold.PDLoss {
			t.Fatalf("%s: pd_loss %v (cached) != %v (uncached)", method, warm.PDLoss, cold.PDLoss)
		}
		if (warm.Audit == nil) != (cold.Audit == nil) {
			t.Fatalf("%s: audit presence differs", method)
		}
		if warm.Audit != nil {
			if warm.Audit.IRP != cold.Audit.IRP {
				t.Fatalf("%s: IRP %v != %v", method, warm.Audit.IRP, cold.Audit.IRP)
			}
			for k, v := range warm.Audit.ARPs {
				if cold.Audit.ARPs[k] != v {
					t.Fatalf("%s: ARP[%s] %v != %v", method, k, v, cold.Audit.ARPs[k])
				}
			}
		}
	}
}

// TestConcurrentMatrixBuildsCoalesce hammers one never-seen profile with
// four distinct methods at once (distinct result digests, so nothing
// deduplicates at the result tier) and requires exactly one matrix
// construction — the single-flight guarantee, meaningful under -race.
func TestConcurrentMatrixBuildsCoalesce(t *testing.T) {
	s, tsrv := newTestServer(t, Config{Workers: 4})
	methods := []string{"borda", "copeland", "schulze", "fair-borda"}
	var wg sync.WaitGroup
	for _, m := range methods {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			req := testRequest(m, 23) // same seed -> same profile
			if status, _ := post(t, tsrv.URL, req); status != http.StatusOK {
				t.Errorf("%s: status %d", m, status)
			}
		}(m)
	}
	wg.Wait()
	st := s.StatzSnapshot()
	if st.Matrix.Builds != 1 {
		t.Fatalf("matrix builds = %d for 4 concurrent methods over one profile, want 1", st.Matrix.Builds)
	}
	if got := st.Matrix.Hits + st.Matrix.Coalesced; got != uint64(len(methods)-1) {
		t.Fatalf("matrix hits+coalesced = %d, want %d", got, len(methods)-1)
	}
}

// TestStatzMatrixAccounting checks the /statz invariants the BENCH_4 report
// derives from: misses decompose into builds plus coalesced joins,
// builds_skipped is hits plus coalesced, and the cost gauge respects the
// budget.
func TestStatzMatrixAccounting(t *testing.T) {
	s, tsrv := newTestServer(t, Config{})
	for seed := int64(30); seed < 34; seed++ {
		for _, m := range []string{"borda", "copeland"} {
			req := testRequest(m, seed)
			if status, _ := post(t, tsrv.URL, req); status != http.StatusOK {
				t.Fatalf("seed %d %s: bad status", seed, m)
			}
		}
	}
	st := s.StatzSnapshot()
	ms := st.Matrix
	if ms.Builds != 4 || ms.Hits != 4 {
		t.Fatalf("matrix stats %+v, want 4 builds and 4 hits (2 methods x 4 profiles)", ms)
	}
	if ms.Misses != ms.Builds+ms.Coalesced {
		t.Fatalf("misses %d != builds %d + coalesced %d", ms.Misses, ms.Builds, ms.Coalesced)
	}
	if ms.BuildsSkipped != ms.Hits+ms.Coalesced {
		t.Fatalf("builds_skipped %d != hits %d + coalesced %d", ms.BuildsSkipped, ms.Hits, ms.Coalesced)
	}
	if ms.CostUsed <= 0 || ms.CostUsed > ms.CostBudget {
		t.Fatalf("cost gauge out of range: %+v", ms)
	}
	// Each 20-candidate profile costs 400 cells.
	if want := int64(4 * 20 * 20); ms.CostUsed != want {
		t.Fatalf("cost used = %d, want %d", ms.CostUsed, want)
	}
	if st.MatrixHitRate != ms.HitRate() {
		t.Fatalf("statz hit rate %g != stats %g", st.MatrixHitRate, ms.HitRate())
	}
}

// TestCachePolicyConfig: both policies serve correctly and /statz names the
// one in use; an unknown policy fails construction.
func TestCachePolicyConfig(t *testing.T) {
	for _, policy := range cache.Policies() {
		s, tsrv := newTestServer(t, Config{CachePolicy: policy})
		req := testRequest("borda", 40)
		post(t, tsrv.URL, req)
		if _, out := post(t, tsrv.URL, req); out == nil || !out.Cached {
			t.Fatalf("policy %s: second identical request was not a hit", policy)
		}
		if got := s.StatzSnapshot().Cache.Policy; got != policy {
			t.Fatalf("statz policy = %q, want %q", got, policy)
		}
	}
	if _, err := New(Config{CachePolicy: "arc4random"}); err == nil {
		t.Fatal("unknown cache policy accepted")
	}
}
