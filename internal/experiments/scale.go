package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"manirank"
	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

// fig6Modal builds the scalability study's modal ranking: a binary
// Gender(2) x Race(2) database with modal ARP(Race)=0.15, ARP(Gender)=0.70
// (paper Section IV-D, Fig. 6 / Table II dataset).
func fig6Modal(n int, rng *rand.Rand) (*attribute.Table, ranking.Ranking, error) {
	tab, err := unfairgen.BinaryTable(n)
	if err != nil {
		return nil, nil, err
	}
	modal, err := unfairgen.CalibratedBinaryModal(tab, 0.70, 0.15, rng)
	if err != nil {
		return nil, nil, err
	}
	return tab, modal, nil
}

// fig7Modal builds the candidate-scalability modal: ARP(Race)=0.31,
// ARP(Gender)=0.44 (paper Fig. 7 / Table III dataset).
func fig7Modal(n int, rng *rand.Rand) (*attribute.Table, ranking.Ranking, error) {
	tab, err := unfairgen.BinaryTable(n)
	if err != nil {
		return nil, nil, err
	}
	modal, err := unfairgen.CalibratedBinaryModal(tab, 0.44, 0.31, rng)
	if err != nil {
		return nil, nil, err
	}
	return tab, modal, nil
}

// Fig6 regenerates paper Figure 6: runtime of all eight methods as the
// number of base rankings grows (n = 100 candidates, theta = 0.6,
// Delta = 0.1). Base rankings are drawn with the O(n log n) Plackett-Luce
// sampler so generation does not dominate the measured aggregation times.
//
// Profiles are sampled concurrently per size, then |R| x method cells run on
// the worker pool. PD losses are deterministic across worker counts; the
// Runtime column is wall-clock and contends under parallelism, so use
// Workers: 1 for publication-grade timings.
func Fig6(cfg Config) error {
	sizes := []int{1000, 5000, 10000, 20000}
	if cfg.Quick {
		sizes = []int{200, 500}
	}
	tab, modal, err := fig6Modal(100, cellRNG(cfg.Seed, "fig6modal"))
	if err != nil {
		return err
	}
	pl := mallows.MustNewPlackettLuce(modal, 0.6)
	ctxs := make([]*runCtx, len(sizes))
	err = runCells(cfg.workers(), len(sizes), func(si int) error {
		p := pl.SampleProfile(sizes[si], cellRNG(cfg.Seed, "fig6", si))
		var err error
		ctxs[si], err = newRunCtx(p, tab, 0.1)
		return err
	})
	if err != nil {
		return err
	}
	methods := allMethods()
	rows := make([]string, len(sizes)*len(methods))
	err = runCells(cfg.workers(), len(rows), func(i int) error {
		si, mi := i/len(methods), i%len(methods)
		ctx, meth := ctxs[si], methods[mi]
		res, elapsed, err := timedSolve(cfg, ctx, meth.M)
		if err != nil {
			return fmt.Errorf("experiments: fig6 |R|=%d %s: %w", sizes[si], meth.Name, err)
		}
		rows[i] = fmt.Sprintf("%d\t(%s) %s\t%v\t%.3f\n", sizes[si], meth.ID, meth.Name, elapsed.Round(time.Microsecond), res.PDLoss)
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "|R|\tMethod\tRuntime\tPD_Loss")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return fig6FairScale(cfg)
}

// fig6FairScale appends the fair-method candidate-scaling block to Figure 6:
// the two incremental-audit hot paths (Make-MR-Fair repair and the full
// Fair-Kemeny solve) timed as the candidate count grows to 10^4 with
// |R| = 100, theta = 0.6, Delta = 0.1 — the push past the paper's n = 500
// ceiling that the O(groups) parity auditor buys (DESIGN.md Section 9).
// The Borda seed handed to Make-MR-Fair is computed off-clock; the repair
// itself is the measured operation, as in the serving path.
func fig6FairScale(cfg Config) error {
	sizes := []int{1000, 5000, 10000}
	if cfg.Quick {
		sizes = []int{200, 500}
	}
	ctxs := make([]*runCtx, len(sizes))
	err := runCells(cfg.workers(), len(sizes), func(si int) error {
		tab, modal, err := fig6Modal(sizes[si], cellRNG(cfg.Seed, "fig6fairmodal", si))
		if err != nil {
			return err
		}
		p := mallows.MustNewPlackettLuce(modal, 0.6).SampleProfile(100, cellRNG(cfg.Seed, "fig6fair", si))
		ctxs[si], err = newRunCtx(p, tab, 0.1)
		return err
	})
	if err != nil {
		return err
	}
	const perSize = 2 // Make-MR-Fair repair, Fair-Kemeny solve
	rows := make([]string, len(sizes)*perSize)
	err = runCells(cfg.workers(), len(rows), func(i int) error {
		si, mi := i/perSize, i%perSize
		ctx := ctxs[si]
		if mi == 0 {
			seed := kemeny.BordaFromPrecedence(ctx.w)
			start := time.Now()
			r, err := core.MakeMRFair(seed, ctx.targets)
			elapsed := time.Since(start)
			if err != nil {
				return fmt.Errorf("experiments: fig6 fair-scale n=%d Make-MR-Fair: %w", sizes[si], err)
			}
			rows[i] = fmt.Sprintf("%d\t(MR) Make-MR-Fair\t%v\t%.3f\n", sizes[si], elapsed.Round(time.Microsecond), ctx.w.PDLoss(r))
			return nil
		}
		res, elapsed, err := timedSolve(cfg, ctx, manirank.MethodFairKemeny)
		if err != nil {
			return fmt.Errorf("experiments: fig6 fair-scale n=%d Fair-Kemeny: %w", sizes[si], err)
		}
		rows[i] = fmt.Sprintf("%d\t(A1) Fair-Kemeny\t%v\t%.3f\n", sizes[si], elapsed.Round(time.Microsecond), res.PDLoss)
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Candidates\tMethod\tRuntime\tPD_Loss")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}

// Table2 regenerates paper Table II: Fair-Borda execution time for very
// large numbers of base rankings (up to 10^7 at paper scale). Following the
// measurement's intent — aggregation cost, not data generation cost — the
// profile cycles a pre-sampled pool of rankings up to the requested size.
// Sizes run concurrently on the worker pool against the shared read-only
// pool; use Workers: 1 for publication-grade timings.
func Table2(cfg Config) error {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	if cfg.Quick {
		sizes = []int{1_000, 10_000, 100_000}
	}
	tab, modal, err := fig6Modal(100, cellRNG(cfg.Seed, "fig6modal"))
	if err != nil {
		return err
	}
	pl := mallows.MustNewPlackettLuce(modal, 0.6)
	const poolSize = 10_000
	pool := pl.SampleProfile(poolSize, cellRNG(cfg.Seed, "table2pool"))
	targets := core.Targets(tab, 0.1)
	rows := make([]string, len(sizes))
	err = runCells(cfg.workers(), len(sizes), func(si int) error {
		m := sizes[si]
		p := make(ranking.Profile, m)
		for i := range p {
			p[i] = pool[i%poolSize]
		}
		start := time.Now()
		if _, err := core.FairBorda(p, targets); err != nil {
			return fmt.Errorf("experiments: table2 |R|=%d: %w", m, err)
		}
		rows[si] = fmt.Sprintf("%d\t%.2f\n", m, time.Since(start).Seconds())
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "|R| Number of Rankings\tExecution time (s)")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}

// Fig7 regenerates paper Figure 7: runtime of all eight methods as the
// candidate count grows (|R| = 100, theta = 0.6), under a tight Delta = 0.1
// and a looser Delta = 0.33. Contexts are built concurrently per
// (delta, n) cell, then delta x n x method cells run on the worker pool;
// use Workers: 1 for publication-grade timings.
func Fig7(cfg Config) error {
	sizes := []int{100, 200, 300, 400, 500}
	if cfg.Quick {
		sizes = []int{60, 100}
	}
	deltas := []float64{0.1, 0.33}
	// One dataset (and precedence matrix) per candidate count, built
	// concurrently; the tight and loose Delta are compared on the identical
	// dataset, as in the paper — only the targets differ per delta.
	base := make([]*runCtx, len(sizes))
	err := runCells(cfg.workers(), len(sizes), func(ni int) error {
		tab, modal, err := fig7Modal(sizes[ni], cellRNG(cfg.Seed, "fig7modal", ni))
		if err != nil {
			return err
		}
		pl := mallows.MustNewPlackettLuce(modal, 0.6)
		p := pl.SampleProfile(100, cellRNG(cfg.Seed, "fig7", ni))
		base[ni], err = newRunCtx(p, tab, deltas[0])
		return err
	})
	if err != nil {
		return err
	}
	ctxs := make([]*runCtx, len(deltas)*len(sizes))
	for di := range deltas {
		for ni, bc := range base {
			if di == 0 {
				ctxs[ni] = bc
				continue
			}
			// Same profile, Engine, and matrix as the tight-delta context —
			// only the targets differ per delta, as in the paper.
			ctxs[di*len(sizes)+ni] = &runCtx{p: bc.p, eng: bc.eng, w: bc.w, tab: bc.tab, targets: core.Targets(bc.tab, deltas[di])}
		}
	}
	methods := allMethods()
	rows := make([]string, len(ctxs)*len(methods))
	err = runCells(cfg.workers(), len(rows), func(i int) error {
		ci, mi := i/len(methods), i%len(methods)
		di, ni := ci/len(sizes), ci%len(sizes)
		ctx, meth := ctxs[ci], methods[mi]
		res, elapsed, err := timedSolve(cfg, ctx, meth.M)
		if err != nil {
			return fmt.Errorf("experiments: fig7 n=%d delta=%.2f %s: %w", sizes[ni], deltas[di], meth.Name, err)
		}
		rows[i] = fmt.Sprintf("%.2f\t%d\t(%s) %s\t%v\t%.3f\n", deltas[di], sizes[ni], meth.ID, meth.Name, elapsed.Round(time.Microsecond), res.PDLoss)
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "Delta\tCandidates\tMethod\tRuntime\tPD_Loss")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}

// Table3 regenerates paper Table III: Fair-Borda execution time for large
// candidate databases at Delta = 0.33 (|R| = 100, theta = 0.6). Sizes run
// concurrently, each cell generating its own data from its coordinate RNG;
// use Workers: 1 for publication-grade timings.
func Table3(cfg Config) error {
	sizes := []int{1_000, 10_000, 20_000, 50_000, 100_000}
	if cfg.Quick {
		sizes = []int{1_000, 4_000}
	}
	rows := make([]string, len(sizes))
	err := runCells(cfg.workers(), len(sizes), func(si int) error {
		n := sizes[si]
		tab, modal, err := fig7Modal(n, cellRNG(cfg.Seed, "table3modal", si))
		if err != nil {
			return err
		}
		pl := mallows.MustNewPlackettLuce(modal, 0.6)
		p := pl.SampleProfile(100, cellRNG(cfg.Seed, "table3", si))
		targets := core.Targets(tab, 0.33)
		start := time.Now()
		r, err := core.FairBorda(p, targets)
		if err != nil {
			return fmt.Errorf("experiments: table3 n=%d: %w", n, err)
		}
		elapsed := time.Since(start)
		if v, _ := core.MaxViolation(r, targets); v > 0 {
			return fmt.Errorf("experiments: table3 n=%d: output violates targets by %v", n, v)
		}
		rows[si] = fmt.Sprintf("%d\t%.2f\n", n, elapsed.Seconds())
		return nil
	})
	if err != nil {
		return err
	}
	tw := newTabWriter(cfg.out())
	fmt.Fprintln(tw, "|X| Number of Candidates\tExecution time (s)")
	for _, row := range rows {
		fmt.Fprint(tw, row)
	}
	return tw.Flush()
}
