package ranking

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Digest returns the canonical SHA-256 content digest of p under the given
// namespace: the key a profile-addressed cache (the serving layer's
// precedence-matrix tier, manirank.EngineCache's persistent store) files the
// profile's derived artefacts under. The serialisation is fixed — the
// length-prefixed namespace, the ranking count, then each ranking as a
// length-prefixed little-endian int64 row — so two structurally equal
// profiles always collide across processes and runs, and any namespace
// change (a digest-schema or solver-behaviour version bump) makes every
// previously issued key unreachable without touching the stored entries.
//
// p need not be valid; Digest hashes exactly what it is given.
func (p Profile) Digest(namespace string) string {
	h := sha256.New()
	digestString(h, namespace)
	digestInt(h, int64(len(p)))
	for _, r := range p {
		digestInts(h, r)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestString writes a length-prefixed string, so no concatenation of
// adjacent fields can collide with a different split of the same bytes.
func digestString(h hash.Hash, s string) {
	digestInt(h, int64(len(s)))
	h.Write([]byte(s))
}

func digestInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func digestInts(h hash.Hash, vs []int) {
	digestInt(h, int64(len(vs)))
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	h.Write(buf)
}
