package service

import (
	"time"

	"manirank/internal/obs"
)

// LatencySnapshot summarises one latency histogram for /statz, in
// milliseconds. Until PR 8 these numbers came from fixed 1024-slot rings
// whose percentiles scanned zero-valued unfilled slots (skewing p50 low
// before the ring filled); they now come from obs.Histogram, which has no
// window to fill — an empty histogram reports count 0 and zeros — and
// whose quantiles interpolate log-spaced buckets (at most one bucket,
// i.e. 2x, of error). The JSON shape is unchanged.
type LatencySnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// P50 is the estimated median latency.
	P50 float64 `json:"p50_ms"`
	// P99 is the estimated 99th-percentile latency.
	P99 float64 `json:"p99_ms"`
	// Max is the largest latency observed.
	Max float64 `json:"max_ms"`
}

// latencySnapshot renders a histogram (observed in seconds) as the /statz
// millisecond summary.
func latencySnapshot(h *obs.Histogram) LatencySnapshot {
	const ms = 1000
	return LatencySnapshot{
		Count: h.Count(),
		P50:   h.Quantile(0.5) * ms,
		P99:   h.Quantile(0.99) * ms,
		Max:   h.Max() * ms,
	}
}

// observeSeconds records a duration on h in seconds (the exposition unit).
func observeSeconds(h *obs.Histogram, d time.Duration) {
	h.Observe(d.Seconds())
}
