package kemeny

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"manirank/internal/ranking"
)

// These tests pin the cancellation contract the serving layer depends on:
// a cancelled search returns the best (feasible) ranking found so far —
// never nil, never a zero value, never an infeasible ranking — and a
// never-cancelled context changes nothing.

func TestHeuristicCtxCancelledReturnsBestSoFar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	w := ranking.MustPrecedence(randomProfile(40, 6, rng))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the search even starts
	got := HeuristicCtx(ctx, w, Options{Seed: 7, Perturbations: 16, Strength: 4})
	if got == nil {
		t.Fatal("cancelled HeuristicCtx returned nil")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("cancelled HeuristicCtx returned invalid ranking: %v", err)
	}
	// Worst case it fell straight back to the Borda seed; it must never be
	// worse than that.
	if seed, gotCost := BordaFromPrecedence(w), w.KemenyCost(got); gotCost > w.KemenyCost(seed) {
		t.Fatalf("cancelled result cost %d worse than Borda seed %d", gotCost, w.KemenyCost(seed))
	}
}

func TestConstrainedSearchCtxCancelledStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 8; trial++ {
		n := 8 + 2*rng.Intn(10)
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		a := binaryAttr(n, rng)
		cons := []Constraint{{Attr: a, Delta: 0.4}}
		start := alternating(a)
		if !Feasible(start, cons) {
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		got := ConstrainedSearchCtx(ctx, w, cons, start, Options{Seed: int64(trial), Perturbations: 12, Strength: 4})
		if got == nil {
			t.Fatal("cancelled ConstrainedSearchCtx returned nil")
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("cancelled ConstrainedSearchCtx returned invalid ranking: %v", err)
		}
		if !Feasible(got, cons) {
			t.Fatalf("cancelled ConstrainedSearchCtx returned infeasible ranking %v", got)
		}
		if w.KemenyCost(got) > w.KemenyCost(start) {
			t.Fatalf("cancelled result cost %d worse than start %d", w.KemenyCost(got), w.KemenyCost(start))
		}
	}
}

func TestCtxCancelledMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	w := ranking.MustPrecedence(randomProfile(120, 8, rng))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	got := HeuristicCtx(ctx, w, Options{Seed: 3, Perturbations: 256, Strength: 8, Workers: 4})
	if got == nil {
		t.Fatal("mid-run cancelled HeuristicCtx returned nil")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("mid-run cancelled HeuristicCtx returned invalid ranking: %v", err)
	}
}

func TestBranchAndBoundCtxCancelledReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	w := ranking.MustPrecedence(randomProfile(12, 3, rng))
	incumbent := LocalSearch(w, BordaFromPrecedence(w))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := BranchAndBoundCtx(ctx, w, nil, incumbent, 0)
	if res.Optimal {
		t.Fatal("cancelled search claimed optimality")
	}
	if res.Ranking == nil {
		t.Fatal("cancelled search dropped its incumbent")
	}
	if !res.Ranking.Equal(incumbent) {
		t.Fatalf("cancelled search returned %v, want incumbent %v", res.Ranking, incumbent)
	}
}

func TestCtxBackgroundMatchesPlainEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, workers := range []int{1, 4} {
		w := ranking.MustPrecedence(randomProfile(30, 5, rng))
		opts := Options{Seed: 11, Perturbations: 12, Strength: 5, Workers: workers}
		if got, want := HeuristicCtx(context.Background(), w, opts), Heuristic(w, opts); !got.Equal(want) {
			t.Fatalf("workers=%d: HeuristicCtx(Background) deviates from Heuristic", workers)
		}
		a := binaryAttr(30, rng)
		cons := []Constraint{{Attr: a, Delta: 0.5}}
		start := alternating(a)
		if !Feasible(start, cons) {
			continue
		}
		got := ConstrainedSearchCtx(context.Background(), w, cons, start, opts)
		if want := ConstrainedSearch(w, cons, start, opts); !got.Equal(want) {
			t.Fatalf("workers=%d: ConstrainedSearchCtx(Background) deviates from ConstrainedSearch", workers)
		}
	}
}
