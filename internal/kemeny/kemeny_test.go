package kemeny

import (
	"math/rand"
	"testing"
	"testing/quick"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

func randomProfile(n, m int, rng *rand.Rand) ranking.Profile {
	p := make(ranking.Profile, m)
	for i := range p {
		p[i] = ranking.Random(n, rng)
	}
	return p
}

// bruteForce enumerates all permutations to find the optimal (optionally
// constrained) Kemeny ranking. Usable up to n ~ 8.
func bruteForce(w *ranking.Precedence, cons []Constraint) (ranking.Ranking, int) {
	n := w.N()
	perm := ranking.New(n)
	var best ranking.Ranking
	bestCost := -1
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if len(cons) > 0 && !Feasible(perm, cons) {
				return
			}
			c := w.KemenyCost(perm)
			if bestCost < 0 || c < bestCost {
				bestCost = c
				best = perm.Clone()
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, bestCost
}

func TestExactDPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(6), 1+rng.Intn(6)
		w := ranking.MustPrecedence(randomProfile(n, m, rng))
		got, cost, err := ExactDP(w)
		if err != nil {
			return false
		}
		_, want := bruteForce(w, nil)
		return cost == want && w.KemenyCost(got) == cost && got.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(6), 1+rng.Intn(6)
		w := ranking.MustPrecedence(randomProfile(n, m, rng))
		res := BranchAndBound(w, nil, nil, 0)
		_, want := bruteForce(w, nil)
		return res.Optimal && res.Cost == want && w.KemenyCost(res.Ranking) == res.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBranchAndBoundMatchesDPMediumN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 9 + rng.Intn(4)
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		res := BranchAndBound(w, nil, nil, 0)
		_, dpCost, err := ExactDP(w)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal || res.Cost != dpCost {
			t.Fatalf("n=%d: B&B cost %d (optimal=%v), DP cost %d", n, res.Cost, res.Optimal, dpCost)
		}
	}
}

func TestExactDPRejectsLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := ranking.MustPrecedence(randomProfile(17, 2, rng))
	if _, _, err := ExactDP(w); err == nil {
		t.Fatal("ExactDP should reject n > 16")
	}
}

func binaryAttr(n int, rng *rand.Rand) *attribute.Attribute {
	of := make([]int, n)
	for i := range of {
		of[i] = rng.Intn(2)
	}
	// Ensure both groups are non-empty so constraints bind.
	of[0], of[n-1] = 0, 1
	a, err := attribute.NewAttribute("g", []string{"A", "B"}, of)
	if err != nil {
		panic(err)
	}
	return a
}

func TestConstrainedBranchAndBoundMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 4+rng.Intn(4), 1+rng.Intn(5)
		w := ranking.MustPrecedence(randomProfile(n, m, rng))
		a := binaryAttr(n, rng)
		cons := []Constraint{{Attr: a, Delta: 0.3}}
		res := BranchAndBound(w, cons, nil, 0)
		want, wantCost := bruteForce(w, cons)
		if want == nil {
			// No feasible ranking exists (possible with lopsided groups).
			return res.Ranking == nil
		}
		return res.Optimal && res.Cost == wantCost && Feasible(res.Ranking, cons)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConstrainedOptimumNeverBeatsUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(4)
		w := ranking.MustPrecedence(randomProfile(n, 4, rng))
		a := binaryAttr(n, rng)
		free := BranchAndBound(w, nil, nil, 0)
		cons := BranchAndBound(w, []Constraint{{Attr: a, Delta: 0.2}}, nil, 0)
		if cons.Ranking != nil && cons.Cost < free.Cost {
			t.Fatalf("constrained cost %d < unconstrained %d", cons.Cost, free.Cost)
		}
	}
}

func TestBranchAndBoundNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := ranking.MustPrecedence(randomProfile(12, 3, rng))
	res := BranchAndBound(w, nil, nil, 5)
	if res.Optimal {
		t.Fatal("a 5-node budget cannot prove optimality at n=12")
	}
}

func TestBranchAndBoundUsesIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := ranking.MustPrecedence(randomProfile(8, 4, rng))
	seed := LocalSearch(w, BordaFromPrecedence(w))
	res := BranchAndBound(w, nil, seed, 0)
	if res.Cost > w.KemenyCost(seed) {
		t.Fatal("result worse than incumbent")
	}
}

func TestFeasible(t *testing.T) {
	a, err := attribute.NewAttribute("g", []string{"A", "B"}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	blocked := ranking.Ranking{0, 1, 2, 3} // ARP = 1
	if Feasible(blocked, []Constraint{{Attr: a, Delta: 0.5}}) {
		t.Fatal("block ranking should violate Delta = 0.5")
	}
	if !Feasible(blocked, []Constraint{{Attr: a, Delta: 1.0}}) {
		t.Fatal("Delta = 1 always holds")
	}
	mixed := ranking.Ranking{0, 2, 3, 1}
	if !Feasible(mixed, []Constraint{{Attr: a, Delta: 0.5}}) {
		t.Fatalf("alternating ranking ARP = %v should satisfy 0.5", fairness.ARP(mixed, a))
	}
}

func TestLeafFairnessMatchesAudit(t *testing.T) {
	// The incremental constraint tracking inside B&B must agree with the
	// direct fairness audit: verify by asserting every returned ranking is
	// feasible per the independent fairness package.
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		w := ranking.MustPrecedence(randomProfile(n, 3, rng))
		a := binaryAttr(n, rng)
		delta := 0.1 + rng.Float64()*0.5
		res := BranchAndBound(w, []Constraint{{Attr: a, Delta: delta}}, nil, 0)
		if res.Ranking != nil && fairness.ARP(res.Ranking, a) > delta+1e-9 {
			t.Fatalf("returned ranking violates constraint: ARP %v > %v", fairness.ARP(res.Ranking, a), delta)
		}
	}
}
