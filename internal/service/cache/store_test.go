package cache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// stringCodec round-trips string values byte-for-byte — the test stand-in
// for the serving layer's JSON / wire codecs.
func stringCodec() Codec {
	return Codec{
		Encode: func(v any) ([]byte, error) { return []byte(v.(string)), nil },
		Decode: func(d []byte) (any, error) { return string(d), nil },
	}
}

const testKey = "0123abcd" // hex-digest-shaped, file-store safe

func TestFileStoreRoundTrip(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get(testKey); ok || err != nil {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	if err := s.Put(testKey, []byte("hello"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	v, expiry, ok, err := s.Get(testKey)
	if err != nil || !ok || string(v) != "hello" || !expiry.IsZero() {
		t.Fatalf("Get = %q %v %v %v, want hello/zero-expiry hit", v, expiry, ok, err)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
	if err := s.Delete(testKey); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Get(testKey); ok {
		t.Fatal("deleted entry still reads")
	}
	if err := s.Delete(testKey); err != nil {
		t.Fatalf("deleting an absent key: %v", err)
	}
}

func TestFileStoreTTLExpiry(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	if err := s.Put(testKey, []byte("x"), now.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, expiry, ok, _ := s.Get(testKey); !ok || !expiry.Equal(now.Add(time.Minute)) {
		t.Fatalf("fresh entry: ok=%v expiry=%v", ok, expiry)
	}
	now = now.Add(2 * time.Minute)
	if _, _, ok, _ := s.Get(testKey); ok {
		t.Fatal("expired entry still reads")
	}
	// Expiry is self-healing: the dead file is gone, not just skipped.
	if n := s.Len(); n != 0 {
		t.Fatalf("expired entry still on disk, Len = %d", n)
	}
}

// entryPath returns the on-disk file the store keeps key in.
func entryPath(t *testing.T, s *FileStore, key string) string {
	t.Helper()
	p, err := s.path(key)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFileStoreTruncatedEntry: a torn write (crash mid-write on a
// non-atomic filesystem, or bit rot) reads as a miss, never an error, and
// the broken file is removed.
func TestFileStoreTruncatedEntry(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey, []byte("payload-bytes"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	p := entryPath(t, s, testKey)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, fileHeaderLen - 1, len(data) - 1} {
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, ok, err := s.Get(testKey); ok || err != nil {
			t.Fatalf("truncated to %d bytes: ok=%v err=%v, want clean miss", cut, ok, err)
		}
		if _, statErr := os.Stat(p); !errors.Is(statErr, os.ErrNotExist) {
			t.Fatalf("truncated entry (%d bytes) was not deleted", cut)
		}
		if err := s.Put(testKey, []byte("payload-bytes"), time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFileStoreCorruptPayload: a flipped payload bit fails the CRC and reads
// as a self-healing miss.
func TestFileStoreCorruptPayload(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey, []byte("payload"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	p := entryPath(t, s, testKey)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get(testKey); ok || err != nil {
		t.Fatalf("corrupt entry: ok=%v err=%v, want clean miss", ok, err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("corrupt entry survived, Len = %d", n)
	}
}

// TestFileStoreVersionBumpInvalidates: reopening the same root under a new
// first-segment version makes every old entry unreachable AND prunes the old
// tree from disk.
func TestFileStoreVersionBumpInvalidates(t *testing.T) {
	root := t.TempDir()
	s1, err := OpenFileStore(root, "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(testKey, []byte("old"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(root, "v1@engine-2/results")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s2.Get(testKey); ok {
		t.Fatal("entry survived an engine-version bump")
	}
	if _, err := os.Stat(filepath.Join(root, "v1@engine-1")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale version tree was not pruned")
	}
}

// TestFileStoreSharedVersionTree: the two tiers of one server share a first
// segment ("<version>/results", "<version>/matrices"), so opening the second
// must not prune the first.
func TestFileStoreSharedVersionTree(t *testing.T) {
	root := t.TempDir()
	rs, err := OpenFileStore(root, "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Put(testKey, []byte("result"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(root, "v1@engine-1/matrices"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := rs.Get(testKey); !ok {
		t.Fatal("opening the sibling tier pruned the results tier")
	}
}

func TestFileStoreScanSkipsTempAndCorrupt(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey, []byte("live"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	// A stale temp file from a crashed write and a garbage file must both be
	// invisible to Scan.
	dir := filepath.Dir(entryPath(t, s, testKey))
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "feedbead"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	var keys []string
	err = s.Scan(func(key string, value []byte, _ time.Time) error {
		keys = append(keys, key+"="+string(value))
		return nil
	})
	if err != nil || len(keys) != 1 || keys[0] != testKey+"=live" {
		t.Fatalf("Scan = %v (%v), want exactly the live entry", keys, err)
	}
}

func TestFileStoreRejectsUnsafeKeys(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "../escape", "a/b", "a b"} {
		if err := s.Put(bad, []byte("x"), time.Time{}); err == nil {
			t.Fatalf("Put(%q) accepted an unsafe key", bad)
		}
	}
}

// TestCacheDiskWarmRestart is the tentpole's contract at the result tier: a
// second cache over the same directory serves a previously computed entry
// from disk — no recompute — and counts it as a disk hit.
func TestCacheDiskWarmRestart(t *testing.T) {
	root := t.TempDir()
	open := func() *Cache {
		st, err := OpenFileStore(root, "v1@engine-1/results")
		if err != nil {
			t.Fatal(err)
		}
		c := New(4, 0)
		c.AttachStore(st, stringCodec())
		return c
	}
	c1 := open()
	if _, hit := mustDo(t, c1, testKey, "computed"); hit {
		t.Fatal("first sight was a hit")
	}
	if s := c1.Stats(); s.DiskPuts != 1 || s.DiskErrors != 0 {
		t.Fatalf("stats after write-through = %+v, want 1 disk put", s)
	}

	c2 := open() // the "restarted process"
	recomputed := false
	v, hit, _, err := c2.Do(context.Background(), testKey, func() (any, bool, error) {
		recomputed = true
		return "recomputed", true, nil
	})
	if err != nil || recomputed || !hit || v.(string) != "computed" {
		t.Fatalf("restart Do = %v hit=%v recomputed=%v err=%v, want disk-warm hit", v, hit, recomputed, err)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("restart stats = %+v, want 1 disk hit under 1 memory miss", s)
	}
	// The restore was promoted into memory: the next access is a pure hit.
	if _, hit := mustDo(t, c2, testKey, "x"); !hit {
		t.Fatal("restored entry was not promoted to memory")
	}
	if s := c2.Stats(); s.DiskHits != 1 || s.Hits != 1 {
		t.Fatalf("post-promotion stats = %+v", s)
	}
}

// TestCacheDiskExpiryPreserved: a restored entry keeps its original absolute
// expiry — a restart cannot extend a result's life.
func TestCacheDiskExpiryPreserved(t *testing.T) {
	root := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	open := func() (*Cache, *FileStore) {
		st, err := OpenFileStore(root, "v1@engine-1/results")
		if err != nil {
			t.Fatal(err)
		}
		st.SetClock(clock)
		c := New(4, time.Minute)
		c.SetClock(clock)
		c.AttachStore(st, stringCodec())
		return c, st
	}
	c1, _ := open()
	mustDo(t, c1, testKey, "v") // persisted with expiry now+60s

	now = now.Add(45 * time.Second)
	c2, _ := open()
	if _, hit := mustDo(t, c2, testKey, "x"); !hit {
		t.Fatal("entry should still be live 45s in")
	}
	// 30s later the ORIGINAL expiry (t+60s) has passed. If the restart had
	// restamped the TTL the entry would live until t+105s.
	now = now.Add(30 * time.Second)
	if _, hit := mustDo(t, c2, testKey, "fresh"); hit {
		t.Fatal("restored entry outlived its original expiry")
	}
}

// TestCacheDiskDecodeErrorRecovers: an entry the codec cannot decode counts
// a disk error, is deleted, and degrades to a recompute — never an outage.
func TestCacheDiskDecodeErrorRecovers(t *testing.T) {
	st, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testKey, []byte("legacy-garbage"), time.Time{}); err != nil {
		t.Fatal(err)
	}
	c := New(4, 0)
	c.AttachStore(st, Codec{
		Encode: func(v any) ([]byte, error) { return []byte(v.(string)), nil },
		Decode: func(d []byte) (any, error) { return nil, errors.New("schema mismatch") },
	})
	v, hit, _, err := c.Do(context.Background(), testKey, compute("recomputed"))
	if err != nil || hit || v.(string) != "recomputed" {
		t.Fatalf("Do over corrupt entry = %v hit=%v err=%v, want recompute", v, hit, err)
	}
	if s := c.Stats(); s.DiskErrors != 1 {
		t.Fatalf("stats = %+v, want 1 disk error", s)
	}
	if n := st.Len(); n != 1 { // the garbage was replaced by the write-through
		t.Fatalf("store Len = %d, want the recomputed entry only", n)
	}
}

// TestCacheFlushRepairsMissedWrites: Flush persists entries that entered
// memory without reaching disk (here: restored-then-mutated scenario stands
// in for a failed write-through), so shutdown leaves a complete snapshot.
func TestCacheFlush(t *testing.T) {
	root := t.TempDir()
	c := New(4, 0)
	mustDo(t, c, testKey, "early") // stored in memory before any store exists
	st, err := OpenFileStore(root, "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	c.AttachStore(st, stringCodec())
	if n := c.Flush(); n != 1 {
		t.Fatalf("Flush = %d, want 1", n)
	}
	if v, _, ok, _ := st.Get(testKey); !ok || string(v) != "early" {
		t.Fatalf("flushed entry: %q ok=%v", v, ok)
	}
	if s := c.Stats(); s.DiskPuts != 1 {
		t.Fatalf("stats = %+v, want 1 disk put from Flush", s)
	}
}

// TestCachePanicSentinel (satellite fix): a panicking compute must resolve
// followers with the dedicated sentinel, not context.Canceled, and the panic
// still reaches the leader's caller.
func TestCachePanicSentinel(t *testing.T) {
	c := New(4, 0)
	gate := make(chan struct{})
	followerJoined := make(chan struct{})
	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.Do(context.Background(), "key", func() (any, bool, error) {
			<-gate
			panic("compute exploded")
		})
	}()
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		close(followerJoined)
		_, _, shared, err := c.Do(context.Background(), "key", compute(0))
		if !shared || !errors.Is(err, errComputePanic) {
			t.Errorf("follower: shared=%v err=%v, want errComputePanic", shared, err)
		}
		if errors.Is(err, context.Canceled) {
			t.Error("follower saw context.Canceled for a compute panic")
		}
		leaderPanicked <- "follower done"
	}()
	<-followerJoined
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if p := <-leaderPanicked; p == "follower done" {
		// Order is unspecified; collect the other one too.
		p = <-leaderPanicked
		if p == nil || p.(string) != "compute exploded" {
			t.Fatalf("leader recover = %v, want the original panic", p)
		}
	} else {
		if p == nil || p.(string) != "compute exploded" {
			t.Fatalf("leader recover = %v, want the original panic", p)
		}
		<-leaderPanicked
	}
	// The key must be retryable (no wedged flight).
	if v, _, _, err := c.Do(context.Background(), "key", compute("retry")); err != nil || v.(string) != "retry" {
		t.Fatalf("retry after panic: %v %v", v, err)
	}
}

// TestSweepDrivenExpiry (satellite fix): expired entries that nobody
// re-requests are collected by Sweep — the reaper's entry point — and
// counted under Expirations.
func TestSweepDrivenExpiry(t *testing.T) {
	c := New(8, time.Minute)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	mustDo(t, c, "a", 1)
	mustDo(t, c, "b", 2)
	mustDo(t, c, "c", 3)
	now = now.Add(2 * time.Minute)
	if n := c.Sweep(); n != 3 {
		t.Fatalf("Sweep = %d, want 3", n)
	}
	s := c.Stats()
	if s.Expirations != 3 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 3 expirations and no entries", s)
	}
	if c.Sweep() != 0 {
		t.Fatal("second sweep found entries")
	}
}

// TestOpportunisticSweepOnInsert: inserting a new key sweeps TTL-dead
// entries in passing (no reaper, no re-request needed), so the dead entry's
// Policy slot is free before the insert is admitted.
func TestOpportunisticSweepOnInsert(t *testing.T) {
	c := New(8, time.Minute)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	mustDo(t, c, "a", 1)
	now = now.Add(2 * time.Minute)
	mustDo(t, c, "b", 2)
	s := c.Stats()
	if s.Expirations != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want the insert to have swept the dead entry", s)
	}
}

// TestMatrixFollowerHonoursContext (satellite fix): a MatrixCache follower
// whose context dies while the leader builds returns promptly with the
// context error; the leader's build is unaffected.
func TestMatrixFollowerHonoursContext(t *testing.T) {
	c := NewMatrixCache(100)
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, _, err := c.Do(context.Background(), "key", func() (any, int64, error) {
			<-gate
			return 42, 10, nil
		})
		if err != nil || v.(int) != 42 {
			t.Errorf("leader: v=%v err=%v", v, err)
		}
	}()
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, shared, err := c.Do(ctx, "key", func() (any, int64, error) { return 0, 0, nil })
	if !errors.Is(err, context.Canceled) || !shared {
		t.Fatalf("follower: shared=%v err=%v, want coalesced context.Canceled", shared, err)
	}
	close(gate)
	<-leaderDone
	if _, hit := mustMatrixDo(t, c, "key", -1, 10); !hit {
		t.Fatal("leader build was not stored after follower abandoned")
	}
}

// TestMatrixPanicSentinel: followers of a panicked matrix build see
// errMatrixBuildPanic, and the key stays retryable.
func TestMatrixPanicSentinel(t *testing.T) {
	c := NewMatrixCache(100)
	gate := make(chan struct{})
	recovered := make(chan any, 1)
	go func() {
		defer func() { recovered <- recover() }()
		c.Do(context.Background(), "key", func() (any, int64, error) {
			<-gate
			panic("build exploded")
		})
	}()
	for c.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	followerErr := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), "key", func() (any, int64, error) { return 0, 0, nil })
		followerErr <- err
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if p := <-recovered; p == nil || p.(string) != "build exploded" {
		t.Fatalf("leader recover = %v", p)
	}
	if err := <-followerErr; !errors.Is(err, errMatrixBuildPanic) {
		t.Fatalf("follower err = %v, want errMatrixBuildPanic", err)
	}
	if v, hit := mustMatrixDo(t, c, "key", "retry", 10); hit || v.(string) != "retry" {
		t.Fatalf("retry after panic: %v hit=%v", v, hit)
	}
}

// TestMatrixDiskWarmRestart: the matrix tier's restart contract — a second
// cache over the same directory restores the persisted matrix instead of
// rebuilding, BuildsSkipped counts it, and the restore is promoted into
// memory at its priced cost.
func TestMatrixDiskWarmRestart(t *testing.T) {
	root := t.TempDir()
	open := func() *MatrixCache {
		st, err := OpenFileStore(root, "v1@engine-1/matrices")
		if err != nil {
			t.Fatal(err)
		}
		c := NewMatrixCache(100)
		c.AttachStore(st, stringCodec(), func(any) int64 { return 10 })
		return c
	}
	c1 := open()
	mustMatrixDo(t, c1, testKey, "matrix", 10)
	if s := c1.Stats(); s.DiskPuts != 1 || s.Builds != 1 {
		t.Fatalf("stats after build = %+v", s)
	}

	c2 := open()
	rebuilt := false
	v, hit, _, err := c2.Do(context.Background(), testKey, func() (any, int64, error) {
		rebuilt = true
		return "rebuilt", 10, nil
	})
	if err != nil || rebuilt || !hit || v.(string) != "matrix" {
		t.Fatalf("restart Do = %v hit=%v rebuilt=%v err=%v, want disk-warm restore", v, hit, rebuilt, err)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.Builds != 0 || s.BuildsSkipped != 1 || s.CostUsed != 10 {
		t.Fatalf("restart stats = %+v, want 1 disk hit / 0 builds / cost 10 admitted", s)
	}
	if _, hit := mustMatrixDo(t, c2, testKey, "x", 10); !hit {
		t.Fatal("restored matrix was not promoted to memory")
	}
}

// TestMatrixOversizePersists: a matrix too large for the memory budget is
// still written through — disk is not cell-bounded, and restoring it later
// still skips the rebuild.
func TestMatrixOversizePersists(t *testing.T) {
	st, err := OpenFileStore(t.TempDir(), "v1@engine-1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	c := NewMatrixCache(100)
	c.AttachStore(st, stringCodec(), func(any) int64 { return 101 })
	mustMatrixDo(t, c, testKey, "huge", 101)
	if s := c.Stats(); s.Rejected != 1 || s.DiskPuts != 1 {
		t.Fatalf("stats = %+v, want rejected in memory but persisted", s)
	}
	if v, _, ok, _ := st.Get(testKey); !ok || string(v) != "huge" {
		t.Fatalf("oversize entry not on disk: %q ok=%v", v, ok)
	}
}

// TestMatrixFlush mirrors TestCacheFlush at the matrix tier.
func TestMatrixFlush(t *testing.T) {
	c := NewMatrixCache(100)
	mustMatrixDo(t, c, testKey, "m", 10)
	st, err := OpenFileStore(t.TempDir(), "v1@engine-1/matrices")
	if err != nil {
		t.Fatal(err)
	}
	c.AttachStore(st, stringCodec(), func(any) int64 { return 10 })
	if n := c.Flush(); n != 1 {
		t.Fatalf("Flush = %d, want 1", n)
	}
	if v, _, ok, _ := st.Get(testKey); !ok || string(v) != "m" {
		t.Fatalf("flushed matrix: %q ok=%v", v, ok)
	}
}

// TestFileStoreKeyFanout: entries land under a two-character prefix
// directory, so one flat directory never holds the whole tier.
func TestFileStoreKeyFanout(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), "v1@engine-1/results")
	if err != nil {
		t.Fatal(err)
	}
	p := entryPath(t, s, testKey)
	if got := filepath.Base(filepath.Dir(p)); got != testKey[:2] {
		t.Fatalf("entry parent dir = %q, want prefix %q", got, testKey[:2])
	}
	if !strings.HasSuffix(p, testKey) {
		t.Fatalf("entry path %q does not end in the key", p)
	}
}
