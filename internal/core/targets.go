// Package core implements the paper's primary contribution: the MANI-Rank
// fairness targets, the Make-MR-Fair pairwise repair algorithm (paper
// Algorithm 2), and the four MFCR solvers Fair-Kemeny, Fair-Copeland,
// Fair-Schulze and Fair-Borda (paper Section III), plus the Price of
// Fairness measure (Section III-C).
//
// Each Fair-* solver has a W-suffixed twin (FairBordaW, FairCopelandW,
// FairSchulzeW, FairKemenyW) consuming a precomputed ranking.Precedence
// instead of the raw profile, with bitwise-identical output — the entry
// points the serving layer's shared precedence-matrix tier feeds so eight
// methods over one profile pay one O(n²·m) construction. FairKemenyWCtx
// additionally threads a context.Context through every search stage and
// returns a feasible best-so-far ranking on cancellation.
package core

import (
	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/ranking"
)

// Target bounds the FPR spread of one attribute's groups by Delta. A full
// MANI-Rank requirement (paper Def. 7) is one Target per protected attribute
// plus one for the intersection pseudo-attribute.
type Target struct {
	Attr  *attribute.Attribute
	Delta float64
}

// Targets returns the full MANI-Rank target set for table t at a uniform
// threshold delta: every protected attribute and the intersection.
func Targets(t *attribute.Table, delta float64) []Target {
	out := make([]Target, 0, len(t.Attrs())+1)
	for _, a := range t.Attrs() {
		out = append(out, Target{Attr: a, Delta: delta})
	}
	out = append(out, Target{Attr: t.Intersection(), Delta: delta})
	return out
}

// TargetsWithThresholds returns the customized MANI-Rank target set (paper
// Section II-B, "Customizing Group Fairness") honouring per-attribute
// thresholds.
func TargetsWithThresholds(t *attribute.Table, th fairness.Thresholds) []Target {
	out := make([]Target, 0, len(t.Attrs())+1)
	for _, a := range t.Attrs() {
		out = append(out, Target{Attr: a, Delta: th.ForAttr(a.Name)})
	}
	out = append(out, Target{Attr: t.Intersection(), Delta: th.ForInter()})
	return out
}

// AttributeTargets returns targets constraining only the protected
// attributes (no intersection) — the "protected attribute only" alternative
// of the paper's Figure 3a study.
func AttributeTargets(t *attribute.Table, delta float64) []Target {
	out := make([]Target, 0, len(t.Attrs()))
	for _, a := range t.Attrs() {
		out = append(out, Target{Attr: a, Delta: delta})
	}
	return out
}

// IntersectionTarget returns the single target constraining only the
// intersection — the "intersection only" alternative of Figure 3b.
func IntersectionTarget(t *attribute.Table, delta float64) []Target {
	return []Target{{Attr: t.Intersection(), Delta: delta}}
}

// TargetsWithSubsets extends the full MANI-Rank target set with additional
// parity constraints on specific subsets of protected attributes (paper
// Section II-B: "Definition 7 can be extended to support specific subsets of
// protected attribute combinations"). Each subset is a list of attribute
// names whose joint intersection must also satisfy delta.
func TargetsWithSubsets(t *attribute.Table, delta float64, subsets ...[]string) ([]Target, error) {
	out := Targets(t, delta)
	for _, names := range subsets {
		sub, err := t.IntersectionOf(names...)
		if err != nil {
			return nil, err
		}
		out = append(out, Target{Attr: sub, Delta: delta})
	}
	return out, nil
}

// Satisfies reports whether ranking r meets every target.
func Satisfies(r ranking.Ranking, targets []Target) bool {
	for _, tg := range targets {
		if fairness.ARP(r, tg.Attr) > tg.Delta+fairness.Eps {
			return false
		}
	}
	return true
}

// MaxViolation returns the largest amount by which r exceeds any target's
// threshold (0 when all targets hold) along with the index of the worst
// target (-1 when none is violated).
func MaxViolation(r ranking.Ranking, targets []Target) (float64, int) {
	worst, idx := 0.0, -1
	for i, tg := range targets {
		// Parity scores are ratios of small integers; overages below 1e-12
		// are float rounding, not violations.
		if over := fairness.ARP(r, tg.Attr) - tg.Delta; over > fairness.Eps && over > worst {
			worst, idx = over, i
		}
	}
	return worst, idx
}

// constraints converts targets to the kemeny package's constraint type.
func constraints(targets []Target) []kemeny.Constraint {
	cons := make([]kemeny.Constraint, len(targets))
	for i, tg := range targets {
		cons[i] = kemeny.Constraint{Attr: tg.Attr, Delta: tg.Delta}
	}
	return cons
}
