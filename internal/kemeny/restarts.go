package kemeny

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"manirank/internal/obs"
	"manirank/internal/ranking"
)

// This file implements the sharded restart engine behind Heuristic and
// ConstrainedSearch: the iterated-local-search restarts are independent given
// per-restart RNGs, so they run on a bounded worker pool exactly like the
// experiment cells and the precedence shards (DESIGN.md, Hot paths). Restart
// i's outcome depends only on (w, cons, seed ranking, Options.Seed, i), and
// the merge scans restarts in index order, so the returned ranking is bitwise
// identical for every worker count and schedule.

// restartSeed derives restart i's private RNG seed from the run seed via the
// shared splitmix64 finaliser (same derivation scheme as the experiment
// harness's cell seeding). The constrained engine folds in a phase tag so
// Fair-Kemeny's unconstrained and constrained phases — which share one
// Options value — draw decorrelated perturbation streams. Each restart owns
// its randomness: no restart observes another's draws, which is what makes
// parallel schedules reproducible.
func restartSeed(seed int64, restart int, constrained bool) int64 {
	h := uint64(seed) ^ ranking.SplitMix64Init
	if constrained {
		h = ranking.SplitMix64(h, 'c')
	}
	return int64(ranking.SplitMix64(h, uint64(restart)+1))
}

// restartWorkers resolves the restart pool width: <= 0 auto-sizes to
// GOMAXPROCS, and the pool never exceeds the restart count.
func restartWorkers(requested, restarts int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > restarts {
		w = restarts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// searchScratch is one worker's reusable working set: the constrained
// descent's move and precedence-term buffers and its incremental fairness
// auditor, plus — for restart workers — the current-ranking buffer the
// restarts mutate and the restart RNG (re-seeded per restart; math/rand's
// generator state is ~5KB, too big to churn per restart). The descent-only
// callers (ConstrainedLocalSearch, the restart seed descent) never touch
// cur/rng, so those are initialised lazily on the first restart; the auditor
// is built on the first syncAuditor and reset — not reallocated — per
// restart. All of it stays cache-resident across every restart the worker
// runs, so steady-state restarts allocate only when they actually improve on
// the seed.
type searchScratch struct {
	cur   ranking.Ranking
	moves []clsMove
	terms []int
	aud   *auditor
	rng   *rand.Rand
	// scanWorkers > 1 shards scanMoves' precedence lookups; only the seed
	// descent sets it (restart workers keep 1 — the pool is the parallelism).
	scanWorkers int
}

// scanWorkers resolves Options.Workers for the seed descent's sharded
// candidate scan: <= 0 auto-sizes to GOMAXPROCS, like restartWorkers.
func scanWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// clsMove is one improving insertion candidate of the constrained descent.
// ord is its index in scanMoves' canonical scan order, the tie-break that
// keeps heap-based candidate selection identical to a stable ascending sort.
type clsMove struct {
	pos   int
	delta int
	ord   int
}

// moveLess orders candidates by (delta, scan order) ascending — exactly the
// sequence a stable sort of scanMoves' output by delta produces, which is the
// order the historical insertion-sorted descent tried candidates in.
func moveLess(a, b clsMove) bool {
	if a.delta != b.delta {
		return a.delta < b.delta
	}
	return a.ord < b.ord
}

// heapifyMoves builds a binary min-heap over moveLess in place, O(k).
func heapifyMoves(ms []clsMove) {
	for i := len(ms)/2 - 1; i >= 0; i-- {
		siftDownMove(ms, i)
	}
}

func siftDownMove(ms []clsMove, i int) {
	for {
		l := 2*i + 1
		if l >= len(ms) {
			return
		}
		m := l
		if r := l + 1; r < len(ms) && moveLess(ms[r], ms[l]) {
			m = r
		}
		if !moveLess(ms[m], ms[i]) {
			return
		}
		ms[i], ms[m] = ms[m], ms[i]
		i = m
	}
}

// popMove drops the heap minimum and restores the heap property, O(log k).
func popMove(ms []clsMove) []clsMove {
	last := len(ms) - 1
	ms[0] = ms[last]
	ms = ms[:last]
	siftDownMove(ms, 0)
	return ms
}

func newSearchScratch(n int) *searchScratch {
	return &searchScratch{moves: make([]clsMove, 0, n)}
}

// runRestart executes restart idx from the shared seed ranking and returns
// the restart's final cost plus a clone of its ranking when it strictly beats
// the seed (nil otherwise — the common case allocates nothing). An empty
// constraint set (nil or zero-length alike) selects the cheaper
// unconstrained descent.
func (sc *searchScratch) runRestart(ctx context.Context, w *ranking.Precedence, cons []Constraint, seed ranking.Ranking, seedCost int, opts Options, idx int) (int, ranking.Ranking) {
	defer obs.StartSpan(ctx, "kemeny_restart")()
	if sc.cur == nil {
		sc.cur = make(ranking.Ranking, len(seed))
		sc.rng = rand.New(rand.NewSource(0))
	}
	// Re-seeding the scratch generator draws the identical stream a fresh
	// rand.New(rand.NewSource(seed)) would.
	sc.rng.Seed(restartSeed(opts.Seed, idx, len(cons) > 0))
	copy(sc.cur, seed)
	sc.syncAuditor(cons, sc.cur)
	cost := seedCost + perturbFeasibleDelta(w, sc.aud, sc.cur, opts.Strength, sc.rng)
	if len(cons) > 0 {
		cost += sc.constrainedDescentDelta(ctx, w, cons, sc.cur)
	} else {
		cost += localSearchDelta(ctx, w, sc.cur)
	}
	if cost < seedCost {
		return cost, sc.cur.Clone()
	}
	return seedCost, nil
}

// restartSearch runs opts.Perturbations independent perturbed restarts from
// seed (already a local optimum with cost seedCost) on a pool of
// restartWorkers goroutines, and returns the best ranking and cost seen.
// An empty constraint set selects the unconstrained engine. Ties — including every
// restart that fails to improve — resolve to the seed first and then to the
// lowest restart index, independent of schedule.
//
// Cancellation is cooperative: once ctx is done no further restart starts
// (workers stop claiming indices), the in-flight ones finish their current
// descent pass, and the merge below still returns the best completed result —
// at minimum the seed, never a zero value. With a never-cancelled ctx the
// output is bitwise identical to the uncancelled engine for every worker
// count.
func restartSearch(ctx context.Context, w *ranking.Precedence, cons []Constraint, seed ranking.Ranking, seedCost int, opts Options) (ranking.Ranking, int) {
	restarts := opts.Perturbations
	if restarts <= 0 || len(seed) < 2 || ctx.Err() != nil {
		return seed, seedCost
	}
	costs := make([]int, restarts)
	improved := make([]ranking.Ranking, restarts)
	workers := restartWorkers(opts.Workers, restarts)
	if workers == 1 {
		sc := newSearchScratch(len(seed))
		for i := 0; i < restarts && ctx.Err() == nil; i++ {
			costs[i], improved[i] = sc.runRestart(ctx, w, cons, seed, seedCost, opts, i)
		}
	} else {
		next := int64(-1)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := newSearchScratch(len(seed))
				for ctx.Err() == nil {
					i := int(atomic.AddInt64(&next, 1))
					if i >= restarts {
						return
					}
					costs[i], improved[i] = sc.runRestart(ctx, w, cons, seed, seedCost, opts, i)
				}
			}()
		}
		wg.Wait()
	}
	best, bestCost := seed, seedCost
	for i := 0; i < restarts; i++ {
		if improved[i] != nil && costs[i] < bestCost {
			best, bestCost = improved[i], costs[i]
		}
	}
	return best, bestCost
}

// perturbFeasibleDelta applies up to strength random insertion moves to r,
// keeping only those that preserve feasibility (infeasible proposals still
// consume their draws), and returns the total Kemeny-cost change. Proposals
// are audited through aud without mutating r — the incremental prediction is
// bitwise identical to the historical move / Feasible / undo cycle — and
// accepted moves update the trackers. A nil aud means no constraints: every
// move is feasible, so it is the plain perturbation kernel too — same draws,
// same moves.
func perturbFeasibleDelta(w *ranking.Precedence, aud *auditor, r ranking.Ranking, strength int, rng *rand.Rand) int {
	n := len(r)
	if n < 2 {
		return 0
	}
	delta := 0
	for s := 0; s < strength; s++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if aud != nil && !aud.feasibleMove(i, j) {
			continue
		}
		d := w.MoveDelta(r, i, j)
		if aud != nil {
			aud.applyMove(i, j)
		}
		r.MoveTo(i, j)
		delta += d
	}
	return delta
}
