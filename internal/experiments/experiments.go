// Package experiments regenerates every table and figure of the MANI-Rank
// paper's evaluation (Section IV and the appendix): one runner per artifact,
// each printing the same rows/series the paper reports. DESIGN.md maps each
// experiment id to its workload, parameters, and modules; EXPERIMENTS.md
// records paper-reported versus measured values.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"manirank/internal/aggregate"
	"manirank/internal/attribute"
	"manirank/internal/core"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
	"manirank/internal/unfairgen"
)

// Config tunes an experiment run. The zero value runs at paper scale with
// seed 1 on every available CPU.
type Config struct {
	// Seed drives every random component; runs are reproducible per seed.
	// Each method x theta x size cell derives its own RNG from Seed and its
	// coordinates, so results are identical for every Workers value.
	Seed int64
	// Out receives the printed table (defaults to io.Discard if nil; the
	// CLI passes os.Stdout).
	Out io.Writer
	// Quick shrinks the heaviest workloads (fewer rankers, smaller candidate
	// counts) so the full suite finishes in seconds — used by `go test` and
	// the benchmark harness. Paper-scale runs leave it false.
	Quick bool
	// Workers bounds the experiment worker pool: independent cells of each
	// figure/table run concurrently on up to this many goroutines. 0 means
	// one per CPU; 1 runs cells sequentially. Deterministic outputs
	// (rankings, losses, parities) are bitwise identical across values;
	// per-cell Runtime columns in the scalability artifacts are wall-clock
	// and contend under parallelism — time with Workers: 1. Kernel-level
	// parallelism inside a cell (precedence-matrix sharding) is governed
	// separately by ranking.DefaultWorkers; cmd/experiments sets both from
	// its -workers flag so `-workers 1` is fully sequential.
	Workers int
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// thetas is the consensus sweep used throughout the paper's figures.
var thetas = []float64{0.2, 0.4, 0.6, 0.8}

// kemenyOptions returns solver options sized to the experiment scale. Solver
// restarts are pinned sequential inside the harness: the cell pool already
// owns the machine's parallelism, and a restart pool per cell would
// oversubscribe the CPUs multiplicatively and contend the wall-clock Runtime
// columns the scalability artifacts report. Restart sharding
// (kemeny.Options.Workers) is for single-solve surfaces — manirank
// aggregate and library callers. Solver output is identical for every pool
// width, so this pin never changes a table.
func (c Config) kemenyOptions() aggregate.KemenyOptions {
	return aggregate.KemenyOptions{
		ExactThreshold: 12,
		MaxNodes:       2_000_000,
		Heuristic:      kemeny.Options{Workers: 1},
	}
}

// runCtx bundles one consensus problem instance.
type runCtx struct {
	p       ranking.Profile
	w       *ranking.Precedence
	tab     *attribute.Table
	targets []core.Target
}

func newRunCtx(p ranking.Profile, tab *attribute.Table, delta float64) (*runCtx, error) {
	w, err := ranking.NewPrecedence(p)
	if err != nil {
		return nil, err
	}
	return &runCtx{p: p, w: w, tab: tab, targets: core.Targets(tab, delta)}, nil
}

// method is one consensus generation strategy in the paper's comparison,
// labelled with the paper's A1-A4 (proposed) / B1-B4 (baseline) ids.
type method struct {
	ID   string
	Name string
	Run  func(*runCtx) (ranking.Ranking, error)
}

// allMethods returns the paper's eight-method comparison set (Fig. 4, 6, 7).
// Every method's Run is self-contained — pairwise methods build their own
// precedence matrix from the profile — so the scalability figures time the
// same end-to-end work the paper measures.
func allMethods(cfg Config) []method {
	kopts := cfg.kemenyOptions()
	opts := core.Options{Kemeny: kopts}
	return []method{
		{"A1", "Fair-Kemeny", func(c *runCtx) (ranking.Ranking, error) {
			w, err := ranking.NewPrecedence(c.p)
			if err != nil {
				return nil, err
			}
			return core.FairKemenyW(w, c.targets, opts)
		}},
		{"A2", "Fair-Schulze", func(c *runCtx) (ranking.Ranking, error) {
			return core.FairSchulze(c.p, c.targets)
		}},
		{"A3", "Fair-Borda", func(c *runCtx) (ranking.Ranking, error) {
			return core.FairBorda(c.p, c.targets)
		}},
		{"A4", "Fair-Copeland", func(c *runCtx) (ranking.Ranking, error) {
			return core.FairCopeland(c.p, c.targets)
		}},
		{"B1", "Kemeny", func(c *runCtx) (ranking.Ranking, error) {
			w, err := ranking.NewPrecedence(c.p)
			if err != nil {
				return nil, err
			}
			return aggregate.Kemeny(w, kopts), nil
		}},
		{"B2", "Kemeny-Weighted", func(c *runCtx) (ranking.Ranking, error) {
			return aggregate.KemenyWeighted(c.p, c.tab, kopts)
		}},
		{"B3", "Pick-Fairest-Perm", func(c *runCtx) (ranking.Ranking, error) {
			return aggregate.PickFairestPerm(c.p, c.tab)
		}},
		{"B4", "Correct-Fairest-Perm", func(c *runCtx) (ranking.Ranking, error) {
			return core.CorrectFairestPerm(c.p, c.targets)
		}},
	}
}

// tableIModal builds the named Table I modal ranking over the paper's
// 90-candidate Gender(3) x Race(5) database.
func tableIModal(name string) (*attribute.Table, ranking.Ranking, error) {
	tab, err := unfairgen.PaperTable(90)
	if err != nil {
		return nil, nil, err
	}
	for _, spec := range unfairgen.TableIDatasets() {
		if spec.Name == name {
			modal, err := unfairgen.TargetModal(tab, spec.Levels)
			return tab, modal, err
		}
	}
	return nil, nil, fmt.Errorf("experiments: unknown Table I dataset %q", name)
}

// tableIDatasets builds the tab and modal ranking of every Table I dataset
// once, so dataset x theta fan-outs don't redo the deterministic dataset
// construction in each cell.
func tableIDatasets() ([]unfairgen.MallowsDatasetSpec, []*attribute.Table, []ranking.Ranking, error) {
	specs := unfairgen.TableIDatasets()
	tabs := make([]*attribute.Table, len(specs))
	modals := make([]ranking.Ranking, len(specs))
	for di, spec := range specs {
		var err error
		if tabs[di], modals[di], err = tableIModal(spec.Name); err != nil {
			return nil, nil, nil, err
		}
	}
	return specs, tabs, modals, nil
}

// sampleProfile draws |R| base rankings around modal at spread theta.
func sampleProfile(modal ranking.Ranking, theta float64, m int, rng *rand.Rand) ranking.Profile {
	return mallows.MustNew(modal, theta).SampleProfile(m, rng)
}

// newTabWriter returns a tabwriter aligned for experiment tables.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
}

// auditCols formats the (ARP..., IRP) columns of a ranking for printing.
func auditCols(r ranking.Ranking, tab *attribute.Table) string {
	rep := fairness.Audit(r, tab)
	s := ""
	for _, v := range rep.ARPs {
		s += fmt.Sprintf("%.3f\t", v)
	}
	s += fmt.Sprintf("%.3f", rep.IRP)
	return s
}
