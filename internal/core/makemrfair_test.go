package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"manirank/internal/attribute"
	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

// testTable builds a Gender(3) x Race(5) table with n candidates assigned
// round-robin (balanced intersections when n is a multiple of 15).
func testTable(tb testing.TB, n int) *attribute.Table {
	tb.Helper()
	gender := make([]int, n)
	race := make([]int, n)
	for c := 0; c < n; c++ {
		gender[c] = c % 3
		race[c] = (c / 3) % 5
	}
	g, err := attribute.NewAttribute("Gender", []string{"Man", "Non-Binary", "Woman"}, gender)
	if err != nil {
		tb.Fatal(err)
	}
	r, err := attribute.NewAttribute("Race", []string{"A", "B", "C", "D", "E"}, race)
	if err != nil {
		tb.Fatal(err)
	}
	t, err := attribute.NewTable(n, g, r)
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func TestMakeMRFairPostcondition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Intersectional groups need at least 2 members for tight deltas to
		// be satisfiable (singleton groups force IRP = 1), so n >= 30.
		n := 15 * (2 + rng.Intn(3))
		tab := testTable(t, n)
		delta := 0.05 + rng.Float64()*0.4
		targets := Targets(tab, delta)
		out, err := MakeMRFair(ranking.Random(n, rng), targets)
		if err != nil {
			return false
		}
		return out.IsValid() && Satisfies(out, targets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeMRFairIdempotentWhenAlreadyFair(t *testing.T) {
	tab := testTable(t, 30)
	rng := rand.New(rand.NewSource(1))
	targets := Targets(tab, 0.2)
	r, err := MakeMRFair(ranking.Random(30, rng), targets)
	if err != nil {
		t.Fatal(err)
	}
	again, err := MakeMRFair(r, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(r) {
		t.Fatal("MakeMRFair changed an already-fair ranking")
	}
}

func TestMakeMRFairDoesNotMutateInput(t *testing.T) {
	tab := testTable(t, 30)
	rng := rand.New(rand.NewSource(2))
	r := ranking.Random(30, rng)
	orig := r.Clone()
	if _, err := MakeMRFair(r, Targets(tab, 0.05)); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(orig) {
		t.Fatal("input ranking mutated")
	}
}

func TestMakeMRFairFromBlockRanking(t *testing.T) {
	// Start maximally unfair: intersectional blocks in order.
	tab := testTable(t, 45)
	inter := tab.Intersection()
	var r ranking.Ranking
	for v := 0; v < inter.DomainSize(); v++ {
		r = append(r, inter.Group(v)...)
	}
	if got := fairness.IRP(r, tab); got != 1 {
		t.Fatalf("block ranking IRP = %v, want 1", got)
	}
	for _, delta := range []float64{0.5, 0.25, 0.1, 0.05} {
		out, err := MakeMRFair(r, Targets(tab, delta))
		if err != nil {
			t.Fatalf("delta=%v: %v", delta, err)
		}
		rep := fairness.Audit(out, tab)
		if rep.MaxViolation() > delta+1e-9 {
			t.Fatalf("delta=%v: max violation %v", delta, rep.MaxViolation())
		}
	}
}

func TestMakeMRFairSmallerDeltaCostsMorePDLoss(t *testing.T) {
	tab := testTable(t, 45)
	rng := rand.New(rand.NewSource(4))
	p := make(ranking.Profile, 20)
	biased := blockRanking(tab)
	for i := range p {
		p[i] = biased.Clone()
	}
	var prev float64 = -1
	for _, delta := range []float64{0.5, 0.3, 0.1} {
		out, err := MakeMRFair(biased, Targets(tab, delta))
		if err != nil {
			t.Fatal(err)
		}
		loss := ranking.PDLoss(p, out)
		if prev >= 0 && loss < prev-1e-9 {
			t.Fatalf("delta=%v: PD loss %v decreased below %v at looser delta", delta, loss, prev)
		}
		prev = loss
	}
	_ = rng
}

func blockRanking(tab *attribute.Table) ranking.Ranking {
	inter := tab.Intersection()
	var r ranking.Ranking
	for v := 0; v < inter.DomainSize(); v++ {
		r = append(r, inter.Group(v)...)
	}
	return r
}

func TestMakeMRFairPerTargetDeltas(t *testing.T) {
	tab := testTable(t, 45)
	targets := []Target{
		{Attr: tab.Attr("Gender"), Delta: 0.05},
		{Attr: tab.Attr("Race"), Delta: 0.3},
		{Attr: tab.Intersection(), Delta: 0.5},
	}
	out, err := MakeMRFair(blockRanking(tab), targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := fairness.ARP(out, tab.Attr("Gender")); got > 0.05+1e-9 {
		t.Errorf("Gender ARP = %v, want <= 0.05", got)
	}
	if got := fairness.ARP(out, tab.Attr("Race")); got > 0.3+1e-9 {
		t.Errorf("Race ARP = %v, want <= 0.3", got)
	}
	if got := fairness.IRP(out, tab); got > 0.5+1e-9 {
		t.Errorf("IRP = %v, want <= 0.5", got)
	}
}

func TestMakeMRFairRejectsBadInputs(t *testing.T) {
	tab := testTable(t, 30)
	if _, err := MakeMRFair(ranking.Ranking{0, 0, 1}, Targets(tab, 0.1)); err == nil {
		t.Error("invalid ranking accepted")
	}
	small := testTable(t, 15)
	if _, err := MakeMRFair(ranking.New(30), Targets(small, 0.1)); err == nil {
		t.Error("mismatched table size accepted")
	}
	bad := Targets(tab, 0.1)
	bad[0].Delta = -0.5
	if _, err := MakeMRFair(ranking.New(30), bad); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestMakeMRFairUnsatisfiableSingletonGroups(t *testing.T) {
	// With n = 15 every intersectional group is a singleton: the top
	// candidate's group always has FPR 1 and the bottom's 0, so IRP = 1 for
	// every ranking and Delta < 1 must be reported unrepairable.
	tab := testTable(t, 15)
	rng := rand.New(rand.NewSource(8))
	_, err := MakeMRFair(ranking.Random(15, rng), Targets(tab, 0.3))
	if err == nil {
		t.Fatal("singleton intersection groups with Delta=0.3 should be unrepairable")
	}
}

func TestMakeMRFairNoTargetsIsIdentity(t *testing.T) {
	r := ranking.New(20)
	out, err := MakeMRFair(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Fatal("no targets should leave ranking unchanged")
	}
}

func TestParityEngineMatchesAudit(t *testing.T) {
	// Incremental win tracking must agree with a fresh audit after a series
	// of random swaps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 * (1 + rng.Intn(3))
		tab := testTable(t, n)
		targets := Targets(tab, 0.1)
		eng := newParityEngine(ranking.Random(n, rng), targets)
		for s := 0; s < 30; s++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			eng.swap(i, j)
		}
		for k, tg := range targets {
			want := fairness.GroupFPRs(eng.r, tg.Attr)
			for v := range want {
				if math.Abs(eng.fpr(k, v)-want[v]) > 1e-12 {
					return false
				}
			}
			if math.Abs(eng.spread(k)-fairness.ARP(eng.r, tg.Attr)) > 1e-12 {
				return false
			}
		}
		return eng.r.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTargetsHelpers(t *testing.T) {
	tab := testTable(t, 30)
	full := Targets(tab, 0.1)
	if len(full) != 3 {
		t.Fatalf("Targets: %d targets, want 3 (Gender, Race, Intersection)", len(full))
	}
	attrOnly := AttributeTargets(tab, 0.1)
	if len(attrOnly) != 2 {
		t.Fatalf("AttributeTargets: %d, want 2", len(attrOnly))
	}
	interOnly := IntersectionTarget(tab, 0.1)
	if len(interOnly) != 1 || interOnly[0].Attr.Name != "Intersection" {
		t.Fatalf("IntersectionTarget wrong: %+v", interOnly)
	}
	th := fairness.Thresholds{Default: 0.2, PerAttr: map[string]float64{"Gender": 0.05}, Inter: 0.4}
	custom := TargetsWithThresholds(tab, th)
	if custom[0].Delta != 0.05 || custom[1].Delta != 0.2 || custom[2].Delta != 0.4 {
		t.Fatalf("TargetsWithThresholds deltas wrong: %+v", custom)
	}
}

func TestMaxViolation(t *testing.T) {
	tab := testTable(t, 45)
	r := blockRanking(tab)
	v, idx := MaxViolation(r, Targets(tab, 0.1))
	if v <= 0 || idx < 0 {
		t.Fatalf("block ranking should violate: v=%v idx=%d", v, idx)
	}
	if v2, idx2 := MaxViolation(r, Targets(tab, 1.0)); v2 != 0 || idx2 != -1 {
		t.Fatalf("Delta=1: v=%v idx=%d, want 0/-1", v2, idx2)
	}
}
