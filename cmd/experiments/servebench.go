package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"

	"manirank/internal/service"
	"manirank/internal/service/loadgen"
)

// serveBenchReport is the BENCH_<n>.json "serving" section: one loadgen run
// per Zipf skew against an in-process manirankd.
type serveBenchReport struct {
	Method     string           `json:"method"`
	Candidates int              `json:"candidates"`
	Rankers    int              `json:"rankers"`
	Profiles   int              `json:"distinct_profiles"`
	Clients    int              `json:"clients"`
	CacheSize  int              `json:"cache_size"`
	Workers    int              `json:"workers"`
	Runs       []loadgen.Result `json:"runs"`
}

// runServeBench boots the serving stack on a loopback listener and replays
// the synthetic Mallows workload at several popularity skews: uniform
// (every distinct profile equally likely — the cache's worst case at this
// working-set size) through increasingly peaked Zipf popularity, where a
// small hot set dominates and the hit rate should climb toward 1.
func runServeBench(seed int64, requests, clients, profiles, cacheSize int) error {
	report := serveBenchReport{
		Method:     "fair-kemeny",
		Candidates: 60,
		Rankers:    40,
		Profiles:   profiles,
		Clients:    clients,
		CacheSize:  cacheSize,
		Workers:    runtime.GOMAXPROCS(0),
	}
	for _, s := range []float64{0, 1.2, 2.0} {
		res, err := serveBenchRun(report, seed, requests, s)
		if err != nil {
			return err
		}
		// 429s are legitimate backpressure under load; request errors mean
		// the serving stack is broken — fail the run (CI's smoke relies on
		// this exit code).
		if res.Errors > 0 {
			return fmt.Errorf("serve-bench zipf_s=%.1f: %d request errors", s, res.Errors)
		}
		report.Runs = append(report.Runs, res)
		fmt.Fprintf(os.Stderr, "serve-bench zipf_s=%.1f: %.1f req/s, hit rate %.2f, p50 %.1fms, p99 %.1fms (%d errors, %d rejected)\n",
			s, res.Throughput, res.HitRate, res.P50LatencyMS, res.P99LatencyMS, res.Errors, res.Rejected)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// serveBenchRun measures one skew setting against a FRESH server — each run
// gets its own cold cache, so the per-skew hit rates are comparable rather
// than inflated by entries the previous skew warmed.
func serveBenchRun(report serveBenchReport, seed int64, requests int, zipfS float64) (loadgen.Result, error) {
	srv := service.New(service.Config{
		CacheSize: report.CacheSize,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	return loadgen.Run(loadgen.Config{
		URL:      "http://" + ln.Addr().String(),
		Clients:  report.Clients,
		Requests: requests,
		Profiles: report.Profiles,
		ZipfS:    zipfS,
		Method:   report.Method,
		Seed:     seed,
	})
}
