// Command doclint is the repo's zero-dependency documentation linter (a
// revive/golint-style check, runnable with plain `go run`): it parses the
// packages in the directories given as arguments and fails — listing every
// offender — when a package lacks a package comment or an exported
// identifier (function, method, type, or package-level var/const) lacks a
// doc comment. CI's docs job runs it over internal/service/... so the
// serving layer's godoc stays complete.
//
// Usage:
//
//	go run ./internal/tools/doclint <pkg-dir> [<pkg-dir>...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir> [<pkg-dir>...]")
		os.Exit(2)
	}
	failures := 0
	for _, dir := range os.Args[1:] {
		failures += lintDir(dir)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifiers\n", failures)
		os.Exit(1)
	}
}

// lintDir checks every non-test package clause in dir and returns the
// number of findings (each already printed).
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
		return 1
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		findings++
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			lintFile(f, report)
		}
		if !hasPkgDoc {
			findings++
			fmt.Fprintf(os.Stderr, "%s: package %s has no package comment\n", dir, pkg.Name)
		}
	}
	return findings
}

// lintFile reports every exported declaration in f that carries no doc
// comment.
func lintFile(f *ast.File, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), d.Name.Name)
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
}

// lintGenDecl checks type/var/const declarations. A doc comment on the
// grouped declaration covers its specs; otherwise each exported spec needs
// its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if d.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), "exported %s %s has no doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is exported (or
// the decl is a plain function); methods on unexported types are internal
// regardless of their own name.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcKind distinguishes methods from functions in reports.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
