package core

import (
	"math/rand"
	"testing"

	"manirank/internal/aggregate"
	"manirank/internal/fairness"
	"manirank/internal/kemeny"
	"manirank/internal/mallows"
	"manirank/internal/ranking"
)

// lowFairProfile builds a biased Mallows profile over the test table.
func lowFairProfile(t *testing.T, n, m int, theta float64, seed int64) (ranking.Profile, *ranking.Precedence) {
	t.Helper()
	tab := testTable(t, n)
	modal := blockRanking(tab)
	model := mallows.MustNew(modal, theta)
	rng := rand.New(rand.NewSource(seed))
	p := model.SampleProfile(m, rng)
	return p, ranking.MustPrecedence(p)
}

func TestAllSolversSatisfyTargets(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	p, _ := lowFairProfile(t, n, 20, 0.5, 1)
	targets := Targets(tab, 0.12)
	solvers := []struct {
		name string
		run  func() (ranking.Ranking, error)
	}{
		{"FairBorda", func() (ranking.Ranking, error) { return FairBorda(p, targets) }},
		{"FairCopeland", func() (ranking.Ranking, error) { return FairCopeland(p, targets) }},
		{"FairSchulze", func() (ranking.Ranking, error) { return FairSchulze(p, targets) }},
		{"FairKemeny", func() (ranking.Ranking, error) { return FairKemeny(p, targets, Options{}) }},
		{"CorrectFairestPerm", func() (ranking.Ranking, error) { return CorrectFairestPerm(p, targets) }},
	}
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			r, err := s.run()
			if err != nil {
				t.Fatal(err)
			}
			if !r.IsValid() {
				t.Fatal("invalid permutation")
			}
			if v, idx := MaxViolation(r, targets); v > 0 {
				t.Fatalf("violates target %d by %v", idx, v)
			}
		})
	}
}

func TestFairKemenyBeatsRepairMethodsOnPDLoss(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	p, w := lowFairProfile(t, n, 20, 0.5, 2)
	targets := Targets(tab, 0.12)
	fk, err := FairKemeny(p, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []func(ranking.Profile, []Target) (ranking.Ranking, error){FairBorda, FairCopeland, FairSchulze, CorrectFairestPerm} {
		r, err := other(p, targets)
		if err != nil {
			t.Fatal(err)
		}
		if w.PDLoss(fk) > w.PDLoss(r)+1e-9 {
			t.Fatalf("Fair-Kemeny PD loss %v worse than alternative %v", w.PDLoss(fk), w.PDLoss(r))
		}
	}
}

func TestFairKemenyExactMatchesConstrainedBB(t *testing.T) {
	// At small n (below the exact threshold) FairKemeny must return the
	// provably optimal fair consensus.
	tab := testTable(t, 10) // inter groups too small: use attribute targets
	rng := rand.New(rand.NewSource(3))
	modal := blockRanking(tab)
	model := mallows.MustNew(modal, 0.4)
	p := model.SampleProfile(10, rng)
	w := ranking.MustPrecedence(p)
	targets := AttributeTargets(tab, 0.25)
	got, err := FairKemenyW(w, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := kemeny.BranchAndBound(w, constraints(targets), nil, 0)
	if res.Ranking == nil || !res.Optimal {
		t.Fatal("reference search failed")
	}
	if w.KemenyCost(got) != res.Cost {
		t.Fatalf("FairKemeny cost %d, constrained optimum %d", w.KemenyCost(got), res.Cost)
	}
}

func TestPriceOfFairnessNonNegative(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	p, w := lowFairProfile(t, n, 15, 0.6, 4)
	targets := Targets(tab, 0.1)
	unfair := aggregate.Kemeny(w, aggregate.KemenyOptions{})
	fair, err := FairKemenyW(w, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pof := PriceOfFairnessW(w, fair, unfair)
	if pof < 0 {
		t.Fatalf("PoF = %v < 0: fair consensus beats the unconstrained optimum", pof)
	}
	if got, want := PriceOfFairness(p, fair, unfair), pof; got-want > 1e-12 || want-got > 1e-12 {
		t.Fatalf("profile PoF %v != precedence PoF %v", got, want)
	}
}

func TestPoFDecreasesWithLooserDelta(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	_, w := lowFairProfile(t, n, 15, 0.6, 5)
	unfair := aggregate.Kemeny(w, aggregate.KemenyOptions{})
	prev := -1.0
	for _, delta := range []float64{0.5, 0.3, 0.1} {
		fair, err := FairKemenyW(w, Targets(tab, delta), Options{})
		if err != nil {
			t.Fatal(err)
		}
		pof := PriceOfFairnessW(w, fair, unfair)
		if prev >= 0 && pof < prev-1e-9 {
			t.Fatalf("PoF at delta=%v (%v) below PoF at looser delta (%v)", delta, pof, prev)
		}
		prev = pof
	}
}

func TestPickFairestMatchesAggregateBaseline(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	p, _ := lowFairProfile(t, n, 12, 0.3, 6)
	targets := Targets(tab, 0.1)
	got, err := PickFairest(p, targets)
	if err != nil {
		t.Fatal(err)
	}
	want, err := aggregate.PickFairestPerm(p, tab)
	if err != nil {
		t.Fatal(err)
	}
	// Both choose the base ranking with the minimum max ARP/IRP violation.
	if !got.Equal(want) {
		t.Fatalf("PickFairest = %v..., aggregate baseline = %v...", got[:5], want[:5])
	}
}

func TestCorrectFairestPermHigherLossThanFairKemeny(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	p, w := lowFairProfile(t, n, 20, 0.6, 7)
	targets := Targets(tab, 0.1)
	cfp, err := CorrectFairestPerm(p, targets)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := FairKemeny(p, targets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.PDLoss(cfp) < w.PDLoss(fk)-1e-9 {
		t.Fatalf("Correct-Fairest-Perm PD loss %v beat Fair-Kemeny %v", w.PDLoss(cfp), w.PDLoss(fk))
	}
}

func TestFairSolversIndependentAudit(t *testing.T) {
	// Cross-check solver outputs against the fairness package audit.
	const n = 30
	tab := testTable(t, n)
	p, _ := lowFairProfile(t, n, 10, 0.4, 8)
	r, err := FairBorda(p, Targets(tab, 0.15))
	if err != nil {
		t.Fatal(err)
	}
	rep := fairness.Audit(r, tab)
	if !rep.Satisfies(0.15) {
		t.Fatalf("audit violation: %v", rep.String())
	}
}

// TestFairBordaWMatchesFairBorda: the precomputed-matrix entry point must be
// bitwise identical to the profile one — the serving layer routes fair-borda
// through the shared precedence tier on the strength of this.
func TestFairBordaWMatchesFairBorda(t *testing.T) {
	const n = 45
	tab := testTable(t, n)
	targets := Targets(tab, 0.15)
	for seed := int64(1); seed <= 5; seed++ {
		p, w := lowFairProfile(t, n, 16, 0.4, seed)
		direct, err := FairBorda(p, targets)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fromW, err := FairBordaW(w, targets)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !fromW.Equal(direct) {
			t.Fatalf("seed %d: FairBordaW diverged from FairBorda\n  W: %v\n  p: %v", seed, fromW, direct)
		}
	}
}
