#!/usr/bin/env bash
# bench.sh [N] — run the core micro-benchmarks and write BENCH_<N>.json
# (default N=1) in the repo root, seeding the per-PR perf trajectory.
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-1}"
OUT="BENCH_${N}.json"

BENCHES='BenchmarkPrecedenceMatrix100x150|BenchmarkMakeMRFair90|BenchmarkMallowsSample90|BenchmarkPlackettLuce100k|BenchmarkAblationILSBordaInit|BenchmarkHeuristicRestartsW1|BenchmarkHeuristicRestartsW4'

RAW="$(go test -run '^$' -bench "$BENCHES" -benchtime "${BENCHTIME:-1s}" .)"
echo "$RAW"

{
  echo '{'
  echo "  \"pr\": ${N},"
  echo "  \"goos\": \"$(go env GOOS)\","
  echo "  \"goarch\": \"$(go env GOARCH)\","
  echo '  "benchmarks": {'
  echo "$RAW" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      lines[++count] = sprintf("    \"%s\": {\"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
    }
    END {
      for (i = 1; i <= count; i++) printf "%s%s\n", lines[i], (i < count ? "," : "")
    }'
  echo '  }'
  echo '}'
} > "$OUT"

echo "wrote $OUT"
