package kemeny

import (
	"math/rand"
	"testing"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// restartWorkerCounts is the acceptance grid: the sharded restart engine must
// be bitwise identical across all of these pool widths.
var restartWorkerCounts = []int{1, 2, 4, 8}

func TestHeuristicBitwiseIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		n := 10 + rng.Intn(40)
		w := ranking.MustPrecedence(randomProfile(n, 3+rng.Intn(6), rng))
		opts := Options{Seed: int64(100 + trial), Perturbations: 12, Strength: 5}
		opts.Workers = 1
		want := Heuristic(w, opts)
		for _, workers := range restartWorkerCounts[1:] {
			opts.Workers = workers
			if got := Heuristic(w, opts); !got.Equal(want) {
				t.Fatalf("n=%d: Heuristic differs between 1 and %d workers:\n%v\n%v", n, workers, want, got)
			}
		}
	}
}

func TestConstrainedSearchBitwiseIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 6; trial++ {
		n := 8 + 2*rng.Intn(12)
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		a := binaryAttr(n, rng)
		cons := []Constraint{{Attr: a, Delta: 0.4}}
		start := alternating(a)
		if !Feasible(start, cons) {
			continue
		}
		opts := Options{Seed: int64(trial), Perturbations: 12, Strength: 5}
		opts.Workers = 1
		want := ConstrainedSearch(w, cons, start, opts)
		for _, workers := range restartWorkerCounts[1:] {
			opts.Workers = workers
			if got := ConstrainedSearch(w, cons, start, opts); !got.Equal(want) {
				t.Fatalf("n=%d: ConstrainedSearch differs between 1 and %d workers:\n%v\n%v", n, workers, want, got)
			}
		}
	}
}

func TestConstrainedSearchFeasibleAndNoWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		n := 6 + rng.Intn(14)
		w := ranking.MustPrecedence(randomProfile(n, 5, rng))
		a := binaryAttr(n, rng)
		cons := []Constraint{{Attr: a, Delta: 0.4}}
		start := alternating(a)
		if !Feasible(start, cons) {
			continue
		}
		before := w.KemenyCost(start)
		out := ConstrainedSearch(w, cons, start, Options{Seed: int64(trial), Workers: 4})
		if !out.IsValid() {
			t.Fatal("ConstrainedSearch output invalid")
		}
		if !Feasible(out, cons) {
			t.Fatal("ConstrainedSearch output violates constraints")
		}
		if w.KemenyCost(out) > before {
			t.Fatalf("ConstrainedSearch worsened cost: %d -> %d", before, w.KemenyCost(out))
		}
		// Restarts never fall below the plain descent: the descent result is
		// the seed every restart must strictly beat to replace.
		cls := ConstrainedLocalSearch(w, cons, start)
		if w.KemenyCost(out) > w.KemenyCost(cls) {
			t.Fatalf("ConstrainedSearch %d worse than plain descent %d", w.KemenyCost(out), w.KemenyCost(cls))
		}
	}
}

func TestConstrainedSearchPanicsOnInfeasibleStart(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	w := ranking.MustPrecedence(randomProfile(6, 3, rng))
	a, err := attribute.NewAttribute("g", []string{"A", "B"}, []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for infeasible start")
		}
	}()
	ConstrainedSearch(w, []Constraint{{Attr: a, Delta: 0.1}}, ranking.New(6), Options{})
}

// TestHeuristicNeverWorseThanSeedDescent pins the merge contract: the
// restarts only ever replace the seed local optimum with a strictly better
// ranking.
func TestHeuristicNeverWorseThanSeedDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(30)
		w := ranking.MustPrecedence(randomProfile(n, 4, rng))
		seed := LocalSearch(w, BordaFromPrecedence(w))
		h := Heuristic(w, Options{Seed: int64(trial), Workers: 4})
		if w.KemenyCost(h) > w.KemenyCost(seed) {
			t.Fatalf("Heuristic cost %d above its own seed descent %d", w.KemenyCost(h), w.KemenyCost(seed))
		}
	}
}

func TestRestartSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		for _, constrained := range []bool{false, true} {
			s := restartSeed(42, i, constrained)
			if seen[s] {
				t.Fatalf("restartSeed collision at index %d (constrained=%v)", i, constrained)
			}
			seen[s] = true
		}
	}
	if restartSeed(1, 0, false) == restartSeed(2, 0, false) {
		t.Fatal("restartSeed ignores the run seed")
	}
}
