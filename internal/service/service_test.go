package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"manirank/internal/mallows"
	"manirank/internal/obs"
	"manirank/internal/ranking"
)

// newTestServer starts a Server over httptest with quiet logging.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// testRequest builds a 20-candidate request: a Mallows profile over two
// binary attributes.
func testRequest(method string, seed int64) *AggregateRequest {
	const n, m = 20, 12
	rng := rand.New(rand.NewSource(seed))
	modal := ranking.Random(n, rng)
	p := mallows.MustNew(modal, 0.5).SampleProfile(m, rng)
	profile := make([][]int, len(p))
	for i, r := range p {
		profile[i] = r
	}
	gender := make([]int, n)
	region := make([]int, n)
	for c := 0; c < n; c++ {
		gender[c] = c % 2
		region[c] = (c / 2) % 2
	}
	return &AggregateRequest{
		Method:  method,
		Profile: profile,
		Attributes: []AttributeSpec{
			{Name: "Gender", Values: []string{"M", "W"}, Of: gender},
			{Name: "Region", Values: []string{"N", "S"}, Of: region},
		},
		Delta: 0.3,
	}
}

func post(t *testing.T, url string, req *AggregateRequest) (int, *AggregateResponse) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/aggregate", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out AggregateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding response %s: %v", body, err)
	}
	return resp.StatusCode, &out
}

// TestAggregateAllMethods: every method serves a valid consensus over HTTP,
// fair methods satisfy their targets, and the audit is attached.
func TestAggregateAllMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, method := range Methods {
		req := testRequest(method, 5)
		status, out := post(t, ts.URL, req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", method, status)
		}
		if err := out.Ranking.Validate(); err != nil {
			t.Fatalf("%s: invalid ranking: %v", method, err)
		}
		if out.Method != method || out.Partial || out.Cached {
			t.Fatalf("%s: unexpected flags %+v", method, out)
		}
		if out.Audit == nil {
			t.Fatalf("%s: no audit despite attributes", method)
		}
		if req.IsFair() {
			for name, arp := range out.Audit.ARPs {
				if arp > req.Delta+1e-9 {
					t.Fatalf("%s: ARP %s = %g exceeds delta %g", method, name, arp, req.Delta)
				}
			}
			if out.Audit.IRP > req.Delta+1e-9 {
				t.Fatalf("%s: IRP %g exceeds delta %g", method, out.Audit.IRP, req.Delta)
			}
		}
	}
}

// TestSecondIdenticalRequestIsCacheHit is the e2e caching contract: same
// request twice, the second is served from memory with the identical
// ranking.
func TestSecondIdenticalRequestIsCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := testRequest("fair-kemeny", 6)
	_, first := post(t, ts.URL, req)
	status, second := post(t, ts.URL, req)
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("second request: status=%d cached=%v, want 200 cache hit", status, second.Cached)
	}
	if !second.Ranking.Equal(first.Ranking) {
		t.Fatal("cache returned a different ranking")
	}
	if st := s.StatzSnapshot(); st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss", st.Cache)
	}
}

// TestStatzPerMethodLatency: computed solves land in the per-method latency
// rings (one observation per miss; cache hits never touch them).
func TestStatzPerMethodLatency(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	post(t, ts.URL, testRequest("fair-borda", 6))
	post(t, ts.URL, testRequest("fair-borda", 6)) // hit: must not record
	post(t, ts.URL, testRequest("kemeny", 6))
	st := s.StatzSnapshot()
	if got := st.LatencyByMethod["fair-borda"].Count; got != 1 {
		t.Fatalf("fair-borda solve count = %d, want 1 (cache hits must not record)", got)
	}
	if got := st.LatencyByMethod["kemeny"].Count; got != 1 {
		t.Fatalf("kemeny solve count = %d, want 1", got)
	}
	if _, ok := st.LatencyByMethod["fair-copeland"]; ok {
		t.Fatal("unsolved method has a latency ring")
	}
}

// TestConcurrentIdenticalRequestsComputeOnce: the coalescing acceptance
// criterion, run with many goroutines (meaningful under -race). Exactly one
// request leads the flight; everyone gets the same ranking.
func TestConcurrentIdenticalRequestsComputeOnce(t *testing.T) {
	const clients = 16
	s, ts := newTestServer(t, Config{Workers: 4})
	req := testRequest("fair-kemeny", 7)
	req.Options.Perturbations = 400 // slow enough that the flight stays open
	var wg sync.WaitGroup
	outs := make([]*AggregateResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, out := post(t, ts.URL, req)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d", i, status)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	leaders := 0
	for i, out := range outs {
		if out == nil {
			t.Fatalf("client %d got no response", i)
		}
		if !out.Ranking.Equal(outs[0].Ranking) {
			t.Fatalf("client %d got a different ranking", i)
		}
		if !out.Cached && !out.Coalesced {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d clients computed independently, want exactly 1", leaders)
	}
	if st := s.StatzSnapshot(); st.Cache.Coalesced+st.Cache.Hits != clients-1 {
		t.Fatalf("stats %+v: coalesced+hits = %d, want %d", st.Cache,
			st.Cache.Coalesced+st.Cache.Hits, clients-1)
	}
}

// TestDeadlineReturnsBestSoFarUncached: a deadline that expires mid-search
// yields HTTP 200 with a valid, feasible, partial ranking — and the partial
// result is not stored, so the next identical request recomputes.
func TestDeadlineReturnsBestSoFarUncached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := testRequest("fair-kemeny", 8)
	req.Options.Perturbations = 2_000_000 // runs for many seconds uncancelled
	req.DeadlineMillis = 250
	start := time.Now()
	status, out := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 with best-so-far", status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: request took %v", elapsed)
	}
	if !out.Partial {
		t.Fatal("expected a partial (deadline-truncated) result")
	}
	if err := out.Ranking.Validate(); err != nil {
		t.Fatalf("partial result invalid: %v", err)
	}
	for name, arp := range out.Audit.ARPs {
		if arp > req.Delta+1e-9 {
			t.Fatalf("partial result violates ARP %s = %g", name, arp)
		}
	}
	if _, again := post(t, ts.URL, req); again.Cached {
		t.Fatal("partial result was cached")
	}
}

// TestQueueFullBackpressure: with one busy worker and a one-slot queue, the
// third concurrent distinct request is rejected with 429, and a queued
// request whose deadline lapses before service answers 504.
func TestQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := testRequest("fair-kemeny", 9)
	slow.Options.Perturbations = 2_000_000
	slow.DeadlineMillis = 1500

	done := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, slow)
		done <- status
	}()
	waitFor(t, func() bool { return s.StatzSnapshot().Queue.InFlight == 1 })

	queued := testRequest("fair-kemeny", 10) // distinct digest
	queued.Options.Perturbations = 2_000_000
	queued.DeadlineMillis = 300 // expires long before the worker frees up
	queuedDone := make(chan int, 1)
	go func() {
		status, _ := post(t, ts.URL, queued)
		queuedDone <- status
	}()
	waitFor(t, func() bool { return s.StatzSnapshot().Queue.Depth == 1 })

	rejected := testRequest("fair-kemeny", 11)
	rejected.Options.Perturbations = 2_000_000
	if status, _ := post(t, ts.URL, rejected); status != http.StatusTooManyRequests {
		t.Fatalf("third concurrent request: status %d, want 429", status)
	}
	// The queued request must answer 504 at its own 300ms deadline — while
	// the worker is still busy with the slow job — not when the worker
	// finally frees up.
	queuedStart := time.Now()
	if status := <-queuedDone; status != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-queue request: status %d, want 504", status)
	}
	if waited := time.Since(queuedStart); waited > time.Second {
		t.Fatalf("queued request held for %v past its 300ms deadline", waited)
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("slow request: status %d, want 200 (partial)", status)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := map[string]*AggregateRequest{
		"unknown method":         {Method: "banzhaf", Profile: [][]int{{0, 1}}},
		"empty profile":          {Method: "borda"},
		"not a permutation":      {Method: "borda", Profile: [][]int{{0, 0}}},
		"ragged profile":         {Method: "borda", Profile: [][]int{{0, 1}, {0, 1, 2}}},
		"fair without attrs":     {Method: "fair-borda", Profile: [][]int{{0, 1}}, Delta: 0.1},
		"fair without delta":     {Method: "fair-borda", Profile: [][]int{{0, 1}}, Attributes: []AttributeSpec{{Name: "G", Values: []string{"a", "b"}, Of: []int{0, 1}}}},
		"delta out of range":     {Method: "fair-borda", Profile: [][]int{{0, 1}}, Delta: 1.5, Attributes: []AttributeSpec{{Name: "G", Values: []string{"a", "b"}, Of: []int{0, 1}}}},
		"attr size mismatch":     {Method: "fair-borda", Profile: [][]int{{0, 1}}, Delta: 0.1, Attributes: []AttributeSpec{{Name: "G", Values: []string{"a"}, Of: []int{0, 0, 0}}}},
		"unknown threshold name": {Method: "fair-borda", Profile: [][]int{{0, 1}}, Delta: 0.1, Thresholds: map[string]float64{"Nope": 0.1}, Attributes: []AttributeSpec{{Name: "G", Values: []string{"a", "b"}, Of: []int{0, 1}}}},
		"duplicate intersection": {Method: "fair-borda", Profile: [][]int{{0, 1}}, Delta: 0.1, Thresholds: map[string]float64{"intersection": 0.1, "Intersection": 0.9}, Attributes: []AttributeSpec{{Name: "G", Values: []string{"a", "b"}, Of: []int{0, 1}}}},
	}
	for name, req := range cases {
		if status, _ := post(t, ts.URL, req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

// TestThresholdsPerAttribute: per-attribute thresholds reach the solver —
// the tight attribute's parity is enforced below the loose default.
func TestThresholdsPerAttribute(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest("fair-borda", 12)
	req.Delta = 0.8
	req.Thresholds = map[string]float64{"Gender": 0.05, "Intersection": 0.9}
	status, out := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if arp := out.Audit.ARPs["Gender"]; arp > 0.05+1e-9 {
		t.Fatalf("Gender ARP %g exceeds its 0.05 threshold", arp)
	}
}

func TestHealthzAndStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	post(t, ts.URL, testRequest("borda", 13))
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queue.Capacity == 0 || st.Queue.Workers == 0 {
		t.Fatalf("statz queue config empty: %+v", st.Queue)
	}
	if st.Requests["200"] == 0 {
		t.Fatalf("statz did not count the 200: %+v", st.Requests)
	}
	if st.LatencySolve.Count == 0 {
		t.Fatalf("statz solve latency ring empty: %+v", st.LatencySolve)
	}
}

// TestStatzLatencyPercentiles sanity-checks the histogram-backed snapshot
// math directly: 1..100ms uniform, quantiles within one log bucket (2x) of
// truth, max exact, and — unlike the historical pre-fill ring skew — an
// empty histogram reports zeros rather than quantiles over empty slots.
func TestStatzLatencyPercentiles(t *testing.T) {
	h := obs.NewHistogram(obs.LatencyBuckets())
	if snap := latencySnapshot(h); snap.Count != 0 || snap.P50 != 0 || snap.Max != 0 {
		t.Fatalf("empty snapshot %+v, want zeros", snap)
	}
	for i := 1; i <= 100; i++ {
		observeSeconds(h, time.Duration(i)*time.Millisecond)
	}
	snap := latencySnapshot(h)
	if snap.Count != 100 || snap.P50 < 25 || snap.P50 > 100 || snap.P99 < 50 || snap.P99 > 200 || snap.Max != 100 {
		t.Fatalf("snapshot %+v out of range", snap)
	}
	if snap.P50 > snap.P99 || snap.P99 > snap.Max {
		t.Fatalf("snapshot %+v not monotone", snap)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/aggregate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET aggregate: %d, want 405", resp.StatusCode)
	}
}

// TestUnfairMethodWithoutAttributes: plain aggregators work with no table;
// the audit is simply absent.
func TestUnfairMethodWithoutAttributes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest("schulze", 14)
	req.Attributes = nil
	status, out := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if out.Audit != nil {
		t.Fatal("audit present without attributes")
	}
	if err := out.Ranking.Validate(); err != nil {
		t.Fatal(err)
	}
}
