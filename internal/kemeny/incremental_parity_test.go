package kemeny

// Bitwise-parity pins for the incremental constrained engine: the historical
// full-recompute descent and perturbation kernels are preserved here verbatim
// (move, Feasible-over-the-whole-ranking, undo) and the new auditor-driven
// paths must reproduce their outputs exactly — same rankings, same costs —
// on random instances and for every worker count.

import (
	"context"
	"math/rand"
	"testing"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// referenceConstrainedDescent is the pre-incremental constrainedDescentDelta:
// every trial move mutates the ranking and pays a full fairness.ARP audit.
func referenceConstrainedDescent(w *ranking.Precedence, cons []Constraint, r ranking.Ranking) int {
	n := len(r)
	total := 0
	var moves []clsMove
	for improved := true; improved; {
		improved = false
		for i := 0; i < n; i++ {
			c := r[i]
			cands := moves[:0]
			delta := 0
			for j := i - 1; j >= 0; j-- {
				y := r[j]
				delta += w.At(c, y) - w.At(y, c)
				if delta < 0 {
					cands = append(cands, clsMove{pos: j, delta: delta})
				}
			}
			delta = 0
			for j := i + 1; j < n; j++ {
				y := r[j]
				delta += w.At(y, c) - w.At(c, y)
				if delta < 0 {
					cands = append(cands, clsMove{pos: j, delta: delta})
				}
			}
			moves = cands[:0]
			for a := 1; a < len(cands); a++ {
				for b := a; b > 0 && cands[b].delta < cands[b-1].delta; b-- {
					cands[b], cands[b-1] = cands[b-1], cands[b]
				}
			}
			for _, mv := range cands {
				r.MoveTo(i, mv.pos)
				if Feasible(r, cons) {
					total += mv.delta
					improved = true
					break
				}
				r.MoveTo(mv.pos, i) // undo
			}
		}
	}
	return total
}

// referencePerturb is the pre-incremental perturbFeasibleDelta: propose,
// apply, full-audit, undo on infeasibility.
func referencePerturb(w *ranking.Precedence, cons []Constraint, r ranking.Ranking, strength int, rng *rand.Rand) int {
	n := len(r)
	if n < 2 {
		return 0
	}
	delta := 0
	for s := 0; s < strength; s++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		d := w.MoveDelta(r, i, j)
		r.MoveTo(i, j)
		if !Feasible(r, cons) {
			r.MoveTo(j, i) // undo
			continue
		}
		delta += d
	}
	return delta
}

// referenceConstrainedSearch mirrors ConstrainedSearch with the reference
// kernels: seed descent, then sequential index-order restarts with the same
// per-restart RNG derivation and seed-first tie-breaking.
func referenceConstrainedSearch(w *ranking.Precedence, cons []Constraint, start ranking.Ranking, opts Options) ranking.Ranking {
	opts = opts.withDefaults()
	seed := start.Clone()
	seedCost := w.KemenyCost(seed) + referenceConstrainedDescent(w, cons, seed)
	best, bestCost := seed, seedCost
	if opts.Perturbations <= 0 || len(seed) < 2 {
		return best
	}
	cur := make(ranking.Ranking, len(seed))
	for idx := 0; idx < opts.Perturbations; idx++ {
		rng := rand.New(rand.NewSource(restartSeed(opts.Seed, idx, len(cons) > 0)))
		copy(cur, seed)
		cost := seedCost + referencePerturb(w, cons, cur, opts.Strength, rng)
		cost += referenceConstrainedDescent(w, cons, cur)
		if cost < bestCost {
			best, bestCost = cur.Clone(), cost
		}
	}
	return best
}

// feasibleStart builds a random instance with a feasible starting ranking:
// keep drawing rankings until one satisfies the constraint (Delta is loose
// enough that this terminates fast).
func feasibleStart(t *testing.T, rng *rand.Rand) (*ranking.Precedence, []Constraint, ranking.Ranking) {
	t.Helper()
	n, m := 6+rng.Intn(30), 1+rng.Intn(6)
	w := ranking.MustPrecedence(randomProfile(n, m, rng))
	cons := []Constraint{{Attr: binaryAttr(n, rng), Delta: 0.2 + 0.5*rng.Float64()}}
	if rng.Intn(2) == 0 {
		cons = append(cons, Constraint{Attr: ternaryAttr(n, rng), Delta: 0.3 + 0.5*rng.Float64()})
	}
	for tries := 0; ; tries++ {
		r := ranking.Random(n, rng)
		if Feasible(r, cons) {
			return w, cons, r
		}
		if tries > 2000 {
			t.Skip("no feasible start drawn")
		}
	}
}

func ternaryAttr(n int, rng *rand.Rand) *attribute.Attribute {
	of := make([]int, n)
	for i := range of {
		of[i] = rng.Intn(3)
	}
	of[0], of[1], of[n-1] = 0, 1, 2
	a, err := attribute.NewAttribute("t", []string{"A", "B", "C"}, of)
	if err != nil {
		panic(err)
	}
	return a
}

// TestIncrementalDescentMatchesReference pins the auditor-driven descent
// bitwise to the historical full-recompute descent: same final ranking, same
// cost delta.
func TestIncrementalDescentMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 60; trial++ {
		w, cons, start := feasibleStart(t, rng)
		ref := start.Clone()
		refDelta := referenceConstrainedDescent(w, cons, ref)

		inc := start.Clone()
		sc := newSearchScratch(len(inc))
		sc.syncAuditor(cons, inc)
		incDelta := sc.constrainedDescentDelta(context.Background(), w, cons, inc)

		if !inc.Equal(ref) {
			t.Fatalf("trial %d: descent diverged\nref %v\ninc %v", trial, ref, inc)
		}
		if incDelta != refDelta {
			t.Fatalf("trial %d: delta %d, reference %d", trial, incDelta, refDelta)
		}
	}
}

// TestIncrementalPerturbMatchesReference pins the auditor-driven
// perturbation kernel bitwise to the historical one: identical draws,
// identical accept/reject decisions, identical rankings.
func TestIncrementalPerturbMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7341))
	for trial := 0; trial < 60; trial++ {
		w, cons, start := feasibleStart(t, rng)
		seed := int64(trial) * 977
		ref := start.Clone()
		refDelta := referencePerturb(w, cons, ref, 6, rand.New(rand.NewSource(seed)))
		inc := start.Clone()
		incDelta := perturbFeasibleDelta(w, newAuditor(cons, inc), inc, 6, rand.New(rand.NewSource(seed)))
		if !inc.Equal(ref) || incDelta != refDelta {
			t.Fatalf("trial %d: perturb diverged (delta %d vs %d)\nref %v\ninc %v",
				trial, incDelta, refDelta, ref, inc)
		}
	}
}

// TestConstrainedSearchMatchesReferenceAllWorkerCounts pins the full engine:
// ConstrainedSearch output is bitwise identical to the pre-incremental
// reference for worker counts 1, 2, 4, and 8, with the scan-sharding
// threshold lowered so the sharded path actually runs on these small
// instances.
func TestConstrainedSearchMatchesReferenceAllWorkerCounts(t *testing.T) {
	defer func(old int) { shardMinScan = old }(shardMinScan)
	shardMinScan = 4
	rng := rand.New(rand.NewSource(90210))
	for trial := 0; trial < 12; trial++ {
		w, cons, start := feasibleStart(t, rng)
		opts := Options{Seed: int64(trial), Perturbations: 6, Strength: 4}
		want := referenceConstrainedSearch(w, cons, start, opts)
		for _, workers := range []int{1, 2, 4, 8} {
			opts.Workers = workers
			got := ConstrainedSearch(w, cons, start, opts)
			if !got.Equal(want) {
				t.Fatalf("trial %d workers %d: search diverged\nref %v\ngot %v",
					trial, workers, want, got)
			}
		}
	}
}
