#!/usr/bin/env bash
# bench.sh [N] — run the core micro-benchmarks plus the serving-layer load
# benchmark and write BENCH_<N>.json (default N=1) in the repo root, seeding
# the per-PR perf trajectory.
set -euo pipefail

cd "$(dirname "$0")/.."
N="${1:-1}"
OUT="BENCH_${N}.json"

# BenchmarkEngineSolveAll vs BenchmarkPerCallSolveAll is the Engine API v2
# pair: all eight methods over one shared precedence matrix versus the
# deprecated per-call entry points rebuilding it per method.
BENCHES='BenchmarkPrecedenceMatrix100x150|BenchmarkMakeMRFair90|BenchmarkMallowsSample90|BenchmarkPlackettLuce100k|BenchmarkAblationILSBordaInit|BenchmarkHeuristicRestartsW1|BenchmarkHeuristicRestartsW4|BenchmarkEngineSolveAll|BenchmarkPerCallSolveAll'
SCHULZE='BenchmarkSchulze500|BenchmarkSchulze500Dense'

# PR 6 fairness-scale benches: BenchmarkConstrainedDescent5k vs its
# full-recompute baseline is the incremental-auditor speedup BENCH_6 tracks;
# MakeMRFair/FairKemeny pin the fair methods at n = 5000 and 10^4. Each runs
# a fixed single iteration (setup excluded) — these are seconds-long
# macro-benchmarks, not 1s-loop micro-benches.
FAIR='BenchmarkConstrainedDescent5k$|BenchmarkConstrainedDescentFullAudit5k$|BenchmarkMakeMRFair5k$|BenchmarkMakeMRFair10k$|BenchmarkFairKemeny5k$|BenchmarkFairKemeny10k$'

RAW="$(go test -run '^$' -bench "$BENCHES" -benchtime "${BENCHTIME:-1s}" .)
$(go test -run '^$' -bench "$SCHULZE" -benchtime "${BENCHTIME:-1s}" ./internal/aggregate)
$(go test -run '^$' -bench "$FAIR" -benchtime 1x -timeout 120m .)"
echo "$RAW"

# Serving-layer benchmark: the full sweep against an in-process manirankd —
# replacement policy {lru, clock} x Zipf skew {0, 0.5, 1.2, 2.0} x method
# mix {1, 4 methods over the same profiles} — reporting throughput, both
# cache tiers' hit/build counters, and latency percentiles per cell.
SERVING="$(go run ./cmd/experiments -serve-bench -seed 1)"

# Warm-restart recovery (PR 7): the same workload against a cold persistent
# tier, a restarted process over the same cache directory, and a cold-restart
# control with no persistence — the phase deltas are what the disk tier buys.
RESTART="$(go run ./cmd/experiments -serve-restart -seed 1)"

# Streaming-session churn (PR 9): identically seeded per-client edit streams
# replayed through /v1/session (incremental O(n²) matrix patches +
# warm-started solves) versus stateless /v1/aggregate re-POSTs (full O(n²·m)
# rebuild, cold solve) at mutation fractions {0.1, 0.5, 0.9}.
CHURN="$(go run ./cmd/experiments -serve-churn -seed 1 -serve-requests "${CHURN_REQUESTS:-200}")"

# Fleet sharding (PR 10): the same Zipf workload against a single-node
# control and a 3-replica rendezvous-sharded ring at equal per-node cache
# size, then a degraded replay that kills one replica mid-load. The request
# count must be high enough that the run outlasts the 200ms kill timer, or
# killed_mid_run comes back false.
FLEET="$(go run ./cmd/experiments -serve-fleet -seed 1 \
  -serve-requests "${FLEET_REQUESTS:-1200}" -serve-clients 8 \
  -serve-profiles 120 -serve-cache 48)"

{
  echo '{'
  echo "  \"pr\": ${N},"
  echo "  \"goos\": \"$(go env GOOS)\","
  echo "  \"goarch\": \"$(go env GOARCH)\","
  echo '  "benchmarks": {'
  echo "$RAW" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      lines[++count] = sprintf("    \"%s\": {\"iterations\": %s, \"ns_per_op\": %s}", name, $2, $3)
    }
    END {
      for (i = 1; i <= count; i++) printf "%s%s\n", lines[i], (i < count ? "," : "")
    }'
  echo '  },'
  echo '  "serving":'
  echo "$SERVING" | sed 's/^/  /'
  echo '  ,"restart":'
  echo "$RESTART" | sed 's/^/  /'
  echo '  ,"churn":'
  echo "$CHURN" | sed 's/^/  /'
  echo '  ,"fleet":'
  echo "$FLEET" | sed 's/^/  /'
  echo '}'
} > "$OUT"

echo "wrote $OUT"
