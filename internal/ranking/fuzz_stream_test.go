// The streaming fuzz target lives in the external test package so it can
// cross-check internal/fairness (which imports ranking) without a cycle.
package ranking_test

import (
	"math/rand"
	"testing"

	"manirank/internal/fairness"
	"manirank/internal/ranking"
)

// FuzzIncrementalPrecedence drives a random add/remove/update stream through
// Precedence.AddRanking/RemoveRanking and pins the patched matrix cell-for-
// cell against a from-scratch MustPrecedence over a mirrored profile after
// EVERY step — the bitwise-parity invariant the streaming Engine and the
// manirankd session endpoint both rest on. Each step also re-seats a
// long-lived fairness.Tracker on a fresh consensus over the mutated profile
// (Reset + one incremental ApplyMove) and pins its counters against a
// freshly built tracker, so the fairness state the warm-started solvers
// audit with stays consistent across profile mutations. Payload layout:
// data[0] -> n, data[1] -> initial m, data[2] -> RNG seed byte, remaining
// bytes are the op stream (b%3 selects add/remove/update, b/3 the target
// index).
func FuzzIncrementalPrecedence(f *testing.F) {
	f.Add([]byte{4, 3, 7, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 1, 0, 1, 1, 1})
	f.Add([]byte{8, 6, 91, 2, 5, 8, 11, 14, 17, 20, 23})
	f.Add([]byte{6, 2, 255, 9, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 2 + int(data[0])%7
		m := 1 + int(data[1])%6
		seed := int64(data[2])
		for _, b := range data[3:] {
			seed = seed*131 + int64(b)
		}
		rng := rand.New(rand.NewSource(seed))

		mirror := make(ranking.Profile, m)
		for i := range mirror {
			mirror[i] = ranking.Random(n, rng)
		}
		w := ranking.MustPrecedence(mirror)

		// Binary alternating groups, the demo attribute shape; the tracker
		// outlives every profile mutation like a session's audit state does.
		of := make([]int, n)
		for c := range of {
			of[c] = c % 2
		}
		live := fairness.NewGroupTracker(ranking.Random(n, rng), of, 2)

		check := func(step int) {
			want := ranking.MustPrecedence(mirror)
			if w.Rankings() != want.Rankings() {
				t.Fatalf("step %d: patched matrix counts %d rankings, rebuild counts %d",
					step, w.Rankings(), want.Rankings())
			}
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if w.At(a, b) != want.At(a, b) {
						t.Fatalf("step %d: patched W[%d][%d] = %d, rebuild = %d",
							step, a, b, w.At(a, b), want.At(a, b))
					}
				}
			}
			r := ranking.Random(n, rng)
			if got, wantCost := w.KemenyCost(r), want.KemenyCost(r); got != wantCost {
				t.Fatalf("step %d: patched KemenyCost %d, rebuild %d", step, got, wantCost)
			}

			// A new consensus over the mutated profile: re-seat the
			// long-lived tracker, nudge it with one incremental move, and it
			// must be indistinguishable from a tracker built from scratch.
			consensus := ranking.Random(n, rng)
			live.Reset(consensus)
			from, to := rng.Intn(n), rng.Intn(n)
			live.ApplyMove(from, to)
			consensus.MoveTo(from, to)
			fresh := fairness.NewGroupTracker(consensus, of, 2)
			for v := 0; v < 2; v++ {
				if live.Win(v) != fresh.Win(v) || live.OmegaM(v) != fresh.OmegaM(v) {
					t.Fatalf("step %d: tracker group %d diverged: wins %d/%d, omegaM %d/%d",
						step, v, live.Win(v), fresh.Win(v), live.OmegaM(v), fresh.OmegaM(v))
				}
				lp, fp := live.Positions(v), fresh.Positions(v)
				if len(lp) != len(fp) {
					t.Fatalf("step %d: tracker group %d position count %d, fresh %d", step, v, len(lp), len(fp))
				}
				for i := range lp {
					if lp[i] != fp[i] {
						t.Fatalf("step %d: tracker group %d position[%d] = %d, fresh %d", step, v, i, lp[i], fp[i])
					}
				}
			}
			if live.Spread() != fresh.Spread() {
				t.Fatalf("step %d: tracker spread %g, fresh %g", step, live.Spread(), fresh.Spread())
			}
		}

		for step, b := range data[3:] {
			op := int(b) % 3
			if len(mirror) == 1 && op != 0 {
				op = 0 // never drain the profile: RemoveRanking needs m >= 1 after
			}
			switch op {
			case 0: // add
				r := ranking.Random(n, rng)
				if err := w.AddRanking(r); err != nil {
					t.Fatalf("step %d: AddRanking: %v", step, err)
				}
				mirror = append(mirror, r)
			case 1: // remove
				i := (int(b) / 3) % len(mirror)
				if err := w.RemoveRanking(mirror[i]); err != nil {
					t.Fatalf("step %d: RemoveRanking: %v", step, err)
				}
				mirror = append(mirror[:i:i], mirror[i+1:]...)
			case 2: // update = remove old + add new at the same slot
				i := (int(b) / 3) % len(mirror)
				r := ranking.Random(n, rng)
				if err := w.RemoveRanking(mirror[i]); err != nil {
					t.Fatalf("step %d: update/RemoveRanking: %v", step, err)
				}
				if err := w.AddRanking(r); err != nil {
					t.Fatalf("step %d: update/AddRanking: %v", step, err)
				}
				mirror = mirror.Clone()
				mirror[i] = r
			}
			check(step)
		}
	})
}
