package fairness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"manirank/internal/attribute"
	"manirank/internal/ranking"
)

// fprBrute computes FPR by explicit pair enumeration (paper Def. 4) as an
// oracle for the O(n) scan.
func fprBrute(r ranking.Ranking, a *attribute.Attribute, v int) float64 {
	n := len(r)
	size := 0
	for _, g := range a.Of {
		if g == v {
			size++
		}
	}
	m := MixedPairs(size, n)
	if m == 0 {
		return 0.5
	}
	wins := 0
	for i := 0; i < n; i++ {
		if a.Of[r[i]] != v {
			continue
		}
		for j := i + 1; j < n; j++ {
			if a.Of[r[j]] != v {
				wins++
			}
		}
	}
	return float64(wins) / float64(m)
}

func randomAttr(n, domain int, rng *rand.Rand) *attribute.Attribute {
	values := make([]string, domain)
	for i := range values {
		values[i] = string(rune('A' + i))
	}
	of := make([]int, n)
	for i := range of {
		of[i] = rng.Intn(domain)
	}
	a, err := attribute.NewAttribute("attr", values, of)
	if err != nil {
		panic(err)
	}
	return a
}

func TestGroupFPRsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		domain := 2 + rng.Intn(5)
		a := randomAttr(n, domain, rng)
		r := ranking.Random(n, rng)
		fprs := GroupFPRs(r, a)
		for v := 0; v < domain; v++ {
			if math.Abs(fprs[v]-fprBrute(r, a, v)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFPRRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := randomAttr(n, 2+rng.Intn(4), rng)
		for _, fpr := range GroupFPRs(ranking.Random(n, rng), a) {
			if fpr < 0 || fpr > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFPRExtremes(t *testing.T) {
	// Group A (candidates 0,1) wholly on top, group B wholly at the bottom.
	a, err := attribute.NewAttribute("g", []string{"A", "B"}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := ranking.Ranking{0, 1, 2, 3}
	fprs := GroupFPRs(r, a)
	if fprs[0] != 1 {
		t.Errorf("top group FPR = %v, want 1", fprs[0])
	}
	if fprs[1] != 0 {
		t.Errorf("bottom group FPR = %v, want 0", fprs[1])
	}
	if got := ARP(r, a); got != 1 {
		t.Errorf("ARP = %v, want 1", got)
	}
}

func TestFPRParityAtHalf(t *testing.T) {
	// Perfect alternation of a balanced binary group: parity.
	a, err := attribute.NewAttribute("g", []string{"A", "B"}, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ranking A B B A gives each group 2 mixed wins out of 4.
	r := ranking.Ranking{0, 1, 3, 2}
	fprs := GroupFPRs(r, a)
	if fprs[0] != 0.5 || fprs[1] != 0.5 {
		t.Fatalf("FPRs = %v, want [0.5 0.5]", fprs)
	}
	if got := ARP(r, a); got != 0 {
		t.Errorf("ARP = %v, want 0", got)
	}
}

func TestFPRComplementOfBinaryGroupsSumsToOne(t *testing.T) {
	// For exactly two groups every mixed pair is won by one of them, so
	// wins_A + wins_B = |A||B| and (FPR_A + FPR_B) = 1 when sizes are equal
	// (omega_M is the same). More generally wins ratios complement.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 * (1 + rng.Intn(15))
		of := make([]int, n)
		for i := 0; i < n/2; i++ {
			of[i] = 1
		}
		rng.Shuffle(n, func(i, j int) { of[i], of[j] = of[j], of[i] })
		a, _ := attribute.NewAttribute("g", []string{"A", "B"}, of)
		fprs := GroupFPRs(ranking.Random(n, rng), a)
		return math.Abs(fprs[0]+fprs[1]-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGroupNeutral(t *testing.T) {
	a, err := attribute.NewAttribute("g", []string{"A", "B", "C"}, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	fprs := GroupFPRs(ranking.New(4), a)
	if fprs[2] != 0.5 {
		t.Fatalf("empty group FPR = %v, want 0.5", fprs[2])
	}
}

func TestUniversalGroupNeutral(t *testing.T) {
	a, err := attribute.NewAttribute("g", []string{"A"}, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	fprs := GroupFPRs(ranking.New(3), a)
	if fprs[0] != 0.5 {
		t.Fatalf("universal group FPR = %v, want 0.5", fprs[0])
	}
	if got := ARP(ranking.New(3), a); got != 0 {
		t.Fatalf("single-group ARP = %v, want 0", got)
	}
}

func paperTable(t *testing.T, n int) *attribute.Table {
	t.Helper()
	gender := make([]int, n)
	race := make([]int, n)
	for c := 0; c < n; c++ {
		gender[c] = c % 3
		race[c] = (c / 3) % 5
	}
	g, err := attribute.NewAttribute("Gender", []string{"M", "NB", "W"}, gender)
	if err != nil {
		t.Fatal(err)
	}
	r, err := attribute.NewAttribute("Race", []string{"A", "B", "C", "D", "E"}, race)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := attribute.NewTable(n, g, r)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestAuditAndSatisfies(t *testing.T) {
	tab := paperTable(t, 30)
	rng := rand.New(rand.NewSource(9))
	r := ranking.Random(30, rng)
	rep := Audit(r, tab)
	if len(rep.ARPs) != 2 {
		t.Fatalf("audit has %d ARPs, want 2", len(rep.ARPs))
	}
	if rep.MaxViolation() < rep.IRP {
		t.Error("MaxViolation below IRP")
	}
	if !rep.Satisfies(1.0) {
		t.Error("every ranking satisfies Delta = 1")
	}
	if rep.Satisfies(rep.MaxViolation() - 0.01) {
		t.Error("Satisfies should fail below the max violation")
	}
	if SatisfiesMANIRank(r, tab, 1.0) != true {
		t.Error("SatisfiesMANIRank at Delta=1 must hold")
	}
	if got, want := SatisfiesMANIRank(r, tab, rep.MaxViolation()), true; got != want {
		t.Error("SatisfiesMANIRank at exactly the max violation must hold")
	}
}

func TestIRPMatchesIntersectionARP(t *testing.T) {
	tab := paperTable(t, 45)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r := ranking.Random(45, rng)
		if got, want := IRP(r, tab), ARP(r, tab.Intersection()); math.Abs(got-want) > 1e-15 {
			t.Fatalf("IRP = %v, intersection ARP = %v", got, want)
		}
	}
}

func TestThresholds(t *testing.T) {
	th := Uniform(0.1)
	if th.ForAttr("Gender") != 0.1 || th.ForInter() != 0.1 {
		t.Fatal("Uniform thresholds wrong")
	}
	th.PerAttr = map[string]float64{"Gender": 0.2}
	th.Inter = 0.05
	if th.ForAttr("Gender") != 0.2 {
		t.Error("per-attribute override ignored")
	}
	if th.ForAttr("Race") != 0.1 {
		t.Error("default should apply to Race")
	}
	if th.ForInter() != 0.05 {
		t.Error("intersection override ignored")
	}
}

func TestSatisfiesThresholds(t *testing.T) {
	tab := paperTable(t, 30)
	r := ranking.New(30)
	rep := Audit(r, tab)
	th := Thresholds{Default: 1, Inter: -1}
	if !SatisfiesThresholds(r, tab, th) {
		t.Fatal("Delta=1 thresholds must hold")
	}
	th = Thresholds{Default: 1, PerAttr: map[string]float64{"Gender": rep.ARPs[0] / 2}, Inter: -1}
	if rep.ARPs[0] > 0 && SatisfiesThresholds(r, tab, th) {
		t.Fatal("tight Gender threshold should fail")
	}
}

func TestReportFormatting(t *testing.T) {
	tab := paperTable(t, 30)
	rep := Audit(ranking.New(30), tab)
	if rep.String() == "" {
		t.Error("empty String()")
	}
	s := FormatReport(rep, tab)
	if s == "" {
		t.Error("empty FormatReport")
	}
}

func TestMixedPairs(t *testing.T) {
	cases := []struct{ size, n, want int }{
		{0, 10, 0}, {10, 10, 0}, {3, 10, 21}, {5, 10, 25},
	}
	for _, tc := range cases {
		if got := MixedPairs(tc.size, tc.n); got != tc.want {
			t.Errorf("MixedPairs(%d, %d) = %d, want %d", tc.size, tc.n, got, tc.want)
		}
	}
}
