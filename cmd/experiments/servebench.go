package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"

	"manirank"
	"manirank/internal/service"
	"manirank/internal/service/cache"
	"manirank/internal/service/loadgen"
)

// serveBenchReport is the BENCH_<n>.json "serving" section: one loadgen run
// per (replacement policy, Zipf skew, method mix) cell against an
// in-process manirankd.
type serveBenchReport struct {
	Candidates int              `json:"candidates"`
	Rankers    int              `json:"rankers"`
	Profiles   int              `json:"distinct_profiles"`
	Clients    int              `json:"clients"`
	CacheSize  int              `json:"cache_size"`
	Workers    int              `json:"workers"`
	Runs       []loadgen.Result `json:"runs"`
}

// serveCell is one sweep coordinate: replacement policy × method mix ×
// popularity skew.
type serveCell struct {
	policy  string
	methods []string
	zipfS   float64
}

// serveSkews is the swept popularity range: uniform and the low-skew band
// where replacement policy matters most (the hot set barely dominates, so
// eviction decisions are consequential), up to strongly peaked traffic
// where any policy holds the hot keys.
var serveSkews = []float64{0, 0.5, 1.2, 2.0}

// serveMethodMixes is the profile-reuse axis: a single-method workload
// (every distinct profile is seen under exactly one request shape, so the
// precedence tier only helps on result-cache evictions and coalesced
// rebuilds) versus a four-method mix over the same profiles, where each
// matrix is reusable by up to four distinct result-cache keys.
var serveMethodMixes = [][]string{
	{manirank.MethodFairKemeny.String()},
	{manirank.MethodBorda.String(), manirank.MethodCopeland.String(),
		manirank.MethodSchulze.String(), manirank.MethodFairKemeny.String()},
}

// runServeBench boots the serving stack on a loopback listener and replays
// the synthetic Mallows workload across the full sweep: both replacement
// policies, the Zipf skews in serveSkews (uniform is the cache's worst case
// at this working-set size; at high skew the hit rate should climb toward
// 1), and both method mixes.
func runServeBench(seed int64, requests, clients, profiles, cacheSize int) error {
	report := serveBenchReport{
		Candidates: 60,
		Rankers:    40,
		Profiles:   profiles,
		Clients:    clients,
		CacheSize:  cacheSize,
		Workers:    runtime.GOMAXPROCS(0),
	}
	for _, methods := range serveMethodMixes {
		for _, policy := range cache.Policies() {
			for _, s := range serveSkews {
				cell := serveCell{policy: policy, methods: methods, zipfS: s}
				res, err := serveBenchRun(report, cell, seed, requests)
				if err != nil {
					return err
				}
				// 429s are legitimate backpressure under load; request errors
				// mean the serving stack is broken — fail the run (CI's smoke
				// relies on this exit code).
				if res.Errors > 0 {
					return fmt.Errorf("serve-bench policy=%s zipf_s=%.1f: %d request errors", policy, s, res.Errors)
				}
				// Every cell starts cold, so at least one request solved: a
				// zero solve stage means the trace→histogram plumbing broke,
				// and the stage columns CI smokes on would silently be empty.
				if res.StageMeanMS["solve"] <= 0 || res.StageMeanMS["matrix_build"] <= 0 {
					return fmt.Errorf("serve-bench policy=%s zipf_s=%.1f: empty stage breakdown %v", policy, s, res.StageMeanMS)
				}
				report.Runs = append(report.Runs, res)
				fmt.Fprintf(os.Stderr, "serve-bench policy=%s methods=%d zipf_s=%.1f: %.1f req/s, hit rate %.2f (pred %.2f drift %+.2f), matrix builds %d skipped %d, p50 %.1fms, p99 %.1fms, solve stage %.1fms (%d errors, %d rejected)\n",
					policy, len(methods), s, res.Throughput, res.HitRate, res.PredictedHitRate, res.HitRateDrift, res.MatrixBuilds, res.MatrixBuildsSkipped, res.P50LatencyMS, res.P99LatencyMS, res.StageMeanMS["solve"], res.Errors, res.Rejected)
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// serveBenchRun measures one sweep cell against a FRESH server — each run
// gets its own cold caches, so the per-cell hit rates are comparable rather
// than inflated by entries a previous cell warmed.
func serveBenchRun(report serveBenchReport, cell serveCell, seed int64, requests int) (loadgen.Result, error) {
	return serveBenchRunDir(report, cell, seed, requests, "")
}

// serveBenchRunDir is serveBenchRun with an optional persistent cache
// directory (the restart bench's knob; "" keeps the server memory-only).
func serveBenchRunDir(report serveBenchReport, cell serveCell, seed int64, requests int, cacheDir string) (loadgen.Result, error) {
	srv, err := service.New(service.Config{
		CacheSize:   report.CacheSize,
		CachePolicy: cell.policy,
		CacheDir:    cacheDir,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	res, err := loadgen.Run(loadgen.Config{
		URL:      "http://" + ln.Addr().String(),
		Clients:  report.Clients,
		Requests: requests,
		Profiles: report.Profiles,
		ZipfS:    cell.zipfS,
		Methods:  cell.methods,
		Seed:     seed,
	})
	if err != nil {
		return res, err
	}
	if res.Policy != cell.policy {
		return res, fmt.Errorf("serve-bench: server reported policy %q, want %q", res.Policy, cell.policy)
	}
	return res, nil
}

// churnBenchReport is the BENCH_9.json "churn" section: the same seeded
// edit stream replayed against /v1/session (incremental matrix patches +
// warm-started solves) and against /v1/aggregate (full O(n²·m) rebuild and
// a cold solve per edit), across mutation fractions.
type churnBenchReport struct {
	Candidates int              `json:"candidates"`
	Rankers    int              `json:"rankers"`
	Clients    int              `json:"clients"`
	CacheSize  int              `json:"cache_size"`
	Workers    int              `json:"workers"`
	Runs       []loadgen.Result `json:"runs"`
}

// churnFractions is the swept mutation mix: mostly re-solves (caches and
// coalescing should dominate either mode), balanced, and mutate-heavy —
// the regime where the incremental path's O(n²) patch + warm start must
// beat the stateless rebuild for the session endpoint to earn its keep.
var churnFractions = []float64{0.1, 0.5, 0.9}

// runChurnBench measures the streaming-session path against its stateless
// control (ISSUE 9 / BENCH_9). Both arms replay identically seeded
// per-client edit streams over the default fair-kemeny method, so within a
// fraction the only variable is how the server absorbs the edits.
func runChurnBench(seed int64, requests, clients, cacheSize int) error {
	report := churnBenchReport{
		Candidates: 60,
		Rankers:    40,
		Clients:    clients,
		CacheSize:  cacheSize,
		Workers:    runtime.GOMAXPROCS(0),
	}
	byCell := map[string]loadgen.Result{}
	for _, frac := range churnFractions {
		for _, mode := range []string{"stateless", "session"} {
			res, err := churnBenchRun(report, mode, frac, seed, requests)
			if err != nil {
				return fmt.Errorf("churn-bench mode=%s churn=%.1f: %w", mode, frac, err)
			}
			if res.Errors > 0 {
				return fmt.Errorf("churn-bench mode=%s churn=%.1f: %d request errors", mode, frac, res.Errors)
			}
			if mode == "session" && res.WarmStarted == 0 {
				return fmt.Errorf("churn-bench mode=session churn=%.1f: no solve warm-started — the session path is not seeding", frac)
			}
			report.Runs = append(report.Runs, res)
			byCell[fmt.Sprintf("%s/%.1f", mode, frac)] = res
			fmt.Fprintf(os.Stderr, "churn-bench mode=%s churn=%.1f: %.1f req/s, p50 %.1fms, p99 %.1fms, %d mutations, %d warm-started, hit rate %.2f, matrix builds %d (%d errors, %d rejected)\n",
				mode, frac, res.Throughput, res.P50LatencyMS, res.P99LatencyMS, res.Mutations, res.WarmStarted, res.HitRate, res.MatrixBuilds, res.Errors, res.Rejected)
		}
		sess, ctrl := byCell[fmt.Sprintf("session/%.1f", frac)], byCell[fmt.Sprintf("stateless/%.1f", frac)]
		if ctrl.P50LatencyMS > 0 {
			fmt.Fprintf(os.Stderr, "churn-bench churn=%.1f: session p50 %.1fms vs stateless %.1fms (%.2fx)\n",
				frac, sess.P50LatencyMS, ctrl.P50LatencyMS, ctrl.P50LatencyMS/sess.P50LatencyMS)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// churnBenchRun measures one (mode, fraction) cell against a FRESH server,
// so neither arm inherits the other's warmed caches.
func churnBenchRun(report churnBenchReport, mode string, frac float64, seed int64, requests int) (loadgen.Result, error) {
	srv, err := service.New(service.Config{
		CacheSize: report.CacheSize,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return loadgen.Result{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Result{}, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	return loadgen.RunChurn(loadgen.Config{
		URL:           "http://" + ln.Addr().String(),
		Clients:       report.Clients,
		Requests:      requests,
		Candidates:    report.Candidates,
		Rankers:       report.Rankers,
		Mode:          mode,
		ChurnFraction: frac,
		Seed:          seed,
	})
}

// restartBenchReport is the BENCH_7.json "restart" section: the same
// Zipf-skewed workload replayed against three server lifecycles, so the
// delta between phases is exactly what the persistent tier buys.
type restartBenchReport struct {
	Candidates int     `json:"candidates"`
	Rankers    int     `json:"rankers"`
	Profiles   int     `json:"distinct_profiles"`
	Clients    int     `json:"clients"`
	CacheSize  int     `json:"cache_size"`
	Workers    int     `json:"workers"`
	ZipfS      float64 `json:"zipf_s"`
	// Phases: "cold" populates a fresh persistent tier; "warm_restart" is a
	// new process over the SAME directory replaying the SAME request stream
	// (the deploy/crash-recovery scenario); "cold_restart" is the control — a
	// new process with no persistent tier, paying every solve again.
	Phases map[string]loadgen.Result `json:"phases"`
}

// runRestartBench measures warm-restart recovery (ISSUE 7 / BENCH_7): how
// much of the serving layer's hit rate a restarted process recovers from the
// persistent tier, against the cold-restart control. The Che-approximation
// literature (Martina et al., arXiv:1307.6702) predicts the recovered rate
// tracks the persisted working set over the request skew; this harness
// measures it end to end, solver cost included.
func runRestartBench(seed int64, requests, clients, profiles, cacheSize int) error {
	report := restartBenchReport{
		Candidates: 60,
		Rankers:    40,
		Profiles:   profiles,
		Clients:    clients,
		CacheSize:  cacheSize,
		Workers:    runtime.GOMAXPROCS(0),
		ZipfS:      1.2,
		Phases:     map[string]loadgen.Result{},
	}
	dir, err := os.MkdirTemp("", "manirank-restart-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cell := serveCell{policy: cache.PolicyClock, methods: serveMethodMixes[0], zipfS: report.ZipfS}
	// serveBenchRunDir's sizing knobs travel in the serving-report shape.
	sizing := serveBenchReport{Profiles: profiles, Clients: clients, CacheSize: cacheSize}
	// Identical seed per phase -> identical request stream: the only variable
	// across phases is what survived on disk.
	phases := []struct {
		name string
		dir  string
	}{
		{"cold", dir},
		{"warm_restart", dir},
		{"cold_restart", ""},
	}
	for _, ph := range phases {
		res, err := serveBenchRunDir(sizing, cell, seed, requests, ph.dir)
		if err != nil {
			return fmt.Errorf("restart-bench %s: %w", ph.name, err)
		}
		if res.Errors > 0 {
			return fmt.Errorf("restart-bench %s: %d request errors", ph.name, res.Errors)
		}
		report.Phases[ph.name] = res
		fmt.Fprintf(os.Stderr, "restart-bench %s: %.1f req/s, hit rate %.2f, result disk hits %d, matrix disk hits %d, p50 %.1fms, p99 %.1fms\n",
			ph.name, res.Throughput, res.HitRate, res.ResultDiskHits, res.MatrixDiskHits, res.P50LatencyMS, res.P99LatencyMS)
	}
	warm, cold := report.Phases["warm_restart"], report.Phases["cold_restart"]
	if warm.ResultDiskHits == 0 {
		return fmt.Errorf("restart-bench: warm restart recorded no disk hits — the persistent tier did not serve")
	}
	fmt.Fprintf(os.Stderr, "restart-bench: warm restart served %d results + %d matrices from disk (cold control: %d solves re-paid)\n",
		warm.ResultDiskHits, warm.MatrixDiskHits, cold.Requests-int(float64(cold.Requests)*cold.HitRate))
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
